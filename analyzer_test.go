package regionwiz

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

func TestAnalyzerHandle(t *testing.T) {
	a, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	ctx := context.Background()
	sources := map[string]string{"q.c": quickstartSrc}

	first, err := a.AnalyzeResult(ctx, sources)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first call reported cached")
	}
	if len(first.Analysis.Report.Warnings) != 1 {
		t.Fatalf("warnings = %d, want 1", len(first.Analysis.Report.Warnings))
	}

	second, err := a.AnalyzeResult(ctx, sources)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second identical call missed the cache")
	}
	if !bytes.Equal(first.ReportJSON, second.ReportJSON) {
		t.Fatal("cached report JSON not byte-identical")
	}

	// The plain Analyze method returns the same report.
	report, err := a.Analyze(ctx, sources)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Warnings) != 1 {
		t.Fatalf("Analyze warnings = %d, want 1", len(report.Warnings))
	}

	st := a.Stats()
	if st.Requests != 3 || st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("stats = %+v, want 3 requests / 1 miss / 2 hits", st)
	}
}

func TestAnalyzerRejectsBadOptions(t *testing.T) {
	_, err := New(Options{KCFA: -2})
	var aerr *Error
	if !errors.As(err, &aerr) || aerr.Kind != ErrConfig {
		t.Fatalf("err = %v, want config Error", err)
	}
}

func TestAnalyzerFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prog.c")
	if err := os.WriteFile(path, []byte(quickstartSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	ctx := context.Background()

	if _, err := a.AnalyzeFiles(ctx, path); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AnalyzeFiles(ctx, path); err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.Hits != 1 {
		t.Fatalf("hits = %d, want 1 (unchanged file re-served from cache)", st.Hits)
	}
	// Editing the file changes its digest and busts the cache.
	if err := os.WriteFile(path, []byte(quickstartSrc+"\n/* edited */\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AnalyzeFiles(ctx, path); err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.Misses != 2 {
		t.Fatalf("misses = %d, want 2 (edit invalidated the cache)", st.Misses)
	}
}

func TestAnalyzerClose(t *testing.T) {
	a, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Analyze(context.Background(), map[string]string{"q.c": quickstartSrc}); err == nil {
		t.Fatal("Analyze after Close succeeded")
	}
}

func TestAnalyzerHandler(t *testing.T) {
	a, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	srv := httptest.NewServer(a.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

func TestDuplicateCleanedPathsRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prog.c")
	if err := os.WriteFile(path, []byte(quickstartSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	// Same file spelled two ways: cleans to one path.
	dotted := filepath.Join(dir, ".", "prog.c")
	_, err := AnalyzeFiles(Options{}, path, dotted)
	if err == nil {
		t.Fatal("duplicate cleaned paths accepted")
	}
	var aerr *Error
	if !errors.As(err, &aerr) || aerr.Kind != ErrConfig {
		t.Fatalf("err = %v, want config Error", err)
	}
}

func TestTypedErrorsAtPublicBoundary(t *testing.T) {
	var aerr *Error

	_, err := Analyze(Options{}, map[string]string{"bad.c": "int main(void) { return }"})
	if !errors.As(err, &aerr) {
		t.Fatalf("parse err = %v, want *Error", err)
	}
	if aerr.Kind != ErrParse || aerr.Pos == "" {
		t.Fatalf("parse err kind %v pos %q, want positioned parse Error", aerr.Kind, aerr.Pos)
	}
	if !errors.Is(err, &Error{Kind: ErrParse}) {
		t.Fatal("errors.Is parse sentinel failed")
	}

	_, err = Analyze(Options{Entry: "absent"}, map[string]string{"a.c": "int main(void) { return 0; }"})
	if !errors.As(err, &aerr) || aerr.Kind != ErrResolve {
		t.Fatalf("resolve err = %v, want resolve Error", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = AnalyzeSourceContext(ctx, Options{}, map[string]string{"a.c": "int main(void) { return 0; }"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled err = %v, want wraps context.Canceled", err)
	}
	if !errors.As(err, &aerr) || aerr.Kind != ErrInternal {
		t.Fatalf("cancelled err = %v, want internal Error", err)
	}
}

func TestReportJSONSchemaAtFacade(t *testing.T) {
	report, err := Analyze(Options{}, map[string]string{"q.c": quickstartSrc})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Schema != ReportSchemaV1 {
		t.Fatalf("schema = %q, want %q", decoded.Schema, ReportSchemaV1)
	}
}
