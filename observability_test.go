package regionwiz

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// TestTracingDoesNotPerturbReports asserts tracing is a pure
// observer: after zeroing run-dependent cost fields (wall time,
// allocation — see normalizedReportJSON), a traced analysis must
// produce byte-identical report JSON to an untraced one. That covers
// warnings, relation sizes, and the phase Outputs including the
// bdd_cache_* kernel counters, which trace-driven tuple counting must
// not touch.
func TestTracingDoesNotPerturbReports(t *testing.T) {
	sources := map[string]string{"q.c": quickstartSrc}
	for _, tc := range []struct {
		name    string
		backend Backend
	}{{"explicit", ExplicitBackend}, {"bdd", BDDBackend}} {
		t.Run(tc.name, func(t *testing.T) {
			backend := tc.backend
			opts := Options{Backend: backend}

			plain, err := AnalyzeSourceContext(context.Background(), opts, sources)
			if err != nil {
				t.Fatal(err)
			}

			tracer := trace.New()
			ctx := trace.WithTracer(context.Background(), tracer)
			traced, err := AnalyzeSourceContext(ctx, opts, sources)
			if err != nil {
				t.Fatal(err)
			}

			got := normalizedReportJSON(t, traced.Report)
			want := normalizedReportJSON(t, plain.Report)
			if string(got) != string(want) {
				t.Errorf("traced report differs from untraced:\n traced: %s\nuntraced: %s", got, want)
			}

			sum := tracer.Summary()
			if sum["pipeline"].Count != 1 {
				t.Fatalf("pipeline spans = %d, want 1", sum["pipeline"].Count)
			}
			for _, name := range []string{"phase:parse", "phase:pointer", "phase:pairs", "pointer.solve"} {
				if sum[name].Count == 0 {
					t.Errorf("trace lacks %q span (have %v)", name, spanNames(sum))
				}
			}
			if backend == BDDBackend {
				// The BDD pairs phase runs the datalog engine: its
				// per-stratum and per-rule fixpoint spans must show up.
				found := false
				for name := range sum {
					if strings.HasPrefix(name, "rule:") {
						found = true
					}
				}
				if !found {
					t.Errorf("bdd backend trace has no rule: spans (have %v)", spanNames(sum))
				}
				if sum["datalog.seminaive"].Count == 0 {
					t.Error("bdd backend trace has no datalog.seminaive span")
				}
			}
		})
	}
}

func spanNames(sum map[string]trace.SpanTotal) []string {
	names := make([]string, 0, len(sum))
	for name := range sum {
		names = append(names, name)
	}
	return names
}

// TestConcurrentCorpusTraceWellFormed runs several analyses through
// the parallel corpus driver against ONE shared tracer (the regionwiz
// -trace shape) and checks the export stays well-formed: valid JSON,
// versioned schema, every set's root span present on its own lane,
// and every event carrying a positive lane. Run under -race in CI,
// this is also the tracer's concurrency proof at system scale.
func TestConcurrentCorpusTraceWellFormed(t *testing.T) {
	type job struct {
		name    string
		sources map[string]string
	}
	var jobs []job
	for _, spec := range workloads.SmallCorpus() {
		pkg := workloads.Generate(spec, 2008)
		for _, exe := range pkg.Exes {
			jobs = append(jobs, job{exe.Name, pkg.SourcesFor(exe)})
		}
	}
	tracer := trace.New()
	ctx := trace.WithTracer(context.Background(), tracer)
	results := pipeline.RunCorpus(ctx, jobs, 4,
		func(ctx context.Context, j job) (*Analysis, error) {
			ctx, sp := trace.StartSpan(ctx, "analyze:"+j.name)
			a, err := AnalyzeSourceContext(ctx, Options{}, j.sources)
			sp.End(trace.Bool("error", err != nil))
			return a, err
		})
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("%s: %v", jobs[i].name, res.Err)
		}
	}

	var buf bytes.Buffer
	if err := tracer.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema      string `json:"schema"`
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Tid  uint64  `json:"tid"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("concurrent trace is not valid JSON: %v", err)
	}
	if doc.Schema != trace.SchemaV1 {
		t.Fatalf("schema = %q, want %q", doc.Schema, trace.SchemaV1)
	}
	lanes := make(map[string]uint64)
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		if ev.Tid == 0 {
			t.Fatalf("event %q has no lane", ev.Name)
		}
		if strings.HasPrefix(ev.Name, "analyze:") {
			if other, dup := lanes[ev.Name]; dup && other != ev.Tid {
				t.Fatalf("set %q spans two lanes (%d, %d)", ev.Name, other, ev.Tid)
			}
			lanes[ev.Name] = ev.Tid
		}
	}
	if len(lanes) != len(jobs) {
		t.Fatalf("trace has %d analyze: root spans, want %d", len(lanes), len(jobs))
	}
	seen := make(map[uint64]string)
	for name, lane := range lanes {
		if prev, dup := seen[lane]; dup {
			t.Fatalf("sets %q and %q share lane %d", prev, name, lane)
		}
		seen[lane] = name
	}
}

// TestPointerSolverReportsConvergence pins the non-convergence
// satellite end-to-end: an analysis that completes normally reports a
// converged pointer solve in its phase outputs.
func TestPointerSolverReportsConvergence(t *testing.T) {
	a, err := AnalyzeSource(Options{}, map[string]string{"q.c": quickstartSrc})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range a.Report.Stats.Phases {
		if p.Name != "pointer" {
			continue
		}
		if got, ok := p.Outputs["ptr_converged"]; !ok || got != 1 {
			t.Fatalf("pointer phase ptr_converged = %d (present %v), want 1", got, ok)
		}
		return
	}
	t.Fatal("no pointer phase in report")
}
