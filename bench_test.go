// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus the ablations called out in DESIGN.md. Each bench
// reports the figures' headline numbers as custom metrics so a single
//
//	go test -bench=. -benchmem
//
// run reproduces the whole evaluation; cmd/regionbench prints the same
// data as formatted tables. EXPERIMENTS.md records paper-vs-measured.
package regionwiz

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/bdd"
	"repro/internal/callgraph"
	"repro/internal/cminor"
	"repro/internal/contexts"
	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/ir"
	"repro/internal/pipeline"
	"repro/internal/pointer"
	"repro/internal/workloads"
	"repro/regions"
)

// mustAnalyze runs the analyzer over one source, failing the bench on
// any front-end or pipeline error.
func mustAnalyze(b *testing.B, opts core.Options, src string) *core.Analysis {
	b.Helper()
	a, err := core.AnalyzeSource(opts, map[string]string{"bench.c": src})
	if err != nil {
		b.Fatal(err)
	}
	return a
}

const rcPrelude = `
typedef struct region_t region_t;
extern region_t *rnew(region_t *parent);
extern void *ralloc(region_t *r);
extern void deleteregion(region_t *r);
struct obj { struct obj *p; };
`

// --- Figure 2: the four subregion relations ---

// BenchmarkFigure2Verdicts analyzes the four Figure 2 cases and checks
// the verdicts: (a) and (b) safe, (c) and (d) reported.
func BenchmarkFigure2Verdicts(b *testing.B) {
	cases := []struct {
		name     string
		hier     string
		warnings int
	}{
		{"a_same_region", "r1 = rnew(NULL); r2 = r1;", 0},
		{"b_holder_in_subregion", "r1 = rnew(NULL); r2 = rnew(r1);", 0},
		{"c_unrelated", "r1 = rnew(NULL); r2 = rnew(NULL);", 1},
		{"d_pointee_in_subregion", "r2 = rnew(NULL); r1 = rnew(r2);", 1},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			src := rcPrelude + fmt.Sprintf(`
int main(void) {
    region_t *r1; region_t *r2;
    struct obj *o1; struct obj *o2;
    %s
    o1 = ralloc(r1);
    o2 = ralloc(r2);
    o2->p = o1;
    return 0;
}`, tc.hier)
			var warnings int
			for i := 0; i < b.N; i++ {
				a := mustAnalyze(b, core.Options{}, src)
				warnings = len(a.Report.Warnings)
			}
			if warnings != tc.warnings {
				b.Fatalf("%s: %d warnings, want %d", tc.name, warnings, tc.warnings)
			}
			b.ReportMetric(float64(warnings), "warnings")
		})
	}
}

// --- Figure 3: aliasing requires the under-approximation ---

func BenchmarkFigure3Aliasing(b *testing.B) {
	src := rcPrelude + `
int main(int P, int Q) {
    region_t *r0; region_t *r1; region_t *r; region_t *r2;
    struct obj *o1; struct obj *o2;
    r0 = rnew(NULL);
    r1 = rnew(NULL);
    o1 = ralloc(r1);
    if (P) r = r0;
    if (Q) r = r1;
    r2 = rnew(r);
    o2 = ralloc(r2);
    o2->p = o1;
    return 0;
}`
	var warnings int
	for i := 0; i < b.N; i++ {
		a := mustAnalyze(b, core.Options{}, src)
		warnings = len(a.Report.Warnings)
	}
	if warnings == 0 {
		b.Fatal("Figure 3 inconsistency missed")
	}
	b.ReportMetric(float64(warnings), "warnings")
}

// --- Figure 7: the benchmark corpus ---

// BenchmarkFigure7Benchmarks generates the six-package corpus and
// reports its size columns (KLOC, executables).
func BenchmarkFigure7Benchmarks(b *testing.B) {
	specs := workloads.PaperCorpus()
	var kloc float64
	var exes int
	for i := 0; i < b.N; i++ {
		kloc, exes = 0, 0
		for _, spec := range specs {
			pkg := workloads.Generate(spec, 2008)
			kloc += pkg.KLOC
			exes += len(pkg.Exes)
		}
	}
	b.ReportMetric(kloc, "KLOC")
	b.ReportMetric(float64(exes), "exes")
}

// --- Figure 8: warning counts per package ---

// BenchmarkFigure8Warnings analyzes the corpus (small scale for bench
// time) and reports the headline counts: total high-ranked warnings
// and planted inconsistencies found.
func BenchmarkFigure8Warnings(b *testing.B) {
	specs := workloads.SmallCorpus()
	pkgs := make([]*workloads.Package, len(specs))
	for i, spec := range specs {
		pkgs[i] = workloads.Generate(spec, 2008)
	}
	var high, warnings int
	for i := 0; i < b.N; i++ {
		high, warnings = 0, 0
		for _, pkg := range pkgs {
			for _, exe := range pkg.Exes {
				a, err := core.AnalyzeSource(core.Options{},
					pkg.SourcesFor(exe))
				if err != nil {
					b.Fatal(err)
				}
				high += a.Report.Stats.High
				warnings += len(a.Report.Warnings)
			}
		}
	}
	b.ReportMetric(float64(high), "high-ranked")
	b.ReportMetric(float64(warnings), "warnings")
}

// --- Figure 9 / 10 / 12: the case studies ---

func BenchmarkFigure9HashIterator(b *testing.B) {
	benchCaseStudy(b, figure9CaseStudy, 1)
}

func BenchmarkFigure10TemporaryInconsistency(b *testing.B) {
	benchCaseStudy(b, figure10CaseStudy, 1)
}

func BenchmarkFigure12XMLParsers(b *testing.B) {
	b.Run("apache_consistent", func(b *testing.B) {
		benchCaseStudy(b, figure12Apache, 0)
	})
	b.Run("subversion_inconsistent", func(b *testing.B) {
		benchCaseStudy(b, figure12Subversion, 1)
	})
}

func benchCaseStudy(b *testing.B, src string, wantWarnings int) {
	b.Helper()
	var warnings int
	for i := 0; i < b.N; i++ {
		a := mustAnalyze(b, core.Options{}, src)
		warnings = len(a.Report.Warnings)
	}
	if warnings != wantWarnings {
		b.Fatalf("%d warnings, want %d", warnings, wantWarnings)
	}
	b.ReportMetric(float64(warnings), "warnings")
}

// --- Figure 11: quantitative results ---

// BenchmarkFigure11Quantitative analyzes one executable per package
// (small scale) and reports the Figure 11 columns as metrics. Run
// cmd/regionbench -table 11 for the full formatted table.
func BenchmarkFigure11Quantitative(b *testing.B) {
	for _, spec := range workloads.SmallCorpus() {
		pkg := workloads.Generate(spec, 2008)
		exe := pkg.Exes[0]
		b.Run(spec.Name, func(b *testing.B) {
			var s core.Stats
			for i := 0; i < b.N; i++ {
				a, err := core.AnalyzeSource(core.Options{},
					pkg.SourcesFor(exe))
				if err != nil {
					b.Fatal(err)
				}
				s = a.Report.Stats
			}
			b.ReportMetric(float64(s.R), "R")
			b.ReportMetric(float64(s.H), "H")
			b.ReportMetric(float64(s.Heap), "heap")
			b.ReportMetric(float64(s.RPairs), "R-pairs")
			b.ReportMetric(float64(s.OPairs), "O-pairs")
			b.ReportMetric(float64(s.Contexts), "contexts")
		})
	}
}

// BenchmarkFigure11ContextScaling sweeps the pipeline depth of a
// generated package: call paths (and so contexts, R, H, and R-pairs)
// grow exponentially with depth, reproducing Figure 11's observation
// that "as calling contexts grow, the numbers of objects increase fast
// and lead to a large amount of relations and region pairs" — the svn
// 26-hour effect, in miniature.
func BenchmarkFigure11ContextScaling(b *testing.B) {
	for _, depth := range []int{2, 3, 4, 5} {
		spec := workloads.Spec{Name: "scale", Exes: 1, Stages: 2,
			Depth: depth, Fanout: 2, Interface: "apr"}
		pkg := workloads.Generate(spec, 2008)
		exe := pkg.Exes[0]
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			var s core.Stats
			for i := 0; i < b.N; i++ {
				a, err := core.AnalyzeSource(core.Options{}, pkg.SourcesFor(exe))
				if err != nil {
					b.Fatal(err)
				}
				s = a.Report.Stats
			}
			b.ReportMetric(float64(s.Contexts), "contexts")
			b.ReportMetric(float64(s.R), "R")
			b.ReportMetric(float64(s.RPairs), "R-pairs")
		})
	}
}

// --- Section 6.3: BDD variable order matters ---

// BenchmarkBDDVariableOrder solves the same transitive closure with
// bit-interleaved versus contiguous domain allocation, reproducing the
// paper's observation that BDD variable order dominates solver cost.
func BenchmarkBDDVariableOrder(b *testing.B) {
	const n = 64
	build := func(interleaved bool) (int, int) {
		m := bdd.New()
		var d0, d1 *bdd.Domain
		if interleaved {
			ds := m.NewInterleavedDomains([]string{"a", "b"}, []uint64{n, n})
			d0, d1 = ds[0], ds[1]
		} else {
			d0 = m.NewDomain("a", n)
			d1 = m.NewDomain("b", n)
		}
		eq := d0.EqDomain(d1)
		return m.NumNodes(), int(m.SatCount(eq))
	}
	b.Run("interleaved", func(b *testing.B) {
		var nodes int
		for i := 0; i < b.N; i++ {
			nodes, _ = build(true)
		}
		b.ReportMetric(float64(nodes), "bdd-nodes")
	})
	b.Run("contiguous", func(b *testing.B) {
		var nodes int
		for i := 0; i < b.N; i++ {
			nodes, _ = build(false)
		}
		b.ReportMetric(float64(nodes), "bdd-nodes")
	})
}

// BenchmarkDatalogClosure exercises the bddbddb-substitute on a
// transitive closure, the shape of the paper's leq computation,
// comparing naive and semi-naive (differential) evaluation.
func BenchmarkDatalogClosure(b *testing.B) {
	run := func(b *testing.B, semiNaive bool) {
		for i := 0; i < b.N; i++ {
			p := datalog.NewProgram()
			d := p.Domain("N", 128)
			edge := p.Relation("edge", d.At(0), d.At(1))
			path := p.Relation("path", d.At(0), d.At(1))
			for v := uint64(0); v < 127; v++ {
				edge.Add(v, v+1)
			}
			rules := []*datalog.Rule{
				datalog.NewRule(datalog.T(path, "x", "y"), datalog.T(edge, "x", "y")),
				datalog.NewRule(datalog.T(path, "x", "z"), datalog.T(path, "x", "y"), datalog.T(path, "y", "z")),
			}
			if semiNaive {
				p.SolveSemiNaive(context.Background(), rules, 0)
			} else {
				p.Solve(context.Background(), rules, 0)
			}
			if path.Count() != 128*127/2 {
				b.Fatal("closure wrong")
			}
		}
	}
	b.Run("naive", func(b *testing.B) { run(b, false) })
	b.Run("seminaive", func(b *testing.B) { run(b, true) })
}

// --- Ablations (DESIGN.md Section 6) ---

// ablationSource is a mid-size generated executable reused by the
// ablation benches.
func ablationSource(b *testing.B) string {
	spec := workloads.Spec{Name: "ablate", Exes: 1, Stages: 3, Depth: 3,
		Fanout: 2, FillerFuncs: 20, Interface: "apr",
		Plants: []workloads.Pattern{workloads.SiblingLeak, workloads.IteratorEscape}}
	return workloads.Generate(spec, 99).Exes[0].Source
}

// BenchmarkAblationBackend compares the explicit and BDD pair engines.
func BenchmarkAblationBackend(b *testing.B) {
	src := ablationSource(b)
	for _, backend := range []struct {
		name string
		be   core.Backend
	}{{"explicit", core.ExplicitBackend}, {"bdd", core.BDDBackend}} {
		b.Run(backend.name, func(b *testing.B) {
			var warnings int
			for i := 0; i < b.N; i++ {
				a := mustAnalyze(b, core.Options{Backend: backend.be}, src)
				warnings = len(a.Report.Warnings)
			}
			b.ReportMetric(float64(warnings), "warnings")
		})
	}
}

// BenchmarkAblationContexts sweeps the context cap — the paper's
// Section 6.3 cost/precision axis.
func BenchmarkAblationContexts(b *testing.B) {
	src := ablationSource(b)
	for _, cap := range []uint64{1, 16, 256, 4096} {
		b.Run(fmt.Sprintf("cap%d", cap), func(b *testing.B) {
			var contexts uint64
			var warnings int
			for i := 0; i < b.N; i++ {
				a := mustAnalyze(b, core.Options{ContextCap: cap}, src)
				contexts = a.Report.Stats.Contexts
				warnings = len(a.Report.Warnings)
			}
			b.ReportMetric(float64(contexts), "contexts")
			b.ReportMetric(float64(warnings), "warnings")
		})
	}
}

// BenchmarkAblationContextPolicy compares full call-path numbering
// (Whaley–Lam) against k-CFA call strings — the "more appropriate
// context sensitivity for C programs" the paper says it is
// investigating (Sections 6.3 and 7).
func BenchmarkAblationContextPolicy(b *testing.B) {
	src := ablationSource(b)
	policies := []struct {
		name string
		opts core.Options
	}{
		{"callpath", core.Options{}},
		{"kcfa1", core.Options{KCFA: 1}},
		{"kcfa2", core.Options{KCFA: 2}},
	}
	for _, pol := range policies {
		b.Run(pol.name, func(b *testing.B) {
			var contexts uint64
			var warnings int
			for i := 0; i < b.N; i++ {
				a := mustAnalyze(b, pol.opts, src)
				contexts = a.Report.Stats.Contexts
				warnings = len(a.Report.Warnings)
			}
			b.ReportMetric(float64(contexts), "contexts")
			b.ReportMetric(float64(warnings), "warnings")
		})
	}
}

// BenchmarkAblationHeapCloning toggles heap cloning (Section 7's
// comparison with non-cloning analyses).
func BenchmarkAblationHeapCloning(b *testing.B) {
	src := ablationSource(b)
	for _, hc := range []bool{true, false} {
		name := "on"
		if !hc {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			var r, h int
			for i := 0; i < b.N; i++ {
				a := mustAnalyze(b, core.Options{HeapCloning: core.Bool(hc)}, src)
				r, h = a.Report.Stats.R, a.Report.Stats.H
			}
			b.ReportMetric(float64(r), "R")
			b.ReportMetric(float64(h), "H")
		})
	}
}

// BenchmarkAblationPointerSolver compares the explicit worklist
// points-to solver against the all-relational Datalog/BDD solver (the
// way the paper's prototype ran inside bddbddb), context-insensitively
// so both solve the same problem.
func BenchmarkAblationPointerSolver(b *testing.B) {
	src := ablationSource(b)
	f, errs := cminor.Parse("bench.c", src)
	if len(errs) != 0 {
		b.Fatal(errs[0])
	}
	info := cminor.Check(f)
	if len(info.Errors) != 0 {
		b.Fatal(info.Errors[0])
	}
	prog := ir.Lower(info, f)
	g := callgraph.Build(prog, "main", nil)
	n := contexts.Number(g, 1)
	cfg := pointer.Config{
		AllocFns:    map[string]bool{"apr_palloc": true, "apr_pcalloc": true, "apr_pstrdup": true, "malloc": true},
		OutAllocFns: map[string]int{"apr_pool_create": 0},
	}
	b.Run("explicit", func(b *testing.B) {
		var heap int
		for i := 0; i < b.N; i++ {
			heap = pointer.Analyze(n, cfg).HeapSize()
		}
		b.ReportMetric(float64(heap), "heap-edges")
	})
	b.Run("bdd", func(b *testing.B) {
		var heap int
		for i := 0; i < b.N; i++ {
			heap = pointer.AnalyzeBDD(context.Background(), n, cfg).HeapSize()
		}
		b.ReportMetric(float64(heap), "heap-edges")
	})
}

// BenchmarkAblationRanking measures how much inspection work the
// Section 5.4 heuristic saves: warnings total vs high-ranked.
func BenchmarkAblationRanking(b *testing.B) {
	specs := workloads.SmallCorpus()
	var total, high int
	for i := 0; i < b.N; i++ {
		total, high = 0, 0
		for _, spec := range specs {
			pkg := workloads.Generate(spec, 2008)
			for _, exe := range pkg.Exes {
				a, err := core.AnalyzeSource(core.Options{},
					pkg.SourcesFor(exe))
				if err != nil {
					b.Fatal(err)
				}
				total += len(a.Report.Warnings)
				high += a.Report.Stats.High
			}
		}
	}
	b.ReportMetric(float64(total), "warnings")
	b.ReportMetric(float64(high), "high-ranked")
}

// BenchmarkRegionRuntime compares the runtime costs the paper's
// introduction motivates: arena allocation from pools versus RC-style
// reference-counted regions (the dynamic-safety overhead).
func BenchmarkRegionRuntime(b *testing.B) {
	b.Run("pool_alloc", func(b *testing.B) {
		root := regions.NewRoot()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := root.NewChild()
			for j := 0; j < 64; j++ {
				_ = p.Alloc(48)
			}
			p.Destroy()
		}
	})
	b.Run("rc_refcounted", func(b *testing.B) {
		root := regions.NewRCRoot()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := root.NewChild()
			for j := 0; j < 64; j++ {
				_ = p.Pool().Alloc(48)
				p.AddRef()
			}
			for j := 0; j < 64; j++ {
				p.DelRef()
			}
			p.Destroy()
		}
	})
}

// --- case study sources (shared with internal/core tests in spirit) ---

const figure9CaseStudy = `
typedef struct apr_pool_t apr_pool_t;
extern long apr_pool_create(apr_pool_t **newp, apr_pool_t *parent);
extern void *apr_palloc(apr_pool_t *p, unsigned long size);
extern void apr_pool_destroy(apr_pool_t *p);
typedef struct apr_hash_t apr_hash_t;
typedef struct apr_hash_index_t apr_hash_index_t;
struct apr_hash_index_t { apr_hash_t *ht; };
struct apr_hash_t { apr_hash_index_t iterator; int count; };
apr_hash_index_t * apr_hash_first(apr_pool_t *pool, apr_hash_t *ht) {
    apr_hash_index_t *hi;
    if (pool) hi = apr_palloc(pool, sizeof(*hi));
    else hi = &ht->iterator;
    hi->ht = ht;
    return hi;
}
void svn_xml_make_open_tag_hash(apr_pool_t *pool, apr_hash_t *ht) {
    apr_hash_index_t *hi;
    for (hi = apr_hash_first(pool, ht); hi; hi = NULL) { }
}
int main(void) {
    apr_pool_t *pool; apr_pool_t *subpool;
    apr_hash_t *ht;
    apr_pool_create(&pool, NULL);
    apr_pool_create(&subpool, pool);
    ht = apr_palloc(subpool, sizeof(struct apr_hash_t));
    svn_xml_make_open_tag_hash(pool, ht);
    apr_pool_destroy(subpool);
    return 0;
}
`

const figure10CaseStudy = `
typedef struct apr_pool_t apr_pool_t;
extern long apr_pool_create(apr_pool_t **newp, apr_pool_t *parent);
extern void *apr_palloc(apr_pool_t *p, unsigned long size);
extern void apr_pool_destroy(apr_pool_t *p);
typedef struct apr_hash_t apr_hash_t;
extern apr_hash_t *apr_hash_make(apr_pool_t *p);
struct lock_t { apr_hash_t *set; };
int main(int associated) {
    apr_pool_t *pool; apr_pool_t *subpool;
    struct lock_t *lock;
    apr_hash_t *stable;
    apr_pool_create(&pool, NULL);
    apr_pool_create(&subpool, pool);
    lock = apr_palloc(pool, sizeof(struct lock_t));
    stable = apr_hash_make(pool);
    if (associated) lock->set = apr_hash_make(subpool);
    if (associated) lock->set = stable;
    apr_pool_destroy(subpool);
    return 0;
}
`

const figure12Apache = `
typedef struct apr_pool_t apr_pool_t;
typedef long (*cleanup_t)(void *data);
extern long apr_pool_create(apr_pool_t **newp, apr_pool_t *parent);
extern void *apr_pcalloc(apr_pool_t *p, unsigned long size);
extern void *apr_palloc(apr_pool_t *p, unsigned long size);
extern void apr_pool_cleanup_register(apr_pool_t *p, const void *data, cleanup_t plain, cleanup_t child);
extern void *XML_ParserCreate(void *enc);
struct apr_xml_parser { void *xp; };
typedef struct apr_xml_parser apr_xml_parser;
long cleanup_parser(void *data) { return 0; }
apr_xml_parser * apr_xml_parser_create(apr_pool_t *pool) {
    apr_xml_parser *parser;
    parser = apr_pcalloc(pool, sizeof(*parser));
    parser->xp = XML_ParserCreate(NULL);
    apr_pool_cleanup_register(pool, parser, cleanup_parser, cleanup_parser);
    return parser;
}
struct client { apr_xml_parser *parser; };
int main(void) {
    apr_pool_t *pool;
    struct client *c;
    apr_pool_create(&pool, NULL);
    c = apr_palloc(pool, sizeof(struct client));
    c->parser = apr_xml_parser_create(pool);
    return 0;
}
`

const figure12Subversion = `
typedef struct apr_pool_t apr_pool_t;
extern long apr_pool_create(apr_pool_t **newp, apr_pool_t *parent);
extern void *apr_pcalloc(apr_pool_t *p, unsigned long size);
struct svn_xml_parser_t { void *xp; };
typedef struct svn_xml_parser_t svn_xml_parser_t;
svn_xml_parser_t * svn_xml_make_parser(apr_pool_t *pool) {
    svn_xml_parser_t *svn_parser;
    apr_pool_t *subpool;
    apr_pool_create(&subpool, pool);
    svn_parser = apr_pcalloc(subpool, sizeof(*svn_parser));
    return svn_parser;
}
struct log_runner { svn_xml_parser_t *parser; };
int main(void) {
    apr_pool_t *pool;
    struct log_runner *loggy;
    svn_xml_parser_t *parser;
    apr_pool_create(&pool, NULL);
    loggy = apr_pcalloc(pool, sizeof(*loggy));
    parser = svn_xml_make_parser(pool);
    loggy->parser = parser;
    return 0;
}
`

// --- Pipeline: per-phase cost and the parallel corpus driver ---

// BenchmarkPhaseBreakdown analyzes one mid-size executable and
// reports each pipeline phase's wall time as a custom metric — the
// per-phase view of the Figure 11 "time" column that the monolithic
// analyzer could not produce.
func BenchmarkPhaseBreakdown(b *testing.B) {
	src := ablationSource(b)
	phaseNS := map[string]int64{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := mustAnalyze(b, core.Options{}, src)
		for _, ps := range a.Report.Stats.Phases {
			phaseNS[ps.Name] += int64(ps.Time)
		}
	}
	b.StopTimer()
	for _, name := range core.PhaseNames() {
		if ns, ok := phaseNS[name]; ok {
			b.ReportMetric(float64(ns)/float64(b.N)/1e6, name+"-ms")
		}
	}
}

// BenchmarkCorpusDriver runs the whole small corpus through
// pipeline.RunCorpus serially and with GOMAXPROCS workers; comparing
// the two sub-benchmarks measures the parallel driver's speedup on
// independent packages.
func BenchmarkCorpusDriver(b *testing.B) {
	var sets []map[string]string
	for _, spec := range workloads.SmallCorpus() {
		pkg := workloads.Generate(spec, 2008)
		for _, exe := range pkg.Exes {
			sets = append(sets, pkg.SourcesFor(exe))
		}
	}
	run := func(b *testing.B, jobs int) {
		for i := 0; i < b.N; i++ {
			results := pipeline.RunCorpus(context.Background(), sets, jobs,
				func(ctx context.Context, s map[string]string) (*core.Analysis, error) {
					return core.AnalyzeSourceContext(ctx, core.Options{}, s)
				})
			for _, res := range results {
				if res.Err != nil {
					b.Fatal(res.Err)
				}
			}
		}
		b.ReportMetric(float64(len(sets)), "exes")
	}
	b.Run("serial", func(b *testing.B) { run(b, 1) })
	b.Run(fmt.Sprintf("jobs=%d", runtime.GOMAXPROCS(0)), func(b *testing.B) {
		run(b, runtime.GOMAXPROCS(0))
	})
}
