// Command cminor dumps the front-end stages for a CMinor source file:
// tokens, the instruction stream of the IR (the Phoenix-IR shape of
// the paper's Section 5.1), or the resolved call graph.
//
// Usage:
//
//	cminor -dump tokens|ir|callgraph [-entry main] file.c...
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/callgraph"
	"repro/internal/cminor"
	"repro/internal/ir"
)

func main() {
	dump := flag.String("dump", "ir", "what to dump: tokens, ir, or callgraph")
	entry := flag.String("entry", "main", "entry function for the call graph")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "cminor: no input files")
		os.Exit(2)
	}

	var files []*cminor.File
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fail("%v", err)
		}
		if *dump == "tokens" {
			toks, errs := cminor.Tokenize(path, string(src))
			for _, t := range toks {
				fmt.Printf("%s\t%s\n", t.Pos, t)
			}
			reportErrors(errs)
			continue
		}
		f, errs := cminor.Parse(path, string(src))
		reportErrors(errs)
		files = append(files, f)
	}
	if *dump == "tokens" {
		return
	}

	info := cminor.Check(files...)
	reportErrors(info.Errors)
	prog := ir.Lower(info, files...)

	switch *dump {
	case "ir":
		for _, name := range prog.FuncNames() {
			fmt.Print(prog.Funcs[name].Dump())
			fmt.Println()
		}
	case "callgraph":
		g := callgraph.Build(prog, *entry, nil)
		for _, fn := range g.ReachableFuncs() {
			fmt.Printf("%s:\n", fn)
			for _, in := range g.Prog.Funcs[fn].Instrs {
				if in.Op != ir.Call {
					continue
				}
				for _, callee := range g.Edges[in.ID] {
					fmt.Printf("  %s -> %s\n", in.Pos, callee)
				}
				for _, ext := range g.ExternCalls[in.ID] {
					fmt.Printf("  %s -> %s (extern)\n", in.Pos, ext)
				}
			}
		}
	default:
		fail("unknown -dump %q", *dump)
	}
}

func reportErrors(errs []*cminor.Error) {
	for _, e := range errs {
		fmt.Fprintln(os.Stderr, e)
	}
	if len(errs) > 0 {
		os.Exit(1)
	}
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "cminor: "+format+"\n", args...)
	os.Exit(1)
}
