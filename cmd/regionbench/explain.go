package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/workloads"
)

// explainDoc is the -explain-bench output (schema
// regionbench/explain/v1): every corpus workload analyzed three ways —
// explicit with provenance recording, explicit without (the replay
// path), and the BDD backend (also replay) — with the explanation
// latency of each path and the two properties the provenance subsystem
// must never trade away checked before any number is written: the
// report is byte-identical with recording on or off, and all three
// paths produce byte-identical explanation documents whose trees
// bottom out in base facts carrying source positions.
type explainDoc struct {
	Schema string `json:"schema"`
	Seed   int64  `json:"seed"`
	// Rounds is how many timed repetitions each explain path ran; the
	// reported time is the median.
	Rounds    int               `json:"rounds"`
	Workloads []explainWorkload `json:"workloads"`
	// Corpus-wide tree totals: every warning explained, every tree
	// grounded.
	WarningsTotal   int `json:"warnings_total"`
	BaseLeavesTotal int `json:"base_leaves_total"`
}

type explainWorkload struct {
	Package  string `json:"package"`
	Exe      string `json:"exe"`
	Warnings int    `json:"warnings"`
	// Tree shape over the workload's explanations.
	TreeNodes  int `json:"tree_nodes"`
	BaseLeaves int `json:"base_leaves"`
	MaxDepth   int `json:"max_depth"`
	// AnalyzeMS is the plain explicit pipeline wall;
	// AnalyzeRecordedMS the same pipeline with Provenance on. Their
	// ratio is the recorder's end-to-end overhead.
	AnalyzeMS         float64 `json:"analyze_ms"`
	AnalyzeRecordedMS float64 `json:"analyze_recorded_ms"`
	RecordOverhead    float64 `json:"record_overhead,omitempty"`
	// Explain walls (Explainer construction plus ExplainAll, median of
	// Rounds): recorded answers from witnesses captured during the
	// solve; the replay paths re-derive the region strata on demand.
	RecordedMS  float64 `json:"recorded_ms"`
	ReplayMS    float64 `json:"replay_ms"`
	BDDReplayMS float64 `json:"bdd_replay_ms"`
}

const explainBenchRounds = 3

// runExplainBench analyzes every corpus executable on all three
// provenance paths, verifies report and explanation parity plus tree
// groundedness, and writes the latency document.
func runExplainBench(path string, seed int64, pkgs []*workloads.Package) error {
	ctx := context.Background()
	doc := explainDoc{
		Schema: "regionbench/explain/v1",
		Seed:   seed,
		Rounds: explainBenchRounds,
	}
	for _, pkg := range pkgs {
		for _, exe := range pkg.Exes {
			wl, err := explainWorkloadRun(ctx, pkg, exe)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", pkg.Spec.Name, exe.Name, err)
			}
			doc.WarningsTotal += wl.Warnings
			doc.BaseLeavesTotal += wl.BaseLeaves
			doc.Workloads = append(doc.Workloads, *wl)
		}
	}

	if path != "" {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(path, append(data, '\n'), 0o644)
	}
	fmt.Printf("explain: %d workloads, %d warnings, %d base leaves, median of %d\n",
		len(doc.Workloads), doc.WarningsTotal, doc.BaseLeavesTotal, doc.Rounds)
	fmt.Printf("%-12s %-8s %4s %6s %6s  %10s %10s %10s\n",
		"package", "exe", "warn", "nodes", "leaves", "recorded", "replay", "bdd-replay")
	for _, wl := range doc.Workloads {
		fmt.Printf("%-12s %-8s %4d %6d %6d  %8.2fms %8.2fms %8.2fms\n",
			wl.Package, wl.Exe, wl.Warnings, wl.TreeNodes, wl.BaseLeaves,
			wl.RecordedMS, wl.ReplayMS, wl.BDDReplayMS)
	}
	return nil
}

// explainWorkloadRun measures one executable: three analyses, three
// timed explanation sweeps, and the parity/groundedness checks.
func explainWorkloadRun(ctx context.Context, pkg *workloads.Package, exe workloads.Exe) (*explainWorkload, error) {
	sources := pkg.SourcesFor(exe)
	wl := &explainWorkload{Package: pkg.Spec.Name, Exe: exe.Name}

	analyzeWith := func(backend core.Backend, provenance bool) (*core.Analysis, float64, error) {
		opts := benchOpts
		opts.Solver.Backend = backend
		opts.Provenance = provenance
		runtime.GC()
		t0 := time.Now()
		a, err := core.AnalyzeSourceContext(ctx, opts, sources)
		return a, ms(time.Since(t0)), err
	}
	recorded, recordedMS, err := analyzeWith(core.ExplicitBackend, true)
	if err != nil {
		return nil, err
	}
	plain, plainMS, err := analyzeWith(core.ExplicitBackend, false)
	if err != nil {
		return nil, err
	}
	bddRun, _, err := analyzeWith(core.BDDBackend, false)
	if err != nil {
		return nil, err
	}
	wl.AnalyzeMS = plainMS
	wl.AnalyzeRecordedMS = recordedMS
	if plainMS > 0 {
		wl.RecordOverhead = recordedMS / plainMS
	}

	// Provenance recording and the backend must never change the
	// report: refuse to write numbers for a configuration that does.
	baseline := stableReportJSON(plain.Report)
	if rep := stableReportJSON(recorded.Report); rep != baseline {
		return nil, fmt.Errorf("report changed with provenance recording on — refusing to write benchmark numbers")
	}
	if rep := stableReportJSON(bddRun.Report); rep != baseline {
		return nil, fmt.Errorf("explicit and bdd reports differ — refusing to write benchmark numbers")
	}
	wl.Warnings = len(plain.Report.Warnings)

	explainPath := func(a *core.Analysis, wantReplay bool) ([]byte, float64, error) {
		var doc []byte
		var runs []float64
		for r := 0; r < explainBenchRounds; r++ {
			runtime.GC()
			t0 := time.Now()
			ex, err := a.Explainer(ctx)
			if err != nil {
				return nil, 0, err
			}
			exps, err := ex.ExplainAll(ctx)
			if err != nil {
				return nil, 0, err
			}
			runs = append(runs, ms(time.Since(t0)))
			if ex.Replayed != wantReplay {
				return nil, 0, fmt.Errorf("explainer replayed=%v, want %v", ex.Replayed, wantReplay)
			}
			if doc, err = core.MarshalExplanations(exps); err != nil {
				return nil, 0, err
			}
			if r == 0 {
				shape, err := checkExplanations(exps, len(a.Report.Warnings))
				if err != nil {
					return nil, 0, err
				}
				if wl.TreeNodes == 0 {
					wl.TreeNodes, wl.BaseLeaves, wl.MaxDepth = shape.nodes, shape.leaves, shape.depth
				}
			}
		}
		return doc, medianMS(runs), nil
	}
	recDoc, recMS, err := explainPath(recorded, false)
	if err != nil {
		return nil, fmt.Errorf("recorded path: %w", err)
	}
	repDoc, repMS, err := explainPath(plain, true)
	if err != nil {
		return nil, fmt.Errorf("replay path: %w", err)
	}
	bddDoc, bddMS, err := explainPath(bddRun, true)
	if err != nil {
		return nil, fmt.Errorf("bdd replay path: %w", err)
	}
	wl.RecordedMS, wl.ReplayMS, wl.BDDReplayMS = recMS, repMS, bddMS

	if !bytes.Equal(recDoc, repDoc) || !bytes.Equal(recDoc, bddDoc) {
		return nil, fmt.Errorf("explanation documents differ across provenance paths — refusing to write benchmark numbers")
	}
	return wl, nil
}

// treeShape accumulates over a workload's explanation trees.
type treeShape struct {
	nodes  int
	leaves int
	depth  int
}

// checkExplanations asserts every warning has an explanation and every
// tree is grounded: each leaf is a base fact carrying a source
// position.
func checkExplanations(exps []*core.Explanation, warnings int) (*treeShape, error) {
	if len(exps) != warnings {
		return nil, fmt.Errorf("%d explanations for %d warnings", len(exps), warnings)
	}
	shape := &treeShape{}
	for _, e := range exps {
		if e.Schema != core.ExplainSchemaV1 {
			return nil, fmt.Errorf("warning %d: schema %q", e.Warning, e.Schema)
		}
		if e.Tree == nil {
			return nil, fmt.Errorf("warning %d: no derivation tree", e.Warning)
		}
		if err := walkTree(e.Tree, 1, shape); err != nil {
			return nil, fmt.Errorf("warning %d: %w", e.Warning, err)
		}
	}
	return shape, nil
}

func walkTree(n *core.ExplainNode, depth int, shape *treeShape) error {
	shape.nodes++
	if depth > shape.depth {
		shape.depth = depth
	}
	if len(n.Children) == 0 {
		if n.Kind != "base" {
			return fmt.Errorf("leaf %q has kind %q, not base", n.Fact, n.Kind)
		}
		if n.Pos == "" {
			return fmt.Errorf("base leaf %q carries no source position", n.Fact)
		}
		shape.leaves++
		return nil
	}
	for _, c := range n.Children {
		if err := walkTree(c, depth+1, shape); err != nil {
			return err
		}
	}
	return nil
}
