package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/workloads"
)

// kernelDoc is the -kernel-bench output (schema regionbench/kernel/v1):
// the BDD kernel's memory trajectory on the heaviest workload under
// three lifecycle configurations — no GC, mark-and-sweep GC, and GC
// plus sifting reorder — with a report-parity gate. The headline
// number is the peak live node count: GC must reduce it (that is the
// point of sweeping between strata), and the walls say what that
// reduction costs.
type kernelDoc struct {
	Schema   string `json:"schema"`
	Seed     int64  `json:"seed"`
	Workload string `json:"workload"`
	Exes     int    `json:"exes"`
	// Rounds is how many timed repetitions each configuration ran; the
	// wall fields are medians, the kernel counters come from the first
	// round (they are identical across rounds).
	Rounds  int               `json:"rounds"`
	Configs []kernelConfigDoc `json:"configs"`
	// PeakReductionVsBaseline maps config name -> 1 - peak/baselinePeak
	// (0.35 = the config's peak is 35% below the no-GC kernel's).
	PeakReductionVsBaseline map[string]float64 `json:"peak_reduction_vs_baseline"`
	// ReportsIdentical is true when every configuration produced the
	// same canonical report on every executable — the document is not
	// written otherwise.
	ReportsIdentical bool `json:"reports_identical"`
}

type kernelConfigDoc struct {
	Name    string `json:"name"`
	GC      bool   `json:"gc"`
	Reorder bool   `json:"reorder"`
	// PeakNodes / FinalNodes sum the per-executable kernel peaks and
	// final live counts across the workload's executables.
	PeakNodes  int64 `json:"peak_nodes"`
	FinalNodes int64 `json:"final_nodes"`
	// Lifecycle counters, summed across executables.
	Collections  uint64  `json:"collections"`
	NodesFreed   uint64  `json:"nodes_freed"`
	SweepMS      float64 `json:"sweep_ms"`
	Reorders     uint64  `json:"reorders"`
	ReorderSwaps uint64  `json:"reorder_swaps"`
	// PairsWallMS is the pairs phase's wall (median over rounds,
	// summed across executables); TotalWallMS the whole pipeline's.
	PairsWallMS float64 `json:"pairs_wall_ms"`
	TotalWallMS float64 `json:"total_wall_ms"`
	// RelProdMS is the synthetic relational-product microbenchmark
	// under this kernel configuration (median over rounds).
	RelProdMS float64 `json:"relprod_ms"`
}

// parseBenchtime accepts go-test style "-benchtime Nx" repetition
// counts (only the "x" form: kernel counters are deterministic, so
// duration-targeted timing has nothing to converge on).
func parseBenchtime(s string) (int, error) {
	if !strings.HasSuffix(s, "x") {
		return 0, fmt.Errorf("-benchtime %q: want a repetition count like 3x", s)
	}
	n, err := strconv.Atoi(strings.TrimSuffix(s, "x"))
	if err != nil || n < 1 {
		return 0, fmt.Errorf("-benchtime %q: want a positive repetition count like 3x", s)
	}
	return n, nil
}

var kernelConfigs = []struct {
	name string
	cfg  bdd.Config
}{
	{"baseline", bdd.Config{}},
	{"gc", bdd.Config{GC: true}},
	{"gc_reorder", bdd.Config{GC: true, Reorder: true}},
}

// runKernelBench measures the kernel lifecycle trajectory on the
// heaviest corpus package (subversion carries the bulk of the
// warnings) and refuses to write numbers unless every configuration
// reproduces the baseline report byte for byte.
func runKernelBench(path string, seed int64, rounds int, pkgs []*workloads.Package) error {
	var pkg *workloads.Package
	for _, p := range pkgs {
		if p.Spec.Name == "subversion" {
			pkg = p
		}
	}
	if pkg == nil { // small corpus: fall back to the largest package
		pkg = pkgs[0]
		for _, p := range pkgs[1:] {
			if p.KLOC > pkg.KLOC {
				pkg = p
			}
		}
	}

	doc := kernelDoc{
		Schema:                  "regionbench/kernel/v1",
		Seed:                    seed,
		Workload:                pkg.Spec.Name,
		Exes:                    len(pkg.Exes),
		Rounds:                  rounds,
		PeakReductionVsBaseline: map[string]float64{},
		ReportsIdentical:        true,
	}

	// Canonical per-exe reports from the baseline config gate the rest.
	var baseline []string
	for _, c := range kernelConfigs {
		kc := kernelConfigDoc{Name: c.name, GC: c.cfg.GC, Reorder: c.cfg.Reorder}
		var totalsMS, pairsMS, relprodMS []float64
		for r := 0; r < rounds; r++ {
			var total, pairs float64
			var reports []string
			firstRound := r == 0
			for _, exe := range pkg.Exes {
				opts := benchOpts
				opts.Solver.Backend = core.BDDBackend
				opts.Solver.BDD = c.cfg
				runtime.GC()
				t0 := time.Now()
				a, err := core.AnalyzeSource(opts, pkg.SourcesFor(exe))
				if err != nil {
					return fmt.Errorf("%s %s: %w", c.name, exe.Name, err)
				}
				total += ms(time.Since(t0))
				for _, p := range a.Report.Stats.Phases {
					if p.Name == core.PhasePairs {
						pairs += ms(p.Time)
					}
				}
				if firstRound {
					st := a.BDDStats()
					kc.PeakNodes += int64(st.PeakNodes)
					kc.FinalNodes += int64(st.Nodes)
					kc.Collections += st.Collections
					kc.NodesFreed += st.NodesFreed
					kc.SweepMS += float64(st.SweepWallNS) / float64(time.Millisecond)
					kc.Reorders += st.Reorders
					kc.ReorderSwaps += st.ReorderSwaps
				}
				reports = append(reports, stableReportJSON(a.Report))
			}
			totalsMS = append(totalsMS, total)
			pairsMS = append(pairsMS, pairs)
			relprodMS = append(relprodMS, relProdMicro(c.cfg))
			if baseline == nil {
				baseline = reports
				continue
			}
			for i := range reports {
				if reports[i] != baseline[i] {
					doc.ReportsIdentical = false
					return fmt.Errorf("%s: report for %s differs from baseline — refusing to write benchmark numbers",
						c.name, pkg.Exes[i].Name)
				}
			}
		}
		kc.TotalWallMS = medianMS(totalsMS)
		kc.PairsWallMS = medianMS(pairsMS)
		kc.RelProdMS = medianMS(relprodMS)
		doc.Configs = append(doc.Configs, kc)
	}

	basePeak := doc.Configs[0].PeakNodes
	for _, kc := range doc.Configs[1:] {
		if basePeak > 0 {
			doc.PeakReductionVsBaseline[kc.Name] = 1 - float64(kc.PeakNodes)/float64(basePeak)
		}
	}

	if path != "" {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(path, append(data, '\n'), 0o644)
	}
	fmt.Printf("kernel: %s (%d exes), median of %d\n", doc.Workload, doc.Exes, doc.Rounds)
	for _, kc := range doc.Configs {
		fmt.Printf("  %-10s peak %7d  final %7d  gc %3d (freed %7d, %.1fms)  reorder %2d (%5d swaps)  pairs %7.1fms  total %7.1fms  relprod %6.1fms\n",
			kc.Name, kc.PeakNodes, kc.FinalNodes, kc.Collections, kc.NodesFreed, kc.SweepMS,
			kc.Reorders, kc.ReorderSwaps, kc.PairsWallMS, kc.TotalWallMS, kc.RelProdMS)
	}
	for name, red := range doc.PeakReductionVsBaseline {
		fmt.Printf("  peak reduction %-10s %.1f%%\n", name, 100*red)
	}
	return nil
}

// relProdMicro times the kernel's hot operation — AndExists, the
// relational product — on a synthetic join under the given lifecycle
// configuration: two random binary relations over interleaved 256-value
// domains, joined on the shared column, with the GC safe point between
// products (pinning the accumulated result) the way the datalog solver
// runs it.
func relProdMicro(cfg bdd.Config) float64 {
	const (
		domSize = 256
		tuples  = 512
		reps    = 32
	)
	m := bdd.NewWith(cfg)
	ds := m.NewInterleavedDomains([]string{"a", "b", "c"}, []uint64{domSize, domSize, domSize})
	a, b, c := ds[0], ds[1], ds[2]
	rng := rand.New(rand.NewSource(42))
	r1, r2 := bdd.False, bdd.False
	for i := 0; i < tuples; i++ {
		r1 = m.Or(r1, m.And(a.Eq(rng.Uint64()%domSize), b.Eq(rng.Uint64()%domSize)))
		r2 = m.Or(r2, m.And(b.Eq(rng.Uint64()%domSize), c.Eq(rng.Uint64()%domSize)))
	}
	m.Ref(r1)
	m.Ref(r2)
	cube := m.Ref(b.Cube())
	if cfg.Reorder {
		m.Reorder()
	}

	t0 := time.Now()
	acc := bdd.False
	for i := 0; i < reps; i++ {
		acc = m.Or(acc, m.AndExists(r1, r2, cube))
		// Safe point between products: everything still needed is
		// pinned, mirroring the solver's round boundary.
		m.Ref(acc)
		m.MaybeCollect()
		m.Deref(acc)
	}
	return ms(time.Since(t0))
}
