// Command regionbench regenerates the paper's evaluation tables over
// the synthetic benchmark corpus (see DESIGN.md for the substitution
// notes — absolute numbers differ from the paper's corpus; the shape
// is what reproduces).
//
// Usage:
//
//	regionbench -table 7|8|11|all [-seed N] [-scale small|paper]
//	regionbench -json out.json [-jobs N]
//	regionbench -edit-loop N [-json out.json]
//	regionbench -parallel-bench [-json out.json]
//	regionbench -kernel-bench [-benchtime Nx] [-json out.json]
//	regionbench -explain-bench [-json out.json]
//	regionbench -query-bench [-json out.json]
//	regionbench ... [-backend explicit|bdd] [-solver-workers N]
//	regionbench ... [-bdd-node-size N] [-bdd-cache-ratio N]
//
// The -json mode analyzes every executable of the corpus through a
// bounded worker pool and writes per-phase, per-workload timings as a
// stable JSON document (schema regionbench/phase-timings/v1) suitable
// for trajectory tracking across commits. With -backend bdd the pairs
// phase runs on the BDD engine and its Outputs include the kernel
// counters (bdd_cache_hits, bdd_cache_misses, bdd_unique_collisions,
// bdd_table_grows), making the -json document a kernel-tuning probe.
//
// -solver-workers N shards each analysis internally (parallel front
// end plus SCC-scheduled pointer solve); with -json the per-workload
// entries then carry a "solver" block describing the SCC schedule.
// The -parallel-bench mode measures that scaling head-on: the largest
// workload at workers 1/2/4 on both backends, with a report-parity
// check, written as schema regionbench/parallel/v1 (see
// BENCH_parallel.json).
//
// The -explain-bench mode measures the why-provenance subsystem over
// the whole corpus: explanation latency for the recorded path
// (explicit backend with Provenance on) against the two replay paths
// (explicit without recording, and the BDD backend), refusing to write
// numbers unless reports are byte-identical with recording on or off,
// all three paths emit byte-identical explanation documents, and every
// tree bottoms out in base facts with source positions (schema
// regionbench/explain/v1).
//
// The -query-bench mode measures the demand-driven pair-query path
// (see regionwiz -query): each corpus workload is analyzed in full,
// then every reported warning's allocation-site pair is re-asked as a
// demand query (with reversed pairs as negative probes). Numbers are
// written only if every demand verdict matches the full report
// (schema regionbench/query/v1, see BENCH_query.json).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// benchOpts is the analysis configuration selected by the backend and
// kernel flags, shared by the table and -json drivers.
var benchOpts core.Options

func main() {
	table := flag.String("table", "all", "which table to print: 7, 8, 11, or all")
	seed := flag.Int64("seed", 2008, "corpus generation seed")
	scale := flag.String("scale", "paper", "corpus scale: small or paper")
	jsonPath := flag.String("json", "", "write per-phase, per-workload timings as JSON to this file")
	traceOn := flag.Bool("trace", false, "trace the -json corpus run and embed per-span totals in the document")
	jobs := flag.Int("jobs", 0, "number of executables analyzed concurrently in -json mode (0 = GOMAXPROCS)")
	backend := flag.String("backend", "explicit", "pair-computation engine: explicit or bdd")
	bddNodeSize := flag.Int("bdd-node-size", 0, "initial BDD node-table capacity (0 = kernel default)")
	bddCacheRatio := flag.Int("bdd-cache-ratio", 0, "BDD node-table slots per op-cache slot (0 = kernel default)")
	bddGC := flag.Bool("bdd-gc", false, "enable BDD kernel mark-and-sweep GC at solver safe points (results-neutral)")
	bddGCThreshold := flag.Int("bdd-gc-threshold", 0, "minimum live nodes before pressure triggers a collection (0 = kernel default)")
	bddReorder := flag.Bool("bdd-reorder", false, "enable sifting-based BDD variable reordering between strata (results-neutral)")
	solverWorkers := flag.Int("solver-workers", 0, "per-analysis solve parallelism: workers for the sharded front end and SCC-scheduled pointer solve (0 or 1 = sequential; reports are identical for every worker count)")
	parallelBench := flag.Bool("parallel-bench", false, "measure single-workload scaling across solver worker counts on both backends (with -json, writes schema regionbench/parallel/v1)")
	explainBench := flag.Bool("explain-bench", false, "measure why-provenance explanation latency (recorded vs replay paths) over the corpus with report/explanation parity checks (with -json, writes schema regionbench/explain/v1)")
	queryBench := flag.Bool("query-bench", false, "measure demand-driven pair-query latency against the full pipeline over the corpus, gating on verdict parity with the full report (with -json, writes schema regionbench/query/v1)")
	kernelBench := flag.Bool("kernel-bench", false, "measure BDD kernel lifecycle (GC/reorder) memory and wall trajectory on the heaviest workload (with -json, writes schema regionbench/kernel/v1)")
	benchtime := flag.String("benchtime", "3x", "timed repetitions per -kernel-bench configuration, go-test style (e.g. 1x)")
	editLoop := flag.Int("edit-loop", 0, "steady-state incremental mode: split the largest workload into files, then re-analyze N single-file edits against the previous snapshot (with -json, writes schema regionbench/incremental/v1)")
	oracleMode := flag.Bool("oracle", false, "run the differential soundness/parity oracle sweep instead of benchmarks")
	oracleSeeds := flag.Int("seeds", 100, "number of oracle sweep seeds (with -oracle)")
	oracleStart := flag.Int64("seed-start", 0, "first oracle sweep seed (with -oracle)")
	reproDir := flag.String("repro-dir", "", "directory for minimized failure repros (with -oracle; empty = no artifacts)")
	flag.Parse()

	switch *backend {
	case "explicit":
		benchOpts.Solver.Backend = core.ExplicitBackend
	case "bdd":
		benchOpts.Solver.Backend = core.BDDBackend
	default:
		fmt.Fprintf(os.Stderr, "regionbench: unknown -backend %q (want explicit or bdd)\n", *backend)
		os.Exit(2)
	}
	benchOpts.Solver.BDD = bdd.Config{
		NodeSize:    *bddNodeSize,
		CacheRatio:  *bddCacheRatio,
		GC:          *bddGC,
		GCThreshold: *bddGCThreshold,
		Reorder:     *bddReorder,
	}
	benchOpts.Solver.Workers = *solverWorkers

	if *oracleMode {
		if err := runOracle(*oracleSeeds, *oracleStart, *jobs, *reproDir, *jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "regionbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var specs []workloads.Spec
	switch *scale {
	case "paper":
		specs = workloads.PaperCorpus()
	case "small":
		specs = workloads.SmallCorpus()
	default:
		fmt.Fprintf(os.Stderr, "regionbench: unknown -scale %q\n", *scale)
		os.Exit(2)
	}

	pkgs := make([]*workloads.Package, len(specs))
	for i, spec := range specs {
		pkgs[i] = workloads.Generate(spec, *seed)
	}

	if *parallelBench {
		if err := runParallelBench(*jsonPath, *seed, pkgs); err != nil {
			fmt.Fprintf(os.Stderr, "regionbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *explainBench {
		if err := runExplainBench(*jsonPath, *seed, pkgs); err != nil {
			fmt.Fprintf(os.Stderr, "regionbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *queryBench {
		if err := runQueryBench(*jsonPath, *seed, pkgs); err != nil {
			fmt.Fprintf(os.Stderr, "regionbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *kernelBench {
		rounds, err := parseBenchtime(*benchtime)
		if err != nil {
			fmt.Fprintf(os.Stderr, "regionbench: %v\n", err)
			os.Exit(2)
		}
		if err := runKernelBench(*jsonPath, *seed, rounds, pkgs); err != nil {
			fmt.Fprintf(os.Stderr, "regionbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *editLoop > 0 {
		if err := runEditLoop(*jsonPath, *editLoop, *seed, pkgs); err != nil {
			fmt.Fprintf(os.Stderr, "regionbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, pkgs, *seed, *scale, *jobs, *traceOn); err != nil {
			fmt.Fprintf(os.Stderr, "regionbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *table == "7" || *table == "all" {
		printFigure7(pkgs)
	}
	if *table == "8" || *table == "all" {
		printFigure8(pkgs)
	}
	if *table == "11" || *table == "all" {
		printFigure11(pkgs)
	}
}

// --- -json mode: the BENCH_*.json trajectory schema ---

type benchDoc struct {
	Schema    string          `json:"schema"`
	Seed      int64           `json:"seed"`
	Scale     string          `json:"scale"`
	Jobs      int             `json:"jobs"`
	Workloads []workloadTimes `json:"workloads"`
	// TraceSummary aggregates span wall time by span name across the
	// whole corpus run (present only with -trace): phases, per-rule
	// fixpoint evaluations, solver rounds.
	TraceSummary map[string]spanTotal `json:"trace_summary,omitempty"`
}

type spanTotal struct {
	Count  uint64  `json:"count"`
	WallMS float64 `json:"wall_ms"`
}

type workloadTimes struct {
	Package string       `json:"package"`
	Exe     string       `json:"exe"`
	TimeMS  float64      `json:"time_ms"`
	Error   string       `json:"error,omitempty"`
	Phases  []phaseTimes `json:"phases,omitempty"`
	Stats   *headline    `json:"stats,omitempty"`
	// Solver is the pointer solver's SCC schedule, present only when
	// the run used -solver-workers > 1.
	Solver *solverSched `json:"solver,omitempty"`
}

type phaseTimes struct {
	Name       string           `json:"name"`
	TimeMS     float64          `json:"time_ms"`
	AllocBytes int64            `json:"alloc_bytes"`
	Outputs    map[string]int64 `json:"outputs,omitempty"`
}

type headline struct {
	Regions  int    `json:"regions"`
	Objects  int    `json:"objects"`
	Heap     int    `json:"heap_edges"`
	RPairs   int64  `json:"region_pairs"`
	IPairs   int    `json:"instruction_pairs"`
	High     int    `json:"high_ranked"`
	Contexts uint64 `json:"contexts"`
}

// writeJSON analyzes every (package, exe) pair over the parallel
// corpus driver and writes the per-phase timing document.
func writeJSON(path string, pkgs []*workloads.Package, seed int64, scale string, jobs int, traceOn bool) error {
	type job struct {
		pkg *workloads.Package
		exe workloads.Exe
	}
	var jobsIn []job
	for _, p := range pkgs {
		for _, exe := range p.Exes {
			jobsIn = append(jobsIn, job{p, exe})
		}
	}
	ctx := context.Background()
	var tracer *trace.Tracer
	if traceOn {
		tracer = trace.New()
		ctx = trace.WithTracer(ctx, tracer)
	}
	results := pipeline.RunCorpus(ctx, jobsIn, jobs,
		func(ctx context.Context, j job) (*core.Analysis, error) {
			return core.AnalyzeSourceContext(ctx, benchOpts, j.pkg.SourcesFor(j.exe))
		})
	doc := benchDoc{
		Schema: "regionbench/phase-timings/v1",
		Seed:   seed,
		Scale:  scale,
		Jobs:   jobs,
	}
	for i, res := range results {
		wt := workloadTimes{
			Package: jobsIn[i].pkg.Spec.Name,
			Exe:     jobsIn[i].exe.Name,
			TimeMS:  float64(res.Wall) / float64(time.Millisecond),
		}
		if res.Err != nil {
			wt.Error = res.Err.Error()
		} else {
			s := res.Out.Report.Stats
			wt.Stats = &headline{
				Regions: s.R, Objects: s.H, Heap: s.Heap,
				RPairs: s.RPairs, IPairs: s.IPairs, High: s.High,
				Contexts: s.Contexts,
			}
			for _, p := range s.Phases {
				wt.Phases = append(wt.Phases, phaseTimes{
					Name:       p.Name,
					TimeMS:     float64(p.Time) / float64(time.Millisecond),
					AllocBytes: p.AllocBytes,
					Outputs:    p.Outputs,
				})
			}
			if res.Out.Ptr != nil && res.Out.Ptr.Sched != nil {
				wt.Solver = newSolverSched(res.Out)
			}
		}
		doc.Workloads = append(doc.Workloads, wt)
	}
	if tracer != nil {
		doc.TraceSummary = make(map[string]spanTotal)
		for name, s := range tracer.Summary() {
			doc.TraceSummary[name] = spanTotal{
				Count:  s.Count,
				WallMS: float64(s.Wall) / float64(time.Millisecond),
			}
		}
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func analyze(pkg *workloads.Package, exe workloads.Exe) (*core.Analysis, error) {
	return core.AnalyzeSource(benchOpts, pkg.SourcesFor(exe))
}

func printFigure7(pkgs []*workloads.Package) {
	fmt.Println("Figure 7. Benchmarks (synthetic corpus; KLOC scaled, see DESIGN.md).")
	fmt.Printf("%-12s %8s %5s  %s\n", "package", "KLOC", "exe", "interface")
	for _, p := range pkgs {
		fmt.Printf("%-12s %8.1f %5d  %s\n", p.Spec.Name, p.KLOC, len(p.Exes), p.Spec.Interface)
	}
	fmt.Println()
}

func printFigure8(pkgs []*workloads.Package) {
	fmt.Println("Figure 8. High-ranked warnings (unique causes) and inconsistencies (unique causes).")
	fmt.Println("Measured causes cluster warnings by holder function; inconsistency counts are the planted ground truth.")
	fmt.Printf("%-12s %14s %18s\n", "package", "high (cause)", "inconsistency (cause)")
	totalHigh, totalHighCauses, totalInc, totalIncCauses := 0, 0, 0, 0
	for _, p := range pkgs {
		high, highCauses := 0, 0
		for _, exe := range p.Exes {
			a, err := analyze(p, exe)
			if err != nil {
				fmt.Fprintf(os.Stderr, "regionbench: %s: %v\n", exe.Name, err)
				continue
			}
			high += a.Report.Stats.High
			highCauses += a.Report.Stats.HighCauses
		}
		inc, incCauses := 0, 0
		seenPattern := map[workloads.Pattern]bool{}
		for _, pat := range p.Spec.Plants {
			if pat.TrueBug() {
				inc++
				if !seenPattern[pat] {
					seenPattern[pat] = true
					incCauses++
				}
			}
		}
		fmt.Printf("%-12s %7d (%2d) %13d (%2d)\n", p.Spec.Name, high, highCauses, inc, incCauses)
		totalHigh += high
		totalHighCauses += highCauses
		totalInc += inc
		totalIncCauses += incCauses
	}
	fmt.Printf("%-12s %7d (%2d) %13d (%2d)\n", "total", totalHigh, totalHighCauses, totalInc, totalIncCauses)
	fmt.Println()
}

func printFigure11(pkgs []*workloads.Package) {
	fmt.Println("Figure 11. Quantitative results per executable.")
	fmt.Printf("%-16s %9s %6s %7s %6s %7s %8s %9s %7s %7s %5s\n",
		"executable", "time", "R", "H", "sub", "own", "heap", "R-pair", "O-pair", "I-pair", "high")
	for _, p := range pkgs {
		for _, exe := range p.Exes {
			start := time.Now()
			a, err := analyze(p, exe)
			if err != nil {
				fmt.Fprintf(os.Stderr, "regionbench: %s: %v\n", exe.Name, err)
				continue
			}
			s := a.Report.Stats
			fmt.Printf("%-16s %9s %6d %7d %6d %7d %8d %9d %7d %7d %5d\n",
				shorten(exe.Name), time.Since(start).Round(time.Millisecond),
				s.R, s.H, s.Sub, s.Own, s.Heap, s.RPairs, s.OPairs, s.IPairs, s.High)
		}
	}
	fmt.Println()
}

func shorten(s string) string {
	if len(s) <= 16 {
		return s
	}
	return s[:13] + strings.Repeat(".", 3)
}
