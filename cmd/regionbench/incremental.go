package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/workloads"
)

// incrementalDoc is the -edit-loop output (schema
// regionbench/incremental/v1): a cold full analysis of the largest
// workload split into files, then N steady-state single-file edits
// re-analyzed through the snapshot path, with the latency of each.
type incrementalDoc struct {
	Schema string `json:"schema"`
	Seed   int64  `json:"seed"`
	// Workload is the analyzed executable; Files the number of source
	// files after splitting (shared library included).
	Workload string `json:"workload"`
	Files    int    `json:"files"`
	// ColdFullMS is the from-scratch analysis of the unedited corpus.
	ColdFullMS float64    `json:"cold_full_ms"`
	Steps      []editStep `json:"steps"`
	// MedianStepMS and Speedup summarize the steady state: speedup is
	// cold_full_ms / median_step_ms.
	MedianStepMS float64 `json:"median_step_ms"`
	Speedup      float64 `json:"speedup"`
}

type editStep struct {
	Step   int     `json:"step"`
	File   string  `json:"file"`
	TimeMS float64 `json:"time_ms"`
	// FilesReused / FilesReparsed count per-file parse reuse; the other
	// counters confirm the check/lower/callgraph fast paths held.
	FilesReused     int  `json:"files_reused"`
	FilesReparsed   int  `json:"files_reparsed"`
	CheckReused     int  `json:"check_reused"`
	LowerReused     int  `json:"lower_reused"`
	CallGraphDirect bool `json:"callgraph_direct"`
}

// editLoopChunks is how many files the workload's executable is split
// into (the shared library rides along as one more).
const editLoopChunks = 8

// runEditLoop measures steady-state incremental re-analysis: split the
// largest workload into files, analyze cold, then repeatedly edit one
// file and re-analyze as a delta against the previous snapshot. The
// final state is verified against a from-scratch run before any
// numbers are written.
func runEditLoop(path string, steps int, seed int64, pkgs []*workloads.Package) error {
	pkg := pkgs[0]
	for _, p := range pkgs[1:] {
		if p.KLOC > pkg.KLOC {
			pkg = p
		}
	}
	exe := pkg.Exes[0]
	sources := pkg.SplitSourcesFor(exe, editLoopChunks)
	var chunkPaths []string
	for p := range sources {
		if strings.HasPrefix(p, exe.Name+"-") {
			chunkPaths = append(chunkPaths, p)
		}
	}
	sort.Strings(chunkPaths)

	ctx := context.Background()
	runtime.GC() // isolate each timed run from the previous one's garbage
	t0 := time.Now()
	_, snap, err := core.AnalyzeSourceSnapshot(ctx, benchOpts, sources)
	if err != nil {
		return fmt.Errorf("cold analysis of %s: %w", exe.Name, err)
	}
	cold := time.Since(t0)

	doc := incrementalDoc{
		Schema:     "regionbench/incremental/v1",
		Seed:       seed,
		Workload:   exe.Name,
		Files:      len(sources),
		ColdFullMS: ms(cold),
	}
	cur := make(map[string]string, len(sources))
	for p, c := range sources {
		cur[p] = c
	}
	for i := 0; i < steps; i++ {
		p := chunkPaths[i%len(chunkPaths)]
		cur[p] = editBody(cur[p], i)
		runtime.GC()
		t := time.Now()
		a, next, err := core.AnalyzeIncremental(ctx, benchOpts, snap,
			map[string]string{p: cur[p]}, nil)
		if err != nil {
			return fmt.Errorf("edit step %d (%s): %w", i+1, p, err)
		}
		wall := time.Since(t)
		snap = next
		doc.Steps = append(doc.Steps, editStep{
			Step:            i + 1,
			File:            p,
			TimeMS:          ms(wall),
			FilesReused:     a.Front.ParseReused,
			FilesReparsed:   a.Front.ParseParsed,
			CheckReused:     a.Front.CheckReused,
			LowerReused:     a.Front.LowerReused,
			CallGraphDirect: a.Front.CallGraphDirect,
		})
		last := a
		if i == steps-1 {
			// Honesty check before publishing numbers: the chain of
			// deltas must land on the same report a cold run produces.
			full, _, err := core.AnalyzeSourceSnapshot(ctx, benchOpts, cur)
			if err != nil {
				return fmt.Errorf("verification run: %w", err)
			}
			if got, want := stableReportJSON(last.Report), stableReportJSON(full.Report); got != want {
				return fmt.Errorf("incremental report diverged from from-scratch after %d steps", steps)
			}
		}
	}

	times := make([]float64, len(doc.Steps))
	for i, s := range doc.Steps {
		times[i] = s.TimeMS
	}
	sort.Float64s(times)
	if len(times) > 0 {
		doc.MedianStepMS = times[len(times)/2]
		if doc.MedianStepMS > 0 {
			doc.Speedup = doc.ColdFullMS / doc.MedianStepMS
		}
	}

	if path != "" {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(path, append(data, '\n'), 0o644)
	}
	fmt.Printf("incremental: %s (%d files), cold %.1fms, median edit %.1fms, speedup %.1fx\n",
		doc.Workload, doc.Files, doc.ColdFullMS, doc.MedianStepMS, doc.Speedup)
	for _, s := range doc.Steps {
		fmt.Printf("  step %2d  %-22s %8.1fms  reused %d/%d  direct=%v\n",
			s.Step, s.File, s.TimeMS, s.FilesReused, s.FilesReused+s.FilesReparsed, s.CallGraphDirect)
	}
	return nil
}

// editBody makes a body-only edit to one chunk — appending a statement
// inside the first filler function when one is present (so the IR
// really changes), a trailing comment otherwise. Either way the file's
// digest moves while every declaration signature stays put, keeping
// the analysis on the incremental fast path.
func editBody(src string, step int) string {
	const marker = "    return acc;\n}"
	if i := strings.Index(src, marker); i >= 0 {
		return src[:i] + fmt.Sprintf("    acc = acc + %d;\n", step+1) + src[i:]
	}
	return src + fmt.Sprintf("\n/* edit %d */\n", step+1)
}

// stableReportJSON renders a report with the volatile stats (wall
// times, per-phase metrics) removed.
func stableReportJSON(r *core.Report) string {
	raw, err := json.Marshal(r)
	if err != nil {
		return "marshal-error: " + err.Error()
	}
	var m map[string]interface{}
	if err := json.Unmarshal(raw, &m); err != nil {
		return "unmarshal-error: " + err.Error()
	}
	if stats, ok := m["stats"].(map[string]interface{}); ok {
		delete(stats, "time_ms")
		delete(stats, "phases")
	}
	out, err := json.Marshal(m)
	if err != nil {
		return "remarshal-error: " + err.Error()
	}
	return string(out)
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
