package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/workloads"
)

// queryDoc is the -query-bench output (schema regionbench/query/v1):
// every corpus workload analyzed once in full, then every reported
// warning's site pair re-asked as a demand query (plus the reversed
// pairs as negative probes), with the parity gate checked before any
// number is written — a demand verdict that disagrees with the full
// analysis refuses to produce benchmark numbers at all.
type queryDoc struct {
	Schema string `json:"schema"`
	Seed   int64  `json:"seed"`
	// MaxQueries bounds the positive and negative probes per
	// executable (warnings beyond the bound are not queried — the
	// bound is recorded here so the document says what was covered).
	MaxQueries int             `json:"max_queries"`
	Workloads  []queryWorkload `json:"workloads"`
	// Corpus-wide probe totals: every probe's verdict matched the full
	// report (the parity gate), QueriesTotal of them inconsistent.
	ProbesTotal  int `json:"probes_total"`
	QueriesTotal int `json:"inconsistent_total"`
}

type queryWorkload struct {
	Package  string `json:"package"`
	Exe      string `json:"exe"`
	Warnings int    `json:"warnings"`
	// Positive probes ask a reported warning's site pair (expect
	// inconsistent); negative probes ask the reversed pair when it is
	// not itself reported (expect consistent).
	Positive int `json:"positive"`
	Negative int `json:"negative"`
	// AnalyzeMS is the full-pipeline wall; QueryMS the median
	// demand-query wall (truncated pipeline plus the per-pair cone).
	// Their ratio is what demand-driven answering buys.
	AnalyzeMS float64 `json:"analyze_ms"`
	QueryMS   float64 `json:"query_ms,omitempty"`
	Speedup   float64 `json:"speedup,omitempty"`
}

// queryBenchMax bounds probes per executable so heavy workloads keep
// the bench bounded; the bound is recorded in the document.
const queryBenchMax = 8

// runQueryBench analyzes every corpus executable, replays its warning
// site pairs (and their reversals) as demand queries, gates on
// verdict parity with the full report, and writes the latency
// document.
func runQueryBench(path string, seed int64, pkgs []*workloads.Package) error {
	ctx := context.Background()
	doc := queryDoc{
		Schema:     "regionbench/query/v1",
		Seed:       seed,
		MaxQueries: queryBenchMax,
	}
	for _, pkg := range pkgs {
		for _, exe := range pkg.Exes {
			wl, err := queryWorkloadRun(ctx, pkg, exe)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", pkg.Spec.Name, exe.Name, err)
			}
			doc.ProbesTotal += wl.Positive + wl.Negative
			doc.QueriesTotal += wl.Positive
			doc.Workloads = append(doc.Workloads, *wl)
		}
	}
	if doc.ProbesTotal == 0 {
		return fmt.Errorf("corpus produced no queryable warning site pairs — refusing to write an empty benchmark")
	}

	if path != "" {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(path, append(data, '\n'), 0o644)
	}
	fmt.Printf("query: %d workloads, %d probes (%d inconsistent), max %d per exe\n",
		len(doc.Workloads), doc.ProbesTotal, doc.QueriesTotal, doc.MaxQueries)
	fmt.Printf("%-12s %-8s %4s %4s %4s  %10s %10s %8s\n",
		"package", "exe", "warn", "pos", "neg", "analyze", "query", "speedup")
	for _, wl := range doc.Workloads {
		fmt.Printf("%-12s %-8s %4d %4d %4d  %8.2fms %8.2fms %7.1fx\n",
			wl.Package, wl.Exe, wl.Warnings, wl.Positive, wl.Negative,
			wl.AnalyzeMS, wl.QueryMS, wl.Speedup)
	}
	return nil
}

// queryWorkloadRun measures one executable: the full analysis, then
// up to queryBenchMax positive and negative demand probes, each
// checked against the full report's verdict.
func queryWorkloadRun(ctx context.Context, pkg *workloads.Package, exe workloads.Exe) (*queryWorkload, error) {
	sources := pkg.SourcesFor(exe)
	wl := &queryWorkload{Package: pkg.Spec.Name, Exe: exe.Name}

	runtime.GC()
	t0 := time.Now()
	a, err := core.AnalyzeSourceContext(ctx, benchOpts, sources)
	if err != nil {
		return nil, err
	}
	wl.AnalyzeMS = ms(time.Since(t0))
	wl.Warnings = len(a.Report.Warnings)

	// The full report's site pairs are the ground truth the demand
	// verdicts must reproduce.
	reported := make(map[string]bool)
	var pairs []core.PairSite
	for _, ps := range a.PairSites() {
		if !ps.Src.IsValid() || !ps.Dst.IsValid() {
			continue
		}
		k := ps.Src.String() + "|" + ps.Dst.String()
		if reported[k] {
			continue
		}
		reported[k] = true
		pairs = append(pairs, ps)
	}

	var walls []float64
	probe := func(src, dst string, wantInconsistent bool) error {
		runtime.GC()
		q0 := time.Now()
		ans, err := core.QueryPairSource(ctx, benchOpts, sources, src, dst)
		if err != nil {
			return err
		}
		walls = append(walls, ms(time.Since(q0)))
		if ans.Inconsistent != wantInconsistent {
			return fmt.Errorf("demand query %s -> %s returned inconsistent=%t but the full report says %t — refusing to write benchmark numbers",
				src, dst, ans.Inconsistent, wantInconsistent)
		}
		return nil
	}
	for _, ps := range pairs {
		if wl.Positive >= queryBenchMax {
			break
		}
		if err := probe(ps.Src.String(), ps.Dst.String(), true); err != nil {
			return nil, err
		}
		wl.Positive++
	}
	// Negative probes: the reversed pair, when not itself reported,
	// must come back consistent.
	for _, ps := range pairs {
		if wl.Negative >= queryBenchMax {
			break
		}
		if reported[ps.Dst.String()+"|"+ps.Src.String()] {
			continue
		}
		if err := probe(ps.Dst.String(), ps.Src.String(), false); err != nil {
			return nil, err
		}
		wl.Negative++
	}
	if len(walls) > 0 {
		wl.QueryMS = medianMS(walls)
		if wl.QueryMS > 0 {
			wl.Speedup = wl.AnalyzeMS / wl.QueryMS
		}
	}
	return wl, nil
}
