package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/oracle"
)

// runOracle drives the differential soundness/parity sweep
// (regionbench -oracle -seeds N). Both backends always run — the
// parity invariant needs them — so the -backend flag does not apply.
// With -json the regionwiz/oracle/v1 summary is written to the given
// path; the human-readable verdict always prints. A sweep with
// unallowlisted violations (or harness errors) exits 1.
func runOracle(seeds int, start int64, jobs int, reproDir, jsonPath string) error {
	sum, err := oracle.Sweep(context.Background(), oracle.SweepConfig{
		Seeds:    seeds,
		Start:    start,
		Jobs:     jobs,
		ReproDir: reproDir,
		Minimize: reproDir != "",
	})
	if err != nil {
		return err
	}
	if jsonPath != "" {
		body, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(body, '\n'), 0o644); err != nil {
			return err
		}
	}
	printOracleSummary(sum)
	if !sum.Clean() {
		return fmt.Errorf("oracle sweep failed: %d unallowlisted failure(s)", len(sum.Failures))
	}
	return nil
}

func printOracleSummary(sum *oracle.Summary) {
	fmt.Printf("oracle: %d case(s) from seed %d (%d mutated, %d budget-aborted run(s))\n",
		sum.Cases, sum.Start, sum.Mutated, sum.BudgetAborts)
	fmt.Printf("dynamic ground truth: %d violation pair(s)\n", sum.DynamicViolations)
	fmt.Printf("soundness: %d failed / %d allowlisted; parity: %d failed; determinism: %d failed; throttle: %d failed\n",
		sum.Soundness.Failed, sum.Soundness.Allowed, sum.Parity.Failed, sum.Determinism.Failed, sum.Throttle.Failed)
	kinds := make([]string, 0, len(sum.PatternPlanted))
	for k := range sum.PatternPlanted {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Printf("  pattern %-24s planted %3d  observed %3d\n",
			k, sum.PatternPlanted[k], sum.PatternObserved[k])
	}
	rules := make([]string, 0, len(sum.AllowedByRule))
	for r := range sum.AllowedByRule {
		rules = append(rules, r)
	}
	sort.Strings(rules)
	for _, r := range rules {
		fmt.Printf("  allowlisted %3d: %s\n", sum.AllowedByRule[r], r)
	}
	for _, f := range sum.Failures {
		fmt.Printf("FAIL %s (seed %d): %s\n", f.Case, f.Seed, f.Violation)
		if f.ReproDir != "" {
			fmt.Printf("     repro: %s\n", f.ReproDir)
		}
	}
	if sum.Clean() {
		fmt.Println("oracle: PASS")
	}
}
