package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/cminor"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/workloads"
)

// parallelDoc is the -parallel-bench output (schema
// regionbench/parallel/v1): the largest workload, split into files so
// the front end has shardable work, analyzed end to end at several
// solver worker counts on both backends. Alongside the speedups it
// records the one property the parallel solver must never trade away:
// the report at every worker count is byte-identical to the
// sequential one (volatile wall-time stats excluded).
type parallelDoc struct {
	Schema string `json:"schema"`
	Seed   int64  `json:"seed"`
	// Workload is the analyzed executable; Files the number of source
	// files after splitting.
	Workload string `json:"workload"`
	Files    int    `json:"files"`
	// Rounds is how many timed repetitions each configuration ran; the
	// reported time is the median.
	Rounds int `json:"rounds"`
	// HostCPUs is runtime.NumCPU() on the machine that produced the
	// numbers. Measured speedups are bounded by it: on a host with
	// fewer than 4 CPUs, speedup_4w cannot reflect the schedule's
	// potential — read the model block instead.
	HostCPUs int `json:"host_cpus"`
	// Underprovisioned is true when the host has fewer CPUs than the
	// widest measured worker count: the measured speedups are then
	// scheduling artifacts, not the schedule's potential — trust the
	// model block, not speedup_4w.
	Underprovisioned bool              `json:"underprovisioned,omitempty"`
	Backends         []parallelBackend `json:"backends"`
	// Model is the hardware-independent scaling projection from
	// work/span measured on a serial instrumented run.
	Model *parallelModel `json:"model,omitempty"`
}

// parallelModel projects wall time at w workers by Brent's bound
//
//	T(w) = seq + Σ_stages max(span_s, work_s / w)
//
// over the three sharded front-end stages (per-file parse, per-file
// body check, per-file lower). work is the sum of per-file walls and
// span the largest single file, both measured with the shards running
// SERIALLY (workers=1 through the sharded code path), so no value is
// inflated by scheduler time-slicing. seq is the measured cost of
// everything that stays sequential: the declaration passes, the
// fragment link, and the back half of the pipeline (call graph through
// post, from the baseline run's own phase stats). Every component is
// the element-wise minimum over the rounds — noise only ever inflates
// a wall — and the projection compares against their sum t1_ms, so
// numerator and denominator carry the same noise floor. The projection
// is what the measured speedups converge to as host_cpus reaches the
// worker count.
type parallelModel struct {
	// BaselineMS is the measured workers=1 explicit wall (reference
	// only; the speedups below are computed against T1MS).
	BaselineMS float64 `json:"baseline_ms"`
	// T1MS is the component sum: parse+body+lower work, decl, link,
	// and rest.
	T1MS        float64        `json:"t1_ms"`
	RestMS      float64        `json:"rest_ms"`
	ParseWorkMS float64        `json:"parse_work_ms"`
	ParseSpanMS float64        `json:"parse_span_ms"`
	DeclMS      float64        `json:"decl_ms"`
	BodyWorkMS  float64        `json:"body_work_ms"`
	BodySpanMS  float64        `json:"body_span_ms"`
	LowerWorkMS float64        `json:"lower_work_ms"`
	LowerSpanMS float64        `json:"lower_span_ms"`
	LinkMS      float64        `json:"link_ms"`
	Projected   []projectedRun `json:"projected"`
}

type projectedRun struct {
	Workers int     `json:"workers"`
	TimeMS  float64 `json:"time_ms"`
	Speedup float64 `json:"speedup"`
}

type parallelBackend struct {
	Backend string        `json:"backend"`
	Runs    []parallelRun `json:"runs"`
	// Speedup4W is sequential median over 4-worker median.
	Speedup4W float64 `json:"speedup_4w"`
	// ReportsIdentical is true when every worker count produced the
	// same canonical report as workers=1.
	ReportsIdentical bool `json:"reports_identical"`
}

type parallelRun struct {
	Workers int     `json:"workers"`
	TimeMS  float64 `json:"time_ms"`
	// RunsMS lists every repetition (TimeMS is their median).
	RunsMS []float64 `json:"runs_ms"`
	// Solver describes the parallel pointer-solve schedule (absent for
	// workers <= 1).
	Solver *solverSched `json:"solver,omitempty"`
}

// solverSched is the pointer solver's SCC schedule summary, also
// embedded per workload in -json mode runs with -solver-workers > 1.
type solverSched struct {
	Workers int `json:"workers"`
	Comps   int `json:"sccs"`
	Levels  int `json:"levels"`
	Tasks   int `json:"tasks"`
	// LevelWallMS is the wall time per DAG level (leaf level first),
	// summed across fixpoint rounds.
	LevelWallMS []float64 `json:"level_wall_ms,omitempty"`
}

const (
	parallelBenchRounds = 3
	// parallelModelRounds is higher than the timed-run count: the model
	// takes element-wise minima, and more rounds tighten them.
	parallelModelRounds = 5
	// parallelBenchChunks splits the workload finer than -edit-loop
	// does: with ~2x files per worker at the widest configuration the
	// longest single file stops dominating a shard (span < work/w).
	parallelBenchChunks = 16
)

var parallelBenchWorkers = []int{1, 2, 4}

// runParallelBench measures end-to-end single-workload scaling across
// solver worker counts and verifies worker-count report parity on both
// backends before writing any numbers.
func runParallelBench(path string, seed int64, pkgs []*workloads.Package) error {
	pkg := pkgs[0]
	for _, p := range pkgs[1:] {
		if p.KLOC > pkg.KLOC {
			pkg = p
		}
	}
	exe := pkg.Exes[0]
	// Split into files: parallel parse/check/lower need multiple files
	// to shard over, and real corpora are multi-file.
	sources := pkg.SplitSourcesFor(exe, parallelBenchChunks)

	doc := parallelDoc{
		Schema:   "regionbench/parallel/v1",
		Seed:     seed,
		Workload: exe.Name,
		Files:    len(sources),
		Rounds:   parallelBenchRounds,
		HostCPUs: runtime.NumCPU(),
	}
	maxWorkers := 0
	for _, w := range parallelBenchWorkers {
		if w > maxWorkers {
			maxWorkers = w
		}
	}
	if doc.HostCPUs < maxWorkers {
		doc.Underprovisioned = true
		fmt.Fprintf(os.Stderr,
			"regionbench: warning: host has %d CPUs but -parallel-bench measures up to %d workers; "+
				"measured speedups are underprovisioned — read the model block instead\n",
			doc.HostCPUs, maxWorkers)
	}
	// Measure the model's work/span components first, while the process
	// heap is still small — after the timed sweep the garbage collector
	// adds several ms of noise to every serial round.
	model, err := measureModel(sources)
	if err != nil {
		return fmt.Errorf("scaling model: %w", err)
	}

	ctx := context.Background()
	restMS := -1.0
	for _, backend := range []core.Backend{core.ExplicitBackend, core.BDDBackend} {
		pb := parallelBackend{ReportsIdentical: true}
		if backend == core.BDDBackend {
			pb.Backend = "bdd"
		} else {
			pb.Backend = "explicit"
		}
		baseline := ""
		for _, workers := range parallelBenchWorkers {
			opts := benchOpts
			opts.Solver.Backend = backend
			opts.Solver.Workers = workers
			run := parallelRun{Workers: workers}
			var rep string
			for r := 0; r < parallelBenchRounds; r++ {
				runtime.GC()
				t0 := time.Now()
				a, err := core.AnalyzeSourceContext(ctx, opts, sources)
				if err != nil {
					return fmt.Errorf("%s workers=%d: %w", pb.Backend, workers, err)
				}
				run.RunsMS = append(run.RunsMS, ms(time.Since(t0)))
				rep = stableReportJSON(a.Report)
				if run.Solver == nil && a.Ptr != nil && a.Ptr.Sched != nil {
					run.Solver = newSolverSched(a)
				}
				if backend == core.ExplicitBackend && workers == 1 {
					rs := 0.0
					for _, p := range a.Report.Stats.Phases {
						switch p.Name {
						case "parse", "check", "lower":
						default:
							rs += ms(p.Time)
						}
					}
					if restMS < 0 || rs < restMS {
						restMS = rs
					}
				}
			}
			run.TimeMS = medianMS(run.RunsMS)
			if baseline == "" {
				baseline = rep
			} else if rep != baseline {
				pb.ReportsIdentical = false
			}
			pb.Runs = append(pb.Runs, run)
		}
		for _, run := range pb.Runs {
			if run.Workers == 4 && run.TimeMS > 0 {
				pb.Speedup4W = pb.Runs[0].TimeMS / run.TimeMS
			}
		}
		if !pb.ReportsIdentical {
			return fmt.Errorf("%s backend: reports differ across worker counts — refusing to write benchmark numbers", pb.Backend)
		}
		doc.Backends = append(doc.Backends, pb)
	}

	finishModel(model, doc.Backends[0].Runs[0].TimeMS, restMS)
	doc.Model = model

	if path != "" {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(path, append(data, '\n'), 0o644)
	}
	fmt.Printf("parallel: %s (%d files), median of %d, host CPUs %d\n",
		doc.Workload, doc.Files, doc.Rounds, doc.HostCPUs)
	for _, pb := range doc.Backends {
		for _, run := range pb.Runs {
			fmt.Printf("  %-8s workers=%d  %8.1fms\n", pb.Backend, run.Workers, run.TimeMS)
		}
		fmt.Printf("  %-8s speedup(4w) %.2fx, reports identical: %v\n",
			pb.Backend, pb.Speedup4W, pb.ReportsIdentical)
	}
	for _, pr := range doc.Model.Projected {
		fmt.Printf("  model    workers=%d  %8.1fms  (%.2fx projected)\n", pr.Workers, pr.TimeMS, pr.Speedup)
	}
	return nil
}

// measureModel runs the sharded front-end stages serially with
// per-file timing and builds the Brent-bound projection against the
// measured workers=1 baseline. The stage costs are element-wise minima
// over several rounds: noise on a loaded host only ever inflates a
// wall, so the minimum is the best estimate of the true cost.
func measureModel(sources map[string]string) (*parallelModel, error) {
	m := &parallelModel{}
	for r := 0; r < parallelModelRounds; r++ {
		round, err := measureModelRound(sources)
		if err != nil {
			return nil, err
		}
		if r == 0 {
			*m = *round
			continue
		}
		minInto(&m.ParseWorkMS, round.ParseWorkMS)
		minInto(&m.ParseSpanMS, round.ParseSpanMS)
		minInto(&m.DeclMS, round.DeclMS)
		minInto(&m.BodyWorkMS, round.BodyWorkMS)
		minInto(&m.BodySpanMS, round.BodySpanMS)
		minInto(&m.LowerWorkMS, round.LowerWorkMS)
		minInto(&m.LowerSpanMS, round.LowerSpanMS)
		minInto(&m.LinkMS, round.LinkMS)
	}
	return m, nil
}

// finishModel folds in the sequential back-half cost and computes the
// Brent projections.
func finishModel(m *parallelModel, baselineMS, restMS float64) {
	m.BaselineMS = baselineMS
	if restMS > 0 {
		m.RestMS = restMS
	}
	m.T1MS = m.ParseWorkMS + m.DeclMS + m.BodyWorkMS + m.LowerWorkMS + m.LinkMS + m.RestMS

	brent := func(work, span float64, w int) float64 {
		t := work / float64(w)
		if t < span {
			t = span
		}
		return t
	}
	for _, w := range parallelBenchWorkers {
		t := m.RestMS + m.DeclMS + m.LinkMS +
			brent(m.ParseWorkMS, m.ParseSpanMS, w) +
			brent(m.BodyWorkMS, m.BodySpanMS, w) +
			brent(m.LowerWorkMS, m.LowerSpanMS, w)
		pr := projectedRun{Workers: w, TimeMS: t}
		if t > 0 {
			pr.Speedup = m.T1MS / t
		}
		m.Projected = append(m.Projected, pr)
	}
}

func minInto(dst *float64, v float64) {
	if v < *dst {
		*dst = v
	}
}

func measureModelRound(sources map[string]string) (*parallelModel, error) {
	paths := make([]string, 0, len(sources))
	for p := range sources {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	m := &parallelModel{}
	runtime.GC()
	files := make([]*cminor.File, len(paths))
	for i, p := range paths {
		t0 := time.Now()
		f, errs := cminor.Parse(p, sources[p])
		if len(errs) != 0 {
			return nil, fmt.Errorf("parse %s: %v", p, errs[0])
		}
		d := ms(time.Since(t0))
		m.ParseWorkMS += d
		if d > m.ParseSpanMS {
			m.ParseSpanMS = d
		}
		files[i] = f
	}

	info, sched := cminor.CheckParallelSched(1, files...)
	if len(info.Errors) != 0 {
		return nil, fmt.Errorf("check: %v", info.Errors[0])
	}
	if sched.FellBack {
		return nil, fmt.Errorf("check: sharded pass fell back to sequential on the benchmark workload")
	}
	m.DeclMS = ms(sched.DeclWall)
	for _, d := range sched.BodyWall {
		w := ms(d)
		m.BodyWorkMS += w
		if w > m.BodySpanMS {
			m.BodySpanMS = w
		}
	}

	frags := make([]*ir.Fragment, len(files))
	for i, f := range files {
		t0 := time.Now()
		frags[i] = ir.LowerFile(info, f)
		d := ms(time.Since(t0))
		m.LowerWorkMS += d
		if d > m.LowerSpanMS {
			m.LowerSpanMS = d
		}
	}
	runtime.GC() // keep lowering garbage out of the link measurement
	t0 := time.Now()
	ir.Link(info, frags)
	m.LinkMS = ms(time.Since(t0))
	return m, nil
}

func newSolverSched(a *core.Analysis) *solverSched {
	sched := a.Ptr.Sched
	ss := &solverSched{
		Workers: sched.Workers,
		Comps:   sched.Comps,
		Levels:  sched.Levels,
		Tasks:   sched.Tasks,
	}
	for _, d := range sched.LevelWall {
		ss.LevelWallMS = append(ss.LevelWallMS, ms(d))
	}
	return ss
}

func medianMS(runs []float64) float64 {
	if len(runs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), runs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[len(sorted)/2]
}
