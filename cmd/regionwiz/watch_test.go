package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	regionwiz "repro"
)

const watchLib = `
typedef struct region_t region_t;
extern region_t *rnew(region_t *parent);
extern void *ralloc(region_t *r);
struct conn_t { int fd; struct conn_t *next; };
struct conn_t *mkconn(region_t *r) {
    struct conn_t *c;
    c = ralloc(r);
    return c;
}
void conn_link(struct conn_t *x, struct conn_t *y) {
    x->next = y;
}`

func watchMain(body string) string {
	return `
typedef struct region_t region_t;
extern region_t *rnew(region_t *parent);
extern void *ralloc(region_t *r);
struct conn_t;
extern struct conn_t *mkconn(region_t *r);
extern void conn_link(struct conn_t *x, struct conn_t *y);
int main(void) {
    region_t *r;
    region_t *subr;
    struct conn_t *a;
    struct conn_t *b;
    r = rnew(NULL);
    subr = rnew(r);
    a = mkconn(r);
    b = mkconn(subr);
` + body + `
    return 0;
}`
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// newTestWatcher builds a watcher over a temp dir with lib.c/main.c
// and runs the initial analysis.
func newTestWatcher(t *testing.T, body string) (*watcher, string, *bytes.Buffer) {
	t.Helper()
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "lib.c"), watchLib)
	writeFile(t, filepath.Join(dir, "main.c"), watchMain(body))
	an, err := regionwiz.New(regionwiz.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { an.Close() })
	var out bytes.Buffer
	w := newWatcher([]string{dir}, an, &out, &out)
	w.analyze(context.Background(), w.scan())
	return w, dir, &out
}

// settle ticks twice: once to buffer the changed scan (debounce),
// once to confirm and analyze.
func settle(w *watcher) {
	w.tick(context.Background())
	w.tick(context.Background())
}

func TestWatchEditPrintsWarningDiff(t *testing.T) {
	w, dir, out := newTestWatcher(t, "conn_link(a, b);")
	if w.baseKey == "" {
		t.Fatalf("initial analysis produced no base key: %s", out.String())
	}
	first := out.String()
	if !strings.Contains(first, "full analysis") {
		t.Fatalf("initial run not reported as full: %s", first)
	}
	initialWarnings := append([]string(nil), w.warnings...)

	out.Reset()
	writeFile(t, filepath.Join(dir, "main.c"), watchMain("conn_link(b, a);"))
	settle(w)
	text := out.String()
	if !strings.Contains(text, "delta: 1 reused, 1 changed, 0 removed") {
		t.Fatalf("edit did not take the delta path: %s", text)
	}
	if !strings.Contains(text, "+ ") && !strings.Contains(text, "- ") {
		t.Fatalf("flipping the link direction printed no warning diff: %s", text)
	}
	if reflect.DeepEqual(w.warnings, initialWarnings) {
		t.Fatal("warning set unchanged across a semantic edit")
	}

	// An unchanged tick is silent and needs no debounce reset.
	out.Reset()
	w.tick(context.Background())
	if out.Len() != 0 {
		t.Fatalf("quiet tick produced output: %s", out.String())
	}
}

func TestWatchDebouncesRapidSaves(t *testing.T) {
	w, dir, out := newTestWatcher(t, "conn_link(a, b);")
	out.Reset()

	// A save burst: every tick sees different content, so no analysis
	// runs until the files hold still for two consecutive scans.
	for i, body := range []string{"conn_link(b, a);", "conn_link(a, b);", "conn_link(b, a);"} {
		writeFile(t, filepath.Join(dir, "main.c"), watchMain(body+" /* save "+string(rune('0'+i))+" */"))
		w.tick(context.Background())
	}
	if out.Len() != 0 {
		t.Fatalf("analysis ran mid-burst: %s", out.String())
	}
	settle(w)
	if !strings.Contains(out.String(), "delta:") {
		t.Fatalf("settled burst did not analyze: %s", out.String())
	}
}

func TestWatchDeletedFile(t *testing.T) {
	w, dir, out := newTestWatcher(t, "conn_link(a, b);")
	out.Reset()

	// Deleting a watched file is a removal, not a crash: the delta
	// carries it and the remaining file still analyzes (main.c alone
	// references externs only, which is a complete open program here).
	if err := os.Remove(filepath.Join(dir, "lib.c")); err != nil {
		t.Fatal(err)
	}
	settle(w)
	text := out.String()
	if !strings.Contains(text, "1 removed") {
		t.Fatalf("deletion not reported as a removal: %s", text)
	}

	// Deleting everything parks the watcher without crashing...
	if err := os.Remove(filepath.Join(dir, "main.c")); err != nil {
		t.Fatal(err)
	}
	settle(w)
	if !strings.Contains(out.String(), "no source files remain") {
		t.Fatalf("empty set not reported: %s", out.String())
	}

	// ...and recreating the files resumes analysis.
	out.Reset()
	writeFile(t, filepath.Join(dir, "lib.c"), watchLib)
	writeFile(t, filepath.Join(dir, "main.c"), watchMain("conn_link(a, b);"))
	settle(w)
	if !strings.Contains(out.String(), "warning(s)") {
		t.Fatalf("watcher did not recover after recreation: %s", out.String())
	}
}

// TestWatchScanToleratesVanishedLooseFile pins the scan/read race: a
// loose file argument that disappears after the watcher starts is
// dropped from the set silently instead of failing the scan.
func TestWatchScanToleratesVanishedLooseFile(t *testing.T) {
	dir := t.TempDir()
	keep := filepath.Join(dir, "keep.c")
	gone := filepath.Join(dir, "gone.c")
	writeFile(t, keep, "int main(void) { return 0; }\n")
	writeFile(t, gone, "int unused(void) { return 1; }\n")

	an, err := regionwiz.New(regionwiz.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer an.Close()
	var out bytes.Buffer
	w := newWatcher([]string{keep, gone}, an, &out, &out)

	if got := w.scan(); len(got) != 2 {
		t.Fatalf("initial scan saw %d files, want 2", len(got))
	}
	if err := os.Remove(gone); err != nil {
		t.Fatal(err)
	}
	got := w.scan()
	if len(got) != 1 {
		t.Fatalf("scan after deletion saw %d files, want 1", len(got))
	}
	if _, ok := got[keep]; !ok {
		t.Fatalf("surviving file missing from scan: %v", got)
	}
	// The stale content cache entry is dropped too.
	if _, ok := w.contents[gone]; ok {
		t.Fatal("deleted file still cached")
	}
}

func TestWatchBrokenEditReportsAndRecovers(t *testing.T) {
	w, dir, out := newTestWatcher(t, "conn_link(a, b);")
	goodKey := w.baseKey
	out.Reset()

	writeFile(t, filepath.Join(dir, "main.c"), watchMain("conn_link(a, b;")) // syntax error
	settle(w)
	if !strings.Contains(out.String(), "watch:") {
		t.Fatalf("broken edit produced no error line: %s", out.String())
	}
	if w.baseKey != goodKey {
		t.Fatal("failed run replaced the good base key")
	}
	// The broken state is not retried on quiet ticks.
	out.Reset()
	w.tick(context.Background())
	if out.Len() != 0 {
		t.Fatalf("broken state re-analyzed without a change: %s", out.String())
	}

	writeFile(t, filepath.Join(dir, "main.c"), watchMain("conn_link(a, b);"))
	settle(w)
	if !strings.Contains(out.String(), "warning(s)") {
		t.Fatalf("fixed edit did not analyze: %s", out.String())
	}
}

func TestDiffLines(t *testing.T) {
	added, removed := diffLines([]string{"a", "b", "b"}, []string{"b", "c"})
	if !reflect.DeepEqual(added, []string{"c"}) {
		t.Fatalf("added = %v", added)
	}
	if !reflect.DeepEqual(removed, []string{"a", "b"}) {
		t.Fatalf("removed = %v", removed)
	}
}
