package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"syscall"
	"time"

	regionwiz "repro"
)

// watcher drives -watch mode: it polls the argument list, re-reads
// files whose mtime or size moved, debounces until two consecutive
// scans agree, and re-analyzes through an Analyzer handle — deltas
// against the previous run's snapshot when possible, full analysis
// otherwise — printing only the warning diff. Files that vanish
// between the directory scan and the read (editors save by
// rename-over) are treated as removed, never as errors.
type watcher struct {
	args []string
	an   *regionwiz.Analyzer
	out  io.Writer
	errw io.Writer

	// stamps/contents cache file state so an unchanged file is not
	// re-read every tick.
	stamps   map[string]fileStamp
	contents map[string]string

	// pending is the debounce buffer: a scan that differs from the
	// last analyzed state is held until the next tick reproduces it.
	pending map[string]string
	// lastTried is the newest source set an analysis was attempted on
	// (successful or not); ticks compare against it to detect change.
	lastTried map[string]string
	// lastGood and baseKey identify the newest successful run: deltas
	// are computed against lastGood and submitted under baseKey.
	lastGood map[string]string
	baseKey  string
	warnings []string
}

type fileStamp struct {
	mtime time.Time
	size  int64
}

func newWatcher(args []string, an *regionwiz.Analyzer, out, errw io.Writer) *watcher {
	return &watcher{
		args:     args,
		an:       an,
		out:      out,
		errw:     errw,
		stamps:   make(map[string]fileStamp),
		contents: make(map[string]string),
	}
}

// runWatch is the -watch entry point: an initial full analysis, then
// re-analysis on change until interrupted.
func runWatch(ctx context.Context, args []string, opts regionwiz.Options, interval time.Duration) int {
	an, err := regionwiz.New(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "regionwiz: %v\n", err)
		return 1
	}
	defer an.Close()
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	w := newWatcher(args, an, os.Stdout, os.Stderr)
	fmt.Fprintf(w.errw, "regionwiz: watching %v (interval %v)\n", args, interval)
	w.analyze(ctx, w.scan())
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			fmt.Fprintln(w.errw, "regionwiz: watch stopped")
			return 0
		case <-t.C:
			w.tick(ctx)
		}
	}
}

// expand resolves the watched arguments to concrete paths: every
// directory contributes its current *.c files (so files added or
// deleted after startup are picked up), loose files contribute
// themselves while they exist.
func (w *watcher) expand() []string {
	var paths []string
	for _, arg := range w.args {
		st, err := os.Stat(arg)
		if err != nil {
			continue // a loose file deleted mid-session is just gone
		}
		if !st.IsDir() {
			paths = append(paths, arg)
			continue
		}
		matches, err := filepath.Glob(filepath.Join(arg, "*.c"))
		if err != nil {
			continue
		}
		paths = append(paths, matches...)
	}
	sort.Strings(paths)
	return paths
}

// scan reads the current source set, reusing cached contents for
// files whose stamp has not moved. A file that disappears between
// listing and reading is silently dropped from the set.
func (w *watcher) scan() map[string]string {
	cur := make(map[string]string)
	for _, p := range w.expand() {
		st, err := os.Stat(p)
		if err != nil {
			continue // deleted between glob and stat
		}
		stamp := fileStamp{mtime: st.ModTime(), size: st.Size()}
		if prev, ok := w.stamps[p]; ok && prev == stamp {
			if c, ok := w.contents[p]; ok {
				cur[p] = c
				continue
			}
		}
		b, err := os.ReadFile(p)
		if err != nil {
			continue // deleted between stat and read
		}
		w.stamps[p] = stamp
		w.contents[p] = string(b)
		cur[p] = string(b)
	}
	for p := range w.contents {
		if _, ok := cur[p]; !ok {
			delete(w.contents, p)
			delete(w.stamps, p)
		}
	}
	return cur
}

// tick is one poll: detect change, debounce, re-analyze.
func (w *watcher) tick(ctx context.Context) {
	cur := w.scan()
	if equalSources(cur, w.lastTried) {
		w.pending = nil
		return
	}
	if w.pending == nil || !equalSources(cur, w.pending) {
		// First differing scan: hold until the next tick confirms the
		// files have stopped moving (editor save bursts).
		w.pending = cur
		return
	}
	w.pending = nil
	w.analyze(ctx, cur)
}

// analyze runs the pipeline over cur — as a delta against the last
// good run when one exists, falling back to a full analysis when the
// daemon-side snapshot is gone — and prints the warning diff.
func (w *watcher) analyze(ctx context.Context, cur map[string]string) {
	w.lastTried = cur
	if len(cur) == 0 {
		fmt.Fprintln(w.errw, "regionwiz: watch: no source files remain; waiting")
		return
	}
	var res *regionwiz.Result
	var err error
	if w.baseKey != "" {
		changed, removed := diffSources(w.lastGood, cur)
		res, err = w.an.AnalyzeDelta(ctx, w.baseKey, changed, removed)
		if errors.Is(err, &regionwiz.Error{Kind: regionwiz.ErrSnapshotGone}) {
			res, err = w.an.AnalyzeResult(ctx, cur)
		}
	} else {
		res, err = w.an.AnalyzeResult(ctx, cur)
	}
	if err != nil {
		// Broken intermediate states (half-saved edits) are normal;
		// report and wait for the next change.
		fmt.Fprintf(w.errw, "regionwiz: watch: %v\n", err)
		return
	}
	w.lastGood = cur
	w.baseKey = res.Key
	next := warningLines(res.Analysis.Report)
	added, removed := diffLines(w.warnings, next)
	w.warnings = next

	how := "full analysis"
	if d := res.Delta; d != nil {
		how = fmt.Sprintf("delta: %d reused, %d changed, %d removed", d.FilesReused, d.FilesChanged, d.FilesRemoved)
	}
	if res.Cached {
		how += ", cached"
	}
	fmt.Fprintf(w.out, "regionwiz: %d warning(s), +%d/-%d (%s)\n", len(next), len(added), len(removed), how)
	for _, l := range added {
		fmt.Fprintf(w.out, "+ %s\n", l)
	}
	for _, l := range removed {
		fmt.Fprintf(w.out, "- %s\n", l)
	}
}

func warningLines(r *regionwiz.Report) []string {
	lines := make([]string, 0, len(r.Warnings))
	for _, wn := range r.Warnings {
		rank := "    "
		if wn.High() {
			rank = "HIGH"
		}
		lines = append(lines, fmt.Sprintf("[%s] %s", rank, wn.Message))
	}
	return lines
}

func equalSources(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for p, c := range a {
		if b[p] != c {
			return false
		}
	}
	return true
}

// diffSources computes the delta request body taking old to new.
func diffSources(old, new map[string]string) (changed map[string]string, removed []string) {
	changed = make(map[string]string)
	for p, c := range new {
		if prev, ok := old[p]; !ok || prev != c {
			changed[p] = c
		}
	}
	for p := range old {
		if _, ok := new[p]; !ok {
			removed = append(removed, p)
		}
	}
	sort.Strings(removed)
	return changed, removed
}

// diffLines returns the multiset differences new-minus-old (added)
// and old-minus-new (removed), preserving new's order for additions.
func diffLines(old, new []string) (added, removed []string) {
	count := make(map[string]int)
	for _, l := range old {
		count[l]++
	}
	for _, l := range new {
		if count[l] > 0 {
			count[l]--
		} else {
			added = append(added, l)
		}
	}
	for _, l := range old {
		if count[l] > 0 {
			count[l]--
			removed = append(removed, l)
		}
	}
	return added, removed
}
