// Command regionwiz analyzes C programs using region-based memory
// management and reports region lifetime inconsistencies.
//
// Usage:
//
//	regionwiz [flags] file.c...
//
// Flags:
//
//	-entry name        program entry function (default "main")
//	-api apr|rc|both   region interface (default "both")
//	-context-cap N     per-function calling-context cap (default 4096)
//	-no-heap-cloning   disable heap cloning (lower precision)
//	-backend x         "explicit" or "bdd" pair computation
//	-high-only         print only high-ranked warnings
//	-stats             print the Figure 11 stats line only
//	-json              print the report as JSON
//	-entries a,b,c     open-program analysis with the given roots
//	-kcfa K            k-CFA call-string contexts instead of call paths
//	-refine            enable the def-use (Figure 5(b)) refinement
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	regionwiz "repro"
)

func main() {
	entry := flag.String("entry", "main", "program entry function")
	api := flag.String("api", "both", "region interface: apr, rc, or both")
	contextCap := flag.Uint64("context-cap", 4096, "per-function context cap")
	noHeapCloning := flag.Bool("no-heap-cloning", false, "disable heap cloning")
	backend := flag.String("backend", "explicit", "pair computation backend: explicit or bdd")
	highOnly := flag.Bool("high-only", false, "print only high-ranked warnings")
	statsOnly := flag.Bool("stats", false, "print stats only")
	jsonOut := flag.Bool("json", false, "print the report as JSON")
	entries := flag.String("entries", "", "comma-separated analysis roots for open-program (library) analysis")
	kcfa := flag.Int("kcfa", 0, "use k-CFA call-string contexts of this depth instead of call-path cloning")
	refine := flag.Bool("refine", false, "enable the def-use (Figure 5(b)) refinement")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "regionwiz: no input files")
		flag.Usage()
		os.Exit(2)
	}

	opts := regionwiz.Options{
		Entry:            *entry,
		ContextCap:       *contextCap,
		HeapCloning:      regionwiz.Bool(!*noHeapCloning),
		KCFA:             *kcfa,
		DefUseRefinement: *refine,
	}
	if *entries != "" {
		opts.Entries = strings.Split(*entries, ",")
	}
	switch *api {
	case "apr":
		opts.API = regionwiz.APRPools()
	case "rc":
		opts.API = regionwiz.RCRegions()
	case "both":
		opts.API = regionwiz.MergeAPIs(regionwiz.APRPools(), regionwiz.RCRegions())
	default:
		fmt.Fprintf(os.Stderr, "regionwiz: unknown -api %q\n", *api)
		os.Exit(2)
	}
	switch *backend {
	case "explicit":
		opts.Backend = regionwiz.ExplicitBackend
	case "bdd":
		opts.Backend = regionwiz.BDDBackend
	default:
		fmt.Fprintf(os.Stderr, "regionwiz: unknown -backend %q\n", *backend)
		os.Exit(2)
	}

	a, err := regionwiz.AnalyzeFiles(opts, flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "regionwiz: %v\n", err)
		os.Exit(1)
	}
	report := a.Report
	switch {
	case *jsonOut:
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "regionwiz: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(string(data))
	case *statsOnly:
		s := report.Stats
		fmt.Printf("time=%v R=%d H=%d sub=%d own=%d heap=%d R-pair=%d O-pair=%d I-pair=%d high=%d contexts=%d\n",
			s.Time, s.R, s.H, s.Sub, s.Own, s.Heap, s.RPairs, s.OPairs, s.IPairs, s.High, s.Contexts)
	case *highOnly:
		hw := report.HighWarnings()
		fmt.Printf("regionwiz: %d high-ranked warning(s)\n", len(hw))
		for i, w := range hw {
			fmt.Printf("%3d [HIGH] %s\n", i+1, w.Message)
		}
	default:
		fmt.Print(report)
	}
	if len(report.Warnings) > 0 {
		os.Exit(3)
	}
}
