// Command regionwiz analyzes C programs using region-based memory
// management and reports region lifetime inconsistencies.
//
// Usage:
//
//	regionwiz [flags] file.c... [dir...]
//
// Each directory argument is an independent file set (every .c file
// inside, non-recursive); loose file arguments together form one more
// set. Multiple sets are analyzed concurrently by a bounded worker
// pool and reported in argument order.
//
// Flags:
//
//	-entry name        program entry function (default "main")
//	-api apr|rc|both   region interface (default "both")
//	-context-cap N     per-function calling-context cap (default 4096)
//	-no-heap-cloning   disable heap cloning (lower precision)
//	-backend x         "explicit" or "bdd" pair computation
//	-high-only         print only high-ranked warnings
//	-stats             print the Figure 11 stats line only
//	-json              print the report as JSON
//	-explain id|all    print why-provenance for one warning (1-based id)
//	                   or every warning: the derivation tree from the
//	                   reported instruction pair back to base facts with
//	                   source positions. With -json the trees follow the
//	                   report as a second JSON document (schema
//	                   "regionwiz/explain/v1"). Reports are byte-identical
//	                   with or without -explain.
//	-entries a,b,c     open-program analysis with the given roots
//	-kcfa K            k-CFA call-string contexts instead of call paths
//	-context-policy x  context numbering policy: "clone" (call-path
//	                   cloning, the default), "kcfa" (with -kcfa K), or
//	                   "origin" (allocation-site origin sensitivity —
//	                   a documented precision throttle; the report is
//	                   marked)
//	-pts-limit N       cap each variable's points-to set at N; overflow
//	                   collapses to a tainted ⊤ object (documented
//	                   unsound throttle; the report is marked)
//	-query src,dst     demand pair query instead of a full report: is
//	                   an access from the allocation site src to dst
//	                   ("file:line" or "file:line:col") inconsistent?
//	                   Only the two sites' cone is checked — the global
//	                   pair fixpoint never runs. With -json the answer
//	                   is a "regionwiz/query/v1" document. The verdict
//	                   agrees with the full analysis; exit code 3 means
//	                   inconsistent.
//	-refine            enable the def-use (Figure 5(b)) refinement
//	-jobs N            analyze N file sets concurrently (default GOMAXPROCS)
//	-solver-workers N  shard each analysis across N workers (0 or 1 =
//	                   sequential; reports are identical either way)
//	-bdd-node-size N   initial BDD node-table capacity for -backend bdd
//	-bdd-cache-ratio N BDD node-table slots per op-cache slot
//	-bdd-gc            enable BDD kernel mark-and-sweep GC
//	-bdd-gc-threshold N  minimum live nodes before a collection runs
//	-bdd-reorder       enable sifting-based BDD variable reordering
//	-timeout D         abort the whole run after D (e.g. 30s, 5m)
//	-watch             poll the arguments and re-analyze on change,
//	                   printing only the warning diff; unchanged files
//	                   reuse the previous run's parse/check/lower work
//	                   and rapid saves are debounced (other output flags
//	                   do not apply)
//	-watch-interval D  poll interval for -watch (default 500ms)
//	-phase-stats       print the per-phase pipeline cost table
//	-trace f           write a Chrome trace_event JSON trace to f
//	                   (open in chrome://tracing or ui.perfetto.dev;
//	                   schema "regionwiz/trace/v1")
//	-cpuprofile f      write a CPU profile to f
//	-memprofile f      write a heap profile to f
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	regionwiz "repro"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

func main() { os.Exit(run()) }

func run() int {
	entry := flag.String("entry", "main", "program entry function")
	api := flag.String("api", "both", "region interface: apr, rc, or both")
	contextCap := flag.Uint64("context-cap", 4096, "per-function context cap")
	noHeapCloning := flag.Bool("no-heap-cloning", false, "disable heap cloning")
	backend := flag.String("backend", "explicit", "pair computation backend: explicit or bdd")
	highOnly := flag.Bool("high-only", false, "print only high-ranked warnings")
	statsOnly := flag.Bool("stats", false, "print stats only")
	jsonOut := flag.Bool("json", false, "print the report as JSON")
	explainSel := flag.String("explain", "", "explain warning derivations: a 1-based warning id or \"all\"")
	entries := flag.String("entries", "", "comma-separated analysis roots for open-program (library) analysis")
	kcfa := flag.Int("kcfa", 0, "use k-CFA call-string contexts of this depth instead of call-path cloning")
	contextPolicy := flag.String("context-policy", "", "context numbering policy: clone, kcfa, or origin (default derived from -kcfa)")
	ptsLimit := flag.Int("pts-limit", 0, "cap each variable's points-to set; overflow collapses to a tainted ⊤ object (0 = unlimited)")
	querySel := flag.String("query", "", "demand pair query \"src,dst\" (allocation sites as file:line or file:line:col) instead of a full report")
	refine := flag.Bool("refine", false, "enable the def-use (Figure 5(b)) refinement")
	jobs := flag.Int("jobs", 0, "number of file sets analyzed concurrently (0 = GOMAXPROCS)")
	solverWorkers := flag.Int("solver-workers", 0, "shard each analysis across this many workers (0 or 1 = sequential; reports are identical)")
	bddNodeSize := flag.Int("bdd-node-size", 0, "initial BDD node-table capacity for -backend bdd (0 = kernel default)")
	bddCacheRatio := flag.Int("bdd-cache-ratio", 0, "BDD node-table slots per op-cache slot (0 = kernel default)")
	bddGC := flag.Bool("bdd-gc", false, "enable BDD kernel mark-and-sweep GC at solver safe points")
	bddGCThreshold := flag.Int("bdd-gc-threshold", 0, "minimum live BDD nodes before a pressured collection runs (0 = kernel default)")
	bddReorder := flag.Bool("bdd-reorder", false, "enable sifting-based BDD variable reordering between datalog strata")
	timeout := flag.Duration("timeout", 0, "abort the whole run after this long (0 = no limit)")
	phaseStats := flag.Bool("phase-stats", false, "print the per-phase pipeline cost table")
	watch := flag.Bool("watch", false, "re-analyze on file change, printing only the warning diff")
	watchInterval := flag.Duration("watch-interval", 500*time.Millisecond, "poll interval for -watch")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON trace to this file")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "regionwiz: no input files")
		flag.Usage()
		return 2
	}

	opts := regionwiz.Options{
		Entry:            *entry,
		ContextCap:       *contextCap,
		HeapCloning:      regionwiz.Bool(!*noHeapCloning),
		KCFA:             *kcfa,
		ContextPolicy:    *contextPolicy,
		DefUseRefinement: *refine,
	}
	opts.Solver.PtsLimit = *ptsLimit
	explainWarning := 0
	if *explainSel != "" {
		if *explainSel != "all" {
			n, err := strconv.Atoi(*explainSel)
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "regionwiz: -explain wants a 1-based warning id or \"all\", got %q\n", *explainSel)
				return 2
			}
			explainWarning = n
		}
		// Record witnesses during the solve where the backend supports
		// it (explicit); the BDD backend answers by replay. Either way
		// the report bytes are unchanged.
		opts.Provenance = true
	}
	opts.Solver.Workers = *solverWorkers
	opts.Solver.BDD.NodeSize = *bddNodeSize
	opts.Solver.BDD.CacheRatio = *bddCacheRatio
	opts.Solver.BDD.GC = *bddGC
	opts.Solver.BDD.GCThreshold = *bddGCThreshold
	opts.Solver.BDD.Reorder = *bddReorder
	if *entries != "" {
		opts.Entries = strings.Split(*entries, ",")
	}
	switch *api {
	case "apr":
		opts.API = regionwiz.APRPools()
	case "rc":
		opts.API = regionwiz.RCRegions()
	case "both":
		opts.API = regionwiz.MergeAPIs(regionwiz.APRPools(), regionwiz.RCRegions())
	default:
		fmt.Fprintf(os.Stderr, "regionwiz: unknown -api %q\n", *api)
		return 2
	}
	switch *backend {
	case "explicit":
		opts.Solver.Backend = regionwiz.ExplicitBackend
	case "bdd":
		opts.Solver.Backend = regionwiz.BDDBackend
	default:
		fmt.Fprintf(os.Stderr, "regionwiz: unknown -backend %q\n", *backend)
		return 2
	}

	if *querySel != "" {
		srcSite, dstSite, ok := strings.Cut(*querySel, ",")
		if !ok || srcSite == "" || dstSite == "" {
			fmt.Fprintf(os.Stderr, "regionwiz: -query wants \"src,dst\" allocation sites, got %q\n", *querySel)
			return 2
		}
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		return runQuery(ctx, flag.Args(), opts, srcSite, dstSite, *jsonOut)
	}

	if *watch {
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		return runWatch(ctx, flag.Args(), opts, *watchInterval)
	}

	sets, err := fileSets(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "regionwiz: %v\n", err)
		return 1
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "regionwiz: -cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "regionwiz: -cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var tracer *trace.Tracer
	if *traceOut != "" {
		tracer = trace.New()
		ctx = trace.WithTracer(ctx, tracer)
	}

	results := pipeline.RunCorpus(ctx, sets, *jobs,
		func(ctx context.Context, set fileSet) (*regionwiz.Analysis, error) {
			// Each file set gets its own root span (and so its own
			// lane in the Chrome view) named after the set.
			ctx, sp := trace.StartSpan(ctx, "analyze:"+set.name)
			a, err := regionwiz.AnalyzeFilesContext(ctx, opts, set.files...)
			sp.End(trace.Bool("error", err != nil))
			return a, err
		})

	code := 0
	for i, res := range results {
		if len(sets) > 1 {
			fmt.Printf("== %s ==\n", sets[i].name)
		}
		if res.Err != nil {
			fmt.Fprintf(os.Stderr, "regionwiz: %s: %v\n", sets[i].name, res.Err)
			code = 1
			continue
		}
		report := res.Out.Report
		switch {
		case *jsonOut:
			data, err := json.MarshalIndent(report, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "regionwiz: %v\n", err)
				return 1
			}
			fmt.Println(string(data))
		case *statsOnly:
			s := report.Stats
			fmt.Printf("time=%v R=%d H=%d sub=%d own=%d heap=%d R-pair=%d O-pair=%d I-pair=%d high=%d contexts=%d\n",
				s.Time, s.R, s.H, s.Sub, s.Own, s.Heap, s.RPairs, s.OPairs, s.IPairs, s.High, s.Contexts)
		case *highOnly:
			hw := report.HighWarnings()
			fmt.Printf("regionwiz: %d high-ranked warning(s)\n", len(hw))
			for i, w := range hw {
				fmt.Printf("%3d [HIGH] %s\n", i+1, w.Message)
			}
		default:
			fmt.Print(report)
		}
		if *explainSel != "" {
			if err := printExplanations(ctx, res.Out, explainWarning, *jsonOut); err != nil {
				fmt.Fprintf(os.Stderr, "regionwiz: %s: %v\n", sets[i].name, err)
				code = 1
			}
		}
		if *phaseStats {
			printPhaseStats(report.Stats.Phases)
		}
		if len(report.Warnings) > 0 && code == 0 {
			code = 3
		}
	}

	if tracer != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "regionwiz: -trace: %v\n", err)
			return 1
		}
		werr := tracer.WriteChromeTrace(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "regionwiz: -trace: %v\n", werr)
			return 1
		}
		fmt.Fprintf(os.Stderr, "regionwiz: wrote %d trace records to %s\n", tracer.Len(), *traceOut)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "regionwiz: -memprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "regionwiz: -memprofile: %v\n", err)
			return 1
		}
	}
	return code
}

// runQuery is the -query mode: one demand pair verdict per file set
// instead of a full report. Exit codes mirror the report mode: 1 on
// error, 3 when any set's verdict is inconsistent, 0 otherwise.
func runQuery(ctx context.Context, args []string, opts regionwiz.Options, srcSite, dstSite string, jsonOut bool) int {
	sets, err := fileSets(args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "regionwiz: %v\n", err)
		return 1
	}
	code := 0
	for _, set := range sets {
		if len(sets) > 1 {
			fmt.Printf("== %s ==\n", set.name)
		}
		ans, err := regionwiz.QueryPairFiles(ctx, opts, srcSite, dstSite, set.files...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "regionwiz: %s: %v\n", set.name, err)
			code = 1
			continue
		}
		if jsonOut {
			data, err := json.MarshalIndent(ans, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "regionwiz: %v\n", err)
				return 1
			}
			fmt.Println(string(data))
		} else {
			fmt.Println(ans)
		}
		if ans.Inconsistent && code == 0 {
			code = 3
		}
	}
	return code
}

// fileSet is one independently analyzed program.
type fileSet struct {
	name  string
	files []string
}

// fileSets groups the command-line arguments: every directory becomes
// its own set (all .c files directly inside, sorted), and loose files
// together form one set placed at the position of the first loose
// argument.
func fileSets(args []string) ([]fileSet, error) {
	var sets []fileSet
	var loose []string
	looseAt := -1
	for _, arg := range args {
		st, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !st.IsDir() {
			if looseAt < 0 {
				looseAt = len(sets)
				sets = append(sets, fileSet{}) // placeholder
			}
			loose = append(loose, arg)
			continue
		}
		matches, err := filepath.Glob(filepath.Join(arg, "*.c"))
		if err != nil {
			return nil, err
		}
		if len(matches) == 0 {
			return nil, fmt.Errorf("%s: no .c files", arg)
		}
		sort.Strings(matches)
		sets = append(sets, fileSet{name: arg, files: matches})
	}
	if looseAt >= 0 {
		sets[looseAt] = fileSet{name: strings.Join(loose, " "), files: loose}
	}
	return sets, nil
}

// printExplanations renders -explain output for one analyzed set:
// derivation trees from the warning's instruction pair back to base
// facts with source positions. warning 0 means every warning; with
// jsonOut the trees are emitted as the versioned explanation document
// (schema "regionwiz/explain/v1") after the report JSON.
func printExplanations(ctx context.Context, a *regionwiz.Analysis, warning int, jsonOut bool) error {
	ex, err := a.Explainer(ctx)
	if err != nil {
		return err
	}
	var exps []*regionwiz.Explanation
	if warning == 0 {
		exps, err = ex.ExplainAll(ctx)
	} else {
		var e *regionwiz.Explanation
		if e, err = ex.Explain(ctx, warning); err == nil {
			exps = []*regionwiz.Explanation{e}
		}
	}
	if err != nil {
		return err
	}
	if jsonOut {
		data, err := regionwiz.MarshalExplanations(exps)
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	if len(exps) == 0 {
		fmt.Println("regionwiz: no warnings to explain")
		return nil
	}
	for _, e := range exps {
		fmt.Print(e)
	}
	return nil
}

// printPhaseStats renders the pipeline cost table.
func printPhaseStats(phases []regionwiz.PhaseStat) {
	fmt.Printf("%-10s %12s %12s  %s\n", "phase", "time", "alloc", "outputs")
	var total time.Duration
	for _, p := range phases {
		keys := make([]string, 0, len(p.Outputs))
		for k := range p.Outputs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var outs []string
		for _, k := range keys {
			outs = append(outs, fmt.Sprintf("%s=%d", k, p.Outputs[k]))
		}
		fmt.Printf("%-10s %12v %12s  %s\n",
			p.Name, p.Time.Round(time.Microsecond), fmtBytes(p.AllocBytes),
			strings.Join(outs, " "))
		total += p.Time
	}
	fmt.Printf("%-10s %12v\n", "total", total.Round(time.Microsecond))
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fkB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
