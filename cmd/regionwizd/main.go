// Command regionwizd serves the RegionWiz analysis as a long-running
// HTTP daemon with a content-addressed result cache and bounded
// admission control: repeated identical requests are answered from
// cache, concurrent identical requests share one pipeline run, and
// overload degrades into fast 429 responses instead of unbounded
// goroutines.
//
// Usage:
//
//	regionwizd [flags]
//
// Endpoints:
//
//	POST /v1/analyze   {"sources": {"path": "content", ...},
//	                    "options": {"entry": "main", "api": "both", ...}}
//	                   -> {"cached": bool, "key": "...", "report": {...}}
//	                   (report schema "regionwiz/report/v1")
//	GET  /v1/healthz   liveness probe
//	GET  /v1/metrics   Prometheus text exposition
//	GET  /v1/stats     counters as JSON
//
// Flags:
//
//	-addr host:port       listen address (default "127.0.0.1:8747")
//	-workers N            concurrent pipeline runs (default GOMAXPROCS)
//	-queue-depth N        waiting requests beyond the pool (default 64)
//	-cache-entries N      LRU result cache size (default 128; -1 disables)
//	-request-timeout D    per-request deadline, queue wait included (default 2m)
//	-bdd-node-size N      initial BDD node-table capacity for bdd-backend
//	                      runs (0 = kernel default, 8192)
//	-bdd-cache-ratio N    BDD node-table slots per op-cache slot
//	                      (0 = kernel default, 1)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/bdd"
	"repro/internal/service"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", "127.0.0.1:8747", "listen address")
	workers := flag.Int("workers", 0, "concurrent pipeline runs (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 64, "waiting requests beyond the worker pool")
	cacheEntries := flag.Int("cache-entries", 128, "LRU result cache size (-1 disables caching)")
	requestTimeout := flag.Duration("request-timeout", 2*time.Minute, "per-request deadline including queue wait (0 = none)")
	bddNodeSize := flag.Int("bdd-node-size", 0, "initial BDD node-table capacity for bdd-backend runs (0 = kernel default)")
	bddCacheRatio := flag.Int("bdd-cache-ratio", 0, "BDD node-table slots per op-cache slot (0 = kernel default)")
	flag.Parse()

	svc := service.New(service.Config{
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		CacheEntries:   *cacheEntries,
		RequestTimeout: *requestTimeout,
		BDD:            bdd.Config{NodeSize: *bddNodeSize, CacheRatio: *bddCacheRatio},
	})
	server := &http.Server{
		Addr:              *addr,
		Handler:           logRequests(service.NewHandler(svc)),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- server.ListenAndServe() }()
	log.Printf("regionwizd: listening on %s (workers=%d queue=%d cache=%d timeout=%v)",
		*addr, *workers, *queueDepth, *cacheEntries, *requestTimeout)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("regionwizd: %v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := server.Shutdown(ctx); err != nil {
			log.Printf("regionwizd: shutdown: %v", err)
		}
		svc.Close()
		st := svc.Stats()
		log.Printf("regionwizd: served %d requests (%d hits, %d misses, %d coalesced, %d overloads)",
			st.Requests, st.Hits, st.Misses, st.Coalesced, st.Overloads)
		return 0
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return 0
		}
		fmt.Fprintf(os.Stderr, "regionwizd: %v\n", err)
		return 1
	}
}

// logRequests is a minimal access log: method, path, status, wall.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		log.Printf("%s %s %d %v", r.Method, r.URL.Path, sw.status, time.Since(t0).Round(time.Microsecond))
	})
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}
