// Command regionwizd serves the RegionWiz analysis as a long-running
// HTTP daemon with a content-addressed result cache and bounded
// admission control: repeated identical requests are answered from
// cache, concurrent identical requests share one pipeline run, and
// overload degrades into fast 429 responses instead of unbounded
// goroutines.
//
// Usage:
//
//	regionwizd [flags]
//
// Endpoints:
//
//	POST /v1/analyze   {"sources": {"path": "content", ...},
//	                    "options": {"entry": "main", "api": "both", ...},
//	                    "trace": bool}
//	                   -> {"cached": bool, "key": "...", "report": {...},
//	                       "trace": {...}}
//	                   (report schema "regionwiz/report/v1"; the trace
//	                   key is present only when requested and carries a
//	                   Chrome trace_event document, schema
//	                   "regionwiz/trace/v1")
//	                   Delta form (schema "regionwiz/delta/v1"): instead
//	                   of "sources", send {"base": "<key of a prior
//	                   response>", "changed": {"path": "content", ...},
//	                   "removed": ["path", ...]} — the daemon reuses the
//	                   base run's per-file front end and answers with the
//	                   same report the full request would produce plus a
//	                   "delta" block. If the base snapshot was evicted the
//	                   response is 409 with kind "snapshot_gone"; resend
//	                   the full sources.
//	GET  /v1/explain   ?key=<analyze response key>&warning=<1-based id|all>
//	                   -> {"schema": "regionwiz/explain/v1", "key": "...",
//	                       "warnings_total": N, "explanations": [...]}
//	                   why-provenance: each explanation is the derivation
//	                   tree from the warning's instruction pair back to
//	                   base facts with source positions. Explanations are
//	                   keyed off the result cache; an evicted key answers
//	                   409 with kind "snapshot_gone" — re-run the analysis
//	                   (the key is content-addressed and comes back
//	                   identical) and retry. Results without recorded
//	                   provenance (the bdd backend, or "provenance" unset
//	                   on the analyze request) are answered by
//	                   demand-driven replay ("replayed": true) with
//	                   byte-identical trees.
//	GET  /v1/query     ?key=<analyze response key>&src=<file:line[:col]>
//	                   &dst=<file:line[:col]>
//	                   -> {"schema": "regionwiz/query/v1", "key": "...",
//	                       "answer": {...}}
//	                   demand pair verdict: whether objects allocated at
//	                   src may hold dangling pointers into objects
//	                   allocated at dst, answered against the cached
//	                   result without re-running the pair fixpoint. The
//	                   verdict always agrees with the full report.
//	                   Evicted keys answer 409 ("snapshot_gone"); an
//	                   unknown allocation site answers 422. Throttled
//	                   runs (points-to cap, capped contexts, origin
//	                   policy) carry "throttled": true in the answer.
//	GET  /v1/healthz   liveness probe
//	GET  /v1/metrics   Prometheus text exposition (counters, gauges, and
//	                   latency histograms: regionwizd_analyze_duration_seconds,
//	                   regionwizd_queue_wait_seconds,
//	                   regionwizd_phase_duration_seconds{phase=...},
//	                   regionwizd_explain_duration_seconds,
//	                   regionwizd_query_duration_seconds, plus
//	                   regionwizd_warnings_total,
//	                   regionwizd_explain_requests_total,
//	                   regionwizd_explain_replays_total,
//	                   regionwizd_query_requests_total,
//	                   regionwizd_query_inconsistent_total, and the
//	                   regionwizd_bdd_peak_nodes gauge — the largest
//	                   single-request BDD node peak, never summed across
//	                   requests)
//	GET  /v1/stats     counters as JSON
//
// Logs are structured (log/slog, logfmt-style text): every request
// gets a short random id carried through handler spans, and access
// lines keep the method/path/status/wall fields. 4xx/5xx responses
// also log a "request failed" line and echo the id in the error body's
// "request_id" field, so a failure response correlates directly with
// its log lines.
//
// Flags:
//
//	-addr host:port       listen address (default "127.0.0.1:8747")
//	-workers N            concurrent pipeline runs (default GOMAXPROCS)
//	-queue-depth N        waiting requests beyond the pool (default 64)
//	-cache-entries N      LRU result cache size (default 128; -1 disables)
//	-snapshot-entries N   front-end snapshot store size for delta requests
//	                      (default 16; -1 disables delta analysis)
//	-request-timeout D    per-request deadline, queue wait included (default 2m)
//	-bdd-node-size N      initial BDD node-table capacity for bdd-backend
//	                      runs (0 = kernel default, 8192)
//	-bdd-cache-ratio N    BDD node-table slots per op-cache slot
//	                      (0 = kernel default, 1)
//	-bdd-gc               enable BDD kernel mark-and-sweep GC
//	-bdd-gc-threshold N   minimum live nodes before a collection runs
//	-bdd-reorder          enable sifting-based BDD variable reordering
//	-solver-workers N     default per-request solve parallelism for
//	                      requests that do not set solver_workers
//	                      (0 or 1 = sequential; reports are identical
//	                      for every worker count)
//	-pprof-addr host:port serve net/http/pprof on a SEPARATE listener
//	                      (off by default; keep it on localhost — the
//	                      profiling endpoints are not authenticated)
//	-log-level level      debug, info, warn, or error (default info)
package main

import (
	"context"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/bdd"
	"repro/internal/service"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", "127.0.0.1:8747", "listen address")
	workers := flag.Int("workers", 0, "concurrent pipeline runs (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 64, "waiting requests beyond the worker pool")
	cacheEntries := flag.Int("cache-entries", 128, "LRU result cache size (-1 disables caching)")
	snapshotEntries := flag.Int("snapshot-entries", 0, "front-end snapshot store size for delta requests (0 = default 16, -1 disables)")
	requestTimeout := flag.Duration("request-timeout", 2*time.Minute, "per-request deadline including queue wait (0 = none)")
	bddNodeSize := flag.Int("bdd-node-size", 0, "initial BDD node-table capacity for bdd-backend runs (0 = kernel default)")
	bddCacheRatio := flag.Int("bdd-cache-ratio", 0, "BDD node-table slots per op-cache slot (0 = kernel default)")
	bddGC := flag.Bool("bdd-gc", false, "enable BDD kernel mark-and-sweep GC for bdd-backend runs")
	bddGCThreshold := flag.Int("bdd-gc-threshold", 0, "minimum live BDD nodes before a pressured collection runs (0 = kernel default)")
	bddReorder := flag.Bool("bdd-reorder", false, "enable sifting-based BDD variable reordering between datalog strata")
	solverWorkers := flag.Int("solver-workers", 0, "default per-request solve parallelism for requests that do not set solver_workers (0 or 1 = sequential)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (empty = off)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, or error")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "regionwizd: bad -log-level %q: %v\n", *logLevel, err)
		return 2
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)

	svc := service.New(service.Config{
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		CacheEntries:    *cacheEntries,
		SnapshotEntries: *snapshotEntries,
		RequestTimeout:  *requestTimeout,
		BDD: bdd.Config{
			NodeSize:    *bddNodeSize,
			CacheRatio:  *bddCacheRatio,
			GC:          *bddGC,
			GCThreshold: *bddGCThreshold,
			Reorder:     *bddReorder,
		},
		SolverWorkers: *solverWorkers,
	})
	server := &http.Server{
		Addr:              *addr,
		Handler:           logRequests(logger, service.NewHandler(svc)),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- server.ListenAndServe() }()
	logger.Info("listening",
		"addr", *addr, "workers", *workers, "queue", *queueDepth,
		"cache", *cacheEntries, "timeout", *requestTimeout)

	var pprofServer *http.Server
	if *pprofAddr != "" {
		// An explicit mux on a separate listener: the profiling
		// endpoints never share a port with the analysis API, so an
		// exposed -addr does not also expose pprof.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofServer = &http.Server{Addr: *pprofAddr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := pprofServer.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof server failed", "err", err)
			}
		}()
		logger.Info("pprof listening", "addr", *pprofAddr)
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		logger.Info("shutting down", "signal", sig.String())
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := server.Shutdown(ctx); err != nil {
			logger.Error("shutdown", "err", err)
		}
		if pprofServer != nil {
			pprofServer.Shutdown(ctx)
		}
		svc.Close()
		st := svc.Stats()
		logger.Info("served",
			"requests", st.Requests, "hits", st.Hits, "misses", st.Misses,
			"coalesced", st.Coalesced, "overloads", st.Overloads)
		return 0
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return 0
		}
		fmt.Fprintf(os.Stderr, "regionwizd: %v\n", err)
		return 1
	}
}

// idSource generates short random request ids (not cryptographic —
// they only correlate log lines and trace spans).
var idSource = struct {
	mu sync.Mutex
	r  *rand.Rand
}{r: rand.New(rand.NewSource(time.Now().UnixNano()))}

func newRequestID() string {
	var b [6]byte
	idSource.mu.Lock()
	idSource.r.Read(b[:])
	idSource.mu.Unlock()
	return hex.EncodeToString(b[:])
}

// logRequests is the access log: method, path, status, wall — the same
// fields the daemon always logged, now as structured attributes plus a
// per-request id that also reaches handler spans via the context.
func logRequests(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		id := newRequestID()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r.WithContext(service.WithRequestID(r.Context(), id)))
		logger.Info("request",
			"id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"wall", time.Since(t0).Round(time.Microsecond).String())
	})
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}
