package regionwiz

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const quickstartSrc = `
typedef struct region_t region_t;
extern region_t *rnew(region_t *parent);
extern void *ralloc(region_t *r);

struct conn_t { int fd; };
struct req_t { struct conn_t *connection; };

int main(void) {
    region_t *r; region_t *subr;
    struct conn_t *conn; struct req_t *req;
    r = rnew(NULL);
    conn = ralloc(r);
    subr = rnew(NULL);   /* BUG: sibling */
    req = ralloc(subr);
    req->connection = conn;
    return 0;
}
`

func TestAnalyzePublicAPI(t *testing.T) {
	report, err := Analyze(Options{}, map[string]string{"q.c": quickstartSrc})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Warnings) != 1 || report.Stats.High != 1 {
		t.Fatalf("facade analyze: %s", report)
	}
	if !strings.Contains(report.String(), "HIGH") {
		t.Fatal("report rendering lost the rank")
	}
}

func TestAnalyzeSourceExposesAnalysis(t *testing.T) {
	a, err := AnalyzeSource(Options{}, map[string]string{"q.c": quickstartSrc})
	if err != nil {
		t.Fatal(err)
	}
	if a.Report == nil || a.Prog == nil || a.Graph == nil {
		t.Fatal("analysis state incomplete")
	}
	if a.RegionCount() != 2 {
		t.Fatalf("R = %d, want 2", a.RegionCount())
	}
	// The Definition 4.1 correlation is exposed and inconsistent here.
	if a.Correlation().Consistent() {
		t.Fatal("correlation should be inconsistent")
	}
}

func TestAnalyzeFilesFromDisk(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prog.c")
	if err := os.WriteFile(path, []byte(quickstartSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := AnalyzeFiles(Options{}, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Report.Warnings) != 1 {
		t.Fatalf("file analyze: %s", a.Report)
	}
	// Positions reference the on-disk path.
	if !strings.Contains(a.Report.Warnings[0].Message, "prog.c") {
		t.Fatalf("warning does not cite the file: %s", a.Report.Warnings[0].Message)
	}
}

func TestAnalyzeFilesMissingFile(t *testing.T) {
	if _, err := AnalyzeFiles(Options{}, "/does/not/exist.c"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestMergedAPIsAcceptBothInterfaces(t *testing.T) {
	src := `
typedef struct region_t region_t;
typedef struct apr_pool_t apr_pool_t;
extern region_t *rnew(region_t *parent);
extern void *ralloc(region_t *r);
extern long apr_pool_create(apr_pool_t **newp, apr_pool_t *parent);
extern void *apr_palloc(apr_pool_t *p, unsigned long n);
int main(void) {
    region_t *r;
    apr_pool_t *p;
    void *a; void *b;
    r = rnew(NULL);
    apr_pool_create(&p, NULL);
    a = ralloc(r);
    b = apr_palloc(p, 8);
    return 0;
}`
	a, err := AnalyzeSource(Options{API: MergeAPIs(APRPools(), RCRegions())},
		map[string]string{"mixed.c": src})
	if err != nil {
		t.Fatal(err)
	}
	if a.Report.Stats.R != 2 || a.Report.Stats.H != 2 {
		t.Fatalf("mixed interfaces: R=%d H=%d, want 2/2", a.Report.Stats.R, a.Report.Stats.H)
	}
}

func TestBackendsExposedAndAgree(t *testing.T) {
	for _, be := range []Backend{ExplicitBackend, BDDBackend} {
		report, err := Analyze(Options{Backend: be}, map[string]string{"q.c": quickstartSrc})
		if err != nil {
			t.Fatal(err)
		}
		if len(report.Warnings) != 1 {
			t.Fatalf("backend %v: %d warnings", be, len(report.Warnings))
		}
	}
}

func TestOpenProgramViaFacade(t *testing.T) {
	lib := `
typedef struct apr_pool_t apr_pool_t;
extern long apr_pool_create(apr_pool_t **newp, apr_pool_t *parent);
extern void *apr_palloc(apr_pool_t *p, unsigned long n);
struct holder { void *data; };
void store_in_subpool(apr_pool_t *pool) {
    apr_pool_t *sub;
    struct holder *h;
    void *d;
    apr_pool_create(&sub, pool);
    h = apr_palloc(pool, 16);
    d = apr_palloc(sub, 16);
    h->data = d;
}`
	a, err := AnalyzeSource(Options{Entries: []string{"store_in_subpool"}},
		map[string]string{"lib.c": lib})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Report.Warnings) == 0 {
		t.Fatal("library-mode analysis missed the inconsistency")
	}
}
