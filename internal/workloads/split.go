package workloads

import (
	"fmt"
	"strings"
)

// SplitSource divides one CMinor translation unit into n files that
// check to the same program. The front end is per-file — the parser
// needs typedefs in scope and the checker resolves declarations
// globally — so the split replicates the "header" (typedefs, extern
// declarations, opaque struct forwards) into every chunk, keeps each
// struct definition in exactly one chunk (a redefinition is an error)
// with a forward declaration in the shared header, and distributes the
// remaining top-level segments contiguously by size. This is what
// turns a generated single-file workload into a multi-file corpus for
// the incremental benchmark: editing one chunk leaves the others
// byte-identical.
func SplitSource(src string, n int) []string {
	if n <= 1 {
		return []string{src}
	}
	var header strings.Builder
	var body []string
	for _, seg := range splitSegments(src) {
		switch classifySegment(seg) {
		case segHeader:
			header.WriteString(strings.TrimSpace(seg))
			header.WriteString("\n")
		case segStructDef:
			if tag := structTag(seg); tag != "" {
				fmt.Fprintf(&header, "struct %s;\n", tag)
			}
			body = append(body, seg)
		default:
			body = append(body, seg)
		}
	}
	if n > len(body) {
		n = len(body)
	}
	if n < 1 {
		n = 1
	}
	total := 0
	for _, seg := range body {
		total += len(seg)
	}
	budget := total/n + 1

	chunks := make([]string, 0, n)
	var cur strings.Builder
	cur.WriteString(header.String())
	size := 0
	for i, seg := range body {
		cur.WriteString(strings.TrimSpace(seg))
		cur.WriteString("\n\n")
		size += len(seg)
		remSegs := len(body) - i - 1
		remChunks := n - len(chunks) - 1
		if remChunks > 0 && (size >= budget || remSegs == remChunks) {
			chunks = append(chunks, cur.String())
			cur.Reset()
			cur.WriteString(header.String())
			size = 0
		}
	}
	chunks = append(chunks, cur.String())
	return chunks
}

// SplitSourcesFor is SourcesFor with the executable's file divided
// into n chunks (zero-padded names so path order is chunk order); the
// shared library, when present, stays its own file.
func (p *Package) SplitSourcesFor(exe Exe, n int) map[string]string {
	m := make(map[string]string, n+1)
	for i, chunk := range SplitSource(exe.Source, n) {
		m[fmt.Sprintf("%s-%02d.c", exe.Name, i)] = chunk
	}
	if p.Lib != "" {
		m[p.Spec.Name+"-lib.c"] = p.Lib
	}
	return m
}

type segKind int

const (
	segBody segKind = iota
	// segHeader segments are safe (and necessary) to replicate into
	// every chunk: typedefs, extern declarations, opaque forwards.
	segHeader
	// segStructDef segments may appear only once program-wide.
	segStructDef
)

// classifySegment decides how one top-level segment splits. A segment
// starting with "struct" is a forward declaration (no brace), a type
// definition (brace before any paren), or a function returning a
// struct pointer (paren first).
func classifySegment(seg string) segKind {
	s := strings.TrimSpace(seg)
	switch {
	case strings.HasPrefix(s, "typedef"), strings.HasPrefix(s, "extern"):
		return segHeader
	case strings.HasPrefix(s, "struct"):
		brace := strings.IndexByte(s, '{')
		if brace < 0 {
			return segHeader
		}
		if paren := strings.IndexByte(s, '('); paren >= 0 && paren < brace {
			return segBody
		}
		return segStructDef
	default:
		return segBody
	}
}

// structTag extracts the tag from a struct definition segment.
func structTag(seg string) string {
	fields := strings.Fields(strings.TrimSpace(seg))
	if len(fields) < 2 || fields[0] != "struct" {
		return ""
	}
	return strings.TrimSuffix(fields[1], "{")
}

// splitSegments scans source text into top-level segments: runs ending
// at a depth-0 ";" or at a "}" closing back to depth 0 (plus its
// trailing ";" for type definitions). Comments and string/char
// literals are skipped so braces inside them do not confuse the depth
// count.
func splitSegments(src string) []string {
	var segs []string
	depth := 0
	start := 0
	i, n := 0, len(src)
	flush := func(end int) {
		if strings.TrimSpace(src[start:end]) != "" {
			segs = append(segs, src[start:end])
		}
		start = end
	}
	for i < n {
		switch c := src[i]; {
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			i += 2
			for i+1 < n && !(src[i] == '*' && src[i+1] == '/') {
				i++
			}
			i += 2
		case c == '"' || c == '\'':
			q := c
			i++
			for i < n && src[i] != q {
				if src[i] == '\\' {
					i++
				}
				i++
			}
			i++
		case c == '{':
			depth++
			i++
		case c == '}':
			depth--
			i++
			if depth == 0 {
				j := i
				for j < n && (src[j] == ' ' || src[j] == '\t' || src[j] == '\n') {
					j++
				}
				if j < n && src[j] == ';' {
					i = j + 1
				}
				flush(i)
			}
		case c == ';' && depth == 0:
			i++
			flush(i)
		default:
			i++
		}
	}
	flush(n)
	return segs
}
