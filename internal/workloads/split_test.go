package workloads

import (
	"encoding/json"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
)

// siteRE matches file:line:col source positions; splitting moves
// every declaration to a new file and line, so positions are the one
// part of a report splitting is allowed to change.
var siteRE = regexp.MustCompile(`[\w.-]+\.c:\d+:\d+`)

// stableSplitReport renders a report without the volatile stats
// (times, per-phase metrics) and with source positions normalized, so
// the split and unsplit analyses can be compared byte-for-byte.
func stableSplitReport(t *testing.T, r *core.Report) string {
	t.Helper()
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]interface{}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if stats, ok := m["stats"].(map[string]interface{}); ok {
		delete(stats, "time_ms")
		delete(stats, "phases")
	}
	// Warning order follows instruction numbering, which follows file
	// order; splitting changes both, so compare warnings as a set.
	if ws, ok := m["warnings"].([]interface{}); ok {
		norm := make([]string, len(ws))
		for i, w := range ws {
			b, err := json.Marshal(w)
			if err != nil {
				t.Fatal(err)
			}
			norm[i] = siteRE.ReplaceAllString(string(b), "SITE")
		}
		sort.Strings(norm)
		m["warnings"] = norm
	}
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return siteRE.ReplaceAllString(string(out), "SITE")
}

// TestSplitSourcePreservesReport is the core contract: a generated
// executable analyzed as n split files produces the same report —
// same warnings, same headline stats, modulo source positions — as
// the original single file, for both SharedLib and monolithic specs.
func TestSplitSourcePreservesReport(t *testing.T) {
	for _, spec := range SmallCorpus() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			pkg := Generate(spec, 2008)
			exe := pkg.Exes[0]
			whole, err := core.AnalyzeSource(core.Options{}, pkg.SourcesFor(exe))
			if err != nil {
				t.Fatalf("unsplit analysis: %v", err)
			}
			for _, n := range []int{2, 4, 8} {
				split := pkg.SplitSourcesFor(exe, n)
				got, err := core.AnalyzeSource(core.Options{}, split)
				if err != nil {
					t.Fatalf("split(%d) analysis: %v", n, err)
				}
				if want, have := stableSplitReport(t, whole.Report), stableSplitReport(t, got.Report); want != have {
					t.Fatalf("split(%d) report differs from unsplit", n)
				}
			}
		})
	}
}

func TestSplitSourceChunkCount(t *testing.T) {
	pkg := Generate(SmallCorpus()[0], 2008)
	exe := pkg.Exes[0]
	if got := SplitSource(exe.Source, 1); len(got) != 1 {
		t.Fatalf("n=1 produced %d chunks", len(got))
	}
	chunks := SplitSource(exe.Source, 4)
	if len(chunks) != 4 {
		t.Fatalf("n=4 produced %d chunks", len(chunks))
	}
	// SplitSourcesFor names the chunks in order and keeps the library.
	m := pkg.SplitSourcesFor(exe, 4)
	wantFiles := 4
	if pkg.Lib != "" {
		wantFiles++
	}
	if len(m) != wantFiles {
		t.Fatalf("SplitSourcesFor produced %d files, want %d", len(m), wantFiles)
	}
	if _, ok := m[exe.Name+"-00.c"]; !ok {
		t.Fatalf("first chunk missing from %v", keysOf(m))
	}
}

// TestSplitSourceStructDefsUnique: the checker rejects a non-opaque
// struct defined twice program-wide, so a definition must land in
// exactly one chunk while every chunk gets a forward declaration.
func TestSplitSourceStructDefsUnique(t *testing.T) {
	src := `
typedef struct region_t region_t;
extern void *ralloc(region_t *r);
struct point_t { int x; int y; };
struct point_t *mk(region_t *r) {
    struct point_t *p;
    p = ralloc(r);
    return p;
}
int use(struct point_t *p) { return p->x; }
int main(void) { return 0; }
`
	chunks := SplitSource(src, 3)
	defs := 0
	for _, c := range chunks {
		defs += strings.Count(c, "struct point_t {")
		if !strings.Contains(c, "struct point_t;") {
			t.Fatalf("chunk lacks the forward declaration:\n%s", c)
		}
		if !strings.Contains(c, "typedef struct region_t region_t;") {
			t.Fatalf("chunk lacks the replicated typedef:\n%s", c)
		}
	}
	if defs != 1 {
		t.Fatalf("struct point_t defined %d times across chunks, want exactly 1", defs)
	}
}

func keysOf(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
