package workloads

// PaperCorpus returns the six-package corpus mirroring Figure 7's
// shape: the same package names, the same executable counts, and code
// sizes in the paper's ratios (scaled down so the whole corpus
// analyzes in seconds on a laptop rather than the paper's 26-hour svn
// run on a 32 GB Xeon server — see DESIGN.md's substitution notes).
// The planted bug mix follows Figure 8: rcc carries the string-share
// case, apache is nearly clean, lklftpd has two high-ranked bugs, and
// subversion carries the bulk of the warnings including the Figure
// 9/10/12 patterns and the Section 6.2 false positive.
func PaperCorpus() []Spec {
	return []Spec{
		{
			// rcc 37 KLOC, 1 exe, RC regions; 1 high-ranked warning
			// (string case), 1 inconsistency.
			Name: "rcc", Exes: 1, Stages: 3, Depth: 3, Fanout: 2,
			FillerFuncs: 220, Interface: "rc",
			Plants: []Pattern{StringShare},
		},
		{
			// apache 42 KLOC, 9 exes; 1 high-ranked warning, 0
			// inconsistencies -> a lone false positive.
			Name: "apache", Exes: 9, Stages: 2, Depth: 3, Fanout: 2,
			FillerFuncs: 250, Interface: "apr",
			Plants: []Pattern{AliasFalsePositive},
		},
		{
			// freeswitch 109 KLOC, 1 exe; warnings but no high-ranked
			// confirmed bugs in Figure 8's table.
			Name: "freeswitch", Exes: 1, Stages: 4, Depth: 4, Fanout: 2,
			FillerFuncs: 650, Interface: "apr",
			Plants: []Pattern{TemporaryInconsistency},
		},
		{
			// jxta-c 114 KLOC, 1 exe; no reported warnings.
			Name: "jxta-c", Exes: 1, Stages: 4, Depth: 4, Fanout: 2,
			FillerFuncs: 680, Interface: "apr",
			Plants: nil,
		},
		{
			// lklftpd 5 KLOC, 1 exe; 2 high-ranked, 2 inconsistencies.
			Name: "lklftpd", Exes: 1, Stages: 2, Depth: 2, Fanout: 2,
			FillerFuncs: 30, Interface: "apr",
			Plants: []Pattern{SiblingLeak, StringShare},
		},
		{
			// subversion 240 KLOC, 9 exes; 21 high-ranked warnings and
			// 9 inconsistencies in Figure 8. We plant the same mix of
			// patterns the case studies describe. Its executables
			// share a wrapper library (the libsvn_subr shape), so
			// region creation goes through cross-file helpers —
			// exercising heap cloning exactly where the paper needed
			// it.
			Name: "subversion", Exes: 9, Stages: 3, Depth: 4, Fanout: 2,
			FillerFuncs: 1400, Interface: "apr", SharedLib: true,
			Plants: []Pattern{
				IteratorEscape, InvertedLifetime, SiblingLeak,
				StringShare, TemporaryInconsistency, AliasFalsePositive,
				SiblingLeak, InvertedLifetime, StringShare,
			},
		},
	}
}

// SmallCorpus is a fast variant for unit tests: same shapes, less
// filler and shallower pipelines.
func SmallCorpus() []Spec {
	specs := PaperCorpus()
	for i := range specs {
		specs[i].FillerFuncs = 5
		if specs[i].Depth > 3 {
			specs[i].Depth = 3
		}
	}
	return specs
}
