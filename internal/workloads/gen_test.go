package workloads

import (
	"strings"
	"testing"

	"repro/internal/cminor"
	"repro/internal/core"
)

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{Name: "x", Exes: 2, Stages: 2, Depth: 2, Fanout: 2,
		FillerFuncs: 5, Interface: "apr", Plants: []Pattern{SiblingLeak}}
	a := Generate(spec, 42)
	b := Generate(spec, 42)
	for i := range a.Exes {
		if a.Exes[i].Source != b.Exes[i].Source {
			t.Fatalf("exe %d differs between same-seed runs", i)
		}
	}
	c := Generate(spec, 43)
	if a.Exes[0].Source == c.Exes[0].Source {
		t.Fatal("different seeds produced identical source (no randomness)")
	}
}

func TestGeneratedSourcesParseAndCheck(t *testing.T) {
	for _, spec := range SmallCorpus() {
		pkg := Generate(spec, 7)
		for _, exe := range pkg.Exes {
			var files []*cminor.File
			for path, src := range pkg.SourcesFor(exe) {
				f, errs := cminor.Parse(path, src)
				if len(errs) != 0 {
					t.Fatalf("%s: parse errors: %v\nsource:\n%s", path, errs[0], firstLines(src, 40))
				}
				files = append(files, f)
			}
			info := cminor.Check(files...)
			if len(info.Errors) != 0 {
				t.Fatalf("%s: check errors: %v", exe.Name, info.Errors[0])
			}
		}
	}
}

func firstLines(s string, n int) string {
	lines := strings.Split(s, "\n")
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}

func TestCorpusShapeMatchesFigure7(t *testing.T) {
	corpus := PaperCorpus()
	if len(corpus) != 6 {
		t.Fatalf("%d packages, want 6", len(corpus))
	}
	exes := map[string]int{"rcc": 1, "apache": 9, "freeswitch": 1,
		"jxta-c": 1, "lklftpd": 1, "subversion": 9}
	for _, spec := range corpus {
		if want, ok := exes[spec.Name]; !ok || spec.Exes != want {
			t.Fatalf("%s has %d exes, want %d", spec.Name, spec.Exes, want)
		}
	}
	// Size ordering mirrors the paper: lklftpd < rcc < apache <
	// freeswitch ~ jxta < subversion (by filler volume).
	byName := map[string]Spec{}
	for _, s := range corpus {
		byName[s.Name] = s
	}
	if !(byName["lklftpd"].FillerFuncs < byName["rcc"].FillerFuncs &&
		byName["rcc"].FillerFuncs < byName["freeswitch"].FillerFuncs &&
		byName["freeswitch"].FillerFuncs < byName["subversion"].FillerFuncs) {
		t.Fatal("package size ordering does not match Figure 7")
	}
}

// analyzeExe runs RegionWiz over one generated executable (plus the
// package's shared library when present).
func analyzeExe(t *testing.T, pkg *Package, exe Exe) *core.Analysis {
	t.Helper()
	a, err := core.AnalyzeSource(core.Options{}, pkg.SourcesFor(exe))
	if err != nil {
		t.Fatalf("%s: analyze: %v", exe.Name, err)
	}
	return a
}

func TestPlantedBugsAreDetected(t *testing.T) {
	// Every true-bug pattern, planted alone in a tiny package, must be
	// reported; the high-ranked ones must rank high.
	patterns := []Pattern{SiblingLeak, IteratorEscape, StringShare,
		InvertedLifetime, TemporaryInconsistency, AliasFalsePositive}
	for _, iface := range []string{"apr", "rc"} {
		for _, pat := range patterns {
			spec := Spec{Name: "t", Exes: 1, Stages: 1, Depth: 1, Fanout: 1,
				FillerFuncs: 0, Interface: iface, Plants: []Pattern{pat}}
			pkg := Generate(spec, 3)
			a := analyzeExe(t, pkg, pkg.Exes[0])
			ws := a.Report.Warnings
			if len(ws) == 0 {
				t.Errorf("[%s] %s: no warning reported", iface, pat)
				continue
			}
			if pat.HighRanked() && a.Report.Stats.High == 0 {
				t.Errorf("[%s] %s: expected a high-ranked warning, got %s", iface, pat, a.Report)
			}
		}
	}
}

func TestCleanPackageIsClean(t *testing.T) {
	spec := Spec{Name: "clean", Exes: 1, Stages: 3, Depth: 3, Fanout: 2,
		FillerFuncs: 10, Interface: "apr", Plants: nil}
	pkg := Generate(spec, 11)
	a := analyzeExe(t, pkg, pkg.Exes[0])
	if n := len(a.Report.Warnings); n != 0 {
		t.Fatalf("clean staged package produced %d warnings:\n%s", n, a.Report)
	}
	if a.Report.Stats.R == 0 || a.Report.Stats.H == 0 {
		t.Fatal("clean package produced no regions/objects at all")
	}
}

func TestSharedLibraryPackage(t *testing.T) {
	spec := Spec{Name: "libbed", Exes: 2, Stages: 2, Depth: 2, Fanout: 2,
		FillerFuncs: 3, Interface: "apr", SharedLib: true,
		Plants: []Pattern{SiblingLeak, InvertedLifetime}}
	pkg := Generate(spec, 21)
	if pkg.Lib == "" {
		t.Fatal("no shared library emitted")
	}
	foundBug := 0
	for _, exe := range pkg.Exes {
		a := analyzeExe(t, pkg, exe)
		// Regions must exist even though creation goes through the
		// cross-file wrapper (heap cloning distinguishes the wrapper's
		// call paths).
		if a.Report.Stats.R < 2 {
			t.Fatalf("%s: R=%d, wrapper-created regions lost", exe.Name, a.Report.Stats.R)
		}
		foundBug += len(a.Report.Warnings)
	}
	if foundBug < 2 {
		t.Fatalf("planted bugs found: %d, want >= 2", foundBug)
	}
	// A clean shared-lib package stays clean: the wrapper must not
	// introduce false region merging.
	clean := Generate(Spec{Name: "cleanlib", Exes: 1, Stages: 2, Depth: 3,
		Fanout: 2, Interface: "apr", SharedLib: true}, 22)
	a := analyzeExe(t, clean, clean.Exes[0])
	if n := len(a.Report.Warnings); n != 0 {
		t.Fatalf("clean shared-lib package has %d warnings:\n%s", n, a.Report)
	}
}

func TestFigure8ShapeOnSmallCorpus(t *testing.T) {
	// The qualitative Figure 8 shape: jxta-c clean; apache's only
	// warning is a false positive; lklftpd has 2 high-ranked;
	// subversion has the most warnings of all packages.
	totals := map[string]int{}
	highs := map[string]int{}
	for _, spec := range SmallCorpus() {
		pkg := Generate(spec, 1234)
		for _, exe := range pkg.Exes {
			a := analyzeExe(t, pkg, exe)
			totals[spec.Name] += len(a.Report.Warnings)
			highs[spec.Name] += a.Report.Stats.High
		}
	}
	if totals["jxta-c"] != 0 {
		t.Errorf("jxta-c should be clean, got %d warnings", totals["jxta-c"])
	}
	if highs["lklftpd"] != 2 {
		t.Errorf("lklftpd high-ranked = %d, want 2", highs["lklftpd"])
	}
	if totals["subversion"] <= totals["apache"] ||
		totals["subversion"] <= totals["rcc"] {
		t.Errorf("subversion (%d) should dominate apache (%d) and rcc (%d)",
			totals["subversion"], totals["apache"], totals["rcc"])
	}
	if highs["rcc"] < 1 {
		t.Errorf("rcc high-ranked = %d, want >= 1 (the string case)", highs["rcc"])
	}
}
