package workloads

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/cminor"
	"repro/internal/core"
	"repro/internal/interp"
)

// TestSoundnessAgainstInterpreter is the repository's central safety
// property: on the supported language fragment, every inconsistency
// observed by concretely executing a program (the Figure 4 semantics,
// checked per equation 4.12) must be reported by the static analysis.
// Concrete and static reports are matched by the source positions of
// the two allocation sites.
func TestSoundnessAgainstInterpreter(t *testing.T) {
	var specs []Spec
	// Single-pattern micro packages...
	for _, pat := range []Pattern{SiblingLeak, IteratorEscape,
		StringShare, InvertedLifetime, TemporaryInconsistency} {
		specs = append(specs, Spec{
			Name: "s-" + string(pat), Exes: 1, Stages: 1, Depth: 1,
			Fanout: 1, Interface: "apr", Plants: []Pattern{pat},
		})
		specs = append(specs, Spec{
			Name: "s-rc-" + string(pat), Exes: 1, Stages: 1, Depth: 1,
			Fanout: 1, Interface: "rc", Plants: []Pattern{pat},
		})
	}
	// ...mixed pipelines...
	specs = append(specs,
		Spec{Name: "mix1", Exes: 1, Stages: 2, Depth: 3, Fanout: 2,
			Interface: "apr", Plants: []Pattern{SiblingLeak, IteratorEscape}},
		Spec{Name: "mix2", Exes: 1, Stages: 3, Depth: 2, Fanout: 2,
			Interface: "rc", Plants: []Pattern{StringShare, InvertedLifetime}},
		// ...and a multi-file shared-library package: region creation
		// crosses translation units, the heap-cloning stress case.
		Spec{Name: "mixlib", Exes: 1, Stages: 2, Depth: 2, Fanout: 2,
			Interface: "apr", SharedLib: true,
			Plants: []Pattern{SiblingLeak, InvertedLifetime}},
	)

	for _, spec := range specs {
		for seed := int64(0); seed < 3; seed++ {
			pkg := Generate(spec, seed)
			for _, exe := range pkg.Exes {
				checkSoundness(t, fmt.Sprintf("%s/seed%d", exe.Name, seed), pkg.SourcesFor(exe))
			}
		}
	}
}

func checkSoundness(t *testing.T, name string, sources map[string]string) {
	t.Helper()
	var files []*cminor.File
	var paths []string
	for p := range sources {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		f, errs := cminor.Parse(p, sources[p])
		if len(errs) != 0 {
			t.Fatalf("%s: parse: %v", name, errs[0])
		}
		files = append(files, f)
	}
	info := cminor.Check(files...)
	if len(info.Errors) != 0 {
		t.Fatalf("%s: check: %v", name, info.Errors[0])
	}
	a, err := core.Analyze(core.Options{}, info, files...)
	if err != nil {
		t.Fatalf("%s: analyze: %v", name, err)
	}
	posKey := func(src, dst cminor.Pos) string {
		return fmt.Sprintf("%s|%s", src, dst)
	}
	static := map[string]bool{}
	for _, ps := range a.PairSites() {
		static[posKey(ps.Src, ps.Dst)] = true
	}
	// Drive several executions (argc controls the main loop trip
	// count).
	for _, argc := range []int64{0, 1, 3} {
		eff, err := interp.Run(info, interp.Options{Args: []int64{argc}}, files...)
		if err != nil {
			t.Fatalf("%s: interp(argc=%d): %v", name, argc, err)
		}
		for _, inc := range eff.Inconsistencies() {
			srcPos := inc.Edge.Src.Site
			var dstPos cminor.Pos
			if inc.Edge.DstObj != nil {
				dstPos = inc.Edge.DstObj.Site
			} else if inc.Edge.DstReg != nil {
				dstPos = inc.Edge.DstReg.Site
			}
			if !static[posKey(srcPos, dstPos)] {
				t.Errorf("%s: concrete inconsistency %v -> %v (argc=%d) not statically reported; static pairs: %v",
					name, srcPos, dstPos, argc, a.PairSites())
			}
		}
	}
}
