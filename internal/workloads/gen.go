// Package workloads generates synthetic CMinor packages that mimic the
// region-usage shape of the paper's six benchmark packages (Figure 7):
// staged applications with pool hierarchies, deep call paths through
// which pools are threaded, and the specific inconsistency patterns the
// paper reports (Figures 9, 10, 12 and the Section 6 case studies).
//
// The generators are deterministic in their seed, so the benchmark
// harness reproduces identical corpora run over run. Each generated
// package records exactly which bugs were planted, giving the Figure 8
// reproduction a ground truth the original paper established by manual
// inspection.
package workloads

import (
	"fmt"
	"math/rand"
	"strings"
)

// Pattern identifies a planted code pattern.
type Pattern string

// The planted patterns. "True" bugs are real lifetime inconsistencies;
// the false-positive patterns are consistent code the flow-insensitive
// analysis must nevertheless flag (the paper's Section 6.2).
const (
	// SiblingLeak: an object in one pool points into an unrelated
	// sibling pool (Figure 2(c); high-ranked).
	SiblingLeak Pattern = "sibling-leak"
	// IteratorEscape: the Figure 9 hash-table/iterator shape — the
	// iterator outlives the table's subpool.
	IteratorEscape Pattern = "iterator-escape"
	// StringShare: the rcc case — an object keeps a pointer to a
	// string owned by an unrelated region (high-ranked).
	StringShare Pattern = "string-share"
	// InvertedLifetime: the Figure 12 Subversion parser shape — a
	// subpool object handed to a parent-pool holder.
	InvertedLifetime Pattern = "inverted-lifetime"
	// TemporaryInconsistency: the Figure 10 shape — benign but
	// reported (a warning that is a "temporary inconsistency").
	TemporaryInconsistency Pattern = "temporary-inconsistency"
	// AliasFalsePositive: the Section 6.2 make_error_internal shape —
	// consistent code that needs path sensitivity to prove.
	AliasFalsePositive Pattern = "alias-false-positive"
)

// TrueBug reports whether the pattern is a real inconsistency (vs a
// false positive the analysis is documented to report).
func (p Pattern) TrueBug() bool {
	switch p {
	case SiblingLeak, IteratorEscape, StringShare, InvertedLifetime:
		return true
	case TemporaryInconsistency:
		return true // benign leak, but a real semantic violation
	}
	return false
}

// HighRanked reports whether the Section 5.4 heuristic ranks the
// pattern high (some witnessing owner pair never related in either
// direction). AliasFalsePositive ranks high exactly as the paper's
// Section 6.2 case did — the heuristic cannot see that the fresh pool
// is only created when the related path is dead.
func (p Pattern) HighRanked() bool {
	switch p {
	case SiblingLeak, StringShare, AliasFalsePositive:
		return true
	}
	return false
}

// Plant is one planted pattern instance.
type Plant struct {
	Pattern Pattern
	// Func is the generated function containing the pattern.
	Func string
}

// Spec describes one synthetic package.
type Spec struct {
	Name string
	// Exes is the number of executables (Figure 7's exe column).
	Exes int
	// Stages is the number of pipeline stages per executable; Depth
	// is how deeply stages nest; Fanout how many callees each stage
	// invokes. Together they set call-path counts (and so context
	// counts, the paper's scalability axis).
	Stages, Depth, Fanout int
	// FillerFuncs pads the package with analysis-neutral code to
	// approximate the Figure 7 KLOC ratios.
	FillerFuncs int
	// Plants lists the bug patterns to inject, round-robin across
	// executables.
	Plants []Pattern
	// Interface selects "apr" or "rc".
	Interface string
	// SharedLib emits a shared library file of region wrappers
	// (lib_make_pool / lib_alloc_node, the svn_pool_create shape) that
	// every executable links; stages then create regions and objects
	// through the wrappers, exercising heap cloning across files —
	// the way APR is shared by the paper's Figure 7 packages.
	SharedLib bool
}

// Exe is one generated executable.
type Exe struct {
	Name   string
	Source string
	Plants []Plant
}

// Package is a generated corpus entry.
type Package struct {
	Spec Spec
	Exes []Exe
	// Lib is the shared library source ("" unless Spec.SharedLib).
	Lib string
	// KLOC is the generated source size in thousands of lines.
	KLOC float64
}

// SourcesFor returns the path -> source map to analyze one executable
// (its own file plus the shared library when present).
func (p *Package) SourcesFor(exe Exe) map[string]string {
	m := map[string]string{exe.Name + ".c": exe.Source}
	if p.Lib != "" {
		m[p.Spec.Name+"-lib.c"] = p.Lib
	}
	return m
}

const aprTypes = `typedef struct apr_pool_t apr_pool_t;
typedef long apr_status_t;
typedef unsigned long apr_size_t;
typedef apr_status_t (*cleanup_t)(void *data);
extern apr_status_t apr_pool_create(apr_pool_t **newp, apr_pool_t *parent);
extern void *apr_palloc(apr_pool_t *p, apr_size_t size);
extern void *apr_pcalloc(apr_pool_t *p, apr_size_t size);
extern void *apr_pstrdup(apr_pool_t *p, const char *s);
extern void apr_pool_clear(apr_pool_t *p);
extern void apr_pool_destroy(apr_pool_t *p);
extern void apr_pool_cleanup_register(apr_pool_t *p, const void *data, cleanup_t plain_cleanup, cleanup_t child_cleanup);
`

const aprStruct = `
struct node { struct node *next; void *data; char *name; apr_pool_t *home; };
typedef struct node node_t;
`

const aprPrelude = aprTypes + aprStruct

const rcTypes = `typedef struct region_t region_t;
extern region_t *rnew(region_t *parent);
extern void *ralloc(region_t *r);
extern void *rstrdup(region_t *r);
extern void deleteregion(region_t *r);
`

const rcStruct = `
struct node { struct node *next; void *data; char *name; region_t *home; };
typedef struct node node_t;
`

const rcPrelude = rcTypes + rcStruct

// structForward declares the node type without defining it (the
// definition lives in the shared library file).
const structForward = `
struct node;
typedef struct node node_t;
`

// iface abstracts the two interfaces for the generator templates.
type iface struct {
	prelude string
	// types is the prelude without the node struct definition.
	types string
	// poolType is the region handle type name.
	poolType string
	// create emits "child = create(parent);".
	create func(child, parent string) string
	// alloc emits "v = alloc(pool);".
	alloc func(v, pool string) string
	// strdupIn emits "v = strdup(pool, lit);".
	strdupIn func(v, pool, lit string) string
	// destroy emits "destroy(pool);".
	destroy func(pool string) string
}

func interfaceFor(name string) iface {
	if name == "rc" {
		return iface{
			prelude:  rcPrelude,
			types:    rcTypes,
			poolType: "region_t",
			create: func(c, p string) string {
				return fmt.Sprintf("%s = rnew(%s);", c, p)
			},
			alloc: func(v, p string) string {
				return fmt.Sprintf("%s = ralloc(%s);", v, p)
			},
			strdupIn: func(v, p, lit string) string {
				return fmt.Sprintf("%s = rstrdup(%s);", v, p)
			},
			destroy: func(p string) string {
				return fmt.Sprintf("deleteregion(%s);", p)
			},
		}
	}
	return iface{
		prelude:  aprPrelude,
		types:    aprTypes,
		poolType: "apr_pool_t",
		create: func(c, p string) string {
			return fmt.Sprintf("apr_pool_create(&%s, %s);", c, p)
		},
		alloc: func(v, p string) string {
			return fmt.Sprintf("%s = apr_palloc(%s, 32);", v, p)
		},
		strdupIn: func(v, p, lit string) string {
			return fmt.Sprintf("%s = apr_pstrdup(%s, %s);", v, p, lit)
		},
		destroy: func(p string) string {
			return fmt.Sprintf("apr_pool_destroy(%s);", p)
		},
	}
}

// Generate builds the package deterministically from the seed.
func Generate(spec Spec, seed int64) *Package {
	pkg := &Package{Spec: spec}
	lines := 0
	if spec.SharedLib {
		pkg.Lib = libSource(spec.Interface)
		lines += strings.Count(pkg.Lib, "\n")
	}
	for e := 0; e < spec.Exes; e++ {
		exe := generateExe(spec, e, rand.New(rand.NewSource(seed+int64(e)*7919)))
		pkg.Exes = append(pkg.Exes, exe)
		lines += strings.Count(exe.Source, "\n")
	}
	pkg.KLOC = float64(lines) / 1000
	return pkg
}

// libSource emits the shared wrapper library for a package.
func libSource(ifaceName string) string {
	api := interfaceFor(ifaceName)
	var sb strings.Builder
	sb.WriteString(api.prelude)
	sb.WriteString("\n")
	pt := api.poolType
	fmt.Fprintf(&sb, "%s * lib_make_pool(%s *parent) {\n", pt, pt)
	fmt.Fprintf(&sb, "    %s *p;\n", pt)
	fmt.Fprintf(&sb, "    %s\n", api.create("p", "parent"))
	fmt.Fprintf(&sb, "    return p;\n}\n\n")
	fmt.Fprintf(&sb, "node_t * lib_alloc_node(%s *pool) {\n", pt)
	fmt.Fprintf(&sb, "    node_t *n;\n")
	fmt.Fprintf(&sb, "    %s\n", api.alloc("n", "pool"))
	fmt.Fprintf(&sb, "    return n;\n}\n\n")
	fmt.Fprintf(&sb, "void lib_destroy(%s *pool) {\n", pt)
	fmt.Fprintf(&sb, "    %s\n}\n\n", api.destroy("pool"))
	return sb.String()
}

// exePrelude returns an executable's leading declarations: the full
// interface prelude normally, or forward declarations plus the shared
// library's externs when the package has one.
func exePrelude(spec Spec, api iface) string {
	if !spec.SharedLib {
		return api.prelude + "\n"
	}
	var sb strings.Builder
	// Repeat the typedefs and extern runtime functions (legal across
	// translation units) but NOT the node struct definition, which
	// lives in the library file.
	sb.WriteString(api.types)
	sb.WriteString(structForward)
	pt := api.poolType
	fmt.Fprintf(&sb, "extern %s *lib_make_pool(%s *parent);\n", pt, pt)
	fmt.Fprintf(&sb, "extern node_t *lib_alloc_node(%s *pool);\n", pt)
	fmt.Fprintf(&sb, "extern void lib_destroy(%s *pool);\n\n", pt)
	return sb.String()
}

func generateExe(spec Spec, exeIdx int, rng *rand.Rand) Exe {
	api := interfaceFor(spec.Interface)
	var sb strings.Builder
	sb.WriteString(exePrelude(spec, api))

	g := &exeGen{spec: spec, api: api, rng: rng, sb: &sb}

	// Filler: analysis-neutral integer helpers.
	for i := 0; i < spec.FillerFuncs; i++ {
		g.filler(i)
	}

	// Planted bug pattern functions (round-robin across executables).
	var plants []Plant
	for i, pat := range spec.Plants {
		if i%spec.Exes != exeIdx {
			continue
		}
		fn := g.plant(pat, i)
		plants = append(plants, Plant{Pattern: pat, Func: fn})
	}

	// Stage pipeline: stage_<d>_<s>(pool) creates a subpool, builds a
	// consistent local structure, and calls deeper stages.
	for d := spec.Depth - 1; d >= 0; d-- {
		for s := 0; s < spec.Stages; s++ {
			g.stage(d, s, plants)
		}
	}

	// main: a root pool driving the top stages in a request loop.
	fmt.Fprintf(&sb, "int main(int argc) {\n")
	fmt.Fprintf(&sb, "    %s *root;\n    int i;\n", api.poolType)
	switch {
	case spec.SharedLib:
		fmt.Fprintf(&sb, "    root = lib_make_pool(NULL);\n")
	case spec.Interface == "rc":
		fmt.Fprintf(&sb, "    root = rnew(NULL);\n")
	default:
		fmt.Fprintf(&sb, "    apr_pool_create(&root, NULL);\n")
	}
	fmt.Fprintf(&sb, "    for (i = 0; i < argc; i++) {\n")
	for s := 0; s < spec.Stages; s++ {
		fmt.Fprintf(&sb, "        stage_0_%d(root);\n", s)
	}
	fmt.Fprintf(&sb, "    }\n")
	fmt.Fprintf(&sb, "    %s\n", g.destroyStmt("root"))
	fmt.Fprintf(&sb, "    return 0;\n}\n")

	return Exe{
		Name:   fmt.Sprintf("%s-%d", spec.Name, exeIdx),
		Source: sb.String(),
		Plants: plants,
	}
}

type exeGen struct {
	spec spec2
	api  iface
	rng  *rand.Rand
	sb   *strings.Builder
}

// spec2 aliases Spec to keep the struct literal short.
type spec2 = Spec

// filler emits an analysis-neutral integer helper with some volume.
// Some fillers dispatch over an enum with a switch — the staged-
// application control flow real packages are full of.
func (g *exeGen) filler(i int) {
	if g.rng.Intn(4) == 0 {
		fmt.Fprintf(g.sb, "enum filler_mode_%d { F%d_A, F%d_B = %d, F%d_C };\n",
			i, i, i, 2+g.rng.Intn(9), i)
		fmt.Fprintf(g.sb, "int filler_%d(int x) {\n", i)
		fmt.Fprintf(g.sb, "    int acc;\n    acc = x;\n")
		fmt.Fprintf(g.sb, "    switch (x %% 3) {\n")
		fmt.Fprintf(g.sb, "    case 0: acc = acc + F%d_A; break;\n", i)
		fmt.Fprintf(g.sb, "    case 1: acc = acc + F%d_B; break;\n", i)
		fmt.Fprintf(g.sb, "    default: acc = acc + F%d_C;\n", i)
		fmt.Fprintf(g.sb, "    }\n    return acc;\n}\n\n")
		return
	}
	fmt.Fprintf(g.sb, "int filler_%d(int x) {\n", i)
	fmt.Fprintf(g.sb, "    int acc;\n    int k;\n    acc = %d;\n", g.rng.Intn(100))
	body := 3 + g.rng.Intn(6)
	for j := 0; j < body; j++ {
		switch g.rng.Intn(4) {
		case 0:
			fmt.Fprintf(g.sb, "    acc = acc * %d + x;\n", 1+g.rng.Intn(7))
		case 1:
			fmt.Fprintf(g.sb, "    if (acc > %d) acc = acc - x;\n", g.rng.Intn(1000))
		case 2:
			fmt.Fprintf(g.sb, "    for (k = 0; k < %d; k++) acc = acc + k;\n", 1+g.rng.Intn(9))
		default:
			fmt.Fprintf(g.sb, "    acc = acc ^ %d;\n", g.rng.Intn(255))
		}
	}
	fmt.Fprintf(g.sb, "    return acc;\n}\n\n")
}

// createStmt/allocStmt/destroyStmt route region operations through the
// shared library wrappers when the package has one.
func (g *exeGen) createStmt(c, p string) string {
	if g.spec.SharedLib {
		return fmt.Sprintf("%s = lib_make_pool(%s);", c, p)
	}
	return g.api.create(c, p)
}

func (g *exeGen) allocStmt(v, p string) string {
	if g.spec.SharedLib {
		return fmt.Sprintf("%s = lib_alloc_node(%s);", v, p)
	}
	return g.api.alloc(v, p)
}

func (g *exeGen) destroyStmt(p string) string {
	if g.spec.SharedLib {
		return fmt.Sprintf("lib_destroy(%s);", p)
	}
	return g.api.destroy(p)
}

// stage emits one pipeline stage at depth d.
func (g *exeGen) stage(d, s int, plants []Plant) {
	api := g.api
	fmt.Fprintf(g.sb, "void stage_%d_%d(%s *pool) {\n", d, s, api.poolType)
	fmt.Fprintf(g.sb, "    %s *sub;\n", api.poolType)
	fmt.Fprintf(g.sb, "    node_t *head;\n    node_t *item;\n")
	fmt.Fprintf(g.sb, "    %s\n", g.createStmt("sub", "pool"))
	// A consistent local structure: list nodes in sub pointing to each
	// other and up into pool-owned data.
	fmt.Fprintf(g.sb, "    %s\n", g.allocStmt("head", "sub"))
	fmt.Fprintf(g.sb, "    %s\n", g.allocStmt("item", "sub"))
	fmt.Fprintf(g.sb, "    head->next = item;\n")
	fmt.Fprintf(g.sb, "    item->data = head;\n")
	// Child stages: thread sub down Fanout times.
	if d+1 < g.spec.Depth {
		for f := 0; f < g.spec.Fanout; f++ {
			child := (s*g.spec.Fanout + f) % g.spec.Stages
			fmt.Fprintf(g.sb, "    stage_%d_%d(sub);\n", d+1, child)
		}
	} else if len(plants) > 0 && s < len(plants) {
		// Leaf stages invoke a planted pattern.
		fmt.Fprintf(g.sb, "    %s(pool, sub);\n", plants[s].Func)
	}
	fmt.Fprintf(g.sb, "    %s\n", g.destroyStmt("sub"))
	fmt.Fprintf(g.sb, "}\n\n")
}

// plant emits one bug-pattern function and returns its name. Every
// pattern function takes (parentPool, subPool) so leaf stages can call
// it uniformly.
func (g *exeGen) plant(p Pattern, idx int) string {
	api := g.api
	name := fmt.Sprintf("pattern_%s_%d", strings.ReplaceAll(string(p), "-", "_"), idx)
	pt := api.poolType
	switch p {
	case SiblingLeak:
		fmt.Fprintf(g.sb, "void %s(%s *pool, %s *sub) {\n", name, pt, pt)
		fmt.Fprintf(g.sb, "    %s *left;\n    %s *right;\n", pt, pt)
		fmt.Fprintf(g.sb, "    node_t *a;\n    node_t *b;\n")
		fmt.Fprintf(g.sb, "    %s\n", api.create("left", "NULL"))
		fmt.Fprintf(g.sb, "    %s\n", api.create("right", "NULL"))
		fmt.Fprintf(g.sb, "    %s\n", api.alloc("a", "left"))
		fmt.Fprintf(g.sb, "    %s\n", api.alloc("b", "right"))
		fmt.Fprintf(g.sb, "    a->next = b;\n")
		fmt.Fprintf(g.sb, "    %s\n    %s\n}\n\n", api.destroy("right"), api.destroy("left"))
	case IteratorEscape:
		// The Figure 9 shape: the "table" lives in a fresh subpool of
		// sub, the "iterator" in the longer-lived parent pool.
		fmt.Fprintf(g.sb, "void %s(%s *pool, %s *sub) {\n", name, pt, pt)
		fmt.Fprintf(g.sb, "    %s *tablepool;\n", pt)
		fmt.Fprintf(g.sb, "    node_t *table;\n    node_t *iter;\n")
		fmt.Fprintf(g.sb, "    %s\n", api.create("tablepool", "sub"))
		fmt.Fprintf(g.sb, "    %s\n", api.alloc("table", "tablepool"))
		fmt.Fprintf(g.sb, "    %s\n", api.alloc("iter", "pool"))
		fmt.Fprintf(g.sb, "    iter->data = table;\n")
		fmt.Fprintf(g.sb, "    %s\n}\n\n", api.destroy("tablepool"))
	case StringShare:
		fmt.Fprintf(g.sb, "void %s(%s *pool, %s *sub) {\n", name, pt, pt)
		fmt.Fprintf(g.sb, "    %s *strpool;\n", pt)
		fmt.Fprintf(g.sb, "    node_t *holder;\n    char *s;\n")
		fmt.Fprintf(g.sb, "    %s\n", api.create("strpool", "NULL"))
		fmt.Fprintf(g.sb, "    %s\n", api.strdupIn("s", "strpool", `"shared"`))
		fmt.Fprintf(g.sb, "    %s\n", api.alloc("holder", "sub"))
		fmt.Fprintf(g.sb, "    holder->name = s;\n")
		fmt.Fprintf(g.sb, "    %s\n}\n\n", api.destroy("strpool"))
	case InvertedLifetime:
		// Figure 12: allocate the "parser" in a fresh subpool, store
		// it in a holder from the parent pool.
		fmt.Fprintf(g.sb, "void %s(%s *pool, %s *sub) {\n", name, pt, pt)
		fmt.Fprintf(g.sb, "    %s *parserpool;\n", pt)
		fmt.Fprintf(g.sb, "    node_t *parser;\n    node_t *loggy;\n")
		fmt.Fprintf(g.sb, "    %s\n", api.create("parserpool", "pool"))
		fmt.Fprintf(g.sb, "    %s\n", api.alloc("parser", "parserpool"))
		fmt.Fprintf(g.sb, "    %s\n", api.alloc("loggy", "pool"))
		fmt.Fprintf(g.sb, "    loggy->data = parser;\n}\n\n")
	case TemporaryInconsistency:
		// Figure 10: a parent-pool object briefly holds subpool data,
		// later overwritten.
		fmt.Fprintf(g.sb, "void %s(%s *pool, %s *sub) {\n", name, pt, pt)
		fmt.Fprintf(g.sb, "    node_t *lock;\n    node_t *tmp;\n    node_t *stable;\n")
		fmt.Fprintf(g.sb, "    %s\n", api.alloc("lock", "pool"))
		fmt.Fprintf(g.sb, "    %s\n", api.alloc("tmp", "sub"))
		fmt.Fprintf(g.sb, "    %s\n", api.alloc("stable", "pool"))
		fmt.Fprintf(g.sb, "    lock->data = tmp;\n")
		fmt.Fprintf(g.sb, "    lock->data = stable;\n}\n\n")
	case AliasFalsePositive:
		// Section 6.2: pool aliases the holder's own pool on one path.
		fmt.Fprintf(g.sb, "void %s(%s *pool, %s *sub) {\n", name, pt, pt)
		fmt.Fprintf(g.sb, "    %s *p;\n", pt)
		fmt.Fprintf(g.sb, "    node_t *child;\n    node_t *err;\n")
		fmt.Fprintf(g.sb, "    %s\n", api.alloc("child", "pool"))
		fmt.Fprintf(g.sb, "    child->home = pool;\n")
		fmt.Fprintf(g.sb, "    if (child) p = child->home;\n")
		fmt.Fprintf(g.sb, "    else { %s }\n", api.create("p", "NULL"))
		fmt.Fprintf(g.sb, "    %s\n", api.alloc("err", "p"))
		fmt.Fprintf(g.sb, "    err->next = child;\n}\n\n")
	default:
		fmt.Fprintf(g.sb, "void %s(%s *pool, %s *sub) {}\n\n", name, pt, pt)
	}
	return name
}
