package bdd

import "time"

// Mark-and-sweep collection in BuDDy's bdd_gbc style, adapted to the
// intrusive table in table.go. The kernel cannot see which Nodes a
// client still holds in Go locals, so collection is cooperative:
//
//   - Clients pin the roots they need across a collection with
//     Ref/Deref (counted, so independent owners compose).
//   - Collect may only run at a client-declared safe point: a moment
//     when every node the client will ever look at again is reachable
//     from a pinned root. Running it mid-computation frees the
//     intermediate results the computation still holds.
//   - The kernel signals *when* collecting is worthwhile: table growth
//     raises a pressure flag, and MaybeCollect at the next safe point
//     answers it.
//
// The sweep rebuilds the hash chains exactly as grow does, pushes dead
// slots onto the freelist for reuse by mk, and bumps every op-cache
// generation — cache entries may name swept nodes, and a freed index
// will be re-issued with a different meaning. Live node indices never
// move, so pinned Nodes and client data structures survive unchanged.

// Ref pins n as a garbage-collection root and returns n for chaining.
// Pins are counted: each Ref must be balanced by one Deref. Terminals
// are always live and never need pinning.
func (m *Manager) Ref(n Node) Node {
	if n == False || n == True {
		return n
	}
	if m.refs == nil {
		m.refs = make(map[Node]int32)
	}
	m.refs[n]++
	return n
}

// Deref releases one pin on n. It panics on an unpinned node — a
// double release is a lifecycle bug that would otherwise surface as a
// distant use-after-sweep.
func (m *Manager) Deref(n Node) {
	if n == False || n == True {
		return
	}
	c, ok := m.refs[n]
	if !ok {
		panic("bdd: Deref of node with no outstanding Ref")
	}
	if c == 1 {
		delete(m.refs, n)
	} else {
		m.refs[n] = c - 1
	}
}

// GCPressure reports whether a collection is worth running: GC is
// enabled, the table has grown (or a forced request is pending) since
// the last sweep, and the table is past the configured threshold.
func (m *Manager) GCPressure() bool {
	return m.cfg.GC && m.gcPressure && int(m.free-m.freeNodes) >= m.cfg.GCThreshold
}

// MaybeCollect runs Collect if the kernel is under pressure (see
// GCPressure). Clients call it at safe points; it reports whether a
// collection ran.
func (m *Manager) MaybeCollect() bool {
	if !m.GCPressure() {
		return false
	}
	m.Collect()
	return true
}

// Collect runs one mark-and-sweep pass immediately and returns the
// number of nodes freed. The caller must be at a safe point: every
// node it will use afterwards must be reachable from a Ref-pinned
// root. All operation caches are cleared (their entries may name swept
// slots).
func (m *Manager) Collect() int {
	start := time.Now()
	marked := make([]bool, m.free)
	for n := range m.refs {
		m.mark(marked, n)
	}
	freed := m.sweep(marked)
	m.clearCaches()
	m.collections++
	m.nodesFreed += uint64(freed)
	m.sweepWall += time.Since(start)
	m.gcPressure = false
	if m.OnEvent != nil {
		m.OnEvent("gc", m.NumNodes(), len(m.nodes))
	}
	return freed
}

func (m *Manager) mark(marked []bool, n Node) {
	if n < 2 || marked[n] {
		return
	}
	marked[n] = true
	nd := m.nodes[n]
	m.mark(marked, nd.low)
	m.mark(marked, nd.high)
}

// sweep rebuilds every hash chain from the marked set and chains the
// rest into the freelist. Like grow, it only rewires hash/next links
// for surviving nodes; a freed slot keeps its hash field (it heads
// bucket i's chain) but its record becomes a freelist link.
func (m *Manager) sweep(marked []bool) int {
	for i := range m.nodes {
		m.nodes[i].hash = 0
		m.nodes[i].next = 0
	}
	m.freelist = 0
	m.freeNodes = 0
	freed := 0
	for i := m.free - 1; i >= 2; i-- {
		n := &m.nodes[i]
		if marked[i] {
			b := &m.nodes[hash3(n.level, n.low, n.high)&m.mask]
			n.next = b.hash
			b.hash = i
			continue
		}
		if n.level != freeLevel {
			freed++
		}
		n.level = freeLevel
		n.low = m.freelist
		n.high = 0
		m.freelist = Node(i)
		m.freeNodes++
	}
	return freed
}
