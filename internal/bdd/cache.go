package bdd

// Lossy, direct-mapped operation caches, after BuDDy's BddCache: a
// fixed-size array of entries indexed by a hash of the operands. A
// collision simply overwrites the previous occupant — memoization
// here is a performance hint, never a correctness requirement, so
// losing an entry only costs a recomputation. Clearing is O(1): each
// entry carries the generation it was written in, and bumping the
// cache's generation invalidates everything at once.
//
// Entries never need invalidation on node-table growth (node indices
// are stable), so generations only turn over on explicit Clear calls.

// binEntry caches one (op, a, b) -> res binary operation.
type binEntry struct {
	a, b Node
	res  Node
	op   opcode
	gen  uint32
}

type binCache struct {
	entries []binEntry
	mask    uint32
	gen     uint32
}

func newBinCache(slots int) binCache {
	return binCache{entries: make([]binEntry, slots), mask: uint32(slots - 1), gen: 1}
}

func (c *binCache) lookup(op opcode, a, b Node) (Node, bool) {
	e := &c.entries[(hash3(int32(op), a, b))&c.mask]
	if e.gen == c.gen && e.op == op && e.a == a && e.b == b {
		return e.res, true
	}
	return False, false
}

func (c *binCache) store(op opcode, a, b, res Node) {
	*(&c.entries[(hash3(int32(op), a, b))&c.mask]) = binEntry{a: a, b: b, res: res, op: op, gen: c.gen}
}

func (c *binCache) clear() { c.gen++ }

// tripleEntry caches one (x, y, z) -> res ternary operation. The Ite,
// Exists (cube in y), AndExists (cube in z), Not (y=z=0), and Replace
// (VarMap id in y) caches all share this shape, each in its own array.
type tripleEntry struct {
	x, y, z Node
	res     Node
	gen     uint32
}

type tripleCache struct {
	entries []tripleEntry
	mask    uint32
	gen     uint32
}

func newTripleCache(slots int) tripleCache {
	return tripleCache{entries: make([]tripleEntry, slots), mask: uint32(slots - 1), gen: 1}
}

func (c *tripleCache) lookup(x, y, z Node) (Node, bool) {
	e := &c.entries[hash3(int32(x), y, z)&c.mask]
	if e.gen == c.gen && e.x == x && e.y == y && e.z == z {
		return e.res, true
	}
	return False, false
}

func (c *tripleCache) store(x, y, z, res Node) {
	*(&c.entries[hash3(int32(x), y, z)&c.mask]) = tripleEntry{x: x, y: y, z: z, res: res, gen: c.gen}
}

func (c *tripleCache) clear() { c.gen++ }

// satEntry caches one node's satCountRec value.
type satEntry struct {
	n   Node
	gen uint32
	res float64
}

type satCache struct {
	entries []satEntry
	mask    uint32
	gen     uint32
}

func newSatCache(slots int) satCache {
	return satCache{entries: make([]satEntry, slots), mask: uint32(slots - 1), gen: 1}
}

func (c *satCache) lookup(n Node) (float64, bool) {
	e := &c.entries[hash3(int32(n), 0, 0)&c.mask]
	if e.gen == c.gen && e.n == n {
		return e.res, true
	}
	return 0, false
}

func (c *satCache) store(n Node, res float64) {
	*(&c.entries[hash3(int32(n), 0, 0)&c.mask]) = satEntry{n: n, res: res, gen: c.gen}
}

func (c *satCache) clear() { c.gen++ }
