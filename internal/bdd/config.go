package bdd

// Config tunes the kernel's data structures, mirroring BuDDy's
// bdd_init/bdd_setcacheratio knobs (the paper's Section 5.2 relies on
// a node table and operation caches sized to the workload). The zero
// value selects the defaults; New is New(Config{}) in spirit.
//
// Sizing guidance: NodeSize should approximate the peak node count of
// the workload — undersizing costs geometric regrows (cheap but not
// free), oversizing costs resident memory at 20 bytes per node.
// CacheRatio trades cache memory for hit rate: ratio 1 (one cache slot
// per table slot) suits join-heavy datalog workloads; ratio 4-8 suits
// memory-constrained deployments. See DESIGN.md's "BDD kernel"
// section for corpus-level numbers.
type Config struct {
	// NodeSize is the initial node-table capacity in nodes, rounded up
	// to a power of two (minimum 1024). The table grows geometrically
	// (doubling, with a rehash) when full, so this is a floor, not a
	// cap. 0 means DefaultNodeSize.
	NodeSize int
	// CacheRatio sizes the direct-mapped operation caches relative to
	// the initial node table: each cache gets NodeSize/CacheRatio
	// slots, rounded up to a power of two (minimum 256). The caches are
	// lossy (collisions overwrite) and never grow. 0 means
	// DefaultCacheRatio.
	CacheRatio int
	// GC enables mark-and-sweep collection of unreferenced nodes
	// (BuDDy's bdd_gbc). Table growth raises a pressure flag; clients
	// collect at safe points via MaybeCollect once every live node is
	// reachable from a Ref-pinned root. Off by default: collection is
	// only sound for clients that declare their roots.
	GC bool
	// GCThreshold is the minimum live-node count below which a
	// pressured collection is skipped (sweeping a tiny table buys
	// nothing). 0 means DefaultGCThreshold. Ignored unless GC is set.
	GCThreshold int
	// Reorder enables sifting-based dynamic variable reordering at
	// client-declared safe points (the datalog layer runs it between
	// strata). Like GC it requires every live node to be pinned, and it
	// implies a collection first. Off by default.
	Reorder bool
}

// Default kernel sizing: an 8K-node table with equal-sized caches
// fits small analyses in L2 while large corpora override via Config.
const (
	DefaultNodeSize   = 1 << 13
	DefaultCacheRatio = 1
	// DefaultGCThreshold keeps collections away from small tables,
	// where a sweep costs more than the nodes it could free.
	DefaultGCThreshold = 1 << 12

	minNodeSize  = 1 << 10
	minCacheSize = 1 << 8
)

// normalized returns the config with defaults filled and sizes rounded
// to powers of two.
func (c Config) normalized() Config {
	if c.NodeSize <= 0 {
		c.NodeSize = DefaultNodeSize
	}
	if c.NodeSize < minNodeSize {
		c.NodeSize = minNodeSize
	}
	c.NodeSize = ceilPow2(c.NodeSize)
	if c.CacheRatio <= 0 {
		c.CacheRatio = DefaultCacheRatio
	}
	if c.GCThreshold <= 0 {
		c.GCThreshold = DefaultGCThreshold
	}
	return c
}

// cacheSlots derives the per-cache slot count from the normalized
// config.
func (c Config) cacheSlots() int {
	s := c.NodeSize / c.CacheRatio
	if s < minCacheSize {
		s = minCacheSize
	}
	return ceilPow2(s)
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
