package bdd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTerminals(t *testing.T) {
	m := New()
	if m.Not(True) != False || m.Not(False) != True {
		t.Fatal("terminal negation broken")
	}
	if m.And(True, False) != False || m.Or(True, False) != True {
		t.Fatal("terminal and/or broken")
	}
	if m.NumNodes() != 2 {
		t.Fatalf("fresh manager has %d nodes, want 2", m.NumNodes())
	}
}

func TestVarBasics(t *testing.T) {
	m := New()
	x := m.AddVar()
	y := m.AddVar()
	vx, vy := m.Var(x), m.Var(y)
	if vx == vy {
		t.Fatal("distinct variables share a node")
	}
	if m.And(vx, m.Not(vx)) != False {
		t.Fatal("x AND NOT x != false")
	}
	if m.Or(vx, m.Not(vx)) != True {
		t.Fatal("x OR NOT x != true")
	}
	if m.And(vx, vx) != vx {
		t.Fatal("idempotence broken")
	}
	if m.NVar(x) != m.Not(vx) {
		t.Fatal("NVar != Not(Var)")
	}
	if got := m.And(vx, vy); got != m.And(vy, vx) {
		t.Fatal("And not commutative (hash consing broken)")
	}
}

func TestDeMorgan(t *testing.T) {
	m := New()
	x, y := m.Var(m.AddVar()), m.Var(m.AddVar())
	lhs := m.Not(m.And(x, y))
	rhs := m.Or(m.Not(x), m.Not(y))
	if lhs != rhs {
		t.Fatal("De Morgan violated")
	}
}

func TestXorDiffImpBiimp(t *testing.T) {
	m := New()
	x, y := m.Var(m.AddVar()), m.Var(m.AddVar())
	if m.Xor(x, y) != m.Or(m.Diff(x, y), m.Diff(y, x)) {
		t.Fatal("xor != symmetric difference")
	}
	if m.Imp(x, y) != m.Or(m.Not(x), y) {
		t.Fatal("imp broken")
	}
	if m.Biimp(x, y) != m.Not(m.Xor(x, y)) {
		t.Fatal("biimp != not xor")
	}
	if m.Diff(x, y) != m.And(x, m.Not(y)) {
		t.Fatal("diff broken")
	}
}

func TestIte(t *testing.T) {
	m := New()
	f, g, h := m.Var(m.AddVar()), m.Var(m.AddVar()), m.Var(m.AddVar())
	ite := m.Ite(f, g, h)
	want := m.Or(m.And(f, g), m.And(m.Not(f), h))
	if ite != want {
		t.Fatal("ite mismatch")
	}
	if m.Ite(True, g, h) != g || m.Ite(False, g, h) != h {
		t.Fatal("ite terminal cases")
	}
}

// eval runs a BDD as a function of a full variable assignment.
func eval(m *Manager, n Node, env []bool) bool {
	for n != True && n != False {
		nd := m.nodes[n]
		if env[nd.level] {
			n = nd.high
		} else {
			n = nd.low
		}
	}
	return n == True
}

// randomBDD builds a random function over nvars variables.
func randomBDD(m *Manager, r *rand.Rand, nvars, depth int) Node {
	if depth == 0 {
		switch r.Intn(4) {
		case 0:
			return True
		case 1:
			return False
		default:
			v := m.Var(r.Intn(nvars))
			if r.Intn(2) == 0 {
				return m.Not(v)
			}
			return v
		}
	}
	a := randomBDD(m, r, nvars, depth-1)
	b := randomBDD(m, r, nvars, depth-1)
	switch r.Intn(4) {
	case 0:
		return m.And(a, b)
	case 1:
		return m.Or(a, b)
	case 2:
		return m.Xor(a, b)
	default:
		return m.Not(a)
	}
}

func TestPropertySemanticEquivalence(t *testing.T) {
	// For random formulas, the BDD must agree with direct evaluation
	// under every assignment (nvars small enough to enumerate).
	const nvars = 6
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := New()
		m.AddVars(nvars)
		a := randomBDD(m, r, nvars, 4)
		b := randomBDD(m, r, nvars, 4)
		and, or, xor := m.And(a, b), m.Or(a, b), m.Xor(a, b)
		not := m.Not(a)
		env := make([]bool, nvars)
		for bits := 0; bits < 1<<nvars; bits++ {
			for i := range env {
				env[i] = bits&(1<<i) != 0
			}
			ea, eb := eval(m, a, env), eval(m, b, env)
			if eval(m, and, env) != (ea && eb) {
				return false
			}
			if eval(m, or, env) != (ea || eb) {
				return false
			}
			if eval(m, xor, env) != (ea != eb) {
				return false
			}
			if eval(m, not, env) != !ea {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCanonicity(t *testing.T) {
	// Semantically equal functions built along different syntactic
	// routes must be the identical node (ROBDD canonicity).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := New()
		m.AddVars(5)
		a := randomBDD(m, r, 5, 3)
		b := randomBDD(m, r, 5, 3)
		// (a OR b) == NOT(NOT a AND NOT b)
		if m.Or(a, b) != m.Not(m.And(m.Not(a), m.Not(b))) {
			return false
		}
		// a XOR b == (a OR b) DIFF (a AND b)
		if m.Xor(a, b) != m.Diff(m.Or(a, b), m.And(a, b)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestExists(t *testing.T) {
	m := New()
	x, y, z := m.AddVar(), m.AddVar(), m.AddVar()
	vx, vy, vz := m.Var(x), m.Var(y), m.Var(z)
	f := m.And(vx, m.Or(vy, vz))
	// Exists y: f == x AND (true OR z) == x ... wait: x AND (1 OR z) = x
	g := m.Exists(f, m.Cube([]int{y}))
	if g != vx {
		t.Fatalf("exists y (x AND (y OR z)) = %v, want x", g)
	}
	// Exists x: f == (y OR z)
	g = m.Exists(f, m.Cube([]int{x}))
	if g != m.Or(vy, vz) {
		t.Fatal("exists x mismatch")
	}
	// Quantifying all variables of a satisfiable function yields True.
	if m.Exists(f, m.Cube([]int{x, y, z})) != True {
		t.Fatal("exists all != true")
	}
	if m.Exists(False, m.Cube([]int{x})) != False {
		t.Fatal("exists over false != false")
	}
}

func TestPropertyExistsAgainstCofactors(t *testing.T) {
	// Exists v: f == f[v=0] OR f[v=1], checked by brute force.
	const nvars = 5
	f := func(seed int64, varIdx uint8) bool {
		r := rand.New(rand.NewSource(seed))
		m := New()
		m.AddVars(nvars)
		n := randomBDD(m, r, nvars, 4)
		v := int(varIdx) % nvars
		q := m.Exists(n, m.Cube([]int{v}))
		env := make([]bool, nvars)
		for bits := 0; bits < 1<<nvars; bits++ {
			for i := range env {
				env[i] = bits&(1<<i) != 0
			}
			save := env[v]
			env[v] = false
			e0 := eval(m, n, env)
			env[v] = true
			e1 := eval(m, n, env)
			env[v] = save
			if eval(m, q, env) != (e0 || e1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAndExistsEqualsComposition(t *testing.T) {
	const nvars = 6
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := New()
		m.AddVars(nvars)
		a := randomBDD(m, r, nvars, 4)
		b := randomBDD(m, r, nvars, 4)
		cubeVars := []int{1, 3, 4}
		cube := m.Cube(cubeVars)
		return m.AndExists(a, b, cube) == m.Exists(m.And(a, b), cube)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestReplace(t *testing.T) {
	m := New()
	x, y := m.AddVar(), m.AddVar()
	x2, y2 := m.AddVar(), m.AddVar()
	f := m.And(m.Var(x), m.Not(m.Var(y)))
	vm := m.NewVarMap([]int{x, y}, []int{x2, y2})
	g := m.Replace(f, vm)
	want := m.And(m.Var(x2), m.Not(m.Var(y2)))
	if g != want {
		t.Fatal("replace mismatch")
	}
	// Replacing back round-trips.
	back := m.NewVarMap([]int{x2, y2}, []int{x, y})
	if m.Replace(g, back) != f {
		t.Fatal("replace round-trip failed")
	}
}

func TestReplaceOrderViolationPanics(t *testing.T) {
	m := New()
	a, b := m.AddVar(), m.AddVar()
	defer func() {
		if recover() == nil {
			t.Fatal("order-violating VarMap did not panic")
		}
	}()
	m.NewVarMap([]int{a, b}, []int{b, a})
}

func TestSatCount(t *testing.T) {
	m := New()
	x, y, z := m.AddVar(), m.AddVar(), m.AddVar()
	if got := m.SatCount(True); got != 8 {
		t.Fatalf("satcount(true) = %v, want 8", got)
	}
	if got := m.SatCount(False); got != 0 {
		t.Fatalf("satcount(false) = %v, want 0", got)
	}
	if got := m.SatCount(m.Var(x)); got != 4 {
		t.Fatalf("satcount(x) = %v, want 4", got)
	}
	f := m.And(m.Var(x), m.Or(m.Var(y), m.Var(z)))
	if got := m.SatCount(f); got != 3 {
		t.Fatalf("satcount(x AND (y OR z)) = %v, want 3", got)
	}
}

func TestPropertySatCountBruteForce(t *testing.T) {
	const nvars = 6
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := New()
		m.AddVars(nvars)
		n := randomBDD(m, r, nvars, 4)
		count := 0
		env := make([]bool, nvars)
		for bits := 0; bits < 1<<nvars; bits++ {
			for i := range env {
				env[i] = bits&(1<<i) != 0
			}
			if eval(m, n, env) {
				count++
			}
		}
		return m.SatCount(n) == float64(count)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAllSat(t *testing.T) {
	m := New()
	x, y := m.AddVar(), m.AddVar()
	f := m.Or(m.And(m.Var(x), m.Not(m.Var(y))), m.And(m.Not(m.Var(x)), m.Var(y)))
	var got [][2]bool
	m.AllSat(f, []int{x, y}, func(a []bool) bool {
		got = append(got, [2]bool{a[0], a[1]})
		return true
	})
	if len(got) != 2 {
		t.Fatalf("xor has %d sat assignments over {x,y}, want 2", len(got))
	}
	for _, a := range got {
		if a[0] == a[1] {
			t.Fatalf("non-xor assignment %v reported", a)
		}
	}
}

func TestAllSatEarlyStop(t *testing.T) {
	m := New()
	x, y := m.AddVar(), m.AddVar()
	calls := 0
	m.AllSat(True, []int{x, y}, func([]bool) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Fatalf("early stop ignored: %d calls", calls)
	}
}

func TestSupport(t *testing.T) {
	m := New()
	x, y, z := m.AddVar(), m.AddVar(), m.AddVar()
	f := m.And(m.Var(x), m.Var(z))
	sup := m.Support(f)
	if len(sup) != 2 || sup[0] != x || sup[1] != z {
		t.Fatalf("support = %v, want [%d %d]", sup, x, z)
	}
	if len(m.Support(True)) != 0 {
		t.Fatal("terminal support not empty")
	}
	_ = y
}

func TestVarOutOfRangePanics(t *testing.T) {
	m := New()
	defer func() {
		if recover() == nil {
			t.Fatal("Var out of range did not panic")
		}
	}()
	m.Var(0)
}
