package bdd

import "sort"

// Sifting-based dynamic variable reordering (Rudell's algorithm, as in
// BuDDy's bdd_reorder WIN2ITE/SIFT family). A variable is moved through
// the order by repeated adjacent-level swaps, the live node count is
// tracked at every position, and the variable settles where the count
// was smallest. Swaps rewrite nodes *in place*: a node's index always
// denotes the same boolean function before and after, so pinned Nodes
// and every client data structure survive a reorder unchanged — only
// the internal shape (and the variable↔level permutations) move.
//
// Reorder has the same safe-point contract as Collect, and stricter
// consequences: it first collects (level sizes must measure live nodes
// only), so any node not reachable from a Ref-pinned root is freed.

const (
	// siftMaxVars bounds how many variables one pass sifts (largest
	// levels first); a full pass is quadratic in the variable count.
	siftMaxVars = 64
	// siftMaxGrowthNum/Den abort a sift direction once the live count
	// exceeds 120% of the best seen for this variable.
	siftMaxGrowthNum = 6
	siftMaxGrowthDen = 5
)

// reorderState carries the bookkeeping that exists only while a
// sifting pass runs: per-node reference counts (so swaps can free
// nodes that lose their last parent), per-level node lists, and the
// live-count objective.
type reorderState struct {
	m     *Manager
	ref   []int32 // parents + pins per slot; 0 ⇒ dead, freed eagerly
	stamp []int32 // visit stamps to drop stale level-list entries
	cur   int32
	// levels[l] lists node indices at level l. Entries go stale when a
	// swap frees or relabels a node; take filters them lazily.
	levels [][]int32
	live   int // live internal nodes — the sifting objective
	swaps  int
}

// Reorder runs one sifting pass over the variable order and returns
// the number of adjacent-level swaps performed. The caller must be at
// a safe point with every needed node pinned (see Collect); garbage is
// collected first. VarMaps whose relative order the new permutation
// breaks must be rebuilt by the client.
func (m *Manager) Reorder() int {
	if m.numVars < 2 {
		return 0
	}
	m.Collect()
	rs := &reorderState{
		m:      m,
		ref:    make([]int32, m.free),
		stamp:  make([]int32, m.free),
		levels: make([][]int32, m.numVars),
	}
	for i := int32(2); i < m.free; i++ {
		nd := &m.nodes[i]
		if nd.level == freeLevel {
			continue
		}
		rs.live++
		rs.levels[nd.level] = append(rs.levels[nd.level], i)
		rs.incRef(nd.low)
		rs.incRef(nd.high)
	}
	for n, c := range m.refs {
		rs.ref[n] += c
	}
	// Sift the owners of the largest levels first — that is where
	// moving a variable can save the most.
	type cand struct{ v, size int }
	cands := make([]cand, 0, m.numVars)
	for l := 0; l < m.numVars; l++ {
		if s := len(rs.levels[l]); s > 0 {
			cands = append(cands, cand{int(m.level2var[l]), s})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].size != cands[j].size {
			return cands[i].size > cands[j].size
		}
		return cands[i].v < cands[j].v
	})
	if len(cands) > siftMaxVars {
		cands = cands[:siftMaxVars]
	}
	for _, c := range cands {
		rs.sift(c.v)
	}
	m.reorders++
	m.reorderSwaps += uint64(rs.swaps)
	m.orderSeq++
	m.replVm = nil
	m.clearCaches()
	if m.OnEvent != nil {
		m.OnEvent("reorder", m.NumNodes(), len(m.nodes))
	}
	return rs.swaps
}

// sift moves variable v to the closer end of the order first, then all
// the way to the other end, then back to the position where the live
// count was smallest.
func (rs *reorderState) sift(v int) {
	m := rs.m
	start := int(m.var2level[v])
	best := rs.live
	bestPos := start
	limit := rs.live*siftMaxGrowthNum/siftMaxGrowthDen + 16
	down := func() {
		for int(m.var2level[v]) < m.numVars-1 {
			rs.swapLevels(int(m.var2level[v]))
			if rs.live < best {
				best, bestPos = rs.live, int(m.var2level[v])
			}
			if rs.live > limit {
				return
			}
		}
	}
	up := func() {
		for int(m.var2level[v]) > 0 {
			rs.swapLevels(int(m.var2level[v]) - 1)
			if rs.live < best {
				best, bestPos = rs.live, int(m.var2level[v])
			}
			if rs.live > limit {
				return
			}
		}
	}
	if m.numVars-1-start <= start {
		down()
		up()
	} else {
		up()
		down()
	}
	for int(m.var2level[v]) < bestPos {
		rs.swapLevels(int(m.var2level[v]))
	}
	for int(m.var2level[v]) > bestPos {
		rs.swapLevels(int(m.var2level[v]) - 1)
	}
}

// take returns the current occupants of level l, dropping entries that
// a previous swap freed or relabeled (and deduplicating reused slots).
func (rs *reorderState) take(l int) []int32 {
	m := rs.m
	rs.cur++
	out := rs.levels[l][:0]
	for _, i := range rs.levels[l] {
		if m.nodes[i].level != int32(l) || rs.stamp[i] == rs.cur {
			continue
		}
		rs.stamp[i] = rs.cur
		out = append(out, i)
	}
	rs.levels[l] = out
	return out
}

func (rs *reorderState) ensure(i Node) {
	for int(i) >= len(rs.ref) {
		rs.ref = append(rs.ref, 0)
		rs.stamp = append(rs.stamp, 0)
	}
}

func (rs *reorderState) incRef(i Node) {
	if i < 2 {
		return
	}
	rs.ensure(i)
	rs.ref[i]++
}

// decRef drops one parent reference; a node that loses its last
// reference is unhashed, freed onto the freelist, and its children
// released recursively.
func (rs *reorderState) decRef(i Node) {
	if i < 2 {
		return
	}
	rs.ref[i]--
	if rs.ref[i] > 0 {
		return
	}
	m := rs.m
	low, high := m.nodes[i].low, m.nodes[i].high
	m.unhash(Node(i))
	n := &m.nodes[i]
	n.level = freeLevel
	n.low = m.freelist
	n.high = 0
	m.freelist = i
	m.freeNodes++
	rs.live--
	rs.decRef(low)
	rs.decRef(high)
}

// mkSwap is mk for the swap's rebuild phase: same hash-consing, but it
// maintains the reorder refcounts, never grows the table (capacity is
// reserved up front — growth rehashes by content and would re-chain
// nodes the swap has deliberately unhashed), and records fresh nodes
// in created. The caller owns one parent reference on the result.
func (rs *reorderState) mkSwap(level int32, low, high Node, created *[]int32) Node {
	m := rs.m
	if low == high {
		return low
	}
	h := hash3(level, low, high)
	for i := m.nodes[h&m.mask].hash; i != 0; i = m.nodes[i].next {
		n := &m.nodes[i]
		if n.level == level && n.low == low && n.high == high {
			return Node(i)
		}
	}
	if m.freelist == 0 && int(m.free) == len(m.nodes) {
		panic("bdd: reorder swap exceeded reserved capacity")
	}
	i := m.allocNode()
	rs.ensure(Node(i))
	n := &m.nodes[i]
	n.level, n.low, n.high = level, low, high
	b := &m.nodes[h&m.mask]
	n.next = b.hash
	b.hash = i
	rs.incRef(low)
	rs.incRef(high)
	rs.live++
	if lv := m.free - m.freeNodes; lv > m.peakNodes {
		m.peakNodes = lv
	}
	*created = append(*created, i)
	return Node(i)
}

// swapLevels exchanges the variables at positions u and u+1.
//
// Writing xu for the upper variable and xw for the lower one, a node
// f = xu ? f1 : f0 with cofactors f_ab (a the xu value, b the xw
// value) becomes f = xw ? (xu ? f11 : f01) : (xu ? f10 : f00). Nodes
// at u that do not test xw just sink to level u+1 unchanged; nodes at
// u+1 rise to level u unchanged (their children never test xu); nodes
// at u that test both are rewritten in place so their indices — and
// therefore every external handle — stay valid.
func (rs *reorderState) swapLevels(u int) {
	m := rs.m
	w := u + 1
	vu, vw := m.level2var[u], m.level2var[w]
	m.level2var[u], m.level2var[w] = vw, vu
	m.var2level[vu], m.var2level[vw] = int32(w), int32(u)
	rs.swaps++
	upper := rs.take(u)
	lower := rs.take(w)
	if len(upper) == 0 {
		for _, i := range lower {
			m.unhash(Node(i))
			m.nodes[i].level = int32(u)
			m.rehash(Node(i))
		}
		rs.levels[u], rs.levels[w] = rs.levels[w], rs.levels[u]
		return
	}
	// Reserve room for the worst case (two fresh nodes per upper node)
	// before touching any chain, so mkSwap never grows mid-swap.
	for len(m.nodes)-int(m.free)+int(m.freeNodes) < 2*len(upper) {
		m.grow()
	}
	// Phase 1: the lower variable's nodes rise to level u unchanged.
	for _, i := range lower {
		m.unhash(Node(i))
		m.nodes[i].level = int32(u)
		m.rehash(Node(i))
	}
	// Phase 2: classify upper nodes. Children that (after phase 1) sit
	// at level u are exactly the old xw nodes.
	var dep, indep []int32
	for _, i := range upper {
		nd := &m.nodes[i]
		if m.nodes[nd.low].level == int32(u) || m.nodes[nd.high].level == int32(u) {
			m.unhash(Node(i))
			dep = append(dep, i)
		} else {
			m.unhash(Node(i))
			nd.level = int32(w)
			m.rehash(Node(i))
			indep = append(indep, i)
		}
	}
	// Phase 3: rebuild the dependent nodes in place.
	var created []int32
	for _, i := range dep {
		f0, f1 := m.nodes[i].low, m.nodes[i].high
		f00, f01 := f0, f0
		if m.nodes[f0].level == int32(u) {
			f00, f01 = m.nodes[f0].low, m.nodes[f0].high
		}
		f10, f11 := f1, f1
		if m.nodes[f1].level == int32(u) {
			f10, f11 = m.nodes[f1].low, m.nodes[f1].high
		}
		g0 := rs.mkSwap(int32(w), f00, f10, &created)
		rs.incRef(g0)
		g1 := rs.mkSwap(int32(w), f01, f11, &created)
		rs.incRef(g1)
		m.nodes[i].low, m.nodes[i].high = g0, g1
		m.rehash(Node(i))
		rs.decRef(f0)
		rs.decRef(f1)
	}
	newU := dep
	for _, i := range lower {
		if m.nodes[i].level == int32(u) {
			newU = append(newU, i)
		}
	}
	rs.levels[u] = newU
	rs.levels[w] = append(indep, created...)
}
