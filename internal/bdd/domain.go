package bdd

import "fmt"

// Domain is a finite domain encoded over a block of boolean variables,
// in the style of BuDDy's fdd layer. A Domain holds values 0..Size-1.
// Relations over tuples of domains are plain BDDs built with Eq and the
// boolean connectives.
type Domain struct {
	m    *Manager
	name string
	size uint64
	vars []int // variable indices, least-significant bit first
}

// NewDomain allocates a fresh domain with the given size (number of
// distinct values) using a contiguous block of variables. Domains
// allocated consecutively are therefore NOT bit-interleaved; use
// NewInterleavedDomains when two domains participate in equality or
// renaming-heavy relations (the paper's Section 6.3 observation that
// variable order dominates solver cost is real here, too).
func (m *Manager) NewDomain(name string, size uint64) *Domain {
	if size == 0 {
		panic("bdd: NewDomain size must be positive")
	}
	bits := bitsFor(size)
	first := m.AddVars(bits)
	d := &Domain{m: m, name: name, size: size, vars: make([]int, bits)}
	for i := 0; i < bits; i++ {
		d.vars[i] = first + i
	}
	m.domains = append(m.domains, d)
	return d
}

// NewInterleavedDomains allocates several domains of the given sizes
// with their variables bit-interleaved (bit k of every domain is
// adjacent). This is the order that keeps equality and renaming BDDs
// linear in the number of bits.
func (m *Manager) NewInterleavedDomains(names []string, sizes []uint64) []*Domain {
	if len(names) != len(sizes) {
		panic("bdd: NewInterleavedDomains length mismatch")
	}
	maxBits := 0
	bits := make([]int, len(sizes))
	for i, s := range sizes {
		if s == 0 {
			panic("bdd: NewInterleavedDomains size must be positive")
		}
		bits[i] = bitsFor(s)
		if bits[i] > maxBits {
			maxBits = bits[i]
		}
	}
	ds := make([]*Domain, len(sizes))
	for i := range sizes {
		ds[i] = &Domain{m: m, name: names[i], size: sizes[i], vars: make([]int, 0, bits[i])}
	}
	for b := 0; b < maxBits; b++ {
		for i := range ds {
			if b < bits[i] {
				ds[i].vars = append(ds[i].vars, m.AddVar())
			}
		}
	}
	m.domains = append(m.domains, ds...)
	return ds
}

func bitsFor(size uint64) int {
	bits := 1
	for (uint64(1) << bits) < size {
		bits++
	}
	return bits
}

// Name returns the domain's diagnostic name.
func (d *Domain) Name() string { return d.name }

// Size returns the number of values in the domain.
func (d *Domain) Size() uint64 { return d.size }

// Vars returns the variable indices of the domain, LSB first. The slice
// is owned by the Domain and must not be modified.
func (d *Domain) Vars() []int { return d.vars }

// Cube returns the quantification cube over all of the domain's bits.
func (d *Domain) Cube() Node { return d.m.Cube(d.vars) }

// Eq returns the BDD asserting the domain equals value.
func (d *Domain) Eq(value uint64) Node {
	if value >= d.size {
		panic(fmt.Sprintf("bdd: value %d out of domain %s [0,%d)", value, d.name, d.size))
	}
	r := True
	// Build bottom-up: deepest level first so mk levels nest. Sorting
	// by the current order (not variable index) keeps this correct
	// after a Reorder.
	idx := append([]int(nil), d.vars...)
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && d.m.var2level[idx[j-1]] > d.m.var2level[idx[j]]; j-- {
			idx[j-1], idx[j] = idx[j], idx[j-1]
		}
	}
	for i := len(idx) - 1; i >= 0; i-- {
		v := idx[i]
		bit := d.bitOf(v)
		if value&(1<<bit) != 0 {
			r = d.m.mk(d.m.var2level[v], False, r)
		} else {
			r = d.m.mk(d.m.var2level[v], r, False)
		}
	}
	return r
}

func (d *Domain) bitOf(variable int) int {
	for i, v := range d.vars {
		if v == variable {
			return i
		}
	}
	panic("bdd: variable not in domain")
}

// EqDomain returns the BDD asserting d equals other bit for bit. Both
// domains must have the same number of bits.
func (d *Domain) EqDomain(other *Domain) Node {
	if len(d.vars) != len(other.vars) {
		panic(fmt.Sprintf("bdd: EqDomain bit mismatch %s(%d) vs %s(%d)",
			d.name, len(d.vars), other.name, len(other.vars)))
	}
	r := True
	for i := range d.vars {
		r = d.m.And(r, d.m.Biimp(d.m.Var(d.vars[i]), d.m.Var(other.vars[i])))
	}
	return r
}

// Decode extracts the domain's value from an AllSat assignment over
// vars (the same strictly-increasing variable list passed to AllSat).
func (d *Domain) Decode(vars []int, assignment []bool) uint64 {
	var value uint64
	for i, v := range vars {
		if assignment[i] {
			for bit, dv := range d.vars {
				if dv == v {
					value |= 1 << bit
				}
			}
		}
	}
	return value
}

// LtConst returns the BDD asserting the domain's value is strictly less
// than c. LtConst(Size()) is the domain's range constraint, used to keep
// complements of relations inside the domain.
func (d *Domain) LtConst(c uint64) Node {
	if c == 0 {
		return False
	}
	maxVal := uint64(1)<<len(d.vars) - 1
	if len(d.vars) >= 64 || c > maxVal {
		return True
	}
	// x < c  iff  there is a bit position k (scanning from the most
	// significant bit) where x agrees with c above k, c_k = 1, and
	// x_k = 0. This formulation is independent of the BDD variable
	// order of the domain's bits.
	res := False
	agree := True
	for k := len(d.vars) - 1; k >= 0; k-- {
		xv := d.m.Var(d.vars[k])
		if c&(1<<k) != 0 {
			res = d.m.Or(res, d.m.And(agree, d.m.Not(xv)))
			agree = d.m.And(agree, xv)
		} else {
			agree = d.m.And(agree, d.m.Not(xv))
		}
	}
	return res
}

// Range returns the constraint that the domain holds a legal value,
// i.e. LtConst(Size()).
func (d *Domain) Range() Node { return d.LtConst(d.size) }

// RenameTo builds a VarMap renaming d's variables to other's. Both
// domains must have the same bit count and compatible variable order.
func (d *Domain) RenameTo(other *Domain) *VarMap {
	if len(d.vars) != len(other.vars) {
		panic("bdd: RenameTo bit mismatch")
	}
	return d.m.NewVarMap(d.vars, other.vars)
}
