package bdd

import (
	"math/rand"
	"testing"
)

// evalNode evaluates n under the assignment bits (bit v is the value
// of variable v), translating stored levels through the current order
// so it stays correct after a Reorder.
func evalNode(m *Manager, n Node, bits int) bool {
	for n != False && n != True {
		nd := m.nodes[n]
		if bits>>uint(m.level2var[nd.level])&1 == 1 {
			n = nd.high
		} else {
			n = nd.low
		}
	}
	return n == True
}

// truthTable extracts n's function over numVars variables.
func truthTable(m *Manager, n Node, numVars int) []bool {
	tt := make([]bool, 1<<numVars)
	for bits := range tt {
		tt[bits] = evalNode(m, n, bits)
	}
	return tt
}

// checkIntegrity verifies every kernel invariant the sweep and the
// reorder swaps must preserve: reduced unique nodes, strictly
// increasing levels, no references into freed slots, an exact
// freelist, and every live node findable on its hash chain.
func checkIntegrity(t *testing.T, m *Manager) {
	t.Helper()
	type triple struct {
		level     int32
		low, high Node
	}
	seen := make(map[triple]Node)
	freeSlots := 0
	for i := Node(2); i < Node(m.free); i++ {
		nd := m.nodes[i]
		if nd.level == freeLevel {
			freeSlots++
			continue
		}
		if nd.low == nd.high {
			t.Fatalf("node %d not reduced", i)
		}
		for _, c := range []Node{nd.low, nd.high} {
			if c < 2 {
				continue
			}
			cl := m.nodes[c].level
			if cl == freeLevel {
				t.Fatalf("node %d references freed slot %d", i, c)
			}
			if cl <= nd.level {
				t.Fatalf("node %d at level %d has child %d at level %d", i, nd.level, c, cl)
			}
		}
		k := triple{nd.level, nd.low, nd.high}
		if prev, dup := seen[k]; dup {
			t.Fatalf("nodes %d and %d share triple %+v", prev, i, k)
		}
		seen[k] = i
		found := false
		for j := m.nodes[hash3(nd.level, nd.low, nd.high)&m.mask].hash; j != 0; j = m.nodes[j].next {
			if j == int32(i) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("node %d missing from its hash chain", i)
		}
	}
	if freeSlots != int(m.freeNodes) {
		t.Fatalf("free slots %d != freeNodes %d", freeSlots, m.freeNodes)
	}
	chain := 0
	for f := m.freelist; f != 0; f = m.nodes[f].low {
		chain++
	}
	if chain != int(m.freeNodes) {
		t.Fatalf("freelist length %d != freeNodes %d", chain, m.freeNodes)
	}
}

// TestCollectFreesUnpinned builds garbage around one pinned function
// and checks that a sweep frees the garbage, keeps the pinned function
// intact, and that later allocation reuses the freelist instead of
// growing the table.
func TestCollectFreesUnpinned(t *testing.T) {
	const numVars = 10
	m := New()
	m.AddVars(numVars)
	rng := rand.New(rand.NewSource(1))

	f := False
	for k := 0; k < 6; k++ {
		cube := True
		for v := 0; v < numVars; v++ {
			switch rng.Intn(3) {
			case 0:
				cube = m.And(cube, m.Var(v))
			case 1:
				cube = m.And(cube, m.NVar(v))
			}
		}
		f = m.Or(f, cube)
	}
	m.Ref(f)
	want := truthTable(m, f, numVars)

	// Garbage: functions no one holds.
	for k := 0; k < 200; k++ {
		g := m.Xor(m.Var(rng.Intn(numVars)), m.Var(rng.Intn(numVars)))
		g = m.Or(g, m.And(m.Var(rng.Intn(numVars)), m.NVar(rng.Intn(numVars))))
		_ = g
	}
	before := m.NumNodes()
	freed := m.Collect()
	after := m.NumNodes()
	if freed == 0 || after >= before {
		t.Fatalf("Collect freed %d nodes (%d -> %d), want a reduction", freed, before, after)
	}
	checkIntegrity(t, m)
	for bits := range want {
		if evalNode(m, f, bits) != want[bits] {
			t.Fatalf("pinned function changed at assignment %b", bits)
		}
	}

	// New work must reuse swept slots before the table grows.
	growsBefore := m.Stats().Grows
	for k := 0; k < 50; k++ {
		m.And(m.Var(rng.Intn(numVars)), m.Var(rng.Intn(numVars)))
	}
	if g := m.Stats().Grows; g != growsBefore {
		t.Fatalf("allocation after Collect grew the table (%d -> %d grows) despite %d free slots", growsBefore, g, freed)
	}

	m.Deref(f)
	if got := m.Collect(); got == 0 {
		t.Fatal("Collect after releasing the last pin freed nothing")
	}
	if live := m.NumNodes(); live != 2 {
		t.Fatalf("fully released manager holds %d live nodes, want 2 terminals", live)
	}
	checkIntegrity(t, m)
}

func TestDerefUnpinnedPanics(t *testing.T) {
	m := New()
	m.AddVars(2)
	n := m.And(m.Var(0), m.Var(1))
	defer func() {
		if recover() == nil {
			t.Fatal("Deref of unpinned node did not panic")
		}
	}()
	m.Deref(n)
}

// TestGCPressure checks the trigger chain: growth under Config.GC
// raises pressure, MaybeCollect answers it, and the flag clears.
func TestGCPressure(t *testing.T) {
	m := NewWith(Config{NodeSize: 1, GC: true, GCThreshold: 1})
	const numVars = 14
	m.AddVars(numVars)
	if m.GCPressure() {
		t.Fatal("fresh manager reports pressure")
	}
	rng := rand.New(rand.NewSource(2))
	keep := m.Ref(m.And(m.Var(0), m.Var(1)))
	for k := 0; m.Stats().Grows == 0 && k < 10000; k++ {
		cube := True
		for v := 0; v < numVars; v++ {
			if rng.Intn(2) == 0 {
				cube = m.And(cube, m.Var(v))
			} else {
				cube = m.And(cube, m.NVar(v))
			}
		}
		_ = cube
	}
	if m.Stats().Grows == 0 {
		t.Fatal("workload never grew the table")
	}
	if !m.GCPressure() {
		t.Fatal("growth did not raise GC pressure")
	}
	if !m.MaybeCollect() {
		t.Fatal("MaybeCollect declined under pressure")
	}
	if m.GCPressure() {
		t.Fatal("pressure not cleared by collection")
	}
	st := m.Stats()
	if st.Collections != 1 || st.NodesFreed == 0 || st.PeakNodes == 0 {
		t.Fatalf("stats after collection: %+v", st)
	}
	if keep != m.And(m.Var(0), m.Var(1)) {
		t.Fatal("pinned node lost identity across collection")
	}
	checkIntegrity(t, m)
}

// TestReorderReducesNodes sifts the classic worst-order function
// OR_i (x_i AND x_{i+n/2}): the natural order needs ~2^(n/2) nodes,
// any paired order is linear. Sifting must find a large reduction and
// preserve the function and the pinned handle.
func TestReorderReducesNodes(t *testing.T) {
	const half = 6
	const numVars = 2 * half
	m := New()
	m.AddVars(numVars)
	f := False
	for i := 0; i < half; i++ {
		f = m.Or(f, m.And(m.Var(i), m.Var(i+half)))
	}
	m.Ref(f)
	want := truthTable(m, f, numVars)

	m.Collect()
	before := m.NumNodes()
	swaps := m.Reorder()
	after := m.NumNodes()
	if swaps == 0 {
		t.Fatal("Reorder performed no swaps on a badly ordered function")
	}
	if after >= before/2 {
		t.Fatalf("Reorder: %d -> %d live nodes, want at least a 2x reduction", before, after)
	}
	checkIntegrity(t, m)
	for bits := range want {
		if evalNode(m, f, bits) != want[bits] {
			t.Fatalf("reordered function differs at assignment %b", bits)
		}
	}
	if st := m.Stats(); st.Reorders != 1 || st.ReorderSwaps == 0 {
		t.Fatalf("reorder counters not recorded: %+v", st)
	}

	// The kernel must keep working in the new order: rebuilding the
	// same function must reproduce the identical (canonical) node.
	g := False
	for i := 0; i < half; i++ {
		g = m.Or(g, m.And(m.Var(i), m.Var(i+half)))
	}
	if g != f {
		t.Fatalf("rebuilding the pinned function found node %d, want %d", g, f)
	}
	checkIntegrity(t, m)
}

// TestReorderDomains checks the finite-domain layer against a reorder:
// Eq/Cube/AllSat/SatCount must respect the permuted order.
func TestReorderDomains(t *testing.T) {
	m := New()
	ds := m.NewInterleavedDomains([]string{"a", "b"}, []uint64{16, 16})
	a, b := ds[0], ds[1]
	rel := False
	pairs := [][2]uint64{{1, 3}, {7, 7}, {12, 0}, {15, 9}, {4, 11}}
	for _, p := range pairs {
		rel = m.Or(rel, m.And(a.Eq(p[0]), b.Eq(p[1])))
	}
	m.Ref(rel)
	m.Reorder()
	checkIntegrity(t, m)

	for _, p := range pairs {
		tup := m.And(a.Eq(p[0]), b.Eq(p[1]))
		if m.And(rel, tup) != tup {
			t.Fatalf("tuple (%d,%d) lost after reorder", p[0], p[1])
		}
	}
	if got, want := m.SatCount(rel), float64(len(pairs)); got != want {
		t.Fatalf("SatCount after reorder = %v, want %v", got, want)
	}
	vars := append(append([]int(nil), a.Vars()...), b.Vars()...)
	for i := 1; i < len(vars); i++ {
		for j := i; j > 0 && vars[j-1] > vars[j]; j-- {
			vars[j-1], vars[j] = vars[j], vars[j-1]
		}
	}
	got := make(map[[2]uint64]bool)
	m.AllSat(rel, vars, func(as []bool) bool {
		got[[2]uint64{a.Decode(vars, as), b.Decode(vars, as)}] = true
		return true
	})
	if len(got) != len(pairs) {
		t.Fatalf("AllSat after reorder enumerated %d tuples, want %d: %v", len(got), len(pairs), got)
	}
	for _, p := range pairs {
		if !got[[2]uint64{p[0], p[1]}] {
			t.Fatalf("AllSat after reorder missed tuple %v", p)
		}
	}
}
