package bdd

import (
	"math"
	"math/rand"
	"testing"
)

// A map-backed reference BDD implementation, deliberately naive: a Go
// map as unique table, unbounded map memoization, and only the textbook
// recursions. The differential tests below drive the production kernel
// and this reference through identical random operation sequences and
// require structurally identical results — exercising the intrusive
// hash table, the lossy caches (whose collisions must only ever cost
// recomputation, never change answers), and table growth.

type refNode struct {
	level     int32
	low, high int
}

type refBDD struct {
	nodes   []refNode
	unique  map[refNode]int
	numVars int
}

func newRef(numVars int) *refBDD {
	r := &refBDD{unique: make(map[refNode]int), numVars: numVars}
	r.nodes = append(r.nodes,
		refNode{level: terminalLevel, low: 0, high: 0},
		refNode{level: terminalLevel, low: 1, high: 1})
	return r
}

func (r *refBDD) mk(level int32, low, high int) int {
	if low == high {
		return low
	}
	key := refNode{level, low, high}
	if n, ok := r.unique[key]; ok {
		return n
	}
	r.nodes = append(r.nodes, key)
	n := len(r.nodes) - 1
	r.unique[key] = n
	return n
}

func (r *refBDD) levelOf(n int) int32 { return r.nodes[n].level }

func (r *refBDD) variable(v int) int { return r.mk(int32(v), 0, 1) }

func (r *refBDD) not(n int) int {
	if n <= 1 {
		return 1 - n
	}
	nd := r.nodes[n]
	return r.mk(nd.level, r.not(nd.low), r.not(nd.high))
}

func (r *refBDD) apply(op func(a, b bool) bool, a, b int) int {
	if a <= 1 && b <= 1 {
		if op(a == 1, b == 1) {
			return 1
		}
		return 0
	}
	na, nb := r.nodes[a], r.nodes[b]
	level := na.level
	if nb.level < level {
		level = nb.level
	}
	a0, a1 := a, a
	if na.level == level {
		a0, a1 = na.low, na.high
	}
	b0, b1 := b, b
	if nb.level == level {
		b0, b1 = nb.low, nb.high
	}
	return r.mk(level, r.apply(op, a0, b0), r.apply(op, a1, b1))
}

func (r *refBDD) and(a, b int) int  { return r.apply(func(x, y bool) bool { return x && y }, a, b) }
func (r *refBDD) or(a, b int) int   { return r.apply(func(x, y bool) bool { return x || y }, a, b) }
func (r *refBDD) xor(a, b int) int  { return r.apply(func(x, y bool) bool { return x != y }, a, b) }
func (r *refBDD) diff(a, b int) int { return r.apply(func(x, y bool) bool { return x && !y }, a, b) }

// exists quantifies away one variable.
func (r *refBDD) exists1(n int, v int32) int {
	if n <= 1 {
		return n
	}
	nd := r.nodes[n]
	switch {
	case nd.level > v:
		return n
	case nd.level == v:
		return r.or(r.exists1(nd.low, v), r.exists1(nd.high, v))
	default:
		return r.mk(nd.level, r.exists1(nd.low, v), r.exists1(nd.high, v))
	}
}

func (r *refBDD) exists(n int, vars []int32) int {
	for _, v := range vars {
		n = r.exists1(n, v)
	}
	return n
}

// replace renames variables via full Shannon expansion against the
// renamed variable BDDs — slow but obviously correct for any
// order-preserving map.
func (r *refBDD) replace(n int, mapping map[int32]int32) int {
	if n <= 1 {
		return n
	}
	nd := r.nodes[n]
	low := r.replace(nd.low, mapping)
	high := r.replace(nd.high, mapping)
	nl := nd.level
	if to, ok := mapping[nl]; ok {
		nl = to
	}
	v := r.variable(int(nl))
	return r.or(r.and(r.not(v), low), r.and(v, high))
}

// equalStructure checks that node a in the kernel manager and node b in
// the reference denote the same boolean function, by memoized
// simultaneous descent (both are canonical ROBDDs with the same
// variable order, so the DAGs must be isomorphic).
func equalStructure(t *testing.T, m *Manager, a Node, r *refBDD, b int) bool {
	t.Helper()
	type pair struct {
		a Node
		b int
	}
	seen := make(map[pair]bool)
	var walk func(a Node, b int) bool
	walk = func(a Node, b int) bool {
		if a == False || a == True || b <= 1 {
			return (a == True) == (b == 1) && (a == False) == (b == 0)
		}
		p := pair{a, b}
		if seen[p] {
			return true
		}
		seen[p] = true
		na, nb := m.nodes[a], r.nodes[b]
		if na.level != nb.level {
			return false
		}
		return walk(na.low, nb.low) && walk(na.high, nb.high)
	}
	return walk(a, b)
}

// TestDifferentialRandomOps drives the kernel and the reference through
// identical random operation sequences and checks every intermediate
// result structurally. A tiny node table forces table growth mid-run;
// tiny caches force constant lossy-cache eviction.
func TestDifferentialRandomOps(t *testing.T) {
	const numVars = 12
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		// Deliberately undersized: growth and cache collisions on every
		// run (normalized floors still apply, but the defaults are far
		// larger).
		m := NewWith(Config{NodeSize: 1, CacheRatio: 1 << 20})
		m.AddVars(numVars)
		ref := newRef(numVars)

		// Pools of corresponding (kernel, reference) function pairs.
		ks := []Node{False, True}
		rs := []int{0, 1}
		for v := 0; v < numVars; v++ {
			ks = append(ks, m.Var(v))
			rs = append(rs, ref.variable(v))
		}

		for step := 0; step < 400; step++ {
			i, j := rng.Intn(len(ks)), rng.Intn(len(ks))
			var kn Node
			var rn int
			switch op := rng.Intn(8); op {
			case 0:
				kn, rn = m.And(ks[i], ks[j]), ref.and(rs[i], rs[j])
			case 1:
				kn, rn = m.Or(ks[i], ks[j]), ref.or(rs[i], rs[j])
			case 2:
				kn, rn = m.Xor(ks[i], ks[j]), ref.xor(rs[i], rs[j])
			case 3:
				kn, rn = m.Diff(ks[i], ks[j]), ref.diff(rs[i], rs[j])
			case 4:
				kn, rn = m.Not(ks[i]), ref.not(rs[i])
			case 5: // Exists over a random variable set
				var vars []int
				var rvars []int32
				for v := 0; v < numVars; v++ {
					if rng.Intn(4) == 0 {
						vars = append(vars, v)
						rvars = append(rvars, int32(v))
					}
				}
				kn, rn = m.Exists(ks[i], m.Cube(vars)), ref.exists(rs[i], rvars)
			case 6: // AndExists == Exists(And)
				var vars []int
				var rvars []int32
				for v := 0; v < numVars; v++ {
					if rng.Intn(4) == 0 {
						vars = append(vars, v)
						rvars = append(rvars, int32(v))
					}
				}
				kn = m.AndExists(ks[i], ks[j], m.Cube(vars))
				rn = ref.exists(ref.and(rs[i], rs[j]), rvars)
			case 7: // Replace with a random order-preserving shift
				// Map a contiguous variable block [lo,hi) up by delta.
				lo := rng.Intn(numVars)
				hi := lo + rng.Intn(numVars-lo)
				delta := rng.Intn(numVars - hi + 1)
				var from, to []int
				mapping := map[int32]int32{}
				for v := lo; v < hi; v++ {
					from = append(from, v)
					to = append(to, v+delta)
					mapping[int32(v)] = int32(v + delta)
				}
				// Skip maps whose targets overlap unmapped support
				// variables (ambiguous level collisions panic by design).
				overlap := false
				for _, v := range m.Support(ks[i]) {
					if _, mapped := mapping[int32(v)]; mapped {
						continue
					}
					for _, tv := range to {
						if tv == v {
							overlap = true
						}
					}
				}
				if overlap || len(from) == 0 {
					continue
				}
				kn = m.Replace(ks[i], m.NewVarMap(from, to))
				rn = ref.replace(rs[i], mapping)
			}
			if !equalStructure(t, m, kn, ref, rn) {
				t.Fatalf("seed %d step %d: kernel and reference diverged", seed, step)
			}
			ks = append(ks, kn)
			rs = append(rs, rn)
		}
		if st := m.Stats(); st.CacheMisses == 0 || st.UniqueCollisions == 0 {
			t.Fatalf("seed %d: run did not exercise the caches/table (stats %+v)", seed, st)
		}
	}
}

// TestTableGrowthPreservesResults builds a function too large for the
// minimum table, forcing geometric growth mid-construction, and checks
// the result against the reference. Node handles must stay valid across
// growth (indices are stable; only buckets rehash).
func TestTableGrowthPreservesResults(t *testing.T) {
	const numVars = 16
	rng := rand.New(rand.NewSource(7))
	m := NewWith(Config{NodeSize: 1}) // floors to the 1024 minimum
	m.AddVars(numVars)
	ref := newRef(numVars)

	f, rf := False, 0
	for k := 0; k < 300; k++ {
		cube, rcube := True, 1
		for v := 0; v < numVars; v++ {
			if rng.Intn(2) == 0 {
				cube = m.And(cube, m.Var(v))
				rcube = ref.and(rcube, ref.variable(v))
			} else {
				cube = m.And(cube, m.NVar(v))
				rcube = ref.and(rcube, ref.not(ref.variable(v)))
			}
		}
		f = m.Or(f, cube)
		rf = ref.or(rf, rcube)
	}
	if st := m.Stats(); st.Grows == 0 {
		t.Fatalf("expected table growth past the 1024-node floor (stats %+v)", st)
	}
	if !equalStructure(t, m, f, ref, rf) {
		t.Fatal("kernel and reference diverged after table growth")
	}
	if got, want := m.SatCount(f), ref.satCount(rf, numVars); got != want {
		t.Fatalf("SatCount after growth = %v, reference = %v", got, want)
	}
}

// satCount is the reference's exact model count over numVars variables.
func (r *refBDD) satCount(n int, numVars int) float64 {
	var level func(int) int32
	level = func(n int) int32 {
		if l := r.nodes[n].level; l != terminalLevel {
			return l
		}
		return int32(numVars)
	}
	memo := make(map[int]float64)
	var rec func(int) float64
	rec = func(n int) float64 {
		if n == 0 {
			return 0
		}
		if n == 1 {
			return 1
		}
		if c, ok := memo[n]; ok {
			return c
		}
		nd := r.nodes[n]
		c := rec(nd.low)*pow2(level(nd.low)-nd.level-1) +
			rec(nd.high)*pow2(level(nd.high)-nd.level-1)
		memo[n] = c
		return c
	}
	return rec(n) * pow2(level(n))
}

func pow2(e int32) float64 {
	out := 1.0
	for ; e > 0; e-- {
		out *= 2
	}
	return out
}

// TestSatCountManyVars checks SatCount beyond 64 variables, where the
// count exceeds uint64 range and only exact power-of-two scaling
// (Ldexp) keeps the float64 result precise.
func TestSatCountManyVars(t *testing.T) {
	const numVars = 100
	m := New()
	m.AddVars(numVars)

	if got, want := m.SatCount(True), math.Ldexp(1, numVars); got != want {
		t.Fatalf("SatCount(True) over %d vars = %v, want %v", numVars, got, want)
	}
	if got := m.SatCount(False); got != 0 {
		t.Fatalf("SatCount(False) = %v, want 0", got)
	}
	// One constrained variable halves the count.
	if got, want := m.SatCount(m.Var(0)), math.Ldexp(1, numVars-1); got != want {
		t.Fatalf("SatCount(x0) = %v, want %v", got, want)
	}
	// A k-variable cube leaves numVars-k free: widely separated
	// variables exercise the per-level Ldexp gaps.
	cube := m.Cube([]int{0, 17, 42, 63, 64, 65, 99})
	if got, want := m.SatCount(cube), math.Ldexp(1, numVars-7); got != want {
		t.Fatalf("SatCount(7-cube) = %v, want %v", got, want)
	}
	// XOR over k variables is satisfied by exactly half the
	// assignments of those variables.
	f := False
	for _, v := range []int{3, 70, 96} {
		f = m.Xor(f, m.Var(v))
	}
	if got, want := m.SatCount(f), math.Ldexp(1, numVars-1); got != want {
		t.Fatalf("SatCount(xor3) = %v, want %v", got, want)
	}
}

// TestDifferentialSatCount cross-checks SatCount against the
// reference's exact model count on random functions.
func TestDifferentialSatCount(t *testing.T) {
	const numVars = 10
	rng := rand.New(rand.NewSource(42))
	m := New()
	m.AddVars(numVars)
	for trial := 0; trial < 50; trial++ {
		// Random function as an OR of random minterm fragments.
		f := False
		for k := 0; k < 5; k++ {
			cube := True
			for v := 0; v < numVars; v++ {
				switch rng.Intn(3) {
				case 0:
					cube = m.And(cube, m.Var(v))
				case 1:
					cube = m.And(cube, m.NVar(v))
				}
			}
			f = m.Or(f, cube)
		}
		// Count models by brute-force enumeration.
		want := 0
		for bits := 0; bits < 1<<numVars; bits++ {
			n := f
			for n != False && n != True {
				nd := m.nodes[n]
				if bits>>uint(nd.level)&1 == 1 {
					n = nd.high
				} else {
					n = nd.low
				}
			}
			if n == True {
				want++
			}
		}
		if got := m.SatCount(f); got != float64(want) {
			t.Fatalf("trial %d: SatCount = %v, brute force = %d", trial, got, want)
		}
	}
}

// evalRef evaluates reference node n under the assignment bits (bit v
// is the value of variable v; the reference always keeps the identity
// order, so its levels are variable indices).
func evalRef(r *refBDD, n int, bits int) bool {
	for n > 1 {
		nd := r.nodes[n]
		if bits>>uint(nd.level)&1 == 1 {
			n = nd.high
		} else {
			n = nd.low
		}
	}
	return n == 1
}

// TestDifferentialLifecycle interleaves the lifecycle API — Ref/Deref
// pinning, forced and pressure-triggered collections, and forced
// reorders — with random operation sequences against the reference.
// Every pool entry is pinned, so each collection must preserve all of
// them; while the kernel order is still the identity the check is
// structural (isomorphic descent), and once a reorder has permuted the
// levels it switches to SatCount plus exhaustive semantic evaluation
// (the reference keeps the identity order, so the DAG shapes then
// legitimately differ). Table invariants are re-verified after every
// lifecycle event.
func TestDifferentialLifecycle(t *testing.T) {
	const numVars = 9
	const protected = 2 + numVars // terminals + single-variable nodes
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		// Tiny table plus GCThreshold 1: growth happens constantly, so
		// the pressure path (MaybeCollect) fires throughout the run.
		m := NewWith(Config{NodeSize: 1, CacheRatio: 1 << 20, GC: true, GCThreshold: 1})
		m.AddVars(numVars)
		ref := newRef(numVars)

		ks := []Node{False, True}
		rs := []int{0, 1}
		for v := 0; v < numVars; v++ {
			ks = append(ks, m.Ref(m.Var(v)))
			rs = append(rs, ref.variable(v))
		}

		reordered := false
		checkPool := func(step int, why string) {
			t.Helper()
			for i := range ks {
				if got, want := m.SatCount(ks[i]), ref.satCount(rs[i], numVars); got != want {
					t.Fatalf("seed %d step %d after %s: pool[%d] SatCount %v, reference %v",
						seed, step, why, i, got, want)
				}
				if !reordered {
					if !equalStructure(t, m, ks[i], ref, rs[i]) {
						t.Fatalf("seed %d step %d after %s: pool[%d] structure diverged",
							seed, step, why, i)
					}
					continue
				}
				for bits := 0; bits < 1<<numVars; bits++ {
					if evalNode(m, ks[i], bits) != evalRef(ref, rs[i], bits) {
						t.Fatalf("seed %d step %d after %s: pool[%d] differs at assignment %b",
							seed, step, why, i, bits)
					}
				}
			}
		}

		for step := 0; step < 360; step++ {
			i, j := rng.Intn(len(ks)), rng.Intn(len(ks))
			var kn Node
			var rn int
			switch rng.Intn(7) {
			case 0:
				kn, rn = m.And(ks[i], ks[j]), ref.and(rs[i], rs[j])
			case 1:
				kn, rn = m.Or(ks[i], ks[j]), ref.or(rs[i], rs[j])
			case 2:
				kn, rn = m.Xor(ks[i], ks[j]), ref.xor(rs[i], rs[j])
			case 3:
				kn, rn = m.Diff(ks[i], ks[j]), ref.diff(rs[i], rs[j])
			case 4:
				kn, rn = m.Not(ks[i]), ref.not(rs[i])
			case 5:
				var vars []int
				var rvars []int32
				for v := 0; v < numVars; v++ {
					if rng.Intn(4) == 0 {
						vars = append(vars, v)
						rvars = append(rvars, int32(v))
					}
				}
				kn, rn = m.Exists(ks[i], m.Cube(vars)), ref.exists(rs[i], rvars)
			case 6:
				var vars []int
				var rvars []int32
				for v := 0; v < numVars; v++ {
					if rng.Intn(4) == 0 {
						vars = append(vars, v)
						rvars = append(rvars, int32(v))
					}
				}
				kn = m.AndExists(ks[i], ks[j], m.Cube(vars))
				rn = ref.exists(ref.and(rs[i], rs[j]), rvars)
			}
			ks = append(ks, m.Ref(kn))
			rs = append(rs, rn)

			// Bound the pool, exercising Deref: evicted entries become
			// garbage for the next collection (unless shared).
			for len(ks) > 32 {
				e := protected + rng.Intn(len(ks)-protected)
				m.Deref(ks[e])
				ks = append(ks[:e], ks[e+1:]...)
				rs = append(rs[:e], rs[e+1:]...)
			}

			switch {
			case step%90 == 89: // forced reorder (collects first)
				m.Reorder()
				reordered = true
				checkIntegrity(t, m)
				checkPool(step, "reorder")
			case step%25 == 24: // forced collection
				m.Collect()
				checkIntegrity(t, m)
				checkPool(step, "forced gc")
			default: // pressure-triggered collection
				if m.MaybeCollect() {
					checkIntegrity(t, m)
					checkPool(step, "pressure gc")
				}
			}
		}
		checkPool(360, "final")
		st := m.Stats()
		if st.Collections == 0 || st.NodesFreed == 0 || st.Reorders == 0 {
			t.Fatalf("seed %d: lifecycle not exercised (stats %+v)", seed, st)
		}
	}
}
