package bdd

// The node table, in BuDDy's image: one flat slice of fixed-size
// records with the unique-table hash embedded in the records
// themselves. Slot i plays two roles at once — it stores node i, and
// its hash field heads the collision chain of bucket i. A lookup
// hashes (level, low, high) to a bucket, walks that bucket's chain
// through the next links, and either finds the node or appends a fresh
// slot and pushes it onto the chain. No Go map, no per-node
// allocation, no pointer chasing beyond one int32 link per probe.
//
// Node 0 (the False terminal) is never chained, so 0 doubles as the
// nil link. The table capacity is always a power of two; when it
// fills, it doubles and every live node is rehashed (indices never
// change, so handles and cache entries stay valid across growth).

// node is one entry of the node table.
type node struct {
	level     int32
	low, high Node
	// hash heads the collision chain of the bucket sharing this slot's
	// index; next links this node into the chain of its own bucket.
	hash, next int32
}

// freeLevel marks a swept slot. Free slots are chained into the
// manager's freelist through their low fields and are reused by mk
// before the bump pointer advances — indices of live nodes never move.
const freeLevel int32 = -1

// hash3 mixes a node triple into a bucket index (masked by the
// caller). Multiplicative mixing with an avalanche tail keeps the low
// bits well distributed for power-of-two tables.
func hash3(level int32, low, high Node) uint32 {
	h := uint32(level) * 0x9e3779b1
	h = (h ^ uint32(low)) * 0x85ebca6b
	h = (h ^ uint32(high)) * 0xc2b2ae35
	h ^= h >> 15
	return h
}

// initTable installs the terminals in a fresh table of the configured
// capacity.
func (m *Manager) initTable(capacity int) {
	m.nodes = make([]node, capacity)
	m.mask = uint32(capacity - 1)
	m.nodes[False] = node{level: terminalLevel, low: False, high: False}
	m.nodes[True] = node{level: terminalLevel, low: True, high: True}
	m.free = 2
}

// mk returns the hash-consed node (level, low, high), applying the
// standard reduction rule low==high => low. This is the kernel's
// hottest path.
func (m *Manager) mk(level int32, low, high Node) Node {
	if low == high {
		return low
	}
	h := hash3(level, low, high)
	for i := m.nodes[h&m.mask].hash; i != 0; i = m.nodes[i].next {
		n := &m.nodes[i]
		if n.level == level && n.low == low && n.high == high {
			return Node(i)
		}
		m.uniqueCollisions++
	}
	i := m.allocNode()
	n := &m.nodes[i]
	n.level, n.low, n.high = level, low, high
	b := &m.nodes[h&m.mask]
	n.next = b.hash
	b.hash = i
	if live := m.free - m.freeNodes; live > m.peakNodes {
		m.peakNodes = live
	}
	return Node(i)
}

// allocNode returns a fresh slot index: the freelist head when one is
// available, else the bump pointer (growing the table when full).
// Only level/low/high/next are reset — slot i's hash field heads
// bucket i's chain and belongs to the table, not to node i.
func (m *Manager) allocNode() int32 {
	if m.freelist != 0 {
		i := int32(m.freelist)
		n := &m.nodes[i]
		m.freelist = n.low
		n.level, n.low, n.high, n.next = 0, 0, 0, 0
		m.freeNodes--
		return i
	}
	if int(m.free) == len(m.nodes) {
		m.grow()
	}
	i := m.free
	m.free++
	return i
}

// grow doubles the table and rehashes every live node. Node indices
// are stable, so outstanding Nodes and operation-cache entries survive
// unchanged; only the buckets move.
func (m *Manager) grow() {
	oldLen := len(m.nodes)
	grown := make([]node, oldLen*2)
	copy(grown, m.nodes)
	m.nodes = grown
	m.mask = uint32(len(m.nodes) - 1)
	m.grows++
	if m.cfg.GC {
		// Growth is the kernel's pressure signal: MaybeCollect answers
		// it at the next client safe point (see gc.go).
		m.gcPressure = true
	}
	for i := range m.nodes {
		m.nodes[i].hash = 0
		m.nodes[i].next = 0
	}
	for i := int32(2); i < m.free; i++ {
		n := &m.nodes[i]
		if n.level == freeLevel {
			continue
		}
		b := &m.nodes[hash3(n.level, n.low, n.high)&m.mask]
		n.next = b.hash
		b.hash = i
	}
	if m.OnEvent != nil {
		m.OnEvent("grow", m.NumNodes(), len(m.nodes))
	}
}

// unhash removes node i from its bucket's collision chain (the bucket
// derived from the node's current contents). Used by the sweep and the
// reorder swap, which mutate node contents in place.
func (m *Manager) unhash(i Node) {
	nd := &m.nodes[i]
	b := &m.nodes[hash3(nd.level, nd.low, nd.high)&m.mask]
	if b.hash == int32(i) {
		b.hash = nd.next
		nd.next = 0
		return
	}
	for j := b.hash; j != 0; j = m.nodes[j].next {
		if m.nodes[j].next == int32(i) {
			m.nodes[j].next = nd.next
			nd.next = 0
			return
		}
	}
	panic("bdd: unhash: node not on its chain")
}

// rehash pushes node i onto the bucket chain for its current contents.
func (m *Manager) rehash(i Node) {
	nd := &m.nodes[i]
	b := &m.nodes[hash3(nd.level, nd.low, nd.high)&m.mask]
	nd.next = b.hash
	b.hash = int32(i)
}
