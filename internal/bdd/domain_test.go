package bdd

import (
	"testing"
	"testing/quick"
)

func TestDomainEq(t *testing.T) {
	m := New()
	d := m.NewDomain("d", 10)
	if d.Size() != 10 || d.Name() != "d" {
		t.Fatal("domain metadata wrong")
	}
	for v := uint64(0); v < 10; v++ {
		n := d.Eq(v)
		if n == False {
			t.Fatalf("Eq(%d) unsatisfiable", v)
		}
		if got := m.SatCount(n); got != 1 {
			t.Fatalf("Eq(%d) has %v assignments over domain vars, want 1", v, got)
		}
	}
	// Distinct values are disjoint.
	if m.And(d.Eq(3), d.Eq(7)) != False {
		t.Fatal("Eq(3) AND Eq(7) satisfiable")
	}
}

func TestDomainEqOutOfRangePanics(t *testing.T) {
	m := New()
	d := m.NewDomain("d", 4)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Eq did not panic")
		}
	}()
	d.Eq(4)
}

func TestDomainDecodeRoundTrip(t *testing.T) {
	f := func(raw uint16) bool {
		m := New()
		d := m.NewDomain("d", 1<<12)
		v := uint64(raw) % (1 << 12)
		n := d.Eq(v)
		found := false
		ok := true
		m.AllSat(n, d.Vars(), func(a []bool) bool {
			found = true
			if d.Decode(d.Vars(), a) != v {
				ok = false
			}
			return true
		})
		return found && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEqDomain(t *testing.T) {
	m := New()
	ds := m.NewInterleavedDomains([]string{"a", "b"}, []uint64{8, 8})
	a, b := ds[0], ds[1]
	eq := a.EqDomain(b)
	// eq AND a=5 AND b=5 satisfiable; eq AND a=5 AND b=6 not.
	if m.AndN(eq, a.Eq(5), b.Eq(5)) == False {
		t.Fatal("EqDomain rejects equal values")
	}
	if m.AndN(eq, a.Eq(5), b.Eq(6)) != False {
		t.Fatal("EqDomain accepts unequal values")
	}
	// Exactly 8 diagonal tuples.
	if got := m.SatCount(eq); got != 8 {
		t.Fatalf("EqDomain satcount = %v, want 8", got)
	}
}

func TestDomainRename(t *testing.T) {
	m := New()
	ds := m.NewInterleavedDomains([]string{"a", "b"}, []uint64{16, 16})
	a, b := ds[0], ds[1]
	n := a.Eq(11)
	r := m.Replace(n, a.RenameTo(b))
	if r != b.Eq(11) {
		t.Fatal("rename of Eq(11) from a to b mismatch")
	}
}

func TestInterleavedRelationJoin(t *testing.T) {
	// A tiny end-to-end relational product: edge(a,b) AND edge2(b,c),
	// quantify b, expect the composed pairs.
	m := New()
	ds := m.NewInterleavedDomains([]string{"a", "b", "c"}, []uint64{8, 8, 8})
	a, b, c := ds[0], ds[1], ds[2]

	edgeAB := m.OrN(
		m.And(a.Eq(1), b.Eq(2)),
		m.And(a.Eq(2), b.Eq(3)),
	)
	edgeBC := m.OrN(
		m.And(b.Eq(2), c.Eq(5)),
		m.And(b.Eq(3), c.Eq(6)),
		m.And(b.Eq(4), c.Eq(7)),
	)
	comp := m.AndExists(edgeAB, edgeBC, b.Cube())
	want := m.OrN(
		m.And(a.Eq(1), c.Eq(5)),
		m.And(a.Eq(2), c.Eq(6)),
	)
	if comp != want {
		t.Fatal("relational product mismatch")
	}
}

func TestDomainSingleValue(t *testing.T) {
	m := New()
	d := m.NewDomain("unit", 1)
	if d.Eq(0) == False {
		t.Fatal("singleton domain Eq(0) unsatisfiable")
	}
	if len(d.Vars()) != 1 {
		t.Fatalf("singleton domain uses %d bits, want 1", len(d.Vars()))
	}
}

func TestBitsFor(t *testing.T) {
	cases := map[uint64]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
	for size, want := range cases {
		if got := bitsFor(size); got != want {
			t.Errorf("bitsFor(%d) = %d, want %d", size, got, want)
		}
	}
}
