// Package bdd implements reduced ordered binary decision diagrams
// (ROBDDs) with finite-domain support.
//
// It is a from-scratch substitute for the BuDDy package the paper's
// RegionWiz prototype used to store context-sensitive relations
// (Section 5.2), and since the kernel rewrite it follows BuDDy's
// hot-path design: nodes are hash-consed in a flat array with an
// intrusive chained hash (table.go), all operations are memoized in
// fixed-size lossy caches (cache.go), and both structures are sized by
// a Config (config.go) so daemon operators can tune the kernel to the
// corpus. Structural equality of BDDs is index equality.
//
// The package is deliberately stdlib-only and single-threaded; a
// Manager must not be shared between goroutines without external
// locking.
package bdd

import (
	"fmt"
	"math"
	"time"
)

// Node is an index into a Manager's node table. The constants False and
// True are the two terminal nodes; all other values denote internal
// nodes. A Node is only meaningful relative to the Manager that created
// it.
type Node int32

// Terminal nodes.
const (
	False Node = 0
	True  Node = 1
)

const terminalLevel = math.MaxInt32

// opcode identifies a binary boolean operation for the memo cache.
type opcode uint8

const (
	opAnd opcode = iota
	opOr
	opXor
	opDiff // a AND NOT b
	opImp  // a IMPLIES b
	opBiimp
)

// Manager owns a node table and the operation caches. Create one with
// New or NewWith, allocate variables with AddVar or domains with
// NewDomain, and build functions with Var, Not, And, Or, etc.
type Manager struct {
	cfg Config

	// The node table (see table.go): nodes[0:free] are live, mask is
	// len(nodes)-1 for bucket indexing.
	nodes []node
	free  int32
	mask  uint32

	// Operation caches (see cache.go), one array per operation family.
	applyCache   binCache
	notCache     tripleCache
	iteCache     tripleCache
	existsCache  tripleCache
	andExCache   tripleCache
	replaceCache tripleCache
	satRecCache  satCache

	// Replacement state for Replace: the currently loaded VarMap and
	// its dense level map. Cache entries are keyed by VarMap identity,
	// so switching maps invalidates nothing; a reorder does (orderSeq).
	replMap []int32
	replVm  *VarMap
	replOrd int32
	vmSeq   int32

	numVars int

	// Variable order: nodes store levels (positions in the order), and
	// these two permutations translate between a variable's identity
	// and its current position. They start as the identity and only
	// diverge after Reorder.
	var2level []int32
	level2var []int32
	// orderSeq increments on every reorder; derived per-order state
	// (the loaded replMap) is revalidated against it.
	orderSeq int32

	domains []*Domain

	// External references (see gc.go): refs[n] counts Ref-pins on n,
	// the roots of mark-and-sweep collection. freelist chains swept
	// slots through their low fields (freeLevel marks them); freeNodes
	// is the chain length. gcPressure is raised by table growth and
	// answered by MaybeCollect at client safe points.
	refs       map[Node]int32
	freelist   Node
	freeNodes  int32
	gcPressure bool

	// Kernel counters, surfaced via Stats.
	cacheHits        uint64
	cacheMisses      uint64
	uniqueCollisions uint64
	grows            uint64
	collections      uint64
	nodesFreed       uint64
	sweepWall        time.Duration
	reorders         uint64
	reorderSwaps     uint64
	peakNodes        int32

	// OnEvent, when non-nil, is called synchronously on kernel
	// structural events — kind "grow" after a node-table doubling,
	// "cache_clear" after ClearCaches, "gc" after a Collect sweep and
	// "reorder" after a sifting pass — with the live node count and
	// table capacity. The trace layer hooks it to mark grows on the
	// timeline without this package importing it. The callback runs on
	// the (single-threaded) manager's goroutine and must not call back
	// into the manager.
	OnEvent func(kind string, nodes, capacity int)
}

// New returns a Manager with default sizing and no variables.
// Variables are added with AddVar/AddVars or implicitly through
// NewDomain.
func New() *Manager { return NewWith(Config{}) }

// NewWith returns a Manager sized by the config (see Config for the
// knobs; the zero value selects defaults).
func NewWith(cfg Config) *Manager {
	cfg = cfg.normalized()
	slots := cfg.cacheSlots()
	m := &Manager{
		cfg:          cfg,
		applyCache:   newBinCache(slots),
		notCache:     newTripleCache(slots),
		iteCache:     newTripleCache(slots),
		existsCache:  newTripleCache(slots),
		andExCache:   newTripleCache(slots),
		replaceCache: newTripleCache(slots),
		satRecCache:  newSatCache(slots),
	}
	m.initTable(cfg.NodeSize)
	return m
}

// NumVars reports how many boolean variables have been allocated.
func (m *Manager) NumVars() int { return m.numVars }

// Config returns the manager's normalized configuration.
func (m *Manager) Config() Config { return m.cfg }

// NumNodes reports the number of live entries in the node table,
// including the two terminals. Slots swept onto the freelist do not
// count.
func (m *Manager) NumNodes() int { return int(m.free - m.freeNodes) }

// PeakNodes reports the high-water mark of the live node count —
// under GC this can be far below the count an unmanaged table would
// reach, which is the point of collecting.
func (m *Manager) PeakNodes() int { return int(m.peakNodes) }

// ManagerStats is a snapshot of the manager's footprint and kernel
// counters, exposed for pipeline metrics and benchmarks.
type ManagerStats struct {
	// Nodes is the live node count (including terminals); Capacity is
	// the allocated node-table size.
	Nodes    int
	Capacity int
	// Vars is the number of allocated boolean variables.
	Vars int
	// CacheSlots is the per-cache slot count.
	CacheSlots int
	// CacheHits and CacheMisses count operation-cache lookups across
	// all op caches (a miss is a recomputation).
	CacheHits, CacheMisses uint64
	// UniqueCollisions counts extra probes on the node table's hash
	// chains — the mk-path collision cost.
	UniqueCollisions uint64
	// Grows counts node-table doublings since creation.
	Grows uint64
	// PeakNodes is the live-node high-water mark since creation.
	PeakNodes int
	// Collections counts mark-and-sweep passes; NodesFreed the total
	// nodes they swept; SweepWallNS the wall time spent sweeping.
	Collections uint64
	NodesFreed  uint64
	SweepWallNS int64
	// Reorders counts sifting passes; ReorderSwaps the adjacent-level
	// swaps they performed.
	Reorders     uint64
	ReorderSwaps uint64
}

// Stats reports the manager's current footprint and counters.
func (m *Manager) Stats() ManagerStats {
	return ManagerStats{
		Nodes:            m.NumNodes(),
		Capacity:         len(m.nodes),
		Vars:             m.numVars,
		CacheSlots:       len(m.applyCache.entries),
		CacheHits:        m.cacheHits,
		CacheMisses:      m.cacheMisses,
		UniqueCollisions: m.uniqueCollisions,
		Grows:            m.grows,
		PeakNodes:        int(m.peakNodes),
		Collections:      m.collections,
		NodesFreed:       m.nodesFreed,
		SweepWallNS:      int64(m.sweepWall),
		Reorders:         m.reorders,
		ReorderSwaps:     m.reorderSwaps,
	}
}

// ClearCaches drops every operation-cache entry in O(1) (generation
// bump; no memory is released). The node table is untouched, so all
// Nodes stay valid — this only forces recomputation, e.g. between
// benchmark runs.
func (m *Manager) ClearCaches() {
	m.clearCaches()
	if m.OnEvent != nil {
		m.OnEvent("cache_clear", m.NumNodes(), len(m.nodes))
	}
}

func (m *Manager) clearCaches() {
	m.applyCache.clear()
	m.notCache.clear()
	m.iteCache.clear()
	m.existsCache.clear()
	m.andExCache.clear()
	m.replaceCache.clear()
	m.satRecCache.clear()
}

// AddVar allocates one fresh boolean variable and returns its index.
// New variables enter the order at the bottom.
func (m *Manager) AddVar() int {
	v := m.numVars
	m.numVars++
	m.var2level = append(m.var2level, int32(v))
	m.level2var = append(m.level2var, int32(v))
	return v
}

// AddVars allocates n fresh variables and returns the index of the first.
func (m *Manager) AddVars(n int) int {
	v := m.numVars
	for i := 0; i < n; i++ {
		m.AddVar()
	}
	return v
}

// LevelOfVar reports the current position of variable v in the order
// (0 is the top). Positions equal variable indices until a Reorder.
func (m *Manager) LevelOfVar(v int) int {
	m.checkVar(v)
	return int(m.var2level[v])
}

// Var returns the BDD for the single variable v.
func (m *Manager) Var(v int) Node {
	m.checkVar(v)
	return m.mk(m.var2level[v], False, True)
}

// NVar returns the BDD for the negation of variable v.
func (m *Manager) NVar(v int) Node {
	m.checkVar(v)
	return m.mk(m.var2level[v], True, False)
}

func (m *Manager) checkVar(v int) {
	if v < 0 || v >= m.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", v, m.numVars))
	}
}

// Level reports the variable tested at the root of n, or -1 for a
// terminal. (Historically named for the pre-reorder kernel, where a
// variable's index and its level coincided.)
func (m *Manager) Level(n Node) int {
	l := m.nodes[n].level
	if l == terminalLevel {
		return -1
	}
	return int(m.level2var[l])
}

// Low returns the low (variable=0) cofactor of n.
func (m *Manager) Low(n Node) Node { return m.nodes[n].low }

// High returns the high (variable=1) cofactor of n.
func (m *Manager) High(n Node) Node { return m.nodes[n].high }

// Not returns the complement of n.
func (m *Manager) Not(n Node) Node {
	switch n {
	case False:
		return True
	case True:
		return False
	}
	if r, ok := m.notCache.lookup(n, 0, 0); ok {
		m.cacheHits++
		return r
	}
	m.cacheMisses++
	nd := m.nodes[n]
	r := m.mk(nd.level, m.Not(nd.low), m.Not(nd.high))
	m.notCache.store(n, 0, 0, r)
	return r
}

// And returns the conjunction of a and b.
func (m *Manager) And(a, b Node) Node { return m.apply(opAnd, a, b) }

// Or returns the disjunction of a and b.
func (m *Manager) Or(a, b Node) Node { return m.apply(opOr, a, b) }

// Xor returns the exclusive-or of a and b.
func (m *Manager) Xor(a, b Node) Node { return m.apply(opXor, a, b) }

// Diff returns a AND NOT b (set difference when BDDs encode sets).
func (m *Manager) Diff(a, b Node) Node { return m.apply(opDiff, a, b) }

// Imp returns a IMPLIES b.
func (m *Manager) Imp(a, b Node) Node { return m.apply(opImp, a, b) }

// Biimp returns a IFF b.
func (m *Manager) Biimp(a, b Node) Node { return m.apply(opBiimp, a, b) }

// AndN folds And over its arguments; AndN() == True.
func (m *Manager) AndN(ns ...Node) Node {
	r := True
	for _, n := range ns {
		r = m.And(r, n)
		if r == False {
			return False
		}
	}
	return r
}

// OrN folds Or over its arguments; OrN() == False.
func (m *Manager) OrN(ns ...Node) Node {
	r := False
	for _, n := range ns {
		r = m.Or(r, n)
		if r == True {
			return True
		}
	}
	return r
}

// terminalCase resolves op on (possibly) terminal operands. ok reports
// whether the result is decided without recursion.
func terminalCase(op opcode, a, b Node) (Node, bool) {
	switch op {
	case opAnd:
		if a == False || b == False {
			return False, true
		}
		if a == True {
			return b, true
		}
		if b == True {
			return a, true
		}
		if a == b {
			return a, true
		}
	case opOr:
		if a == True || b == True {
			return True, true
		}
		if a == False {
			return b, true
		}
		if b == False {
			return a, true
		}
		if a == b {
			return a, true
		}
	case opXor:
		if a == b {
			return False, true
		}
		if a == False {
			return b, true
		}
		if b == False {
			return a, true
		}
	case opDiff:
		if a == False || b == True {
			return False, true
		}
		if b == False {
			return a, true
		}
		if a == b {
			return False, true
		}
	case opImp:
		if a == False || b == True {
			return True, true
		}
		if a == True {
			return b, true
		}
	case opBiimp:
		if a == b {
			return True, true
		}
		if a == True {
			return b, true
		}
		if b == True {
			return a, true
		}
	}
	return False, false
}

// commutative reports whether op's operands can be swapped; used to
// normalize cache keys.
func commutative(op opcode) bool {
	switch op {
	case opAnd, opOr, opXor, opBiimp:
		return true
	}
	return false
}

func (m *Manager) apply(op opcode, a, b Node) Node {
	if r, ok := terminalCase(op, a, b); ok {
		return r
	}
	if commutative(op) && a > b {
		a, b = b, a
	}
	if r, ok := m.applyCache.lookup(op, a, b); ok {
		m.cacheHits++
		return r
	}
	m.cacheMisses++
	na, nb := m.nodes[a], m.nodes[b]
	var level int32
	var a0, a1, b0, b1 Node
	switch {
	case na.level == nb.level:
		level, a0, a1, b0, b1 = na.level, na.low, na.high, nb.low, nb.high
	case na.level < nb.level:
		level, a0, a1, b0, b1 = na.level, na.low, na.high, b, b
	default:
		level, a0, a1, b0, b1 = nb.level, a, a, nb.low, nb.high
	}
	r := m.mk(level, m.apply(op, a0, b0), m.apply(op, a1, b1))
	m.applyCache.store(op, a, b, r)
	return r
}

// Ite returns if-then-else: (f AND g) OR (NOT f AND h), computed as
// one cached three-operand recursion (BuDDy's bdd_ite) instead of
// composing Or/And/Not.
func (m *Manager) Ite(f, g, h Node) Node {
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	case g == False && h == True:
		return m.Not(f)
	}
	if r, ok := m.iteCache.lookup(f, g, h); ok {
		m.cacheHits++
		return r
	}
	m.cacheMisses++
	nf, ng, nh := m.nodes[f], m.nodes[g], m.nodes[h]
	level := nf.level
	if ng.level < level {
		level = ng.level
	}
	if nh.level < level {
		level = nh.level
	}
	f0, f1 := f, f
	if nf.level == level {
		f0, f1 = nf.low, nf.high
	}
	g0, g1 := g, g
	if ng.level == level {
		g0, g1 = ng.low, ng.high
	}
	h0, h1 := h, h
	if nh.level == level {
		h0, h1 = nh.low, nh.high
	}
	r := m.mk(level, m.Ite(f0, g0, h0), m.Ite(f1, g1, h1))
	m.iteCache.store(f, g, h, r)
	return r
}

// Cube returns the conjunction of the given variables, used as the
// quantification set for Exists/AndExists.
func (m *Manager) Cube(vars []int) Node {
	r := True
	for _, v := range vars {
		r = m.And(r, m.Var(v))
	}
	return r
}

// Exists existentially quantifies away every variable in cube from n.
// cube must be a positive cube (conjunction of variables), e.g. from
// Cube.
func (m *Manager) Exists(n, cube Node) Node {
	if n == False || n == True || cube == True {
		return n
	}
	if r, ok := m.existsCache.lookup(n, cube, 0); ok {
		m.cacheHits++
		return r
	}
	m.cacheMisses++
	nn := m.nodes[n]
	// Advance the cube past variables above n's root.
	c := cube
	for m.nodes[c].level < nn.level {
		c = m.nodes[c].high
		if c == True {
			m.existsCache.store(n, cube, 0, n)
			return n
		}
	}
	var r Node
	if m.nodes[c].level == nn.level {
		// Quantify this variable: OR of cofactors.
		r = m.Or(m.Exists(nn.low, m.nodes[c].high), m.Exists(nn.high, m.nodes[c].high))
	} else {
		r = m.mk(nn.level, m.Exists(nn.low, c), m.Exists(nn.high, c))
	}
	m.existsCache.store(n, cube, 0, r)
	return r
}

// AndExists computes Exists(cube, a AND b) without materializing the
// conjunction — the relational product at the heart of points-to
// propagation.
func (m *Manager) AndExists(a, b, cube Node) Node {
	if a == False || b == False {
		return False
	}
	if a == True && b == True {
		return True
	}
	if cube == True {
		return m.And(a, b)
	}
	if a == True {
		return m.Exists(b, cube)
	}
	if b == True {
		return m.Exists(a, cube)
	}
	if a > b {
		a, b = b, a
	}
	if r, ok := m.andExCache.lookup(a, b, cube); ok {
		m.cacheHits++
		return r
	}
	m.cacheMisses++
	na, nb := m.nodes[a], m.nodes[b]
	level := na.level
	if nb.level < level {
		level = nb.level
	}
	a0, a1 := a, a
	if na.level == level {
		a0, a1 = na.low, na.high
	}
	b0, b1 := b, b
	if nb.level == level {
		b0, b1 = nb.low, nb.high
	}
	c := cube
	for m.nodes[c].level < level {
		c = m.nodes[c].high
	}
	var r Node
	if c != True && m.nodes[c].level == level {
		rest := m.nodes[c].high
		r = m.Or(m.AndExists(a0, b0, rest), m.AndExists(a1, b1, rest))
	} else {
		r = m.mk(level, m.AndExists(a0, b0, c), m.AndExists(a1, b1, c))
	}
	m.andExCache.store(a, b, cube, r)
	return r
}

// Replace renames variables of n according to map from[i] -> to[i].
// The mapping must be order-preserving on the support of n (mapping a
// variable to one at a different relative position among mapped
// variables is rejected at construction in NewVarMap). Results are
// memoized per VarMap, so reusing one VarMap across calls hits the
// cache.
func (m *Manager) Replace(n Node, vm *VarMap) Node {
	if vm.m != m {
		panic("bdd: VarMap used with wrong Manager")
	}
	if m.replVm != vm || m.replOrd != m.orderSeq || len(m.replMap) != m.numVars {
		if len(m.replMap) != m.numVars {
			m.replMap = make([]int32, m.numVars)
		}
		// The dense map is level-indexed: position l of the current
		// order maps to the position of the variable it renames to.
		for l := range m.replMap {
			m.replMap[l] = int32(l)
		}
		for i, from := range vm.from {
			m.replMap[m.var2level[from]] = m.var2level[vm.to[i]]
		}
		m.replVm = vm
		m.replOrd = m.orderSeq
	}
	return m.replaceRec(n, Node(vm.id))
}

func (m *Manager) replaceRec(n, id Node) Node {
	if n == False || n == True {
		return n
	}
	if r, ok := m.replaceCache.lookup(n, id, 0); ok {
		m.cacheHits++
		return r
	}
	m.cacheMisses++
	nd := m.nodes[n]
	low := m.replaceRec(nd.low, id)
	high := m.replaceRec(nd.high, id)
	nl := m.replMap[nd.level]
	r := m.correctify(nl, low, high)
	m.replaceCache.store(n, id, 0, r)
	return r
}

// correctify rebuilds a node whose new level may sit below the roots of
// its children (when renaming moves a variable down). It mirrors the
// BuDDy correctify step.
func (m *Manager) correctify(level int32, low, high Node) Node {
	ll, hl := m.nodes[low].level, m.nodes[high].level
	if level < ll && level < hl {
		return m.mk(level, low, high)
	}
	if level == ll || level == hl {
		panic("bdd: replace produced overlapping variable levels")
	}
	// The new variable sits below at least one child's root: push it
	// down by Shannon expansion on the topmost child variable.
	top := ll
	if hl < top {
		top = hl
	}
	var l0, l1 Node = low, low
	if ll == top {
		l0, l1 = m.nodes[low].low, m.nodes[low].high
	}
	var h0, h1 Node = high, high
	if hl == top {
		h0, h1 = m.nodes[high].low, m.nodes[high].high
	}
	return m.mk(top, m.correctify(level, l0, h0), m.correctify(level, l1, h1))
}

// VarMap is a variable renaming prepared for Manager.Replace. Each
// VarMap has a distinct identity in the replace cache, so renames
// through a reused VarMap are memoized across Replace calls.
type VarMap struct {
	m        *Manager
	id       int32
	from, to []int
}

// NewVarMap builds a renaming mapping from[i] to to[i]. Both slices
// must have equal length, contain valid distinct variables, and the
// mapping must preserve relative order of the mapped variables in the
// current variable order. A later Reorder can invalidate that
// property; rebuild VarMaps after reordering (correctify panics on a
// map whose order no longer holds).
func (m *Manager) NewVarMap(from, to []int) *VarMap {
	if len(from) != len(to) {
		panic("bdd: NewVarMap slices of unequal length")
	}
	for i := range from {
		m.checkVar(from[i])
		m.checkVar(to[i])
	}
	for i := 0; i < len(from); i++ {
		for j := i + 1; j < len(from); j++ {
			if (m.var2level[from[i]] < m.var2level[from[j]]) != (m.var2level[to[i]] < m.var2level[to[j]]) {
				panic("bdd: NewVarMap does not preserve variable order")
			}
		}
	}
	m.vmSeq++
	return &VarMap{m: m, id: m.vmSeq, from: append([]int(nil), from...), to: append([]int(nil), to...)}
}

// SatCount returns the number of satisfying assignments of n over all
// allocated variables.
func (m *Manager) SatCount(n Node) float64 {
	return math.Ldexp(m.satCountRec(n), m.levelOf(n))
}

func (m *Manager) levelOf(n Node) int {
	l := m.nodes[n].level
	if l == terminalLevel {
		return m.numVars
	}
	return int(l)
}

// satCountRec counts assignments over variables strictly below n's root
// level, normalized so multiplying by 2^rootLevel gives the full count.
// Scaling uses Ldexp (exact exponent manipulation) rather than
// math.Pow, which keeps counts over >64 variables cheap and precise.
func (m *Manager) satCountRec(n Node) float64 {
	if n == False {
		return 0
	}
	if n == True {
		return 1
	}
	if c, ok := m.satRecCache.lookup(n); ok {
		return c
	}
	nd := m.nodes[n]
	low := math.Ldexp(m.satCountRec(nd.low), m.levelOf(nd.low)-int(nd.level)-1)
	high := math.Ldexp(m.satCountRec(nd.high), m.levelOf(nd.high)-int(nd.level)-1)
	c := low + high
	m.satRecCache.store(n, c)
	return c
}

// AllSat invokes fn for every satisfying assignment of n restricted to
// the given variables (each must appear in increasing order). Variables
// outside the support of n are enumerated explicitly, so keep vars
// small. fn receives a slice valid only for the duration of the call;
// returning false stops enumeration early.
func (m *Manager) AllSat(n Node, vars []int, fn func(assignment []bool) bool) {
	for i := 1; i < len(vars); i++ {
		if vars[i-1] >= vars[i] {
			panic("bdd: AllSat vars must be strictly increasing")
		}
	}
	// The walk descends the order by level; slots maps each level back
	// to its caller-visible position so the assignment slice stays in
	// variable-index order even after a Reorder.
	lvls := make([]int32, len(vars))
	slots := make([]int, len(vars))
	for i, v := range vars {
		m.checkVar(v)
		lvls[i] = m.var2level[v]
		slots[i] = i
	}
	for i := 1; i < len(lvls); i++ {
		for j := i; j > 0 && lvls[j-1] > lvls[j]; j-- {
			lvls[j-1], lvls[j] = lvls[j], lvls[j-1]
			slots[j-1], slots[j] = slots[j], slots[j-1]
		}
	}
	assign := make([]bool, len(vars))
	m.allSatRec(n, lvls, slots, 0, assign, fn)
}

func (m *Manager) allSatRec(n Node, lvls []int32, slots []int, i int, assign []bool, fn func([]bool) bool) bool {
	if n == False {
		return true
	}
	if i == len(lvls) {
		// Remaining support must be empty for a unique assignment over
		// vars; if n is not True some unmapped variable is constrained,
		// but the assignment over vars is still satisfying for some
		// extension, so report it.
		return fn(assign)
	}
	level := m.nodes[n].level
	v := lvls[i]
	switch {
	case n == True || level > v:
		// n does not constrain vars[i]: both values.
		assign[slots[i]] = false
		if !m.allSatRec(n, lvls, slots, i+1, assign, fn) {
			return false
		}
		assign[slots[i]] = true
		return m.allSatRec(n, lvls, slots, i+1, assign, fn)
	case level == v:
		nd := m.nodes[n]
		assign[slots[i]] = false
		if !m.allSatRec(nd.low, lvls, slots, i+1, assign, fn) {
			return false
		}
		assign[slots[i]] = true
		return m.allSatRec(nd.high, lvls, slots, i+1, assign, fn)
	default:
		// n tests a variable before vars[i]: branch on it without
		// recording.
		nd := m.nodes[n]
		if !m.allSatRec(nd.low, lvls, slots, i, assign, fn) {
			return false
		}
		return m.allSatRec(nd.high, lvls, slots, i, assign, fn)
	}
}

// Support returns the set of variables tested anywhere in n, ascending.
func (m *Manager) Support(n Node) []int {
	seen := make(map[Node]bool)
	vars := make(map[int]bool)
	var walk func(Node)
	walk = func(x Node) {
		if x == False || x == True || seen[x] {
			return
		}
		seen[x] = true
		nd := m.nodes[x]
		vars[int(m.level2var[nd.level])] = true
		walk(nd.low)
		walk(nd.high)
	}
	walk(n)
	out := make([]int, 0, len(vars))
	for v := range vars {
		out = append(out, v)
	}
	// insertion sort; support sets are small
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
