package bdd

import (
	"math/rand"
	"testing"
)

// The microbenchmarks build everything from a fresh Manager inside the
// timed loop so each iteration exercises the node table and operation
// caches from cold — the regime the analysis pipeline runs in (one
// manager per datalog.Program). They use only the exported API, so the
// same file benchmarks the map-based and the BuDDy-style kernels for
// benchstat comparison.

// benchRelation builds a relation of random tuples over the given
// domains — the workload shape of the datalog engine (sparse tuple
// sets over interleaved finite domains), which keeps BDD sizes linear
// rather than exploding the way random boolean functions do.
func benchRelation(m *Manager, r *rand.Rand, doms []*Domain, tuples int) Node {
	rel := False
	for i := 0; i < tuples; i++ {
		t := True
		for _, d := range doms {
			t = m.And(t, d.Eq(uint64(r.Intn(int(d.Size())))))
		}
		rel = m.Or(rel, t)
	}
	return rel
}

// BenchmarkApply measures the binary-operation path — hash-consed mk
// plus the apply cache — over union/intersection/difference chains on
// sparse relations, the explicit-backend op mix.
func BenchmarkApply(b *testing.B) {
	b.ReportAllocs()
	const size = 1024
	for i := 0; i < b.N; i++ {
		m := New()
		ds := m.NewInterleavedDomains([]string{"a", "b"}, []uint64{size, size})
		r := rand.New(rand.NewSource(7))
		rels := make([]Node, 24)
		for j := range rels {
			rels[j] = benchRelation(m, r, ds, 64)
		}
		union, inter := False, True
		for _, rel := range rels {
			union = m.Or(union, rel)
			inter = m.And(inter, m.Or(rel, rels[0]))
		}
		for j := 0; j < len(rels)-1; j++ {
			_ = m.Diff(rels[j], rels[j+1])
			_ = m.Xor(rels[j], union)
		}
		if union == False {
			b.Fatal("degenerate union")
		}
		_ = inter
	}
}

// BenchmarkRelProd measures AndExists — the relational product at the
// heart of points-to propagation: one transitive-closure step
// path(a,c) = exists b. edge(a,b) AND edge2(b,c) over interleaved
// finite domains, the exact shape of the datalog engine's joins.
func BenchmarkRelProd(b *testing.B) {
	b.ReportAllocs()
	const size = 512
	const edges = 400
	for i := 0; i < b.N; i++ {
		m := New()
		ds := m.NewInterleavedDomains([]string{"a", "b", "c"}, []uint64{size, size, size})
		da, db, dc := ds[0], ds[1], ds[2]
		r := rand.New(rand.NewSource(11))
		rel1 := benchRelation(m, r, []*Domain{da, db}, edges)
		rel2 := benchRelation(m, r, []*Domain{db, dc}, edges)
		prod := m.AndExists(rel1, rel2, db.Cube())
		// One more product through the result keeps the caches honest.
		_ = m.AndExists(prod, rel2, dc.Cube())
	}
}

// BenchmarkReplace measures variable renaming, the column move every
// datalog atom evaluation performs, under reused VarMaps.
func BenchmarkReplace(b *testing.B) {
	b.ReportAllocs()
	const size = 512
	const tuples = 300
	for i := 0; i < b.N; i++ {
		m := New()
		ds := m.NewInterleavedDomains([]string{"src", "dst"}, []uint64{size, size})
		src, dst := ds[0], ds[1]
		r := rand.New(rand.NewSource(13))
		rel := benchRelation(m, r, []*Domain{src}, tuples)
		fwd, back := src.RenameTo(dst), dst.RenameTo(src)
		for j := 0; j < 8; j++ {
			moved := m.Replace(rel, fwd)
			rel = m.Or(rel, m.Replace(moved, back))
		}
	}
}

// BenchmarkExists measures plain existential quantification: column
// projection over a two-attribute relation.
func BenchmarkExists(b *testing.B) {
	b.ReportAllocs()
	const size = 1024
	for i := 0; i < b.N; i++ {
		m := New()
		ds := m.NewInterleavedDomains([]string{"a", "b"}, []uint64{size, size})
		r := rand.New(rand.NewSource(17))
		rels := make([]Node, 16)
		for j := range rels {
			rels[j] = benchRelation(m, r, ds, 96)
		}
		cubeA, cubeB := ds[0].Cube(), ds[1].Cube()
		for _, rel := range rels {
			_ = m.Exists(rel, cubeA)
			_ = m.Exists(rel, cubeB)
		}
	}
}
