// Package correlation implements the paper's conditional correlation
// framework (Section 3) as a small generic library.
//
// A conditional correlation ⟨f, φ, g⟩ over sets A and B (Definition
// 3.1) states that φ is a relation-preserving map: whenever (x, y) ∈ f,
// the images must satisfy (φ(x), φ(y)) ∈ g. The correlation is
// consistent (Definition 3.2) when this holds for every pair in A×A —
// which, as the paper notes, reduces to checking the pairs in f.
//
// Definition 3.3's abstraction relation ⟨f, φ, g⟩ ⊑ ⟨F, Φ, G⟩ justifies
// static analysis: prove the abstract correlation consistent and the
// concrete one follows. CheckAbstraction verifies the three conditions
// on explicit finite instances; the region lifetime consistency
// instantiation lives in package core.
package correlation

// Pair is an ordered pair over A.
type Pair[A comparable] struct{ X, Y A }

// Relation is a finite binary relation over A.
type Relation[A comparable] struct {
	pairs map[Pair[A]]bool
}

// NewRelation returns an empty relation.
func NewRelation[A comparable]() *Relation[A] {
	return &Relation[A]{pairs: make(map[Pair[A]]bool)}
}

// Add inserts (x, y).
func (r *Relation[A]) Add(x, y A) { r.pairs[Pair[A]{x, y}] = true }

// Has reports whether (x, y) is in the relation.
func (r *Relation[A]) Has(x, y A) bool { return r.pairs[Pair[A]{x, y}] }

// Len returns the number of pairs.
func (r *Relation[A]) Len() int { return len(r.pairs) }

// Each visits every pair; return false to stop.
func (r *Relation[A]) Each(fn func(x, y A) bool) {
	for p := range r.pairs {
		if !fn(p.X, p.Y) {
			return
		}
	}
}

// Correlation is a conditional correlation ⟨F, Φ, G⟩ over A and B:
// (x, y) ∈ F must imply G(Φ(x), Φ(y)).
type Correlation[A comparable, B any] struct {
	// F is the condition relation over A.
	F *Relation[A]
	// Phi maps A elements to B.
	Phi func(A) B
	// G is the required relation over B, given as a predicate.
	G func(B, B) bool
}

// Holds reports whether the correlation holds for the pair (x, y): it
// is vacuously true when (x, y) ∉ F (the paper's remark after
// Definition 3.2).
func (c *Correlation[A, B]) Holds(x, y A) bool {
	if !c.F.Has(x, y) {
		return true
	}
	return c.G(c.Phi(x), c.Phi(y))
}

// Violations returns every pair of F for which the correlation fails.
// An empty result means the correlation is consistent (Definition 3.2).
func (c *Correlation[A, B]) Violations() []Pair[A] {
	var out []Pair[A]
	c.F.Each(func(x, y A) bool {
		if !c.G(c.Phi(x), c.Phi(y)) {
			out = append(out, Pair[A]{x, y})
		}
		return true
	})
	return out
}

// Consistent reports whether the correlation holds for all pairs.
func (c *Correlation[A, B]) Consistent() bool { return len(c.Violations()) == 0 }

// Abstraction relates a concrete correlation over (A, B) to an
// abstract one over (A2, B2) through the maps Alpha : A -> A2 and
// Beta : B -> B2 (Definition 3.3).
type Abstraction[A, A2 comparable, B, B2 any] struct {
	Concrete *Correlation[A, B]
	Abstract *Correlation[A2, B2]
	Alpha    func(A) A2
	Beta     func(B) B2
	// EqB2 compares abstract images (needed because B2 is not
	// constrained to be comparable).
	EqB2 func(B2, B2) bool
}

// Check verifies the three abstraction conditions over the given
// finite carrier sets:
//
//	(3.2) (x, y) ∈ f  ⇒  (α(x), α(y)) ∈ F
//	(3.3) φ(x) = s    ⇒  Φ(α(x)) = β(s)
//	(3.4) (s, t) ∉ g  ⇒  (β(s), β(t)) ∉ G
//
// domainA enumerates A (for 3.3); pairsB enumerates the B×B pairs to
// test (for 3.4 — callers choose a representative sample when B is
// large). It returns a list of human-readable condition labels that
// failed, empty when the abstraction is valid.
func (ab *Abstraction[A, A2, B, B2]) Check(domainA []A, pairsB [][2]B) []string {
	var failed []string
	ok32 := true
	ab.Concrete.F.Each(func(x, y A) bool {
		if !ab.Abstract.F.Has(ab.Alpha(x), ab.Alpha(y)) {
			ok32 = false
			return false
		}
		return true
	})
	if !ok32 {
		failed = append(failed, "3.2: f pair not covered by F")
	}
	for _, x := range domainA {
		s := ab.Concrete.Phi(x)
		if !ab.EqB2(ab.Abstract.Phi(ab.Alpha(x)), ab.Beta(s)) {
			failed = append(failed, "3.3: phi image not preserved")
			break
		}
	}
	for _, p := range pairsB {
		if !ab.Concrete.G(p[0], p[1]) {
			if ab.Abstract.G(ab.Beta(p[0]), ab.Beta(p[1])) {
				failed = append(failed, "3.4: G over-approximates g")
				break
			}
		}
	}
	return failed
}

// SoundnessTheorem restates the framework's payoff: if the abstraction
// conditions hold and the abstract correlation is consistent, the
// concrete one is consistent. It re-derives concrete consistency from
// the abstract side and reports whether the implication held on this
// instance (used by property tests; a false return would falsify the
// framework).
func (ab *Abstraction[A, A2, B, B2]) SoundnessTheorem(domainA []A, pairsB [][2]B) bool {
	if len(ab.Check(domainA, pairsB)) != 0 {
		return true // premise fails; implication vacuous
	}
	if !ab.Abstract.Consistent() {
		return true // premise fails; implication vacuous
	}
	return ab.Concrete.Consistent()
}
