package correlation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// A toy instantiation: A = ints, B = string labels.
func labelOf(x int) string {
	if x%2 == 0 {
		return "even"
	}
	return "odd"
}

func TestHoldsVacuouslyOutsideF(t *testing.T) {
	f := NewRelation[int]()
	f.Add(1, 2)
	c := &Correlation[int, string]{
		F:   f,
		Phi: labelOf,
		G:   func(a, b string) bool { return a != b },
	}
	if !c.Holds(3, 4) {
		t.Fatal("pair outside F must hold vacuously")
	}
	if !c.Holds(1, 2) {
		t.Fatal("odd/even differ, should hold")
	}
}

func TestViolations(t *testing.T) {
	f := NewRelation[int]()
	f.Add(1, 3) // both odd -> same label -> violates G = "labels differ"
	f.Add(1, 2)
	c := &Correlation[int, string]{
		F:   f,
		Phi: labelOf,
		G:   func(a, b string) bool { return a != b },
	}
	v := c.Violations()
	if len(v) != 1 || v[0] != (Pair[int]{1, 3}) {
		t.Fatalf("violations = %v", v)
	}
	if c.Consistent() {
		t.Fatal("inconsistent correlation reported consistent")
	}
}

func TestRegionLifetimeShape(t *testing.T) {
	// The paper's Section 3 instantiation in miniature:
	// A = regions {0,1,2}, subregion partial order 2 <= 1 <= 0;
	// B = object sets; f = pairs with NO partial order; g = non-access.
	// Objects: region i owns object i0; object 20 accesses 10
	// (child accesses parent: safe).
	type objSet = map[string]bool
	owns := map[int]objSet{
		0: {"o0": true},
		1: {"o1": true},
		2: {"o2": true},
	}
	access := map[string]map[string]bool{
		"o2": {"o1": true}, // o2 -> o1
	}
	leq := func(x, y int) bool { return x >= y } // 2<=1<=0 numerically reversed
	f := NewRelation[int]()
	for x := 0; x <= 2; x++ {
		for y := 0; y <= 2; y++ {
			if x != y && !leq(x, y) {
				f.Add(x, y) // pairs with x not<= y must be verified
			}
		}
	}
	nonAccess := func(s, t objSet) bool {
		for a := range s {
			for b := range t {
				if access[a][b] {
					return false
				}
			}
		}
		return true
	}
	c := &Correlation[int, objSet]{F: f, Phi: func(r int) objSet { return owns[r] }, G: nonAccess}
	if !c.Consistent() {
		t.Fatalf("consistent hierarchy flagged: %v", c.Violations())
	}
	// Now make o1 access o2 (parent object points into child region).
	access["o1"] = map[string]bool{"o2": true}
	if c.Consistent() {
		t.Fatal("parent->child access not flagged")
	}
}

// TestAbstractionSoundness builds random concrete instances, quotients
// them through a random partition (alpha), and checks the framework
// theorem: valid abstraction + consistent abstract => consistent
// concrete.
func TestAbstractionSoundness(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const nA = 8
		// Random partition alpha: A -> A2.
		alpha := make([]int, nA)
		for i := range alpha {
			alpha[i] = r.Intn(4)
		}
		// Concrete phi: A -> B (ints as B).
		phi := make([]int, nA)
		for i := range phi {
			phi[i] = r.Intn(3)
		}
		// Beta must be well-defined on phi images; use identity.
		beta := func(b int) int { return b }
		// Abstract Phi must satisfy 3.3: Phi(alpha(x)) == beta(phi(x)).
		// Force it by making phi constant per alpha class.
		classVal := make(map[int]int)
		for i := range phi {
			if v, ok := classVal[alpha[i]]; ok {
				phi[i] = v
			} else {
				classVal[alpha[i]] = phi[i]
			}
		}
		// Random concrete f; abstract F = image (ensures 3.2).
		f := NewRelation[int]()
		F := NewRelation[int]()
		for k := 0; k < 10; k++ {
			x, y := r.Intn(nA), r.Intn(nA)
			f.Add(x, y)
			F.Add(alpha[x], alpha[y])
		}
		// g random over B; G = image-compatible: G(b1,b2) iff g(b1,b2)
		// (beta identity makes 3.4 hold with equality).
		gTable := make(map[[2]int]bool)
		g := func(a, b int) bool { return gTable[[2]int{a, b}] }
		for a := 0; a < 3; a++ {
			for b := 0; b < 3; b++ {
				gTable[[2]int{a, b}] = r.Intn(2) == 0
			}
		}
		concrete := &Correlation[int, int]{F: f, Phi: func(x int) int { return phi[x] }, G: g}
		abstract := &Correlation[int, int]{F: F, Phi: func(c int) int { return classVal[c] }, G: g}
		ab := &Abstraction[int, int, int, int]{
			Concrete: concrete,
			Abstract: abstract,
			Alpha:    func(x int) int { return alpha[x] },
			Beta:     beta,
			EqB2:     func(a, b int) bool { return a == b },
		}
		domainA := make([]int, nA)
		for i := range domainA {
			domainA[i] = i
		}
		var pairsB [][2]int
		for a := 0; a < 3; a++ {
			for b := 0; b < 3; b++ {
				pairsB = append(pairsB, [2]int{a, b})
			}
		}
		return ab.SoundnessTheorem(domainA, pairsB)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAbstractionCheckCatchesBadAlpha(t *testing.T) {
	f := NewRelation[int]()
	f.Add(1, 2)
	F := NewRelation[int]() // empty: misses the image of (1,2)
	g := func(a, b string) bool { return true }
	concrete := &Correlation[int, string]{F: f, Phi: labelOf, G: g}
	abstract := &Correlation[int, string]{F: F, Phi: labelOf, G: g}
	ab := &Abstraction[int, int, string, string]{
		Concrete: concrete,
		Abstract: abstract,
		Alpha:    func(x int) int { return x },
		Beta:     func(s string) string { return s },
		EqB2:     func(a, b string) bool { return a == b },
	}
	fails := ab.Check([]int{1, 2}, nil)
	if len(fails) == 0 {
		t.Fatal("missing F pair not caught")
	}
}

func TestRelationBasics(t *testing.T) {
	r := NewRelation[string]()
	r.Add("a", "b")
	r.Add("a", "b")
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (dedup)", r.Len())
	}
	if !r.Has("a", "b") || r.Has("b", "a") {
		t.Fatal("Has mismatch")
	}
	count := 0
	r.Add("c", "d")
	r.Each(func(x, y string) bool { count++; return false })
	if count != 1 {
		t.Fatal("Each early stop ignored")
	}
}
