package ir

import (
	"sort"

	"repro/internal/cminor"
)

// Fragment is the lowered IR of a single file: the per-file half of
// Lower. Fragments carry no program-wide identity — variable and
// instruction IDs are unassigned, global references are name-keyed
// proxies, and string literal indices are fragment-local — so a
// fragment depends only on its own file's AST and the declaration
// environment (types, layouts, signatures). As long as that
// environment is unchanged (see cminor.DeclSignature), a fragment can
// be cached by file digest and relinked into any number of programs.
// Link never mutates a fragment: every Var and Instr is cloned with
// fresh IDs, so one fragment may be shared by concurrent links.
type Fragment struct {
	// Path is the source file the fragment was lowered from.
	Path string
	// Init holds the file's global-initializer instructions, and
	// InitVars the temporaries they use. Instr.Func is nil here; Link
	// points the clones at the synthetic init function.
	Init     []*Instr
	InitVars []*Var
	// Funcs are the file's defined functions in declaration order.
	// BodyVars lists every function-local variable (parameters, return
	// slots, locals, temporaries) in creation order; each knows its
	// fragment Func.
	Funcs    []*Func
	BodyVars []*Var
	// Globals are name-keyed proxy variables standing in for program
	// globals; Link replaces every reference with the canonical global
	// and folds the proxy's AddrTaken flag into it.
	Globals map[string]*Var
	// Strings are the file's string literal sites: the first
	// InitStrings entries come from global initializers, the rest from
	// function bodies. Operand.Str indexes this slice until Link
	// rebases it.
	Strings     []StringLit
	InitStrings int
}

// LowerFile lowers one checked file into a reusable fragment. info
// must cover the file (a full check, or an incremental check that
// re-checked it).
func LowerFile(info *cminor.Info, f *cminor.File) *Fragment {
	b := &builder{
		frag: &Fragment{Path: f.Path, Globals: make(map[string]*Var)},
		info: info,
		vars: make(map[*cminor.VarObject]*Var),
	}
	// Global initializers first, mirroring Lower's historical order.
	// Initializers of names the checker did not register as globals are
	// dropped, as the single-pass Lower always did.
	b.sink = &b.frag.InitVars
	for _, d := range f.Decls {
		if vd, ok := d.(*cminor.VarDecl); ok && vd.Init != nil {
			if _, ok := info.Globals[vd.Name]; ok {
				src := b.expr(vd.Init)
				b.emit(&Instr{Op: Assign, Dst: varOpd(b.globalProxy(vd.Name)), Src: src, Pos: vd.Pos})
			}
		}
	}
	b.frag.InitStrings = len(b.frag.Strings)
	// Function bodies.
	b.sink = &b.frag.BodyVars
	for _, d := range f.Decls {
		if fd, ok := d.(*cminor.FuncDecl); ok && fd.Body != nil {
			b.lowerFunc(fd)
		}
	}
	return b.frag
}

// Link assembles fragments (in file order) into one Program, assigning
// program-wide variable and instruction IDs, resolving global proxies
// to canonical globals, and rebasing string indices. The instruction
// order matches the historical single-pass Lower exactly: every
// fragment's initializer segment first (file order), then every
// fragment's function bodies — reports are byte-identical whether a
// fragment was freshly lowered or replayed from a cache.
func Link(info *cminor.Info, frags []*Fragment) *Program {
	prog := &Program{
		Funcs:   make(map[string]*Func),
		Externs: make(map[string]*cminor.FuncObject),
		Globals: make(map[string]*Var),
		Info:    info,
	}
	addVar := func(v *Var) *Var {
		v.ID = len(prog.Vars)
		prog.Vars = append(prog.Vars, v)
		return v
	}
	// Canonical globals in sorted name order (variable IDs carry no
	// analysis meaning; sorting makes linking deterministic).
	names := make([]string, 0, len(info.Globals))
	for name := range info.Globals {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		prog.Globals[name] = addVar(&Var{
			Name: name, Global: true,
			PointerLike: cminor.IsPointer(info.Globals[name].Type),
		})
	}
	for name, fo := range info.Funcs {
		if fo.Decl == nil || fo.Decl.Body == nil {
			prog.Externs[name] = fo
		}
	}
	// globalFor resolves a fragment proxy to the canonical global,
	// creating one for checker-fallback names (undeclared identifiers
	// lowered as untyped globals) and accumulating AddrTaken.
	globalFor := func(p *Var) *Var {
		v, ok := prog.Globals[p.Name]
		if !ok {
			v = addVar(&Var{Name: p.Name, Global: true})
			prog.Globals[p.Name] = v
		}
		if p.AddrTaken {
			v.AddrTaken = true
		}
		return v
	}
	// Strings: initializer literals in file order, then body literals
	// in file order — the order the single-pass Lower emitted them.
	initBase := make([]int, len(frags))
	bodyBase := make([]int, len(frags))
	for i, fr := range frags {
		initBase[i] = len(prog.Strings)
		prog.Strings = append(prog.Strings, fr.Strings[:fr.InitStrings]...)
	}
	for i, fr := range frags {
		bodyBase[i] = len(prog.Strings)
		prog.Strings = append(prog.Strings, fr.Strings[fr.InitStrings:]...)
	}

	varMaps := make([]map[*Var]*Var, len(frags))
	for i := range frags {
		varMaps[i] = make(map[*Var]*Var)
	}
	remap := func(o Operand, i int) Operand {
		switch o.Kind {
		case VarOpd:
			if o.Var.Global {
				o.Var = globalFor(o.Var)
			} else {
				o.Var = varMaps[i][o.Var]
			}
		case StringOpd:
			if o.Str < frags[i].InitStrings {
				o.Str += initBase[i]
			} else {
				o.Str = bodyBase[i] + (o.Str - frags[i].InitStrings)
			}
		}
		return o
	}
	cloneVar := func(v *Var, fn *Func) *Var {
		return addVar(&Var{
			Name: v.Name, Param: v.Param, Temp: v.Temp, Func: fn,
			AddrTaken: v.AddrTaken, PointerLike: v.PointerLike,
		})
	}
	cloneInstr := func(in *Instr, i int, fn *Func) *Instr {
		ni := &Instr{
			ID: len(prog.Instrs), Op: in.Op,
			Dst: remap(in.Dst, i), Src: remap(in.Src, i),
			Base: remap(in.Base, i), Off: in.Off,
			Callee: remap(in.Callee, i),
			Pos:    in.Pos, Func: fn,
		}
		if len(in.Args) > 0 {
			ni.Args = make([]Operand, len(in.Args))
			for k, a := range in.Args {
				ni.Args[k] = remap(a, i)
			}
		}
		prog.Instrs = append(prog.Instrs, ni)
		fn.Instrs = append(fn.Instrs, ni)
		return ni
	}

	// Pass 1: the synthetic initializer function.
	initFn := &Func{Name: InitFuncName}
	for i, fr := range frags {
		for _, v := range fr.InitVars {
			varMaps[i][v] = cloneVar(v, initFn)
		}
		for _, in := range fr.Init {
			cloneInstr(in, i, initFn)
		}
	}
	if len(initFn.Instrs) > 0 {
		prog.Funcs[InitFuncName] = initFn
	}
	// Pass 2: function bodies, file order then declaration order.
	fnMap := make(map[*Func]*Func)
	for _, fr := range frags {
		for _, fn := range fr.Funcs {
			nf := &Func{Name: fn.Name, Ret: fn.Ret, Variadic: fn.Variadic, Decl: fn.Decl}
			prog.Funcs[fn.Name] = nf
			fnMap[fn] = nf
		}
	}
	for i, fr := range frags {
		for _, v := range fr.BodyVars {
			varMaps[i][v] = cloneVar(v, fnMap[v.Func])
		}
		for _, fn := range fr.Funcs {
			nf := fnMap[fn]
			for _, p := range fn.Params {
				nf.Params = append(nf.Params, varMaps[i][p])
			}
			if fn.RetVal != nil {
				nf.RetVal = varMaps[i][fn.RetVal]
			}
			for _, in := range fn.Instrs {
				cloneInstr(in, i, nf)
			}
		}
	}
	return prog
}
