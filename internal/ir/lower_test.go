package ir

import (
	"strings"
	"testing"

	"repro/internal/cminor"
)

func lower(t *testing.T, src string) *Program {
	t.Helper()
	f, errs := cminor.Parse("test.c", src)
	if len(errs) != 0 {
		t.Fatalf("parse errors: %v", errs)
	}
	info := cminor.Check(f)
	if len(info.Errors) != 0 {
		t.Fatalf("check errors: %v", info.Errors)
	}
	return Lower(info, f)
}

func ops(fn *Func) []Op {
	out := make([]Op, len(fn.Instrs))
	for i, in := range fn.Instrs {
		out[i] = in.Op
	}
	return out
}

func TestLowerAssignAndReturn(t *testing.T) {
	p := lower(t, `int id(int x) { return x; }`)
	fn := p.Funcs["id"]
	if fn == nil {
		t.Fatal("id not lowered")
	}
	got := ops(fn)
	want := []Op{Assign, Ret}
	if len(got) != len(want) {
		t.Fatalf("ops = %v, want %v", got, want)
	}
	if fn.Instrs[0].Dst.Var != fn.RetVal {
		t.Fatal("return does not assign RetVal")
	}
}

func TestLowerFieldStoreMirrorsPaperFigure1(t *testing.T) {
	// The store req->connection = conn from Figure 1 must become a
	// STORE with the field's byte offset.
	p := lower(t, `
struct conn_t { int fd; };
struct req_t { int id; struct conn_t *connection; };
void g(struct req_t *req, struct conn_t *conn) {
    req->connection = conn;
}`)
	fn := p.Funcs["g"]
	var store *Instr
	for _, in := range fn.Instrs {
		if in.Op == Store {
			store = in
		}
	}
	if store == nil {
		t.Fatal("no STORE emitted")
	}
	if store.Off != 8 {
		t.Fatalf("STORE offset = %d, want 8 (connection after padded int id)", store.Off)
	}
	if store.Base.Kind != VarOpd || store.Base.Var.Name != "req" {
		t.Fatalf("STORE base = %v", store.Base)
	}
	if store.Src.Kind != VarOpd || store.Src.Var.Name != "conn" {
		t.Fatalf("STORE src = %v", store.Src)
	}
}

func TestLowerFieldLoadChain(t *testing.T) {
	p := lower(t, `
struct a { struct a *next; int v; };
int g(struct a *p) { return p->next->v; }`)
	fn := p.Funcs["g"]
	var loads []*Instr
	for _, in := range fn.Instrs {
		if in.Op == Load {
			loads = append(loads, in)
		}
	}
	if len(loads) != 2 {
		t.Fatalf("%d loads, want 2", len(loads))
	}
	if loads[0].Off != 0 || loads[1].Off != 8 {
		t.Fatalf("load offsets = %d,%d want 0,8", loads[0].Off, loads[1].Off)
	}
	// Second load's base must be the first load's destination.
	if loads[1].Base.Var != loads[0].Dst.Var {
		t.Fatal("load chain not threaded through temp")
	}
}

func TestLowerAddressOf(t *testing.T) {
	p := lower(t, `
extern int take(int **pp);
int g(void) {
    int *x;
    take(&x);
    return 0;
}`)
	fn := p.Funcs["g"]
	var addr *Instr
	for _, in := range fn.Instrs {
		if in.Op == Addr {
			addr = in
		}
	}
	if addr == nil {
		t.Fatal("no ADDR emitted for &x")
	}
	if addr.Src.Var.Name != "x" || !addr.Src.Var.AddrTaken {
		t.Fatalf("ADDR of %v, AddrTaken=%v", addr.Src, addr.Src.Var.AddrTaken)
	}
}

func TestLowerCallDirectAndIndirect(t *testing.T) {
	p := lower(t, `
int f(int x) { return x; }
int g(void) {
    int (*fp)(int);
    fp = f;
    return fp(3) + f(4);
}`)
	fn := p.Funcs["g"]
	var direct, indirect *Instr
	for _, in := range fn.Instrs {
		if in.Op != Call {
			continue
		}
		switch in.Callee.Kind {
		case FuncOpd:
			direct = in
		case VarOpd:
			indirect = in
		}
	}
	if direct == nil || direct.Callee.Fn != "f" {
		t.Fatalf("direct call: %v", direct)
	}
	if indirect == nil || indirect.Callee.Var.Name != "fp" {
		t.Fatalf("indirect call: %v", indirect)
	}
	// fp = f must assign a function operand.
	found := false
	for _, in := range fn.Instrs {
		if in.Op == Assign && in.Src.Kind == FuncOpd && in.Src.Fn == "f" {
			found = true
		}
	}
	if !found {
		t.Fatal("function pointer assignment not lowered")
	}
}

func TestLowerDerefStore(t *testing.T) {
	// apr_pool_create-style out-parameter write: *newp = value.
	p := lower(t, `
void g(int **newp, int *v) { *newp = v; }`)
	fn := p.Funcs["g"]
	var store *Instr
	for _, in := range fn.Instrs {
		if in.Op == Store {
			store = in
		}
	}
	if store == nil || store.Off != 0 {
		t.Fatalf("deref store: %v", store)
	}
	if store.Base.Var.Name != "newp" || store.Src.Var.Name != "v" {
		t.Fatalf("store operands: %v %v", store.Base, store.Src)
	}
}

func TestLowerStringLiteral(t *testing.T) {
	p := lower(t, `
char * g(void) { return "hello"; }
char * h(void) { return "hello"; }`)
	if len(p.Strings) != 2 {
		t.Fatalf("%d string sites, want 2 (per-site objects, not interned)", len(p.Strings))
	}
	if p.Strings[0].Value != "hello" {
		t.Fatalf("string value %q", p.Strings[0].Value)
	}
}

func TestLowerGlobalInit(t *testing.T) {
	p := lower(t, `
int x = 42;
int *gp = &x;
int g(void) { return *gp; }`)
	initFn := p.Funcs[InitFuncName]
	if initFn == nil {
		t.Fatal("no global init function")
	}
	hasAddr := false
	for _, in := range initFn.Instrs {
		if in.Op == Addr && in.Src.Var.Name == "x" {
			hasAddr = true
		}
	}
	if !hasAddr {
		t.Fatal("global initializer &x not lowered")
	}
}

func TestLowerTernaryMergesBothArms(t *testing.T) {
	p := lower(t, `
int *g(int c, int *a, int *b) { return c ? a : b; }`)
	fn := p.Funcs["g"]
	// Both a and b must flow into one temp.
	var dst *Var
	srcs := map[string]bool{}
	for _, in := range fn.Instrs {
		if in.Op == Assign && in.Src.Kind == VarOpd &&
			(in.Src.Var.Name == "a" || in.Src.Var.Name == "b") {
			if dst == nil {
				dst = in.Dst.Var
			} else if in.Dst.Var != dst {
				t.Fatal("ternary arms assigned to different temps")
			}
			srcs[in.Src.Var.Name] = true
		}
	}
	if !srcs["a"] || !srcs["b"] {
		t.Fatalf("ternary arms lowered: %v", srcs)
	}
}

func TestLowerArrayDecayAndIndex(t *testing.T) {
	p := lower(t, `
int g(void) {
    int a[8];
    int *p;
    p = a;
    a[3] = 7;
    return p[2];
}`)
	fn := p.Funcs["g"]
	text := fn.Dump()
	if !strings.Contains(text, "ADDR a") {
		t.Fatalf("array decay missing ADDR:\n%s", text)
	}
	var store *Instr
	for _, in := range fn.Instrs {
		if in.Op == Store {
			store = in
		}
	}
	if store == nil || store.Off != 0 {
		t.Fatalf("array store = %v (index-insensitive offset 0 expected)", store)
	}
}

func TestLowerDotFieldOnLocalStruct(t *testing.T) {
	p := lower(t, `
struct pair { int a; int b; };
int g(void) {
    struct pair p;
    p.b = 3;
    return p.b;
}`)
	fn := p.Funcs["g"]
	var store *Instr
	for _, in := range fn.Instrs {
		if in.Op == Store {
			store = in
		}
	}
	if store == nil || store.Off != 4 {
		t.Fatalf("p.b store = %v, want offset 4", store)
	}
}

func TestInstrAndVarIDsAreDense(t *testing.T) {
	p := lower(t, `
int f(int x) { return x + 1; }
int main(void) { return f(2); }`)
	for i, in := range p.Instrs {
		if in.ID != i {
			t.Fatalf("instr %d has ID %d", i, in.ID)
		}
	}
	for i, v := range p.Vars {
		if v.ID != i {
			t.Fatalf("var %d has ID %d", i, v.ID)
		}
	}
}

func TestLowerPointerArithmeticKeepsObject(t *testing.T) {
	p := lower(t, `
char * g(char *s) { return s + 4; }`)
	fn := p.Funcs["g"]
	// RetVal must be assigned (directly or via temp) from s, not a
	// fresh unrelated temp.
	assignedFromS := false
	for _, in := range fn.Instrs {
		if in.Op == Assign && in.Dst.Var == fn.RetVal && in.Src.Kind == VarOpd && in.Src.Var.Name == "s" {
			assignedFromS = true
		}
	}
	if !assignedFromS {
		t.Fatalf("pointer arithmetic lost the object:\n%s", fn.Dump())
	}
}
