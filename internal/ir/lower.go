package ir

import (
	"fmt"

	"repro/internal/cminor"
)

// InitFuncName is the synthetic function holding global variable
// initializers. The call-graph phase treats it as reachable alongside
// the program entry.
const InitFuncName = "__global_init"

// Lower converts checked files into an IR program. The checker's Info
// must come from cminor.Check over exactly these files. It is the
// batch composition of the per-file half (LowerFile) and the linking
// half (Link); incremental analysis calls the halves separately,
// reusing cached fragments for unchanged files.
func Lower(info *cminor.Info, files ...*cminor.File) *Program {
	frags := make([]*Fragment, len(files))
	for i, f := range files {
		frags[i] = LowerFile(info, f)
	}
	return Link(info, frags)
}

// builder lowers one file into a fragment. Variables are appended to
// *sink (InitVars while lowering global initializers, BodyVars inside
// functions) without IDs; Link assigns program-wide identity.
type builder struct {
	frag *Fragment
	info *cminor.Info
	fn   *Func
	sink *[]*Var
	vars map[*cminor.VarObject]*Var
	tmps int
}

func (b *builder) newVar(name string, fn *Func) *Var {
	v := &Var{Name: name, Func: fn}
	*b.sink = append(*b.sink, v)
	return v
}

func (b *builder) temp() *Var {
	b.tmps++
	v := b.newVar(fmt.Sprintf("t%d", b.tmps), b.fn)
	v.Temp = true
	return v
}

// globalProxy returns the fragment's name-keyed stand-in for a program
// global. Proxies live only in frag.Globals (never in a var sink);
// Link replaces them with canonical globals.
func (b *builder) globalProxy(name string) *Var {
	if v, ok := b.frag.Globals[name]; ok {
		return v
	}
	v := &Var{Name: name, Global: true}
	b.frag.Globals[name] = v
	return v
}

func (b *builder) emit(in *Instr) *Instr {
	in.Func = b.fn
	if b.fn == nil {
		b.frag.Init = append(b.frag.Init, in)
	} else {
		b.fn.Instrs = append(b.fn.Instrs, in)
	}
	return in
}

func varOpd(v *Var) Operand    { return Operand{Kind: VarOpd, Var: v} }
func constOpd(c int64) Operand { return Operand{Kind: ConstOpd, C: c} }

func (b *builder) lowerFunc(fd *cminor.FuncDecl) {
	fi := b.info.FuncInfo[fd]
	fn := &Func{Name: fd.Name, Decl: fd, Variadic: fd.Variadic}
	if _, isVoid := b.info.Funcs[fd.Name].Type.Ret.(*cminor.VoidType); !isVoid {
		fn.Ret = true
	}
	b.frag.Funcs = append(b.frag.Funcs, fn)
	b.fn = fn
	for _, p := range fi.Params {
		v := b.newVar(p.Name, fn)
		v.Param = true
		v.PointerLike = cminor.IsPointer(p.Type)
		b.vars[p] = v
		fn.Params = append(fn.Params, v)
	}
	fn.RetVal = b.newVar("__ret", fn)
	for _, l := range fi.Locals {
		v := b.newVar(l.Name, fn)
		v.PointerLike = cminor.IsPointer(l.Type)
		b.vars[l] = v
	}
	b.stmt(fd.Body)
	b.fn = nil
}

// --- statements ---

func (b *builder) stmt(s cminor.Stmt) {
	switch s := s.(type) {
	case *cminor.Block:
		for _, st := range s.Stmts {
			b.stmt(st)
		}
	case *cminor.DeclStmt:
		if s.Decl.Init != nil {
			obj := b.localObject(s.Decl)
			src := b.expr(s.Decl.Init)
			b.emit(&Instr{Op: Assign, Dst: varOpd(obj), Src: src, Pos: s.Decl.Pos})
		}
	case *cminor.ExprStmt:
		b.expr(s.X)
	case *cminor.If:
		b.expr(s.Cond)
		b.stmt(s.Then)
		if s.Else != nil {
			b.stmt(s.Else)
		}
	case *cminor.While:
		b.expr(s.Cond)
		b.stmt(s.Body)
	case *cminor.For:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Cond != nil {
			b.expr(s.Cond)
		}
		b.stmt(s.Body)
		if s.Post != nil {
			b.expr(s.Post)
		}
	case *cminor.Switch:
		b.expr(s.Cond)
		for _, cs := range s.Cases {
			for _, v := range cs.Values {
				b.expr(v)
			}
			for _, st := range cs.Body {
				b.stmt(st)
			}
		}
	case *cminor.Return:
		src := Operand{}
		if s.X != nil {
			src = b.expr(s.X)
			b.emit(&Instr{Op: Assign, Dst: varOpd(b.fn.RetVal), Src: src, Pos: s.Pos})
		}
		b.emit(&Instr{Op: Ret, Src: varOpd(b.fn.RetVal), Pos: s.Pos})
	case *cminor.Break, *cminor.Continue, *cminor.Empty:
	}
}

// localObject finds the *Var for a local declaration via the checker's
// FuncInfo (each VarDecl maps to exactly one VarObject).
func (b *builder) localObject(d *cminor.VarDecl) *Var {
	fi := b.info.FuncInfo[b.fn.Decl]
	for _, l := range fi.Locals {
		if l.Decl == d {
			return b.vars[l]
		}
	}
	// Fall back to a fresh temp so lowering never crashes on checker
	// gaps; the effect is an isolated variable.
	return b.temp()
}

// --- expressions ---

// place describes an assignable location: either a variable or a
// memory cell [base+off].
type place struct {
	v    *Var    // non-nil for variable places
	base Operand // memory places
	off  int64
}

func (b *builder) expr(e cminor.Expr) Operand {
	switch e := e.(type) {
	case *cminor.Ident:
		switch obj := b.info.Uses[e].(type) {
		case *cminor.VarObject:
			v := b.vars[obj]
			if v == nil {
				v = b.globalFallback(obj)
			}
			// Array-typed variables decay to a pointer to their
			// storage.
			if _, isArr := obj.Type.(*cminor.ArrayType); isArr {
				t := b.temp()
				v.AddrTaken = true
				b.emit(&Instr{Op: Addr, Dst: varOpd(t), Src: varOpd(v), Pos: e.Pos})
				return varOpd(t)
			}
			return varOpd(v)
		case *cminor.FuncObject:
			return Operand{Kind: FuncOpd, Fn: obj.Name}
		case *cminor.EnumConst:
			return constOpd(obj.Value)
		}
		return constOpd(0)
	case *cminor.IntLit:
		return constOpd(e.V)
	case *cminor.StrLit:
		idx := len(b.frag.Strings)
		b.frag.Strings = append(b.frag.Strings, StringLit{Value: e.V, Pos: e.Pos})
		t := b.temp()
		b.emit(&Instr{Op: Assign, Dst: varOpd(t), Src: Operand{Kind: StringOpd, Str: idx}, Pos: e.Pos})
		return varOpd(t)
	case *cminor.Null:
		return Operand{Kind: NullOpd}
	case *cminor.Unary:
		return b.unary(e)
	case *cminor.Postfix:
		// x++ / x-- : value stays in the same abstract object.
		return b.expr(e.X)
	case *cminor.Binary:
		return b.binary(e)
	case *cminor.AssignExpr:
		return b.assign(e)
	case *cminor.CondExpr:
		b.expr(e.Cond)
		t := b.temp()
		b.emit(&Instr{Op: Assign, Dst: varOpd(t), Src: b.expr(e.Then), Pos: e.Pos})
		b.emit(&Instr{Op: Assign, Dst: varOpd(t), Src: b.expr(e.Else), Pos: e.Pos})
		return varOpd(t)
	case *cminor.Call:
		return b.call(e)
	case *cminor.Index, *cminor.FieldAccess:
		return b.readPlace(b.lvalue(e), cminor.ExprPos(e))
	case *cminor.Cast:
		// Casts (including int<->pointer) are value-preserving.
		return b.expr(e.X)
	case *cminor.SizeofType:
		if sz, ok := b.info.Sizeofs[e]; ok {
			return constOpd(sz)
		}
		return constOpd(8)
	case *cminor.SizeofExpr:
		b.expr(e.X)
		if sz, ok := b.info.Sizeofs[e]; ok {
			return constOpd(sz)
		}
		return constOpd(8)
	}
	return constOpd(0)
}

func (b *builder) globalFallback(obj *cminor.VarObject) *Var {
	v := b.globalProxy(obj.Name)
	b.vars[obj] = v
	return v
}

func (b *builder) unary(e *cminor.Unary) Operand {
	switch e.Op {
	case cminor.Star:
		base := b.expr(e.X)
		t := b.temp()
		b.emit(&Instr{Op: Load, Dst: varOpd(t), Base: base, Off: 0, Pos: e.Pos})
		return varOpd(t)
	case cminor.Amp:
		return b.addressOf(e.X, e.Pos)
	case cminor.Inc, cminor.Dec, cminor.Minus, cminor.Tilde, cminor.Not:
		// Arithmetic/logical unaries preserve the abstract value for
		// the weakly-typed analysis (pointer arithmetic keeps the
		// object, Section 5.5).
		return b.expr(e.X)
	}
	return constOpd(0)
}

// addressOf lowers &x for the supported lvalue shapes.
func (b *builder) addressOf(x cminor.Expr, pos cminor.Pos) Operand {
	pl := b.lvalue(x)
	if pl.v != nil {
		pl.v.AddrTaken = true
		t := b.temp()
		b.emit(&Instr{Op: Addr, Dst: varOpd(t), Src: varOpd(pl.v), Pos: pos})
		return varOpd(t)
	}
	if pl.off == 0 {
		return pl.base
	}
	t := b.temp()
	b.emit(&Instr{Op: FieldAddr, Dst: varOpd(t), Base: pl.base, Off: pl.off, Pos: pos})
	return varOpd(t)
}

func (b *builder) binary(e *cminor.Binary) Operand {
	x := b.expr(e.X)
	y := b.expr(e.Y)
	xt := b.info.Types[e.X]
	yt := b.info.Types[e.Y]
	// Pointer arithmetic: the result stays within the pointed-to
	// object (constant offsets beyond fields are not tracked —
	// the documented Section 5.5 unsoundness).
	if e.Op == cminor.Plus || e.Op == cminor.Minus {
		if xt != nil && cminor.IsPointer(xt) {
			return x
		}
		if yt != nil && cminor.IsPointer(yt) {
			return y
		}
	}
	// Comparisons and integer arithmetic: results are scalar; merge
	// both sides so int<->pointer laundering via arithmetic stays
	// visible to the weakly-typed analysis.
	t := b.temp()
	b.emit(&Instr{Op: Assign, Dst: varOpd(t), Src: x, Pos: e.Pos})
	b.emit(&Instr{Op: Assign, Dst: varOpd(t), Src: y, Pos: e.Pos})
	return varOpd(t)
}

func (b *builder) assign(e *cminor.AssignExpr) Operand {
	src := b.expr(e.RHS)
	if e.Op != cminor.Assign {
		// Compound assignment: merge old and new values.
		t := b.temp()
		b.emit(&Instr{Op: Assign, Dst: varOpd(t), Src: src, Pos: e.Pos})
		old := b.readPlace(b.lvalue(e.LHS), e.Pos)
		b.emit(&Instr{Op: Assign, Dst: varOpd(t), Src: old, Pos: e.Pos})
		src = varOpd(t)
	}
	pl := b.lvalue(e.LHS)
	if pl.v != nil {
		b.emit(&Instr{Op: Assign, Dst: varOpd(pl.v), Src: src, Pos: e.Pos})
	} else {
		b.emit(&Instr{Op: Store, Base: pl.base, Off: pl.off, Src: src, Pos: e.Pos})
	}
	return src
}

func (b *builder) call(e *cminor.Call) Operand {
	var callee Operand
	if id, ok := e.Fun.(*cminor.Ident); ok {
		if fo, ok := b.info.Uses[id].(*cminor.FuncObject); ok {
			callee = Operand{Kind: FuncOpd, Fn: fo.Name}
		}
	}
	if callee.IsNone() {
		callee = b.expr(e.Fun)
	}
	args := make([]Operand, len(e.Args))
	for i, a := range e.Args {
		args[i] = b.expr(a)
	}
	dst := b.temp()
	b.emit(&Instr{Op: Call, Dst: varOpd(dst), Callee: callee, Args: args, Pos: e.Pos})
	return varOpd(dst)
}

// lvalue resolves an assignable expression to a place.
func (b *builder) lvalue(e cminor.Expr) place {
	switch e := e.(type) {
	case *cminor.Ident:
		if obj, ok := b.info.Uses[e].(*cminor.VarObject); ok {
			v := b.vars[obj]
			if v == nil {
				v = b.globalFallback(obj)
			}
			return place{v: v}
		}
	case *cminor.Unary:
		if e.Op == cminor.Star {
			return place{base: b.expr(e.X)}
		}
	case *cminor.Index:
		// Arrays collapse to offset 0 (index-insensitive).
		return place{base: b.expr(e.X)}
	case *cminor.FieldAccess:
		fi, ok := b.info.Fields[e]
		off := int64(0)
		if ok {
			off = fi.Field.Offset
		}
		if e.Arrow {
			return place{base: b.expr(e.X), off: off}
		}
		inner := b.lvalue(e.X)
		if inner.v != nil {
			inner.v.AddrTaken = true
			t := b.temp()
			b.emit(&Instr{Op: Addr, Dst: varOpd(t), Src: varOpd(inner.v), Pos: e.Pos})
			return place{base: varOpd(t), off: off}
		}
		return place{base: inner.base, off: inner.off + off}
	case *cminor.Cast:
		return b.lvalue(e.X)
	}
	// Not an lvalue we track: evaluate for effect, park in a temp.
	t := b.temp()
	b.emit(&Instr{Op: Assign, Dst: varOpd(t), Src: b.expr(e), Pos: cminor.ExprPos(e)})
	return place{v: t}
}

// readPlace loads the value stored at a place.
func (b *builder) readPlace(pl place, pos cminor.Pos) Operand {
	if pl.v != nil {
		return varOpd(pl.v)
	}
	t := b.temp()
	b.emit(&Instr{Op: Load, Dst: varOpd(t), Base: pl.base, Off: pl.off, Pos: pos})
	return varOpd(t)
}
