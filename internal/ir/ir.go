// Package ir defines RegionWiz's intermediate representation and the
// lowering from the cminor AST.
//
// The IR mirrors the instruction stream the paper extracted from the
// Phoenix compiler framework (Section 5.1): each instruction has a
// destination operand, an opcode, and source operands, with structure
// fields addressed by machine-dependent byte offsets. Control flow is
// deliberately absent — every analysis phase that consumes this IR is
// flow-insensitive (Section 4.3), so a function body is a flat list of
// effect-bearing instructions. (The concrete interpreter in package
// interp executes the AST directly and is the flow-sensitive
// reference.)
package ir

import (
	"fmt"
	"strings"

	"repro/internal/cminor"
)

// Op is an instruction opcode.
type Op uint8

// Opcodes.
const (
	// Assign: Dst = Src.
	Assign Op = iota
	// Load: Dst = *(Base + Off).
	Load
	// Store: *(Base + Off) = Src.
	Store
	// Addr: Dst = &Var (Src must be a variable operand).
	Addr
	// FieldAddr: Dst = Base + Off (address of a field; the paper's ADD).
	FieldAddr
	// Call: Dst = Callee(Args...). Dst may be none.
	Call
	// Ret: return Src (may be none).
	Ret
)

func (o Op) String() string {
	switch o {
	case Assign:
		return "ASSIGN"
	case Load:
		return "LOAD"
	case Store:
		return "STORE"
	case Addr:
		return "ADDR"
	case FieldAddr:
		return "ADD"
	case Call:
		return "CALL"
	case Ret:
		return "RET"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// OperandKind classifies an operand.
type OperandKind uint8

// Operand kinds.
const (
	None OperandKind = iota
	VarOpd
	ConstOpd
	FuncOpd
	StringOpd
	NullOpd
)

// Operand is a source or destination of an instruction.
type Operand struct {
	Kind OperandKind
	Var  *Var   // VarOpd
	Fn   string // FuncOpd: function name
	C    int64  // ConstOpd
	Str  int    // StringOpd: index into Program.Strings
}

// IsNone reports whether the operand is absent.
func (o Operand) IsNone() bool { return o.Kind == None }

func (o Operand) String() string {
	switch o.Kind {
	case None:
		return "_"
	case VarOpd:
		return o.Var.Name
	case ConstOpd:
		return fmt.Sprintf("%d", o.C)
	case FuncOpd:
		return "&" + o.Fn
	case StringOpd:
		return fmt.Sprintf("str#%d", o.Str)
	case NullOpd:
		return "null"
	}
	return "?"
}

// Instr is one IR instruction. ID is unique across the whole program —
// the paper's instruction set I.
type Instr struct {
	ID   int
	Op   Op
	Dst  Operand
	Src  Operand // Assign/Store/Ret source; Addr variable
	Base Operand // Load/Store/FieldAddr base pointer
	Off  int64   // Load/Store/FieldAddr byte offset
	// Call:
	Callee Operand
	Args   []Operand

	Pos  cminor.Pos
	Func *Func
}

func (in *Instr) String() string {
	switch in.Op {
	case Assign:
		return fmt.Sprintf("%s = ASSIGN %s", in.Dst, in.Src)
	case Load:
		return fmt.Sprintf("%s = LOAD [%s+%d]", in.Dst, in.Base, in.Off)
	case Store:
		return fmt.Sprintf("STORE [%s+%d] = %s", in.Base, in.Off, in.Src)
	case Addr:
		return fmt.Sprintf("%s = ADDR %s", in.Dst, in.Src)
	case FieldAddr:
		return fmt.Sprintf("%s = ADD %s, %d", in.Dst, in.Base, in.Off)
	case Call:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = a.String()
		}
		call := fmt.Sprintf("CALL %s(%s)", in.Callee, strings.Join(args, ", "))
		if in.Dst.IsNone() {
			return call
		}
		return fmt.Sprintf("%s = %s", in.Dst, call)
	case Ret:
		if in.Src.IsNone() {
			return "RET"
		}
		return fmt.Sprintf("RET %s", in.Src)
	}
	return "?"
}

// Var is an IR variable: a source variable, parameter, global, or
// compiler temporary. ID is unique across the program — the paper's
// variable set V.
type Var struct {
	ID     int
	Name   string
	Global bool
	Param  bool
	Temp   bool
	Func   *Func // nil for globals
	// AddrTaken is set when an Addr instruction takes the variable's
	// address; only such variables need storage objects in the pointer
	// analysis.
	AddrTaken bool
	// PointerLike reports whether the variable's declared type can
	// carry a pointer (pointers, integers wide enough after casts —
	// CMinor is weakly typed, so this is advisory only).
	PointerLike bool
}

func (v *Var) String() string { return v.Name }

// Func is a lowered function body.
type Func struct {
	Name     string
	Params   []*Var
	Ret      bool // has a non-void return type
	Variadic bool
	Instrs   []*Instr
	Decl     *cminor.FuncDecl
	// RetVal is the distinguished variable that Ret instructions
	// assign; the call-return wiring in the pointer analysis reads it.
	RetVal *Var
}

// StringLit is one string literal site.
type StringLit struct {
	Value string
	Pos   cminor.Pos
}

// Program is a whole lowered program.
type Program struct {
	Funcs   map[string]*Func
	Externs map[string]*cminor.FuncObject // declared but not defined
	Globals map[string]*Var
	Strings []StringLit
	Vars    []*Var   // all variables, indexed by ID
	Instrs  []*Instr // all instructions, indexed by ID
	Info    *cminor.Info
}

// FuncNames returns defined function names in a stable order.
func (p *Program) FuncNames() []string {
	names := make([]string, 0, len(p.Funcs))
	for n := range p.Funcs {
		names = append(names, n)
	}
	sortStrings(names)
	return names
}

func sortStrings(a []string) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}

// Dump renders a function's instructions, one per line (debugging and
// the cmd/cminor tool).
func (f *Func) Dump() string {
	var sb strings.Builder
	params := make([]string, len(f.Params))
	for i, p := range f.Params {
		params[i] = p.Name
	}
	fmt.Fprintf(&sb, "func %s(%s):\n", f.Name, strings.Join(params, ", "))
	for _, in := range f.Instrs {
		fmt.Fprintf(&sb, "  %4d  %s\n", in.ID, in)
	}
	return sb.String()
}
