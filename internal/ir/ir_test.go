package ir

import (
	"strings"
	"testing"

	"repro/internal/cminor"
)

func TestOperandString(t *testing.T) {
	v := &Var{Name: "x"}
	cases := map[string]Operand{
		"_":     {},
		"x":     {Kind: VarOpd, Var: v},
		"42":    {Kind: ConstOpd, C: 42},
		"&f":    {Kind: FuncOpd, Fn: "f"},
		"str#3": {Kind: StringOpd, Str: 3},
		"null":  {Kind: NullOpd},
	}
	for want, o := range cases {
		if got := o.String(); got != want {
			t.Errorf("Operand %+v = %q, want %q", o, got, want)
		}
	}
}

func TestInstrString(t *testing.T) {
	x := Operand{Kind: VarOpd, Var: &Var{Name: "x"}}
	y := Operand{Kind: VarOpd, Var: &Var{Name: "y"}}
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: Assign, Dst: x, Src: y}, "x = ASSIGN y"},
		{Instr{Op: Load, Dst: x, Base: y, Off: 8}, "x = LOAD [y+8]"},
		{Instr{Op: Store, Base: x, Off: 4, Src: y}, "STORE [x+4] = y"},
		{Instr{Op: Addr, Dst: x, Src: y}, "x = ADDR y"},
		{Instr{Op: FieldAddr, Dst: x, Base: y, Off: 16}, "x = ADD y, 16"},
		{Instr{Op: Call, Dst: x, Callee: Operand{Kind: FuncOpd, Fn: "g"}, Args: []Operand{y}}, "x = CALL &g(y)"},
		{Instr{Op: Call, Callee: Operand{Kind: FuncOpd, Fn: "g"}}, "CALL &g()"},
		{Instr{Op: Ret, Src: x}, "RET x"},
		{Instr{Op: Ret}, "RET"},
	}
	for _, tc := range cases {
		if got := tc.in.String(); got != tc.want {
			t.Errorf("Instr = %q, want %q", got, tc.want)
		}
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{
		Assign: "ASSIGN", Load: "LOAD", Store: "STORE", Addr: "ADDR",
		FieldAddr: "ADD", Call: "CALL", Ret: "RET",
	} {
		if op.String() != want {
			t.Errorf("Op %d = %q, want %q", op, op.String(), want)
		}
	}
}

func TestDumpFormat(t *testing.T) {
	p := lower(t, `int add(int a, int b) { return a + b; }`)
	out := p.Funcs["add"].Dump()
	if !strings.HasPrefix(out, "func add(a, b):") {
		t.Fatalf("dump header: %q", out)
	}
	if !strings.Contains(out, "RET") {
		t.Fatalf("dump body missing RET:\n%s", out)
	}
}

func TestFuncNamesSorted(t *testing.T) {
	p := lower(t, `
int zeta(void) { return 0; }
int alpha(void) { return zeta(); }
int main(void) { return alpha(); }`)
	names := p.FuncNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names unsorted: %v", names)
		}
	}
}

func TestLowerCompoundAssignPointer(t *testing.T) {
	p := lower(t, `
char * g(char *s) {
    s += 3;
    return s;
}`)
	fn := p.Funcs["g"]
	// The compound assignment must keep s's abstract object flowing
	// into the returned value.
	found := false
	for _, in := range fn.Instrs {
		if in.Op == Assign && in.Src.Kind == VarOpd && in.Src.Var.Name == "s" {
			found = true
		}
	}
	if !found {
		t.Fatalf("compound pointer assign lost flow:\n%s", fn.Dump())
	}
}

func TestLowerLogicalOperatorsEvaluateBothSides(t *testing.T) {
	// Flow-insensitive lowering evaluates both operands (no branch
	// pruning); ensure calls inside && appear.
	p := lower(t, `
extern int check(int x);
int g(int a) { return a && check(a); }`)
	fn := p.Funcs["g"]
	calls := 0
	for _, in := range fn.Instrs {
		if in.Op == Call {
			calls++
		}
	}
	if calls != 1 {
		t.Fatalf("%d calls lowered, want 1", calls)
	}
}

func TestLowerWhileAndDoWhile(t *testing.T) {
	p := lower(t, `
extern void tick(void);
int g(int n) {
    while (n > 0) { tick(); n--; }
    do { tick(); } while (n < 3);
    return n;
}`)
	fn := p.Funcs["g"]
	calls := 0
	for _, in := range fn.Instrs {
		if in.Op == Call {
			calls++
		}
	}
	if calls != 2 {
		t.Fatalf("%d calls lowered from loops, want 2", calls)
	}
}

func TestLowerCastChainPreservesValue(t *testing.T) {
	p := lower(t, `
extern void *malloc(unsigned long n);
long g(void) {
    void *p;
    long x;
    p = malloc(8);
    x = (long)(char *)p;
    return x;
}`)
	fn := p.Funcs["g"]
	// x must be assigned (directly) from p.
	ok := false
	for _, in := range fn.Instrs {
		if in.Op == Assign && in.Dst.Var != nil && in.Dst.Var.Name == "x" &&
			in.Src.Kind == VarOpd && in.Src.Var.Name == "p" {
			ok = true
		}
	}
	if !ok {
		t.Fatalf("cast chain broke flow:\n%s", fn.Dump())
	}
}

func TestExternsRecorded(t *testing.T) {
	p := lower(t, `
extern int close(int fd);
int main(void) { return close(1); }`)
	if _, ok := p.Externs["close"]; !ok {
		t.Fatal("extern close not recorded")
	}
}

func TestAddressOfFieldOfPointer(t *testing.T) {
	p := lower(t, `
struct s { long a; long b; };
long * g(struct s *p) { return &p->b; }`)
	fn := p.Funcs["g"]
	var fa *Instr
	for _, in := range fn.Instrs {
		if in.Op == FieldAddr {
			fa = in
		}
	}
	if fa == nil || fa.Off != 8 {
		t.Fatalf("&p->b: %v", fa)
	}
}

func TestAddressOfFirstFieldIsBase(t *testing.T) {
	// &p->a at offset 0 needs no ADD: the base pointer suffices.
	p := lower(t, `
struct s { long a; long b; };
long * g(struct s *p) { return &p->a; }`)
	fn := p.Funcs["g"]
	for _, in := range fn.Instrs {
		if in.Op == FieldAddr {
			t.Fatalf("offset-0 field address emitted ADD:\n%s", fn.Dump())
		}
	}
}

var _ = cminor.Pos{} // keep the import for helpers in lower_test.go
