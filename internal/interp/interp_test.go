package interp

import (
	"errors"
	"testing"

	"repro/internal/cminor"
)

const rcPrelude = `
typedef struct region_t region_t;
extern region_t *rnew(region_t *parent);
extern void *ralloc(region_t *r);
extern void deleteregion(region_t *r);
`

func exec(t *testing.T, src string, args ...int64) *Effects {
	t.Helper()
	f, errs := cminor.Parse("test.c", src)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	info := cminor.Check(f)
	if len(info.Errors) != 0 {
		t.Fatalf("check: %v", info.Errors)
	}
	eff, err := Run(info, Options{Args: args}, f)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return eff
}

func TestFigure1EffectsAndConsistency(t *testing.T) {
	eff := exec(t, rcPrelude+`
struct conn_t { int fd; };
struct req_t { struct conn_t *connection; };
int main(void) {
    region_t *r; region_t *subr;
    struct conn_t *conn; struct req_t *req;
    r = rnew(NULL);
    conn = ralloc(r);
    subr = rnew(r);
    req = ralloc(subr);
    req->connection = conn;
    return 0;
}`)
	if len(eff.Regions) != 2 {
		t.Fatalf("%d regions, want 2", len(eff.Regions))
	}
	if eff.Regions[1].Parent != eff.Regions[0] {
		t.Fatal("subr's parent is not r")
	}
	if len(eff.Objects) != 2 {
		t.Fatalf("%d objects, want 2", len(eff.Objects))
	}
	if len(eff.Access) != 1 {
		t.Fatalf("%d access tuples, want 1", len(eff.Access))
	}
	if inc := eff.Inconsistencies(); len(inc) != 0 {
		t.Fatalf("consistent program has %d inconsistencies", len(inc))
	}
}

func TestFigure3ConcreteRuns(t *testing.T) {
	src := rcPrelude + `
struct obj { struct obj *f; };
int main(int P, int Q) {
    region_t *r0; region_t *r1; region_t *r;
    region_t *r2;
    struct obj *o1; struct obj *o2;
    r0 = rnew(NULL);
    r1 = rnew(NULL);
    o1 = ralloc(r1);
    r = r0;
    if (P) r = r0;
    if (Q) r = r1;
    r2 = rnew(r);
    o2 = ralloc(r2);
    o2->f = o1;
    return 0;
}`
	// P=1, Q=1: r2 < r1, consistent (the paper's Example 4.2).
	eff := exec(t, src, 1, 1)
	if inc := eff.Inconsistencies(); len(inc) != 0 {
		t.Fatalf("P=Q=1 run inconsistent: %d", len(inc))
	}
	// P=1, Q=0: r2 < r0 but o2->f points into r1: dangling.
	eff = exec(t, src, 1, 0)
	if inc := eff.Inconsistencies(); len(inc) != 1 {
		t.Fatalf("P=1,Q=0 run has %d inconsistencies, want 1", len(inc))
	}
}

func TestSubregionOrderLeq(t *testing.T) {
	eff := exec(t, rcPrelude+`
int main(void) {
    region_t *a; region_t *b; region_t *c;
    a = rnew(NULL);
    b = rnew(a);
    c = rnew(b);
    return 0;
}`)
	a, b, c := eff.Regions[0], eff.Regions[1], eff.Regions[2]
	if !c.Leq(a) || !c.Leq(b) || !b.Leq(a) {
		t.Fatal("transitive subregion order broken")
	}
	if a.Leq(b) || b.Leq(c) {
		t.Fatal("order inverted")
	}
	if !a.Leq(nil) || !c.Leq(nil) {
		t.Fatal("everything must be <= root")
	}
	if !a.Leq(a) {
		t.Fatal("order not reflexive")
	}
}

func TestAPRInterface(t *testing.T) {
	eff := exec(t, `
typedef struct apr_pool_t apr_pool_t;
extern long apr_pool_create(apr_pool_t **newp, apr_pool_t *parent);
extern void *apr_palloc(apr_pool_t *p, unsigned long size);
extern void apr_pool_destroy(apr_pool_t *p);
struct holder { void *data; };
int main(void) {
    apr_pool_t *pool; apr_pool_t *sub;
    struct holder *h;
    void *d;
    apr_pool_create(&pool, NULL);
    apr_pool_create(&sub, pool);
    h = apr_palloc(pool, 16);
    d = apr_palloc(sub, 16);
    h->data = d;
    apr_pool_destroy(sub);
    return 0;
}`)
	if len(eff.Regions) != 2 || len(eff.Objects) < 2 {
		t.Fatalf("regions=%d objects=%d", len(eff.Regions), len(eff.Objects))
	}
	// h (pool) -> d (sub): pool not <= sub: inconsistent.
	if inc := eff.Inconsistencies(); len(inc) != 1 {
		t.Fatalf("%d inconsistencies, want 1", len(inc))
	}
	// Destroy killed sub but not pool.
	if eff.Regions[1].Alive || !eff.Regions[0].Alive {
		t.Fatal("destroy subtree state wrong")
	}
}

func TestDestroyKillsSubtree(t *testing.T) {
	eff := exec(t, rcPrelude+`
int main(void) {
    region_t *a; region_t *b; region_t *c; region_t *other;
    a = rnew(NULL);
    b = rnew(a);
    c = rnew(b);
    other = rnew(NULL);
    deleteregion(a);
    return 0;
}`)
	if eff.Regions[0].Alive || eff.Regions[1].Alive || eff.Regions[2].Alive {
		t.Fatal("subtree not deleted")
	}
	if !eff.Regions[3].Alive {
		t.Fatal("unrelated region deleted")
	}
}

func TestControlFlowAndArithmetic(t *testing.T) {
	// Branch-dependent region choice: with arg 0 the object lands in
	// the root-parented region and the access is safe; with arg 1 it
	// is inconsistent.
	src := rcPrelude + `
struct obj { struct obj *p; };
int main(int pick) {
    region_t *parent; region_t *childA; region_t *childB;
    region_t *use;
    struct obj *holder; struct obj *inner;
    int i;
    parent = rnew(NULL);
    childA = rnew(parent);
    childB = rnew(NULL);
    use = childA;
    for (i = 0; i < 3; i++) {
        if (pick == 1 && i == 2) use = childB;
    }
    inner = ralloc(parent);
    holder = ralloc(use);
    holder->p = inner;
    return 0;
}`
	if inc := exec(t, src, 0).Inconsistencies(); len(inc) != 0 {
		t.Fatalf("pick=0 inconsistent: %d", len(inc))
	}
	if inc := exec(t, src, 1).Inconsistencies(); len(inc) != 1 {
		t.Fatalf("pick=1 has %d inconsistencies, want 1", len(inc))
	}
}

func TestFunctionPointersInInterp(t *testing.T) {
	eff := exec(t, rcPrelude+`
struct obj { struct obj *p; };
typedef void *(*alloc_fn)(region_t *r);
int main(void) {
    alloc_fn fn;
    region_t *r;
    struct obj *o;
    fn = ralloc;
    r = rnew(NULL);
    o = fn(r);
    return 0;
}`)
	if len(eff.Objects) != 1 {
		t.Fatalf("%d objects via function pointer, want 1", len(eff.Objects))
	}
	if eff.Objects[0].Owner != eff.Regions[0] {
		t.Fatal("function-pointer allocation lost the region")
	}
}

func TestRecursionWithFuel(t *testing.T) {
	src := `
int loop(int n) { return loop(n + 1); }
int main(void) { return loop(0); }`
	f, errs := cminor.Parse("test.c", src)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	info := cminor.Check(f)
	// A depth budget above the fuel bound isolates the fuel path.
	_, err := Run(info, Options{Fuel: 10000, MaxDepth: 1 << 20}, f)
	if !errors.Is(err, ErrFuel) {
		t.Fatalf("infinite recursion returned %v, want ErrFuel", err)
	}
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("fuel error %v does not match ErrBudget", err)
	}
}

func TestCallDepthBudget(t *testing.T) {
	src := `
int loop(int n) { return loop(n + 1); }
int main(void) { return loop(0); }`
	f, errs := cminor.Parse("test.c", src)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	info := cminor.Check(f)
	// Plenty of fuel: the call-depth budget must fire first.
	_, err := Run(info, Options{MaxDepth: 64}, f)
	var be *BudgetError
	if !errors.As(err, &be) || be.Resource != "call-depth" {
		t.Fatalf("deep recursion returned %v, want call-depth BudgetError", err)
	}
	if be.Limit != 64 {
		t.Fatalf("budget limit = %d, want 64", be.Limit)
	}
	if errors.Is(err, ErrFuel) {
		t.Fatal("call-depth error must not match ErrFuel")
	}
	if !errors.Is(err, ErrBudget) {
		t.Fatal("call-depth error must match ErrBudget")
	}
}

func TestRegionDepthBudget(t *testing.T) {
	src := rcPrelude + `
int main(int n) {
    region_t *r;
    int i;
    r = rnew(NULL);
    for (i = 0; i < 100; i++) {
        r = rnew(r);
    }
    return 0;
}`
	f, errs := cminor.Parse("test.c", src)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	info := cminor.Check(f)
	if len(info.Errors) != 0 {
		t.Fatalf("check: %v", info.Errors)
	}
	eff, err := Run(info, Options{MaxRegionDepth: 16}, f)
	var be *BudgetError
	if !errors.As(err, &be) || be.Resource != "region-depth" {
		t.Fatalf("deep nesting returned %v, want region-depth BudgetError", err)
	}
	// The partial effects up to the abort remain observable.
	if len(eff.Regions) != 16 {
		t.Fatalf("%d regions created before the budget, want 16", len(eff.Regions))
	}
	// Under the budget the same program completes.
	if _, err := Run(info, Options{MaxRegionDepth: 1024}, f); err != nil {
		t.Fatalf("nesting under budget failed: %v", err)
	}
}

func TestCleanupRecursionCountsAgainstDepth(t *testing.T) {
	// A cleanup that re-enters user code during killRegion must consume
	// call-depth budget like any other call: a self-destroying cleanup
	// chain terminates with a typed budget error rather than
	// overflowing the Go stack.
	aprDecls := `
typedef struct apr_pool_t apr_pool_t;
typedef long apr_status_t;
typedef apr_status_t (*cleanup_t)(void *data);
extern apr_status_t apr_pool_create(apr_pool_t **newp, apr_pool_t *parent);
extern void apr_pool_destroy(apr_pool_t *p);
extern void apr_pool_cleanup_register(apr_pool_t *p, const void *data, cleanup_t plain_cleanup, cleanup_t child_cleanup);
`
	src := aprDecls + `
apr_pool_t *gp;
apr_status_t boom(void *data) {
    apr_pool_t *sub;
    apr_pool_create(&sub, gp);
    apr_pool_cleanup_register(sub, NULL, boom, NULL);
    apr_pool_destroy(sub);
    return 0;
}
int main(void) {
    apr_pool_t *sub;
    apr_pool_create(&gp, NULL);
    apr_pool_create(&sub, gp);
    apr_pool_cleanup_register(sub, NULL, boom, NULL);
    apr_pool_destroy(sub);
    return 0;
}`
	f, errs := cminor.Parse("test.c", src)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	info := cminor.Check(f)
	if len(info.Errors) != 0 {
		t.Fatalf("check: %v", info.Errors)
	}
	_, err := Run(info, Options{MaxDepth: 64}, f)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("cleanup recursion returned %v, want a budget error", err)
	}
}

func TestStringsAreImmortalTargets(t *testing.T) {
	eff := exec(t, rcPrelude+`
struct obj { char *name; };
int main(void) {
    region_t *r;
    struct obj *o;
    r = rnew(NULL);
    o = ralloc(r);
    o->name = "static";
    return 0;
}`)
	// A region object pointing at a string literal is always safe.
	if inc := eff.Inconsistencies(); len(inc) != 0 {
		t.Fatalf("string target flagged: %d", len(inc))
	}
}

func TestRegionValuedFieldInconsistency(t *testing.T) {
	// φ⁼: an object storing a REGION pointer is inconsistent when its
	// own region has no order with the stored region.
	eff := exec(t, rcPrelude+`
struct ctx { region_t *scratch; };
int main(void) {
    region_t *a; region_t *b;
    struct ctx *c;
    a = rnew(NULL);
    b = rnew(NULL);
    c = ralloc(a);
    c->scratch = b;
    return 0;
}`)
	if inc := eff.Inconsistencies(); len(inc) != 1 {
		t.Fatalf("region-valued field: %d inconsistencies, want 1", len(inc))
	}
}

func TestDoWhileAndBreakContinue(t *testing.T) {
	eff := exec(t, rcPrelude+`
int main(void) {
    int i; int total;
    i = 0; total = 0;
    do {
        i++;
        if (i == 2) continue;
        if (i > 4) break;
        total += i;
    } while (i < 100);
    /* total = 1 + 3 + 4 = 8 */
    if (total != 8) { region_t *r; r = rnew(NULL); }
    return 0;
}`)
	if len(eff.Regions) != 0 {
		t.Fatal("do-while/break/continue arithmetic wrong (region created on failure path)")
	}
}
