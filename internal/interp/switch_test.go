package interp

import "testing"

// The region-creation-on-failure idiom makes interpreter semantics
// observable: a region is created only on the asserted-wrong path.
func TestSwitchSemantics(t *testing.T) {
	src := rcPrelude + `
int pick(int x) {
    int out;
    out = 0;
    switch (x) {
    case 0:
        out = 10;
        break;
    case 1:
    case 2:
        out = 12;   /* shared group */
        break;
    case 3:
        out = 3;    /* falls through */
    case 4:
        out = out + 100;
        break;
    default:
        out = -1;
    }
    return out;
}
int main(int x) {
    int r;
    r = pick(x);
    if (x == 0 && r != 10) { region_t *b; b = rnew(NULL); }
    if (x == 1 && r != 12) { region_t *b; b = rnew(NULL); }
    if (x == 2 && r != 12) { region_t *b; b = rnew(NULL); }
    if (x == 3 && r != 103) { region_t *b; b = rnew(NULL); }
    if (x == 4 && r != 100) { region_t *b; b = rnew(NULL); }
    if (x == 9 && r != -1) { region_t *b; b = rnew(NULL); }
    return r;
}`
	for _, x := range []int64{0, 1, 2, 3, 4, 9} {
		eff, err := run2(t, src, x)
		if err != nil {
			t.Fatalf("x=%d: %v", x, err)
		}
		if len(eff.Regions) != 0 {
			t.Fatalf("x=%d: switch semantics wrong (assert region created)", x)
		}
	}
}

func TestSwitchOverEnumConstants(t *testing.T) {
	eff, err := run2(t, rcPrelude+`
enum kind { CONN, REQ = 7, MISC };
int main(void) {
    int k;
    int got;
    k = REQ;
    got = 0;
    switch (k) {
    case CONN: got = 1; break;
    case REQ:  got = 2; break;
    case MISC: got = 3; break;
    }
    if (got != 2) { region_t *b; b = rnew(NULL); }
    if (MISC != 8) { region_t *b2; b2 = rnew(NULL); }
    return got;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(eff.Regions) != 0 {
		t.Fatal("enum/switch evaluation wrong")
	}
}

func TestSwitchDrivesRegionPlacement(t *testing.T) {
	// A dispatcher placing an object in different regions per opcode:
	// the flow-sensitive interpreter sees exactly one placement per
	// run.
	src := rcPrelude + `
struct obj { struct obj *p; };
int main(int op) {
    region_t *a; region_t *b;
    region_t *target;
    struct obj *holder; struct obj *inner;
    a = rnew(NULL);
    b = rnew(NULL);
    target = a;
    switch (op) {
    case 0: target = a; break;
    case 1: target = b; break;
    }
    inner = ralloc(a);
    holder = ralloc(target);
    holder->p = inner;
    return 0;
}`
	// op=0: same region, consistent.
	eff, err := run2(t, src, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(eff.Inconsistencies()); n != 0 {
		t.Fatalf("op=0: %d inconsistencies", n)
	}
	// op=1: sibling regions, inconsistent.
	eff, err = run2(t, src, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(eff.Inconsistencies()); n != 1 {
		t.Fatalf("op=1: %d inconsistencies, want 1", n)
	}
}
