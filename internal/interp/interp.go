// Package interp is a concrete interpreter for CMinor implementing the
// paper's operational semantics (Figure 4). It executes programs
// flow-sensitively, tracks the three effect relations — p (subregion),
// f (ownership), and σ (access) — exactly as the judgments generate
// them, and decides region lifetime consistency per equation (4.12).
//
// The interpreter is the ground truth against which the static
// analysis's soundness is property-tested: every concrete inconsistent
// object pair must surface as a statically reported pair (on the
// language fragment the analysis supports).
package interp

import (
	"errors"
	"fmt"

	"repro/internal/cminor"
)

// Value is a concrete value: integers, pointers to cells, regions,
// functions, or null.
type Value struct {
	Kind ValueKind
	Int  int64
	// Ptr points at a cell (object field or variable).
	Ptr *Cell
	// Region for region values.
	Region *Region
	// Fn for function designators.
	Fn string
}

// ValueKind discriminates Value.
type ValueKind uint8

// Value kinds.
const (
	NullVal ValueKind = iota
	IntVal
	PtrVal
	RegionVal
	FnVal
)

// Truthy follows C semantics.
func (v Value) Truthy() bool {
	switch v.Kind {
	case IntVal:
		return v.Int != 0
	case NullVal:
		return false
	default:
		return true
	}
}

// Object is a concrete allocated object: a bag of cells indexed by
// byte offset.
type Object struct {
	ID    int
	Owner *Region // nil when allocated with no region (root-like)
	// Site is the source position of the allocating call.
	Site cminor.Pos
	// cells are created lazily per offset.
	cells map[int64]*Cell
	// IsString marks string literal objects.
	IsString bool
	Str      string
	// Freed marks memory reclaimed by apr_pool_clear while the pool
	// handle itself stays alive.
	Freed bool
}

// Cell is one mutable location (an object field or a variable).
type Cell struct {
	Obj *Object // nil for plain variables
	Off int64
	Val Value
}

// Field returns the cell at offset off, creating it as null.
func (o *Object) Field(off int64) *Cell {
	c, ok := o.cells[off]
	if !ok {
		c = &Cell{Obj: o, Off: off}
		o.cells[off] = c
	}
	return c
}

// Region is a concrete region with its parent (nil = the root).
type Region struct {
	ID     int
	Parent *Region
	Site   cminor.Pos
	Alive  bool
}

// Leq reports the subregion partial order r ⊑ other (reflexive
// transitive closure of the parent chain; everything ⊑ root=nil).
func (r *Region) Leq(other *Region) bool {
	if other == nil {
		return true
	}
	for x := r; x != nil; x = x.Parent {
		if x == other {
			return true
		}
	}
	return false
}

// DanglingUse records a dereference of memory whose owner region was
// already deleted — the crash the paper's Section 1 warns about. The
// static analysis prevents these before deployment; the interpreter
// observes them per schedule.
type DanglingUse struct {
	Pos cminor.Pos
	Obj *Object
}

// AccessEdge records one σ tuple: object Src stores a pointer at Off
// to Dst (an object or a region).
type AccessEdge struct {
	Src    *Object
	Off    int64
	DstObj *Object // exactly one of DstObj/DstReg set
	DstReg *Region
}

// Effects are the concrete p, f, σ relations accumulated by a run.
type Effects struct {
	Regions []*Region
	Objects []*Object
	Access  []AccessEdge
	// Dangling lists the use-after-delete events observed during the
	// run (empty for programs whose region placement is consistent
	// and whose accesses respect deletion order).
	Dangling []DanglingUse
}

// Inconsistency is one concrete violation of (4.12): the owner regions
// of an access pair have no subregion partial order.
type Inconsistency struct {
	Edge AccessEdge
	// SrcRegion / DstRegion are the owners witnessing x ⋠ y.
	SrcRegion, DstRegion *Region
}

// ownerOf maps an object to its owner region (nil = root).
func ownerOf(o *Object) *Region { return o.Owner }

// Inconsistencies applies (4.12) to the accumulated effects: for every
// access tuple, the holder's region must be ⊑ the pointee's region
// (with φ⁼ making a region its own pointee set member).
func (e *Effects) Inconsistencies() []Inconsistency {
	var out []Inconsistency
	for _, edge := range e.Access {
		x := ownerOf(edge.Src)
		var y *Region
		if edge.DstReg != nil {
			y = edge.DstReg
		} else if edge.DstObj != nil {
			if edge.DstObj.Owner == nil && !edge.DstObj.IsString {
				// Non-region-allocated target: immortal, always safe.
				continue
			}
			if edge.DstObj.IsString {
				continue
			}
			y = ownerOf(edge.DstObj)
		}
		if x == nil {
			// Holder not region-allocated: outside the formalism's σ.
			continue
		}
		if !x.Leq(y) {
			out = append(out, Inconsistency{Edge: edge, SrcRegion: x, DstRegion: y})
		}
	}
	return out
}

// Options controls a run.
type Options struct {
	Entry string // default "main"
	// Args are integer arguments passed to the entry function
	// (drives branches in property tests).
	Args []int64
	// Fuel bounds executed statements and expressions; exceeding it
	// aborts the run with a fuel BudgetError (default 1 << 20).
	Fuel int
	// MaxObjects bounds allocation count (default 1 << 16).
	MaxObjects int
	// MaxDepth bounds the interpreter call-stack depth — CMinor call
	// frames plus cleanup callbacks run recursively by region teardown
	// — so generated deep recursion aborts with a typed BudgetError
	// instead of overflowing the Go stack (default 2048).
	MaxDepth int
	// MaxRegionDepth bounds region-tree nesting: creating a region
	// whose parent chain is already this long fails with a BudgetError
	// (default 1 << 14). Deep nesting is quadratic to tear down
	// (killRegion walks ancestor chains), so the oracle's call-depth
	// inflation cannot turn the interpreter into the hang.
	MaxRegionDepth int
}

// BudgetError reports an exceeded execution budget. It is the typed
// abort the differential oracle relies on: a budgeted run ends with a
// classifiable error instead of hanging or overflowing the stack.
type BudgetError struct {
	// Resource is the exhausted budget: "fuel", "objects",
	// "call-depth", or "region-depth".
	Resource string
	// Limit is the configured bound that was hit.
	Limit int
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("interp: %s budget exceeded (limit %d)", e.Resource, e.Limit)
}

// Is matches ErrBudget (any exhausted budget) and any *BudgetError
// with the same Resource, so errors.Is(err, ErrFuel) holds for every
// fuel exhaustion regardless of the configured limit.
func (e *BudgetError) Is(target error) bool {
	if target == ErrBudget {
		return true
	}
	t, ok := target.(*BudgetError)
	return ok && t.Resource == e.Resource
}

// ErrBudget matches every BudgetError via errors.Is.
var ErrBudget = errors.New("interp: budget exceeded")

// ErrFuel matches fuel exhaustion via errors.Is (and remains the
// historical name for the statement-budget error).
var ErrFuel error = &BudgetError{Resource: "fuel"}

// Machine executes one program.
type Machine struct {
	info  *cminor.Info
	files []*cminor.File
	opts  Options

	globals map[string]*Cell
	effects *Effects
	fuel    int
	depth   int

	strings  map[string]*Object
	backings map[*Cell]*Object

	// cleanups holds the callbacks registered per region via
	// apr_pool_cleanup_register; they run (reverse order, children
	// first) when the region is cleared or destroyed.
	cleanups map[*Region][]cleanupEntry
}

type cleanupEntry struct {
	fn   string
	data Value
}

// Run interprets the program and returns the accumulated effects.
func Run(info *cminor.Info, opts Options, files ...*cminor.File) (*Effects, error) {
	if opts.Entry == "" {
		opts.Entry = "main"
	}
	if opts.Fuel == 0 {
		opts.Fuel = 1 << 20
	}
	if opts.MaxObjects == 0 {
		opts.MaxObjects = 1 << 16
	}
	if opts.MaxDepth == 0 {
		opts.MaxDepth = 2048
	}
	if opts.MaxRegionDepth == 0 {
		opts.MaxRegionDepth = 1 << 14
	}
	m := &Machine{
		info:     info,
		files:    files,
		opts:     opts,
		globals:  make(map[string]*Cell),
		effects:  &Effects{},
		fuel:     opts.Fuel,
		strings:  make(map[string]*Object),
		cleanups: make(map[*Region][]cleanupEntry),
	}
	for name := range info.Globals {
		m.globals[name] = &Cell{}
	}
	// Global initializers.
	for _, f := range files {
		for _, d := range f.Decls {
			if vd, ok := d.(*cminor.VarDecl); ok && vd.Init != nil {
				v, err := m.eval(nil, vd.Init)
				if err != nil {
					return m.effects, err
				}
				m.globals[vd.Name].Val = v
			}
		}
	}
	entry := info.Funcs[opts.Entry]
	if entry == nil || entry.Decl == nil || entry.Decl.Body == nil {
		return m.effects, fmt.Errorf("interp: entry %q not defined", opts.Entry)
	}
	args := make([]Value, len(entry.Decl.Params))
	for i := range args {
		if i < len(opts.Args) {
			args[i] = Value{Kind: IntVal, Int: opts.Args[i]}
		}
	}
	_, err := m.call(opts.Entry, args, cminor.Pos{})
	return m.effects, err
}

// frame is one activation record.
type frame struct {
	fn     *cminor.FuncDecl
	locals map[string]*Cell
	ret    Value
	done   bool // a return executed
	brk    bool
	cont   bool
}

func (m *Machine) burn() error {
	m.fuel--
	if m.fuel <= 0 {
		return &BudgetError{Resource: "fuel", Limit: m.opts.Fuel}
	}
	return nil
}

func (m *Machine) newRegion(parent *Region, pos cminor.Pos) (*Region, error) {
	depth := 0
	for x := parent; x != nil; x = x.Parent {
		depth++
	}
	if depth >= m.opts.MaxRegionDepth {
		return nil, &BudgetError{Resource: "region-depth", Limit: m.opts.MaxRegionDepth}
	}
	r := &Region{ID: len(m.effects.Regions), Parent: parent, Site: pos, Alive: true}
	m.effects.Regions = append(m.effects.Regions, r)
	return r, nil
}

func (m *Machine) newObject(owner *Region, pos cminor.Pos) (*Object, error) {
	if len(m.effects.Objects) >= m.opts.MaxObjects {
		return nil, &BudgetError{Resource: "objects", Limit: m.opts.MaxObjects}
	}
	o := &Object{ID: len(m.effects.Objects), Owner: owner, Site: pos, cells: make(map[int64]*Cell)}
	m.effects.Objects = append(m.effects.Objects, o)
	return o, nil
}

func (m *Machine) stringObject(s string, pos cminor.Pos) *Object {
	if o, ok := m.strings[s]; ok {
		return o
	}
	o := &Object{ID: len(m.effects.Objects), Site: pos, cells: make(map[int64]*Cell), IsString: true, Str: s}
	m.effects.Objects = append(m.effects.Objects, o)
	m.strings[s] = o
	return o
}
