package interp

import (
	"testing"

	"repro/internal/cminor"
)

func run2(t *testing.T, src string, args ...int64) (*Effects, error) {
	t.Helper()
	f, errs := cminor.Parse("t.c", src)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	info := cminor.Check(f)
	if len(info.Errors) != 0 {
		t.Fatalf("check: %v", info.Errors)
	}
	return Run(info, Options{Args: args}, f)
}

func TestGlobalsAndInitializers(t *testing.T) {
	eff, err := run2(t, rcPrelude+`
int counter = 5;
region_t *shared;
int main(void) {
    shared = rnew(NULL);
    counter = counter + 1;
    if (counter != 6) { region_t *x; x = rnew(NULL); }
    return counter;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(eff.Regions) != 1 {
		t.Fatalf("%d regions (initializer arithmetic wrong?)", len(eff.Regions))
	}
}

func TestPointerEqualityAndNullChecks(t *testing.T) {
	eff, err := run2(t, rcPrelude+`
int main(void) {
    region_t *r;
    void *a; void *b;
    r = rnew(NULL);
    a = ralloc(r);
    b = a;
    if (a != b) { region_t *bad; bad = rnew(NULL); }
    if (a == NULL) { region_t *bad2; bad2 = rnew(NULL); }
    b = NULL;
    if (b) { region_t *bad3; bad3 = rnew(NULL); }
    return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(eff.Regions) != 1 {
		t.Fatalf("pointer equality semantics wrong: %d regions", len(eff.Regions))
	}
}

func TestTernaryAndShortCircuit(t *testing.T) {
	eff, err := run2(t, rcPrelude+`
int touch(region_t **out) {
    *out = rnew(NULL);
    return 1;
}
int main(int c) {
    region_t *r;
    int x;
    r = NULL;
    x = c ? 1 : 2;
    if (x != 2) { region_t *bad; bad = rnew(NULL); }
    /* short circuit: touch must NOT run */
    if (c && touch(&r)) { }
    if (r) { region_t *bad2; bad2 = rnew(NULL); }
    return 0;
}`, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(eff.Regions) != 0 {
		t.Fatalf("short-circuit broken: %d regions created", len(eff.Regions))
	}
}

func TestStructValueLocalsWithBacking(t *testing.T) {
	eff, err := run2(t, rcPrelude+`
struct pair { void *a; void *b; };
int main(void) {
    region_t *r;
    struct pair p;
    struct pair *pp;
    r = rnew(NULL);
    p.a = ralloc(r);
    pp = &p;
    pp->b = ralloc(r);
    if (p.b == NULL) { region_t *bad; bad = rnew(NULL); }
    return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(eff.Regions) != 1 {
		t.Fatalf("struct backing broken: %d regions", len(eff.Regions))
	}
	// Stores into the local struct's backing are not σ sources (the
	// backing is not region-allocated).
	if inc := eff.Inconsistencies(); len(inc) != 0 {
		t.Fatalf("local struct store misclassified: %d", len(inc))
	}
}

func TestUnknownExternReturnsZero(t *testing.T) {
	eff, err := run2(t, rcPrelude+`
extern int mystery(int x);
int main(void) {
    if (mystery(3)) { region_t *bad; bad = rnew(NULL); }
    return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(eff.Regions) != 0 {
		t.Fatal("unknown extern should return 0")
	}
}

func TestSvnPoolCreateModel(t *testing.T) {
	eff, err := run2(t, `
typedef struct apr_pool_t apr_pool_t;
extern apr_pool_t *svn_pool_create(apr_pool_t *parent);
extern void svn_pool_destroy(apr_pool_t *p);
int main(void) {
    apr_pool_t *a; apr_pool_t *b;
    a = svn_pool_create(NULL);
    b = svn_pool_create(a);
    svn_pool_destroy(a);
    return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(eff.Regions) != 2 {
		t.Fatalf("%d regions", len(eff.Regions))
	}
	if eff.Regions[1].Parent != eff.Regions[0] {
		t.Fatal("svn wrapper parent lost")
	}
	if eff.Regions[1].Alive {
		t.Fatal("child survived parent destroy")
	}
}

func TestMallocObjectsImmortal(t *testing.T) {
	eff, err := run2(t, rcPrelude+`
extern void *malloc(unsigned long n);
struct obj { void *p; };
int main(void) {
    region_t *r;
    struct obj *holder;
    void *heapmem;
    r = rnew(NULL);
    holder = ralloc(r);
    heapmem = malloc(8);
    holder->p = heapmem;   /* region object -> malloc memory: safe */
    return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if inc := eff.Inconsistencies(); len(inc) != 0 {
		t.Fatalf("malloc target flagged: %d", len(inc))
	}
}

func TestEntryNotDefined(t *testing.T) {
	f, _ := cminor.Parse("t.c", `extern int lib(void);`)
	info := cminor.Check(f)
	if _, err := Run(info, Options{}, f); err == nil {
		t.Fatal("missing main accepted")
	}
}

func TestObjectLimit(t *testing.T) {
	f, _ := cminor.Parse("t.c", rcPrelude+`
int main(void) {
    region_t *r;
    int i;
    r = rnew(NULL);
    for (i = 0; i < 1000; i++) { void *p; p = ralloc(r); }
    return 0;
}`)
	info := cminor.Check(f)
	_, err := Run(info, Options{MaxObjects: 100}, f)
	if err == nil {
		t.Fatal("object limit not enforced")
	}
}

func TestCleanupCallbacksRunOnDestroy(t *testing.T) {
	// Cleanups run children-first, reverse registration order (APR's
	// teardown); each cleanup call here creates a region in a fresh
	// global slot so the order is observable.
	eff, err := run2(t, `
typedef struct apr_pool_t apr_pool_t;
typedef long (*cleanup_t)(void *data);
extern long apr_pool_create(apr_pool_t **newp, apr_pool_t *parent);
extern void apr_pool_destroy(apr_pool_t *p);
extern void apr_pool_cleanup_register(apr_pool_t *p, const void *data, cleanup_t plain, cleanup_t child);

int order;
int first_seen;
int second_seen;
int child_seen;

long cl_parent_a(void *d) { order++; first_seen = order; return 0; }
long cl_parent_b(void *d) { order++; second_seen = order; return 0; }
long cl_child(void *d) { order++; child_seen = order; return 0; }

int main(void) {
    apr_pool_t *pool; apr_pool_t *sub;
    apr_pool_create(&pool, NULL);
    apr_pool_create(&sub, pool);
    apr_pool_cleanup_register(pool, NULL, cl_parent_a, cl_parent_a);
    apr_pool_cleanup_register(pool, NULL, cl_parent_b, cl_parent_b);
    apr_pool_cleanup_register(sub, NULL, cl_child, cl_child);
    apr_pool_destroy(pool);
    /* expected order: child (1), parent_b (2), parent_a (3) */
    if (child_seen != 1 || second_seen != 2 || first_seen != 3) {
        apr_pool_t *assertfail;
        apr_pool_create(&assertfail, NULL);
    }
    return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(eff.Regions) != 2 {
		t.Fatalf("cleanup ordering wrong: %d regions (assert region created)", len(eff.Regions))
	}
}

func TestCleanupReceivesData(t *testing.T) {
	// The Figure 12 Apache pattern: the cleanup closes the resource it
	// was registered with.
	eff, err := run2(t, `
typedef struct apr_pool_t apr_pool_t;
typedef long (*cleanup_t)(void *data);
extern long apr_pool_create(apr_pool_t **newp, apr_pool_t *parent);
extern void *apr_palloc(apr_pool_t *p, unsigned long n);
extern void apr_pool_destroy(apr_pool_t *p);
extern void apr_pool_cleanup_register(apr_pool_t *p, const void *data, cleanup_t plain, cleanup_t child);

struct parser { int open; };
int closed_ok;

long cleanup_parser(void *data) {
    struct parser *ps;
    ps = data;
    if (ps->open == 1) closed_ok = 1;
    ps->open = 0;
    return 0;
}

int main(void) {
    apr_pool_t *pool;
    struct parser *ps;
    apr_pool_create(&pool, NULL);
    ps = apr_palloc(pool, sizeof(struct parser));
    ps->open = 1;
    apr_pool_cleanup_register(pool, ps, cleanup_parser, cleanup_parser);
    apr_pool_destroy(pool);
    if (closed_ok != 1) { apr_pool_t *assertfail; apr_pool_create(&assertfail, NULL); }
    return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(eff.Regions) != 1 {
		t.Fatal("cleanup did not receive its data argument")
	}
	// Cleanup accesses run before the memory dies: no dangling events.
	if len(eff.Dangling) != 0 {
		t.Fatalf("cleanup access recorded %d dangling uses", len(eff.Dangling))
	}
}

func TestClearKeepsPoolUsableButFreesMemory(t *testing.T) {
	eff, err := run2(t, `
typedef struct apr_pool_t apr_pool_t;
extern long apr_pool_create(apr_pool_t **newp, apr_pool_t *parent);
extern void *apr_palloc(apr_pool_t *p, unsigned long n);
extern void apr_pool_clear(apr_pool_t *p);
struct box { int v; };
int main(void) {
    apr_pool_t *pool; apr_pool_t *sub;
    struct box *old;
    struct box *fresh;
    apr_pool_create(&pool, NULL);
    apr_pool_create(&sub, pool);
    old = apr_palloc(pool, sizeof(struct box));
    apr_pool_clear(pool);
    fresh = apr_palloc(pool, sizeof(struct box));  /* pool still usable */
    fresh->v = 1;
    old->v = 2;                                    /* dangling: cleared */
    return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	// Pool alive, sub destroyed.
	if !eff.Regions[0].Alive {
		t.Fatal("apr_pool_clear destroyed the pool itself")
	}
	if eff.Regions[1].Alive {
		t.Fatal("apr_pool_clear did not destroy the child pool")
	}
	if len(eff.Dangling) != 1 {
		t.Fatalf("%d dangling uses, want 1 (the cleared old->v)", len(eff.Dangling))
	}
}

func TestArgcDrivesLoop(t *testing.T) {
	src := rcPrelude + `
int main(int argc) {
    int i;
    for (i = 0; i < argc; i++) { region_t *r; r = rnew(NULL); }
    return 0;
}`
	for _, n := range []int64{0, 1, 5} {
		eff, err := run2(t, src, n)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(eff.Regions)) != n {
			t.Fatalf("argc=%d created %d regions", n, len(eff.Regions))
		}
	}
}
