package interp

import (
	"testing"

	"repro/internal/cminor"
	"repro/internal/core"
)

func TestDanglingUseDetected(t *testing.T) {
	eff := exec(t, rcPrelude+`
struct obj { int v; };
int main(void) {
    region_t *r;
    struct obj *o;
    int x;
    r = rnew(NULL);
    o = ralloc(r);
    o->v = 1;
    deleteregion(r);
    x = o->v;       /* use after delete */
    return x;
}`)
	if len(eff.Dangling) != 1 {
		t.Fatalf("%d dangling uses, want 1", len(eff.Dangling))
	}
	if !eff.Dangling[0].Pos.IsValid() {
		t.Fatal("dangling use has no source position")
	}
	if eff.Dangling[0].Obj.Owner == nil || eff.Dangling[0].Obj.Owner.Alive {
		t.Fatal("dangling use should reference a deleted owner region")
	}
}

func TestNoDanglingUseWhenConsistent(t *testing.T) {
	eff := exec(t, rcPrelude+`
struct obj { int v; };
int main(void) {
    region_t *r; region_t *sub;
    struct obj *conn; struct obj *req;
    r = rnew(NULL);
    sub = rnew(r);
    conn = ralloc(r);
    req = ralloc(sub);
    req->v = conn->v;
    deleteregion(sub);
    conn->v = 2;       /* conn's region still alive */
    deleteregion(r);
    return 0;
}`)
	if len(eff.Dangling) != 0 {
		t.Fatalf("consistent program recorded %d dangling uses", len(eff.Dangling))
	}
}

// TestSchedulingSensitiveBug reproduces the paper's Section 1 point:
// in multi-threaded programs the deletion order of regions varies with
// scheduling, so a dynamic test may never see the crash, while the
// static analysis reports the inconsistency regardless.
func TestSchedulingSensitiveBug(t *testing.T) {
	// "schedule" stands for the nondeterministic interleaving: it
	// decides which of two sibling regions is deleted first.
	src := rcPrelude + `
struct obj { struct obj *peer; int v; };
int main(int schedule) {
    region_t *ra; region_t *rb;
    struct obj *a; struct obj *b;
    int x;
    ra = rnew(NULL);
    rb = rnew(NULL);
    a = ralloc(ra);
    b = ralloc(rb);
    a->peer = b;                   /* cross-region pointer */
    if (schedule) {
        deleteregion(rb);          /* pointee dies first... */
        x = a->peer->v;            /* ...crash on this schedule */
        deleteregion(ra);
    } else {
        x = a->peer->v;            /* fine on this schedule */
        deleteregion(ra);
        deleteregion(rb);
    }
    return x;
}`
	f, errs := cminor.Parse("sched.c", src)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	info := cminor.Check(f)
	if len(info.Errors) != 0 {
		t.Fatalf("check: %v", info.Errors)
	}
	// Dynamic testing under the lucky schedule sees nothing...
	eff, err := Run(info, Options{Args: []int64{0}}, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(eff.Dangling) != 0 {
		t.Fatalf("lucky schedule should not crash, got %d dangling uses", len(eff.Dangling))
	}
	// ...the unlucky schedule crashes...
	eff, err = Run(info, Options{Args: []int64{1}}, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(eff.Dangling) == 0 {
		t.Fatal("unlucky schedule should observe the dangling use")
	}
	// ...and the static analysis reports the inconsistency without
	// running anything.
	a, err := core.Analyze(core.Options{}, info, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Report.Warnings) == 0 {
		t.Fatal("static analysis missed the scheduling-sensitive bug")
	}
}
