package interp

import (
	"fmt"
	"sort"

	"repro/internal/cminor"
)

// regionDepth counts ancestors (used to order teardown).
func regionDepth(r *Region) int {
	d := 0
	for x := r.Parent; x != nil; x = x.Parent {
		d++
	}
	return d
}

// call invokes a function by name with evaluated arguments. Undefined
// functions dispatch to the extern models (the region APIs, malloc,
// and a default no-op).
func (m *Machine) call(name string, args []Value, pos cminor.Pos) (Value, error) {
	if err := m.burn(); err != nil {
		return Value{}, err
	}
	// The depth budget covers every re-entry path into the Go call
	// stack: direct CMinor recursion and cleanup callbacks invoked
	// (recursively, via extern → killRegion) during region teardown.
	m.depth++
	defer func() { m.depth-- }()
	if m.depth > m.opts.MaxDepth {
		return Value{}, &BudgetError{Resource: "call-depth", Limit: m.opts.MaxDepth}
	}
	fo := m.info.Funcs[name]
	if fo == nil || fo.Decl == nil || fo.Decl.Body == nil {
		return m.extern(name, args, pos)
	}
	fr := &frame{fn: fo.Decl, locals: make(map[string]*Cell)}
	for i, p := range fo.Decl.Params {
		pname := p.Name
		if pname == "" {
			pname = fmt.Sprintf("__arg%d", i)
		}
		c := &Cell{}
		if i < len(args) {
			c.Val = args[i]
		}
		fr.locals[pname] = c
	}
	if err := m.execBlock(fr, fo.Decl.Body); err != nil {
		return Value{}, err
	}
	return fr.ret, nil
}

// extern models the runtime functions the analysis knows about.
func (m *Machine) extern(name string, args []Value, pos cminor.Pos) (Value, error) {
	regionArg := func(i int) *Region {
		if i < len(args) && args[i].Kind == RegionVal {
			return args[i].Region
		}
		return nil
	}
	switch name {
	case "rnew", "newsubregion":
		r, err := m.newRegion(regionArg(0), pos)
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: RegionVal, Region: r}, nil
	case "newregion":
		r, err := m.newRegion(nil, pos)
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: RegionVal, Region: r}, nil
	case "ralloc", "rstralloc", "rstrdup", "rarrayalloc":
		o, err := m.newObject(regionArg(0), pos)
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: PtrVal, Ptr: o.Field(0)}, nil
	case "apr_pool_create", "apr_pool_create_ex":
		r, err := m.newRegion(regionArg(1), pos)
		if err != nil {
			return Value{}, err
		}
		if len(args) > 0 && args[0].Kind == PtrVal && args[0].Ptr != nil {
			m.storeCell(args[0].Ptr, Value{Kind: RegionVal, Region: r})
		}
		return Value{Kind: IntVal, Int: 0}, nil
	case "svn_pool_create":
		r, err := m.newRegion(regionArg(0), pos)
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: RegionVal, Region: r}, nil
	case "apr_palloc", "apr_pcalloc", "apr_pstrdup", "apr_pstrndup",
		"apr_psprintf", "apr_pmemdup", "apr_hash_make", "apr_array_make":
		r := regionArg(0)
		o, err := m.newObject(r, pos)
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: PtrVal, Ptr: o.Field(0)}, nil
	case "apr_pool_cleanup_register":
		// (pool, data, plain_cleanup, child_cleanup): remember the
		// plain cleanup; it runs at clear/destroy.
		if r := regionArg(0); r != nil && len(args) > 2 && args[2].Kind == FnVal {
			var data Value
			if len(args) > 1 {
				data = args[1]
			}
			m.cleanups[r] = append(m.cleanups[r], cleanupEntry{fn: args[2].Fn, data: data})
		}
		return Value{Kind: IntVal, Int: 0}, nil
	case "apr_pool_destroy", "svn_pool_destroy", "deleteregion":
		if r := regionArg(0); r != nil {
			if err := m.killRegion(r, true); err != nil {
				return Value{}, err
			}
		}
		return Value{Kind: IntVal, Int: 0}, nil
	case "apr_pool_clear", "svn_pool_clear":
		// Clearing runs cleanups and destroys children but keeps the
		// pool itself usable.
		if r := regionArg(0); r != nil {
			if err := m.killRegion(r, false); err != nil {
				return Value{}, err
			}
		}
		return Value{Kind: IntVal, Int: 0}, nil
	case "malloc", "calloc", "realloc", "strdup":
		o, err := m.newObject(nil, pos)
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: PtrVal, Ptr: o.Field(0)}, nil
	}
	// Unknown extern: no effect, returns 0.
	return Value{Kind: IntVal, Int: 0}, nil
}

// killRegion tears down a region's subtree, running registered
// cleanups children-first, each in reverse registration order — APR's
// teardown order. destroySelf distinguishes apr_pool_destroy (the
// region dies) from apr_pool_clear (the region stays usable).
func (m *Machine) killRegion(r *Region, destroySelf bool) error {
	var doomed []*Region
	for _, sub := range m.effects.Regions {
		if !sub.Alive || sub == r {
			continue
		}
		for x := sub.Parent; x != nil; x = x.Parent {
			if x == r {
				doomed = append(doomed, sub)
				break
			}
		}
	}
	// Children first: deeper regions tear down before their ancestors;
	// the deleted region itself goes last.
	sort.SliceStable(doomed, func(i, j int) bool {
		return regionDepth(doomed[i]) > regionDepth(doomed[j])
	})
	doomed = append(doomed, r)
	// Cleanups run while the memory is still alive (APR frees after);
	// only then does the subtree die.
	for _, d := range doomed {
		entries := m.cleanups[d]
		delete(m.cleanups, d)
		for i := len(entries) - 1; i >= 0; i-- {
			if _, err := m.call(entries[i].fn, []Value{entries[i].data}, cminor.Pos{}); err != nil {
				return err
			}
		}
	}
	doomedSet := make(map[*Region]bool, len(doomed))
	for _, d := range doomed {
		doomedSet[d] = true
		if d == r && !destroySelf {
			continue
		}
		d.Alive = false
	}
	// All allocations in the subtree are reclaimed either way.
	for _, o := range m.effects.Objects {
		if o.Owner != nil && doomedSet[o.Owner] {
			o.Freed = true
		}
	}
	return nil
}

// noteUse records a use-after-delete event when the cell lives in an
// object whose owner region has been destroyed.
func (m *Machine) noteUse(c *Cell, pos cminor.Pos) *Cell {
	if c != nil && c.Obj != nil && (c.Obj.Freed ||
		(c.Obj.Owner != nil && !c.Obj.Owner.Alive)) {
		m.effects.Dangling = append(m.effects.Dangling, DanglingUse{Pos: pos, Obj: c.Obj})
	}
	return c
}

// storeCell writes a value into a cell, recording σ tuples for stores
// of pointers/regions into region-allocated objects — the judgment
// (4.6) of Figure 4.
func (m *Machine) storeCell(c *Cell, v Value) {
	c.Val = v
	if c.Obj == nil {
		return
	}
	edge := AccessEdge{Src: c.Obj, Off: c.Off}
	switch v.Kind {
	case PtrVal:
		if v.Ptr == nil || v.Ptr.Obj == nil {
			return
		}
		edge.DstObj = v.Ptr.Obj
	case RegionVal:
		edge.DstReg = v.Region
	default:
		return
	}
	m.effects.Access = append(m.effects.Access, edge)
}

// --- statements ---

func (m *Machine) execBlock(fr *frame, b *cminor.Block) error {
	for _, s := range b.Stmts {
		if err := m.exec(fr, s); err != nil {
			return err
		}
		if fr.done || fr.brk || fr.cont {
			return nil
		}
	}
	return nil
}

func (m *Machine) exec(fr *frame, s cminor.Stmt) error {
	if err := m.burn(); err != nil {
		return err
	}
	switch s := s.(type) {
	case *cminor.Block:
		return m.execBlock(fr, s)
	case *cminor.DeclStmt:
		c := &Cell{}
		fr.locals[s.Decl.Name] = c
		if s.Decl.Init != nil {
			v, err := m.eval(fr, s.Decl.Init)
			if err != nil {
				return err
			}
			c.Val = v
		}
		return nil
	case *cminor.ExprStmt:
		_, err := m.eval(fr, s.X)
		return err
	case *cminor.If:
		c, err := m.eval(fr, s.Cond)
		if err != nil {
			return err
		}
		if c.Truthy() {
			return m.exec(fr, s.Then)
		}
		if s.Else != nil {
			return m.exec(fr, s.Else)
		}
		return nil
	case *cminor.While:
		for {
			if !s.DoWhile {
				c, err := m.eval(fr, s.Cond)
				if err != nil {
					return err
				}
				if !c.Truthy() {
					return nil
				}
			}
			if err := m.exec(fr, s.Body); err != nil {
				return err
			}
			if fr.done {
				return nil
			}
			if fr.brk {
				fr.brk = false
				return nil
			}
			fr.cont = false
			if s.DoWhile {
				c, err := m.eval(fr, s.Cond)
				if err != nil {
					return err
				}
				if !c.Truthy() {
					return nil
				}
			}
		}
	case *cminor.For:
		if s.Init != nil {
			if err := m.exec(fr, s.Init); err != nil {
				return err
			}
		}
		for {
			if s.Cond != nil {
				c, err := m.eval(fr, s.Cond)
				if err != nil {
					return err
				}
				if !c.Truthy() {
					return nil
				}
			}
			if err := m.exec(fr, s.Body); err != nil {
				return err
			}
			if fr.done {
				return nil
			}
			if fr.brk {
				fr.brk = false
				return nil
			}
			fr.cont = false
			if s.Post != nil {
				if _, err := m.eval(fr, s.Post); err != nil {
					return err
				}
			}
		}
	case *cminor.Switch:
		cond, err := m.eval(fr, s.Cond)
		if err != nil {
			return err
		}
		// Find the matching case (or default), then execute with C
		// fallthrough semantics until a break or the end.
		start := -1
		defaultIdx := -1
		for i, cs := range s.Cases {
			if cs.Default {
				defaultIdx = i
				continue
			}
			for _, ve := range cs.Values {
				v, err := m.eval(fr, ve)
				if err != nil {
					return err
				}
				if valueEq(cond, v) {
					start = i
					break
				}
			}
			if start >= 0 {
				break
			}
		}
		if start < 0 {
			start = defaultIdx
		}
		if start < 0 {
			return nil
		}
		for i := start; i < len(s.Cases); i++ {
			for _, st := range s.Cases[i].Body {
				if err := m.exec(fr, st); err != nil {
					return err
				}
				if fr.done || fr.cont {
					return nil
				}
				if fr.brk {
					fr.brk = false
					return nil
				}
			}
		}
		return nil
	case *cminor.Return:
		if s.X != nil {
			v, err := m.eval(fr, s.X)
			if err != nil {
				return err
			}
			fr.ret = v
		}
		fr.done = true
		return nil
	case *cminor.Break:
		fr.brk = true
		return nil
	case *cminor.Continue:
		fr.cont = true
		return nil
	case *cminor.Empty:
		return nil
	}
	return fmt.Errorf("interp: unsupported statement at %v", cminor.StmtPos(s))
}

// --- expressions ---

// lvalue resolves an assignable expression to its cell.
func (m *Machine) lvalue(fr *frame, e cminor.Expr) (*Cell, error) {
	switch e := e.(type) {
	case *cminor.Ident:
		return m.varCell(fr, e.Name)
	case *cminor.Unary:
		if e.Op == cminor.Star {
			v, err := m.eval(fr, e.X)
			if err != nil {
				return nil, err
			}
			if v.Kind != PtrVal || v.Ptr == nil {
				return &Cell{}, nil // tolerate wild derefs: scratch cell
			}
			return m.noteUse(v.Ptr, e.Pos), nil
		}
	case *cminor.FieldAccess:
		fi, ok := m.info.Fields[e]
		off := int64(0)
		if ok {
			off = fi.Field.Offset
		}
		if e.Arrow {
			v, err := m.eval(fr, e.X)
			if err != nil {
				return nil, err
			}
			if v.Kind != PtrVal || v.Ptr == nil {
				return &Cell{}, nil
			}
			if v.Ptr.Obj != nil {
				return m.noteUse(v.Ptr.Obj.Field(v.Ptr.Off+off), e.Pos), nil
			}
			return v.Ptr, nil
		}
		inner, err := m.lvalue(fr, e.X)
		if err != nil {
			return nil, err
		}
		if inner.Obj != nil {
			return inner.Obj.Field(inner.Off + off), nil
		}
		// Struct-valued variable: give it backing storage.
		backing, err := m.backingFor(inner)
		if err != nil {
			return nil, err
		}
		return backing.Field(off), nil
	case *cminor.Index:
		v, err := m.eval(fr, e.X)
		if err != nil {
			return nil, err
		}
		if _, err := m.eval(fr, e.I); err != nil {
			return nil, err
		}
		if v.Kind == PtrVal && v.Ptr != nil {
			return v.Ptr, nil // index-insensitive, like the analysis
		}
		return &Cell{}, nil
	case *cminor.Cast:
		return m.lvalue(fr, e.X)
	}
	return &Cell{}, nil
}

// backingFor associates a variable cell with a lazily-created storage
// object (for & and struct-typed locals).
func (m *Machine) backingFor(c *Cell) (*Object, error) {
	if c.Obj != nil {
		return c.Obj, nil
	}
	if m.backings == nil {
		m.backings = make(map[*Cell]*Object)
	}
	if o, ok := m.backings[c]; ok {
		return o, nil
	}
	o, err := m.newObject(nil, cminor.Pos{})
	if err != nil {
		return nil, err
	}
	// Migrate the current value into the storage's first cell.
	o.Field(0).Val = c.Val
	m.backings[c] = o
	return o, nil
}

// varCell returns the cell of a variable, indirecting through backing
// storage when the variable has any.
func (m *Machine) varCell(fr *frame, name string) (*Cell, error) {
	var c *Cell
	if fr != nil {
		if lc, ok := fr.locals[name]; ok {
			c = lc
		}
	}
	if c == nil {
		if gc, ok := m.globals[name]; ok {
			c = gc
		}
	}
	if c == nil {
		// Function designator or unknown name; handled by eval.
		return nil, fmt.Errorf("interp: no cell for %q", name)
	}
	if m.backings != nil {
		if o, ok := m.backings[c]; ok {
			return o.Field(0), nil
		}
	}
	return c, nil
}

func (m *Machine) eval(fr *frame, e cminor.Expr) (Value, error) {
	if err := m.burn(); err != nil {
		return Value{}, err
	}
	switch e := e.(type) {
	case *cminor.Ident:
		if c, err := m.varCell(fr, e.Name); err == nil {
			return c.Val, nil
		}
		if ec, ok := m.info.Enums[e.Name]; ok {
			return Value{Kind: IntVal, Int: ec.Value}, nil
		}
		if _, ok := m.info.Funcs[e.Name]; ok {
			return Value{Kind: FnVal, Fn: e.Name}, nil
		}
		return Value{}, nil
	case *cminor.IntLit:
		return Value{Kind: IntVal, Int: e.V}, nil
	case *cminor.StrLit:
		o := m.stringObject(e.V, e.Pos)
		return Value{Kind: PtrVal, Ptr: o.Field(0)}, nil
	case *cminor.Null:
		return Value{Kind: NullVal}, nil
	case *cminor.Unary:
		return m.evalUnary(fr, e)
	case *cminor.Postfix:
		c, err := m.lvalue(fr, e.X)
		if err != nil {
			return Value{}, err
		}
		old := c.Val
		delta := int64(1)
		if e.Op == cminor.Dec {
			delta = -1
		}
		if old.Kind == IntVal || old.Kind == NullVal {
			c.Val = Value{Kind: IntVal, Int: old.Int + delta}
		}
		return old, nil
	case *cminor.Binary:
		return m.evalBinary(fr, e)
	case *cminor.AssignExpr:
		rhs, err := m.eval(fr, e.RHS)
		if err != nil {
			return Value{}, err
		}
		c, err := m.lvalue(fr, e.LHS)
		if err != nil {
			return Value{}, err
		}
		if e.Op != cminor.Assign {
			if c.Val.Kind == IntVal && rhs.Kind == IntVal {
				if e.Op == cminor.PlusAssign {
					rhs = Value{Kind: IntVal, Int: c.Val.Int + rhs.Int}
				} else {
					rhs = Value{Kind: IntVal, Int: c.Val.Int - rhs.Int}
				}
			}
		}
		m.storeCell(c, rhs)
		return rhs, nil
	case *cminor.CondExpr:
		c, err := m.eval(fr, e.Cond)
		if err != nil {
			return Value{}, err
		}
		if c.Truthy() {
			return m.eval(fr, e.Then)
		}
		return m.eval(fr, e.Else)
	case *cminor.Call:
		return m.evalCall(fr, e)
	case *cminor.Index, *cminor.FieldAccess:
		c, err := m.lvalue(fr, e)
		if err != nil {
			return Value{}, err
		}
		return c.Val, nil
	case *cminor.Cast:
		return m.eval(fr, e.X)
	case *cminor.SizeofType, *cminor.SizeofExpr:
		if sz, ok := m.info.Sizeofs[e]; ok {
			return Value{Kind: IntVal, Int: sz}, nil
		}
		return Value{Kind: IntVal, Int: 8}, nil
	}
	return Value{}, fmt.Errorf("interp: unsupported expression at %v", cminor.ExprPos(e))
}

func (m *Machine) evalUnary(fr *frame, e *cminor.Unary) (Value, error) {
	switch e.Op {
	case cminor.Star:
		v, err := m.eval(fr, e.X)
		if err != nil {
			return Value{}, err
		}
		if v.Kind == PtrVal && v.Ptr != nil {
			return v.Ptr.Val, nil
		}
		return Value{}, nil
	case cminor.Amp:
		c, err := m.lvalue(fr, e.X)
		if err != nil {
			return Value{}, err
		}
		if c.Obj == nil {
			o, err := m.backingFor(c)
			if err != nil {
				return Value{}, err
			}
			return Value{Kind: PtrVal, Ptr: o.Field(0)}, nil
		}
		return Value{Kind: PtrVal, Ptr: c}, nil
	case cminor.Not:
		v, err := m.eval(fr, e.X)
		if err != nil {
			return Value{}, err
		}
		if v.Truthy() {
			return Value{Kind: IntVal, Int: 0}, nil
		}
		return Value{Kind: IntVal, Int: 1}, nil
	case cminor.Minus:
		v, err := m.eval(fr, e.X)
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: IntVal, Int: -v.Int}, nil
	case cminor.Tilde:
		v, err := m.eval(fr, e.X)
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: IntVal, Int: ^v.Int}, nil
	case cminor.Inc, cminor.Dec:
		c, err := m.lvalue(fr, e.X)
		if err != nil {
			return Value{}, err
		}
		delta := int64(1)
		if e.Op == cminor.Dec {
			delta = -1
		}
		if c.Val.Kind == IntVal || c.Val.Kind == NullVal {
			c.Val = Value{Kind: IntVal, Int: c.Val.Int + delta}
		}
		return c.Val, nil
	}
	return Value{}, fmt.Errorf("interp: unsupported unary at %v", e.Pos)
}

func (m *Machine) evalBinary(fr *frame, e *cminor.Binary) (Value, error) {
	// Short-circuit logicals first.
	if e.Op == cminor.AndAnd || e.Op == cminor.OrOr {
		x, err := m.eval(fr, e.X)
		if err != nil {
			return Value{}, err
		}
		if e.Op == cminor.AndAnd && !x.Truthy() {
			return Value{Kind: IntVal, Int: 0}, nil
		}
		if e.Op == cminor.OrOr && x.Truthy() {
			return Value{Kind: IntVal, Int: 1}, nil
		}
		y, err := m.eval(fr, e.Y)
		if err != nil {
			return Value{}, err
		}
		if y.Truthy() {
			return Value{Kind: IntVal, Int: 1}, nil
		}
		return Value{Kind: IntVal, Int: 0}, nil
	}
	x, err := m.eval(fr, e.X)
	if err != nil {
		return Value{}, err
	}
	y, err := m.eval(fr, e.Y)
	if err != nil {
		return Value{}, err
	}
	b2i := func(b bool) Value {
		if b {
			return Value{Kind: IntVal, Int: 1}
		}
		return Value{Kind: IntVal, Int: 0}
	}
	switch e.Op {
	case cminor.Eq:
		return b2i(valueEq(x, y)), nil
	case cminor.Neq:
		return b2i(!valueEq(x, y)), nil
	case cminor.Lt:
		return b2i(x.Int < y.Int), nil
	case cminor.Gt:
		return b2i(x.Int > y.Int), nil
	case cminor.Le:
		return b2i(x.Int <= y.Int), nil
	case cminor.Ge:
		return b2i(x.Int >= y.Int), nil
	case cminor.Plus, cminor.Minus, cminor.Star, cminor.Slash, cminor.Percent,
		cminor.Amp, cminor.Pipe, cminor.Caret:
		// Pointer arithmetic keeps the pointer (offset-insensitive,
		// matching the static treatment).
		if x.Kind == PtrVal {
			return x, nil
		}
		if y.Kind == PtrVal {
			return y, nil
		}
		var r int64
		switch e.Op {
		case cminor.Plus:
			r = x.Int + y.Int
		case cminor.Minus:
			r = x.Int - y.Int
		case cminor.Star:
			r = x.Int * y.Int
		case cminor.Slash:
			if y.Int != 0 {
				r = x.Int / y.Int
			}
		case cminor.Percent:
			if y.Int != 0 {
				r = x.Int % y.Int
			}
		case cminor.Amp:
			r = x.Int & y.Int
		case cminor.Pipe:
			r = x.Int | y.Int
		case cminor.Caret:
			r = x.Int ^ y.Int
		}
		return Value{Kind: IntVal, Int: r}, nil
	}
	return Value{}, fmt.Errorf("interp: unsupported binary at %v", e.Pos)
}

func valueEq(x, y Value) bool {
	if x.Kind == NullVal && y.Kind == NullVal {
		return true
	}
	if x.Kind == NullVal {
		return y.Kind == IntVal && y.Int == 0
	}
	if y.Kind == NullVal {
		return x.Kind == IntVal && x.Int == 0
	}
	if x.Kind != y.Kind {
		return false
	}
	switch x.Kind {
	case IntVal:
		return x.Int == y.Int
	case PtrVal:
		return x.Ptr == y.Ptr
	case RegionVal:
		return x.Region == y.Region
	case FnVal:
		return x.Fn == y.Fn
	}
	return false
}

func (m *Machine) evalCall(fr *frame, e *cminor.Call) (Value, error) {
	args := make([]Value, len(e.Args))
	for i, a := range e.Args {
		v, err := m.eval(fr, a)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	// Resolve the callee.
	if id, ok := e.Fun.(*cminor.Ident); ok {
		// Prefer a variable holding a function pointer, else the
		// function itself.
		if c, err := m.varCell(fr, id.Name); err == nil {
			if c.Val.Kind == FnVal {
				return m.call(c.Val.Fn, args, e.Pos)
			}
		}
		return m.call(id.Name, args, e.Pos)
	}
	v, err := m.eval(fr, e.Fun)
	if err != nil {
		return Value{}, err
	}
	if v.Kind == FnVal {
		return m.call(v.Fn, args, e.Pos)
	}
	return Value{}, nil
}
