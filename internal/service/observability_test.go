package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestMetricsExposeLatencyHistograms(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	if resp, data := postAnalyze(t, srv, analyzeBody(t, sourcesFor(0), RequestOptions{})); resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze status %d: %s", resp.StatusCode, data)
	}

	resp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	text := buf.String()
	for _, want := range []string{
		"# TYPE regionwizd_analyze_duration_seconds histogram",
		`regionwizd_analyze_duration_seconds_bucket{le="+Inf"} 1`,
		"regionwizd_analyze_duration_seconds_sum",
		"regionwizd_analyze_duration_seconds_count 1",
		`regionwizd_phase_duration_seconds_bucket{phase="parse",le="+Inf"} 1`,
		`regionwizd_phase_duration_seconds_count{phase="parse"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}

	// Bucket counts must be cumulative and end at _count.
	var st Stats
	stResp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(stResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	stResp.Body.Close()
	hs, ok := st.Histograms["analyze"]
	if !ok {
		t.Fatal("stats lack the analyze histogram")
	}
	if hs.Count != 1 || len(hs.Counts) != len(hs.Bounds)+1 {
		t.Fatalf("analyze histogram shape: count=%d buckets=%d bounds=%d",
			hs.Count, len(hs.Counts), len(hs.Bounds))
	}
	var total uint64
	for _, c := range hs.Counts {
		total += c
	}
	if total != hs.Count {
		t.Fatalf("bucket sum %d != count %d", total, hs.Count)
	}
}

func TestWireTraceOption(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	plainBody := analyzeBody(t, sourcesFor(0), RequestOptions{})
	tracedBody := strings.TrimSuffix(plainBody, "}") + `,"trace":true}`

	resp, data := postAnalyze(t, srv, tracedBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced analyze status %d: %s", resp.StatusCode, data)
	}
	var traced AnalyzeResponse
	if err := json.Unmarshal(data, &traced); err != nil {
		t.Fatal(err)
	}
	if len(traced.Trace) == 0 {
		t.Fatal(`"trace": true returned no trace document`)
	}
	var doc struct {
		Schema      string `json:"schema"`
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(traced.Trace, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.Schema != trace.SchemaV1 {
		t.Fatalf("trace schema = %q, want %q", doc.Schema, trace.SchemaV1)
	}
	want := map[string]bool{"service.request": false, "service.analysis": false, "http.request": false}
	for _, ev := range doc.TraceEvents {
		if _, ok := want[ev.Name]; ok {
			want[ev.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("trace lacks a %q span", name)
		}
	}

	// Same request without the option: no trace, identical report
	// bytes (the cache may serve it — the report is content-addressed
	// either way).
	resp, data = postAnalyze(t, srv, plainBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plain analyze status %d: %s", resp.StatusCode, data)
	}
	var plain AnalyzeResponse
	if err := json.Unmarshal(data, &plain); err != nil {
		t.Fatal(err)
	}
	if len(plain.Trace) != 0 {
		t.Fatal("untraced request returned a trace document")
	}
	if plain.Key != traced.Key {
		t.Fatalf("trace option changed the cache key: %q vs %q", plain.Key, traced.Key)
	}
	if !bytes.Equal(plain.Report, traced.Report) {
		t.Fatal("report bytes differ between traced and untraced requests")
	}
}

func TestRequestIDReachesTraceSpans(t *testing.T) {
	ctx := WithRequestID(context.Background(), "abc123")
	if got := RequestID(ctx); got != "abc123" {
		t.Fatalf("RequestID roundtrip = %q", got)
	}
	if got := RequestID(context.Background()); got != "" {
		t.Fatalf("RequestID on empty context = %q, want empty", got)
	}

	s := New(Config{Workers: 1})
	defer s.Close()
	// The daemon's middleware injects the ID before the handler; the
	// handler must attach it to the root span of a traced request.
	handler := NewHandler(s)
	wrapped := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.ServeHTTP(w, r.WithContext(WithRequestID(r.Context(), "req-42")))
	})
	srv := httptest.NewServer(wrapped)
	defer srv.Close()

	body := strings.TrimSuffix(analyzeBody(t, sourcesFor(1), RequestOptions{}), "}") + `,"trace":true}`
	resp, data := postAnalyze(t, srv, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var ar AnalyzeResponse
	if err := json.Unmarshal(data, &ar); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(ar.Trace), `"request_id": "req-42"`) {
		t.Fatalf("trace lacks the request_id attribute:\n%s", ar.Trace)
	}
}
