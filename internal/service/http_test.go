package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
)

func postAnalyze(t *testing.T, srv *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/v1/analyze", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func analyzeBody(t *testing.T, sources map[string]string, opts RequestOptions) string {
	t.Helper()
	data, err := json.Marshal(Request{Sources: sources, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestHTTPAnalyzeAndCache(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	body := analyzeBody(t, sourcesFor(0), RequestOptions{API: "rc"})

	resp, data := postAnalyze(t, srv, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get("X-Regionwiz-Cache"); got != "miss" {
		t.Errorf("first request cache header = %q, want miss", got)
	}
	var first AnalyzeResponse
	if err := json.Unmarshal(data, &first); err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first request reported cached")
	}
	if !strings.Contains(string(first.Report), core.ReportSchemaV1) {
		t.Errorf("report lacks schema marker %q", core.ReportSchemaV1)
	}

	resp, data = postAnalyze(t, srv, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d: %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get("X-Regionwiz-Cache"); got != "hit" {
		t.Errorf("repeat cache header = %q, want hit", got)
	}
	var second AnalyzeResponse
	if err := json.Unmarshal(data, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("repeat request not served from cache")
	}
	if !bytes.Equal(first.Report, second.Report) {
		t.Error("cached report JSON is not byte-identical to the fresh one")
	}
	if first.Key != second.Key || first.Key == "" {
		t.Errorf("keys: %q vs %q, want equal and non-empty", first.Key, second.Key)
	}
}

func TestHTTPErrors(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	cases := []struct {
		name   string
		body   string
		status int
		kind   string
	}{
		{"malformed json", "{", http.StatusBadRequest, "config"},
		{"unknown field", `{"sauces": {}}`, http.StatusBadRequest, "config"},
		{"no sources", `{"sources": {}}`, http.StatusBadRequest, "config"},
		{"bad api", analyzeBody(t, sourcesFor(0), RequestOptions{API: "jemalloc"}), http.StatusBadRequest, "config"},
		{"bad backend", analyzeBody(t, sourcesFor(0), RequestOptions{Backend: "quantum"}), http.StatusBadRequest, "config"},
		{"negative kcfa", analyzeBody(t, sourcesFor(0), RequestOptions{KCFA: -1}), http.StatusBadRequest, "config"},
		{"parse error", analyzeBody(t, map[string]string{"x.c": "int main( {"}, RequestOptions{}), http.StatusUnprocessableEntity, "parse"},
		{"bad entry", analyzeBody(t, sourcesFor(0), RequestOptions{Entry: "nope"}), http.StatusUnprocessableEntity, "resolve"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postAnalyze(t, srv, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d (%s)", resp.StatusCode, tc.status, data)
			}
			var er errorResponse
			if err := json.Unmarshal(data, &er); err != nil {
				t.Fatalf("error body not JSON: %s", data)
			}
			if er.Error.Kind != tc.kind {
				t.Errorf("kind = %q, want %q", er.Error.Kind, tc.kind)
			}
		})
	}

	resp, err := http.Get(srv.URL + "/v1/analyze")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET analyze status = %d, want 405", resp.StatusCode)
	}
}

func TestHTTPHealthMetricsStats(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	// One real analysis so the metrics have content.
	if _, data := postAnalyze(t, srv, analyzeBody(t, sourcesFor(0), RequestOptions{})); len(data) == 0 {
		t.Fatal("empty analyze response")
	}

	resp, err = http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	text := buf.String()
	for _, want := range []string{
		"regionwizd_requests_total 1",
		"regionwizd_cache_misses_total 1",
		`regionwizd_phase_runs_total{phase="parse"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}

	resp, err = http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Requests != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 request / 1 miss", st)
	}
}
