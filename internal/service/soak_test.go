package service

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/bdd"
	"repro/internal/core"
)

// soakSource generates a region-heavy program: a chain of regions with
// per-region allocations and cross-region stores (every third region
// starts a sibling chain, so the report carries real warnings). The
// variant index only changes a comment — every variant is structurally
// identical, so kernel footprints must match across variants exactly.
func soakSource(variant, n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "/* soak variant %d */\n", variant)
	b.WriteString("typedef struct region_t region_t;\n")
	b.WriteString("extern region_t *rnew(region_t *parent);\n")
	b.WriteString("extern void *ralloc(region_t *r);\n")
	b.WriteString("struct node_t { struct node_t *next; };\n")
	b.WriteString("int main(void) {\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "    region_t *r%d;\n    struct node_t *p%d;\n", i, i)
	}
	b.WriteString("    r0 = rnew(NULL);\n")
	b.WriteString("    p0 = ralloc(r0);\n")
	for i := 1; i < n; i++ {
		parent := fmt.Sprintf("r%d", i-1)
		if i%3 == 0 {
			parent = "NULL"
		}
		fmt.Fprintf(&b, "    r%d = rnew(%s);\n", i, parent)
		fmt.Fprintf(&b, "    p%d = ralloc(r%d);\n", i, i)
		fmt.Fprintf(&b, "    p%d->next = p%d;\n", i-1, i)
	}
	b.WriteString("    return 0;\n}\n")
	return b.String()
}

// pairsOutputs extracts the pairs phase's output counters from a
// report's JSON.
func pairsOutputs(t *testing.T, reportJSON []byte) map[string]int64 {
	t.Helper()
	var rpt struct {
		Stats struct {
			Phases []struct {
				Name    string           `json:"name"`
				Outputs map[string]int64 `json:"outputs"`
			} `json:"phases"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(reportJSON, &rpt); err != nil {
		t.Fatalf("report JSON: %v", err)
	}
	for _, p := range rpt.Stats.Phases {
		if p.Name == core.PhasePairs {
			return p.Outputs
		}
	}
	t.Fatal("report has no pairs phase")
	return nil
}

// TestSoakBoundedKernelFootprint is the daemon soak regression: many
// distinct analyze requests against one service, each running the BDD
// backend with GC (and reordering) enabled, must show a bounded —
// here: exactly repeating — kernel node footprint. A leak across
// requests, a collection that frees live nodes, or a reorder that
// changes results would all break the per-request counters' equality.
// CI runs this under -race.
func TestSoakBoundedKernelFootprint(t *testing.T) {
	const requests = 55
	s := New(Config{Workers: 2, CacheEntries: 8})
	defer s.Close()
	ctx := context.Background()

	opts := core.Options{}
	opts.Solver.Backend = core.BDDBackend
	// Minimum table and threshold: growth pressure (and so collection)
	// happens even on this modest workload.
	opts.Solver.BDD = bdd.Config{NodeSize: 1, GC: true, GCThreshold: 1, Reorder: true}

	var first map[string]int64
	var firstWarnings int
	for i := 0; i < requests; i++ {
		src := map[string]string{fmt.Sprintf("soak%d.c", i): soakSource(i, 24)}
		res, err := s.Analyze(ctx, opts, src)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if res.Cached {
			t.Fatalf("request %d unexpectedly served from cache (sources are distinct)", i)
		}
		outs := pairsOutputs(t, res.ReportJSON)
		var rpt struct {
			Warnings []json.RawMessage `json:"warnings"`
		}
		if err := json.Unmarshal(res.ReportJSON, &rpt); err != nil {
			t.Fatalf("request %d report: %v", i, err)
		}
		if outs["bdd_nodes"] == 0 {
			t.Fatalf("request %d: pairs phase reports no BDD nodes (backend not exercised?)", i)
		}
		if first == nil {
			first = outs
			firstWarnings = len(rpt.Warnings)
			if firstWarnings == 0 {
				t.Fatal("soak workload produced no warnings — not a meaningful analysis")
			}
			continue
		}
		for _, k := range []string{"bdd_nodes", "bdd_peak_nodes", "datalog_tuples", "bdd_gc_collections", "bdd_gc_nodes_freed"} {
			if outs[k] != first[k] {
				t.Fatalf("request %d: %s = %d, request 0 had %d — kernel footprint drifted across requests",
					i, k, outs[k], first[k])
			}
		}
		if len(rpt.Warnings) != firstWarnings {
			t.Fatalf("request %d: %d warnings, request 0 had %d", i, len(rpt.Warnings), firstWarnings)
		}
	}
	if first["bdd_gc_collections"] == 0 {
		t.Fatalf("soak never collected — GC path not exercised (outputs %v)", first)
	}
	if first["bdd_peak_nodes"] == 0 || first["bdd_peak_nodes"] < first["bdd_nodes"] {
		t.Fatalf("implausible peak: peak %d, final %d", first["bdd_peak_nodes"], first["bdd_nodes"])
	}

	st := s.Stats()
	if st.BDDOutputs["bdd_gc_collections"] != first["bdd_gc_collections"]*requests {
		t.Fatalf("service-wide bdd_gc_collections = %d, want %d per request x %d requests",
			st.BDDOutputs["bdd_gc_collections"], first["bdd_gc_collections"], requests)
	}
	if st.BDDOutputs["bdd_nodes"] != first["bdd_nodes"]*requests {
		t.Fatalf("service-wide bdd_nodes = %d, want %d x %d",
			st.BDDOutputs["bdd_nodes"], first["bdd_nodes"], requests)
	}
}
