package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"

	"repro/internal/core"
)

// TestDigestFormat pins the byte layout of the source-set digest:
// sha256 over "\x00<path>\x00<hex sha256 of content>" per path in
// sorted order. Cache keys (and therefore snapshot bases) for
// identical requests must never change across releases, so this test
// spells the algorithm out independently rather than calling the
// helpers under test.
func TestDigestFormat(t *testing.T) {
	sources := map[string]string{
		"b.c": "int x;\n",
		"a.c": "int main(void) { return 0; }\n",
	}

	h := sha256.New()
	for _, p := range []string{"a.c", "b.c"} { // sorted path order
		content := sha256.Sum256([]byte(sources[p]))
		fmt.Fprintf(h, "\x00%s\x00%s", p, hex.EncodeToString(content[:]))
	}
	want := hex.EncodeToString(h.Sum(nil))

	if got := Digest(sources); got != want {
		t.Fatalf("Digest layout changed:\n got %s\nwant %s", got, want)
	}

	// Key prepends the options fingerprint to the same encoding.
	opts := core.Options{}.Normalize()
	kh := sha256.New()
	kh.Write([]byte(opts.Fingerprint()))
	for _, p := range []string{"a.c", "b.c"} {
		content := sha256.Sum256([]byte(sources[p]))
		fmt.Fprintf(kh, "\x00%s\x00%s", p, hex.EncodeToString(content[:]))
	}
	if got, want := Key(opts, sources), hex.EncodeToString(kh.Sum(nil)); got != want {
		t.Fatalf("Key layout changed:\n got %s\nwant %s", got, want)
	}
}

// TestDigestMatchesSnapshotFileDigests ties the two keying layers
// together: the per-file digests inside Digest are core.FileDigest,
// the same digests snapshots use to decide parse reuse.
func TestDigestMatchesSnapshotFileDigests(t *testing.T) {
	content := "struct s { int x; };\n"
	sum := sha256.Sum256([]byte(content))
	if got, want := core.FileDigest(content), hex.EncodeToString(sum[:]); got != want {
		t.Fatalf("core.FileDigest = %s, want raw sha256 %s", got, want)
	}

	// Distinct paths with identical content digest differently; the
	// empty set digests to sha256 of nothing.
	a := Digest(map[string]string{"a.c": content})
	b := Digest(map[string]string{"b.c": content})
	if a == b {
		t.Fatal("digest ignores file paths")
	}
	empty := sha256.Sum256(nil)
	if got, want := Digest(nil), hex.EncodeToString(empty[:]); got != want {
		t.Fatalf("empty-set digest = %s, want %s", got, want)
	}
}
