package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
)

// querySites resolves the fixture's single warning to its allocation
// site pair via a direct core run over the same sources.
func querySites(t *testing.T, sources map[string]string) (src, dst string) {
	t.Helper()
	a, err := core.AnalyzeSource(core.Options{}, sources)
	if err != nil {
		t.Fatal(err)
	}
	sites := a.PairSites()
	if len(sites) == 0 {
		t.Fatal("fixture reports no warnings")
	}
	return sites[0].Src.String(), sites[0].Dst.String()
}

// TestServiceQuery covers the demand pair-query path against a cached
// result: the positive verdict, the consistent reverse probe, the
// snapshot-gone and bad-input failure modes, and the query counters.
func TestServiceQuery(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ctx := context.Background()

	sources := sourcesFor(0)
	src, dst := querySites(t, sources)
	res, err := s.Analyze(ctx, core.Options{}, sources)
	if err != nil {
		t.Fatal(err)
	}

	ans, err := s.Query(ctx, res.Key, src, dst)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if !ans.Answer.Inconsistent {
		t.Errorf("query %s -> %s consistent but the report warns", src, dst)
	}
	rev, err := s.Query(ctx, res.Key, dst, src)
	if err != nil {
		t.Fatalf("reverse query: %v", err)
	}
	if rev.Answer.Inconsistent {
		t.Error("reverse probe inconsistent; the report has no such warning")
	}

	var aerr *core.Error
	if _, err := s.Query(ctx, strings.Repeat("0", 64), src, dst); !errors.As(err, &aerr) || aerr.Kind != core.ErrSnapshotGone {
		t.Errorf("unknown key error = %v, want snapshot-gone kind", err)
	}
	if _, err := s.Query(ctx, res.Key, "prog0.c:9999", dst); !errors.As(err, &aerr) || aerr.Kind != core.ErrResolve {
		t.Errorf("unknown site error = %v, want resolve kind", err)
	}
	if _, err := s.Query(ctx, res.Key, "nonsense", dst); !errors.As(err, &aerr) || aerr.Kind != core.ErrConfig {
		t.Errorf("malformed site error = %v, want config kind", err)
	}

	st := s.Stats()
	// The two verdicts count; the failed lookups count as requests
	// too (unknown key never reached a cached analysis but is still a
	// request; it fails before the verdict).
	if st.QueryRequests < 2 {
		t.Errorf("query_requests = %d, want >= 2", st.QueryRequests)
	}
	if st.QueryInconsistent != 1 {
		t.Errorf("query_inconsistent = %d, want 1", st.QueryInconsistent)
	}
	if st.Histograms["query"].Count == 0 {
		t.Error("query histogram has no observations")
	}
}

// TestHTTPQuery is the /v1/query endpoint round-trip plus its status
// mapping and metrics.
func TestHTTPQuery(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	sources := sourcesFor(0)
	src, dst := querySites(t, sources)
	resp, data := postAnalyze(t, srv, analyzeBody(t, sources, RequestOptions{}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: %d %s", resp.StatusCode, data)
	}
	var ar AnalyzeResponse
	if err := json.Unmarshal(data, &ar); err != nil {
		t.Fatal(err)
	}

	get := func(url string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	resp, data = get(srv.URL + "/v1/query?key=" + ar.Key + "&src=" + src + "&dst=" + dst)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d %s", resp.StatusCode, data)
	}
	var qr QueryResponse
	if err := json.Unmarshal(data, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Schema != core.QuerySchemaV1 || qr.Key != ar.Key {
		t.Errorf("schema/key = %q/%q", qr.Schema, qr.Key)
	}
	if qr.Answer == nil || !qr.Answer.Inconsistent {
		t.Fatalf("answer = %+v, want inconsistent", qr.Answer)
	}

	for _, tc := range []struct {
		name string
		url  string
		want int
	}{
		{"unknown key", srv.URL + "/v1/query?key=" + strings.Repeat("0", 64) + "&src=" + src + "&dst=" + dst, http.StatusConflict},
		{"unknown site", srv.URL + "/v1/query?key=" + ar.Key + "&src=prog0.c:9999&dst=" + dst, http.StatusUnprocessableEntity},
		{"malformed site", srv.URL + "/v1/query?key=" + ar.Key + "&src=nonsense&dst=" + dst, http.StatusBadRequest},
		{"missing params", srv.URL + "/v1/query?key=" + ar.Key, http.StatusBadRequest},
	} {
		if resp, data = get(tc.url); resp.StatusCode != tc.want {
			t.Errorf("%s: %d (want %d) %s", tc.name, resp.StatusCode, tc.want, data)
		}
	}
	if resp, err := http.Post(srv.URL+"/v1/query", "text/plain", nil); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST: %d, want 405", resp.StatusCode)
	}

	resp, data = get(srv.URL + "/v1/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	text := string(data)
	for _, want := range []string{
		"regionwizd_query_requests_total",
		"regionwizd_query_inconsistent_total 1",
		"regionwizd_query_duration_seconds_count",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestWireThrottleOptions: the new wire options must round-trip into
// core options, reject unknown enum spellings, and surface alias
// conflicts (checked on the raw options) at the service boundary.
func TestWireThrottleOptions(t *testing.T) {
	opts, err := RequestOptions{ContextPolicy: "origin", PtsLimit: 3}.ToOptions()
	if err != nil {
		t.Fatal(err)
	}
	if opts.ContextPolicy != core.PolicyOrigin || opts.Solver.PtsLimit != 3 {
		t.Errorf("wire options did not carry: policy=%q pts_limit=%d", opts.ContextPolicy, opts.Solver.PtsLimit)
	}
	if _, err := (RequestOptions{ContextPolicy: "2cfa"}).ToOptions(); err == nil {
		t.Error("unknown context_policy accepted")
	}

	// An alias conflict must fail the request, not silently resolve.
	s := New(Config{Workers: 1})
	defer s.Close()
	bad := core.Options{MaxRounds: 2}
	bad.Solver.MaxRounds = 3
	var aerr *core.Error
	if _, err := s.Analyze(context.Background(), bad, sourcesFor(0)); !errors.As(err, &aerr) || aerr.Kind != core.ErrConfig {
		t.Errorf("alias conflict at the service boundary = %v, want config kind", err)
	}
}
