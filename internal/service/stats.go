package service

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/pipeline"
)

// PhaseTotal aggregates one pipeline phase's cost across every run
// the service executed.
type PhaseTotal struct {
	Runs       uint64        `json:"runs"`
	Wall       time.Duration `json:"wall_ns"`
	AllocBytes int64         `json:"alloc_bytes"`
}

// latencyBuckets are the histogram upper bounds in seconds, shared by
// every service latency histogram (analyze, queue wait, per-phase).
// They span 1ms to 1min log-ish; observations above the last bound
// land in the implicit +Inf bucket.
var latencyBuckets = [...]float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// histogram is a fixed-bucket latency histogram with lock-free
// observation — the service records every request on the hot path.
type histogram struct {
	// counts[i] is the number of observations <= latencyBuckets[i];
	// counts[len(latencyBuckets)] is the +Inf overflow bucket. Buckets
	// are NOT cumulative here; exposition cumulates.
	counts [len(latencyBuckets) + 1]atomic.Uint64
	sumNS  atomic.Int64
	count  atomic.Uint64
}

func (h *histogram) observe(d time.Duration) {
	secs := d.Seconds()
	i := 0
	for i < len(latencyBuckets) && secs > latencyBuckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNS.Add(int64(d))
	h.count.Add(1)
}

// HistogramSnapshot is one histogram's point-in-time state. Counts are
// per-bucket (not cumulative) and aligned with Bounds; the final entry
// is the +Inf bucket.
type HistogramSnapshot struct {
	Bounds []float64     `json:"bounds_s"`
	Counts []uint64      `json:"counts"`
	Sum    time.Duration `json:"sum_ns"`
	Count  uint64        `json:"count"`
}

func (h *histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: latencyBuckets[:],
		Counts: make([]uint64, len(h.counts)),
		Sum:    time.Duration(h.sumNS.Load()),
		Count:  h.count.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Stats is a point-in-time snapshot of the service's counters and
// gauges (the /v1/stats payload).
type Stats struct {
	// Requests counts every Analyze call, however it was served.
	Requests uint64 `json:"requests"`
	// Hits were served from the result cache without running anything.
	Hits uint64 `json:"cache_hits"`
	// Coalesced joined an identical in-flight run (singleflight).
	Coalesced uint64 `json:"coalesced"`
	// Misses ran the pipeline.
	Misses uint64 `json:"cache_misses"`
	// Overloads were rejected by admission control.
	Overloads uint64 `json:"overloads"`
	// Errors counts failed requests of any kind, overloads included.
	Errors uint64 `json:"errors"`
	// Inflight is the number of pipeline runs executing right now.
	Inflight int64 `json:"inflight"`
	// Queued is the number of requests waiting for a worker slot.
	Queued int64 `json:"queued"`
	// CacheEntries is the current cache population; CacheEvictions
	// counts entries dropped to make room.
	CacheEntries   int    `json:"cache_entries"`
	CacheEvictions uint64 `json:"cache_evictions"`
	// DeltaRequests counts requests that named a base snapshot;
	// SnapshotHits found it, SnapshotGone did not (the 409 path).
	DeltaRequests uint64 `json:"delta_requests"`
	SnapshotHits  uint64 `json:"snapshot_hits"`
	SnapshotGone  uint64 `json:"snapshot_gone"`
	// SnapshotEntries is the snapshot store's population;
	// SnapshotEvictions counts snapshots dropped to make room.
	SnapshotEntries   int    `json:"snapshot_entries"`
	SnapshotEvictions uint64 `json:"snapshot_evictions"`
	// FrontendFilesReused and FrontendFilesRerun count, across every
	// snapshot-backed pipeline run, source files whose front-end
	// artifacts were reused versus re-parsed.
	FrontendFilesReused uint64 `json:"frontend_files_reused"`
	FrontendFilesRerun  uint64 `json:"frontend_files_rerun"`
	// ParallelSolves counts pipeline runs that executed with intra-
	// request solve parallelism (effective solver workers > 1), and
	// SolverWorkersUsed sums the worker counts those runs used — their
	// ratio is the mean shard width. Sequential runs touch neither.
	ParallelSolves    uint64 `json:"parallel_solves"`
	SolverWorkersUsed uint64 `json:"solver_workers_used"`
	// QueueWaits counts requests that had to queue; QueueWait is their
	// cumulative wait, MaxQueueWait the single longest.
	QueueWaits   uint64        `json:"queue_waits"`
	QueueWait    time.Duration `json:"queue_wait_ns"`
	MaxQueueWait time.Duration `json:"max_queue_wait_ns"`
	// Phases aggregates per-phase cost over every pipeline run.
	Phases map[string]PhaseTotal `json:"phases,omitempty"`
	// BDDOutputs accumulates, over every pipeline run, the bdd_*
	// counters the pairs phase reports (node/tuple footprint, op-cache
	// traffic, and — when enabled — GC and reorder activity). These are
	// true counters, so summing across requests is meaningful;
	// bdd_peak_nodes is not one of them — see BDDPeakNodes.
	BDDOutputs map[string]int64 `json:"bdd_outputs,omitempty"`
	// BDDPeakNodes is the largest single-request BDD node peak the
	// service has seen — a high-water gauge, not a counter. (It used to
	// ride in BDDOutputs and be summed across requests, which made the
	// exported number meaningless; a per-request maximum is the only
	// aggregation of a peak that says anything.)
	BDDPeakNodes int64 `json:"bdd_peak_nodes,omitempty"`
	// Warnings sums the warnings reported by every pipeline run the
	// service executed (cache hits and coalesced waiters share their
	// leader's run and do not re-count).
	Warnings uint64 `json:"warnings_total"`
	// ExplainRequests counts Explain calls served; ExplainReplays
	// counts the subset answered by demand-driven replay (BDD-backend
	// or provenance-off cached results) rather than recorded witnesses.
	ExplainRequests uint64 `json:"explain_requests"`
	ExplainReplays  uint64 `json:"explain_replays"`
	// QueryRequests counts demand pair queries served;
	// QueryInconsistent counts the subset whose verdict was
	// inconsistent.
	QueryRequests     uint64 `json:"query_requests"`
	QueryInconsistent uint64 `json:"query_inconsistent"`
	// Histograms holds the latency distributions: "analyze" (end-to-end
	// Analyze latency), "queue_wait" (admission queue wait), and
	// "phase:<name>" (per-phase pipeline duration). Only histograms
	// with at least one observation appear.
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// collector is the service's live counter set.
type collector struct {
	requests, hits, coalesced, misses, overloads, errs atomic.Uint64
	deltaRequests, snapshotHits, snapshotGone          atomic.Uint64
	frontendReused, frontendRerun                      atomic.Uint64
	parallelSolves, solverWorkersUsed                  atomic.Uint64
	warnings                                           atomic.Uint64
	explainRequests, explainReplays                    atomic.Uint64
	queryRequests, queryInconsistent                   atomic.Uint64
	inflight, queued                                   atomic.Int64
	queueWaits                                         atomic.Uint64
	queueWaitNS, maxQueueWaitNS                        atomic.Int64

	analyzeHist histogram
	queueHist   histogram
	explainHist histogram
	queryHist   histogram

	mu         sync.Mutex
	phases     map[string]*PhaseTotal
	phaseHists map[string]*histogram
	bddOutputs map[string]int64
	// bddPeakNodes is the high-water mark of per-request BDD peaks
	// (guarded by mu; fed by phaseObserver).
	bddPeakNodes int64
}

func newCollector() *collector {
	return &collector{
		phases:     make(map[string]*PhaseTotal),
		phaseHists: make(map[string]*histogram),
		bddOutputs: make(map[string]int64),
	}
}

func (c *collector) recordQueueWait(d time.Duration) {
	c.queueWaits.Add(1)
	c.queueWaitNS.Add(int64(d))
	c.queueHist.observe(d)
	for {
		max := c.maxQueueWaitNS.Load()
		if int64(d) <= max || c.maxQueueWaitNS.CompareAndSwap(max, int64(d)) {
			return
		}
	}
}

// phaseObserver feeds per-phase totals from the pipeline's Observer
// callbacks, then forwards to the chained observers (the service-wide
// one and the leader request's own), either of which may be nil.
func (c *collector) phaseObserver(next ...pipeline.Observer[*core.Analysis]) pipeline.Observer[*core.Analysis] {
	return pipeline.ObserverFuncs[*core.Analysis]{
		Start: func(name string, st *core.Analysis) {
			for _, o := range next {
				if o != nil {
					o.PhaseStart(name, st)
				}
			}
		},
		End: func(name string, st *core.Analysis, m pipeline.PhaseMetrics) {
			c.mu.Lock()
			pt := c.phases[name]
			if pt == nil {
				pt = &PhaseTotal{}
				c.phases[name] = pt
			}
			pt.Runs++
			pt.Wall += m.Wall
			pt.AllocBytes += m.AllocBytes
			// BDD kernel counters ride in the pairs phase's outputs;
			// accumulate them service-wide so /v1/metrics and /v1/stats
			// show the fleet totals. bdd_peak_nodes is the exception: a
			// peak is a per-request gauge, so summing it across requests
			// produces a number with no meaning — track the maximum.
			for k, v := range m.Outputs {
				if len(k) <= 4 || k[:4] != "bdd_" {
					continue
				}
				if k == "bdd_peak_nodes" {
					if v > c.bddPeakNodes {
						c.bddPeakNodes = v
					}
					continue
				}
				c.bddOutputs[k] += v
			}
			ph := c.phaseHists[name]
			if ph == nil {
				ph = &histogram{}
				c.phaseHists[name] = ph
			}
			c.mu.Unlock()
			ph.observe(m.Wall)
			for _, o := range next {
				if o != nil {
					o.PhaseEnd(name, st, m)
				}
			}
		},
	}
}

// snapshot copies the counters into a Stats value.
func (c *collector) snapshot() Stats {
	s := Stats{
		Requests:     c.requests.Load(),
		Hits:         c.hits.Load(),
		Coalesced:    c.coalesced.Load(),
		Misses:       c.misses.Load(),
		Overloads:    c.overloads.Load(),
		Errors:       c.errs.Load(),
		Inflight:     c.inflight.Load(),
		Queued:       c.queued.Load(),
		QueueWaits:   c.queueWaits.Load(),
		QueueWait:    time.Duration(c.queueWaitNS.Load()),
		MaxQueueWait: time.Duration(c.maxQueueWaitNS.Load()),

		DeltaRequests:       c.deltaRequests.Load(),
		SnapshotHits:        c.snapshotHits.Load(),
		SnapshotGone:        c.snapshotGone.Load(),
		FrontendFilesReused: c.frontendReused.Load(),
		FrontendFilesRerun:  c.frontendRerun.Load(),
		ParallelSolves:      c.parallelSolves.Load(),
		SolverWorkersUsed:   c.solverWorkersUsed.Load(),
		Warnings:            c.warnings.Load(),
		ExplainRequests:     c.explainRequests.Load(),
		ExplainReplays:      c.explainReplays.Load(),
		QueryRequests:       c.queryRequests.Load(),
		QueryInconsistent:   c.queryInconsistent.Load(),
	}
	s.Histograms = make(map[string]HistogramSnapshot)
	if hs := c.analyzeHist.snapshot(); hs.Count > 0 {
		s.Histograms["analyze"] = hs
	}
	if hs := c.queueHist.snapshot(); hs.Count > 0 {
		s.Histograms["queue_wait"] = hs
	}
	if hs := c.explainHist.snapshot(); hs.Count > 0 {
		s.Histograms["explain"] = hs
	}
	if hs := c.queryHist.snapshot(); hs.Count > 0 {
		s.Histograms["query"] = hs
	}
	c.mu.Lock()
	if len(c.phases) > 0 {
		s.Phases = make(map[string]PhaseTotal, len(c.phases))
		for name, pt := range c.phases {
			s.Phases[name] = *pt
		}
	}
	if len(c.bddOutputs) > 0 {
		s.BDDOutputs = make(map[string]int64, len(c.bddOutputs))
		for k, v := range c.bddOutputs {
			s.BDDOutputs[k] = v
		}
	}
	s.BDDPeakNodes = c.bddPeakNodes
	for name, h := range c.phaseHists {
		if hs := h.snapshot(); hs.Count > 0 {
			s.Histograms["phase:"+name] = hs
		}
	}
	c.mu.Unlock()
	if len(s.Histograms) == 0 {
		s.Histograms = nil
	}
	return s
}
