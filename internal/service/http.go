package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/trace"
)

// maxRequestBody bounds a POST /v1/analyze body (sources are text;
// the paper's largest case study is a few MB).
const maxRequestBody = 64 << 20

// AnalyzeResponse is the POST /v1/analyze success body.
type AnalyzeResponse struct {
	// Cached and Coalesced mirror Result: how the request was served.
	Cached    bool `json:"cached"`
	Coalesced bool `json:"coalesced,omitempty"`
	// Key is the content-addressed request key (stable across
	// identical requests; useful for client-side caching).
	Key string `json:"key"`
	// Report is the versioned report encoding (schema
	// "regionwiz/report/v1"), byte-identical across identical
	// requests.
	Report json.RawMessage `json:"report"`
	// Trace is the request's Chrome trace_event document (schema
	// "regionwiz/trace/v1"), present only when the request set
	// "trace": true. The report bytes are identical with and without
	// it.
	Trace json.RawMessage `json:"trace,omitempty"`
	// Delta describes how a delta request was resolved; absent on full
	// requests.
	Delta *DeltaResponse `json:"delta,omitempty"`
}

// DeltaResponse is the response's "delta" block (schema
// "regionwiz/delta/v1"): how the base snapshot plus the request's
// edits composed into the analyzed source set.
type DeltaResponse struct {
	Schema       string `json:"schema"`
	Base         string `json:"base"`
	FilesReused  int    `json:"files_reused"`
	FilesChanged int    `json:"files_changed"`
	FilesRemoved int    `json:"files_removed"`
}

// requestIDKey carries the per-request ID (set by the daemon's logging
// middleware) through the context.
type requestIDKey struct{}

// WithRequestID returns a context carrying the request ID; handlers
// attach it to spans and log lines.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID returns the context's request ID, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// errorResponse is every endpoint's failure body.
type errorResponse struct {
	Error errorJSON `json:"error"`
}

type errorJSON struct {
	Kind    string `json:"kind"`
	Message string `json:"message"`
	Pos     string `json:"pos,omitempty"`
	// RequestID echoes the per-request id the daemon's access log
	// carries, so a failure body correlates directly with its log
	// lines. Absent when no logging middleware set an id.
	RequestID string `json:"request_id,omitempty"`
}

// ExplainResponse is the GET /v1/explain success body.
type ExplainResponse struct {
	// Schema versions the explanation encoding; every tree in
	// Explanations carries the same marker.
	Schema string `json:"schema"`
	// Key is the analysis result the explanations were derived from.
	Key string `json:"key"`
	// Replayed reports that provenance was re-derived on demand
	// (BDD-backend or provenance-off results) rather than read from
	// recorded witnesses; the explanation bytes are identical either
	// way.
	Replayed bool `json:"replayed,omitempty"`
	// WarningsTotal is the report's full warning count, whatever
	// subset was requested.
	WarningsTotal int `json:"warnings_total"`
	// Explanations holds the requested warnings' derivation trees in
	// report order (schema "regionwiz/explain/v1").
	Explanations []*core.Explanation `json:"explanations"`
}

// QueryResponse is the GET /v1/query success body.
type QueryResponse struct {
	// Schema versions the answer encoding ("regionwiz/query/v1"); the
	// embedded answer carries the same marker.
	Schema string `json:"schema"`
	// Key is the analysis result the query ran against.
	Key string `json:"key"`
	// Answer is the pair verdict.
	Answer *core.PairAnswer `json:"answer"`
}

// NewHandler exposes a Service over HTTP:
//
//	POST /v1/analyze  — run (or replay) an analysis
//	GET  /v1/explain  — why-provenance trees for a cached result
//	GET  /v1/query    — demand pair verdict against a cached result
//	GET  /v1/healthz  — liveness
//	GET  /v1/metrics  — counters in Prometheus text exposition format
//	GET  /v1/stats    — counters as JSON
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/analyze", func(w http.ResponseWriter, r *http.Request) {
		handleAnalyze(s, w, r)
	})
	mux.HandleFunc("/v1/explain", func(w http.ResponseWriter, r *http.Request) {
		handleExplain(s, w, r)
	})
	mux.HandleFunc("/v1/query", func(w http.ResponseWriter, r *http.Request) {
		handleQuery(s, w, r)
	})
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeMetrics(w, s.Stats())
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	return mux
}

func handleAnalyze(s *Service, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(r.Context(), w, http.StatusMethodNotAllowed,
			core.Errf(core.ErrConfig, "", "analyze wants POST, got %s", r.Method))
		return
	}
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(r.Context(), w, http.StatusBadRequest,
			core.Errf(core.ErrConfig, "", "bad request body: %v", err))
		return
	}
	opts, err := req.Options.ToOptions()
	if err != nil {
		writeError(r.Context(), w, statusFor(err), err)
		return
	}
	ctx := r.Context()
	var tr *trace.Tracer
	var root *trace.Span
	if req.Trace {
		tr = trace.New()
		ctx = trace.WithTracer(ctx, tr)
		ctx, root = trace.StartSpan(ctx, "http.request")
		if id := RequestID(ctx); id != "" {
			root.Attrs(trace.Str("request_id", id))
		}
	}
	var res *Result
	if req.Base != "" {
		if len(req.Sources) > 0 {
			root.End(trace.Bool("error", true))
			writeError(ctx, w, http.StatusBadRequest, core.Errf(core.ErrConfig, "",
				"a delta request (base set) must not also carry full sources"))
			return
		}
		res, err = s.AnalyzeDelta(ctx, opts, req.Base, req.Changed, req.Removed)
	} else {
		if len(req.Changed) > 0 || len(req.Removed) > 0 {
			root.End(trace.Bool("error", true))
			writeError(ctx, w, http.StatusBadRequest, core.Errf(core.ErrConfig, "",
				"changed/removed require a base snapshot key"))
			return
		}
		res, err = s.Analyze(ctx, opts, req.Sources)
	}
	root.End(trace.Bool("error", err != nil))
	if err != nil {
		writeError(ctx, w, statusFor(err), err)
		return
	}
	if res.Cached {
		w.Header().Set("X-Regionwiz-Cache", "hit")
	} else {
		w.Header().Set("X-Regionwiz-Cache", "miss")
	}
	resp := AnalyzeResponse{
		Cached:    res.Cached,
		Coalesced: res.Coalesced,
		Key:       res.Key,
		Report:    json.RawMessage(res.ReportJSON),
	}
	if res.Delta != nil {
		resp.Delta = &DeltaResponse{
			Schema:       DeltaSchemaV1,
			Base:         res.Delta.Base,
			FilesReused:  res.Delta.FilesReused,
			FilesChanged: res.Delta.FilesChanged,
			FilesRemoved: res.Delta.FilesRemoved,
		}
	}
	if tr != nil {
		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf); err == nil {
			resp.Trace = json.RawMessage(buf.Bytes())
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleExplain serves GET /v1/explain?key=<result key>[&warning=N|all].
// The key names a completed /v1/analyze response; warning selects one
// 1-based report index or every warning ("all", the default). A key
// that has been evicted from the result cache answers 409 with kind
// "snapshot_gone": re-run the analysis (same sources, same options —
// the key is content-addressed, so it comes back identical) and retry.
func handleExplain(s *Service, w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(ctx, w, http.StatusMethodNotAllowed,
			core.Errf(core.ErrConfig, "", "explain wants GET, got %s", r.Method))
		return
	}
	q := r.URL.Query()
	key := q.Get("key")
	if key == "" {
		writeError(ctx, w, http.StatusBadRequest,
			core.Errf(core.ErrConfig, "", "explain wants ?key=<analyze response key>"))
		return
	}
	warning := 0
	if sel := q.Get("warning"); sel != "" && sel != "all" {
		n, err := strconv.Atoi(sel)
		if err != nil || n < 1 {
			writeError(ctx, w, http.StatusBadRequest, core.Errf(core.ErrConfig, "",
				"explain: warning must be a 1-based index or \"all\", got %q", sel))
			return
		}
		warning = n
	}
	res, err := s.Explain(ctx, key, warning)
	if err != nil {
		writeError(ctx, w, statusFor(err), err)
		return
	}
	exps := res.Explanations
	if exps == nil {
		exps = []*core.Explanation{}
	}
	writeJSON(w, http.StatusOK, ExplainResponse{
		Schema:        core.ExplainSchemaV1,
		Key:           key,
		Replayed:      res.Replayed,
		WarningsTotal: res.Warnings,
		Explanations:  exps,
	})
}

// handleQuery serves GET /v1/query?key=<result key>&src=<pos>&dst=<pos>.
// The key names a completed /v1/analyze response; src and dst are
// "file:line" or "file:line:col" allocation-site positions. A key that
// has been evicted from the result cache answers 409 with kind
// "snapshot_gone": re-run the analysis (same sources, same options —
// the key is content-addressed, so it comes back identical) and retry.
func handleQuery(s *Service, w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(ctx, w, http.StatusMethodNotAllowed,
			core.Errf(core.ErrConfig, "", "query wants GET, got %s", r.Method))
		return
	}
	q := r.URL.Query()
	key, src, dst := q.Get("key"), q.Get("src"), q.Get("dst")
	if key == "" || src == "" || dst == "" {
		writeError(ctx, w, http.StatusBadRequest, core.Errf(core.ErrConfig, "",
			"query wants ?key=<analyze response key>&src=<file:line[:col]>&dst=<file:line[:col]>"))
		return
	}
	res, err := s.Query(ctx, key, src, dst)
	if err != nil {
		writeError(ctx, w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, QueryResponse{
		Schema: core.QuerySchemaV1,
		Key:    key,
		Answer: res.Answer,
	})
}

// statusFor maps error kinds to HTTP statuses.
func statusFor(err error) int {
	var aerr *core.Error
	if !errors.As(err, &aerr) {
		return http.StatusInternalServerError
	}
	switch aerr.Kind {
	case core.ErrConfig:
		return http.StatusBadRequest
	case core.ErrParse, core.ErrResolve:
		return http.StatusUnprocessableEntity
	case core.ErrOverload:
		return http.StatusTooManyRequests
	case core.ErrSnapshotGone:
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}

// writeError renders a failure body. The context's request id (set by
// the daemon's logging middleware) is echoed into the body and onto a
// structured log line, so a 4xx/5xx response, its access-log entry,
// and its error detail all correlate on one id.
func writeError(ctx context.Context, w http.ResponseWriter, status int, err error) {
	kind, pos := core.ErrInternal, ""
	var aerr *core.Error
	if errors.As(err, &aerr) {
		kind, pos = aerr.Kind, aerr.Pos
	}
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	id := RequestID(ctx)
	level := slog.LevelWarn
	if status >= 500 {
		level = slog.LevelError
	}
	slog.Default().LogAttrs(ctx, level, "request failed",
		slog.String("id", id),
		slog.Int("status", status),
		slog.String("kind", kind.String()),
		slog.String("err", err.Error()))
	writeJSON(w, status, errorResponse{Error: errorJSON{
		Kind:      kind.String(),
		Message:   err.Error(),
		Pos:       pos,
		RequestID: id,
	}})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeMetrics renders the stats snapshot in the Prometheus text
// exposition format (hand-rolled: no client library dependency).
func writeMetrics(w http.ResponseWriter, st Stats) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var sb strings.Builder
	counter := func(name string, v uint64, help string) {
		fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name string, v int64, help string) {
		fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("regionwizd_requests_total", st.Requests, "Analyze requests received.")
	counter("regionwizd_cache_hits_total", st.Hits, "Requests served from the result cache.")
	counter("regionwizd_coalesced_total", st.Coalesced, "Requests coalesced onto an identical in-flight run.")
	counter("regionwizd_cache_misses_total", st.Misses, "Requests that ran the pipeline.")
	counter("regionwizd_overloads_total", st.Overloads, "Requests rejected by admission control.")
	counter("regionwizd_errors_total", st.Errors, "Failed requests, overloads included.")
	counter("regionwizd_cache_evictions_total", st.CacheEvictions, "Cache entries evicted to make room.")
	counter("regionwizd_delta_requests_total", st.DeltaRequests, "Requests that named a base snapshot.")
	counter("regionwizd_snapshot_hits_total", st.SnapshotHits, "Delta requests whose base snapshot was held.")
	counter("regionwizd_snapshot_gone_total", st.SnapshotGone, "Delta requests rejected because the base snapshot was gone.")
	counter("regionwizd_snapshot_evictions_total", st.SnapshotEvictions, "Snapshots evicted to make room.")
	counter("regionwizd_frontend_files_reused_total", st.FrontendFilesReused, "Source files whose front-end artifacts were reused.")
	counter("regionwizd_frontend_files_rerun_total", st.FrontendFilesRerun, "Source files re-parsed by snapshot-backed runs.")
	counter("regionwizd_queue_waits_total", st.QueueWaits, "Requests that waited in the admission queue.")
	counter("regionwizd_parallel_solves_total", st.ParallelSolves, "Pipeline runs with intra-request solve parallelism.")
	counter("regionwizd_solver_workers_used_total", st.SolverWorkersUsed, "Sum of solver worker counts across parallel runs.")
	counter("regionwizd_warnings_total", st.Warnings, "Warnings reported across every pipeline run.")
	counter("regionwizd_explain_requests_total", st.ExplainRequests, "Provenance (explain) queries served.")
	counter("regionwizd_explain_replays_total", st.ExplainReplays, "Explain queries answered by demand-driven replay.")
	counter("regionwizd_query_requests_total", st.QueryRequests, "Demand pair queries served.")
	counter("regionwizd_query_inconsistent_total", st.QueryInconsistent, "Demand pair queries with an inconsistent verdict.")
	gauge("regionwizd_inflight", st.Inflight, "Pipeline runs executing now.")
	gauge("regionwizd_queued", st.Queued, "Requests waiting for a worker slot.")
	gauge("regionwizd_cache_entries", int64(st.CacheEntries), "Result cache population.")
	gauge("regionwizd_snapshot_entries", int64(st.SnapshotEntries), "Snapshot store population.")
	fmt.Fprintf(&sb, "# HELP regionwizd_queue_wait_seconds_total Cumulative admission queue wait.\n# TYPE regionwizd_queue_wait_seconds_total counter\nregionwizd_queue_wait_seconds_total %g\n",
		st.QueueWait.Seconds())
	names := make([]string, 0, len(st.Phases))
	for name := range st.Phases {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) > 0 {
		sb.WriteString("# HELP regionwizd_phase_runs_total Pipeline phase executions.\n# TYPE regionwizd_phase_runs_total counter\n")
		for _, name := range names {
			fmt.Fprintf(&sb, "regionwizd_phase_runs_total{phase=%q} %d\n", name, st.Phases[name].Runs)
		}
		sb.WriteString("# HELP regionwizd_phase_wall_seconds_total Cumulative phase wall time.\n# TYPE regionwizd_phase_wall_seconds_total counter\n")
		for _, name := range names {
			fmt.Fprintf(&sb, "regionwizd_phase_wall_seconds_total{phase=%q} %g\n", name, st.Phases[name].Wall.Seconds())
		}
		sb.WriteString("# HELP regionwizd_phase_alloc_bytes_total Cumulative phase allocation.\n# TYPE regionwizd_phase_alloc_bytes_total counter\n")
		for _, name := range names {
			fmt.Fprintf(&sb, "regionwizd_phase_alloc_bytes_total{phase=%q} %d\n", name, st.Phases[name].AllocBytes)
		}
	}
	if len(st.BDDOutputs) > 0 {
		keys := make([]string, 0, len(st.BDDOutputs))
		for k := range st.BDDOutputs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			// bdd_cache_hits -> regionwizd_bdd_cache_hits_total etc.;
			// cumulative over every bdd-backend pipeline run. The
			// collector routes bdd_peak_nodes (a per-request gauge, not
			// a counter) to BDDPeakNodes, so it never lands here.
			counter("regionwizd_"+k+"_total", uint64(st.BDDOutputs[k]),
				"Cumulative BDD kernel counter from the pairs phase.")
		}
	}
	if st.BDDPeakNodes > 0 {
		gauge("regionwizd_bdd_peak_nodes", st.BDDPeakNodes,
			"Largest single-request BDD node peak observed.")
	}
	writeHistogram(&sb, "regionwizd_analyze_duration_seconds",
		"End-to-end Analyze latency, all outcomes.", "", st.Histograms["analyze"])
	writeHistogram(&sb, "regionwizd_queue_wait_seconds",
		"Admission queue wait of queued requests.", "", st.Histograms["queue_wait"])
	writeHistogram(&sb, "regionwizd_explain_duration_seconds",
		"Explain (provenance) query latency.", "", st.Histograms["explain"])
	writeHistogram(&sb, "regionwizd_query_duration_seconds",
		"Demand pair query latency.", "", st.Histograms["query"])
	hnames := make([]string, 0, len(st.Histograms))
	for name := range st.Histograms {
		if strings.HasPrefix(name, "phase:") {
			hnames = append(hnames, name)
		}
	}
	sort.Strings(hnames)
	for i, name := range hnames {
		help := ""
		if i == 0 {
			help = "Pipeline phase duration."
		}
		writeHistogram(&sb, "regionwizd_phase_duration_seconds", help,
			fmt.Sprintf("phase=%q", strings.TrimPrefix(name, "phase:")), st.Histograms[name])
	}
	w.Write([]byte(sb.String()))
}

// writeHistogram renders one histogram in Prometheus exposition form:
// cumulative le-labelled buckets, then _sum and _count. A histogram
// with no observations is skipped entirely (its series would be all
// zeros). labels, when non-empty, is spliced into every series.
func writeHistogram(sb *strings.Builder, name, help, labels string, h HistogramSnapshot) {
	if h.Count == 0 {
		return
	}
	if help != "" {
		fmt.Fprintf(sb, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	}
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		fmt.Fprintf(sb, "%s_bucket{%s%sle=\"%g\"} %d\n", name, labels, sep, bound, cum)
	}
	cum += h.Counts[len(h.Bounds)]
	fmt.Fprintf(sb, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels != "" {
		fmt.Fprintf(sb, "%s_sum{%s} %g\n%s_count{%s} %d\n", name, labels, h.Sum.Seconds(), name, labels, h.Count)
	} else {
		fmt.Fprintf(sb, "%s_sum %g\n%s_count %d\n", name, h.Sum.Seconds(), name, h.Count)
	}
}
