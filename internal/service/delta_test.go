package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"

	"context"
)

// deltaSources is a two-file program whose main.c body is
// parameterized, so edits leave lib.c untouched.
func deltaSources(body string) map[string]string {
	return map[string]string{
		"lib.c": `
typedef struct region_t region_t;
extern region_t *rnew(region_t *parent);
extern void *ralloc(region_t *r);
struct conn_t { int fd; struct conn_t *next; };
struct conn_t *mkconn(region_t *r) {
    struct conn_t *c;
    c = ralloc(r);
    return c;
}
void conn_link(struct conn_t *x, struct conn_t *y) {
    x->next = y;
}`,
		"main.c": `
typedef struct region_t region_t;
extern region_t *rnew(region_t *parent);
extern void *ralloc(region_t *r);
struct conn_t;
extern struct conn_t *mkconn(region_t *r);
extern void conn_link(struct conn_t *x, struct conn_t *y);
int main(void) {
    region_t *r;
    region_t *subr;
    struct conn_t *a;
    struct conn_t *b;
    r = rnew(NULL);
    subr = rnew(r);
    a = mkconn(r);
    b = mkconn(subr);
` + body + `
    return 0;
}`,
	}
}

// stripVolatile removes the wall-clock and per-phase stats from a
// report, leaving everything an incremental run must reproduce
// byte-for-byte (phase outputs legitimately differ: the delta run
// reports reuse counters a cold run does not have).
func stripVolatile(t *testing.T, report []byte) string {
	t.Helper()
	var m map[string]interface{}
	if err := json.Unmarshal(report, &m); err != nil {
		t.Fatalf("report not JSON: %v", err)
	}
	stats := m["stats"].(map[string]interface{})
	delete(stats, "time_ms")
	delete(stats, "phases")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

func TestDeltaAnalyze(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	ctx := context.Background()

	full, err := s.Analyze(ctx, core.Options{}, deltaSources("conn_link(a, b);"))
	if err != nil {
		t.Fatal(err)
	}
	if full.Delta != nil {
		t.Fatal("full request carries a delta block")
	}

	edited := deltaSources("conn_link(b, a);")
	inc, err := s.AnalyzeDelta(ctx, core.Options{}, full.Key,
		map[string]string{"main.c": edited["main.c"]}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Delta == nil {
		t.Fatal("delta request returned no delta block")
	}
	if d := inc.Delta; d.Base != full.Key || d.FilesReused != 1 || d.FilesChanged != 1 || d.FilesRemoved != 0 {
		t.Fatalf("delta info = %+v, want base=%s reused=1 changed=1 removed=0", d, full.Key)
	}
	if inc.Analysis == nil || inc.Analysis.Front.ParseReused != 1 {
		t.Fatalf("delta run did not reuse lib.c's parse: %+v", inc.Analysis.Front)
	}

	// The delta run must match a from-scratch analysis of the same
	// final sources, computed on an independent service so the shared
	// cache key cannot short-circuit the comparison.
	s2 := New(Config{Workers: 1})
	defer s2.Close()
	scratch, err := s2.Analyze(ctx, core.Options{}, edited)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Key != scratch.Key {
		t.Fatalf("delta key %s differs from the equivalent full request's %s", inc.Key, scratch.Key)
	}
	if got, want := stripVolatile(t, inc.ReportJSON), stripVolatile(t, scratch.ReportJSON); got != want {
		t.Fatalf("delta report differs from from-scratch:\n%s\nvs\n%s", got, want)
	}

	// Chaining: the delta response's key is itself a usable base.
	back, err := s.AnalyzeDelta(ctx, core.Options{}, inc.Key,
		map[string]string{"main.c": deltaSources("conn_link(a, b);")["main.c"]}, nil)
	if err != nil {
		t.Fatalf("chained delta: %v", err)
	}
	if !back.Cached {
		t.Fatal("chained delta back to the original sources missed the result cache")
	}
	if back.Delta == nil || back.Delta.Base != inc.Key {
		t.Fatalf("cached delta response lost its delta block: %+v", back.Delta)
	}

	st := s.Stats()
	if st.DeltaRequests != 2 || st.SnapshotHits != 2 || st.SnapshotGone != 0 {
		t.Fatalf("stats = delta %d / hits %d / gone %d, want 2/2/0",
			st.DeltaRequests, st.SnapshotHits, st.SnapshotGone)
	}
	if st.FrontendFilesReused == 0 {
		t.Fatalf("frontend_files_reused = 0 after a delta run")
	}
	if st.SnapshotEntries == 0 {
		t.Fatal("snapshot store empty after successful runs")
	}
}

func TestDeltaUnknownBaseGone(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	_, err := s.AnalyzeDelta(context.Background(), core.Options{},
		strings.Repeat("ab", 32), map[string]string{"x.c": "int main(void) { return 0; }"}, nil)
	var aerr *core.Error
	if !errors.As(err, &aerr) || aerr.Kind != core.ErrSnapshotGone {
		t.Fatalf("err = %v, want snapshot_gone Error", err)
	}
	if st := s.Stats(); st.SnapshotGone != 1 {
		t.Fatalf("snapshot_gone = %d, want 1", st.SnapshotGone)
	}
}

func TestDeltaOptionMismatch(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ctx := context.Background()
	full, err := s.Analyze(ctx, core.Options{}, deltaSources("conn_link(a, b);"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.AnalyzeDelta(ctx, core.Options{ContextCap: 1}, full.Key, nil, nil)
	var aerr *core.Error
	if !errors.As(err, &aerr) || aerr.Kind != core.ErrConfig {
		t.Fatalf("err = %v, want config Error for option mismatch", err)
	}
}

func TestDeltaDisabledSnapshots(t *testing.T) {
	// SnapshotEntries < 0 disables the store: every delta is gone.
	s := New(Config{Workers: 1, SnapshotEntries: -1})
	defer s.Close()
	ctx := context.Background()
	full, err := s.Analyze(ctx, core.Options{}, deltaSources("conn_link(a, b);"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.AnalyzeDelta(ctx, core.Options{}, full.Key, nil, nil)
	var aerr *core.Error
	if !errors.As(err, &aerr) || aerr.Kind != core.ErrSnapshotGone {
		t.Fatalf("err = %v, want snapshot_gone when the store is disabled", err)
	}
}

func TestDeltaHTTP(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	body, err := json.Marshal(Request{Sources: deltaSources("conn_link(a, b);")})
	if err != nil {
		t.Fatal(err)
	}
	resp, data := postAnalyze(t, srv, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("full status %d: %s", resp.StatusCode, data)
	}
	var fullResp AnalyzeResponse
	if err := json.Unmarshal(data, &fullResp); err != nil {
		t.Fatal(err)
	}
	if fullResp.Delta != nil {
		t.Fatal("full response carries a delta block")
	}

	edited := deltaSources("conn_link(b, a);")
	dbody, err := json.Marshal(Request{
		Base:    fullResp.Key,
		Changed: map[string]string{"main.c": edited["main.c"]},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, data = postAnalyze(t, srv, string(dbody))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta status %d: %s", resp.StatusCode, data)
	}
	var deltaResp AnalyzeResponse
	if err := json.Unmarshal(data, &deltaResp); err != nil {
		t.Fatal(err)
	}
	if deltaResp.Delta == nil {
		t.Fatal("delta response has no delta block")
	}
	if d := deltaResp.Delta; d.Schema != DeltaSchemaV1 || d.Base != fullResp.Key || d.FilesReused != 1 || d.FilesChanged != 1 {
		t.Fatalf("delta block = %+v", d)
	}

	// Unknown base -> 409 with kind snapshot_gone.
	gone, err := json.Marshal(Request{Base: strings.Repeat("cd", 32),
		Changed: map[string]string{"main.c": edited["main.c"]}})
	if err != nil {
		t.Fatal(err)
	}
	resp, data = postAnalyze(t, srv, string(gone))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("gone base status %d, want 409: %s", resp.StatusCode, data)
	}
	var er errorResponse
	if err := json.Unmarshal(data, &er); err != nil {
		t.Fatal(err)
	}
	if er.Error.Kind != "snapshot_gone" {
		t.Fatalf("error kind %q, want snapshot_gone", er.Error.Kind)
	}

	// Base plus full sources is ambiguous -> 400. Changed without a
	// base is likewise rejected.
	for _, bad := range []string{
		fmt.Sprintf(`{"base": %q, "sources": {"x.c": "int main(void) { return 0; }"}}`, fullResp.Key),
		`{"changed": {"x.c": "int main(void) { return 0; }"}}`,
	} {
		resp, data = postAnalyze(t, srv, bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("mixed-shape status %d, want 400: %s", resp.StatusCode, data)
		}
	}
}
