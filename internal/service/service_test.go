package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/pipeline"
)

const brokenSrc = `
typedef struct region_t region_t;
extern region_t *rnew(region_t *parent);
extern void *ralloc(region_t *r);

struct conn_t { int fd; };
struct req_t { struct conn_t *connection; };

int main(void) {
    region_t *r; region_t *subr;
    struct conn_t *conn; struct req_t *req;
    r = rnew(NULL);
    conn = ralloc(r);
    subr = rnew(NULL);   /* BUG: sibling */
    req = ralloc(subr);
    req->connection = conn;
    return 0;
}
`

func sourcesFor(i int) map[string]string {
	// Distinct file names (and a distinguishing comment) make
	// distinct content-addressed keys.
	return map[string]string{
		fmt.Sprintf("prog%d.c", i): fmt.Sprintf("/* variant %d */\n%s", i, brokenSrc),
	}
}

// phaseCounter counts pipeline phase starts, per source file.
type phaseCounter struct {
	mu     sync.Mutex
	starts map[string]int // path of the (single) source -> parse starts
	total  atomic.Int64   // all phase starts, any phase
}

func newPhaseCounter() *phaseCounter { return &phaseCounter{starts: map[string]int{}} }

func (pc *phaseCounter) observer() pipeline.Observer[*core.Analysis] {
	return pipeline.ObserverFuncs[*core.Analysis]{
		Start: func(name string, a *core.Analysis) {
			pc.total.Add(1)
			if name != core.PhaseParse {
				return
			}
			pc.mu.Lock()
			defer pc.mu.Unlock()
			for p := range a.Sources {
				pc.starts[p]++
			}
		},
	}
}

func TestCacheHitRunsZeroPhases(t *testing.T) {
	pc := newPhaseCounter()
	s := New(Config{Workers: 2, Observer: pc.observer()})
	defer s.Close()
	ctx := context.Background()

	first, err := s.Analyze(ctx, core.Options{}, sourcesFor(0))
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached || first.Coalesced {
		t.Fatalf("first request disposition cached=%v coalesced=%v, want fresh", first.Cached, first.Coalesced)
	}
	if len(first.Analysis.Report.Warnings) != 1 {
		t.Fatalf("expected 1 warning, got %d", len(first.Analysis.Report.Warnings))
	}
	phasesAfterFirst := pc.total.Load()
	if phasesAfterFirst == 0 {
		t.Fatal("observer saw no phases on the first run")
	}

	second, err := s.Analyze(ctx, core.Options{}, sourcesFor(0))
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second identical request was not served from cache")
	}
	if got := pc.total.Load(); got != phasesAfterFirst {
		t.Fatalf("cache hit ran %d pipeline phases, want 0", got-phasesAfterFirst)
	}
	if !bytes.Equal(first.ReportJSON, second.ReportJSON) {
		t.Fatal("cached report JSON differs from the fresh report")
	}
	if second.Key != first.Key {
		t.Fatalf("keys differ across identical requests: %s vs %s", first.Key, second.Key)
	}

	st := s.Stats()
	if st.Requests != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 2 requests / 1 hit / 1 miss", st)
	}
	if st.Phases[core.PhaseParse].Runs != 1 {
		t.Fatalf("parse phase total runs = %d, want 1", st.Phases[core.PhaseParse].Runs)
	}
}

// TestEquivalentOptionsShareCache: two spellings of the same
// configuration normalize to the same fingerprint and hit.
func TestEquivalentOptionsShareCache(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ctx := context.Background()
	if _, err := s.Analyze(ctx, core.Options{}, sourcesFor(0)); err != nil {
		t.Fatal(err)
	}
	res, err := s.Analyze(ctx, core.Options{Entry: "main", ContextCap: 4096, HeapCloning: core.Bool(true)}, sourcesFor(0))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Fatal("equivalent options missed the cache")
	}
}

// blockingObserver gates pipeline runs: each run parks in PhaseStart
// until release is closed, letting tests saturate the pool.
func blockingObserver(started chan<- struct{}, release <-chan struct{}) pipeline.Observer[*core.Analysis] {
	return pipeline.ObserverFuncs[*core.Analysis]{
		Start: func(name string, _ *core.Analysis) {
			if name == core.PhaseParse {
				started <- struct{}{}
				<-release
			}
		},
	}
}

func TestSingleflightCoalesces(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	s := New(Config{Workers: 2, Observer: blockingObserver(started, release)})
	defer s.Close()
	ctx := context.Background()

	var wg sync.WaitGroup
	results := make([]*Result, 3)
	errs := make([]error, 3)
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], errs[0] = s.Analyze(ctx, core.Options{}, sourcesFor(0))
	}()
	<-started // leader is inside the pipeline now
	for i := 1; i < 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = s.Analyze(ctx, core.Options{}, sourcesFor(0))
		}()
	}
	// Give the followers time to register as waiters, then let the
	// leader finish. If a follower raced ahead and became a second
	// leader it would park in the observer and `started` would fill —
	// checked below.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	for _, r := range results {
		if !bytes.Equal(r.ReportJSON, results[0].ReportJSON) {
			t.Fatal("shared results are not byte-identical")
		}
	}
	st := s.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want exactly 1 pipeline run for 3 identical requests", st.Misses)
	}
	if int(st.Coalesced)+int(st.Hits) != 2 {
		t.Fatalf("coalesced+hits = %d+%d, want 2", st.Coalesced, st.Hits)
	}
}

func TestOverloadFailsFast(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	s := New(Config{Workers: 1, QueueDepth: -1, Observer: blockingObserver(started, release)})
	defer s.Close()
	ctx := context.Background()

	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := s.Analyze(ctx, core.Options{}, sourcesFor(0)); err != nil {
			t.Errorf("occupant: %v", err)
		}
	}()
	<-started // pool is now saturated

	_, err := s.Analyze(ctx, core.Options{}, sourcesFor(1))
	var aerr *core.Error
	if !errors.As(err, &aerr) || aerr.Kind != core.ErrOverload {
		t.Fatalf("err = %v, want overload Error", err)
	}
	if !errors.Is(err, &core.Error{Kind: core.ErrOverload}) {
		t.Fatal("errors.Is against overload sentinel failed")
	}

	close(release)
	<-done
	st := s.Stats()
	if st.Overloads != 1 {
		t.Fatalf("overloads = %d, want 1", st.Overloads)
	}
	// The pool drained: a new distinct request runs fine.
	if _, err := s.Analyze(ctx, core.Options{}, sourcesFor(2)); err != nil {
		t.Fatalf("after drain: %v", err)
	}
}

func TestQueueDeadlineOverload(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	s := New(Config{Workers: 1, QueueDepth: 4, Observer: blockingObserver(started, release)})
	defer s.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Analyze(context.Background(), core.Options{}, sourcesFor(0))
	}()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := s.Analyze(ctx, core.Options{}, sourcesFor(1))
	var aerr *core.Error
	if !errors.As(err, &aerr) || aerr.Kind != core.ErrOverload {
		t.Fatalf("err = %v, want overload Error for deadline expiring in queue", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wraps context.DeadlineExceeded", err)
	}
	close(release)
	<-done
}

func TestCloseRejectsAndDrains(t *testing.T) {
	s := New(Config{Workers: 1})
	ctx := context.Background()
	if _, err := s.Analyze(ctx, core.Options{}, sourcesFor(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := s.Analyze(ctx, core.Options{}, sourcesFor(1)); err == nil {
		t.Fatal("Analyze after Close succeeded")
	}
}

// TestConcurrentCacheExercise is the -race workhorse: many goroutines
// fire a mixed hit/miss workload over a handful of unique keys and
// every response must carry byte-identical report JSON per key, with
// the pipeline (and its observer) having run exactly once per key.
func TestConcurrentCacheExercise(t *testing.T) {
	const uniqueKeys = 4
	const goroutines = 24
	const perG = 6

	pc := newPhaseCounter()
	s := New(Config{Workers: 4, QueueDepth: goroutines * perG, Observer: pc.observer()})
	defer s.Close()

	var mu sync.Mutex
	byKey := make(map[string][]byte) // source path -> report JSON
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				i := (g + j) % uniqueKeys
				res, err := s.Analyze(context.Background(), core.Options{}, sourcesFor(i))
				if err != nil {
					t.Errorf("g%d j%d: %v", g, j, err)
					return
				}
				path := fmt.Sprintf("prog%d.c", i)
				mu.Lock()
				if prev, ok := byKey[path]; ok {
					if !bytes.Equal(prev, res.ReportJSON) {
						t.Errorf("key %s: cached and fresh reports differ", path)
					}
				} else {
					byKey[path] = res.ReportJSON
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	pc.mu.Lock()
	defer pc.mu.Unlock()
	if len(pc.starts) != uniqueKeys {
		t.Fatalf("observer saw %d unique programs, want %d", len(pc.starts), uniqueKeys)
	}
	for path, n := range pc.starts {
		if n != 1 {
			t.Errorf("observer fired %d times for %s, want exactly 1", n, path)
		}
	}
	st := s.Stats()
	if st.Misses != uniqueKeys {
		t.Errorf("misses = %d, want %d (one pipeline run per unique key)", st.Misses, uniqueKeys)
	}
	if st.Requests != goroutines*perG {
		t.Errorf("requests = %d, want %d", st.Requests, goroutines*perG)
	}
	if got := st.Hits + st.Coalesced + st.Misses; got != st.Requests {
		t.Errorf("hits+coalesced+misses = %d, want %d", got, st.Requests)
	}
}

// TestNoGoroutineLeak saturates the pool, collects overload errors,
// drains, closes, and requires the goroutine count to settle back —
// the admission-control "no goroutine leak" acceptance check (run
// under -race in CI).
func TestNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	started := make(chan struct{}, 1)
	release := make(chan struct{})
	s := New(Config{Workers: 1, QueueDepth: -1, Observer: blockingObserver(started, release)})
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Analyze(context.Background(), core.Options{}, sourcesFor(0))
	}()
	<-started
	for i := 0; i < 16; i++ {
		if _, err := s.Analyze(context.Background(), core.Options{}, sourcesFor(1+i%3)); err == nil {
			t.Fatal("saturated service accepted a request")
		}
	}
	close(release)
	<-done
	s.Close()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after drain", before, runtime.NumGoroutine())
}

func TestAnalyzeValidatesRequest(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	_, err := s.Analyze(context.Background(), core.Options{KCFA: -1}, sourcesFor(0))
	var aerr *core.Error
	if !errors.As(err, &aerr) || aerr.Kind != core.ErrConfig {
		t.Fatalf("err = %v, want config Error", err)
	}
	_, err = s.Analyze(context.Background(), core.Options{}, nil)
	if !errors.As(err, &aerr) || aerr.Kind != core.ErrConfig {
		t.Fatalf("empty sources err = %v, want config Error", err)
	}
	// Errors are not cached: a parse failure retried still fails (and
	// reruns), then the fixed source succeeds under the same path.
	bad := map[string]string{"x.c": "int main(void) { return }"}
	if _, err := s.Analyze(context.Background(), core.Options{}, bad); err == nil {
		t.Fatal("parse error expected")
	}
	if _, err := s.Analyze(context.Background(), core.Options{}, map[string]string{"x.c": "int main(void) { return 0; }"}); err != nil {
		t.Fatalf("fixed source: %v", err)
	}
}

func TestLRUCacheEviction(t *testing.T) {
	s := New(Config{Workers: 1, CacheEntries: 2})
	defer s.Close()
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := s.Analyze(ctx, core.Options{}, sourcesFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.CacheEntries != 2 || st.CacheEvictions != 1 {
		t.Fatalf("cache entries=%d evictions=%d, want 2/1", st.CacheEntries, st.CacheEvictions)
	}
	// Key 0 was evicted (LRU), key 2 still hits.
	res, err := s.Analyze(ctx, core.Options{}, sourcesFor(2))
	if err != nil || !res.Cached {
		t.Fatalf("key 2 cached=%v err=%v, want hit", res != nil && res.Cached, err)
	}
	res, err = s.Analyze(ctx, core.Options{}, sourcesFor(0))
	if err != nil || res.Cached {
		t.Fatalf("key 0 cached=%v err=%v, want evicted miss", res != nil && res.Cached, err)
	}
}
