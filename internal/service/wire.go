package service

import (
	"repro/internal/bdd"
	"repro/internal/core"
)

// DeltaSchemaV1 identifies the delta request/response encoding
// (Request.Base/Changed/Removed and the response's "delta" block).
const DeltaSchemaV1 = "regionwiz/delta/v1"

// Request is the POST /v1/analyze body. It comes in two shapes: a
// full request carries Sources; a delta request (schema
// "regionwiz/delta/v1") instead names a Base — the key of any prior
// response — plus the files Changed (path -> new content, including
// added files) and Removed since that run. The two shapes are
// mutually exclusive.
type Request struct {
	// Sources maps path -> CMinor/C-subset content.
	Sources map[string]string `json:"sources,omitempty"`
	// Base is the response key of a prior run whose snapshot this
	// delta applies to. If the daemon no longer holds that snapshot the
	// request fails with kind "snapshot_gone" (HTTP 409); resend the
	// full sources.
	Base string `json:"base,omitempty"`
	// Changed maps path -> full new content for edited or added files.
	Changed map[string]string `json:"changed,omitempty"`
	// Removed lists paths deleted since the base run.
	Removed []string `json:"removed,omitempty"`
	// Options selects the analysis configuration; the zero value is
	// the default analysis (entry "main", both region APIs).
	Options RequestOptions `json:"options"`
	// Trace, when true, records a per-request trace and returns it in
	// AnalyzeResponse.Trace (Chrome trace_event JSON, schema
	// "regionwiz/trace/v1"). Tracing never changes the report, so it
	// deliberately lives outside Options and the cache key — but note
	// a cache hit or coalesced request has no pipeline to trace and
	// returns only the request-level spans.
	Trace bool `json:"trace,omitempty"`
}

// RequestOptions is the JSON shape of regionwiz Options — the subset
// that travels over the wire (observers and custom API tables do
// not).
type RequestOptions struct {
	// Entry is the program entry function (default "main").
	Entry string `json:"entry,omitempty"`
	// API selects the region interface: "apr", "rc", or "both"
	// (default "both").
	API string `json:"api,omitempty"`
	// ContextCap bounds per-function context counts (default 4096).
	ContextCap uint64 `json:"context_cap,omitempty"`
	// HeapCloning toggles heap cloning (default true).
	HeapCloning *bool `json:"heap_cloning,omitempty"`
	// Backend selects the pair engine: "explicit" or "bdd"
	// (default "explicit").
	Backend string `json:"backend,omitempty"`
	// KCFA switches to k-CFA call strings of this depth (0 keeps
	// call-path numbering).
	KCFA int `json:"kcfa,omitempty"`
	// ContextPolicy names the context-numbering policy: "clone" (full
	// call-path cloning, the default), "kcfa" (requires kcfa > 0), or
	// "origin" (allocation-site origin sensitivity). Origin changes
	// results and is part of the cache key.
	ContextPolicy string `json:"context_policy,omitempty"`
	// Entries, when present, analyzes an open program with the listed
	// roots (empty list = every defined function).
	Entries []string `json:"entries,omitempty"`
	// Refine enables the def-use (Figure 5(b)) refinement.
	Refine bool `json:"refine,omitempty"`
	// ExtraAllocFns adds malloc-style allocator names.
	ExtraAllocFns []string `json:"extra_alloc_fns,omitempty"`
	// BDDNodeSize / BDDCacheRatio tune the BDD kernel when the bdd
	// backend runs (0 = service default). Kernel sizing never changes
	// results, so these do not affect the cache key.
	BDDNodeSize   int `json:"bdd_node_size,omitempty"`
	BDDCacheRatio int `json:"bdd_cache_ratio,omitempty"`
	// BDDGC / BDDGCThreshold / BDDReorder control the kernel's
	// mark-and-sweep collection and sifting-based variable reordering.
	// Both are report-invariant (asserted by the oracle), so like the
	// sizing knobs they stay out of the cache key.
	BDDGC          bool `json:"bdd_gc,omitempty"`
	BDDGCThreshold int  `json:"bdd_gc_threshold,omitempty"`
	BDDReorder     bool `json:"bdd_reorder,omitempty"`
	// SolverWorkers shards the solve inside this request across a
	// worker pool (0 = service default, 1 = sequential). Reports are
	// identical for every worker count, so this does not affect the
	// cache key.
	SolverWorkers int `json:"solver_workers,omitempty"`
	// SolverMaxRounds bounds fixpoint rounds (0 = unlimited). A nonzero
	// bound can change results and is part of the cache key.
	SolverMaxRounds int `json:"solver_max_rounds,omitempty"`
	// PtsLimit caps each variable's points-to set (0 = unlimited);
	// overflow collapses to a tainted ⊤ object and the report is
	// marked throttled. A nonzero cap changes results and is part of
	// the cache key.
	PtsLimit int `json:"pts_limit,omitempty"`
	// Provenance records derivation witnesses during the solve
	// (explicit backend only) so later /v1/explain queries answer from
	// recorded provenance instead of demand-driven replay. It never
	// changes the report and stays out of the cache key; explanations
	// are byte-identical either way.
	Provenance bool `json:"provenance,omitempty"`
}

// ToOptions converts the wire form to core Options, rejecting unknown
// enum spellings with a config-kind error.
func (ro RequestOptions) ToOptions() (core.Options, error) {
	opts := core.Options{
		Entry:            ro.Entry,
		ContextCap:       ro.ContextCap,
		HeapCloning:      ro.HeapCloning,
		KCFA:             ro.KCFA,
		Entries:          ro.Entries,
		DefUseRefinement: ro.Refine,
		ExtraAllocFns:    ro.ExtraAllocFns,
		Provenance:       ro.Provenance,
		Solver: core.SolverOptions{
			Workers:   ro.SolverWorkers,
			MaxRounds: ro.SolverMaxRounds,
			PtsLimit:  ro.PtsLimit,
			BDD: bdd.Config{
				NodeSize:    ro.BDDNodeSize,
				CacheRatio:  ro.BDDCacheRatio,
				GC:          ro.BDDGC,
				GCThreshold: ro.BDDGCThreshold,
				Reorder:     ro.BDDReorder,
			},
		},
	}
	switch ro.API {
	case "", "both":
		// Normalize fills the merged default.
	case "apr":
		opts.API = core.APRPools()
	case "rc":
		opts.API = core.RCRegions()
	default:
		return core.Options{}, core.Errf(core.ErrConfig, "", "options: unknown api %q (want apr, rc, or both)", ro.API)
	}
	switch ro.Backend {
	case "", "explicit":
		opts.Solver.Backend = core.ExplicitBackend
	case "bdd":
		opts.Solver.Backend = core.BDDBackend
	default:
		return core.Options{}, core.Errf(core.ErrConfig, "", "options: unknown backend %q (want explicit or bdd)", ro.Backend)
	}
	switch ro.ContextPolicy {
	case "", core.PolicyClone, core.PolicyKCFA, core.PolicyOrigin:
		opts.ContextPolicy = ro.ContextPolicy
	default:
		return core.Options{}, core.Errf(core.ErrConfig, "", "options: unknown context_policy %q (want clone, kcfa, or origin)", ro.ContextPolicy)
	}
	return opts, nil
}
