// Package service wraps the RegionWiz analysis pipeline in a
// long-running, cache-backed service: the engine behind the
// regionwiz.Analyzer handle and the regionwizd daemon.
//
// A request is (Options, sources). The service keys it by a
// content-addressed digest — the options fingerprint plus per-file
// source digests — and serves it one of three ways:
//
//   - cache hit: a completed identical request's result is returned
//     without running anything;
//   - coalesced: an identical request is already in flight, so this
//     one waits and shares its result (singleflight);
//   - fresh run: the request passes admission control (a bounded
//     worker pool with a bounded wait queue and per-request deadline)
//     and runs the pipeline; overflow is rejected with a typed
//     overload error instead of piling up goroutines.
//
// Per-phase cost totals, hit/miss/overload counters, and queue-wait
// gauges are collected from the pipeline's Observer seam and exposed
// via Stats.
package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// Config sizes the service. The zero value is ready to use.
type Config struct {
	// Workers bounds concurrent pipeline runs (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds requests waiting for a worker beyond the pool
	// (default 64). With the pool and queue both full, Analyze fails
	// fast with an overload error.
	QueueDepth int
	// CacheEntries bounds the LRU result cache (default 128; negative
	// disables caching — requests still coalesce while in flight).
	CacheEntries int
	// SnapshotEntries bounds the LRU snapshot store backing delta
	// requests (default 16; negative disables snapshots — every delta
	// request then fails with a snapshot-gone error and full requests
	// skip snapshot building). Snapshots hold parsed files and IR for
	// the whole source set, so they are much heavier than cached
	// results; size accordingly.
	SnapshotEntries int
	// RequestTimeout, when positive, caps each request end to end:
	// queue wait plus pipeline run (default none). The caller's
	// context deadline applies in addition.
	RequestTimeout time.Duration
	// Observer, when set, receives phase callbacks for every pipeline
	// run the service executes (after the service's own accounting).
	Observer pipeline.Observer[*core.Analysis]
	// BDD is the default BDD kernel sizing applied to requests that do
	// not set their own (the zero value keeps the kernel defaults).
	// Kernel sizing never changes results, so it does not enter cache
	// keys.
	BDD bdd.Config
	// SolverWorkers is the default per-request solve parallelism
	// applied to requests that do not set solver_workers themselves.
	// The default (0) keeps requests sequential: the service already
	// parallelizes across requests via Workers, so intra-request
	// sharding only pays off when the daemon is serving few, large
	// requests. Reports are identical for every worker count, so this
	// does not enter cache keys.
	SolverWorkers int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 128
	}
	if c.CacheEntries < 0 {
		c.CacheEntries = 0
	}
	if c.SnapshotEntries == 0 {
		c.SnapshotEntries = 16
	}
	if c.SnapshotEntries < 0 {
		c.SnapshotEntries = 0
	}
	return c
}

// Result is one served analysis.
type Result struct {
	// Analysis is the full pipeline state. Cached results share it:
	// treat it as immutable.
	Analysis *core.Analysis
	// ReportJSON is the canonical (compact) report encoding,
	// marshalled once when the run completed. Identical requests get
	// byte-identical ReportJSON regardless of how they were served.
	ReportJSON []byte
	// Key is the content-addressed request key.
	Key string
	// Cached reports a cache hit; Coalesced reports having shared an
	// in-flight identical run. Both false means this request ran the
	// pipeline.
	Cached    bool
	Coalesced bool
	// Delta describes how a delta request decomposed, nil for full
	// requests. It reflects the request's shape, not how the result was
	// computed: a delta request answered from the cache still reports
	// its file split.
	Delta *DeltaInfo

	// snap is the front-end snapshot the run produced, deposited into
	// the snapshot store under Key; nil for cache hits and when
	// snapshots are disabled.
	snap *core.Snapshot
}

// DeltaInfo summarizes a delta request against its base snapshot.
type DeltaInfo struct {
	// Base is the snapshot key the request named.
	Base string
	// FilesReused counts files taken unchanged from the base;
	// FilesChanged counts edited or added files; FilesRemoved counts
	// deletions.
	FilesReused  int
	FilesChanged int
	FilesRemoved int
}

// deltaReq is the delta half of a request on its way through the
// service.
type deltaReq struct {
	base    string
	changed map[string]string
	removed []string
}

// call is one in-flight pipeline run shared by identical requests.
type call struct {
	done chan struct{}
	res  *Result
	err  error
}

// Service is a reusable, concurrency-safe analysis front end.
// Create with New, release with Close.
type Service struct {
	cfg   Config
	stats *collector
	sem   chan struct{} // worker slots

	mu     sync.Mutex
	cache  *lruCache
	snaps  *snapStore
	calls  map[string]*call
	closed bool

	closeCh chan struct{}
	wg      sync.WaitGroup // in-flight leader requests
}

// New builds a Service from the config.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	return &Service{
		cfg:     cfg,
		stats:   newCollector(),
		sem:     make(chan struct{}, cfg.Workers),
		cache:   newLRUCache(cfg.CacheEntries),
		snaps:   newSnapStore(cfg.SnapshotEntries),
		calls:   make(map[string]*call),
		closeCh: make(chan struct{}),
	}
}

// Key returns the content-addressed cache key of a request: the
// normalized options fingerprint combined with a per-file digest of
// every source (see Digest). Any change to an option that can alter
// results, to a path, or to a file's content changes the key. The key
// of a completed request is also its snapshot handle: a later delta
// request names it as "base".
func Key(opts core.Options, sources map[string]string) string {
	h := sha256.New()
	io.WriteString(h, opts.Fingerprint())
	writeSources(h, sources)
	return hex.EncodeToString(h.Sum(nil))
}

// Analyze serves one analysis request. Identical repeats are answered
// from the cache (Result.Cached) or coalesced onto an in-flight run
// (Result.Coalesced); fresh work passes admission control first and
// fails fast with an ErrOverload-kind *core.Error when the pool and
// queue are saturated. Errors are shared with coalesced waiters but
// never cached, so a failed request does not poison its key.
func (s *Service) Analyze(ctx context.Context, opts core.Options, sources map[string]string) (*Result, error) {
	return s.serve(ctx, opts, sources, nil)
}

// AnalyzeDelta serves a delta request: the source set of a previous
// response (named by its key, the snapshot base) with changed paths
// overwritten or added and removed paths deleted. The run reuses the
// base snapshot's per-file front end; if the base has been evicted —
// or was never computed — the request fails with an
// ErrSnapshotGone-kind error (HTTP 409) and the client retries with
// full sources. The result is keyed and cached exactly as the
// equivalent full request would be: the report bytes are identical and
// the response key is a valid base for the next delta.
func (s *Service) AnalyzeDelta(ctx context.Context, opts core.Options, base string, changed map[string]string, removed []string) (*Result, error) {
	return s.serve(ctx, opts, nil, &deltaReq{base: base, changed: changed, removed: removed})
}

// serve is the shared outer shell: request accounting around analyze.
func (s *Service) serve(ctx context.Context, opts core.Options, sources map[string]string, delta *deltaReq) (*Result, error) {
	s.stats.requests.Add(1)
	if delta != nil {
		s.stats.deltaRequests.Add(1)
	}
	t0 := time.Now()
	ctx, sp := trace.StartSpan(ctx, "service.request")
	res, err := s.analyze(ctx, opts, sources, delta)
	s.stats.analyzeHist.observe(time.Since(t0))
	if err != nil {
		s.stats.errs.Add(1)
		sp.End(trace.Bool("error", true), trace.Str("outcome", "error"))
		return nil, err
	}
	if sp != nil {
		outcome := "run"
		switch {
		case res.Cached:
			outcome = "cache_hit"
		case res.Coalesced:
			outcome = "coalesced"
		}
		sp.End(trace.Str("outcome", outcome), trace.Str("key", res.Key[:12]))
	}
	return res, nil
}

func (s *Service) analyze(ctx context.Context, opts core.Options, sources map[string]string, delta *deltaReq) (*Result, error) {
	// Alias conflicts must be checked on the raw options: Normalize
	// mirrors the deprecated spellings into Solver and the
	// disagreement would vanish silently.
	if err := opts.AliasConflicts(); err != nil {
		return nil, err
	}
	opts = opts.Normalize()
	if opts.Solver.BDD == (bdd.Config{}) {
		opts.Solver.BDD = s.cfg.BDD
		opts.BDD = opts.Solver.BDD
	}
	if opts.Solver.Workers == 0 {
		opts.Solver.Workers = s.cfg.SolverWorkers
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}

	// A delta request materializes its source set from the base
	// snapshot, then flows through keying, caching, and coalescing
	// exactly like the full request it abbreviates.
	var base *core.Snapshot
	var dinfo *DeltaInfo
	if delta != nil {
		s.mu.Lock()
		snap, ok := s.snaps.get(delta.base)
		s.mu.Unlock()
		if !ok {
			s.stats.snapshotGone.Add(1)
			return nil, core.Errf(core.ErrSnapshotGone, "",
				"base snapshot %.12s… is gone (evicted or never computed); retry with full sources", delta.base)
		}
		if snap.Options().Fingerprint() != opts.Fingerprint() {
			return nil, core.Errf(core.ErrConfig, "",
				"delta request options do not match the base snapshot's")
		}
		s.stats.snapshotHits.Add(1)
		base = snap
		sources = snap.Apply(delta.changed, delta.removed)
		dinfo = &DeltaInfo{
			Base:         delta.base,
			FilesChanged: len(delta.changed),
			FilesRemoved: len(delta.removed),
		}
		for p := range sources {
			if _, changed := delta.changed[p]; !changed {
				dinfo.FilesReused++
			}
		}
	}
	if len(sources) == 0 {
		return nil, core.Errf(core.ErrConfig, "", "analysis request has no sources")
	}
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	key := Key(opts, sources)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errClosed()
	}
	if res, ok := s.cache.get(key); ok {
		s.mu.Unlock()
		s.stats.hits.Add(1)
		if sp := trace.SpanFromContext(ctx); sp != nil {
			sp.Event("cache_hit")
		}
		hit := *res
		hit.Cached = true
		hit.Delta = dinfo
		return &hit, nil
	}
	if c, ok := s.calls[key]; ok {
		s.mu.Unlock()
		cctx, wsp := trace.StartSpan(ctx, "service.coalesce_wait")
		res, err := s.await(cctx, c)
		wsp.End()
		if err == nil {
			res.Delta = dinfo
		}
		return res, err
	}
	c := &call{done: make(chan struct{})}
	s.calls[key] = c
	s.wg.Add(1)
	s.mu.Unlock()

	if opts.Solver.Workers > 1 {
		s.stats.parallelSolves.Add(1)
		s.stats.solverWorkersUsed.Add(uint64(opts.Solver.Workers))
	}
	res, err := s.run(ctx, key, opts, sources, base, delta)
	if err == nil {
		res.Delta = dinfo
	}

	s.mu.Lock()
	delete(s.calls, key)
	if err == nil {
		s.cache.add(key, res)
		if res.snap != nil {
			s.snaps.add(key, res.snap)
		}
	}
	s.mu.Unlock()
	c.res, c.err = res, err
	close(c.done)
	s.wg.Done()
	return res, err
}

// await joins an in-flight identical run.
func (s *Service) await(ctx context.Context, c *call) (*Result, error) {
	select {
	case <-c.done:
		if c.err != nil {
			return nil, c.err
		}
		s.stats.coalesced.Add(1)
		shared := *c.res
		shared.Coalesced = true
		return &shared, nil
	case <-ctx.Done():
		return nil, core.WrapError(core.ErrInternal, ctx.Err())
	}
}

// run is the leader path: admission control, then the pipeline. base
// and delta are non-nil for delta requests; the snapshot the run
// produces rides back on Result.snap.
func (s *Service) run(ctx context.Context, key string, opts core.Options, sources map[string]string, base *core.Snapshot, delta *deltaReq) (*Result, error) {
	select {
	case s.sem <- struct{}{}:
	default:
		// Pool full: queue if there is room, fail fast otherwise.
		if s.stats.queued.Add(1) > int64(s.cfg.QueueDepth) {
			s.stats.queued.Add(-1)
			s.stats.overloads.Add(1)
			return nil, core.Errf(core.ErrOverload, "",
				"analysis service overloaded: %d workers busy and queue of %d full",
				s.cfg.Workers, s.cfg.QueueDepth)
		}
		t0 := time.Now()
		_, qsp := trace.StartSpan(ctx, "service.admission_wait")
		select {
		case s.sem <- struct{}{}:
			s.stats.queued.Add(-1)
			qsp.End()
			s.stats.recordQueueWait(time.Since(t0))
		case <-ctx.Done():
			s.stats.queued.Add(-1)
			s.stats.overloads.Add(1)
			qsp.End(trace.Str("outcome", "expired"))
			return nil, &core.Error{
				Kind: core.ErrOverload,
				Msg:  fmt.Sprintf("analysis request expired after queueing %v: %v", time.Since(t0).Round(time.Millisecond), ctx.Err()),
				Err:  ctx.Err(),
			}
		case <-s.closeCh:
			s.stats.queued.Add(-1)
			qsp.End(trace.Str("outcome", "closed"))
			return nil, errClosed()
		}
	}
	defer func() { <-s.sem }()

	s.stats.misses.Add(1)
	s.stats.inflight.Add(1)
	defer s.stats.inflight.Add(-1)

	// The service's accounting observer wraps the configured one and
	// the leader request's own (coalesced waiters' observers do not
	// fire — the run is shared).
	opts.Observer = s.stats.phaseObserver(s.cfg.Observer, opts.Observer)
	actx, asp := trace.StartSpan(ctx, "service.analysis")
	var a *core.Analysis
	var snap *core.Snapshot
	var err error
	switch {
	case base != nil:
		a, snap, err = core.AnalyzeIncremental(actx, opts, base, delta.changed, delta.removed)
	case s.cfg.SnapshotEntries > 0:
		a, snap, err = core.AnalyzeSourceSnapshot(actx, opts, sources)
	default:
		a, err = core.AnalyzeSourceContext(actx, opts, sources)
	}
	asp.End(trace.Bool("error", err != nil))
	if err != nil {
		return nil, err
	}
	s.stats.frontendReused.Add(uint64(a.Front.ParseReused))
	s.stats.frontendRerun.Add(uint64(a.Front.ParseParsed))
	_, esp := trace.StartSpan(ctx, "service.encode")
	data, err := json.Marshal(a.Report)
	if esp != nil {
		esp.End(trace.Int("bytes", len(data)))
	}
	if err != nil {
		return nil, core.WrapError(core.ErrInternal, err)
	}
	s.stats.warnings.Add(uint64(len(a.Report.Warnings)))
	return &Result{Analysis: a, ReportJSON: data, Key: key, snap: snap}, nil
}

// ExplainResult is one served provenance query.
type ExplainResult struct {
	// Explanations holds the requested subset of the report's
	// warnings, in report order.
	Explanations []*core.Explanation
	// Replayed reports that the region strata were re-derived on
	// demand (BDD-backend or provenance-off results) rather than taken
	// from recorded witnesses. The explanation bytes are identical
	// either way.
	Replayed bool
	// Warnings is the underlying report's total warning count,
	// whatever subset was explained.
	Warnings int
}

// Explain answers a why-provenance query against a completed request,
// named by its content-addressed key. warning is a 1-based report
// index; 0 (or any non-positive value) explains every warning. The
// explanation engine runs over the cached Result's analysis state: if
// the key has been evicted — or never completed — Explain fails with
// an ErrSnapshotGone-kind error (HTTP 409) and the client re-runs the
// analysis first.
func (s *Service) Explain(ctx context.Context, key string, warning int) (*ExplainResult, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errClosed()
	}
	res, ok := s.cache.get(key)
	s.mu.Unlock()
	if !ok {
		return nil, core.Errf(core.ErrSnapshotGone, "",
			"result %.12s… is gone (evicted or never computed); re-run the analysis and retry", key)
	}
	t0 := time.Now()
	defer func() { s.stats.explainHist.observe(time.Since(t0)) }()
	s.stats.explainRequests.Add(1)
	// The cached Analysis is shared and immutable; Explainer is
	// read-only over it, so concurrent Explain calls on one key are
	// safe.
	ex, err := res.Analysis.Explainer(ctx)
	if err != nil {
		return nil, err
	}
	if ex.Replayed {
		s.stats.explainReplays.Add(1)
	}
	out := &ExplainResult{Replayed: ex.Replayed, Warnings: len(res.Analysis.Report.Warnings)}
	if warning <= 0 {
		out.Explanations, err = ex.ExplainAll(ctx)
	} else {
		var e *core.Explanation
		if e, err = ex.Explain(ctx, warning); err == nil {
			out.Explanations = []*core.Explanation{e}
		}
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// QueryResult is one served demand pair query.
type QueryResult struct {
	// Answer is the pair verdict (schema "regionwiz/query/v1").
	Answer *core.PairAnswer
}

// Query answers a demand-driven pair query against a completed
// request, named by its content-addressed key: may the objects
// allocated at src hold pointers into the objects allocated at dst
// across regions with no subregion order? src and dst are "file:line"
// or "file:line:col" allocation-site positions. The query runs over
// the cached Result's analysis state — only the two sites' access
// edges are checked, no global pair fixpoint — and its verdict agrees
// with the cached report. If the key has been evicted — or never
// completed — Query fails with an ErrSnapshotGone-kind error (HTTP
// 409) and the client re-runs the analysis first.
func (s *Service) Query(ctx context.Context, key, src, dst string) (*QueryResult, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errClosed()
	}
	res, ok := s.cache.get(key)
	s.mu.Unlock()
	if !ok {
		return nil, core.Errf(core.ErrSnapshotGone, "",
			"result %.12s… is gone (evicted or never computed); re-run the analysis and retry", key)
	}
	t0 := time.Now()
	defer func() { s.stats.queryHist.observe(time.Since(t0)) }()
	s.stats.queryRequests.Add(1)
	// The cached Analysis is shared and immutable; QueryPair is
	// read-only over it, so concurrent queries on one key are safe.
	ans, err := res.Analysis.QueryPair(ctx, src, dst)
	if err != nil {
		return nil, err
	}
	if ans.Inconsistent {
		s.stats.queryInconsistent.Add(1)
	}
	return &QueryResult{Answer: ans}, nil
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	st := s.stats.snapshot()
	s.mu.Lock()
	st.CacheEntries = s.cache.len()
	st.CacheEvictions = s.cache.evictions
	st.SnapshotEntries = s.snaps.len()
	st.SnapshotEvictions = s.snaps.evictions
	s.mu.Unlock()
	return st
}

// Close rejects new requests, fails queued ones, and waits for
// running pipelines to finish. It is idempotent.
func (s *Service) Close() error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.closeCh)
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

func errClosed() error {
	return core.Errf(core.ErrInternal, "", "analysis service is closed")
}
