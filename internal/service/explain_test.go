package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/bdd"
	"repro/internal/core"
)

// TestServiceExplain covers both answer paths — recorded provenance
// (explicit backend with Provenance on) and demand-driven replay (the
// default) — plus the snapshot-gone and out-of-range failure modes,
// and the explain counters.
func TestServiceExplain(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	ctx := context.Background()

	recorded, err := s.Analyze(ctx, core.Options{Provenance: true}, sourcesFor(0))
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := s.Analyze(ctx, core.Options{}, sourcesFor(1))
	if err != nil {
		t.Fatal(err)
	}

	rec, err := s.Explain(ctx, recorded.Key, 0)
	if err != nil {
		t.Fatalf("explain recorded: %v", err)
	}
	if rec.Replayed {
		t.Error("provenance-on result answered by replay")
	}
	rep, err := s.Explain(ctx, replayed.Key, 0)
	if err != nil {
		t.Fatalf("explain replayed: %v", err)
	}
	if !rep.Replayed {
		t.Error("provenance-off result did not replay")
	}
	for name, res := range map[string]*ExplainResult{"recorded": rec, "replayed": rep} {
		if res.Warnings != 1 || len(res.Explanations) != 1 {
			t.Fatalf("%s: %d warnings, %d explanations, want 1/1", name, res.Warnings, len(res.Explanations))
		}
		if res.Explanations[0].Schema != core.ExplainSchemaV1 {
			t.Errorf("%s: schema %q", name, res.Explanations[0].Schema)
		}
	}
	// Single-warning selection returns the same tree as the full set.
	one, err := s.Explain(ctx, recorded.Key, 1)
	if err != nil {
		t.Fatalf("explain warning 1: %v", err)
	}
	if len(one.Explanations) != 1 || one.Explanations[0].Warning != 1 {
		t.Fatalf("warning selection returned %d explanations", len(one.Explanations))
	}

	if _, err := s.Explain(ctx, recorded.Key, 99); err == nil {
		t.Error("out-of-range warning succeeded")
	}
	var aerr *core.Error
	if _, err := s.Explain(ctx, "deadbeef", 0); !errors.As(err, &aerr) || aerr.Kind != core.ErrSnapshotGone {
		t.Errorf("unknown key error = %v, want snapshot-gone kind", err)
	}

	st := s.Stats()
	if st.Warnings != 2 {
		t.Errorf("warnings_total = %d, want 2 (one per pipeline run)", st.Warnings)
	}
	// 4 served queries (the out-of-range one counts; the unknown key
	// never reached the explainer), exactly 1 of them a replay (the
	// provenance-off key).
	if st.ExplainRequests != 4 {
		t.Errorf("explain_requests = %d, want 4", st.ExplainRequests)
	}
	if st.ExplainReplays != 1 {
		t.Errorf("explain_replays = %d, want 1", st.ExplainReplays)
	}
	if st.Histograms["explain"].Count == 0 {
		t.Error("explain histogram has no observations")
	}
}

// TestBDDPeakNodesGauge pins the satellite fix: bdd_peak_nodes is
// exported as a per-request maximum gauge, not summed across requests
// like the true counters.
func TestBDDPeakNodesGauge(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ctx := context.Background()
	opts := core.Options{}
	opts.Solver.Backend = core.BDDBackend
	// Peak-node tracking only surfaces in phase outputs when GC or a
	// reorder ran; enable both so even this small workload reports it.
	opts.Solver.BDD = bdd.Config{NodeSize: 1, GC: true, GCThreshold: 1, Reorder: true}

	var peak int64
	for i := 0; i < 3; i++ {
		res, err := s.Analyze(ctx, opts, sourcesFor(i))
		if err != nil {
			t.Fatal(err)
		}
		if p := pairsOutputs(t, res.ReportJSON)["bdd_peak_nodes"]; p > peak {
			peak = p
		}
	}
	if peak == 0 {
		t.Fatal("BDD runs reported no peak")
	}
	st := s.Stats()
	if st.BDDPeakNodes != peak {
		t.Errorf("BDDPeakNodes = %d, want per-request max %d (summing would give %d)",
			st.BDDPeakNodes, peak, 3*peak)
	}
	if _, ok := st.BDDOutputs["bdd_peak_nodes"]; ok {
		t.Error("bdd_peak_nodes still summed into BDDOutputs")
	}
	if st.BDDOutputs["bdd_nodes"] == 0 {
		t.Error("true counters no longer accumulate")
	}
}

// TestHTTPExplain is the endpoint round-trip: analyze, explain by key,
// and the snapshot-gone conflict. It also checks the request id lands
// in error bodies and the explain metrics reach /v1/metrics.
func TestHTTPExplain(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	// The id middleware stands in for regionwizd's logging wrapper.
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		NewHandler(s).ServeHTTP(w, r.WithContext(WithRequestID(r.Context(), "req-42")))
	})
	srv := httptest.NewServer(handler)
	defer srv.Close()

	resp, data := postAnalyze(t, srv, analyzeBody(t, sourcesFor(0),
		RequestOptions{Backend: "bdd", BDDNodeSize: 1, BDDGC: true, BDDGCThreshold: 1, BDDReorder: true}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: %d %s", resp.StatusCode, data)
	}
	var ar AnalyzeResponse
	if err := json.Unmarshal(data, &ar); err != nil {
		t.Fatal(err)
	}

	get := func(url string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	resp, data = get(srv.URL + "/v1/explain?key=" + ar.Key + "&warning=all")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain: %d %s", resp.StatusCode, data)
	}
	var er ExplainResponse
	if err := json.Unmarshal(data, &er); err != nil {
		t.Fatal(err)
	}
	if er.Schema != core.ExplainSchemaV1 || er.Key != ar.Key {
		t.Errorf("schema/key = %q/%q", er.Schema, er.Key)
	}
	if !er.Replayed {
		t.Error("BDD-backend explanation did not report replay")
	}
	if er.WarningsTotal != 1 || len(er.Explanations) != 1 {
		t.Fatalf("warnings_total=%d explanations=%d, want 1/1", er.WarningsTotal, len(er.Explanations))
	}
	if er.Explanations[0].Tree == nil {
		t.Fatal("explanation carries no tree")
	}

	// Unknown key: 409 snapshot_gone with the request id echoed.
	resp, data = get(srv.URL + "/v1/explain?key=" + strings.Repeat("0", 64))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("unknown key: %d %s", resp.StatusCode, data)
	}
	var fail errorResponse
	if err := json.Unmarshal(data, &fail); err != nil {
		t.Fatal(err)
	}
	if fail.Error.Kind != "snapshot_gone" {
		t.Errorf("kind = %q, want snapshot_gone", fail.Error.Kind)
	}
	if fail.Error.RequestID != "req-42" {
		t.Errorf("request_id = %q, want req-42", fail.Error.RequestID)
	}

	// Bad selector and missing key are config errors.
	if resp, _ = get(srv.URL + "/v1/explain?key=" + ar.Key + "&warning=zero"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad selector: %d", resp.StatusCode)
	}
	if resp, _ = get(srv.URL + "/v1/explain"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing key: %d", resp.StatusCode)
	}

	resp, data = get(srv.URL + "/v1/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	text := string(data)
	for _, want := range []string{
		"regionwizd_explain_requests_total 1",
		"regionwizd_explain_replays_total 1",
		"regionwizd_warnings_total 1",
		"regionwizd_explain_duration_seconds_count 1",
		"# TYPE regionwizd_bdd_peak_nodes gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if strings.Contains(text, "regionwizd_bdd_peak_nodes_total") {
		t.Error("bdd_peak_nodes still exported as a summed counter")
	}
}
