package service

import (
	"container/list"

	"repro/internal/core"
)

// lruCache is a plain LRU over completed analysis results, keyed by
// the content-addressed request key. It is not self-locking: the
// Service guards it with its own mutex, which also makes the
// check-then-register singleflight window atomic.
type lruCache struct {
	max       int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	evictions uint64
}

type lruEntry struct {
	key string
	res *Result
}

func newLRUCache(max int) *lruCache {
	return &lruCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached result and marks it most recently used.
func (c *lruCache) get(key string) (*Result, bool) {
	if c.max <= 0 {
		return nil, false
	}
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).res, true
}

// add inserts a result, evicting the least recently used entry when
// the cache is full.
func (c *lruCache) add(key string, res *Result) {
	if c.max <= 0 {
		return
	}
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).res = res
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, res: res})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
		c.evictions++
	}
}

func (c *lruCache) len() int { return c.ll.Len() }

// snapStore is a bounded LRU of front-end snapshots keyed by the
// response key of the run that built them — every response key a
// client has seen is a usable delta base until evicted. Like lruCache
// it is guarded by the Service's mutex, not self-locking.
type snapStore struct {
	max       int
	ll        *list.List
	items     map[string]*list.Element
	evictions uint64
}

type snapEntry struct {
	key  string
	snap *core.Snapshot
}

func newSnapStore(max int) *snapStore {
	return &snapStore{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

func (c *snapStore) get(key string) (*core.Snapshot, bool) {
	if c.max <= 0 {
		return nil, false
	}
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*snapEntry).snap, true
}

func (c *snapStore) add(key string, snap *core.Snapshot) {
	if c.max <= 0 {
		return
	}
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*snapEntry).snap = snap
		return
	}
	c.items[key] = c.ll.PushFront(&snapEntry{key: key, snap: snap})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*snapEntry).key)
		c.evictions++
	}
}

func (c *snapStore) len() int { return c.ll.Len() }
