package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
)

// Digest returns the content-addressed digest of a source set: a
// sha256 over every (path, per-file sha256) pair in sorted path order.
// It is the sources half of Key — two source sets digest equal exactly
// when they would produce equal cache keys under equal options — and
// the per-file digests match core.FileDigest, the digests snapshots
// are keyed by. The byte layout is pinned by TestDigestFormat: cache
// keys for identical requests must never change across releases.
func Digest(sources map[string]string) string {
	h := sha256.New()
	writeSources(h, sources)
	return hex.EncodeToString(h.Sum(nil))
}

// writeSources streams the canonical source-set encoding into w:
// "\x00<path>\x00<hex sha256 of content>" per path, sorted. Key and
// Digest share this single implementation so the result-cache key and
// the snapshot key can never drift apart.
func writeSources(w io.Writer, sources map[string]string) {
	paths := make([]string, 0, len(sources))
	for p := range sources {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		fmt.Fprintf(w, "\x00%s\x00%s", p, core.FileDigest(sources[p]))
	}
}
