package callgraph

import (
	"sort"

	"repro/internal/ir"
)

// BuildDirect is the incremental fast path: when the program moves no
// function values through variables or memory, the vF fixpoint of
// BuildEntries is vacuous and the call graph is a single linear scan
// over CALL instructions. It reports ok=false — build nothing — when
// the precondition does not hold, and callers fall back to
// BuildEntries. The precondition is checked exactly, so for any
// program where BuildDirect succeeds its Graph is identical to
// BuildEntries' (TestBuildDirectParity pins this).
//
// The scan is what makes re-analysis after an edit cheap: instruction
// IDs shift under edits, so edges are recomputed from the relinked
// program rather than patched, but without the quadratic fixpoint the
// phase is a small fraction of a full rebuild.
func BuildDirect(prog *ir.Program, entries []string, implicit []ImplicitSpec) (*Graph, bool) {
	if implicit == nil {
		implicit = DefaultImplicitSpecs
	}
	implicitByFn := make(map[string][]int)
	for _, s := range implicit {
		implicitByFn[s.Fn] = append(implicitByFn[s.Fn], s.EntryArg)
	}

	// Precondition: a FuncOpd may appear only as a direct callee, or as
	// an extern call's argument at an implicit-spec position. Any other
	// occurrence (assigned, stored, passed to a defined function or a
	// non-registered extern slot) could seed the vF relation, and any
	// VarOpd callee could consume it — both require the full fixpoint.
	for _, in := range prog.Instrs {
		if in.Src.Kind == ir.FuncOpd || in.Base.Kind == ir.FuncOpd || in.Dst.Kind == ir.FuncOpd {
			return nil, false
		}
		if in.Op != ir.Call {
			if in.Callee.Kind == ir.FuncOpd {
				return nil, false
			}
			continue
		}
		switch in.Callee.Kind {
		case ir.FuncOpd:
		case ir.VarOpd:
			return nil, false
		}
		_, defined := prog.Funcs[in.Callee.Fn]
		for i, a := range in.Args {
			if a.Kind != ir.FuncOpd {
				continue
			}
			if defined || in.Callee.Kind != ir.FuncOpd {
				return nil, false
			}
			ok := false
			for _, argIdx := range implicitByFn[in.Callee.Fn] {
				if argIdx == i {
					ok = true
				}
			}
			if !ok {
				return nil, false
			}
		}
	}

	entry := ""
	if len(entries) > 0 {
		entry = entries[0]
	}
	g := &Graph{
		Prog:        prog,
		Entry:       entry,
		Entries:     append([]string(nil), entries...),
		Edges:       make(map[int][]string),
		ExternCalls: make(map[int][]string),
		Callers:     make(map[string][]int),
		Reachable:   make(map[string]bool),
		VF:          make(map[*ir.Var]map[string]bool),
	}
	addEdge := func(instrID int, fn string, seen map[string]bool) {
		if _, def := prog.Funcs[fn]; !def || seen[fn] {
			return
		}
		seen[fn] = true
		g.Edges[instrID] = append(g.Edges[instrID], fn)
		g.Callers[fn] = append(g.Callers[fn], instrID)
	}
	for _, in := range prog.Instrs {
		if in.Op != ir.Call || in.Callee.Kind != ir.FuncOpd {
			continue
		}
		fn := in.Callee.Fn
		if _, defined := prog.Funcs[fn]; defined {
			seen := make(map[string]bool, 1)
			addEdge(in.ID, fn, seen)
			continue
		}
		g.ExternCalls[in.ID] = append(g.ExternCalls[in.ID], fn)
		seen := make(map[string]bool)
		for _, argIdx := range implicitByFn[fn] {
			if argIdx < len(in.Args) && in.Args[argIdx].Kind == ir.FuncOpd {
				addEdge(in.ID, in.Args[argIdx].Fn, seen)
			}
		}
		sort.Strings(g.Edges[in.ID])
	}
	for fn := range g.Callers {
		sort.Ints(g.Callers[fn])
	}
	g.computeReachable()
	return g, true
}
