package callgraph

import (
	"reflect"
	"testing"

	"repro/internal/cminor"
	"repro/internal/ir"
)

func lower(t *testing.T, src string) *ir.Program {
	t.Helper()
	f, errs := cminor.Parse("test.c", src)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	info := cminor.Check(f)
	if len(info.Errors) != 0 {
		t.Fatalf("check: %v", info.Errors)
	}
	return ir.Lower(info, f)
}

// requireParity asserts BuildDirect accepts the program and produces a
// graph identical to the full fixpoint's in every field a consumer
// reads.
func requireParity(t *testing.T, src string) {
	t.Helper()
	prog := lower(t, src)
	direct, ok := BuildDirect(prog, []string{"main"}, nil)
	if !ok {
		t.Fatal("BuildDirect rejected a direct-call program")
	}
	full := BuildEntries(prog, []string{"main"}, nil)
	if !reflect.DeepEqual(direct.Edges, full.Edges) {
		t.Fatalf("edges differ:\ndirect: %v\nfull:   %v", direct.Edges, full.Edges)
	}
	if !reflect.DeepEqual(direct.ExternCalls, full.ExternCalls) {
		t.Fatalf("extern calls differ:\ndirect: %v\nfull:   %v", direct.ExternCalls, full.ExternCalls)
	}
	if !reflect.DeepEqual(direct.Callers, full.Callers) {
		t.Fatalf("callers differ:\ndirect: %v\nfull:   %v", direct.Callers, full.Callers)
	}
	if !reflect.DeepEqual(direct.Reachable, full.Reachable) {
		t.Fatalf("reachable differs:\ndirect: %v\nfull:   %v", direct.Reachable, full.Reachable)
	}
	if direct.Entry != full.Entry || !reflect.DeepEqual(direct.Entries, full.Entries) {
		t.Fatalf("entries differ: %v/%v vs %v/%v", direct.Entry, direct.Entries, full.Entry, full.Entries)
	}
	// On a direct-call program the fixpoint's vF relation is vacuous;
	// the linear scan never populates one at all.
	if len(direct.VF) != 0 || len(full.VF) != 0 {
		t.Fatalf("vF not vacuous: direct %d entries, full %d", len(direct.VF), len(full.VF))
	}
}

func TestBuildDirectParity(t *testing.T) {
	cases := map[string]string{
		"plain calls": `
int helper(int x) { return x; }
int twice(int x) { return helper(helper(x)); }
int main(void) { return twice(1); }`,
		"externs and dead code": `
extern void *malloc(unsigned long n);
extern void free(void *p);
int used(void) { malloc(8); return 1; }
int dead(void) { return 2; }
int main(void) { free(0); return used(); }`,
		"recursion": `
int even(int n);
int odd(int n) { if (n == 0) return 0; return even(n - 1); }
int even(int n) { if (n == 0) return 1; return odd(n - 1); }
int main(void) { return even(10); }`,
		"implicit thread entry": `
extern int pthread_create(void *t, void *attr, void *(*entry)(void *), void *arg);
void * worker(void *p) { return p; }
int main(void) {
    pthread_create(0, 0, worker, 0);
    return 0;
}`,
		"implicit cleanup register": `
typedef struct apr_pool_t apr_pool_t;
extern void apr_pool_cleanup_register(apr_pool_t *p, const void *data,
    long (*plain)(void *), long (*child)(void *));
long my_cleanup(void *d) { return 0; }
int main(void) {
    apr_pool_cleanup_register(0, 0, my_cleanup, my_cleanup);
    return 0;
}`,
		"global initializers": `
int setup(void) { return 1; }
int x = 3;
int main(void) { return setup() + x; }`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) { requireParity(t, src) })
	}
}

func TestBuildDirectBailsOnFunctionValues(t *testing.T) {
	cases := map[string]string{
		"pointer via variable": `
int a(int x) { return x; }
int main(int argc) {
    int (*fp)(int);
    fp = a;
    return fp(0);
}`,
		"pointer via struct field": `
struct ops { int (*run)(int); };
int impl(int x) { return x; }
int main(void) {
    struct ops o;
    struct ops *p;
    p = &o;
    p->run = impl;
    return p->run(3);
}`,
		"function passed to defined function": `
int work(int x) { return x; }
int invoke(int (*fn)(int)) { return fn(7); }
int main(void) { return invoke(work); }`,
		"function passed to unregistered extern slot": `
extern void takes_fn(int (*fn)(int));
int work(int x) { return x; }
int main(void) { takes_fn(work); return 0; }`,
		"function stored by global initializer": `
int setup(void) { return 1; }
int (*hook)(void) = setup;
int main(void) { return hook(); }`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			prog := lower(t, src)
			if _, ok := BuildDirect(prog, []string{"main"}, nil); ok {
				t.Fatal("BuildDirect accepted a program that moves function values")
			}
			// The fallback still resolves it (sanity: the two paths
			// partition the input space, they do not disagree on it).
			g := BuildEntries(prog, []string{"main"}, nil)
			if len(g.Reachable) == 0 {
				t.Fatal("fallback graph empty")
			}
		})
	}
}
