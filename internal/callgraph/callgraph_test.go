package callgraph

import (
	"reflect"
	"testing"

	"repro/internal/cminor"
	"repro/internal/ir"
)

func build(t *testing.T, src string) *Graph {
	t.Helper()
	f, errs := cminor.Parse("test.c", src)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	info := cminor.Check(f)
	if len(info.Errors) != 0 {
		t.Fatalf("check: %v", info.Errors)
	}
	prog := ir.Lower(info, f)
	return Build(prog, "main", nil)
}

// calleesOf collects all resolved callees of every call in fn.
func calleesOf(g *Graph, fn string) []string {
	set := map[string]bool{}
	for _, in := range g.Prog.Funcs[fn].Instrs {
		if in.Op != ir.Call {
			continue
		}
		for _, c := range g.Edges[in.ID] {
			set[c] = true
		}
	}
	var out []string
	for c := range set {
		out = append(out, c)
	}
	sortStrings(out)
	return out
}

func sortStrings(a []string) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}

func TestDirectCalls(t *testing.T) {
	g := build(t, `
int helper(int x) { return x; }
int main(void) { return helper(1); }`)
	if got := calleesOf(g, "main"); !reflect.DeepEqual(got, []string{"helper"}) {
		t.Fatalf("main calls %v", got)
	}
	if !g.Reachable["helper"] || !g.Reachable["main"] {
		t.Fatalf("reachable = %v", g.ReachableFuncs())
	}
}

func TestIndirectCallViaVariable(t *testing.T) {
	g := build(t, `
int a(int x) { return x; }
int b(int x) { return x + 1; }
int main(int argc) {
    int (*fp)(int);
    if (argc) fp = a; else fp = b;
    return fp(0);
}`)
	got := calleesOf(g, "main")
	if !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("indirect call resolves to %v, want [a b]", got)
	}
}

func TestIndirectCallViaParameterAndReturn(t *testing.T) {
	g := build(t, `
typedef int (*fnptr)(int);
int work(int x) { return x; }
int invoke(int (*fn)(int)) { return fn(7); }
fnptr pick(void) { return work; }
int main(void) {
    int r;
    r = invoke(work);
    return r + pick()(1);
}`)
	if got := calleesOf(g, "invoke"); !reflect.DeepEqual(got, []string{"work"}) {
		t.Fatalf("invoke calls %v, want [work] (parameter wiring)", got)
	}
	// pick() returns work; main calls the result.
	mainCallees := calleesOf(g, "main")
	found := false
	for _, c := range mainCallees {
		if c == "work" {
			found = true
		}
	}
	if !found {
		t.Fatalf("return-value wiring missed: main calls %v", mainCallees)
	}
}

func TestFunctionPointerThroughStructField(t *testing.T) {
	// The paper's Section 5.1 example: mytime = localtime;
	// week = mytime(&t)->tm_wday. Here via a dispatch table field.
	g := build(t, `
struct ops { int (*run)(int); };
int impl(int x) { return x; }
int main(void) {
    struct ops o;
    struct ops *p;
    p = &o;
    p->run = impl;
    return p->run(3);
}`)
	got := calleesOf(g, "main")
	found := false
	for _, c := range got {
		if c == "impl" {
			found = true
		}
	}
	if !found {
		t.Fatalf("field-stored function pointer missed: main calls %v", got)
	}
}

func TestImplicitThreadCreate(t *testing.T) {
	g := build(t, `
extern int pthread_create(void *t, void *attr, void *(*entry)(void *), void *arg);
void * worker(void *p) { return p; }
int main(void) {
    pthread_create(NULL, NULL, worker, NULL);
    return 0;
}`)
	if !g.Reachable["worker"] {
		t.Fatalf("implicit thread entry not reachable: %v", g.ReachableFuncs())
	}
}

func TestImplicitCleanupRegister(t *testing.T) {
	g := build(t, `
typedef struct apr_pool_t apr_pool_t;
extern void apr_pool_cleanup_register(apr_pool_t *p, const void *data,
    long (*plain)(void *), long (*child)(void *));
long my_cleanup(void *d) { return 0; }
int main(void) {
    apr_pool_cleanup_register(NULL, NULL, my_cleanup, my_cleanup);
    return 0;
}`)
	if !g.Reachable["my_cleanup"] {
		t.Fatalf("cleanup callback not reachable: %v", g.ReachableFuncs())
	}
}

func TestReachabilityPruning(t *testing.T) {
	g := build(t, `
int used(void) { return 1; }
int dead(void) { return 2; }
int deadCaller(void) { return dead(); }
int main(void) { return used(); }`)
	if g.Reachable["dead"] || g.Reachable["deadCaller"] {
		t.Fatalf("dead code not pruned: %v", g.ReachableFuncs())
	}
	if !g.Reachable["used"] {
		t.Fatal("used function pruned")
	}
}

func TestGlobalInitReachable(t *testing.T) {
	g := build(t, `
int setup(void) { return 1; }
int x = 0;
int (*hook)(void) = setup;
int main(void) { return hook(); }`)
	if !g.Reachable[ir.InitFuncName] {
		t.Fatal("__global_init not reachable")
	}
	if !g.Reachable["setup"] {
		t.Fatalf("function stored by global initializer not reachable: %v", g.ReachableFuncs())
	}
}

func TestExternCallsRecorded(t *testing.T) {
	g := build(t, `
extern void *malloc(unsigned long n);
int main(void) { malloc(8); return 0; }`)
	found := false
	for _, externs := range g.ExternCalls {
		for _, fn := range externs {
			if fn == "malloc" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("extern call to malloc not recorded")
	}
}

func TestRecursion(t *testing.T) {
	g := build(t, `
int even(int n);
int odd(int n) { if (n == 0) return 0; return even(n - 1); }
int even(int n) { if (n == 0) return 1; return odd(n - 1); }
int main(void) { return even(10); }`)
	if !g.Reachable["even"] || !g.Reachable["odd"] {
		t.Fatalf("mutual recursion broken: %v", g.ReachableFuncs())
	}
	if got := calleesOf(g, "odd"); !reflect.DeepEqual(got, []string{"even"}) {
		t.Fatalf("odd calls %v", got)
	}
}

func TestCallSites(t *testing.T) {
	g := build(t, `
int f(void) { return 0; }
extern int ext(void);
int main(void) { f(); ext(); return f(); }`)
	sites := g.CallSites("main")
	if len(sites) != 2 {
		t.Fatalf("%d resolved call sites in main, want 2", len(sites))
	}
}
