// Package callgraph builds the initial context-insensitive call graph
// (the paper's Section 5.1): direct calls read off CALL instructions,
// indirect calls resolved by propagating function-pointer values (the
// vF set) along assignments and call/return edges, and implicit calls
// (thread entry points, pool cleanup callbacks) registered through an
// extensible spec table. A final reachability pass prunes functions
// never called from the program entry.
package callgraph

import (
	"sort"

	"repro/internal/ir"
)

// ImplicitSpec marks an extern whose EntryArg-th argument is invoked by
// the runtime (thread creation, cleanup registration, ...).
type ImplicitSpec struct {
	Fn       string
	EntryArg int
}

// DefaultImplicitSpecs covers the thread-creation functions the paper's
// prototype knew about (Windows API, libc, APR) plus APR cleanup
// registration.
var DefaultImplicitSpecs = []ImplicitSpec{
	{Fn: "pthread_create", EntryArg: 2},
	{Fn: "CreateThread", EntryArg: 2},
	{Fn: "apr_thread_create", EntryArg: 2},
	{Fn: "apr_pool_cleanup_register", EntryArg: 2},
	{Fn: "apr_pool_cleanup_register", EntryArg: 3},
}

// Graph is the context-insensitive call graph: the relation
// call : I x F of the paper.
type Graph struct {
	Prog  *ir.Program
	Entry string
	// Entries lists every analysis root (one element for whole
	// programs; all exported functions for open-program analysis).
	Entries []string

	// Edges maps a CALL instruction ID to its possible callees
	// (defined functions only; extern targets are recorded in
	// ExternCalls).
	Edges map[int][]string
	// ExternCalls maps a CALL instruction ID to extern callee names.
	ExternCalls map[int][]string
	// Callers maps a defined function to the CALL instruction IDs that
	// may invoke it.
	Callers map[string][]int
	// Reachable holds the defined functions reachable from the entry.
	Reachable map[string]bool
	// VF is the resolved function-pointer points-to relation vF: V x F.
	VF map[*ir.Var]map[string]bool
}

// Build constructs the call graph for prog with the given entry
// function (normally "main"). If implicit is nil, DefaultImplicitSpecs
// is used.
func Build(prog *ir.Program, entry string, implicit []ImplicitSpec) *Graph {
	return BuildEntries(prog, []string{entry}, implicit)
}

// BuildEntries constructs the call graph with several analysis roots —
// the open-program mode for analyzing libraries (the paper's Section 8
// extension).
func BuildEntries(prog *ir.Program, entries []string, implicit []ImplicitSpec) *Graph {
	if implicit == nil {
		implicit = DefaultImplicitSpecs
	}
	entry := ""
	if len(entries) > 0 {
		entry = entries[0]
	}
	implicitByFn := make(map[string][]int)
	for _, s := range implicit {
		implicitByFn[s.Fn] = append(implicitByFn[s.Fn], s.EntryArg)
	}
	g := &Graph{
		Prog:        prog,
		Entry:       entry,
		Entries:     append([]string(nil), entries...),
		Edges:       make(map[int][]string),
		ExternCalls: make(map[int][]string),
		Callers:     make(map[string][]int),
		Reachable:   make(map[string]bool),
		VF:          make(map[*ir.Var]map[string]bool),
	}

	edgeSet := make(map[int]map[string]bool)
	addEdge := func(instrID int, fn string) bool {
		if _, defined := prog.Funcs[fn]; !defined {
			return false
		}
		set := edgeSet[instrID]
		if set == nil {
			set = make(map[string]bool)
			edgeSet[instrID] = set
		}
		if set[fn] {
			return false
		}
		set[fn] = true
		return true
	}
	addVF := func(v *ir.Var, fn string) bool {
		set := g.VF[v]
		if set == nil {
			set = make(map[string]bool)
			g.VF[v] = set
		}
		if set[fn] {
			return false
		}
		set[fn] = true
		return true
	}
	flowVF := func(dst *ir.Var, src ir.Operand) bool {
		changed := false
		switch src.Kind {
		case ir.FuncOpd:
			changed = addVF(dst, src.Fn)
		case ir.VarOpd:
			for fn := range g.VF[src.Var] {
				if addVF(dst, fn) {
					changed = true
				}
			}
		}
		return changed
	}

	// heapVF approximates function pointers stored in memory,
	// field-sensitively by offset but object-insensitively: the
	// context-sensitive pointer analysis refines this later, but the
	// call graph needs a first answer (the paper accepts incomplete
	// call graphs here, Section 5.5).
	heapVF := make(map[int64]map[string]bool)
	addHeapVF := func(off int64, fn string) bool {
		set := heapVF[off]
		if set == nil {
			set = make(map[string]bool)
			heapVF[off] = set
		}
		if set[fn] {
			return false
		}
		set[fn] = true
		return true
	}

	// Fixpoint: assignments, loads/stores, call/return wiring, and
	// edge resolution all feed each other.
	for changed := true; changed; {
		changed = false
		for _, in := range prog.Instrs {
			switch in.Op {
			case ir.Assign:
				if in.Dst.Kind == ir.VarOpd && flowVF(in.Dst.Var, in.Src) {
					changed = true
				}
			case ir.Store:
				switch in.Src.Kind {
				case ir.FuncOpd:
					if addHeapVF(in.Off, in.Src.Fn) {
						changed = true
					}
				case ir.VarOpd:
					for fn := range g.VF[in.Src.Var] {
						if addHeapVF(in.Off, fn) {
							changed = true
						}
					}
				}
			case ir.Load:
				if in.Dst.Kind == ir.VarOpd {
					for fn := range heapVF[in.Off] {
						if addVF(in.Dst.Var, fn) {
							changed = true
						}
					}
				}
			case ir.Call:
				// Resolve callees.
				var callees []string
				switch in.Callee.Kind {
				case ir.FuncOpd:
					callees = []string{in.Callee.Fn}
				case ir.VarOpd:
					for fn := range g.VF[in.Callee.Var] {
						callees = append(callees, fn)
					}
				}
				for _, fn := range callees {
					target, defined := prog.Funcs[fn]
					if !defined {
						// Implicit calls through runtime registries.
						for _, argIdx := range implicitByFn[fn] {
							if argIdx < len(in.Args) {
								a := in.Args[argIdx]
								switch a.Kind {
								case ir.FuncOpd:
									if addEdge(in.ID, a.Fn) {
										changed = true
									}
								case ir.VarOpd:
									for efn := range g.VF[a.Var] {
										if addEdge(in.ID, efn) {
											changed = true
										}
									}
								}
							}
						}
						continue
					}
					if addEdge(in.ID, fn) {
						changed = true
					}
					// Parameter wiring.
					for i, a := range in.Args {
						if i < len(target.Params) {
							if flowVF(target.Params[i], a) {
								changed = true
							}
						}
					}
					// Return wiring.
					if in.Dst.Kind == ir.VarOpd && target.RetVal != nil {
						if flowVF(in.Dst.Var, ir.Operand{Kind: ir.VarOpd, Var: target.RetVal}) {
							changed = true
						}
					}
				}
			}
		}
	}

	// Materialize sorted edge lists, extern call targets, callers.
	for id, set := range edgeSet {
		for fn := range set {
			g.Edges[id] = append(g.Edges[id], fn)
			g.Callers[fn] = append(g.Callers[fn], id)
		}
		sort.Strings(g.Edges[id])
	}
	for fn := range g.Callers {
		sort.Ints(g.Callers[fn])
	}
	for _, in := range prog.Instrs {
		if in.Op != ir.Call {
			continue
		}
		switch in.Callee.Kind {
		case ir.FuncOpd:
			if _, defined := prog.Funcs[in.Callee.Fn]; !defined {
				g.ExternCalls[in.ID] = append(g.ExternCalls[in.ID], in.Callee.Fn)
			}
		case ir.VarOpd:
			for fn := range g.VF[in.Callee.Var] {
				if _, defined := prog.Funcs[fn]; !defined {
					g.ExternCalls[in.ID] = append(g.ExternCalls[in.ID], fn)
				}
			}
			sort.Strings(g.ExternCalls[in.ID])
		}
	}

	g.computeReachable()
	return g
}

// computeReachable marks functions reachable from the entry (and from
// the synthetic global-initializer function).
func (g *Graph) computeReachable() {
	var work []string
	push := func(fn string) {
		if _, ok := g.Prog.Funcs[fn]; ok && !g.Reachable[fn] {
			g.Reachable[fn] = true
			work = append(work, fn)
		}
	}
	for _, e := range g.Entries {
		push(e)
	}
	push(ir.InitFuncName)
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		for _, in := range g.Prog.Funcs[fn].Instrs {
			if in.Op != ir.Call {
				continue
			}
			for _, callee := range g.Edges[in.ID] {
				push(callee)
			}
		}
	}
}

// CallSites returns the CALL instructions of fn that have at least one
// resolved defined callee.
func (g *Graph) CallSites(fn string) []*ir.Instr {
	f := g.Prog.Funcs[fn]
	if f == nil {
		return nil
	}
	var out []*ir.Instr
	for _, in := range f.Instrs {
		if in.Op == ir.Call && len(g.Edges[in.ID]) > 0 {
			out = append(out, in)
		}
	}
	return out
}

// ReachableFuncs returns the reachable function names, sorted.
func (g *Graph) ReachableFuncs() []string {
	out := make([]string, 0, len(g.Reachable))
	for fn := range g.Reachable {
		out = append(out, fn)
	}
	sort.Strings(out)
	return out
}
