package callgraph

import (
	"sort"

	"repro/internal/ir"
)

// SCCGraph is the condensation of the reachable call graph: strongly
// connected components collapsed to single nodes, arranged as a DAG.
// It is the shared substrate of two consumers with different needs —
// context numbering (package contexts) wants the topological order of
// components, and the parallel pointer solver wants the leaf-to-root
// level schedule (components on the same level share no call edge, so
// they can be solved concurrently).
type SCCGraph struct {
	// Comps lists the components in topological order, callers first
	// (Comps[0] contains an entry); members of each component are
	// sorted. This is exactly the order Tarjan's algorithm emits,
	// reversed — the contexts package has always numbered against it,
	// and it is pinned by golden reports.
	Comps [][]string
	// CompOf maps each reachable function to its component index.
	CompOf map[string]int
	// Succs lists, per component, the callee components (sorted,
	// deduplicated, self-edges removed).
	Succs [][]int
	// Levels groups component indices by height in the DAG: Levels[0]
	// holds the leaves (components calling no other component), and a
	// component on Levels[k] only calls components on levels < k.
	// Scheduling level by level, leaves first, therefore solves every
	// callee before (or in the same sweep round as) its callers, and
	// components within one level are independent.
	Levels [][]int
}

// Condense computes the SCC DAG of g's reachable subgraph. The
// traversal order (reachable functions sorted by name; call edges in
// instruction order) is deterministic, so two runs over the same graph
// produce identical component numbering.
func (g *Graph) Condense() *SCCGraph {
	sg := &SCCGraph{CompOf: make(map[string]int)}
	funcs := g.ReachableFuncs()

	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	next := 0
	var comps [][]string

	var strongConnect func(fn string)
	strongConnect = func(fn string) {
		index[fn] = next
		low[fn] = next
		next++
		stack = append(stack, fn)
		onStack[fn] = true
		for _, w := range g.calleesInOrder(fn) {
			if _, seen := index[w]; !seen {
				strongConnect(w)
				if low[w] < low[fn] {
					low[fn] = low[w]
				}
			} else if onStack[w] && index[w] < low[fn] {
				low[fn] = index[w]
			}
		}
		if low[fn] == index[fn] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == fn {
					break
				}
			}
			sort.Strings(comp)
			comps = append(comps, comp)
		}
	}
	for _, fn := range funcs {
		if _, seen := index[fn]; !seen {
			strongConnect(fn)
		}
	}
	// Tarjan emits components in reverse topological order.
	for i, j := 0, len(comps)-1; i < j; i, j = i+1, j-1 {
		comps[i], comps[j] = comps[j], comps[i]
	}
	sg.Comps = comps
	for id, comp := range comps {
		for _, fn := range comp {
			sg.CompOf[fn] = id
		}
	}

	// Successor lists (cross-component edges only).
	sg.Succs = make([][]int, len(comps))
	for id, comp := range comps {
		seen := make(map[int]bool)
		for _, fn := range comp {
			for _, callee := range g.calleesInOrder(fn) {
				c := sg.CompOf[callee]
				if c != id && !seen[c] {
					seen[c] = true
					sg.Succs[id] = append(sg.Succs[id], c)
				}
			}
		}
		sort.Ints(sg.Succs[id])
	}

	// Heights: leaves at level 0; every other component one above its
	// tallest callee. Iterating in reverse topological order (callees
	// have larger component indices than their callers) visits every
	// successor before the component that calls it.
	height := make([]int, len(comps))
	maxH := 0
	for id := len(comps) - 1; id >= 0; id-- {
		h := 0
		for _, s := range sg.Succs[id] {
			if height[s]+1 > h {
				h = height[s] + 1
			}
		}
		height[id] = h
		if h > maxH {
			maxH = h
		}
	}
	if len(comps) > 0 {
		sg.Levels = make([][]int, maxH+1)
		for id, h := range height {
			sg.Levels[h] = append(sg.Levels[h], id)
		}
	}
	return sg
}

// calleesInOrder lists fn's resolved, reachable callees in call
// instruction order (duplicates included — callers dedupe as needed).
// This is the traversal order context numbering has always used, so
// Condense's component order matches the historical one exactly.
func (g *Graph) calleesInOrder(fn string) []string {
	f := g.Prog.Funcs[fn]
	if f == nil {
		return nil
	}
	var out []string
	for _, in := range f.Instrs {
		if in.Op != ir.Call {
			continue
		}
		for _, callee := range g.Edges[in.ID] {
			if g.Reachable[callee] {
				out = append(out, callee)
			}
		}
	}
	return out
}
