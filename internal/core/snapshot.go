package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"sort"

	"repro/internal/cminor"
	"repro/internal/ir"
)

// FileDigest returns the hex sha256 of one source file's content — the
// per-file half of the request digest (service.Digest) and the key
// snapshots use to decide whether a file changed.
func FileDigest(content string) string {
	sum := sha256.Sum256([]byte(content))
	return hex.EncodeToString(sum[:])
}

// FrontEndStats counts per-file front-end work: how much of the parse,
// check, and lower phases a snapshot-backed run reused from its base
// versus recomputed. A plain AnalyzeSource leaves it zero.
type FrontEndStats struct {
	// ParseReused counts files whose parsed AST was taken from the base
	// snapshot (digest unchanged); ParseParsed counts files parsed.
	ParseReused, ParseParsed int
	// CheckReused counts files whose declarations and bodies were not
	// re-checked; CheckChecked counts files the checker visited. A full
	// fallback check counts every file as checked.
	CheckReused, CheckChecked int
	// LowerReused counts files whose IR fragment was relinked from the
	// base snapshot; LowerLowered counts files lowered.
	LowerReused, LowerLowered int
	// CallGraphDirect reports that the call graph was rebuilt with the
	// linear direct-call scan instead of the full vF fixpoint.
	CallGraphDirect bool
}

// Snapshot is the reusable front-end state of one successful
// snapshot-backed run: parsed files, their declaration signatures, and
// lowered IR fragments, keyed by per-file content digest. Snapshots
// are immutable — an incremental run reads its base and builds a new
// snapshot — so one base can serve concurrent deltas.
type Snapshot struct {
	opts     Options // normalized, Observer stripped
	fp       string  // opts.Fingerprint() at build time
	sources  map[string]string
	paths    []string // sorted
	digests  map[string]string
	files    map[string]*cminor.File
	sigs     map[string]string // cminor.DeclSignature per file
	bodyDefs map[string]bool   // cminor.HasBodyTypeDefs per file
	frags    map[string]*ir.Fragment
	info     *cminor.Info
	// hasImplicit disqualifies the snapshot as an incremental-check
	// base: implicitly declared functions mean the checker mutated
	// state across file boundaries in ways signatures do not capture.
	hasImplicit bool
}

// Options returns the options the snapshot was built under (Observer
// stripped).
func (s *Snapshot) Options() Options { return s.opts }

// Sources returns the snapshot's full source set. Callers must not
// mutate the returned map.
func (s *Snapshot) Sources() map[string]string { return s.sources }

// Apply materializes the source set a delta request describes: the
// snapshot's sources with changed paths overwritten or added and
// removed paths dropped. The snapshot itself is not modified.
func (s *Snapshot) Apply(changed map[string]string, removed []string) map[string]string {
	out := make(map[string]string, len(s.sources)+len(changed))
	for p, src := range s.sources {
		out[p] = src
	}
	for _, p := range removed {
		delete(out, p)
	}
	for p, src := range changed {
		out[p] = src
	}
	return out
}

// AnalyzeSourceSnapshot is AnalyzeSourceContext plus a snapshot of the
// run's reusable front-end state, for handing to AnalyzeIncremental
// later. The run also populates Analysis.Front and emits the
// front-end reuse counters into the report's phase stats.
func AnalyzeSourceSnapshot(ctx context.Context, opts Options, sources map[string]string) (*Analysis, *Snapshot, error) {
	opts, err := opts.prepare()
	if err != nil {
		return nil, nil, err
	}
	a := newAnalysis(opts)
	a.Sources = sources
	a.snapshotting = true
	a, err = runPhases(ctx, a, append(frontEndPhases(), analysisPhases()...))
	if err != nil {
		return nil, nil, err
	}
	return a, a.buildSnapshot(), nil
}

// AnalyzeIncremental re-analyzes a snapshot's program after an edit:
// changed maps paths to new content (edits and additions), removed
// lists deleted paths. Front-end work is reused per file — unchanged
// files skip parse, check, and lower entirely when the edit preserves
// every declaration signature; any signature change falls back to a
// full re-check while still reusing unchanged parses. The back half
// (contexts through post) always re-solves, so the resulting report is
// byte-identical to a from-scratch run over the same sources. opts
// must fingerprint-equal the snapshot's options (Observer and BDD
// sizing may differ — they cannot change results).
func AnalyzeIncremental(ctx context.Context, opts Options, base *Snapshot, changed map[string]string, removed []string) (*Analysis, *Snapshot, error) {
	opts, err := opts.prepare()
	if err != nil {
		return nil, nil, err
	}
	if opts.Fingerprint() != base.fp {
		return nil, nil, Errf(ErrConfig, "",
			"delta request options do not match the base snapshot's")
	}
	sources := base.Apply(changed, removed)
	if len(sources) == 0 {
		return nil, nil, Errf(ErrConfig, "", "delta request removes every source file")
	}
	a := newAnalysis(opts)
	a.Sources = sources
	a.snapshotting = true
	a.prev = base
	a, err = runPhases(ctx, a, append(frontEndPhases(), analysisPhases()...))
	if err != nil {
		return nil, nil, err
	}
	return a, a.buildSnapshot(), nil
}

// tryIncrementalCheck decides whether the check phase may reuse the
// base snapshot's declaration environment and re-check only changed
// files. The conditions (see DESIGN.md "Incremental analysis &
// snapshots"): a base exists and declared no implicit functions, the
// path set is unchanged, every changed file keeps its declaration
// signature byte-for-byte, and neither the old nor the new version of
// a changed file defines types inside function bodies or initializers
// (re-resolving such a definition against the already-laid-out
// environment would be a spurious redefinition).
func (a *Analysis) tryIncrementalCheck() bool {
	prev := a.prev
	if prev == nil || prev.hasImplicit {
		return false
	}
	if len(a.Files) != len(prev.paths) {
		return false
	}
	a.declSigs = make(map[string]string)
	a.bodyDefs = make(map[string]bool)
	for _, f := range a.Files {
		if _, ok := prev.files[f.Path]; !ok {
			return false // added path (same count ⇒ set differs)
		}
		if !a.changed[f.Path] {
			continue
		}
		sig := cminor.DeclSignature(f)
		a.declSigs[f.Path] = sig
		if sig != prev.sigs[f.Path] {
			return false
		}
		bd := cminor.HasBodyTypeDefs(f)
		a.bodyDefs[f.Path] = bd
		if bd || prev.bodyDefs[f.Path] {
			return false
		}
	}
	return true
}

// buildSnapshot captures the run's reusable front-end state. Called
// only after a fully successful run, so every snapshot is error-free
// by construction. Signatures and fragment/file tables are inherited
// from the base for unchanged files and computed fresh for the rest.
func (a *Analysis) buildSnapshot() *Snapshot {
	s := &Snapshot{
		opts:        a.Opts,
		fp:          a.Opts.Fingerprint(),
		sources:     a.Sources,
		digests:     a.digests,
		files:       make(map[string]*cminor.File, len(a.Files)),
		sigs:        make(map[string]string, len(a.Files)),
		bodyDefs:    make(map[string]bool, len(a.Files)),
		frags:       a.fragments,
		info:        a.Info,
		hasImplicit: cminor.HasImplicitFuncs(a.Info),
	}
	s.opts.Observer = nil
	for _, f := range a.Files {
		p := f.Path
		s.paths = append(s.paths, p)
		s.files[p] = f
		if a.prev != nil && !a.changed[p] {
			s.sigs[p] = a.prev.sigs[p]
			s.bodyDefs[p] = a.prev.bodyDefs[p]
			continue
		}
		if sig, ok := a.declSigs[p]; ok {
			s.sigs[p] = sig
		} else {
			s.sigs[p] = cminor.DeclSignature(f)
		}
		if bd, ok := a.bodyDefs[p]; ok {
			s.bodyDefs[p] = bd
		} else {
			s.bodyDefs[p] = cminor.HasBodyTypeDefs(f)
		}
	}
	sort.Strings(s.paths)
	return s
}
