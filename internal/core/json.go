package core

import (
	"encoding/json"
	"time"
)

// ReportSchemaV1 identifies the report JSON encoding. Consumers
// should check it before decoding; additive changes keep the v1 name,
// incompatible ones bump it.
const ReportSchemaV1 = "regionwiz/report/v1"

// reportJSON is the stable JSON shape of a Report, versioned by the
// schema field (pinned by the golden test in json_test.go).
type reportJSON struct {
	Schema   string        `json:"schema"`
	Warnings []warningJSON `json:"warnings"`
	Stats    statsJSON     `json:"stats"`
	// Precision is present exactly when the run's precision was
	// throttled (context-cap merging, points-to-set collapse, or the
	// origin context policy); fully precise runs keep the pre-existing
	// byte shape.
	Precision *precisionJSON `json:"precision,omitempty"`
}

type warningJSON struct {
	High       bool   `json:"high"`
	Message    string `json:"message"`
	SrcSite    string `json:"src_site"`
	DstSite    string `json:"dst_site"`
	Offset     int64  `json:"field_offset"`
	SrcRegion  string `json:"src_region"`
	DstRegion  string `json:"dst_region"`
	ObjectPair int    `json:"object_pairs"`
	Throttled  bool   `json:"throttled,omitempty"`
}

type precisionJSON struct {
	Policy        string `json:"policy"`
	CtxCapped     bool   `json:"ctx_capped,omitempty"`
	PtrCappedVars int    `json:"ptr_capped_vars,omitempty"`
}

type phaseJSON struct {
	Name       string           `json:"name"`
	TimeMS     float64          `json:"time_ms"`
	AllocBytes int64            `json:"alloc_bytes"`
	Outputs    map[string]int64 `json:"outputs,omitempty"`
}

type statsJSON struct {
	TimeMS     float64     `json:"time_ms"`
	R          int         `json:"regions"`
	H          int         `json:"objects"`
	Sub        int         `json:"subregion_edges"`
	Own        int         `json:"ownership_edges"`
	Heap       int         `json:"heap_edges"`
	RPairs     int64       `json:"region_pairs"`
	OPairs     int         `json:"object_pairs"`
	IPairs     int         `json:"instruction_pairs"`
	High       int         `json:"high_ranked"`
	Contexts   uint64      `json:"contexts"`
	Funcs      int         `json:"functions"`
	Instrs     int         `json:"instructions"`
	Causes     int         `json:"unique_causes"`
	HighCauses int         `json:"high_ranked_causes"`
	Phases     []phaseJSON `json:"phases,omitempty"`
}

// MarshalJSON renders the report as a stable machine-readable
// structure (the cmd/regionwiz -json output).
func (r *Report) MarshalJSON() ([]byte, error) {
	out := reportJSON{Schema: ReportSchemaV1, Warnings: []warningJSON{}}
	for _, w := range r.Warnings {
		out.Warnings = append(out.Warnings, warningJSON{
			High:       w.High(),
			Message:    w.Message,
			SrcSite:    w.SrcPos,
			DstSite:    w.DstPos,
			Offset:     w.IPair.Off,
			SrcRegion:  w.SrcRegion,
			DstRegion:  w.DstRegion,
			ObjectPair: w.IPair.Pairs,
			Throttled:  w.Throttled,
		})
	}
	if r.Stats.Throttled() {
		out.Precision = &precisionJSON{
			Policy:        r.Stats.Policy,
			CtxCapped:     r.Stats.CtxCapped,
			PtrCappedVars: r.Stats.PtrCappedVars,
		}
	}
	s := r.Stats
	out.Stats = statsJSON{
		TimeMS:     float64(s.Time) / float64(time.Millisecond),
		R:          s.R,
		H:          s.H,
		Sub:        s.Sub,
		Own:        s.Own,
		Heap:       s.Heap,
		RPairs:     s.RPairs,
		OPairs:     s.OPairs,
		IPairs:     s.IPairs,
		High:       s.High,
		Contexts:   s.Contexts,
		Funcs:      s.Funcs,
		Instrs:     s.Instrs,
		Causes:     s.Causes,
		HighCauses: s.HighCauses,
	}
	for _, p := range s.Phases {
		out.Stats.Phases = append(out.Stats.Phases, phaseJSON{
			Name:       p.Name,
			TimeMS:     float64(p.Time) / float64(time.Millisecond),
			AllocBytes: p.AllocBytes,
			Outputs:    p.Outputs,
		})
	}
	return json.Marshal(out)
}
