package core

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/bdd"
)

// The deprecated top-level solver spellings (Options.Backend,
// Options.BDD) and the SolverOptions spellings must configure the same
// analysis: identical fingerprints, and Normalize mirrors whichever
// side was set into the other.

func TestSolverOptionsFingerprintAliases(t *testing.T) {
	old := Options{Backend: BDDBackend, BDD: bdd.Config{NodeSize: 1 << 14, CacheRatio: 2}}
	niu := Options{Solver: SolverOptions{Backend: BDDBackend, BDD: bdd.Config{NodeSize: 1 << 14, CacheRatio: 2}}}
	if old.Fingerprint() != niu.Fingerprint() {
		t.Errorf("old and new backend spellings fingerprint differently:\n old %s\n new %s",
			old.Fingerprint(), niu.Fingerprint())
	}
	both := Options{Backend: BDDBackend, Solver: SolverOptions{Backend: BDDBackend}}
	if both.Fingerprint() != niu.Fingerprint() {
		t.Errorf("setting both spellings fingerprints differently from setting one")
	}
	if def, seq := (Options{}).Fingerprint(), (Options{Solver: SolverOptions{Backend: ExplicitBackend}}).Fingerprint(); def != seq {
		t.Errorf("explicit ExplicitBackend fingerprints differently from the default")
	}
}

func TestSolverOptionsNormalizeMirrors(t *testing.T) {
	cfg := bdd.Config{NodeSize: 4096}

	n := Options{Solver: SolverOptions{Backend: BDDBackend, BDD: cfg}}.Normalize()
	if n.Backend != BDDBackend || n.BDD != cfg {
		t.Errorf("Solver fields did not mirror to deprecated aliases: Backend=%v BDD=%+v", n.Backend, n.BDD)
	}

	n = Options{Backend: BDDBackend, BDD: cfg}.Normalize()
	if n.Solver.Backend != BDDBackend || n.Solver.BDD != cfg {
		t.Errorf("deprecated aliases did not fold into Solver: %+v", n.Solver)
	}

	// When both are set the new spelling wins.
	n = Options{
		Backend: BDDBackend, BDD: bdd.Config{NodeSize: 1},
		Solver: SolverOptions{Backend: BDDBackend, BDD: cfg},
	}.Normalize()
	if n.Solver.BDD != cfg || n.BDD != cfg {
		t.Errorf("Solver.BDD should win over the deprecated alias: solver=%+v alias=%+v", n.Solver.BDD, n.BDD)
	}
}

func TestSolverOptionsFingerprintExclusions(t *testing.T) {
	base := Options{}
	for _, o := range []Options{
		{Solver: SolverOptions{Workers: 4}},
		{Solver: SolverOptions{Workers: 16}},
		{Solver: SolverOptions{BDD: bdd.Config{NodeSize: 1 << 20}}},
		{BDD: bdd.Config{NodeSize: 1 << 20, CacheRatio: 8}},
	} {
		if o.Fingerprint() != base.Fingerprint() {
			t.Errorf("options %+v changed the fingerprint; Workers and BDD sizing cannot change results and must not key the cache", o.Solver)
		}
	}
	// MaxRounds does change results, so it must be fingerprinted — but
	// only when nonzero, so pre-SolverOptions digests stay valid.
	if (Options{Solver: SolverOptions{MaxRounds: 3}}).Fingerprint() == base.Fingerprint() {
		t.Errorf("nonzero MaxRounds did not change the fingerprint")
	}
	if (Options{Solver: SolverOptions{MaxRounds: 0}}).Fingerprint() != base.Fingerprint() {
		t.Errorf("zero MaxRounds changed the fingerprint")
	}
}

func TestSolverOptionsValidate(t *testing.T) {
	ok := Options{Entry: "main"}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
	for _, tc := range []struct {
		name string
		o    Options
		want string
	}{
		{"negative workers", Options{Entry: "main", Solver: SolverOptions{Workers: -1}}, "Solver.Workers"},
		{"negative max rounds", Options{Entry: "main", Solver: SolverOptions{MaxRounds: -2}}, "Solver.MaxRounds"},
	} {
		err := tc.o.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.o.Solver)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name %s", tc.name, err, tc.want)
		}
	}
}

// TestSolverWorkersSameReport is the API-level determinism pin: the
// same sources at workers 0, 1, 2, and 4 render the same report text.
func TestSolverWorkersSameReport(t *testing.T) {
	sources := map[string]string{
		"a.c": `
struct node { int *p; };
void *apr_palloc(void *r, int n);
void apr_pool_create(void **np, void *parent);
void apr_pool_destroy(void *r);
void fill(void *r, struct node *n) { n->p = apr_palloc(r, 4); }
int main() {
    void *root; void *sub;
    apr_pool_create(&root, 0);
    apr_pool_create(&sub, root);
    struct node *n = apr_palloc(root, 8);
    fill(sub, n);
    apr_pool_destroy(sub);
    return 0;
}`,
	}
	var want string
	for _, w := range []int{0, 1, 2, 4} {
		a, err := AnalyzeSource(Options{Solver: SolverOptions{Workers: w}}, sources)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		got := canonicalReportText(t, a.Report)
		if w == 0 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("workers=%d report differs from sequential:\n%s\nwant:\n%s", w, got, want)
		}
	}
}

// canonicalReportText renders a report with the volatile stats (wall
// time, per-phase metrics) removed — the same byte-equality contract
// the oracle and regionbench use.
func canonicalReportText(t *testing.T, r *Report) string {
	t.Helper()
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	var m map[string]interface{}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("unmarshal report: %v", err)
	}
	if stats, ok := m["stats"].(map[string]interface{}); ok {
		delete(stats, "time_ms")
		delete(stats, "phases")
	}
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("remarshal report: %v", err)
	}
	return string(out)
}
