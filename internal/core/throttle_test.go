package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/bdd"
)

// ptsFanSources is a program where one pointer variable accumulates a
// three-object points-to set (flow-insensitive accumulation over the
// three assignments), sized to exercise the PtsLimit boundary.
func ptsFanSources() map[string]string {
	return map[string]string{
		"fan.c": `
struct node { int *p; };
void *apr_palloc(void *r, int n);
void apr_pool_create(void **np, void *parent);
void apr_pool_destroy(void *r);
int main() {
    void *root; void *sub;
    apr_pool_create(&root, 0);
    apr_pool_create(&sub, root);
    struct node *a = apr_palloc(root, 8);
    struct node *b = apr_palloc(root, 8);
    struct node *c = apr_palloc(root, 8);
    struct node *p;
    p = a;
    p = b;
    p = c;
    p->p = apr_palloc(sub, 4);
    apr_pool_destroy(sub);
    return 0;
}`,
	}
}

// TestPtsLimitBoundary pins the cap's boundary semantics: a set whose
// size equals the limit stays exact (no ⊤ collapse, run not marked),
// while limit+1 collapses, counts the variable, and marks the run
// throttled all the way into the report JSON.
func TestPtsLimitBoundary(t *testing.T) {
	sources := ptsFanSources()

	exact, err := AnalyzeSource(Options{}, sources)
	if err != nil {
		t.Fatal(err)
	}
	if n := exact.Ptr.CappedVars(); n != 0 {
		t.Fatalf("unlimited run capped %d variables", n)
	}
	if exact.Report.Stats.Throttled() {
		t.Fatal("unlimited run marked throttled")
	}

	// At the set's exact size nothing collapses and the report matches
	// the unlimited run byte for byte.
	atLimit, err := AnalyzeSource(Options{Solver: SolverOptions{PtsLimit: 3}}, sources)
	if err != nil {
		t.Fatal(err)
	}
	if n := atLimit.Ptr.CappedVars(); n != 0 {
		t.Fatalf("limit == set size capped %d variables; the boundary is off by one", n)
	}
	if got, want := canonicalReportText(t, atLimit.Report), canonicalReportText(t, exact.Report); got != want {
		t.Errorf("limit == set size changed the report:\n got %s\nwant %s", got, want)
	}

	capped, err := AnalyzeSource(Options{Solver: SolverOptions{PtsLimit: 2}}, sources)
	if err != nil {
		t.Fatal(err)
	}
	if n := capped.Ptr.CappedVars(); n == 0 {
		t.Fatal("limit below set size capped no variables")
	}
	s := capped.Report.Stats
	if s.PtrCappedVars != capped.Ptr.CappedVars() {
		t.Errorf("report marks ptr_capped_vars=%d but the solver capped %d", s.PtrCappedVars, capped.Ptr.CappedVars())
	}
	if !s.Throttled() {
		t.Error("capped run not marked throttled")
	}
	for i, w := range capped.Report.Warnings {
		if !w.Throttled {
			t.Errorf("warning %d of a capped run not marked throttled", i)
		}
	}
	raw, err := capped.Report.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"precision"`) || !strings.Contains(string(raw), `"ptr_capped_vars"`) {
		t.Errorf("capped run's report JSON carries no precision block:\n%s", raw)
	}
}

// TestPtsLimitDeterministic: the ⊤ collapse must be deterministic —
// identical reports across worker counts and both backends, even
// though a nonzero cap forces the sequential pointer sweep.
func TestPtsLimitDeterministic(t *testing.T) {
	sources := ptsFanSources()
	var want string
	for _, backend := range []Backend{ExplicitBackend, BDDBackend} {
		for _, w := range []int{1, 2, 4} {
			opts := Options{Solver: SolverOptions{
				PtsLimit: 2, Workers: w, Backend: backend,
			}}
			a, err := AnalyzeSource(opts, sources)
			if err != nil {
				t.Fatalf("backend=%v workers=%d: %v", backend, w, err)
			}
			if a.Ptr.CappedVars() == 0 {
				t.Fatalf("backend=%v workers=%d: cap did not fire", backend, w)
			}
			got := canonicalReportText(t, a.Report)
			if want == "" {
				want = got
				continue
			}
			if got != want {
				t.Errorf("backend=%v workers=%d report diverged:\n got %s\nwant %s", backend, w, got, want)
			}
		}
	}
}

// ctxFanSources calls one allocator helper from three distinct call
// sites, so 2-CFA numbering wants three contexts for it and a context
// cap of 2 must merge — and be visible.
func ctxFanSources() map[string]string {
	return map[string]string{
		"ctx.c": `
struct node { int *p; };
void *apr_palloc(void *r, int n);
void apr_pool_create(void **np, void *parent);
void apr_pool_destroy(void *r);
struct node *mk(void *r) { struct node *n = apr_palloc(r, 8); return n; }
int main() {
    void *root; void *sub;
    apr_pool_create(&root, 0);
    apr_pool_create(&sub, root);
    struct node *a = mk(root);
    struct node *b = mk(root);
    struct node *c = mk(sub);
    c->p = apr_palloc(sub, 4);
    a->p = apr_palloc(sub, 4);
    apr_pool_destroy(sub);
    return 0;
}`,
	}
}

// TestContextCapVisibleInReport pins the satellite bug: a k-CFA run
// that hits its context cap must say so in the report — Capped used
// to stop at the Numbering and never reach Stats.
func TestContextCapVisibleInReport(t *testing.T) {
	a, err := AnalyzeSource(Options{KCFA: 2, ContextCap: 2}, ctxFanSources())
	if err != nil {
		t.Fatal(err)
	}
	if !a.Numbering.Capped {
		t.Fatal("ContextCap=2 did not cap a three-site 2-CFA numbering; the fixture no longer exercises the cap")
	}
	s := a.Report.Stats
	if !s.CtxCapped {
		t.Error("numbering capped but the report does not mark ctx_capped")
	}
	if !s.Throttled() {
		t.Error("context-capped run not marked throttled")
	}
	raw, err := a.Report.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"ctx_capped"`) {
		t.Errorf("context-capped run's report JSON carries no ctx_capped marking:\n%s", raw)
	}
}

// TestOriginPolicyMarked: origin contexts are a precision trade by
// construction, so every origin run is throttled — even when nothing
// capped.
func TestOriginPolicyMarked(t *testing.T) {
	a, err := AnalyzeSource(Options{ContextPolicy: PolicyOrigin}, ctxFanSources())
	if err != nil {
		t.Fatal(err)
	}
	s := a.Report.Stats
	if s.Policy != PolicyOrigin {
		t.Fatalf("report marks policy=%q, want %q", s.Policy, PolicyOrigin)
	}
	if !s.Throttled() {
		t.Error("origin run not marked throttled")
	}
}

// TestAliasConflicts: the deprecated top-level spellings must either
// agree with Solver or be rejected with a config error at the
// boundary — before Normalize silently mirrors one over the other.
func TestAliasConflicts(t *testing.T) {
	for _, tc := range []struct {
		name string
		o    Options
		want string // substring of the error; "" = accepted
	}{
		// ExplicitBackend is the zero value, indistinguishable from
		// unset — so a deprecated-Backend alias only conflicts when both
		// spellings are nonzero, which two backend variants cannot
		// produce. The alias must win silently here, not error.
		{"backend zero value is unset",
			Options{Backend: BDDBackend, Solver: SolverOptions{Backend: ExplicitBackend}}, ""},
		{"bdd config conflict",
			Options{BDD: bdd.Config{NodeSize: 1 << 10}, Solver: SolverOptions{BDD: bdd.Config{NodeSize: 1 << 11}}},
			"BDD"},
		{"max rounds conflict",
			Options{MaxRounds: 2, Solver: SolverOptions{MaxRounds: 3}},
			"MaxRounds"},
		{"backend agreement",
			Options{Backend: BDDBackend, Solver: SolverOptions{Backend: BDDBackend}}, ""},
		{"one side only", Options{MaxRounds: 2}, ""},
		{"zero values", Options{}, ""},
	} {
		err := tc.o.AliasConflicts()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: rejected: %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: conflicting spellings accepted", tc.name)
			continue
		}
		var cerr *Error
		if !errors.As(err, &cerr) || cerr.Kind != ErrConfig {
			t.Errorf("%s: error is not config-kind: %v", tc.name, err)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name %s", tc.name, err, tc.want)
		}
		// The conflict must also stop an analysis, not just the helper.
		if _, aerr := AnalyzeSource(tc.o, ptsFanSources()); aerr == nil {
			t.Errorf("%s: AnalyzeSource ran despite the conflict", tc.name)
		}
	}
}

// TestQueryPairMatchesReport: the demand verdict must agree with the
// full analysis — every reported site pair queries inconsistent, its
// reversal (unreported here) queries consistent.
func TestQueryPairMatchesReport(t *testing.T) {
	sources := ptsFanSources()
	full, err := AnalyzeSource(Options{}, sources)
	if err != nil {
		t.Fatal(err)
	}
	sites := full.PairSites()
	if len(sites) == 0 {
		t.Fatal("fixture reports no warnings; the query test needs at least one site pair")
	}
	reported := make(map[string]bool)
	for _, ps := range sites {
		reported[ps.Src.String()+"|"+ps.Dst.String()] = true
	}
	ctx := context.Background()
	for _, ps := range sites {
		ans, err := QueryPairSource(ctx, Options{}, sources, ps.Src.String(), ps.Dst.String())
		if err != nil {
			t.Fatalf("query %s -> %s: %v", ps.Src, ps.Dst, err)
		}
		if !ans.Inconsistent {
			t.Errorf("demand query %s -> %s consistent but the full report warns", ps.Src, ps.Dst)
		}
		if ans.Pairs == 0 {
			t.Errorf("inconsistent answer for %s -> %s carries no object pairs", ps.Src, ps.Dst)
		}
		if reported[ps.Dst.String()+"|"+ps.Src.String()] {
			continue
		}
		rev, err := QueryPairSource(ctx, Options{}, sources, ps.Dst.String(), ps.Src.String())
		if err != nil {
			t.Fatalf("reverse query %s -> %s: %v", ps.Dst, ps.Src, err)
		}
		if rev.Inconsistent {
			t.Errorf("reverse query %s -> %s inconsistent but the full report has no such warning", ps.Dst, ps.Src)
		}
	}

	// A throttled configuration must mark its answers.
	ps := sites[0]
	ans, err := QueryPairSource(ctx, Options{ContextPolicy: PolicyOrigin}, sources, ps.Src.String(), ps.Dst.String())
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Throttled {
		t.Error("origin-policy query answer not marked throttled")
	}

	// Unknown sites are a resolve error, bad shapes a config error.
	if _, err := QueryPairSource(ctx, Options{}, sources, "fan.c:9999", ps.Dst.String()); err == nil {
		t.Error("query on a line with no allocation site succeeded")
	}
	if _, err := QueryPairSource(ctx, Options{}, sources, "nonsense", ps.Dst.String()); err == nil {
		t.Error("malformed site query succeeded")
	}
}
