package core

import (
	"context"
	"sort"

	"repro/internal/cminor"
	"repro/internal/correlation"
	"repro/internal/pointer"
)

// ObjectPair is one inconsistency: object Src may hold a pointer at
// field offset Off to object Dst while some owner-region pair has no
// subregion partial order (the paper's objectPair relation).
type ObjectPair struct {
	Src int
	Off int64
	Dst int
	// Evidence is one offending owner-region pair (x, y) with x ⋢ y.
	Evidence [2]int
	// High is the Section 5.4 ranking: true when the owner regions
	// never have the subregion relation in either direction.
	High bool
}

// computeObjectPairs verifies the non-access property against region
// pairs with no subregion partial order. The explicit backend checks
// each σ edge directly (equivalent to materializing regionPair and
// joining, but linear in |σ|); the BDD backend runs the paper's
// Datalog rules and is cross-checked in tests.
func (a *Analysis) computeObjectPairs(ctx context.Context) []ObjectPair {
	if a.Opts.Solver.Backend == BDDBackend {
		return a.computeObjectPairsBDD(ctx)
	}
	out := a.checkEdges(a.AccessEdges)
	sortPairs(out)
	return out
}

// checkEdges runs checkEdge over a batch of access edges, sharded
// across Solver.Workers when parallelism is enabled. Each worker
// writes into its own index range of the result slice and all inputs
// (ownership, subregion order, refinement relations) are read-only, so
// the compacted output is identical to the sequential scan.
func (a *Analysis) checkEdges(edges []AccessEdge) []ObjectPair {
	results := make([]ObjectPair, len(edges))
	keep := make([]bool, len(edges))
	parallelFor(a.Opts.Solver.Workers, len(edges), func(i int) {
		results[i], keep[i] = a.checkEdge(edges[i])
	})
	var out []ObjectPair
	for i, k := range keep {
		if k {
			out = append(out, results[i])
		}
	}
	return out
}

// checkEdge decides whether one access edge is inconsistent and, if
// so, builds its ObjectPair with evidence and rank. The Section 5.4
// ranking keys on the witnessing region pair: the pair is high-ranked
// when some offending owner pair (x, y) never has the subregion
// relation in either direction — which is why the paper's Figure 9
// case (pool/subpool, related but inverted) ranks low while its
// Section 6.2 false positive (a fresh pool vs. an unrelated one) and
// the sibling-region bugs rank high.
func (a *Analysis) checkEdge(e AccessEdge) (ObjectPair, bool) {
	srcOwners := a.ownersOf(e.Src)
	dstOwners := a.ownersOf(e.Dst)
	bad := false
	high := false
	var evidence [2]int
	refine := a.Opts.DefUseRefinement && a.sameVarWitness(0, e.Src, e.Dst)
	for _, x := range srcOwners {
		for _, y := range dstOwners {
			if a.Leq(x, y) {
				continue
			}
			if a.Opts.DefUseRefinement && (refine || a.sameVarWitness(x, e.Src, e.Dst)) {
				// Figure 5(b): the witness is an artifact of
				// flow-insensitive region aliasing.
				continue
			}
			if !bad {
				evidence = [2]int{x, y}
			}
			bad = true
			if !a.Leq(y, x) {
				// This witness pair is unrelated in both directions.
				high = true
				evidence = [2]int{x, y}
			}
		}
	}
	if !bad {
		return ObjectPair{}, false
	}
	return ObjectPair{
		Src: e.Src, Off: e.Off, Dst: e.Dst,
		Evidence: evidence,
		High:     high,
	}, true
}

func sortPairs(ps []ObjectPair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Src != ps[j].Src {
			return ps[i].Src < ps[j].Src
		}
		if ps[i].Off != ps[j].Off {
			return ps[i].Off < ps[j].Off
		}
		return ps[i].Dst < ps[j].Dst
	})
}

// Correlation materializes the paper's Definition 4.1 instantiation
// ⟨p⁺̄, φ⁼, σ̄*⟩ over this analysis: F is the set of region pairs with
// no subregion partial order, Phi maps a region to the objects it owns
// (plus itself), and G is the must-not-access predicate. Its
// Violations() agree with the object-pair computation; the test suite
// checks that equivalence.
func (a *Analysis) Correlation() *correlation.Correlation[int, map[int]bool] {
	f := correlation.NewRelation[int]()
	for x := 1; x < len(a.Regions); x++ {
		for y := 1; y < len(a.Regions); y++ {
			if x != y && !a.Leq(x, y) {
				f.Add(x, y)
			}
		}
	}
	phi := func(r int) map[int]bool {
		set := map[int]bool{}
		if r > 0 && r < len(a.Regions) && a.Regions[r].Obj >= 0 {
			set[a.Regions[r].Obj] = true
		}
		for obj, owners := range a.Owner {
			for _, o := range owners {
				if o == r {
					set[obj] = true
				}
			}
		}
		return set
	}
	access := map[[2]int]bool{}
	for _, e := range a.AccessEdges {
		access[[2]int{e.Src, e.Dst}] = true
	}
	g := func(s, t map[int]bool) bool {
		for o1 := range s {
			for o2 := range t {
				if access[[2]int{o1, o2}] {
					return false
				}
			}
		}
		return true
	}
	return &correlation.Correlation[int, map[int]bool]{F: f, Phi: phi, G: g}
}

// --- post processing (Section 5.4) ---

// IPair is a context-insensitive instruction pair: object pairs
// condensed by (allocation site, offset, allocation site).
type IPair struct {
	SrcSite int // instruction ID of the source allocation (-1 for non-alloc objects)
	Off     int64
	DstSite int
	// High when any underlying object pair is high-ranked.
	High bool
	// Pairs counts the context-sensitive object pairs condensed here.
	Pairs int
	// Example keeps one representative ObjectPair for reporting.
	Example ObjectPair
}

// condense folds context-sensitive object pairs to instruction pairs.
func (a *Analysis) condense(pairs []ObjectPair) []IPair {
	type key struct {
		src int
		off int64
		dst int
	}
	m := make(map[key]*IPair)
	var order []key
	for _, p := range pairs {
		k := key{a.siteOf(p.Src), p.Off, a.siteOf(p.Dst)}
		ip := m[k]
		if ip == nil {
			ip = &IPair{SrcSite: k.src, Off: k.off, DstSite: k.dst, Example: p}
			m[k] = ip
			order = append(order, k)
		}
		ip.Pairs++
		if p.High {
			ip.High = true
		}
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.src != b.src {
			return a.src < b.src
		}
		if a.off != b.off {
			return a.off < b.off
		}
		return a.dst < b.dst
	})
	out := make([]IPair, 0, len(order))
	for _, k := range order {
		out = append(out, *m[k])
	}
	return out
}

// PairSite is one reported pair as source positions of the two
// allocation sites (used by the soundness property tests to match
// static reports against concrete executions).
type PairSite struct {
	Src, Dst cminor.Pos
}

// PairSites returns the allocation-site position pairs of every
// reported warning.
func (a *Analysis) PairSites() []PairSite {
	var out []PairSite
	for _, w := range a.Report.Warnings {
		ip := w.IPair
		out = append(out, PairSite{
			Src: a.sitePos(ip.Example.Src),
			Dst: a.sitePos(ip.Example.Dst),
		})
	}
	return out
}

func (a *Analysis) sitePos(obj int) cminor.Pos {
	o := a.Ptr.Objects[obj]
	if o.Kind == pointer.AllocObj && o.Site != nil {
		return o.Site.Pos
	}
	return cminor.Pos{}
}

// siteOf maps an object to its allocation instruction ID (or -1).
func (a *Analysis) siteOf(obj int) int {
	o := a.Ptr.Objects[obj]
	if o.Kind == pointer.AllocObj && o.Site != nil {
		return o.Site.ID
	}
	return -1
}
