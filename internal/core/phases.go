package core

import (
	"context"
	"sort"

	"repro/internal/callgraph"
	"repro/internal/cminor"
	"repro/internal/contexts"
	"repro/internal/ir"
	"repro/internal/pipeline"
	"repro/internal/pointer"
)

// Phase names, in execution order. Each maps onto a stage of the
// paper's Section 5 pipeline; DESIGN.md's "pipeline phases" section
// has the full correspondence.
const (
	PhaseParse     = "parse"     // CMinor front end (Section 5.1)
	PhaseCheck     = "check"     // type checking (Section 5.1)
	PhaseLower     = "lower"     // IR lowering + entry resolution (Section 5.1)
	PhaseCallGraph = "callgraph" // call graph construction (Section 5.1)
	PhaseContexts  = "contexts"  // context numbering (Section 5.2)
	PhasePointer   = "pointer"   // pointer analysis with heap cloning (Section 5.3.1)
	PhaseRegions   = "regions"   // region extraction + parent collapse (Section 4.3)
	PhaseOwnership = "ownership" // ownership relation extraction (Section 5.3.1)
	PhaseAccess    = "access"    // access relation restriction (Section 5.3.1)
	PhasePairs     = "pairs"     // inconsistency computation (Section 5.3.2)
	PhasePost      = "post"      // condensing + ranking (Section 5.4)
)

// PhaseNames lists every analysis phase in execution order, including
// the front-end phases run only by AnalyzeSource.
func PhaseNames() []string {
	return []string{
		PhaseParse, PhaseCheck, PhaseLower, PhaseCallGraph,
		PhaseContexts, PhasePointer, PhaseRegions, PhaseOwnership,
		PhaseAccess, PhasePairs, PhasePost,
	}
}

// newAnalysis allocates the shared pipeline state. opts must already
// be filled.
func newAnalysis(opts Options) *Analysis {
	return &Analysis{
		Opts:       opts,
		regionOf:   make(map[int]int),
		Owner:      make(map[int][]int),
		parentVars: make(map[int]map[varInst]bool),
		ownerVars:  make(map[int]map[varInst]bool),
	}
}

// frontEndPhases parses and checks a.Sources into a.Files and a.Info.
// Snapshot-backed runs (a.snapshotting) digest every file; incremental
// runs (a.prev set) additionally reuse the base snapshot's ASTs for
// digest-unchanged files and, when the edit preserves all declaration
// signatures, re-check only the changed files against the base's
// declaration environment.
func frontEndPhases() []pipeline.Phase[*Analysis] {
	return []pipeline.Phase[*Analysis]{
		pipeline.WithInputs(pipeline.New(PhaseParse, func(_ context.Context, a *Analysis) error {
			paths := make([]string, 0, len(a.Sources))
			for p := range a.Sources {
				paths = append(paths, p)
			}
			sort.Strings(paths)
			if a.snapshotting {
				a.digests = make(map[string]string, len(paths))
				a.changed = make(map[string]bool, len(paths))
			}
			// Decide reuse sequentially, parse the rest in parallel
			// (files are independent), then assemble in path order so
			// a.Files and the first-error choice match the sequential
			// loop exactly.
			files := make([]*cminor.File, len(paths))
			parseErrs := make([][]*cminor.Error, len(paths))
			var toParse []int
			for i, p := range paths {
				if a.snapshotting {
					d := FileDigest(a.Sources[p])
					a.digests[p] = d
					if a.prev != nil && a.prev.digests[p] == d {
						files[i] = a.prev.files[p]
						a.Front.ParseReused++
						continue
					}
					a.changed[p] = true
				}
				toParse = append(toParse, i)
			}
			parallelFor(a.Opts.Solver.Workers, len(toParse), func(j int) {
				i := toParse[j]
				files[i], parseErrs[i] = cminor.Parse(paths[i], a.Sources[paths[i]])
			})
			for i, p := range paths {
				if errs := parseErrs[i]; len(errs) != 0 {
					return Errf(ErrParse, errs[0].Pos.String(),
						"parse %s: %v (and %d more)", p, errs[0], len(errs)-1)
				}
				a.Files = append(a.Files, files[i])
			}
			a.Front.ParseParsed += len(toParse)
			return nil
		}), "sources"),
		pipeline.WithInputs(pipeline.New(PhaseCheck, func(_ context.Context, a *Analysis) error {
			if a.tryIncrementalCheck() {
				a.incrementalCheck = true
				a.Info = cminor.CheckIncremental(a.prev.info, a.Files, a.changed)
				for _, f := range a.Files {
					if a.changed[f.Path] {
						a.Front.CheckChecked++
					} else {
						a.Front.CheckReused++
					}
				}
			} else {
				a.Info = cminor.CheckParallel(a.Opts.Solver.Workers, a.Files...)
				a.Front.CheckChecked = len(a.Files)
			}
			if len(a.Info.Errors) != 0 {
				return Errf(ErrParse, a.Info.Errors[0].Pos.String(),
					"check: %v (and %d more)", a.Info.Errors[0], len(a.Info.Errors)-1)
			}
			return nil
		}), "files", "decl_signatures"),
	}
}

// analysisPhases is the back half of the pipeline: everything after
// the front end, operating on a.Info and a.Files.
func analysisPhases() []pipeline.Phase[*Analysis] {
	return []pipeline.Phase[*Analysis]{
		pipeline.WithInputs(pipeline.New(PhaseLower, func(_ context.Context, a *Analysis) error {
			if a.snapshotting {
				// Per-file fragments, reused from the base when the file
				// is unchanged and the declaration environment held
				// (fragments bake in type layouts and symbol kinds, so a
				// full fallback check invalidates all of them). Fresh
				// lowers run in parallel: LowerFile only reads a.Info
				// and Link assigns all program-wide IDs in file order,
				// so the linked program is schedule-independent.
				frags := make([]*ir.Fragment, len(a.Files))
				a.fragments = make(map[string]*ir.Fragment, len(a.Files))
				var toLower []int
				for i, f := range a.Files {
					if a.incrementalCheck && !a.changed[f.Path] {
						frags[i] = a.prev.frags[f.Path]
						a.Front.LowerReused++
					} else {
						toLower = append(toLower, i)
						a.Front.LowerLowered++
					}
				}
				parallelFor(a.Opts.Solver.Workers, len(toLower), func(j int) {
					i := toLower[j]
					frags[i] = ir.LowerFile(a.Info, a.Files[i])
				})
				for i, f := range a.Files {
					a.fragments[f.Path] = frags[i]
				}
				a.Prog = ir.Link(a.Info, frags)
			} else if a.Opts.Solver.Workers > 1 && len(a.Files) > 1 {
				// Plain mode, parallel: per-file fragments linked in
				// file order. ir.Link documents byte-identity with the
				// single-pass Lower.
				frags := make([]*ir.Fragment, len(a.Files))
				parallelFor(a.Opts.Solver.Workers, len(a.Files), func(i int) {
					frags[i] = ir.LowerFile(a.Info, a.Files[i])
				})
				a.Prog = ir.Link(a.Info, frags)
			} else {
				a.Prog = ir.Lower(a.Info, a.Files...)
			}
			entries := a.Opts.Entries
			if len(entries) == 0 {
				if _, ok := a.Prog.Funcs[a.Opts.Entry]; !ok {
					return Errf(ErrResolve, "", "entry function %q not defined", a.Opts.Entry)
				}
				entries = []string{a.Opts.Entry}
			} else {
				for _, e := range entries {
					if _, ok := a.Prog.Funcs[e]; !ok {
						return Errf(ErrResolve, "", "entry function %q not defined", e)
					}
				}
			}
			a.entries = entries
			return nil
		}), "files", "info"),
		pipeline.WithInputs(pipeline.New(PhaseCallGraph, func(_ context.Context, a *Analysis) error {
			if a.prev != nil {
				// Incremental rebuild: relinking shifts instruction IDs,
				// so edges are rescanned rather than patched, but the
				// direct scan skips the vF fixpoint whenever no function
				// values flow through variables or memory. BuildDirect
				// is exact — it refuses rather than approximates — so
				// the graph matches BuildEntries' bit for bit.
				if g, ok := callgraph.BuildDirect(a.Prog, a.entries, a.Opts.ImplicitSpecs); ok {
					a.Graph = g
					a.Front.CallGraphDirect = true
					return nil
				}
			}
			a.Graph = callgraph.BuildEntries(a.Prog, a.entries, a.Opts.ImplicitSpecs)
			return nil
		}), "funcs", "entries"),
		pipeline.WithInputs(pipeline.New(PhaseContexts, func(_ context.Context, a *Analysis) error {
			switch {
			case a.Opts.ContextPolicy == PolicyOrigin:
				a.Numbering = contexts.NewOrigin(a.Graph, a.Opts.ContextCap, a.originFns())
			case a.Opts.KCFA > 0:
				a.Numbering = contexts.NewKCFA(a.Graph, a.Opts.KCFA, a.Opts.ContextCap)
			default:
				a.Numbering = contexts.Number(a.Graph, a.Opts.ContextCap)
			}
			return nil
		}), "reachable_funcs", "call_edges"),
		pipeline.WithInputs(pipeline.New(PhasePointer, func(ctx context.Context, a *Analysis) error {
			a.Ptr = pointer.AnalyzeContext(ctx, a.Numbering, a.pointerConfig())
			return nil
		}), "contexts", "reachable_instrs"),
		pipeline.WithInputs(pipeline.New(PhaseRegions, func(_ context.Context, a *Analysis) error {
			a.extractRegions()
			a.collapseParents()
			return nil
		}), "points_to", "region_api"),
		pipeline.WithInputs(pipeline.New(PhaseOwnership, func(_ context.Context, a *Analysis) error {
			a.extractOwnership()
			return nil
		}), "regions", "points_to"),
		pipeline.WithInputs(pipeline.New(PhaseAccess, func(_ context.Context, a *Analysis) error {
			a.extractAccess()
			return nil
		}), "ownership_edges", "heap_edges"),
		pipeline.WithInputs(pipeline.New(PhasePairs, func(ctx context.Context, a *Analysis) error {
			a.pairs = a.computeObjectPairs(ctx)
			// Opt-in provenance recording (explain.go): the explicit
			// backend captures witnesses here; the BDD backend answers
			// Explain by demand-driven replay instead. Recording writes
			// only a.prov, never the pairs or any metric key.
			if a.Opts.Provenance && a.Opts.Solver.Backend == ExplicitBackend {
				a.recordProvenance(ctx)
			}
			return nil
		}), "regions", "subregion_edges", "ownership_edges", "access_edges"),
		pipeline.WithInputs(pipeline.New(PhasePost, func(_ context.Context, a *Analysis) error {
			a.Report = a.postProcess(a.pairs)
			return nil
		}), "object_pairs"),
	}
}

// runPhases executes a phase list over a and folds the pipeline
// metrics into the report's stats.
func runPhases(ctx context.Context, a *Analysis, phases []pipeline.Phase[*Analysis]) (*Analysis, error) {
	r := pipeline.NewRunner(phases...)
	r.Observer = a.Opts.Observer
	m, err := r.Run(ctx, a)
	a.Metrics = m
	if err != nil {
		// Phase errors are already typed; anything else (a context
		// cancellation, an unexpected failure) becomes an internal
		// Error that still unwraps to its cause.
		return nil, WrapError(ErrInternal, err)
	}
	a.Report.Stats.Time = m.Total
	a.Report.Stats.Phases = phaseStats(m)
	return a, nil
}

// phaseStats converts pipeline metrics to the report's stable form.
func phaseStats(m *pipeline.Metrics) []PhaseStat {
	out := make([]PhaseStat, 0, len(m.Phases))
	for _, pm := range m.Phases {
		out = append(out, PhaseStat{
			Name:       pm.Name,
			Time:       pm.Wall,
			AllocBytes: pm.AllocBytes,
			Outputs:    pm.Outputs,
		})
	}
	return out
}

// RelationSizes implements pipeline.RelationSizer: a snapshot of
// every relation and counter the pipeline has produced so far. The
// Runner diffs consecutive snapshots to attribute sizes to phases, so
// each key lands in the Outputs of the phase that produced (or last
// grew) it.
func (a *Analysis) RelationSizes() map[string]int64 {
	s := make(map[string]int64)
	if len(a.Files) > 0 {
		s["files"] = int64(len(a.Files))
	}
	if a.Prog != nil {
		s["funcs"] = int64(len(a.Prog.Funcs))
	}
	if a.Graph != nil {
		reach := a.Graph.ReachableFuncs()
		s["reachable_funcs"] = int64(len(reach))
		instrs := 0
		for _, fn := range reach {
			instrs += len(a.Prog.Funcs[fn].Instrs)
		}
		s["reachable_instrs"] = int64(instrs)
	}
	if a.Numbering != nil {
		s["contexts"] = int64(a.Numbering.TotalContexts())
		// Surfaced only when the cap actually merged contexts, so
		// uncapped runs keep their golden phase outputs.
		if a.Numbering.Capped {
			s["ctx_capped"] = 1
		}
	}
	if a.Ptr != nil {
		for k, v := range a.Ptr.SolverStats() {
			s[k] = v
		}
	}
	if len(a.Regions) > 0 {
		s["regions"] = int64(len(a.Regions) - 1)
		s["subregion_edges"] = int64(a.subEdges)
	}
	if a.ownEdges > 0 {
		s["ownership_edges"] = int64(a.ownEdges)
	}
	if len(a.AccessEdges) > 0 {
		s["access_edges"] = int64(len(a.AccessEdges))
	}
	if a.pairs != nil {
		s["object_pairs"] = int64(len(a.pairs))
	}
	if a.bddNodes > 0 {
		s["bdd_nodes"] = a.bddNodes
		s["datalog_tuples"] = a.bddTuples
		s["bdd_cache_hits"] = int64(a.bddStats.CacheHits)
		s["bdd_cache_misses"] = int64(a.bddStats.CacheMisses)
		s["bdd_unique_collisions"] = int64(a.bddStats.UniqueCollisions)
		s["bdd_table_grows"] = int64(a.bddStats.Grows)
		// Lifecycle counters surface only when a collection or reorder
		// actually ran, so default-config phase outputs (pinned by
		// golden reports) are untouched.
		if a.bddStats.Collections > 0 {
			s["bdd_gc_collections"] = int64(a.bddStats.Collections)
			s["bdd_gc_nodes_freed"] = int64(a.bddStats.NodesFreed)
			s["bdd_gc_sweep_ns"] = a.bddStats.SweepWallNS
		}
		if a.bddStats.Reorders > 0 {
			s["bdd_reorders"] = int64(a.bddStats.Reorders)
			s["bdd_reorder_swaps"] = int64(a.bddStats.ReorderSwaps)
		}
		if a.bddStats.Collections > 0 || a.bddStats.Reorders > 0 {
			s["bdd_peak_nodes"] = int64(a.bddStats.PeakNodes)
		}
	}
	if a.Report != nil {
		s["instruction_pairs"] = int64(a.Report.Stats.IPairs)
		s["warnings"] = int64(len(a.Report.Warnings))
	}
	// Front-end reuse counters, only for snapshot-backed runs so that
	// plain runs' phase outputs (pinned by golden reports) are
	// untouched. Zero values surface nowhere: the Runner only
	// attributes keys whose value changed.
	if a.snapshotting {
		s["parse_files_reused"] = int64(a.Front.ParseReused)
		s["parse_files_parsed"] = int64(a.Front.ParseParsed)
		s["check_files_reused"] = int64(a.Front.CheckReused)
		s["check_files_checked"] = int64(a.Front.CheckChecked)
		s["lower_frags_reused"] = int64(a.Front.LowerReused)
		s["lower_frags_lowered"] = int64(a.Front.LowerLowered)
		if a.Front.CallGraphDirect {
			s["callgraph_direct"] = 1
		}
	}
	return s
}
