package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/pipeline"
)

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		want string
	}{
		{"negative kcfa", Options{Entry: "main", KCFA: -1}, "negative KCFA"},
		{"no root", Options{}, "no analysis root"},
		{"bad outarg", Options{
			Entry: "main",
			API: &RegionAPI{
				Create: map[string]CreateSpec{"mkpool": {ParentArg: 0, OutArg: -2}},
			},
		}, "OutArg -2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opts.Validate()
			if err == nil {
				t.Fatal("Validate passed, want error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
			var aerr *Error
			if !errors.As(err, &aerr) || aerr.Kind != ErrConfig {
				t.Errorf("err = %#v, want *Error with ErrConfig", err)
			}
			if !errors.Is(err, &Error{Kind: ErrConfig}) {
				t.Error("errors.Is against config sentinel failed")
			}
		})
	}
}

func TestValidateAccepts(t *testing.T) {
	ok := []Options{
		{Entry: "main"},
		{Entries: []string{}},           // open program, all functions
		{Entries: []string{"f"}},        // open program, listed roots
		Options{}.Normalize(),           // zero value after normalization
		{Entry: "main", API: RCRegions()},
	}
	for i, o := range ok {
		if err := o.Validate(); err != nil {
			t.Errorf("case %d: Validate() = %v, want nil", i, err)
		}
	}
}

func TestNormalizeCanonicalizes(t *testing.T) {
	n := Options{}.Normalize()
	if n.Entry != "main" || n.API == nil || n.ContextCap != 4096 ||
		n.HeapCloning == nil || !*n.HeapCloning {
		t.Fatalf("zero-value normalization incomplete: %+v", n)
	}
	// Entries set: Entry is ignored, so the canonical form drops it
	// and sorts/dedupes the roots.
	n = Options{Entry: "main", Entries: []string{"b", "a", "b"}}.Normalize()
	if n.Entry != "" {
		t.Errorf("Entry = %q with Entries set, want cleared", n.Entry)
	}
	if len(n.Entries) != 2 || n.Entries[0] != "a" || n.Entries[1] != "b" {
		t.Errorf("Entries = %v, want [a b]", n.Entries)
	}
	// nil vs empty Entries mean different analyses and must survive.
	if (Options{}).Normalize().Entries != nil {
		t.Error("nil Entries became non-nil")
	}
	if (Options{Entries: []string{}}).Normalize().Entries == nil {
		t.Error("empty Entries became nil")
	}
	// Normalize does not mutate its receiver's slices.
	in := Options{Entries: []string{"z", "a"}}
	in.Normalize()
	if in.Entries[0] != "z" {
		t.Error("Normalize mutated the caller's Entries slice")
	}
}

func TestFingerprint(t *testing.T) {
	// Spelling differences that configure the same analysis agree.
	a := Options{}.Fingerprint()
	b := Options{Entry: "main", ContextCap: 4096, HeapCloning: Bool(true)}.Fingerprint()
	if a != b {
		t.Error("equivalent options fingerprint differently")
	}
	// Every semantic knob moves the fingerprint.
	variants := []Options{
		{Entry: "other"},
		{Entries: []string{}},
		{Entries: []string{"f"}},
		{ContextCap: 1},
		{HeapCloning: Bool(false)},
		{Backend: BDDBackend},
		{KCFA: 2},
		{DefUseRefinement: true},
		{ExtraAllocFns: []string{"my_alloc"}},
		{API: RCRegions()},
	}
	seen := map[string]int{a: -1}
	for i, v := range variants {
		fp := v.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("variant %d collides with %d: %+v", i, prev, v)
		}
		seen[fp] = i
	}
	// Observer is excluded: it cannot change results.
	withObs := Options{Observer: pipeline.ObserverFuncs[*Analysis]{}}
	if withObs.Fingerprint() != a {
		t.Error("observer changed the fingerprint")
	}
}

func TestAnalyzeBoundaryValidates(t *testing.T) {
	_, err := AnalyzeSource(Options{KCFA: -3}, map[string]string{"a.c": "int main(void) { return 0; }"})
	var aerr *Error
	if !errors.As(err, &aerr) || aerr.Kind != ErrConfig {
		t.Fatalf("err = %v, want config Error", err)
	}
}

func TestTypedErrorKinds(t *testing.T) {
	// Parse failures carry the parse kind and a source position.
	_, err := AnalyzeSource(Options{}, map[string]string{"bad.c": "int main(void) { return }"})
	var aerr *Error
	if !errors.As(err, &aerr) || aerr.Kind != ErrParse {
		t.Fatalf("parse err = %v, want parse Error", err)
	}
	if !strings.HasPrefix(aerr.Pos, "bad.c:") {
		t.Errorf("parse error position = %q, want bad.c:<line>:<col>", aerr.Pos)
	}
	// Missing entry resolves to the resolve kind.
	_, err = AnalyzeSource(Options{Entry: "nope"}, map[string]string{"a.c": "int main(void) { return 0; }"})
	if !errors.As(err, &aerr) || aerr.Kind != ErrResolve {
		t.Fatalf("resolve err = %v, want resolve Error", err)
	}
	// Cancellation is internal but still unwraps to context.Canceled.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = AnalyzeSourceContext(ctx, Options{}, map[string]string{"a.c": "int main(void) { return 0; }"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled err = %v, want wraps context.Canceled", err)
	}
	if !errors.As(err, &aerr) || aerr.Kind != ErrInternal {
		t.Fatalf("cancelled err = %v, want internal Error", err)
	}
}
