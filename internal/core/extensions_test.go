package core

import "testing"

// --- Figure 5(b): def-use refinement (the paper's future work) ---

func TestDefUseRefinementEliminatesFigure5FalsePositive(t *testing.T) {
	src := rcPrelude + `
struct obj { struct obj *f; };
int main(int c) {
    region_t *p;
    region_t *q;
    struct obj *o1;
    struct obj *o2;
    if (c) p = rnew(NULL); else p = rnew(NULL);
    q = rnew(p);
    o1 = ralloc(p);
    o2 = ralloc(q);
    o2->f = o1;
    return 0;
}`
	// Without the refinement the flow-insensitive analysis reports the
	// Figure 5(a) false warning...
	plain := runOpts(t, Options{}, src)
	if len(plain.Report.Warnings) == 0 {
		t.Fatal("baseline should report the Figure 5 false warning")
	}
	// ...with it, the p̂/f̂ relations prove q's parent and o1's owner
	// came from the same variable p, so the pointer is intra-hierarchy
	// (Figure 5(b)).
	refined := runOpts(t, Options{DefUseRefinement: true}, src)
	if n := len(refined.Report.Warnings); n != 0 {
		t.Fatalf("refined run still reports %d warnings:\n%s", n, refined.Report)
	}
}

func TestDefUseRefinementSameOwnerVariable(t *testing.T) {
	// Both objects allocated from the same region variable: whatever
	// region it held, they share it.
	src := rcPrelude + `
struct obj { struct obj *f; };
int main(int c) {
    region_t *p;
    struct obj *o1;
    struct obj *o2;
    if (c) p = rnew(NULL); else p = rnew(NULL);
    o1 = ralloc(p);
    o2 = ralloc(p);
    o2->f = o1;
    return 0;
}`
	plain := runOpts(t, Options{}, src)
	if len(plain.Report.Warnings) == 0 {
		t.Fatal("baseline should report the aliasing false warning")
	}
	refined := runOpts(t, Options{DefUseRefinement: true}, src)
	if n := len(refined.Report.Warnings); n != 0 {
		t.Fatalf("refined run still reports %d warnings:\n%s", n, refined.Report)
	}
}

func TestDefUseRefinementKeepsFigure3TrueBug(t *testing.T) {
	// Figure 3's genuine inconsistency must survive the refinement:
	// o1 is allocated from r1 while r2's parent is read from r —
	// different variables.
	src := rcPrelude + `
struct obj { struct obj *f; };
int main(int P, int Q) {
    region_t *r0; region_t *r1; region_t *r; region_t *r2;
    struct obj *o1; struct obj *o2;
    r0 = rnew(NULL);
    r1 = rnew(NULL);
    o1 = ralloc(r1);
    if (P) r = r0;
    if (Q) r = r1;
    r2 = rnew(r);
    o2 = ralloc(r2);
    o2->f = o1;
    return 0;
}`
	refined := runOpts(t, Options{DefUseRefinement: true}, src)
	if len(refined.Report.Warnings) == 0 {
		t.Fatal("def-use refinement suppressed the Figure 3 true inconsistency")
	}
}

func TestDefUseRefinementKeepsSiblingBug(t *testing.T) {
	refined := runOpts(t, Options{DefUseRefinement: true}, rcPrelude+`
struct obj { struct obj *p; };
int main(void) {
    region_t *r1; region_t *r2;
    struct obj *o1; struct obj *o2;
    r1 = rnew(NULL); r2 = rnew(NULL);
    o1 = ralloc(r1); o2 = ralloc(r2);
    o2->p = o1;
    return 0;
}`)
	if len(refined.Report.Warnings) != 1 {
		t.Fatalf("sibling bug lost under refinement:\n%s", refined.Report)
	}
}

// --- Open-program analysis (the paper's Section 8 extension) ---

func TestOpenProgramAnalyzesLibraryWithoutMain(t *testing.T) {
	// The Figure 12 Subversion parser as a library: no main, the
	// exported functions are the roots.
	src := aprPrelude + `
struct svn_xml_parser_t { void *xp; };
typedef struct svn_xml_parser_t svn_xml_parser_t;

svn_xml_parser_t * svn_xml_make_parser(apr_pool_t *pool) {
    svn_xml_parser_t *svn_parser;
    apr_pool_t *subpool;
    apr_pool_create(&subpool, pool);
    svn_parser = apr_pcalloc(subpool, sizeof(*svn_parser));
    return svn_parser;
}

struct log_runner { svn_xml_parser_t *parser; };
void run_log(apr_pool_t *pool) {
    struct log_runner *loggy;
    svn_xml_parser_t *parser;
    loggy = apr_pcalloc(pool, sizeof(*loggy));
    parser = svn_xml_make_parser(pool);
    loggy->parser = parser;
}`
	a, err := AnalyzeSource(Options{Entries: []string{"run_log", "svn_xml_make_parser"}},
		map[string]string{"lib.c": src})
	if err != nil {
		t.Fatalf("open-program analyze: %v", err)
	}
	if len(a.Report.Warnings) == 0 {
		t.Fatalf("library-mode analysis missed the Figure 12 bug:\n%s", a.Report)
	}
	if !a.Graph.Reachable["svn_xml_make_parser"] || !a.Graph.Reachable["run_log"] {
		t.Fatal("entries not all reachable roots")
	}
}

// --- k-CFA context policy (the paper's Section 6.3 direction) ---

func TestKCFAPolicyFindsBugsWithFewerContexts(t *testing.T) {
	src := rcPrelude + `
struct obj { struct obj *p; };
struct obj * allocIn(region_t *r) { return ralloc(r); }
int main(void) {
    region_t *r1; region_t *r2;
    struct obj *o1; struct obj *o2;
    r1 = rnew(NULL);
    r2 = rnew(NULL);
    o1 = allocIn(r1);
    o2 = allocIn(r2);
    o2->p = o1;       /* genuine sibling bug through the helper */
    return 0;
}`
	callpath := runOpts(t, Options{}, src)
	kcfa := runOpts(t, Options{KCFA: 1}, src)
	if len(callpath.Report.Warnings) != 1 || len(kcfa.Report.Warnings) != 1 {
		t.Fatalf("bug lost: callpath=%d kcfa=%d warnings",
			len(callpath.Report.Warnings), len(kcfa.Report.Warnings))
	}
	// 1-CFA distinguishes the two allocIn call sites just as well
	// here; context totals must stay no larger.
	if kcfa.Report.Stats.Contexts > callpath.Report.Stats.Contexts {
		t.Fatalf("kcfa contexts %d > callpath %d",
			kcfa.Report.Stats.Contexts, callpath.Report.Stats.Contexts)
	}
}

func TestKCFAPolicyPrecisionLossDocumented(t *testing.T) {
	// Two call paths sharing a k-suffix merge under 1-CFA: the helper
	// chain loses which region the object went to, producing a false
	// warning that full call-path numbering avoids.
	src := rcPrelude + `
struct obj { struct obj *p; };
struct obj * inner(region_t *r) { return ralloc(r); }
struct obj * outer(region_t *r) { return inner(r); }
int main(void) {
    region_t *r1; region_t *r2;
    struct obj *o1; struct obj *p1;
    struct obj *o2; struct obj *p2;
    r1 = rnew(NULL);
    r2 = rnew(NULL);
    o1 = outer(r1);
    p1 = outer(r1);
    o2 = outer(r2);
    p2 = outer(r2);
    o1->p = p1;   /* same-region links via distinct outer paths */
    o2->p = p2;
    return 0;
}`
	callpath := runOpts(t, Options{}, src)
	if n := len(callpath.Report.Warnings); n != 0 {
		t.Fatalf("call-path numbering should prove this clean, got %d", n)
	}
	kcfa := runOpts(t, Options{KCFA: 1}, src)
	if n := len(kcfa.Report.Warnings); n == 0 {
		t.Fatal("expected the documented 1-CFA precision loss (inner merges all outer calls)")
	}
}

func TestOpenProgramUnknownEntryRejected(t *testing.T) {
	_, err := AnalyzeSource(Options{Entries: []string{"nope"}},
		map[string]string{"lib.c": `int f(void) { return 0; }`})
	if err == nil {
		t.Fatal("unknown entry accepted")
	}
}

func TestOpenProgramEntriesGetOwnContexts(t *testing.T) {
	// Two entries calling a shared helper: the helper needs a context
	// per entry path.
	src := rcPrelude + `
struct obj { struct obj *p; };
struct obj * helper(region_t *r) { return ralloc(r); }
void entryA(void) {
    region_t *ra;
    struct obj *o;
    ra = rnew(NULL);
    o = helper(ra);
}
void entryB(void) {
    region_t *rb;
    struct obj *o;
    rb = rnew(NULL);
    o = helper(rb);
}`
	a, err := AnalyzeSource(Options{Entries: []string{"entryA", "entryB"}},
		map[string]string{"lib.c": src})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Numbering.Count["helper"]; got != 2 {
		t.Fatalf("helper has %d contexts, want 2 (one per entry)", got)
	}
	if len(a.Report.Warnings) != 0 {
		t.Fatalf("clean library flagged:\n%s", a.Report)
	}
}
