package core

import (
	"context"
	"fmt"
	"reflect"
	"testing"
)

// sources used for backend cross-checking: a mix of consistent and
// inconsistent programs.
var crossCheckSources = []string{
	// Figure 1 (consistent).
	rcPrelude + `
struct conn_t { int fd; };
struct req_t { struct conn_t *connection; };
int main(void) {
    region_t *r; region_t *subr;
    struct conn_t *conn; struct req_t *req;
    r = rnew(NULL);
    conn = ralloc(r);
    subr = rnew(r);
    req = ralloc(subr);
    req->connection = conn;
    return 0;
}`,
	// Siblings (one warning).
	rcPrelude + `
struct obj { struct obj *p; };
int main(void) {
    region_t *r1; region_t *r2;
    struct obj *o1; struct obj *o2;
    r1 = rnew(NULL); r2 = rnew(NULL);
    o1 = ralloc(r1); o2 = ralloc(r2);
    o2->p = o1;
    o1->p = o2;
    return 0;
}`,
	// Deep hierarchy with a cross-link.
	rcPrelude + `
struct obj { struct obj *p; };
int main(void) {
    region_t *a; region_t *b; region_t *c; region_t *d;
    struct obj *oa; struct obj *oc; struct obj *od;
    a = rnew(NULL); b = rnew(a); c = rnew(b); d = rnew(a);
    oa = ralloc(a); oc = ralloc(c); od = ralloc(d);
    oc->p = oa;  /* safe: c <= a */
    od->p = oc;  /* bad: d and c unrelated */
    oa->p = od;  /* bad: a not <= d */
    return 0;
}`,
	// Figure 9.
	figure9Source,
}

func TestBackendsAgree(t *testing.T) {
	for i, src := range crossCheckSources {
		t.Run(fmt.Sprintf("src%d", i), func(t *testing.T) {
			exp := runOpts(t, Options{Backend: ExplicitBackend}, src)
			bdd := runOpts(t, Options{Backend: BDDBackend}, src)
			expPairs := exp.computeObjectPairs(context.Background())
			bddPairs := bdd.computeObjectPairsBDD(context.Background())
			if !reflect.DeepEqual(expPairs, bddPairs) {
				t.Fatalf("backends disagree:\nexplicit: %+v\nbdd:      %+v", expPairs, bddPairs)
			}
			if len(exp.Report.Warnings) != len(bdd.Report.Warnings) {
				t.Fatalf("warning counts differ: %d vs %d",
					len(exp.Report.Warnings), len(bdd.Report.Warnings))
			}
		})
	}
}

func TestCorrelationFrameworkAgrees(t *testing.T) {
	// Definition 4.1's correlation must be violated exactly when the
	// pipeline reports object pairs between created regions.
	for i, src := range crossCheckSources {
		t.Run(fmt.Sprintf("src%d", i), func(t *testing.T) {
			a := run(t, src)
			corr := a.Correlation()
			pairs := a.computeObjectPairs(context.Background())
			// The correlation ranges over created regions only; filter
			// pairs whose evidence involves the root.
			var nonRoot int
			for _, p := range pairs {
				if p.Evidence[0] != RootRegion && p.Evidence[1] != RootRegion {
					nonRoot++
				}
			}
			if (nonRoot > 0) == corr.Consistent() {
				t.Fatalf("correlation consistent=%v but %d non-root object pairs",
					corr.Consistent(), nonRoot)
			}
		})
	}
}

func TestContextSensitivityMatters(t *testing.T) {
	// A helper allocates an object in whatever region it is given.
	// Context-sensitively the program is consistent; merging contexts
	// (cap=1) loses that and yields a false warning — the Section 6.3
	// precision/scalability trade-off.
	src := rcPrelude + `
struct obj { struct obj *p; };
struct obj * allocIn(region_t *r) { return ralloc(r); }
int main(void) {
    region_t *r1; region_t *r2;
    struct obj *o1; struct obj *o2;
    struct obj *p1; struct obj *p2;
    r1 = rnew(NULL);
    r2 = rnew(NULL);
    o1 = allocIn(r1);
    p1 = allocIn(r1);
    o2 = allocIn(r2);
    p2 = allocIn(r2);
    o1->p = p1;   /* same region via distinct call paths */
    o2->p = p2;
    return 0;
}`
	sensitive := runOpts(t, Options{ContextCap: 4096}, src)
	if n := len(sensitive.Report.Warnings); n != 0 {
		t.Fatalf("context-sensitive run has %d warnings, want 0:\n%s", n, sensitive.Report)
	}
	insensitive := runOpts(t, Options{ContextCap: 1}, src)
	if n := len(insensitive.Report.Warnings); n == 0 {
		t.Fatal("context-insensitive run should produce a false warning")
	}
}

func TestHeapCloningMatters(t *testing.T) {
	// Two regions created through the same wrapper call site: without
	// heap cloning they are one abstract region, losing the sibling
	// inconsistency (a false negative the paper's Section 7 argues
	// heap cloning prevents).
	src := rcPrelude + `
struct obj { struct obj *p; };
region_t * makeRegion(void) { return rnew(NULL); }
int main(void) {
    region_t *r1; region_t *r2;
    struct obj *o1; struct obj *o2;
    r1 = makeRegion();
    r2 = makeRegion();
    o1 = ralloc(r1);
    o2 = ralloc(r2);
    o2->p = o1;
    return 0;
}`
	cloned := runOpts(t, Options{}, src)
	if n := len(cloned.Report.Warnings); n != 1 {
		t.Fatalf("heap-cloned run has %d warnings, want 1:\n%s", n, cloned.Report)
	}
	uncloned := runOpts(t, Options{HeapCloning: Bool(false)}, src)
	if n := len(uncloned.Report.Warnings); n != 0 {
		t.Fatalf("uncloned run has %d warnings, want 0 (merged regions): %s", n, uncloned.Report)
	}
	if uncloned.Report.Stats.R >= cloned.Report.Stats.R {
		t.Fatalf("uncloned R=%d should be < cloned R=%d",
			uncloned.Report.Stats.R, cloned.Report.Stats.R)
	}
}

func TestStatsColumns(t *testing.T) {
	a := run(t, rcPrelude+`
struct obj { struct obj *p; };
int main(void) {
    region_t *r1; region_t *r2; region_t *r3;
    struct obj *o1; struct obj *o2;
    r1 = rnew(NULL);
    r2 = rnew(r1);
    r3 = rnew(r2);
    o1 = ralloc(r1);
    o2 = ralloc(r3);
    o1->p = o2;
    return 0;
}`)
	s := a.Report.Stats
	if s.R != 3 || s.H != 2 {
		t.Fatalf("R=%d H=%d, want 3/2", s.R, s.H)
	}
	if s.Sub != 3 { // r1<root (NULL parent means the root), r2<r1, r3<r2
		t.Fatalf("sub=%d, want 3", s.Sub)
	}
	if s.Own != 2 {
		t.Fatalf("own=%d, want 2", s.Own)
	}
	// R-pairs: ordered distinct pairs minus related. Related: (r2,r1),
	// (r3,r2), (r3,r1) -> 3. So 3*2 - 3 = 3.
	if s.RPairs != 3 {
		t.Fatalf("R-pairs=%d, want 3", s.RPairs)
	}
	// o1 (r1) -> o2 (r3): r1 not<= r3 -> 1 O-pair, 1 I-pair; owners
	// related in the other direction -> low rank.
	if s.OPairs != 1 || s.IPairs != 1 || s.High != 0 {
		t.Fatalf("O=%d I=%d high=%d, want 1/1/0", s.OPairs, s.IPairs, s.High)
	}
}

func TestHighRankedSortedFirst(t *testing.T) {
	a := run(t, rcPrelude+`
struct obj { struct obj *p; };
int main(void) {
    region_t *r1; region_t *r2; region_t *child;
    struct obj *o1; struct obj *o2; struct obj *o3;
    r1 = rnew(NULL);
    r2 = rnew(NULL);
    child = rnew(r2);
    o1 = ralloc(r1);
    o2 = ralloc(r2);
    o3 = ralloc(child);
    o2->p = o1;  /* high: r2, r1 unrelated */
    o2->p = o3;  /* low: child <= r2 but r2 not<= child */
    return 0;
}`)
	ws := a.Report.Warnings
	if len(ws) != 2 {
		t.Fatalf("%d warnings, want 2:\n%s", len(ws), a.Report)
	}
	if !ws[0].High() || ws[1].High() {
		t.Fatalf("ranking order wrong: [%v %v]", ws[0].High(), ws[1].High())
	}
}

func TestMultiFileProgram(t *testing.T) {
	a, err := AnalyzeSource(Options{}, map[string]string{
		"api.c": rcPrelude + `
struct obj { struct obj *p; };
region_t *gr1;
region_t *gr2;
void setup(void) {
    gr1 = rnew(NULL);
    gr2 = rnew(NULL);
}`,
		"main.c": rcPrelude + `
struct obj;
extern struct obj *mkobj(region_t *r);
typedef struct region_t region2_t;
extern region_t *gr1;
extern region_t *gr2;
extern void setup(void);
int main(void) {
    setup();
    return 0;
}`,
	})
	if err != nil {
		t.Fatalf("multi-file analyze: %v", err)
	}
	if a.Report.Stats.R != 2 {
		t.Fatalf("R=%d, want 2", a.Report.Stats.R)
	}
}

func TestMissingEntryRejected(t *testing.T) {
	_, err := AnalyzeSource(Options{}, map[string]string{"a.c": `int helper(void) { return 0; }`})
	if err == nil {
		t.Fatal("missing main not rejected")
	}
}

func TestParseErrorSurfaced(t *testing.T) {
	_, err := AnalyzeSource(Options{}, map[string]string{"a.c": `int main( { return 0; }`})
	if err == nil {
		t.Fatal("parse error not surfaced")
	}
}

func TestReportString(t *testing.T) {
	a := run(t, rcPrelude+`
struct obj { struct obj *p; };
int main(void) {
    region_t *r1; region_t *r2;
    struct obj *o1; struct obj *o2;
    r1 = rnew(NULL); r2 = rnew(NULL);
    o1 = ralloc(r1); o2 = ralloc(r2);
    o2->p = o1;
    return 0;
}`)
	out := a.Report.String()
	for _, want := range []string{"HIGH", "dangling", "stats:", "R-pair"} {
		if !contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
