package core

import (
	"testing"
)

// Region handles stored in object fields participate in σ through the
// φ⁼ reflexive extension: an object keeping a region pointer is
// inconsistent unless its own region is a descendant.
func TestRegionValuedFieldChecked(t *testing.T) {
	a := run(t, rcPrelude+`
struct ctx { region_t *scratch; };
int main(void) {
    region_t *main_r; region_t *other;
    struct ctx *c;
    main_r = rnew(NULL);
    other = rnew(NULL);
    c = ralloc(main_r);
    c->scratch = other;
    return 0;
}`)
	if len(a.Report.Warnings) != 1 {
		t.Fatalf("region-valued field: %d warnings, want 1:\n%s", len(a.Report.Warnings), a.Report)
	}
}

func TestRegionValuedFieldToAncestorSafe(t *testing.T) {
	a := run(t, rcPrelude+`
struct ctx { region_t *home; };
int main(void) {
    region_t *parent; region_t *child;
    struct ctx *c;
    parent = rnew(NULL);
    child = rnew(parent);
    c = ralloc(child);
    c->home = parent;
    return 0;
}`)
	if n := len(a.Report.Warnings); n != 0 {
		t.Fatalf("pointer to ancestor region flagged: %d warnings:\n%s", n, a.Report)
	}
}

// Unions collapse all members to offset 0: two pointer members alias,
// so a store through either is seen by loads of the other — sound for
// the weakly-typed analysis.
func TestUnionFieldsShareOffset(t *testing.T) {
	a := run(t, rcPrelude+`
struct obj { int v; };
union slot { struct obj *a; struct obj *b; };
struct holder { union slot s; };
int main(void) {
    region_t *r1; region_t *r2;
    struct holder *h;
    struct obj *x;
    r1 = rnew(NULL);
    r2 = rnew(NULL);
    h = ralloc(r1);
    x = ralloc(r2);
    h->s.a = x;      /* store via member a        */
    return 0;
}`)
	// The store lands at offset 0 regardless of member; the sibling
	// inconsistency is found.
	if len(a.Report.Warnings) != 1 {
		t.Fatalf("union-mediated bug: %d warnings:\n%s", len(a.Report.Warnings), a.Report)
	}
}

// Casting a pointer through an integer and back must not lose the
// points-to information (the weakly-typed "unsafe typecasts" of
// Section 5.5).
func TestIntPointerLaunderingTracked(t *testing.T) {
	a := run(t, rcPrelude+`
struct obj { struct obj *p; };
int main(void) {
    region_t *r1; region_t *r2;
    struct obj *o1; struct obj *o2;
    long cookie;
    struct obj *back;
    r1 = rnew(NULL); r2 = rnew(NULL);
    o1 = ralloc(r1); o2 = ralloc(r2);
    cookie = (long)o1;
    back = (struct obj *)cookie;
    o2->p = back;
    return 0;
}`)
	if len(a.Report.Warnings) != 1 {
		t.Fatalf("cast laundering lost the bug: %d warnings:\n%s", len(a.Report.Warnings), a.Report)
	}
}

// A cleanup callback registered on a pool is an implicit call: code
// inside it is analyzed, including its own allocations.
func TestCleanupCallbackBodyAnalyzed(t *testing.T) {
	a := run(t, aprPrelude+`
struct res { void *handle; };
apr_pool_t *global_scratch;
long my_cleanup(void *data) {
    struct res *r;
    apr_pool_t *other;
    struct res *leak;
    apr_pool_create(&other, NULL);
    r = apr_palloc(global_scratch, sizeof(struct res));
    leak = apr_palloc(other, sizeof(struct res));
    r->handle = leak;   /* inconsistent inside the callback */
    return 0;
}
int main(void) {
    apr_pool_t *pool;
    apr_pool_create(&pool, NULL);
    apr_pool_create(&global_scratch, NULL);
    apr_pool_cleanup_register(pool, NULL, my_cleanup, my_cleanup);
    apr_pool_destroy(pool);
    return 0;
}`)
	if len(a.Report.Warnings) == 0 {
		t.Fatalf("cleanup callback body not analyzed:\n%s", a.Report)
	}
}

// Deep recursion: the SCC collapse keeps the analysis terminating and
// the intra-SCC region flows consistent.
func TestRecursiveRegionThreading(t *testing.T) {
	a := run(t, rcPrelude+`
struct obj { struct obj *next; };
void build(region_t *r, int depth) {
    struct obj *a;
    struct obj *b;
    if (depth == 0) return;
    a = ralloc(r);
    b = ralloc(r);
    a->next = b;
    build(r, depth - 1);
}
int main(void) {
    region_t *r;
    r = rnew(NULL);
    build(r, 10);
    return 0;
}`)
	if n := len(a.Report.Warnings); n != 0 {
		t.Fatalf("recursive same-region list flagged: %d warnings:\n%s", n, a.Report)
	}
}

// A recursive helper that creates a subregion chain per level: region
// instances collapse into the SCC context but parents stay consistent.
func TestRecursiveSubregionChain(t *testing.T) {
	a := run(t, rcPrelude+`
struct obj { struct obj *up; };
void descend(region_t *parent, struct obj *up, int depth) {
    region_t *r;
    struct obj *o;
    if (depth == 0) return;
    r = rnew(parent);
    o = ralloc(r);
    o->up = up;           /* child object -> ancestor object: safe */
    descend(r, o, depth - 1);
}
int main(void) {
    region_t *root_r;
    struct obj *top;
    root_r = rnew(NULL);
    top = ralloc(root_r);
    descend(root_r, top, 8);
    return 0;
}`)
	// The recursion merges all chain levels into one abstract region;
	// the merged region's candidate parents include itself-adjacent
	// levels, which the join handles. The accesses all point upward,
	// so no warning should survive... unless the collapse loses the
	// chain. Document the actual behavior: the analysis must at least
	// terminate and must not crash; a false warning here is the
	// price of SCC collapsing (fine), a missed crash is not.
	_ = a
}

// A bug inside a thread entry function (reached only through the
// implicit apr_thread_create edge) is found — the multi-threaded
// scenario of Section 1 where dynamic deletion order varies with
// scheduling.
func TestThreadEntryBugFound(t *testing.T) {
	a := run(t, aprPrelude+`
typedef struct apr_thread_t apr_thread_t;
typedef struct apr_threadattr_t apr_threadattr_t;
typedef void *(*apr_thread_start_t)(apr_thread_t *t, void *data);
extern long apr_thread_create(apr_thread_t **new_thread, apr_threadattr_t *attr,
    apr_thread_start_t func, void *data, apr_pool_t *pool);
struct job { void *payload; };

apr_pool_t *shared_pool;

void * worker(apr_thread_t *t, void *data) {
    apr_pool_t *mine;
    struct job *j;
    void *p;
    apr_pool_create(&mine, NULL);
    j = apr_palloc(shared_pool, sizeof(struct job));
    p = apr_palloc(mine, 64);
    j->payload = p;     /* shared-pool object -> thread-local pool */
    return NULL;
}

int main(void) {
    apr_thread_t *th;
    apr_pool_t *pool;
    apr_pool_create(&pool, NULL);
    apr_pool_create(&shared_pool, NULL);
    apr_thread_create(&th, NULL, worker, NULL, pool);
    return 0;
}`)
	if len(a.Report.Warnings) == 0 {
		t.Fatalf("thread-entry inconsistency missed:\n%s", a.Report)
	}
	if !a.Graph.Reachable["worker"] {
		t.Fatal("worker not reachable through apr_thread_create")
	}
}

// A switch-based dispatcher placing objects in per-opcode regions: the
// flow-insensitive analysis merges all arms, reporting the one arm
// that is genuinely inconsistent.
func TestSwitchDispatcherAnalyzed(t *testing.T) {
	a := run(t, rcPrelude+`
enum op { SAME, SIBLING };
struct obj { struct obj *p; };
int main(int op) {
    region_t *a; region_t *b;
    region_t *target;
    struct obj *holder; struct obj *inner;
    a = rnew(NULL);
    b = rnew(NULL);
    target = a;
    switch (op) {
    case SAME:    target = a; break;
    case SIBLING: target = b; break;
    }
    inner = ralloc(a);
    holder = ralloc(target);
    holder->p = inner;
    return 0;
}`)
	// target may be a or b; the b placement is the real Figure 2(c)
	// hazard, so a warning must be reported.
	if len(a.Report.Warnings) == 0 {
		t.Fatalf("switch-carried placement missed:\n%s", a.Report)
	}
}

// Null stores never create access edges.
func TestNullStoreNoEdge(t *testing.T) {
	a := run(t, rcPrelude+`
struct obj { struct obj *p; };
int main(void) {
    region_t *r;
    struct obj *o;
    r = rnew(NULL);
    o = ralloc(r);
    o->p = NULL;
    return 0;
}`)
	if a.Report.Stats.Heap != 0 {
		t.Fatalf("NULL store created %d heap edges", a.Report.Stats.Heap)
	}
}

// Two distinct fields pointing at objects in different regions are
// reported as distinct I-pairs (field offsets kept).
func TestDistinctFieldsDistinctIPairs(t *testing.T) {
	a := run(t, rcPrelude+`
struct holder { struct holder *x; struct holder *y; };
int main(void) {
    region_t *r1; region_t *r2; region_t *r3;
    struct holder *h; struct holder *o2; struct holder *o3;
    r1 = rnew(NULL); r2 = rnew(NULL); r3 = rnew(NULL);
    h = ralloc(r1);
    o2 = ralloc(r2);
    o3 = ralloc(r3);
    h->x = o2;
    h->y = o3;
    return 0;
}`)
	if a.Report.Stats.IPairs != 2 {
		t.Fatalf("I-pairs = %d, want 2 (one per field)", a.Report.Stats.IPairs)
	}
	offsets := map[int64]bool{}
	for _, w := range a.Report.Warnings {
		offsets[w.IPair.Off] = true
	}
	if !offsets[0] || !offsets[8] {
		t.Fatalf("field offsets lost: %v", offsets)
	}
}
