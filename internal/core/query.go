package core

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/pointer"
	"repro/internal/trace"
)

// QuerySchemaV1 identifies the pair-query JSON encoding (the
// regionwiz -query output and the regionwizd /v1/query endpoint).
// Consumers should check it before decoding; additive changes keep the
// v1 name, incompatible ones bump it.
const QuerySchemaV1 = "regionwiz/query/v1"

// PairAnswer is the verdict of one demand-driven pair query: whether
// the objects allocated at Src may hold pointers into the objects
// allocated at Dst across regions with no subregion order. The verdict
// agrees with the full analysis — a pair is inconsistent here exactly
// when the global report carries a warning for the same site pair
// (regionbench -query-bench gates on that equivalence).
type PairAnswer struct {
	Schema string `json:"schema"`
	// Src and Dst echo the resolved allocation-site positions.
	Src string `json:"src"`
	Dst string `json:"dst"`
	// SrcObjects / DstObjects count the abstract objects (context
	// clones) the two sites resolved to; Edges counts the access edges
	// between them that were checked.
	SrcObjects int `json:"src_objects"`
	DstObjects int `json:"dst_objects"`
	Edges      int `json:"access_edges"`
	// Inconsistent is the verdict; High is the Section 5.4 rank of the
	// worst witnessing object pair; Pairs counts the inconsistent
	// object pairs between the two sites.
	Inconsistent bool `json:"inconsistent"`
	High         bool `json:"high"`
	Pairs        int  `json:"object_pairs"`
	// SrcRegion / DstRegion describe the witnessing owner-region pair
	// (present only for inconsistent answers).
	SrcRegion string `json:"src_region,omitempty"`
	DstRegion string `json:"dst_region,omitempty"`
	// Message is the one-line human rendering.
	Message string `json:"message"`
	// Throttled marks an answer computed under reduced precision (see
	// Stats.Throttled): the verdict may be an artifact of context
	// merging or ⊤ collapse rather than of the program.
	Throttled bool `json:"throttled,omitempty"`
}

// String renders the answer the way the CLI prints it.
func (q *PairAnswer) String() string {
	return q.Message
}

// QueryPairSource answers one pair query over CMinor sources without
// computing the full report: the front end and the analysis phases
// through access extraction run, then only the access edges between
// the two queried allocation sites are checked. srcSite and dstSite
// are "file:line" or "file:line:col" allocation-site positions.
func QueryPairSource(ctx context.Context, opts Options, sources map[string]string, srcSite, dstSite string) (*PairAnswer, error) {
	opts, err := opts.prepare()
	if err != nil {
		return nil, err
	}
	a := newAnalysis(opts)
	a.Sources = sources
	// The truncated pipeline never runs the post phase, so pre-seed the
	// report runPhases folds its metrics into.
	a.Report = &Report{}
	if _, err := runPhasesDemand(ctx, a); err != nil {
		return nil, err
	}
	return a.QueryPair(ctx, srcSite, dstSite)
}

// QueryPairSnapshot is QueryPairSource over a snapshot's pinned
// options and sources.
func QueryPairSnapshot(ctx context.Context, snap *Snapshot, srcSite, dstSite string) (*PairAnswer, error) {
	return QueryPairSource(ctx, snap.Options(), snap.Sources(), srcSite, dstSite)
}

// runPhasesDemand runs the truncated demand pipeline: the front end
// plus every analysis phase up to and including access-relation
// extraction. The pairs phase (the global fixpoint over every region
// pair and every σ edge) and the post phase (condensing and ranking
// the full report) are skipped — the query checks only the cone of
// the two sites it was asked about.
func runPhasesDemand(ctx context.Context, a *Analysis) (*Analysis, error) {
	phases := frontEndPhases()
	for _, p := range analysisPhases() {
		phases = append(phases, p)
		if p.Name() == PhaseAccess {
			break
		}
	}
	return runPhases(ctx, a, phases)
}

// QueryPair answers one pair query against an analysis that has at
// least reached the access phase — either a demand run
// (QueryPairSource) or a finished full analysis (the daemon's cached
// results). The verdict is computed twice: once by the direct edge
// check the explicit backend uses (checkEdge), and once by re-deriving
// every witnessing objectPair fact on a per-query Datalog cone
// restricted to the two sites' objects and owner regions. Divergence
// between the two is an internal error, surfaced rather than papered
// over.
func (a *Analysis) QueryPair(ctx context.Context, srcSite, dstSite string) (*PairAnswer, error) {
	if a.Ptr == nil {
		return nil, Errf(ErrInternal, "", "query: analysis has not reached the access phase")
	}
	_, sp := trace.StartSpan(ctx, "query.pair")
	srcObjs, err := a.allocObjectsAt(srcSite)
	if err != nil {
		return nil, err
	}
	dstObjs, err := a.allocObjectsAt(dstSite)
	if err != nil {
		return nil, err
	}
	srcSet := make(map[int]bool, len(srcObjs))
	for _, o := range srcObjs {
		srcSet[o] = true
	}
	dstSet := make(map[int]bool, len(dstObjs))
	for _, o := range dstObjs {
		dstSet[o] = true
	}
	var pairs []ObjectPair
	edges := 0
	for _, e := range a.AccessEdges {
		if !srcSet[e.Src] || !dstSet[e.Dst] {
			continue
		}
		edges++
		if p, ok := a.checkEdge(e); ok {
			pairs = append(pairs, p)
		}
	}
	sortPairs(pairs)
	if len(pairs) > 0 {
		// Cross-check: every witnessing pair must re-derive from its
		// Datalog cone (the same check Explain applies to warnings).
		ex := &Explainer{a: a, prov: a.solveRegionProvenance()}
		for _, p := range pairs {
			if err := ex.verifyPair(p); err != nil {
				return nil, err
			}
		}
	}
	ans := &PairAnswer{
		Schema:     QuerySchemaV1,
		Src:        srcSite,
		Dst:        dstSite,
		SrcObjects: len(srcObjs),
		DstObjects: len(dstObjs),
		Edges:      edges,
		Pairs:      len(pairs),
		Throttled:  a.throttled(),
	}
	if len(pairs) > 0 {
		ans.Inconsistent = true
		rep := pairs[0]
		for _, p := range pairs {
			if p.High {
				ans.High = true
				rep = p
				break
			}
		}
		ans.SrcRegion = a.regionDesc(rep.Evidence[0])
		ans.DstRegion = a.regionDesc(rep.Evidence[1])
		ans.Message = fmt.Sprintf(
			"objects allocated at %s may hold a dangling pointer to objects allocated at %s: owner region %s has no subregion order with %s (%d object pair(s))",
			srcSite, dstSite, ans.SrcRegion, ans.DstRegion, len(pairs))
	} else {
		ans.Message = fmt.Sprintf(
			"no inconsistent access from %s to %s (%d access edge(s) checked)",
			srcSite, dstSite, edges)
	}
	if sp != nil {
		sp.End(
			trace.Int("edges", edges),
			trace.Int("pairs", len(pairs)),
			trace.Bool("inconsistent", ans.Inconsistent))
	}
	return ans, nil
}

// throttled mirrors Stats.Throttled for analyses whose post phase
// never ran (demand queries have no populated report stats).
func (a *Analysis) throttled() bool {
	if a.Opts.ContextPolicy == PolicyOrigin {
		return true
	}
	if a.Numbering != nil && a.Numbering.Capped {
		return true
	}
	return a.Ptr != nil && a.Ptr.CappedVars() > 0
}

// allocObjectsAt resolves a "file:line" or "file:line:col" query
// string to the allocation objects (all context clones) at that
// position. An unparsable query is a config error; a position with no
// allocation site is a resolve error — the query named something the
// program does not allocate.
func (a *Analysis) allocObjectsAt(q string) ([]int, error) {
	file, line, col, err := parseSiteQuery(q)
	if err != nil {
		return nil, err
	}
	var out []int
	for id, o := range a.Ptr.Objects {
		if o.Kind != pointer.AllocObj || o.Site == nil || !o.Site.Pos.IsValid() {
			continue
		}
		p := o.Site.Pos
		if p.File != file || p.Line != line {
			continue
		}
		if col > 0 && p.Col != col {
			continue
		}
		out = append(out, id)
	}
	if len(out) == 0 {
		return nil, Errf(ErrResolve, q, "query: no allocation site at %s", q)
	}
	sort.Ints(out)
	return out, nil
}

// parseSiteQuery splits "file:line" or "file:line:col". The file part
// may itself contain colons; the numeric fields bind from the right.
func parseSiteQuery(q string) (file string, line, col int, err error) {
	parts := strings.Split(q, ":")
	if len(parts) >= 3 {
		if l, el := strconv.Atoi(parts[len(parts)-2]); el == nil {
			if c, ec := strconv.Atoi(parts[len(parts)-1]); ec == nil {
				return strings.Join(parts[:len(parts)-2], ":"), l, c, nil
			}
		}
	}
	if len(parts) >= 2 {
		if l, el := strconv.Atoi(parts[len(parts)-1]); el == nil {
			return strings.Join(parts[:len(parts)-1], ":"), l, 0, nil
		}
	}
	return "", 0, 0, Errf(ErrConfig, "", "query: want file:line or file:line:col, got %q", q)
}
