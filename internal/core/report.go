package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/pointer"
)

// Stats carries the quantitative columns of the paper's Figure 11 for
// one executable.
type Stats struct {
	Time     time.Duration
	R        int   // region instances
	H        int   // normal (region-allocated) object instances
	Sub      int   // subregion relation size
	Own      int   // ownership relation size
	Heap     int   // heap (access) relation size
	RPairs   int64 // region pairs with no subregion partial order
	OPairs   int   // inconsistent object pairs
	IPairs   int   // context-insensitive instruction pairs
	High     int   // high-ranked I-pairs
	Contexts uint64
	Funcs    int
	Instrs   int
	// Causes and HighCauses approximate the paper's "unique causes"
	// column: warnings clustered by the function containing the
	// holder's allocation site (the original paper clustered by
	// manual inspection).
	Causes     int
	HighCauses int
	// Phases is the pipeline cost breakdown: one entry per executed
	// phase, in execution order.
	Phases []PhaseStat
	// Precision-throttle visibility: a run that merged contexts
	// (CtxCapped), collapsed points-to sets to ⊤ (PtrCappedVars), or
	// ran the origin context policy is degraded relative to the full
	// cloning analysis, and the report must say so (no silent
	// degradation). Policy names the context policy that ran.
	Policy        string
	CtxCapped     bool
	PtrCappedVars int
}

// Throttled reports whether the run's precision was visibly reduced:
// context-cap merging, points-to-set collapse, or the origin context
// policy. Throttled runs carry a "precision" block in the report JSON
// and mark every warning.
func (s Stats) Throttled() bool {
	return s.CtxCapped || s.PtrCappedVars > 0 || s.Policy == PolicyOrigin
}

// PhaseStat is one pipeline phase's contribution to the run: wall
// time, cumulative allocation, and the sizes of the relations the
// phase produced.
type PhaseStat struct {
	Name       string
	Time       time.Duration
	AllocBytes int64
	Outputs    map[string]int64
}

// Warning is one reported inconsistency, condensed to an instruction
// pair and decorated for human inspection.
type Warning struct {
	IPair IPair
	// Where the holder and pointee were allocated.
	SrcPos, DstPos string
	// Owner region descriptions for the representative object pair.
	SrcRegion, DstRegion string
	// Message is a one-line summary.
	Message string
	// Cause clusters warnings that share a root cause: the function
	// containing the holder's allocation site.
	Cause string
	// Throttled marks a warning produced by a reduced-precision run
	// (see Stats.Throttled): the pair may be an artifact of context
	// merging or ⊤ collapse rather than of the program.
	Throttled bool
}

// High reports the Section 5.4 rank.
func (w Warning) High() bool { return w.IPair.High }

// Report is the analysis outcome.
type Report struct {
	Warnings []Warning // high-ranked first, then by site
	Stats    Stats
}

// HighWarnings returns only the high-ranked warnings.
func (r *Report) HighWarnings() []Warning {
	var out []Warning
	for _, w := range r.Warnings {
		if w.High() {
			out = append(out, w)
		}
	}
	return out
}

// String renders the report in the tool's output format.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "regionwiz: %d warning(s), %d high-ranked\n",
		len(r.Warnings), r.Stats.High)
	for i, w := range r.Warnings {
		rank := "    "
		if w.High() {
			rank = "HIGH"
		}
		fmt.Fprintf(&sb, "%3d [%s] %s\n", i+1, rank, w.Message)
	}
	s := r.Stats
	fmt.Fprintf(&sb, "stats: time=%v R=%d H=%d sub=%d own=%d heap=%d R-pair=%d O-pair=%d I-pair=%d high=%d contexts=%d\n",
		s.Time.Round(time.Millisecond), s.R, s.H, s.Sub, s.Own, s.Heap, s.RPairs, s.OPairs, s.IPairs, s.High, s.Contexts)
	return sb.String()
}

// postProcess condenses object pairs, ranks them, and assembles the
// report (Section 5.4). Stats.Time and Stats.Phases are filled in by
// runPhases once the pipeline completes.
func (a *Analysis) postProcess(pairs []ObjectPair) *Report {
	ipairs := a.condense(pairs)
	warnings := make([]Warning, 0, len(ipairs))
	high := 0
	causes := map[string]bool{}
	highCauses := map[string]bool{}
	for _, ip := range ipairs {
		if ip.High {
			high++
		}
		w := a.describe(ip)
		causes[w.Cause] = true
		if ip.High {
			highCauses[w.Cause] = true
		}
		warnings = append(warnings, w)
	}
	// Deterministic total order: high-ranked warnings first; within a
	// rank, by holder (source) allocation site string — file:line —
	// then pointee site, then the condensed pair key (source
	// instruction ID, field offset, destination instruction ID).
	// Repeated runs over the same input therefore produce
	// byte-identical reports (asserted by TestReportDeterminism).
	sort.SliceStable(warnings, func(i, j int) bool {
		wi, wj := warnings[i], warnings[j]
		if wi.High() != wj.High() {
			return wi.High()
		}
		if wi.SrcPos != wj.SrcPos {
			return wi.SrcPos < wj.SrcPos
		}
		if wi.DstPos != wj.DstPos {
			return wi.DstPos < wj.DstPos
		}
		ki, kj := wi.IPair, wj.IPair
		if ki.SrcSite != kj.SrcSite {
			return ki.SrcSite < kj.SrcSite
		}
		if ki.Off != kj.Off {
			return ki.Off < kj.Off
		}
		return ki.DstSite < kj.DstSite
	})
	reach := a.Graph.ReachableFuncs()
	instrs := 0
	for _, fn := range reach {
		instrs += len(a.Prog.Funcs[fn].Instrs)
	}
	stats := Stats{
		R:             a.RegionCount(),
		H:             a.ObjectCount(),
		Sub:           a.subEdges,
		Own:           a.ownEdges,
		Heap:          len(a.AccessEdges),
		RPairs:        a.RPairCount(),
		OPairs:        len(pairs),
		IPairs:        len(ipairs),
		High:          high,
		Contexts:      a.Numbering.TotalContexts(),
		Funcs:         len(reach),
		Instrs:        instrs,
		Causes:        len(causes),
		HighCauses:    len(highCauses),
		Policy:        a.Opts.ContextPolicy,
		CtxCapped:     a.Numbering.Capped,
		PtrCappedVars: a.Ptr.CappedVars(),
	}
	if stats.Throttled() {
		for i := range warnings {
			warnings[i].Throttled = true
		}
	}
	return &Report{Warnings: warnings, Stats: stats}
}

// describe renders one I-pair as a Warning.
func (a *Analysis) describe(ip IPair) Warning {
	w := Warning{IPair: ip}
	w.SrcPos = a.objPos(ip.Example.Src)
	w.DstPos = a.objPos(ip.Example.Dst)
	w.Cause = a.causeOf(ip.Example.Src)
	w.SrcRegion = a.regionDesc(ip.Example.Evidence[0])
	w.DstRegion = a.regionDesc(ip.Example.Evidence[1])
	w.Message = fmt.Sprintf(
		"object allocated at %s may hold a dangling pointer (offset %d) to object allocated at %s: owner region %s has no subregion order with %s",
		w.SrcPos, ip.Off, w.DstPos, w.SrcRegion, w.DstRegion)
	return w
}

// causeOf names the function containing an object's allocation site
// (the cause-clustering key).
func (a *Analysis) causeOf(obj int) string {
	o := a.Ptr.Objects[obj]
	if o.Kind == pointer.AllocObj && o.Site != nil && o.Site.Func != nil {
		return o.Site.Func.Name
	}
	if o.Kind == pointer.ParamObj {
		return o.Fn
	}
	return "<unknown>"
}

func (a *Analysis) objPos(obj int) string {
	o := a.Ptr.Objects[obj]
	switch o.Kind {
	case pointer.AllocObj:
		if o.Site != nil && o.Site.Pos.IsValid() {
			return fmt.Sprintf("%s (%s)", o.Site.Pos, o.Fn)
		}
		return o.Fn
	case pointer.VarStorageObj:
		return fmt.Sprintf("&%s", o.Var.Name)
	case pointer.ParamObj:
		return fmt.Sprintf("param %s of %s", o.Var.Name, o.Fn)
	case pointer.StringObj:
		if o.Str < len(a.Prog.Strings) {
			return fmt.Sprintf("%q", a.Prog.Strings[o.Str].Value)
		}
		return "string"
	case pointer.TopObj:
		// The tainted ⊤ a PtsLimit overflow collapses to: it has no
		// allocation site.
		return "<top>"
	}
	return "?"
}

func (a *Analysis) regionDesc(idx int) string {
	if idx == RootRegion {
		return "<root>"
	}
	r := a.Regions[idx]
	if r.Site != nil && r.Site.Pos.IsValid() {
		return fmt.Sprintf("region@%s#%d", r.Site.Pos, r.Ctx)
	}
	if r.Obj >= 0 {
		if o := a.Ptr.Objects[r.Obj]; o.Kind == pointer.ParamObj {
			return fmt.Sprintf("param-region %s of %s", o.Var.Name, o.Fn)
		}
	}
	return fmt.Sprintf("region#%d", idx)
}
