package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/workloads"
)

// corpusSources returns a realistic multi-file program from the
// workload generators.
func corpusSources(t testing.TB) map[string]string {
	t.Helper()
	for _, spec := range workloads.SmallCorpus() {
		if spec.Name != "subversion" {
			continue
		}
		pkg := workloads.Generate(spec, 2008)
		return pkg.SourcesFor(pkg.Exes[0])
	}
	t.Fatal("no subversion spec in the small corpus")
	return nil
}

// normalizeReport zeroes the run-dependent cost fields (wall times,
// allocation deltas) so reports can be compared byte-for-byte; every
// analysis fact — warnings, relation sizes, phase outputs — is kept.
func normalizeReport(r *Report) {
	r.Stats.Time = 0
	for i := range r.Stats.Phases {
		r.Stats.Phases[i].Time = 0
		r.Stats.Phases[i].AllocBytes = 0
	}
}

func reportBytes(t testing.TB, r *Report) []byte {
	t.Helper()
	normalizeReport(r)
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return data
}

// TestReportDeterminism runs the same analysis twice and requires the
// JSON reports to match byte-for-byte once timing fields are zeroed —
// the regression net for the documented warning total order and for
// any map-iteration nondeterminism anywhere in the pipeline.
func TestReportDeterminism(t *testing.T) {
	sources := corpusSources(t)
	var runs [][]byte
	for i := 0; i < 2; i++ {
		a, err := AnalyzeSource(Options{}, sources)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if len(a.Report.Warnings) == 0 {
			t.Fatal("workload produced no warnings; the test needs a nontrivial report")
		}
		runs = append(runs, reportBytes(t, a.Report))
	}
	if !bytes.Equal(runs[0], runs[1]) {
		t.Errorf("reports differ between identical runs:\n--- run 0 ---\n%s\n--- run 1 ---\n%s",
			runs[0], runs[1])
	}
}

// TestWarningTotalOrder checks the documented sort: rank first, then
// holder site, then pointee site, then pair key.
func TestWarningTotalOrder(t *testing.T) {
	a, err := AnalyzeSource(Options{}, corpusSources(t))
	if err != nil {
		t.Fatal(err)
	}
	ws := a.Report.Warnings
	for i := 1; i < len(ws); i++ {
		p, q := ws[i-1], ws[i]
		if !p.High() && q.High() {
			t.Fatalf("warning %d: low-ranked before high-ranked", i)
		}
		if p.High() != q.High() {
			continue
		}
		if p.SrcPos > q.SrcPos {
			t.Fatalf("warning %d: src %q after %q within one rank", i, p.SrcPos, q.SrcPos)
		}
		if p.SrcPos == q.SrcPos && p.DstPos > q.DstPos {
			t.Fatalf("warning %d: dst %q after %q", i, p.DstPos, q.DstPos)
		}
	}
}

// TestPhaseStatsInReport requires every analysis phase to be named
// and timed in the report, in pipeline order, and serialized in the
// JSON output.
func TestPhaseStatsInReport(t *testing.T) {
	a, err := AnalyzeSource(Options{}, corpusSources(t))
	if err != nil {
		t.Fatal(err)
	}
	want := PhaseNames()
	got := a.Report.Stats.Phases
	if len(got) != len(want) {
		t.Fatalf("report has %d phases, want %d (%v)", len(got), len(want), want)
	}
	for i, ps := range got {
		if ps.Name != want[i] {
			t.Errorf("phase[%d] = %q, want %q", i, ps.Name, want[i])
		}
	}
	// Key relations are attributed to their phases.
	find := func(name string) PhaseStat {
		for _, ps := range got {
			if ps.Name == name {
				return ps
			}
		}
		t.Fatalf("phase %q missing", name)
		return PhaseStat{}
	}
	if find(PhasePointer).Outputs["ptr_objects"] == 0 {
		t.Error("pointer phase reports no ptr_objects")
	}
	if find(PhaseRegions).Outputs["regions"] == 0 {
		t.Error("regions phase reports no regions")
	}
	if find(PhaseContexts).Outputs["contexts"] == 0 {
		t.Error("contexts phase reports no contexts")
	}
	// And they appear in the JSON serialization.
	data, err := json.Marshal(a.Report)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Stats struct {
			Phases []struct {
				Name    string           `json:"name"`
				Outputs map[string]int64 `json:"outputs"`
			} `json:"phases"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Stats.Phases) != len(want) {
		t.Fatalf("JSON has %d phases, want %d", len(decoded.Stats.Phases), len(want))
	}
}

// TestAnalyzeCancellation cancels mid-pipeline via an Observer and
// expects context.Canceled with no report.
func TestAnalyzeCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	opts := Options{
		Observer: pipeline.ObserverFuncs[*Analysis]{
			End: func(name string, _ *Analysis, _ pipeline.PhaseMetrics) {
				if name == PhasePointer {
					cancel()
				}
			},
		},
	}
	a, err := AnalyzeSourceContext(ctx, opts, corpusSources(t))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if a != nil {
		t.Error("cancelled analysis should return nil")
	}
}

// TestAnalyzeExpiredDeadline runs against an already-expired context.
func TestAnalyzeExpiredDeadline(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := AnalyzeSourceContext(ctx, Options{}, map[string]string{
		"main.c": "int main() { return 0; }",
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestObserverThroughOptions checks the Observer wiring end to end:
// callbacks arrive in pipeline order with start/end pairing.
func TestObserverThroughOptions(t *testing.T) {
	var events []string
	opts := Options{
		Observer: pipeline.ObserverFuncs[*Analysis]{
			Start: func(name string, _ *Analysis) { events = append(events, "start:"+name) },
			End:   func(name string, _ *Analysis, _ pipeline.PhaseMetrics) { events = append(events, "end:"+name) },
		},
	}
	_, err := AnalyzeSource(opts, map[string]string{
		"main.c": "int main() { return 0; }",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := PhaseNames()
	if len(events) != 2*len(want) {
		t.Fatalf("%d observer events, want %d: %v", len(events), 2*len(want), events)
	}
	for i, name := range want {
		if events[2*i] != "start:"+name || events[2*i+1] != "end:"+name {
			t.Fatalf("events around phase %q wrong: %v", name, events[2*i:2*i+2])
		}
	}
}

// TestBDDBackendMetrics checks that the BDD backend surfaces its
// node/tuple counts through the pairs phase.
func TestBDDBackendMetrics(t *testing.T) {
	a, err := AnalyzeSource(Options{Backend: BDDBackend}, corpusSources(t))
	if err != nil {
		t.Fatal(err)
	}
	var pairs *PhaseStat
	for i := range a.Report.Stats.Phases {
		if a.Report.Stats.Phases[i].Name == PhasePairs {
			pairs = &a.Report.Stats.Phases[i]
		}
	}
	if pairs == nil {
		t.Fatal("no pairs phase in report")
	}
	if pairs.Outputs["bdd_nodes"] == 0 || pairs.Outputs["datalog_tuples"] == 0 {
		t.Errorf("pairs outputs = %v, want bdd_nodes and datalog_tuples", pairs.Outputs)
	}
}
