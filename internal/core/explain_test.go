package core

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

// explainSource produces two warnings (sibling regions with a
// cross-link in each direction), so tests exercise multi-warning
// explanation plus the high-rank path.
const explainSource = rcPrelude + `
struct obj { struct obj *p; };
int main(void) {
    region_t *r1; region_t *r2;
    struct obj *o1; struct obj *o2;
    r1 = rnew(NULL); r2 = rnew(NULL);
    o1 = ralloc(r1); o2 = ralloc(r2);
    o2->p = o1;
    o1->p = o2;
    return 0;
}`

// checkTreeShape asserts the structural contract CI's explain-smoke
// also checks: every path bottoms out in base facts, and every base
// leaf carries a non-empty source position.
func checkTreeShape(t *testing.T, n *ExplainNode) {
	t.Helper()
	switch n.Kind {
	case "base":
		if len(n.Children) != 0 {
			t.Errorf("base fact %s has children", n.Fact)
		}
		if n.Pos == "" {
			t.Errorf("base fact %s has no source position", n.Fact)
		}
	case "derived":
		if len(n.Children) == 0 {
			t.Errorf("derived fact %s has no premises", n.Fact)
		}
		if n.Rule == "" {
			t.Errorf("derived fact %s has no rule text", n.Fact)
		}
	case "negated":
		// A negated premise justifies an absence; its children (what
		// DOES hold) may legitimately be empty only if the region has
		// no ancestors at all, which cannot happen (leq is reflexive).
		if len(n.Children) == 0 {
			t.Errorf("negated fact %s has no justification", n.Fact)
		}
	default:
		t.Errorf("unknown node kind %q on %s", n.Kind, n.Fact)
	}
	for _, c := range n.Children {
		checkTreeShape(t, c)
	}
}

func TestExplainRecordedTree(t *testing.T) {
	a := runOpts(t, Options{Provenance: true}, explainSource)
	if a.prov == nil {
		t.Fatalf("explicit backend with Provenance did not record witnesses")
	}
	ex, err := a.Explainer(context.Background())
	if err != nil {
		t.Fatalf("explainer: %v", err)
	}
	if ex.Replayed {
		t.Errorf("recorded path reported Replayed")
	}
	exps, err := ex.ExplainAll(context.Background())
	if err != nil {
		t.Fatalf("explain all: %v", err)
	}
	if len(exps) != len(a.Report.Warnings) || len(exps) == 0 {
		t.Fatalf("explained %d of %d warnings", len(exps), len(a.Report.Warnings))
	}
	for i, e := range exps {
		if e.Warning != i+1 {
			t.Errorf("explanation %d has warning id %d", i, e.Warning)
		}
		if e.Schema != ExplainSchemaV1 {
			t.Errorf("schema = %q", e.Schema)
		}
		if e.Message != a.Report.Warnings[i].Message {
			t.Errorf("message mismatch for warning %d", i+1)
		}
		checkTreeShape(t, e.Tree)
		if got := e.String(); got == "" || !bytes.Contains([]byte(got), []byte("objectPair")) {
			t.Errorf("human rendering missing objectPair root:\n%s", got)
		}
	}
	// Out-of-range ids are config errors, not panics.
	if _, err := ex.Explain(context.Background(), 0); err == nil {
		t.Errorf("Explain(0) succeeded")
	}
	if _, err := ex.Explain(context.Background(), len(a.Report.Warnings)+1); err == nil {
		t.Errorf("Explain(out of range) succeeded")
	}
}

// TestExplainBackendParity pins the tentpole's determinism contract:
// the BDD backend's replayed explanations are byte-identical to the
// explicit backend's recorded ones.
func TestExplainBackendParity(t *testing.T) {
	for i, src := range crossCheckSources {
		t.Run(fmt.Sprintf("src%d", i), func(t *testing.T) {
			exp := runOpts(t, Options{Provenance: true}, src)
			bdd := runOpts(t, Options{Solver: SolverOptions{Backend: BDDBackend}}, src)
			exExp, err := exp.Explainer(context.Background())
			if err != nil {
				t.Fatalf("explicit explainer: %v", err)
			}
			exBDD, err := bdd.Explainer(context.Background())
			if err != nil {
				t.Fatalf("bdd explainer: %v", err)
			}
			if exExp.Replayed {
				t.Errorf("explicit+Provenance path replayed")
			}
			if !exBDD.Replayed {
				t.Errorf("bdd path did not replay")
			}
			a, err := exExp.ExplainAll(context.Background())
			if err != nil {
				t.Fatalf("explicit explain: %v", err)
			}
			b, err := exBDD.ExplainAll(context.Background())
			if err != nil {
				t.Fatalf("bdd explain (replay verdict): %v", err)
			}
			ja, _ := MarshalExplanations(a)
			jb, _ := MarshalExplanations(b)
			if !bytes.Equal(ja, jb) {
				t.Errorf("explanations differ between backends:\n--- explicit ---\n%s\n--- bdd ---\n%s", ja, jb)
			}
		})
	}
}

// TestExplainWorkerDeterminism requires the same explanation bytes for
// every solver worker count, on both backends, including concurrent
// Explain calls on a shared Explainer (run under -race in CI).
func TestExplainWorkerDeterminism(t *testing.T) {
	for _, backend := range []Backend{ExplicitBackend, BDDBackend} {
		var want []byte
		for _, workers := range []int{1, 2, 4} {
			a := runOpts(t, Options{
				Provenance: true,
				Solver:     SolverOptions{Backend: backend, Workers: workers},
			}, explainSource)
			ex, err := a.Explainer(context.Background())
			if err != nil {
				t.Fatalf("backend=%d workers=%d: %v", backend, workers, err)
			}
			// Concurrent explains must agree with the sequential pass.
			n := len(a.Report.Warnings)
			results := make([]*Explanation, n)
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					e, err := ex.Explain(context.Background(), i+1)
					if err != nil {
						t.Errorf("concurrent explain %d: %v", i+1, err)
						return
					}
					results[i] = e
				}(i)
			}
			wg.Wait()
			got, _ := MarshalExplanations(results)
			if want == nil {
				want = got
				continue
			}
			if !bytes.Equal(got, want) {
				t.Errorf("backend=%d workers=%d explanation bytes differ from workers=1",
					backend, workers)
			}
		}
	}
}

// TestReportUnchangedByProvenance pins the fingerprint-exclusion
// contract: provenance on/off yields byte-identical reports (timing
// and the per-phase cost breakdown excluded, as in the oracle's
// canonical form) and identical option fingerprints.
func TestReportUnchangedByProvenance(t *testing.T) {
	canonical := func(a *Analysis) []byte {
		r := *a.Report
		r.Stats.Time = 0
		r.Stats.Phases = nil
		j, err := json.Marshal(&r)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return j
	}
	for _, backend := range []Backend{ExplicitBackend, BDDBackend} {
		off := runOpts(t, Options{Solver: SolverOptions{Backend: backend}}, explainSource)
		on := runOpts(t, Options{Provenance: true, Solver: SolverOptions{Backend: backend}}, explainSource)
		if a, b := canonical(off), canonical(on); !bytes.Equal(a, b) {
			t.Errorf("backend=%d: report changed with provenance on:\n--- off ---\n%s\n--- on ---\n%s", backend, a, b)
		}
		if a, b := off.Opts.Fingerprint(), on.Opts.Fingerprint(); a != b {
			t.Errorf("backend=%d: fingerprint changed with provenance on", backend)
		}
	}
}
