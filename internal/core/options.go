package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"

	"repro/internal/bdd"
)

// SolverOptions groups every knob that controls *how* an analysis is
// solved, as opposed to *what* it computes: worker count, fixpoint
// budget, pair-computation backend, and BDD kernel sizing. It lives at
// Options.Solver; the old top-level spellings (Options.Backend,
// Options.BDD) remain as deprecated aliases that Normalize folds in,
// so existing callers keep working and fingerprint identically.
type SolverOptions struct {
	// Workers bounds intra-analysis parallelism: the front end shards
	// per file, the pointer fixpoint schedules call-graph SCCs
	// leaf-to-root over this many workers, and the pairs phase runs
	// independent work concurrently. 0 and 1 both mean the sequential
	// solve. Reports are byte-identical for every worker count (the
	// determinism tests and the oracle's workers matrix pin this), so
	// Workers is excluded from Fingerprint like Observer is.
	Workers int
	// MaxRounds bounds the pointer fixpoint's iteration count
	// (0 = unlimited). A cutoff changes results, so a nonzero value is
	// fingerprinted.
	MaxRounds int
	// PtsLimit caps each variable's points-to set in the pointer
	// solve (0 = unlimited). A set about to exceed the cap collapses
	// to a tainted ⊤ object — a documented-unsound throttle
	// (origin-go-tools' ptsLimit): loads through ⊤ yield ⊤, stores
	// through ⊤ are dropped. Capped runs surface a ptr_capped_vars
	// phase output, a report-level precision block, and per-warning
	// "throttled" annotations; a nonzero cap changes results and is
	// fingerprinted. The cap forces the sequential pointer solve for
	// determinism (the collapse is schedule-sensitive).
	PtsLimit int
	// Backend selects the pair-computation engine.
	Backend Backend
	// BDD sizes the BDD kernel's node table and operation caches when
	// the BDD backend runs (the zero value selects kernel defaults).
	// Sizing changes time and memory, never results, so it is excluded
	// from Fingerprint.
	BDD bdd.Config
}

// Validate checks the invariants an Options value must satisfy before
// an analysis can run: KCFA may not be negative, every region-creation
// spec's OutArg must be -1 (return value) or an argument index, and an
// analysis needs at least one root — a non-empty Entry or a non-nil
// Entries slice (an empty non-nil slice means "every defined
// function", the open-program mode). Analyze* validate the normalized
// options at the boundary, so zero-value Options keep working there;
// calling Validate directly on a raw zero value reports the missing
// entry.
func (o Options) Validate() error {
	if o.KCFA < 0 {
		return Errf(ErrConfig, "", "options: negative KCFA %d", o.KCFA)
	}
	if o.Solver.Workers < 0 {
		return Errf(ErrConfig, "", "options: negative Solver.Workers %d", o.Solver.Workers)
	}
	if o.Solver.MaxRounds < 0 {
		return Errf(ErrConfig, "", "options: negative Solver.MaxRounds %d", o.Solver.MaxRounds)
	}
	if o.Solver.PtsLimit < 0 {
		return Errf(ErrConfig, "", "options: negative Solver.PtsLimit %d", o.Solver.PtsLimit)
	}
	switch o.ContextPolicy {
	case "", PolicyClone, PolicyOrigin:
		if o.KCFA > 0 && o.ContextPolicy != "" {
			return Errf(ErrConfig, "", "options: ContextPolicy %q conflicts with KCFA=%d (k-CFA call strings are the %q policy)", o.ContextPolicy, o.KCFA, PolicyKCFA)
		}
	case PolicyKCFA:
		if o.KCFA == 0 {
			return Errf(ErrConfig, "", "options: ContextPolicy %q needs KCFA > 0 to set the call-string depth", o.ContextPolicy)
		}
	default:
		return Errf(ErrConfig, "", "options: unknown ContextPolicy %q (want clone, kcfa, or origin)", o.ContextPolicy)
	}
	if o.Entry == "" && o.Entries == nil {
		return Errf(ErrConfig, "", "options: empty Entry with nil Entries: no analysis root")
	}
	if o.API != nil {
		names := make([]string, 0, len(o.API.Create))
		for name := range o.API.Create {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if spec := o.API.Create[name]; spec.OutArg < -1 {
				return Errf(ErrConfig, "", "options: create spec %q: OutArg %d (want -1 for return value, or an argument index)", name, spec.OutArg)
			}
		}
	}
	return nil
}

// Normalize returns the canonical form of the options: defaults
// filled (Entry "main", merged APR+RC API, context cap 4096, heap
// cloning on), Entry cleared when Entries is set (it is ignored then),
// and Entries/ExtraAllocFns sorted and deduplicated. Two Options
// values that configure the same analysis normalize to the same form,
// which is what Fingerprint hashes — the options half of the analysis
// service's cache key. Normalize fills, it does not reject; pair it
// with Validate.
func (o Options) Normalize() Options {
	if o.Entries != nil {
		o.Entry = ""
		o.Entries = sortedUnique(o.Entries)
	} else if o.Entry == "" {
		o.Entry = "main"
	}
	if o.API == nil {
		o.API = MergeAPIs(APRPools(), RCRegions())
	}
	if o.ContextCap == 0 {
		o.ContextCap = 4096
	}
	if o.HeapCloning == nil {
		t := true
		o.HeapCloning = &t
	}
	// Fold the deprecated top-level solver spellings into Solver, then
	// mirror back so both spellings read the same afterwards. The new
	// field wins when both are set (ExplicitBackend and the zero
	// bdd.Config are "unset" — they are also the defaults, so the
	// resolution is lossless).
	if o.Solver.Backend == ExplicitBackend {
		o.Solver.Backend = o.Backend
	}
	o.Backend = o.Solver.Backend
	if o.Solver.BDD == (bdd.Config{}) {
		o.Solver.BDD = o.BDD
	}
	o.BDD = o.Solver.BDD
	if o.Solver.MaxRounds == 0 {
		o.Solver.MaxRounds = o.MaxRounds
	}
	o.MaxRounds = o.Solver.MaxRounds
	if o.ContextPolicy == "" {
		if o.KCFA > 0 {
			o.ContextPolicy = PolicyKCFA
		} else {
			o.ContextPolicy = PolicyClone
		}
	}
	o.ExtraAllocFns = sortedUnique(o.ExtraAllocFns)
	return o
}

// AliasConflicts rejects a deprecated top-level solver alias
// (Backend, BDD, MaxRounds) set to a value that disagrees with its
// Solver.* counterpart. Normalize alone would silently let the new
// spelling win; at the Analyze* boundary (and in the analysis service)
// a disagreement is a config error instead. Call it on the raw options
// — after Normalize the two spellings always mirror, erasing the
// conflict.
func (o Options) AliasConflicts() error {
	if o.Backend != ExplicitBackend && o.Solver.Backend != ExplicitBackend && o.Backend != o.Solver.Backend {
		return Errf(ErrConfig, "", "options: deprecated Backend alias (%d) conflicts with Solver.Backend (%d); set one", o.Backend, o.Solver.Backend)
	}
	if o.BDD != (bdd.Config{}) && o.Solver.BDD != (bdd.Config{}) && o.BDD != o.Solver.BDD {
		return Errf(ErrConfig, "", "options: deprecated BDD alias (%+v) conflicts with Solver.BDD (%+v); set one", o.BDD, o.Solver.BDD)
	}
	if o.MaxRounds != 0 && o.Solver.MaxRounds != 0 && o.MaxRounds != o.Solver.MaxRounds {
		return Errf(ErrConfig, "", "options: deprecated MaxRounds alias (%d) conflicts with Solver.MaxRounds (%d); set one", o.MaxRounds, o.Solver.MaxRounds)
	}
	return nil
}

// sortedUnique sorts and deduplicates without mutating the input,
// preserving nil-ness (nil and empty Entries mean different things).
func sortedUnique(in []string) []string {
	if in == nil {
		return nil
	}
	out := make([]string, 0, len(in))
	seen := make(map[string]bool, len(in))
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// Fingerprint returns a stable hex digest of the normalized options —
// every field that can change an analysis result (entry roots, API
// specs, context configuration, backend, refinements, extern models).
// Observer is excluded: it watches a run but cannot alter it. BDD is
// excluded for the same reason: kernel sizing changes time and memory,
// never results. Provenance is excluded too: witness recording feeds
// Explain but never the report, so a provenance-on run may answer for
// a cached provenance-off result and vice versa. Together with
// per-file source digests this keys the analysis service's result
// cache.
func (o Options) Fingerprint() string {
	o = o.Normalize()
	h := sha256.New()
	fmt.Fprintf(h, "entry=%q\n", o.Entry)
	if o.Entries == nil {
		io.WriteString(h, "entries=nil\n")
	} else {
		fmt.Fprintf(h, "entries=%q\n", o.Entries)
	}
	fmt.Fprintf(h, "cap=%d cloning=%t backend=%d kcfa=%d refine=%t\n",
		o.ContextCap, *o.HeapCloning, o.Solver.Backend, o.KCFA, o.DefUseRefinement)
	fmt.Fprintf(h, "extra_alloc=%q\n", o.ExtraAllocFns)
	// A fixpoint cutoff changes results; 0 (unlimited, the default) is
	// not written so pre-SolverOptions digests stay valid. Workers and
	// BDD sizing are deliberately absent — neither can change results.
	if o.Solver.MaxRounds != 0 {
		fmt.Fprintf(h, "max_rounds=%d\n", o.Solver.MaxRounds)
	}
	// Same back-compat shape for the newer throttles: written only
	// when non-default, so existing digests stay valid. Clone and
	// kcfa policies are fully determined by the KCFA field above;
	// only origin carries new information.
	if o.Solver.PtsLimit != 0 {
		fmt.Fprintf(h, "pts_limit=%d\n", o.Solver.PtsLimit)
	}
	if o.ContextPolicy == PolicyOrigin {
		fmt.Fprintf(h, "policy=%s\n", o.ContextPolicy)
	}
	if o.ImplicitSpecs == nil {
		io.WriteString(h, "implicit=default\n")
	} else {
		specs := make([]string, 0, len(o.ImplicitSpecs))
		for _, s := range o.ImplicitSpecs {
			specs = append(specs, fmt.Sprintf("%s:%d", s.Fn, s.EntryArg))
		}
		sort.Strings(specs)
		fmt.Fprintf(h, "implicit=%q\n", specs)
	}
	hashAPI(h, o.API)
	return hex.EncodeToString(h.Sum(nil))
}

// hashAPI writes a canonical rendering of a region API into the hash.
func hashAPI(w io.Writer, api *RegionAPI) {
	fmt.Fprintf(w, "api=%q\n", api.Name)
	names := make([]string, 0, len(api.Create))
	for name := range api.Create {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		spec := api.Create[name]
		fmt.Fprintf(w, "create %s parent=%d out=%d\n", name, spec.ParentArg, spec.OutArg)
	}
	names = names[:0]
	for name := range api.Alloc {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "alloc %s region=%d\n", name, api.Alloc[name].RegionArg)
	}
	names = names[:0]
	for name := range api.Delete {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "delete %s\n", name)
	}
}
