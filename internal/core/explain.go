package core

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/datalog"
	"repro/internal/ir"
	"repro/internal/trace"
)

// ExplainSchemaV1 identifies the explanation JSON encoding. Consumers
// should check it before decoding; additive changes keep the v1 name,
// incompatible ones bump it.
const ExplainSchemaV1 = "regionwiz/explain/v1"

// Explanation is the why-provenance of one warning: the derivation
// tree from the warning's objectPair fact down to base facts with
// source positions. Explanations are deterministic — the same warning
// produces the same bytes run to run, for every worker count, and on
// both solver backends (the recorded and replayed paths build
// identical trees) — so they deliberately carry no timing, backend, or
// replay accounting.
type Explanation struct {
	Schema string `json:"schema"`
	// Warning is the 1-based index of the warning in the report's
	// deterministic order (the number the CLI prints).
	Warning int          `json:"warning"`
	High    bool         `json:"high"`
	Message string       `json:"message"`
	Tree    *ExplainNode `json:"tree"`
}

// ExplainNode is one node of a derivation tree. Kind is "derived" (a
// rule fired; Rule holds its text, Children its ground premises),
// "base" (a loaded fact; Pos holds the source position it came from),
// or "negated" (a stratified-negation premise; Children justify the
// absence by deriving everything the negated relation does hold for
// the bound arguments). Children are in rule-premise order for derived
// nodes and value-sorted for negated nodes.
type ExplainNode struct {
	Kind     string         `json:"kind"`
	Fact     string         `json:"fact"`
	Rule     string         `json:"rule,omitempty"`
	Pos      string         `json:"pos,omitempty"`
	Note     string         `json:"note,omitempty"`
	Children []*ExplainNode `json:"children,omitempty"`
}

// ruleText maps a rule's Name() to the paper's full Datalog rendering
// (Section 5.3.2) — the rule text explanation nodes carry.
var ruleText = map[string]string{
	"leq:-region":                           "leq(x,x) :- region(x).",
	"leq:-parent":                           "leq(x,y) :- parent(x,y).",
	"leq:-leq,parent":                       "leq(x,z) :- leq(x,y), parent(y,z).",
	"regionPair:-region,region,!leq":        "regionPair(x,y) :- region(x), region(y), !leq(x,y).",
	"objectPair:-regionPair,own,own,access": "objectPair(o1,n,o2) :- regionPair(x,y), own(x,o1), own(y,o2), access(o1,n,o2).",
}

// regionLeqRules builds stratum 1, the subregion closure. The same
// values drive the BDD solve, the provenance recorder, and the replay
// engine, so all three derive identical tuples.
func regionLeqRules(rr regionRels) []*datalog.Rule {
	return []*datalog.Rule{
		datalog.NewRule(datalog.T(rr.leq, "x", "x"), datalog.T(rr.region, "x")),
		datalog.NewRule(datalog.T(rr.leq, "x", "y"), datalog.T(rr.parent, "x", "y")),
		datalog.NewRule(datalog.T(rr.leq, "x", "z"), datalog.T(rr.leq, "x", "y"), datalog.T(rr.parent, "y", "z")),
	}
}

// regionPairRules builds stratum 2, the stratified complement.
func regionPairRules(rr regionRels) []*datalog.Rule {
	return []*datalog.Rule{
		datalog.NewRule(datalog.T(rr.regionPair, "x", "y"),
			datalog.T(rr.region, "x"), datalog.T(rr.region, "y"), datalog.N(rr.leq, "x", "y")),
	}
}

// objectPairRule builds stratum 3, the verification join.
func objectPairRule(regionPair *datalog.Relation, or objectRels) *datalog.Rule {
	return datalog.NewRule(datalog.T(or.objectPair, "o1", "n", "o2"),
		datalog.T(regionPair, "x", "y"),
		datalog.T(or.own, "x", "o1"),
		datalog.T(or.own, "y", "o2"),
		datalog.T(or.access, "o1", "n", "o2"))
}

// provRecord is the provenance recorder's output: the region strata
// solved on the explicit tuple engine with per-tuple witnesses. It is
// captured during the pairs phase when Options.Provenance is set on an
// explicit-backend run, and reused verbatim by every Explain call.
type provRecord struct {
	program *datalog.Program
	engine  *datalog.Explicit
	rels    regionRels
}

// recordProvenance solves the region strata on the witness-recording
// explicit engine. It runs after the pair computation and writes only
// a.prov — the pairs, the report, and every phase metric are untouched,
// which is what keeps reports byte-identical with provenance on or off.
func (a *Analysis) recordProvenance(ctx context.Context) {
	_, sp := trace.StartSpan(ctx, "explain.record")
	a.prov = a.solveRegionProvenance()
	if sp != nil {
		sp.End(
			trace.Int("leq_tuples", a.prov.engine.Count(a.prov.rels.leq)),
			trace.Int("region_pair_tuples", a.prov.engine.Count(a.prov.rels.regionPair)))
	}
}

// solveRegionProvenance builds and solves the region strata on a fresh
// explicit engine. Region and parent facts are loaded in full — the
// leq stratum's witnesses depend on evaluation order, so recorded and
// replayed engines must start from identical facts to produce
// identical trees (TestExplainBackendParity pins this).
func (a *Analysis) solveRegionProvenance() *provRecord {
	p := datalog.NewProgram()
	rr := a.declareRegionRels(p)
	e := datalog.NewExplicit(p)
	for i := range a.Regions {
		e.Add(rr.region, uint64(i))
		if i != RootRegion {
			e.Add(rr.parent, uint64(i), uint64(a.Regions[i].Parent))
		}
	}
	e.SolveSemiNaive(regionLeqRules(rr), 0)
	e.Solve(regionPairRules(rr), 0)
	return &provRecord{program: p, engine: e, rels: rr}
}

// Explainer answers why-provenance queries against one finished
// analysis. Build one with Analysis.Explainer and reuse it across
// warnings: the region strata are solved once (or taken from the pairs
// phase's recorder) and only the per-warning object-level cone is
// derived per query. An Explainer is read-only over the analysis and
// safe for concurrent Explain calls.
type Explainer struct {
	a    *Analysis
	prov *provRecord
	// Replayed reports that the region strata were re-derived on
	// demand (the BDD-backend / cached-result path) rather than taken
	// from the pairs phase's recorder. Accounting only: the resulting
	// explanations are byte-identical either way.
	Replayed bool
}

// Explainer builds the explanation engine for this run's report. When
// the pairs phase recorded provenance (Options.Provenance on the
// explicit backend) the recorded witnesses are reused; otherwise —
// BDD-backend runs, cached results, provenance off — the region strata
// are replayed on the explicit engine under an "explain.replay" trace
// span.
func (a *Analysis) Explainer(ctx context.Context) (*Explainer, error) {
	if a.Report == nil {
		return nil, Errf(ErrInternal, "", "explain: analysis has no report")
	}
	if a.prov != nil {
		return &Explainer{a: a, prov: a.prov}, nil
	}
	_, sp := trace.StartSpan(ctx, "explain.replay")
	prov := a.solveRegionProvenance()
	if sp != nil {
		sp.End(
			trace.Int("regions", len(a.Regions)),
			trace.Int("leq_tuples", prov.engine.Count(prov.rels.leq)))
	}
	return &Explainer{a: a, prov: prov, Replayed: true}, nil
}

// Explain explains one warning by its 1-based report index.
func (ex *Explainer) Explain(ctx context.Context, warning int) (*Explanation, error) {
	a := ex.a
	if warning < 1 || warning > len(a.Report.Warnings) {
		return nil, Errf(ErrConfig, "", "explain: warning %d out of range (report has %d)",
			warning, len(a.Report.Warnings))
	}
	_, sp := trace.StartSpan(ctx, "explain.tree")
	w := a.Report.Warnings[warning-1]
	pair := w.IPair.Example
	if err := ex.verifyPair(pair); err != nil {
		if sp != nil {
			sp.End(trace.Int("warning", warning), trace.Bool("verified", false))
		}
		return nil, err
	}
	tree := ex.buildTree(pair, w.IPair.Off)
	if sp != nil {
		sp.End(trace.Int("warning", warning), trace.Bool("verified", true))
	}
	return &Explanation{
		Schema:  ExplainSchemaV1,
		Warning: warning,
		High:    w.High(),
		Message: w.Message,
		Tree:    tree,
	}, nil
}

// ExplainAll explains every warning in report order.
func (ex *Explainer) ExplainAll(ctx context.Context) ([]*Explanation, error) {
	out := make([]*Explanation, 0, len(ex.a.Report.Warnings))
	for i := 1; i <= len(ex.a.Report.Warnings); i++ {
		e, err := ex.Explain(ctx, i)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// verifyPair re-derives the warning's objectPair fact on a per-query
// engine: regionPair restricted to the pair's owner regions (read out
// of the solved region strata), ownership restricted to the two
// objects (mirroring loadObjectRels, including root ownership of
// unowned targets via ownersOf), and the single queried access edge.
// A warning whose fact does not re-derive means the replayed verdict
// diverged from the report — an internal error, surfaced rather than
// papered over.
func (ex *Explainer) verifyPair(p ObjectPair) error {
	a := ex.a
	x, y := uint64(p.Evidence[0]), uint64(p.Evidence[1])
	if !ex.prov.engine.Has(ex.prov.rels.regionPair, x, y) {
		return Errf(ErrInternal, "", "explain: replay diverged: evidence regionPair(%d,%d) not derivable", x, y)
	}
	op := datalog.NewProgram()
	R := op.Domain("R", uint64(len(a.Regions)))
	O := op.Domain("O", uint64(len(a.Ptr.Objects)))
	N := op.Domain("N", 1)
	or := objectRels{
		regionPair: op.Relation("regionPair", R.At(0), R.At(1)),
		own:        op.Relation("own", R.At(0), O.At(0)),
		access:     op.Relation("access", O.At(0), N.At(0), O.At(1)),
		objectPair: op.Relation("objectPair", O.At(0), N.At(0), O.At(1)),
	}
	oe := datalog.NewExplicit(op)
	srcOwners := a.ownersOf(p.Src)
	dstOwners := a.ownersOf(p.Dst)
	for _, rx := range srcOwners {
		for _, ry := range dstOwners {
			if ex.prov.engine.Has(ex.prov.rels.regionPair, uint64(rx), uint64(ry)) {
				oe.Add(or.regionPair, uint64(rx), uint64(ry))
			}
		}
	}
	for _, rx := range srcOwners {
		oe.Add(or.own, uint64(rx), uint64(p.Src))
	}
	for _, ry := range dstOwners {
		oe.Add(or.own, uint64(ry), uint64(p.Dst))
	}
	oe.Add(or.access, uint64(p.Src), 0, uint64(p.Dst))
	oe.Solve([]*datalog.Rule{objectPairRule(or.regionPair, or)}, 0)
	if !oe.Has(or.objectPair, uint64(p.Src), 0, uint64(p.Dst)) {
		return Errf(ErrInternal, "", "explain: replay diverged: objectPair(%d,%d) not re-derivable from its cone",
			p.Src, p.Dst)
	}
	return nil
}

// buildTree assembles the derivation tree of one object pair. The
// objectPair node is instantiated at the report's evidence region pair
// (the pair checkEdge ranked the warning on), so the tree explains the
// exact warning text the user saw.
func (ex *Explainer) buildTree(p ObjectPair, off int64) *ExplainNode {
	a := ex.a
	x, y := p.Evidence[0], p.Evidence[1]
	root := &ExplainNode{
		Kind: "derived",
		Fact: fmt.Sprintf("objectPair(%d,%d,%d)", p.Src, off, p.Dst),
		Rule: ruleText["objectPair:-regionPair,own,own,access"],
		Note: fmt.Sprintf("object %s may hold a pointer into %s across unrelated regions",
			a.objPos(p.Src), a.objPos(p.Dst)),
	}
	root.Children = []*ExplainNode{
		ex.regionPairNode(x, y),
		ex.ownNode(x, p.Src),
		ex.ownNode(y, p.Dst),
		ex.accessNode(p.Src, off, p.Dst),
	}
	return root
}

// regionPairNode explains regionPair(x,y): both are regions and x has
// no subregion order with y.
func (ex *Explainer) regionPairNode(x, y int) *ExplainNode {
	a := ex.a
	n := &ExplainNode{
		Kind: "derived",
		Fact: fmt.Sprintf("regionPair(%d,%d)", x, y),
		Rule: ruleText["regionPair:-region,region,!leq"],
		Note: fmt.Sprintf("%s has no subregion order with %s", a.regionDesc(x), a.regionDesc(y)),
	}
	n.Children = []*ExplainNode{
		ex.regionBase(x),
		ex.regionBase(y),
		ex.negLeqNode(x, y),
	}
	return n
}

// negLeqNode justifies !leq(x,y): the children derive x's complete
// ancestor set (every leq(x,z) that does hold, value-sorted), showing
// y is not among them.
func (ex *Explainer) negLeqNode(x, y int) *ExplainNode {
	a := ex.a
	var ancestors []uint64
	for _, t := range ex.prov.engine.Tuples(ex.prov.rels.leq) {
		if t[0] == uint64(x) {
			ancestors = append(ancestors, t[1])
		}
	}
	sort.Slice(ancestors, func(i, j int) bool { return ancestors[i] < ancestors[j] })
	descs := make([]string, len(ancestors))
	children := make([]*ExplainNode, len(ancestors))
	for i, z := range ancestors {
		descs[i] = a.regionDesc(int(z))
		children[i] = ex.leqTree(uint64(x), z)
	}
	return &ExplainNode{
		Kind: "negated",
		Fact: fmt.Sprintf("!leq(%d,%d)", x, y),
		Note: fmt.Sprintf("%s only reaches {%s}; %s is not among them",
			a.regionDesc(x), strings.Join(descs, ", "), a.regionDesc(y)),
		Children: children,
	}
}

// leqTree walks the recorded witness of leq(x,z) recursively: leq
// premises expand through their own witnesses; region/parent premises
// become base leaves. Witness recording is well-founded (a premise was
// derived strictly before the fact it justifies), so the walk
// terminates without a visited set.
func (ex *Explainer) leqTree(x, z uint64) *ExplainNode {
	w, ok := ex.prov.engine.WitnessOf(ex.prov.rels.leq, x, z)
	if !ok {
		// leq is never pre-seeded, so a missing witness is a hole in the
		// recorder; make it visible rather than fabricating a leaf.
		return &ExplainNode{Kind: "base", Fact: fmt.Sprintf("leq(%d,%d)", x, z),
			Note: "missing witness", Pos: "<unknown>"}
	}
	n := &ExplainNode{
		Kind: "derived",
		Fact: fmt.Sprintf("leq(%d,%d)", x, z),
		Rule: ruleText[w.Rule],
	}
	if n.Rule == "" {
		n.Rule = w.Rule
	}
	for _, prem := range w.Premises {
		switch prem.Rel {
		case "leq":
			n.Children = append(n.Children, ex.leqTree(prem.Args[0], prem.Args[1]))
		case "region":
			n.Children = append(n.Children, ex.regionBase(int(prem.Args[0])))
		case "parent":
			n.Children = append(n.Children, ex.parentBase(int(prem.Args[0]), int(prem.Args[1])))
		default:
			n.Children = append(n.Children, &ExplainNode{Kind: "base", Fact: prem.String()})
		}
	}
	return n
}

// regionBase is the region(x) leaf: the fact that x is a region, at
// its creation site.
func (ex *Explainer) regionBase(x int) *ExplainNode {
	a := ex.a
	return &ExplainNode{
		Kind: "base",
		Fact: fmt.Sprintf("region(%d)", x),
		Pos:  a.regionPos(x),
		Note: a.regionDesc(x),
	}
}

// parentBase is the parent(c,p) leaf: the collapsed parent edge, at
// the child's creation site (where the parent argument was passed).
func (ex *Explainer) parentBase(c, p int) *ExplainNode {
	a := ex.a
	return &ExplainNode{
		Kind: "base",
		Fact: fmt.Sprintf("parent(%d,%d)", c, p),
		Pos:  a.regionPos(c),
		Note: fmt.Sprintf("%s is a subregion of %s", a.regionDesc(c), a.regionDesc(p)),
	}
}

// ownNode is the own(r,obj) leaf: region r owns obj, at the object's
// allocation site. A region owning itself is the φ⁼ reflexive
// extension rather than an allocation.
func (ex *Explainer) ownNode(r, obj int) *ExplainNode {
	a := ex.a
	note := fmt.Sprintf("%s owns the object allocated at %s", a.regionDesc(r), a.objPos(obj))
	if ri, ok := a.regionOf[obj]; ok && ri == r {
		note = fmt.Sprintf("%s owns itself as an object (φ⁼)", a.regionDesc(r))
	} else if _, owned := a.Owner[obj]; !owned && r == RootRegion {
		note = fmt.Sprintf("non-region object %s belongs to the immortal root region", a.objPos(obj))
	}
	return &ExplainNode{
		Kind: "base",
		Fact: fmt.Sprintf("own(%d,%d)", r, obj),
		Pos:  a.objPos(obj),
		Note: note,
	}
}

// accessNode is the access(o1,n,o2) leaf: the heap effect, positioned
// at the store instruction that wrote the pointer (found by the
// pointer layer's deterministic post-solve witness scan; the source
// allocation site is the fallback when the edge came from
// address-taken variable syncing).
func (ex *Explainer) accessNode(src int, off int64, dst int) *ExplainNode {
	a := ex.a
	pos := a.objPos(src)
	note := fmt.Sprintf("a field of %s (offset %d) may point at %s", a.objPos(src), off, a.objPos(dst))
	for _, l := range a.Ptr.HeapAt(src, off) {
		if l.Obj != dst {
			continue
		}
		if in, _, ok := a.Ptr.HeapWitness(src, off, l); ok {
			pos = a.instrPos(in)
			note += fmt.Sprintf("; stored at %s", pos)
		}
		break
	}
	return &ExplainNode{
		Kind: "base",
		Fact: fmt.Sprintf("access(%d,%d,%d)", src, off, dst),
		Pos:  pos,
		Note: note,
	}
}

// regionPos renders a region's creation position, falling back to the
// same descriptions the report uses so the leaf is never empty.
func (a *Analysis) regionPos(idx int) string {
	if idx == RootRegion {
		return "<root>"
	}
	r := a.Regions[idx]
	if r.Site != nil && r.Site.Pos.IsValid() {
		return r.Site.Pos.String()
	}
	if r.Obj >= 0 {
		return a.objPos(r.Obj)
	}
	return a.regionDesc(idx)
}

// instrPos renders an instruction position with its enclosing
// function.
func (a *Analysis) instrPos(in *ir.Instr) string {
	if in.Func != nil {
		return fmt.Sprintf("%s (%s)", in.Pos, in.Func.Name)
	}
	return in.Pos.String()
}

// String renders the explanation as a human-readable tree, one node
// per line: kind, fact, then the rule text (::), source position (@),
// and note (--) when present.
func (e *Explanation) String() string {
	var sb strings.Builder
	rank := ""
	if e.High {
		rank = " [HIGH]"
	}
	fmt.Fprintf(&sb, "warning %d%s: %s\n", e.Warning, rank, e.Message)
	writeNode(&sb, e.Tree, 1)
	return sb.String()
}

func writeNode(sb *strings.Builder, n *ExplainNode, depth int) {
	sb.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(sb, "- %s %s", n.Kind, n.Fact)
	if n.Rule != "" {
		fmt.Fprintf(sb, " :: %s", n.Rule)
	}
	if n.Pos != "" {
		fmt.Fprintf(sb, " @ %s", n.Pos)
	}
	if n.Note != "" {
		fmt.Fprintf(sb, " -- %s", n.Note)
	}
	sb.WriteByte('\n')
	for _, c := range n.Children {
		writeNode(sb, c, depth+1)
	}
}

// MarshalExplanations renders a set of explanations as the stable
// machine-readable document the CLI's -explain -json mode and the
// daemon's /v1/explain endpoint share.
func MarshalExplanations(exps []*Explanation) ([]byte, error) {
	doc := struct {
		Schema       string         `json:"schema"`
		Explanations []*Explanation `json:"explanations"`
	}{Schema: ExplainSchemaV1, Explanations: exps}
	if doc.Explanations == nil {
		doc.Explanations = []*Explanation{}
	}
	return json.MarshalIndent(doc, "", "  ")
}
