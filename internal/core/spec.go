// Package core implements RegionWiz: the region lifetime consistency
// analysis of the paper (Sections 4 and 5). It drives the front-end,
// call graph, context cloning, and pointer analysis substrates, then
// computes the conditional correlation ⟨p⁺, φ⁼, σ̄*⟩ over regions and
// objects, reports inconsistent object pairs, condenses them to
// instruction pairs, and ranks them.
package core

// CreateSpec describes a region-creation function (the paper's rnew /
// apr_pool_create shapes).
type CreateSpec struct {
	// ParentArg is the argument index carrying the parent region.
	// A NULL argument (or an argument that points to no region) means
	// the root region.
	ParentArg int
	// OutArg is the argument index of an apr_pool_t** out-parameter
	// that receives the new region, or -1 when the new region is the
	// return value.
	OutArg int
}

// AllocSpec describes an object-allocation function (ralloc /
// apr_palloc shapes).
type AllocSpec struct {
	// RegionArg is the argument index carrying the owner region.
	RegionArg int
}

// RegionAPI is one region-based memory management interface. The two
// concrete instances mirror the paper's Section 5: RC regions and APR
// pools.
type RegionAPI struct {
	Name string
	// Create maps function names to creation specs.
	Create map[string]CreateSpec
	// Alloc maps function names to allocation specs.
	Alloc map[string]AllocSpec
	// Delete holds region deletion/clearing functions (tracked for
	// reporting; the subregion relation already fixes deletion order,
	// Section 4.1).
	Delete map[string]bool
}

// APRPools returns the Apache Portable Runtime pools interface of
// Figure 6, plus the handful of APR allocators (apr_pstrdup etc.) and
// the Subversion pool wrappers that appear in the paper's case
// studies.
func APRPools() *RegionAPI {
	return &RegionAPI{
		Name: "apr",
		Create: map[string]CreateSpec{
			"apr_pool_create":    {ParentArg: 1, OutArg: 0},
			"apr_pool_create_ex": {ParentArg: 1, OutArg: 0},
			// svn_pool_create is Subversion's wrapper returning the
			// pool; when its body is present in the program the spec
			// entry is ignored in favour of the real definition.
			"svn_pool_create": {ParentArg: 0, OutArg: -1},
		},
		Alloc: map[string]AllocSpec{
			"apr_palloc":     {RegionArg: 0},
			"apr_pcalloc":    {RegionArg: 0},
			"apr_pstrdup":    {RegionArg: 0},
			"apr_pstrndup":   {RegionArg: 0},
			"apr_psprintf":   {RegionArg: 0},
			"apr_pmemdup":    {RegionArg: 0},
			"apr_hash_make":  {RegionArg: 0},
			"apr_array_make": {RegionArg: 0},
		},
		Delete: map[string]bool{
			"apr_pool_clear":   true,
			"apr_pool_destroy": true,
			"svn_pool_destroy": true,
			"svn_pool_clear":   true,
		},
	}
}

// RCRegions returns the RC-regions interface (Gay and Aiken), which is
// also the paper's toy-language interface: rnew creates a subregion of
// its argument and ralloc allocates in its argument.
func RCRegions() *RegionAPI {
	return &RegionAPI{
		Name: "rc",
		Create: map[string]CreateSpec{
			"rnew":         {ParentArg: 0, OutArg: -1},
			"newregion":    {ParentArg: -1, OutArg: -1}, // top-level region
			"newsubregion": {ParentArg: 0, OutArg: -1},
		},
		Alloc: map[string]AllocSpec{
			"ralloc":      {RegionArg: 0},
			"rstralloc":   {RegionArg: 0},
			"rstrdup":     {RegionArg: 0},
			"rarrayalloc": {RegionArg: 0},
		},
		Delete: map[string]bool{
			"deleteregion": true,
		},
	}
}

// MergeAPIs combines several interfaces into one (a program may mix
// them; the paper analyzes each package with its own interface, and
// RegionWiz accepts both simultaneously).
func MergeAPIs(apis ...*RegionAPI) *RegionAPI {
	m := &RegionAPI{
		Name:   "merged",
		Create: make(map[string]CreateSpec),
		Alloc:  make(map[string]AllocSpec),
		Delete: make(map[string]bool),
	}
	for _, api := range apis {
		for k, v := range api.Create {
			m.Create[k] = v
		}
		for k, v := range api.Alloc {
			m.Alloc[k] = v
		}
		for k, v := range api.Delete {
			m.Delete[k] = v
		}
	}
	return m
}
