package core

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenReport is a fully fixed Report literal: every field that
// reaches the JSON encoding is pinned, so the golden file pins the
// encoding itself.
func goldenReport() *Report {
	return &Report{
		Warnings: []Warning{{
			IPair: IPair{
				SrcSite: 7,
				Off:     8,
				DstSite: 12,
				High:    true,
				Pairs:   3,
			},
			SrcPos:    "q.c:12:5 (main)",
			DstPos:    "q.c:10:5 (main)",
			SrcRegion: "region@q.c:11:5#0",
			DstRegion: "region@q.c:9:5#0",
			Message:   "object allocated at q.c:12:5 (main) may hold a dangling pointer (offset 8) to object allocated at q.c:10:5 (main): owner region region@q.c:11:5#0 has no subregion order with region@q.c:9:5#0",
			Cause:     "main",
		}},
		Stats: Stats{
			Time:       1500 * time.Microsecond,
			R:          2,
			H:          2,
			Sub:        1,
			Own:        2,
			Heap:       1,
			RPairs:     2,
			OPairs:     1,
			IPairs:     1,
			High:       1,
			Contexts:   1,
			Funcs:      1,
			Instrs:     20,
			Causes:     1,
			HighCauses: 1,
			Phases: []PhaseStat{
				{
					Name:       PhasePointer,
					Time:       800 * time.Microsecond,
					AllocBytes: 4096,
					Outputs:    map[string]int64{"ptr_objects": 5},
				},
				{
					Name: PhasePost,
					Time: 100 * time.Microsecond,
				},
			},
		},
	}
}

// TestReportJSONGolden pins the versioned report encoding: the schema
// marker and every field name and value rendering must match the
// golden file byte for byte. Regenerate deliberately with
// `go test ./internal/core -run ReportJSONGolden -update` when the
// schema version is bumped.
func TestReportJSONGolden(t *testing.T) {
	data, err := json.MarshalIndent(goldenReport(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	golden := filepath.Join("testdata", "report_v1.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, want) {
		t.Errorf("report JSON drifted from %s\n--- got ---\n%s\n--- want ---\n%s", golden, data, want)
	}
}

// TestReportJSONSchemaField asserts the schema marker rides along on
// real (non-golden) reports too.
func TestReportJSONSchemaField(t *testing.T) {
	data, err := json.Marshal(&Report{})
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Schema != ReportSchemaV1 {
		t.Fatalf("schema = %q, want %q", decoded.Schema, ReportSchemaV1)
	}
}
