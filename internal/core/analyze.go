package core

import (
	"context"
	"sort"

	"repro/internal/bdd"
	"repro/internal/callgraph"
	"repro/internal/cminor"
	"repro/internal/contexts"
	"repro/internal/ir"
	"repro/internal/pipeline"
	"repro/internal/pointer"
)

// Backend selects how the inconsistency computation (Section 5.3.2) is
// solved.
type Backend int

// Backends.
const (
	// ExplicitBackend uses plain hash-set relations.
	ExplicitBackend Backend = iota
	// BDDBackend stores relations in BDDs and solves the paper's
	// Datalog rules with the bddbddb-substitute engine.
	BDDBackend
)

// Options configures an analysis run.
type Options struct {
	// Entry is the program entry function (default "main").
	Entry string
	// API is the region interface; default MergeAPIs(APRPools(), RCRegions()).
	API *RegionAPI
	// ContextCap bounds per-function context counts (default 4096;
	// 1 yields a context-insensitive analysis — the ablation knob).
	ContextCap uint64
	// HeapCloning keys abstract objects by (context, site); default
	// true (disabling is the Section 7 ablation).
	HeapCloning *bool
	// Backend selects the pair-computation engine.
	//
	// Deprecated: set Solver.Backend. Normalize folds this alias into
	// Solver (Solver wins when both are set) and mirrors the resolved
	// value back, so the two spellings fingerprint identically.
	Backend Backend
	// DefUseRefinement enables the Section 4.3 / Figure 5(b)
	// refinement the paper defers to future work: subregion and
	// ownership are additionally tracked through the variables they
	// came from (p̂ : R×V, f̂ : V×O), and an inconsistency witness is
	// suppressed when the subregion's parent and the pointee's owner
	// were read from the same variable instance — they must denote the
	// same region at runtime. Like IPSSA, this is unsound (the
	// variable could be reassigned between the two uses) but
	// effective against intra-region false positives.
	DefUseRefinement bool
	// Entries analyzes an open program (a library, the paper's
	// Section 8 extension): every listed defined function is an
	// analysis root. When set, Entry is ignored and no "main" is
	// required; an empty slice with OpenProgram semantics is filled
	// with every defined function.
	Entries []string
	// KCFA switches context numbering from full call-path cloning
	// (Whaley–Lam, the paper's choice) to k-CFA call strings of the
	// given depth — the "smaller number of contexts" alternative the
	// paper's Section 6.3 says it is investigating. 0 keeps call-path
	// numbering.
	KCFA int
	// ContextPolicy names the context-numbering policy: PolicyClone
	// (full call-path cloning, the default), PolicyKCFA (requires
	// KCFA > 0 for the depth), or PolicyOrigin (allocation-site
	// origin sensitivity: contexts are keyed by the nearest enclosing
	// call into a region-creating or region-allocating function, per
	// origin-go-tools). Normalize derives the default from KCFA;
	// Validate rejects inconsistent combinations. Origin changes
	// results and is fingerprinted.
	ContextPolicy string
	// ImplicitSpecs overrides the implicit-call registry (nil =
	// callgraph.DefaultImplicitSpecs).
	ImplicitSpecs []callgraph.ImplicitSpec
	// ExtraAllocFns adds generic allocators (malloc-style) that create
	// non-region objects.
	ExtraAllocFns []string
	// Observer, when set, receives pipeline phase start/end callbacks
	// (logging, benchmarking, progress reporting). Phase metrics are
	// additionally recorded in Report.Stats.Phases regardless.
	Observer pipeline.Observer[*Analysis]
	// BDD sizes the BDD kernel's node table and operation caches when
	// the BDD backend runs (the zero value selects the kernel
	// defaults). Like Observer it cannot change analysis results —
	// only time and memory — so it is excluded from Fingerprint.
	//
	// Deprecated: set Solver.BDD. Normalize folds this alias into
	// Solver (Solver wins when both are set) and mirrors the resolved
	// value back.
	BDD bdd.Config
	// MaxRounds bounds the pointer fixpoint's iteration count.
	//
	// Deprecated: set Solver.MaxRounds. Normalize folds this alias
	// into Solver (Solver wins when both are set) and mirrors the
	// resolved value back; a conflicting nonzero pair is a config
	// error at every Analyze* boundary.
	MaxRounds int
	// Solver groups how the analysis is solved: worker count, fixpoint
	// budget, backend, and BDD sizing. See SolverOptions.
	Solver SolverOptions
	// Provenance opts into why-provenance recording: on an
	// explicit-backend run the pairs phase additionally solves the
	// region strata on a witness-recording tuple engine, so Explain
	// answers come from recorded derivations instead of a replay.
	// Recording never changes the pairs, the report, or any phase
	// metric — reports are byte-identical with it on or off — so, like
	// Observer and Workers, it is excluded from Fingerprint.
	Provenance bool
}

// Context policies (Options.ContextPolicy).
const (
	PolicyClone  = "clone"
	PolicyKCFA   = "kcfa"
	PolicyOrigin = "origin"
)

// prepare normalizes and validates options at an Analyze* boundary.
// Alias conflicts are checked first, on the raw options: Normalize
// folds the deprecated spellings into Solver and the disagreement
// would vanish silently.
func (o Options) prepare() (Options, error) {
	if err := o.AliasConflicts(); err != nil {
		return o, err
	}
	o = o.Normalize()
	if err := o.Validate(); err != nil {
		return o, err
	}
	return o, nil
}

// Bool is a convenience for Options.HeapCloning.
func Bool(b bool) *bool { return &b }

// Region is one region instance: either the root or a (context,
// creation site) clone.
type Region struct {
	Index  int
	Obj    int // pointer-analysis object ID; -1 for root
	Site   *ir.Instr
	Ctx    uint64
	Parent int // region index after the Section 4.3 join collapse
	// Cands are the candidate parents observed before collapsing.
	Cands []int
	Depth int
}

// RootRegion is the index of the root region Θ.
const RootRegion = 0

// Analysis holds the intermediate and final state of one run — the
// shared State threaded through the pipeline phases (phases.go).
type Analysis struct {
	Opts Options
	// Sources holds path->content pairs when the front-end phases
	// (parse, check) run as part of the pipeline (AnalyzeSource).
	Sources   map[string]string
	Files     []*cminor.File
	Info      *cminor.Info
	Prog      *ir.Program
	Graph     *callgraph.Graph
	Numbering *contexts.Numbering
	Ptr       *pointer.Result

	// entries are the resolved analysis roots (lower phase).
	entries []string
	// pairs is the inconsistency computation's raw output (pairs
	// phase), condensed by the post phase.
	pairs []ObjectPair
	// bddNodes/bddTuples record the BDD backend's final node-table
	// and relation sizes (zero for the explicit backend); bddStats
	// snapshots the kernel's cache/table counters.
	bddNodes, bddTuples int64
	bddStats            bdd.ManagerStats
	// prov holds the provenance recorder's solved region strata when
	// Options.Provenance was set on an explicit-backend run (explain.go);
	// nil otherwise, in which case Explainer replays on demand.
	prov *provRecord

	// Metrics is the per-phase cost breakdown of the run, including
	// phases that ran before an error aborted the pipeline.
	Metrics *pipeline.Metrics

	// Front counts per-file front-end reuse for snapshot-backed runs
	// (AnalyzeSourceSnapshot / AnalyzeIncremental); zero otherwise.
	Front FrontEndStats

	// Incremental-run state (snapshot.go). snapshotting marks a run
	// that will produce a Snapshot; prev is the base snapshot of an
	// incremental run; changed/digests are per-path parse results;
	// declSigs/bodyDefs cache signature computations for the new
	// snapshot; fragments collects the per-file IR (reused or fresh);
	// incrementalCheck records that check reused prev's declarations.
	snapshotting     bool
	prev             *Snapshot
	changed          map[string]bool
	digests          map[string]string
	declSigs         map[string]string
	bodyDefs         map[string]bool
	fragments        map[string]*ir.Fragment
	incrementalCheck bool

	// Regions indexed by region index; Regions[0] is the root.
	Regions []Region
	// regionOf maps pointer object IDs to region indices.
	regionOf map[int]int

	// Owner maps object IDs to the region indices that may own them
	// (φ; φ⁼ additionally maps each region to itself).
	Owner map[int][]int
	// parentVars (p̂) and ownerVars (f̂) track which variable instance
	// a region's parent / an object's owner region was read from —
	// the Figure 5(b) def-use refinement relations.
	parentVars map[int]map[varInst]bool
	ownerVars  map[int]map[varInst]bool
	// ownEdges counts ownership tuples (Figure 11's "own." column).
	ownEdges int
	// subEdges counts raw candidate subregion tuples ("sub." column).
	subEdges int

	// AccessEdges is σ restricted to region-allocated sources: source
	// object, field offset, target object.
	AccessEdges []AccessEdge

	Report *Report
}

// AccessEdge is one tuple of the heap/access relation.
type AccessEdge struct {
	Src int
	Off int64
	Dst int
}

// AnalyzeSource parses, checks, lowers, and analyzes CMinor sources
// given as path->content pairs. Front-end diagnostics abort the run.
func AnalyzeSource(opts Options, sources map[string]string) (*Analysis, error) {
	return AnalyzeSourceContext(context.Background(), opts, sources)
}

// AnalyzeSourceContext is AnalyzeSource under a context: the pipeline
// checks ctx between phases and aborts with ctx.Err() when it is
// cancelled or past its deadline.
func AnalyzeSourceContext(ctx context.Context, opts Options, sources map[string]string) (*Analysis, error) {
	opts, err := opts.prepare()
	if err != nil {
		return nil, err
	}
	a := newAnalysis(opts)
	a.Sources = sources
	return runPhases(ctx, a, append(frontEndPhases(), analysisPhases()...))
}

// Analyze runs the full RegionWiz pipeline over checked files.
func Analyze(opts Options, info *cminor.Info, files ...*cminor.File) (*Analysis, error) {
	return AnalyzeContext(context.Background(), opts, info, files...)
}

// AnalyzeContext is Analyze under a context (see
// AnalyzeSourceContext).
func AnalyzeContext(ctx context.Context, opts Options, info *cminor.Info, files ...*cminor.File) (*Analysis, error) {
	opts, err := opts.prepare()
	if err != nil {
		return nil, err
	}
	a := newAnalysis(opts)
	a.Info = info
	a.Files = files
	return runPhases(ctx, a, analysisPhases())
}

// pointerConfig derives the pointer-analysis extern models from the
// region API.
// BDDStats returns the BDD kernel's counter snapshot from the pairs
// phase — zero for explicit-backend runs. Benchmarks read it directly
// so they see the lifecycle gauges (peak nodes) even for
// configurations where no collection ran.
func (a *Analysis) BDDStats() bdd.ManagerStats { return a.bddStats }

func (a *Analysis) pointerConfig() pointer.Config {
	cfg := pointer.Config{
		AllocFns:     map[string]bool{"malloc": true, "calloc": true, "realloc": true, "strdup": true},
		OutAllocFns:  map[string]int{},
		ReturnArgFns: map[string]int{"memcpy": 0, "memset": 0, "strcpy": 0, "strcat": 0, "memmove": 0},
		HeapCloning:  *a.Opts.HeapCloning,
		EntryParams:  len(a.Opts.Entries) > 0,
		MaxRounds:    a.Opts.Solver.MaxRounds,
		PtsLimit:     a.Opts.Solver.PtsLimit,
		Workers:      a.Opts.Solver.Workers,
		BDD:          a.Opts.Solver.BDD,
	}
	for _, fn := range a.Opts.ExtraAllocFns {
		cfg.AllocFns[fn] = true
	}
	for name, spec := range a.Opts.API.Create {
		if spec.OutArg >= 0 {
			cfg.OutAllocFns[name] = spec.OutArg
		} else {
			cfg.AllocFns[name] = true
		}
	}
	for name := range a.Opts.API.Alloc {
		cfg.AllocFns[name] = true
	}
	return cfg
}

// originFns marks the defined functions whose bodies directly call a
// region-creating or region-allocating extern of the configured API —
// the origin spawn points of the PolicyOrigin context numbering.
func (a *Analysis) originFns() map[string]bool {
	isOrigin := func(name string) bool {
		if _, ok := a.Opts.API.Create[name]; ok {
			return true
		}
		_, ok := a.Opts.API.Alloc[name]
		return ok
	}
	out := make(map[string]bool)
	for fnName, f := range a.Prog.Funcs {
		for _, in := range f.Instrs {
			if in.Op != ir.Call {
				continue
			}
			for _, name := range a.externNamesOf(in) {
				if isOrigin(name) {
					out[fnName] = true
				}
			}
		}
	}
	return out
}

// externCallSites enumerates every reachable (ctx, CALL instruction,
// extern name) triple, the drive shaft of effect extraction.
func (a *Analysis) externCallSites(visit func(fn string, ctx uint64, in *ir.Instr, extern string)) {
	for _, fnName := range a.Graph.ReachableFuncs() {
		f := a.Prog.Funcs[fnName]
		count := a.Numbering.Count[fnName]
		for _, in := range f.Instrs {
			if in.Op != ir.Call {
				continue
			}
			externs := a.externNamesOf(in)
			if len(externs) == 0 {
				continue
			}
			for ctx := uint64(0); ctx < count; ctx++ {
				for _, name := range externs {
					visit(fnName, ctx, in, name)
				}
			}
		}
	}
}

func (a *Analysis) externNamesOf(in *ir.Instr) []string {
	switch in.Callee.Kind {
	case ir.FuncOpd:
		if _, defined := a.Prog.Funcs[in.Callee.Fn]; !defined {
			return []string{in.Callee.Fn}
		}
	case ir.VarOpd:
		var out []string
		for fn := range a.Graph.VF[in.Callee.Var] {
			if _, defined := a.Prog.Funcs[fn]; !defined {
				out = append(out, fn)
			}
		}
		sort.Strings(out)
		return out
	}
	return nil
}

// extractRegions assigns region indices to region objects and collects
// candidate parent edges from region-creation calls.
func (a *Analysis) extractRegions() {
	a.Regions = []Region{{Index: RootRegion, Obj: -1, Parent: RootRegion}}
	// First pass: register every region object. In open-program mode
	// every entry-parameter object is additionally a symbolic
	// "parameter region" of unknown parent: the library is verified
	// under the weakest assumption about what the caller passed.
	for id, obj := range a.Ptr.Objects {
		if obj.Kind == pointer.ParamObj {
			idx := len(a.Regions)
			a.Regions = append(a.Regions, Region{Index: idx, Obj: id, Parent: RootRegion})
			a.regionOf[id] = idx
			continue
		}
		if obj.Kind != pointer.AllocObj {
			continue
		}
		if _, isCreate := a.Opts.API.Create[obj.Fn]; !isCreate {
			continue
		}
		idx := len(a.Regions)
		a.Regions = append(a.Regions, Region{
			Index: idx, Obj: id, Site: obj.Site, Ctx: obj.Ctx, Parent: RootRegion,
		})
		a.regionOf[id] = idx
	}
	// Second pass: candidate parents from creation calls.
	cands := make(map[int]map[int]bool)
	a.externCallSites(func(fn string, ctx uint64, in *ir.Instr, extern string) {
		spec, ok := a.Opts.API.Create[extern]
		if !ok {
			return
		}
		objID := a.Ptr.AllocObjAt(ctx, in.ID)
		if objID < 0 {
			return
		}
		child, ok := a.regionOf[objID]
		if !ok {
			return
		}
		parents := a.regionArgTargets(in, ctx, spec.ParentArg)
		set := cands[child]
		if set == nil {
			set = make(map[int]bool)
			cands[child] = set
		}
		for _, p := range parents {
			if p != child { // self-parent candidates would be cyclic
				set[p] = true
				a.subEdges++
			}
		}
		// p̂: remember the variable the parent was read from.
		if spec.ParentArg >= 0 && spec.ParentArg < len(in.Args) {
			if arg := in.Args[spec.ParentArg]; arg.Kind == ir.VarOpd {
				addVarInst(a.parentVars, child, varInst{arg.Var, ctx})
			}
		}
	})
	for child, set := range cands {
		list := make([]int, 0, len(set))
		for p := range set {
			list = append(list, p)
		}
		sort.Ints(list)
		a.Regions[child].Cands = list
	}
}

// regionArgTargets resolves the region argument of a call to region
// indices. A NULL argument, a missing argument, or an argument that
// points at no region all mean the root region (Section 4.1: "if the
// parameter given in rnew or ralloc is null, it means the root
// region").
func (a *Analysis) regionArgTargets(in *ir.Instr, ctx uint64, argIdx int) []int {
	if argIdx < 0 || argIdx >= len(in.Args) {
		return []int{RootRegion}
	}
	arg := in.Args[argIdx]
	if arg.Kind == ir.NullOpd || arg.Kind == ir.ConstOpd {
		return []int{RootRegion}
	}
	var out []int
	seen := map[int]bool{}
	for _, l := range a.Ptr.OperandPointsTo(arg, ctx) {
		if r, ok := a.regionOf[l.Obj]; ok && !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	if len(out) == 0 {
		return []int{RootRegion}
	}
	sort.Ints(out)
	return out
}

// varInst is one context-sensitive variable instance — the V of the
// Figure 5(b) refinement relations.
type varInst struct {
	v   *ir.Var
	ctx uint64
}

func addVarInst(m map[int]map[varInst]bool, key int, vi varInst) {
	set := m[key]
	if set == nil {
		set = make(map[varInst]bool)
		m[key] = set
	}
	set[vi] = true
}

// sameVarWitness reports whether the inconsistency witness (x owns the
// source object, the destination object's owner is y) is refuted by
// the def-use refinement: the source's region x was created as a
// subregion of — or the source object was allocated from — the very
// variable instance the destination's owner was read from, so the two
// sides must denote the same region (or a descendant) at runtime.
func (a *Analysis) sameVarWitness(x, srcObj, dstObj int) bool {
	dst := a.ownerVars[dstObj]
	if len(dst) == 0 {
		return false
	}
	for vi := range a.parentVars[x] {
		if dst[vi] {
			return true
		}
	}
	for vi := range a.ownerVars[srcObj] {
		if dst[vi] {
			return true
		}
	}
	return false
}

// allocRegionTargets resolves the region argument of an allocation
// call, returning nil (no ownership) when the argument is NULL or
// points at no region.
func (a *Analysis) allocRegionTargets(in *ir.Instr, ctx uint64, argIdx int) []int {
	if argIdx < 0 || argIdx >= len(in.Args) {
		return nil
	}
	arg := in.Args[argIdx]
	if arg.Kind != ir.VarOpd && arg.Kind != ir.StringOpd {
		return nil
	}
	var out []int
	seen := map[int]bool{}
	for _, l := range a.Ptr.OperandPointsTo(arg, ctx) {
		if r, ok := a.regionOf[l.Obj]; ok && !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	sort.Ints(out)
	return out
}

// collapseParents implements the Section 4.3 under-approximation: a
// region with several candidate parents is re-parented to their join
// in the region semilattice (the root is the top). The join is the
// least common ancestor over the forest formed by unique-parent
// regions; regions whose candidates have no common ancestor chain join
// at the root, exactly as in Example 4.4.
func (a *Analysis) collapseParents() {
	// Start from unique-parent edges.
	for i := range a.Regions {
		r := &a.Regions[i]
		if i == RootRegion {
			continue
		}
		switch len(r.Cands) {
		case 0:
			r.Parent = RootRegion
		case 1:
			r.Parent = r.Cands[0]
		default:
			r.Parent = -1 // to be joined below
		}
	}
	// Guard against parent cycles (possible after context merging):
	// walk each unique chain; any cycle is broken at the root.
	for i := range a.Regions {
		if a.Regions[i].Parent < 0 {
			continue
		}
		seen := map[int]bool{i: true}
		for j := a.Regions[i].Parent; j != RootRegion; j = a.Regions[j].Parent {
			if j < 0 || seen[j] {
				a.Regions[i].Parent = RootRegion
				break
			}
			seen[j] = true
		}
	}
	// Join multi-parent regions.
	for i := range a.Regions {
		r := &a.Regions[i]
		if r.Parent >= 0 {
			continue
		}
		r.Parent = a.join(r.Cands, i)
	}
	// Depths for reporting and LCA sanity.
	for i := range a.Regions {
		a.Regions[i].Depth = a.depth(i)
	}
}

// ancestors returns the chain idx, parent(idx), ..., root. Nodes with
// still-undetermined parents (-1) fall to the root immediately.
func (a *Analysis) ancestors(idx int) []int {
	var chain []int
	seen := map[int]bool{}
	for {
		chain = append(chain, idx)
		if idx == RootRegion || seen[idx] {
			return chain
		}
		seen[idx] = true
		p := a.Regions[idx].Parent
		if p < 0 {
			chain = append(chain, RootRegion)
			return chain
		}
		idx = p
	}
}

// join computes the least common ancestor of the candidate set,
// excluding the joining region itself from the result.
func (a *Analysis) join(cands []int, self int) int {
	if len(cands) == 0 {
		return RootRegion
	}
	common := map[int]bool{}
	for i, c := range cands {
		chain := a.ancestors(c)
		set := map[int]bool{}
		for _, x := range chain {
			set[x] = true
		}
		if i == 0 {
			common = set
			continue
		}
		for x := range common {
			if !set[x] {
				delete(common, x)
			}
		}
	}
	// Deepest common ancestor: walk the first candidate's chain from
	// the bottom; the first member of common that is not self wins.
	for _, x := range a.ancestors(cands[0]) {
		if common[x] && x != self {
			return x
		}
	}
	return RootRegion
}

func (a *Analysis) depth(idx int) int {
	d := 0
	seen := map[int]bool{}
	for idx != RootRegion && !seen[idx] {
		seen[idx] = true
		idx = a.Regions[idx].Parent
		d++
	}
	return d
}

// Leq reports the subregion partial order x ⊑ y (reflexive transitive
// closure of the collapsed parent edges; everything ⊑ root).
func (a *Analysis) Leq(x, y int) bool {
	if y == RootRegion {
		return true
	}
	seen := map[int]bool{}
	for {
		if x == y {
			return true
		}
		if x == RootRegion || seen[x] {
			return false
		}
		seen[x] = true
		x = a.Regions[x].Parent
	}
}

// extractOwnership collects the ownership relation from allocation
// calls: region argument targets own the allocated object.
func (a *Analysis) extractOwnership() {
	add := func(obj, region int) {
		for _, r := range a.Owner[obj] {
			if r == region {
				return
			}
		}
		a.Owner[obj] = append(a.Owner[obj], region)
		a.ownEdges++
	}
	a.externCallSites(func(fn string, ctx uint64, in *ir.Instr, extern string) {
		spec, ok := a.Opts.API.Alloc[extern]
		if !ok {
			return
		}
		objID := a.Ptr.AllocObjAt(ctx, in.ID)
		if objID < 0 {
			return
		}
		// Unlike region creation (where a NULL parent means the root,
		// Section 4.1), an allocation whose region argument resolves
		// to no region — a literal NULL or a guarded never-NULL path
		// like apr_hash_first's "if (pool)" — records no ownership:
		// such objects are not σ sources. This matches the paper's
		// recommended Figure 9 fix analyzing clean.
		for _, r := range a.allocRegionTargets(in, ctx, spec.RegionArg) {
			add(objID, r)
		}
		// f̂: remember the variable the owner region was read from.
		if spec.RegionArg >= 0 && spec.RegionArg < len(in.Args) {
			if arg := in.Args[spec.RegionArg]; arg.Kind == ir.VarOpd {
				addVarInst(a.ownerVars, objID, varInst{arg.Var, ctx})
			}
		}
	})
	for i := range a.Owner {
		sort.Ints(a.Owner[i])
	}
}

// ownersOf returns the owner regions of an object for pair checking:
// region objects belong to their own region (the φ⁼ reflexive
// extension); API-allocated objects to their recorded owners; every
// other object (malloc'ed memory, variable storage, string literals)
// to the immortal root region.
func (a *Analysis) ownersOf(obj int) []int {
	if r, ok := a.regionOf[obj]; ok {
		return []int{r}
	}
	if owners, ok := a.Owner[obj]; ok {
		return owners
	}
	return []int{RootRegion}
}

// isRegionAllocated reports whether obj was allocated by the region
// API (the paper's normal objects H — the only legal sources of σ).
func (a *Analysis) isRegionAllocated(obj int) bool {
	_, owned := a.Owner[obj]
	return owned
}

// extractAccess restricts the pointer analysis heap to σ: edges whose
// source is a region-allocated object.
func (a *Analysis) extractAccess() {
	a.Ptr.EachHeap(func(obj int, off int64, l pointer.Loc) {
		if !a.isRegionAllocated(obj) {
			return
		}
		a.AccessEdges = append(a.AccessEdges, AccessEdge{Src: obj, Off: off, Dst: l.Obj})
	})
}

// RegionCount returns the number of created region instances (the
// Figure 11 "R" column; the root is not counted).
func (a *Analysis) RegionCount() int { return len(a.Regions) - 1 }

// ObjectCount returns the number of region-allocated normal objects
// ("H" column).
func (a *Analysis) ObjectCount() int { return len(a.Owner) }

// RPairCount counts ordered region pairs with no subregion partial
// order ("R-pair" column) without materializing them: x ⊑ y holds for
// x ≠ y exactly when y is a proper ancestor of x, so the related-pair
// count is the sum of ancestor-chain lengths (root excluded).
func (a *Analysis) RPairCount() int64 {
	n := int64(a.RegionCount())
	var related int64
	for x := 1; x < len(a.Regions); x++ {
		seen := map[int]bool{x: true}
		for y := a.Regions[x].Parent; y != RootRegion && !seen[y]; y = a.Regions[y].Parent {
			seen[y] = true
			related++
		}
	}
	return n*(n-1) - related
}
