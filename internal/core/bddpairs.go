package core

import (
	"context"
	"sort"

	"repro/internal/datalog"
	"repro/internal/trace"
)

// computeObjectPairsBDD runs the inconsistency computation on the
// BDD-backed Datalog engine, mirroring the paper's bddbddb rules
// (Section 5.3.2):
//
//	leq(x, x)    :- region(x).
//	leq(x, y)    :- parent(x, y).
//	leq(x, z)    :- leq(x, y), parent(y, z).
//	regionPair(x, y) :- region(x), region(y), !leq(x, y).
//	objectPair(o1, n, o2) :- regionPair(x, y), own(x, o1), own(y, o2),
//	                         access(o1, n, o2).
//
// The result is identical to the explicit backend (asserted by tests);
// the two differ only in how the relations are stored and joined.
func (a *Analysis) computeObjectPairsBDD(ctx context.Context) []ObjectPair {
	if len(a.AccessEdges) == 0 {
		return nil
	}
	p := datalog.NewProgramConfig(a.Opts.BDD)
	if sp := trace.SpanFromContext(ctx); sp != nil {
		p.M.OnEvent = func(kind string, nodes, capacity int) {
			sp.Event("bdd_"+kind, trace.Int("nodes", nodes), trace.Int("capacity", capacity))
		}
	}
	nR := uint64(len(a.Regions))
	nO := uint64(len(a.Ptr.Objects))
	// Offsets are interned into a dense domain.
	offIdx := make(map[int64]uint64)
	var offs []int64
	for _, e := range a.AccessEdges {
		if _, ok := offIdx[e.Off]; !ok {
			offIdx[e.Off] = uint64(len(offs))
			offs = append(offs, e.Off)
		}
	}
	R := p.Domain("R", nR)
	O := p.Domain("O", nO)
	N := p.Domain("N", uint64(len(offs)))

	region := p.Relation("region", R.At(0))
	parent := p.Relation("parent", R.At(0), R.At(1))
	leq := p.Relation("leq", R.At(0), R.At(1))
	regionPair := p.Relation("regionPair", R.At(0), R.At(1))
	own := p.Relation("own", R.At(0), O.At(0))
	access := p.Relation("access", O.At(0), N.At(0), O.At(1))
	objectPair := p.Relation("objectPair", O.At(0), N.At(0), O.At(1))

	for i := range a.Regions {
		region.Add(uint64(i))
		if i != RootRegion {
			parent.Add(uint64(i), uint64(a.Regions[i].Parent))
		}
	}
	// φ⁼: regions own themselves (as objects) plus their allocations.
	for i := 1; i < len(a.Regions); i++ {
		if a.Regions[i].Obj >= 0 {
			own.Add(uint64(i), uint64(a.Regions[i].Obj))
		}
	}
	// Sorted object order keeps the BDD insertion sequence (and so the
	// kernel's cache/node counters in the report) deterministic.
	objs := make([]int, 0, len(a.Owner))
	for obj := range a.Owner {
		objs = append(objs, obj)
	}
	sort.Ints(objs)
	for _, obj := range objs {
		for _, r := range a.Owner[obj] {
			own.Add(uint64(r), uint64(obj))
		}
	}
	// Non-region, non-allocated objects belong to the root (storage,
	// strings, malloc'ed memory) — only the ones that actually appear
	// as access targets matter.
	for _, e := range a.AccessEdges {
		if _, isRegion := a.regionOf[e.Dst]; !isRegion {
			if _, owned := a.Owner[e.Dst]; !owned {
				own.Add(uint64(RootRegion), uint64(e.Dst))
			}
		}
		access.Add(uint64(e.Src), offIdx[e.Off], uint64(e.Dst))
	}

	// Stratum 1: the subregion partial order (semi-naive, as bddbddb
	// evaluates recursive rules). Each stratum gets its own span so
	// traces show which of the three fixpoints dominates.
	sctx, s1 := trace.StartSpan(ctx, "pairs.stratum:leq")
	p.SolveSemiNaive(sctx, []*datalog.Rule{
		datalog.NewRule(datalog.T(leq, "x", "x"), datalog.T(region, "x")),
		datalog.NewRule(datalog.T(leq, "x", "y"), datalog.T(parent, "x", "y")),
		datalog.NewRule(datalog.T(leq, "x", "z"), datalog.T(leq, "x", "y"), datalog.T(parent, "y", "z")),
	}, 0)
	s1.End()
	// Stratum 2: complement (safe, stratified negation).
	sctx, s2 := trace.StartSpan(ctx, "pairs.stratum:regionPair")
	p.Solve(sctx, []*datalog.Rule{
		datalog.NewRule(datalog.T(regionPair, "x", "y"),
			datalog.T(region, "x"), datalog.T(region, "y"), datalog.N(leq, "x", "y")),
	}, 0)
	s2.End()
	// Stratum 3: the verification join.
	sctx, s3 := trace.StartSpan(ctx, "pairs.stratum:objectPair")
	p.Solve(sctx, []*datalog.Rule{
		datalog.NewRule(datalog.T(objectPair, "o1", "n", "o2"),
			datalog.T(regionPair, "x", "y"),
			datalog.T(own, "x", "o1"),
			datalog.T(own, "y", "o2"),
			datalog.T(access, "o1", "n", "o2")),
	}, 0)
	s3.End()

	// Expose the engine's final footprint and kernel counters to the
	// pipeline metrics (the pairs phase reports them as bdd_nodes /
	// datalog_tuples / bdd_cache_* keys).
	a.bddNodes = int64(p.NodeCount())
	a.bddTuples = int64(p.TupleCount())
	a.bddStats = p.M.Stats()

	var out []ObjectPair
	objectPair.Each(func(t []uint64) bool {
		e := AccessEdge{Src: int(t[0]), Off: offs[t[1]], Dst: int(t[2])}
		if p, bad := a.checkEdge(e); bad {
			out = append(out, p)
		}
		return true
	})
	sortPairs(out)
	return out
}
