package core

import (
	"context"
	"sort"
	"sync"

	"repro/internal/datalog"
	"repro/internal/trace"
)

// computeObjectPairsBDD runs the inconsistency computation on the
// BDD-backed Datalog engine, mirroring the paper's bddbddb rules
// (Section 5.3.2):
//
//	leq(x, x)    :- region(x).
//	leq(x, y)    :- parent(x, y).
//	leq(x, z)    :- leq(x, y), parent(y, z).
//	regionPair(x, y) :- region(x), region(y), !leq(x, y).
//	objectPair(o1, n, o2) :- regionPair(x, y), own(x, o1), own(y, o2),
//	                         access(o1, n, o2).
//
// The result is identical to the explicit backend (asserted by tests);
// the two differ only in how the relations are stored and joined.
//
// With Solver.Workers > 1 the strata are split across two BDD
// managers and the independent parts run concurrently: manager A
// solves the region strata (leq closure + regionPair complement)
// while manager B loads the much larger own/access relations; the
// regionPair result is then translated into B's encoding by
// deterministic tuple enumeration and the verification join runs on
// B. Each manager is single-owner throughout — the kernel is never
// shared between goroutines — and both the tuple sets and the
// enumeration order are schedule-independent, so the object pairs (and
// so the report) are byte-identical to the single-manager solve.
func (a *Analysis) computeObjectPairsBDD(ctx context.Context) []ObjectPair {
	if len(a.AccessEdges) == 0 {
		return nil
	}
	// Offsets are interned into a dense domain.
	offIdx := make(map[int64]uint64)
	var offs []int64
	for _, e := range a.AccessEdges {
		if _, ok := offIdx[e.Off]; !ok {
			offIdx[e.Off] = uint64(len(offs))
			offs = append(offs, e.Off)
		}
	}
	if a.Opts.Solver.Workers > 1 {
		return a.objectPairsBDDSharded(ctx, offIdx, offs)
	}

	p := datalog.NewProgramConfig(a.Opts.Solver.BDD)
	if sp := trace.SpanFromContext(ctx); sp != nil {
		p.M.OnEvent = func(kind string, nodes, capacity int) {
			sp.Event("bdd_"+kind, trace.Int("nodes", nodes), trace.Int("capacity", capacity))
		}
	}
	rr := a.declareRegionRels(p)
	or := a.declareObjectRels(p, len(offs))
	a.loadRegionRels(rr)
	a.loadObjectRels(or, offIdx)
	a.solveRegionStrata(ctx, p, rr)
	// Stratum boundary: all live state is back in relations, so this is
	// a reorder/GC safe point before the (largest) verification join.
	p.ReorderIfEnabled()
	p.CollectIfPressured()
	a.solveObjectStratum(ctx, p, rr.regionPair, or)

	// Expose the engine's final footprint and kernel counters to the
	// pipeline metrics (the pairs phase reports them as bdd_nodes /
	// datalog_tuples / bdd_cache_* keys).
	a.bddNodes = int64(p.NodeCount())
	a.bddTuples = int64(p.TupleCount())
	a.bddStats = p.M.Stats()

	return a.collectObjectPairs(or, offs)
}

// regionRels are the relations of the region strata (manager A's half
// of the sharded solve).
type regionRels struct {
	region, parent, leq, regionPair *datalog.Relation
}

// objectRels are the relations of the verification join (manager B's
// half).
type objectRels struct {
	// regionPair mirrors the region strata's result in this manager's
	// encoding (the same *Relation on the single-manager path).
	regionPair  *datalog.Relation
	own, access *datalog.Relation
	objectPair  *datalog.Relation
}

func (a *Analysis) declareRegionRels(p *datalog.Program) regionRels {
	R := p.Domain("R", uint64(len(a.Regions)))
	return regionRels{
		region:     p.Relation("region", R.At(0)),
		parent:     p.Relation("parent", R.At(0), R.At(1)),
		leq:        p.Relation("leq", R.At(0), R.At(1)),
		regionPair: p.Relation("regionPair", R.At(0), R.At(1)),
	}
}

func (a *Analysis) declareObjectRels(p *datalog.Program, nOffs int) objectRels {
	// Lookup instead of redeclaring R on the single-manager path.
	var R *datalog.LogicalDomain
	if reg := p.Lookup("region"); reg != nil {
		R = reg.Attrs()[0].Dom
	} else {
		R = p.Domain("R", uint64(len(a.Regions)))
	}
	O := p.Domain("O", uint64(len(a.Ptr.Objects)))
	N := p.Domain("N", uint64(nOffs))
	or := objectRels{
		own:        p.Relation("own", R.At(0), O.At(0)),
		access:     p.Relation("access", O.At(0), N.At(0), O.At(1)),
		objectPair: p.Relation("objectPair", O.At(0), N.At(0), O.At(1)),
	}
	if reg := p.Lookup("regionPair"); reg != nil {
		or.regionPair = reg
	} else {
		or.regionPair = p.Relation("regionPair", R.At(0), R.At(1))
	}
	return or
}

func (a *Analysis) loadRegionRels(rr regionRels) {
	for i := range a.Regions {
		rr.region.Add(uint64(i))
		if i != RootRegion {
			rr.parent.Add(uint64(i), uint64(a.Regions[i].Parent))
		}
	}
}

func (a *Analysis) loadObjectRels(or objectRels, offIdx map[int64]uint64) {
	// φ⁼: regions own themselves (as objects) plus their allocations.
	for i := 1; i < len(a.Regions); i++ {
		if a.Regions[i].Obj >= 0 {
			or.own.Add(uint64(i), uint64(a.Regions[i].Obj))
		}
	}
	// Sorted object order keeps the BDD insertion sequence (and so the
	// kernel's cache/node counters in the report) deterministic.
	objs := make([]int, 0, len(a.Owner))
	for obj := range a.Owner {
		objs = append(objs, obj)
	}
	sort.Ints(objs)
	for _, obj := range objs {
		for _, r := range a.Owner[obj] {
			or.own.Add(uint64(r), uint64(obj))
		}
	}
	// Non-region, non-allocated objects belong to the root (storage,
	// strings, malloc'ed memory) — only the ones that actually appear
	// as access targets matter.
	for _, e := range a.AccessEdges {
		if _, isRegion := a.regionOf[e.Dst]; !isRegion {
			if _, owned := a.Owner[e.Dst]; !owned {
				or.own.Add(uint64(RootRegion), uint64(e.Dst))
			}
		}
		or.access.Add(uint64(e.Src), offIdx[e.Off], uint64(e.Dst))
	}
}

// solveRegionStrata runs strata 1 and 2 — the subregion closure and
// its stratified complement.
func (a *Analysis) solveRegionStrata(ctx context.Context, p *datalog.Program, rr regionRels) {
	// Stratum 1: the subregion partial order (semi-naive, as bddbddb
	// evaluates recursive rules). Each stratum gets its own span so
	// traces show which of the three fixpoints dominates.
	sctx, s1 := trace.StartSpan(ctx, "pairs.stratum:leq")
	p.SolveSemiNaive(sctx, regionLeqRules(rr), 0)
	s1.End()
	// Stratum 2: complement (safe, stratified negation).
	sctx, s2 := trace.StartSpan(ctx, "pairs.stratum:regionPair")
	p.Solve(sctx, regionPairRules(rr), 0)
	s2.End()
}

// solveObjectStratum runs stratum 3, the verification join.
func (a *Analysis) solveObjectStratum(ctx context.Context, p *datalog.Program, regionPair *datalog.Relation, or objectRels) {
	sctx, s3 := trace.StartSpan(ctx, "pairs.stratum:objectPair")
	p.Solve(sctx, []*datalog.Rule{objectPairRule(regionPair, or)}, 0)
	s3.End()
}

func (a *Analysis) collectObjectPairs(or objectRels, offs []int64) []ObjectPair {
	var out []ObjectPair
	or.objectPair.Each(func(t []uint64) bool {
		e := AccessEdge{Src: int(t[0]), Off: offs[t[1]], Dst: int(t[2])}
		if p, bad := a.checkEdge(e); bad {
			out = append(out, p)
		}
		return true
	})
	sortPairs(out)
	return out
}

// objectPairsBDDSharded is the Workers > 1 path: two single-owner BDD
// managers working concurrently, joined by deterministic tuple
// translation. See computeObjectPairsBDD for the argument that the
// result is identical.
func (a *Analysis) objectPairsBDDSharded(ctx context.Context, offIdx map[int64]uint64, offs []int64) []ObjectPair {
	pA := datalog.NewProgramConfig(a.Opts.Solver.BDD)
	pB := datalog.NewProgramConfig(a.Opts.Solver.BDD)
	if sp := trace.SpanFromContext(ctx); sp != nil {
		// The tracer is mutex-protected, so both managers may emit
		// concurrently; the shard tag says which one grew.
		for tag, p := range map[string]*datalog.Program{"A": pA, "B": pB} {
			tag := tag
			p.M.OnEvent = func(kind string, nodes, capacity int) {
				sp.Event("bdd_"+kind,
					trace.Int("nodes", nodes), trace.Int("capacity", capacity),
					trace.Str("shard", tag))
			}
		}
	}
	rr := a.declareRegionRels(pA)
	or := a.declareObjectRels(pB, len(offs))

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		a.loadRegionRels(rr)
		a.solveRegionStrata(ctx, pA, rr)
	}()
	go func() {
		defer wg.Done()
		a.loadObjectRels(or, offIdx)
	}()
	wg.Wait()

	// Join point: translate the regionPair summary from manager A's
	// encoding to manager B's. Each enumerates tuples in a fixed
	// (value-sorted) order, so the copy is deterministic.
	rr.regionPair.Each(func(t []uint64) bool {
		or.regionPair.Add(t...)
		return true
	})
	// Same stratum-boundary safe point as the single-manager path, on
	// the manager that runs the verification join.
	pB.ReorderIfEnabled()
	pB.CollectIfPressured()
	a.solveObjectStratum(ctx, pB, or.regionPair, or)

	// The footprint/counter outputs sum both managers. (They are
	// phase metrics, not analysis results: the canonical report never
	// includes them, and they legitimately differ from the
	// single-manager solve's.)
	a.bddNodes = int64(pA.NodeCount() + pB.NodeCount())
	a.bddTuples = int64(pA.TupleCount() + pB.TupleCount())
	sA, sB := pA.M.Stats(), pB.M.Stats()
	a.bddStats = sA
	a.bddStats.CacheHits += sB.CacheHits
	a.bddStats.CacheMisses += sB.CacheMisses
	a.bddStats.UniqueCollisions += sB.UniqueCollisions
	a.bddStats.Grows += sB.Grows
	a.bddStats.PeakNodes += sB.PeakNodes
	a.bddStats.Collections += sB.Collections
	a.bddStats.NodesFreed += sB.NodesFreed
	a.bddStats.SweepWallNS += sB.SweepWallNS
	a.bddStats.Reorders += sB.Reorders
	a.bddStats.ReorderSwaps += sB.ReorderSwaps

	return a.collectObjectPairs(or, offs)
}
