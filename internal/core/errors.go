package core

import (
	"errors"
	"fmt"
)

// ErrorKind classifies an analysis failure.
type ErrorKind int

// Error kinds.
const (
	// ErrInternal is an unexpected failure inside the analyzer
	// (including context cancellation, which stays reachable through
	// errors.Is via Unwrap). The zero value, so an Error built without
	// an explicit kind reports internal.
	ErrInternal ErrorKind = iota
	// ErrParse is a front-end failure: lexing, parsing, or type
	// checking rejected the input sources.
	ErrParse
	// ErrResolve is a resolution failure: an entry function or other
	// named root does not exist in the program.
	ErrResolve
	// ErrConfig is an invalid Options value or request shape
	// (Options.Validate failures, duplicate source paths, unreadable
	// inputs).
	ErrConfig
	// ErrOverload is an admission-control rejection: the analysis
	// service's worker pool and queue are full, or the request's
	// deadline expired while it waited for a slot.
	ErrOverload
	// ErrSnapshotGone is a failed delta request: the base snapshot the
	// request named has been evicted or was never computed. The request
	// itself is well formed — retrying with full sources succeeds.
	ErrSnapshotGone
)

// String names the kind.
func (k ErrorKind) String() string {
	switch k {
	case ErrParse:
		return "parse"
	case ErrResolve:
		return "resolve"
	case ErrConfig:
		return "config"
	case ErrOverload:
		return "overload"
	case ErrSnapshotGone:
		return "snapshot_gone"
	default:
		return "internal"
	}
}

// Error is the typed failure returned from every exported analysis
// entry point. The message text is unchanged from the untyped errors
// earlier releases returned; callers that matched on strings keep
// working, and callers can now branch on Kind with errors.As, or with
// errors.Is against a kind-only sentinel:
//
//	var aerr *core.Error
//	if errors.As(err, &aerr) && aerr.Kind == core.ErrOverload { ... }
//	if errors.Is(err, &core.Error{Kind: core.ErrOverload}) { ... }
type Error struct {
	// Kind classifies the failure.
	Kind ErrorKind
	// Pos is the source position ("file.c:3:4") when known, else "".
	Pos string
	// Msg is the human-readable message.
	Msg string
	// Err is the wrapped cause, when there is one (an os error, a
	// context cancellation); reachable through errors.Unwrap.
	Err error
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Msg != "" {
		return e.Msg
	}
	if e.Err != nil {
		return e.Err.Error()
	}
	return e.Kind.String() + " error"
}

// Unwrap exposes the cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// Is lets a kind-only Error act as a sentinel: errors.Is(err,
// &Error{Kind: ErrOverload}) matches any overload error regardless of
// message and position.
func (e *Error) Is(target error) bool {
	t, ok := target.(*Error)
	if !ok {
		return false
	}
	if t.Msg != "" && t.Msg != e.Msg {
		return false
	}
	if t.Pos != "" && t.Pos != e.Pos {
		return false
	}
	return t.Kind == e.Kind
}

// Errf builds an Error with a formatted message. pos may be empty.
func Errf(kind ErrorKind, pos, format string, args ...interface{}) *Error {
	return &Error{Kind: kind, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// WrapError attaches a kind to an existing error, preserving its
// message text. A nil err stays nil and an error that already is (or
// wraps) an *Error is returned unchanged, so double-wrapping at layer
// boundaries is harmless.
func WrapError(kind ErrorKind, err error) error {
	if err == nil {
		return nil
	}
	var typed *Error
	if errors.As(err, &typed) {
		return err
	}
	return &Error{Kind: kind, Msg: err.Error(), Err: err}
}
