package core

import "sync"

// parallelFor runs fn(i) for every i in [0, n), fanning out over
// `workers` goroutines when workers > 1 and n > 1, and inline
// otherwise. Work is handed out in contiguous chunks so neighboring
// iterations (which usually touch neighboring data) stay on one
// worker. fn must only write to per-index slots; callers get
// determinism by merging those slots in index order afterwards.
func parallelFor(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}
