package core

import (
	"strings"
	"testing"
)

// run analyzes a single source file with default options.
func run(t *testing.T, src string) *Analysis {
	t.Helper()
	return runOpts(t, Options{}, src)
}

func runOpts(t *testing.T, opts Options, src string) *Analysis {
	t.Helper()
	a, err := AnalyzeSource(opts, map[string]string{"test.c": src})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return a
}

// rcPrelude declares the RC-style region interface of the paper's toy
// language (Section 4.1).
const rcPrelude = `
typedef struct region_t region_t;
extern region_t *rnew(region_t *parent);
extern void *ralloc(region_t *r);
extern void deleteregion(region_t *r);
`

// aprPrelude declares the Figure 6 APR pools interface.
const aprPrelude = `
typedef struct apr_pool_t apr_pool_t;
typedef long apr_status_t;
typedef unsigned long apr_size_t;
typedef apr_status_t (*cleanup_t)(void *data);
extern apr_status_t apr_pool_create(apr_pool_t **newp, apr_pool_t *parent);
extern void *apr_palloc(apr_pool_t *p, apr_size_t size);
extern void *apr_pcalloc(apr_pool_t *p, apr_size_t size);
extern void apr_pool_clear(apr_pool_t *p);
extern void apr_pool_destroy(apr_pool_t *p);
extern void apr_pool_cleanup_register(apr_pool_t *p, const void *data, cleanup_t plain_cleanup, cleanup_t child_cleanup);
`

// --- Figure 1: the connection/request example (consistent) ---

func TestFigure1ConsistentHierarchy(t *testing.T) {
	a := run(t, rcPrelude+`
struct conn_t { int fd; };
struct req_t { struct conn_t *connection; };
int main(void) {
    region_t *r;
    region_t *subr;
    struct conn_t *conn;
    struct req_t *req;
    r = rnew(NULL);
    conn = ralloc(r);
    subr = rnew(r);
    req = ralloc(subr);
    req->connection = conn;
    return 0;
}`)
	if n := len(a.Report.Warnings); n != 0 {
		t.Fatalf("consistent Figure 1 produced %d warnings:\n%s", n, a.Report)
	}
	if a.Report.Stats.R != 2 {
		t.Fatalf("R = %d, want 2", a.Report.Stats.R)
	}
	if a.Report.Stats.H != 2 {
		t.Fatalf("H = %d, want 2", a.Report.Stats.H)
	}
	// The access relation has the req->connection edge.
	if a.Report.Stats.Heap != 1 {
		t.Fatalf("heap = %d, want 1", a.Report.Stats.Heap)
	}
}

// --- Figure 2: the four subregion relations ---

func TestFigure2CaseA_SameRegion(t *testing.T) {
	a := run(t, rcPrelude+`
struct obj { struct obj *p; };
int main(void) {
    region_t *r;
    struct obj *o1;
    struct obj *o2;
    r = rnew(NULL);
    o1 = ralloc(r);
    o2 = ralloc(r);
    o2->p = o1;
    return 0;
}`)
	if len(a.Report.Warnings) != 0 {
		t.Fatalf("intra-region pointer flagged:\n%s", a.Report)
	}
}

func TestFigure2CaseB_HolderInSubregion(t *testing.T) {
	a := run(t, rcPrelude+`
struct obj { struct obj *p; };
int main(void) {
    region_t *r1;
    region_t *r2;
    struct obj *o1;
    struct obj *o2;
    r1 = rnew(NULL);
    r2 = rnew(r1);
    o1 = ralloc(r1);
    o2 = ralloc(r2);
    o2->p = o1;
    return 0;
}`)
	if len(a.Report.Warnings) != 0 {
		t.Fatalf("safe inter-region pointer (r2 < r1) flagged:\n%s", a.Report)
	}
}

func TestFigure2CaseC_SiblingsUnrelated(t *testing.T) {
	a := run(t, rcPrelude+`
struct obj { struct obj *p; };
int main(void) {
    region_t *r1;
    region_t *r2;
    struct obj *o1;
    struct obj *o2;
    r1 = rnew(NULL);
    r2 = rnew(NULL);
    o1 = ralloc(r1);
    o2 = ralloc(r2);
    o2->p = o1;
    return 0;
}`)
	ws := a.Report.Warnings
	if len(ws) != 1 {
		t.Fatalf("sibling-region pointer: %d warnings, want 1:\n%s", len(ws), a.Report)
	}
	if !ws[0].High() {
		t.Fatal("unrelated-region pointer should be high-ranked")
	}
}

func TestFigure2CaseD_PointeeInSubregion(t *testing.T) {
	a := run(t, rcPrelude+`
struct obj { struct obj *p; };
int main(void) {
    region_t *r1;
    region_t *r2;
    struct obj *o1;
    struct obj *o2;
    r2 = rnew(NULL);
    r1 = rnew(r2);
    o1 = ralloc(r1);
    o2 = ralloc(r2);
    o2->p = o1;
    return 0;
}`)
	ws := a.Report.Warnings
	if len(ws) != 1 {
		t.Fatalf("inverted hierarchy: %d warnings, want 1:\n%s", len(ws), a.Report)
	}
	// Owner regions are related (r1 < r2), just in the wrong
	// direction, so the Section 5.4 heuristic ranks this low.
	if ws[0].High() {
		t.Fatal("related-but-inverted pair should not be high-ranked by the paper's heuristic")
	}
}

// --- Figure 3: aliasing makes may-subregion unsound ---

func TestFigure3AliasingInconsistency(t *testing.T) {
	a := run(t, rcPrelude+`
struct obj { struct obj *f; };
int main(int P, int Q) {
    region_t *r0;
    region_t *r1;
    region_t *r;
    region_t *r2;
    struct obj *o1;
    struct obj *o2;
    r0 = rnew(NULL);
    r1 = rnew(NULL);
    o1 = ralloc(r1);
    if (P) r = r0;
    if (Q) r = r1;
    r2 = rnew(r);
    o2 = ralloc(r2);
    o2->f = o1;
    return 0;
}`)
	// r2's candidate parents are {r0, r1}; the join collapses it to
	// the root, so r2 has no partial order with r1 and the o2->f
	// pointer must be reported.
	if len(a.Report.Warnings) == 0 {
		t.Fatalf("Figure 3 inconsistency missed:\n%s", a.Report)
	}
	// Verify the collapse actually happened: some region has two
	// candidates and root parent.
	found := false
	for _, r := range a.Regions {
		if len(r.Cands) == 2 && r.Parent == RootRegion {
			found = true
		}
	}
	if !found {
		t.Fatal("multi-parent region not collapsed to root join")
	}
}

// --- Figure 5: flow-insensitive false warning on intra-region pointer ---

func TestFigure5FalseWarning(t *testing.T) {
	a := run(t, rcPrelude+`
struct obj { struct obj *f; };
int main(int c) {
    region_t *p;
    region_t *q;
    struct obj *o1;
    struct obj *o2;
    if (c) p = rnew(NULL); else p = rnew(NULL);
    q = rnew(p);
    o1 = ralloc(p);
    o2 = ralloc(q);
    o2->f = o1;
    return 0;
}`)
	// The program is actually consistent (whichever region p refers
	// to, q is its subregion), but the flow-insensitive analysis
	// cannot prove it: Figure 5(a) documents this false warning.
	if len(a.Report.Warnings) == 0 {
		t.Fatalf("expected the documented Figure 5 false warning:\n%s", a.Report)
	}
}

// --- Figure 9: Subversion hash-table/iterator inconsistency ---

const figure9Source = aprPrelude + `
typedef struct apr_hash_t apr_hash_t;
typedef struct apr_hash_index_t apr_hash_index_t;

struct apr_hash_index_t { apr_hash_t *ht; };
struct apr_hash_t { apr_hash_index_t iterator; int count; };

/* apr/tables/apr_hash.c: Figure 9(c) */
apr_hash_t * apr_hash_make_impl(apr_pool_t *pool) {
    apr_hash_t *ht;
    ht = apr_palloc(pool, sizeof(struct apr_hash_t));
    return ht;
}
apr_hash_index_t * apr_hash_first(apr_pool_t *pool, apr_hash_t *ht) {
    apr_hash_index_t *hi;
    if (pool)
        hi = apr_palloc(pool, sizeof(*hi));
    else
        hi = &ht->iterator;
    hi->ht = ht;
    return hi;
}

/* libsvn_subr: svn_pool_create wrapper */
apr_pool_t * svn_pool_create_impl(apr_pool_t *parent) {
    apr_pool_t *pool;
    apr_pool_create(&pool, parent);
    return pool;
}

/* libsvn_subr/xml.c: Figure 9(b) */
void svn_xml_make_open_tag_hash(apr_pool_t *pool, apr_hash_t *ht) {
    apr_hash_index_t *hi;
    for (hi = apr_hash_first(pool, ht); hi; hi = NULL) {
    }
}

/* libsvn_subr/xml.c: Figure 9(a) */
void svn_xml_make_open_tag_v(apr_pool_t *pool) {
    apr_pool_t *subpool;
    apr_hash_t *ht;
    subpool = svn_pool_create_impl(pool);
    ht = apr_hash_make_impl(subpool);
    svn_xml_make_open_tag_hash(pool, ht);
    apr_pool_destroy(subpool);
}

int main(void) {
    apr_pool_t *pool;
    apr_pool_create(&pool, NULL);
    svn_xml_make_open_tag_v(pool);
    return 0;
}
`

func TestFigure9HashIteratorInconsistency(t *testing.T) {
	a := run(t, figure9Source)
	// The iterator hi (allocated in the parent pool) holds hi->ht
	// pointing into subpool: pool has no subregion order with subpool
	// in the required direction -> warning.
	if len(a.Report.Warnings) == 0 {
		t.Fatalf("Figure 9 inconsistency missed:\n%s", a.Report)
	}
	// The fix from the paper: pass NULL so the iterator lives
	// intrusively in the hash table.
	fixed := strings.Replace(figure9Source,
		"for (hi = apr_hash_first(pool, ht); hi; hi = NULL)",
		"for (hi = apr_hash_first(NULL, ht); hi; hi = NULL)", 1)
	af, err := AnalyzeSource(Options{}, map[string]string{"test.c": fixed})
	if err != nil {
		t.Fatalf("analyze fixed: %v", err)
	}
	if n := len(af.Report.Warnings); n != 0 {
		t.Fatalf("fixed Figure 9 still has %d warnings:\n%s", n, af.Report)
	}
}

func TestFigure9AlternativeFixSubpool(t *testing.T) {
	// The paper's first fix: pass subpool instead of pool to
	// svn_xml_make_open_tag_hash.
	fixed := strings.Replace(figure9Source,
		"svn_xml_make_open_tag_hash(pool, ht);",
		"svn_xml_make_open_tag_hash(subpool, ht);", 1)
	a, err := AnalyzeSource(Options{}, map[string]string{"test.c": fixed})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if n := len(a.Report.Warnings); n != 0 {
		t.Fatalf("subpool fix still has %d warnings:\n%s", n, a.Report)
	}
}

// --- Figure 10: temporary inconsistency ---

func TestFigure10TemporaryInconsistency(t *testing.T) {
	a := run(t, aprPrelude+`
typedef struct apr_hash_t apr_hash_t;
apr_hash_t * apr_hash_make(apr_pool_t *p);
struct svn_wc_adm_access_t { apr_hash_t *set; };
typedef struct svn_wc_adm_access_t svn_wc_adm_access_t;

svn_wc_adm_access_t * adm_access_alloc(apr_pool_t *pool) {
    return apr_palloc(pool, sizeof(svn_wc_adm_access_t));
}

void do_open(apr_pool_t *pool, svn_wc_adm_access_t *associated,
             int write_lock, int levels_to_lock) {
    svn_wc_adm_access_t *lock;
    apr_pool_t *subpool;
    apr_pool_create(&subpool, pool);
    if (write_lock) lock = adm_access_alloc(pool);
    else lock = adm_access_alloc(pool);
    if (levels_to_lock != 0) {
        if (associated) lock->set = apr_hash_make(subpool);
        if (associated) { lock->set = associated->set; }
    }
    if (associated) lock->set = associated->set;
    apr_pool_destroy(subpool);
}

int main(void) {
    apr_pool_t *pool;
    apr_pool_create(&pool, NULL);
    do_open(pool, NULL, 1, 1);
    return 0;
}`)
	// lock (in pool) temporarily holds a hash table from subpool; the
	// flow-insensitive analysis reports it, as the paper documents.
	if len(a.Report.Warnings) == 0 {
		t.Fatalf("Figure 10 temporary inconsistency not reported:\n%s", a.Report)
	}
}

// --- Section 6.2: the make_error_internal false positive ---

func TestMakeErrorInternalFalsePositive(t *testing.T) {
	a := run(t, aprPrelude+`
struct svn_error_t { struct svn_error_t *child; apr_pool_t *pool; };
typedef struct svn_error_t svn_error_t;

svn_error_t * make_error_internal(svn_error_t *child) {
    apr_pool_t *pool;
    svn_error_t *new_error;
    if (child)
        pool = child->pool;
    else
        apr_pool_create(&pool, NULL);
    new_error = apr_pcalloc(pool, sizeof(*new_error));
    new_error->child = child;
    new_error->pool = pool;
    return new_error;
}

int main(void) {
    apr_pool_t *p0;
    svn_error_t *e1;
    svn_error_t *e2;
    apr_pool_create(&p0, NULL);
    e1 = apr_pcalloc(p0, sizeof(*e1));
    e1->pool = p0;
    e2 = make_error_internal(e1);
    return 0;
}`)
	// The code is actually consistent (pool aliases child->pool when
	// child != NULL), but the path-insensitive analysis must warn —
	// the documented Section 6.2 false positive requiring path
	// sensitivity to eliminate.
	if len(a.Report.Warnings) == 0 {
		t.Fatalf("expected the documented Section 6.2 false positive:\n%s", a.Report)
	}
}

// --- Figure 12: Apache vs Subversion XML parser creation ---

func TestFigure12ApacheParserConsistent(t *testing.T) {
	a := run(t, aprPrelude+`
struct apr_xml_parser { void *xp; };
typedef struct apr_xml_parser apr_xml_parser;
extern void *XML_ParserCreate(void *enc);
long cleanup_parser(void *data) { return 0; }

apr_xml_parser * apr_xml_parser_create(apr_pool_t *pool) {
    apr_xml_parser *parser;
    parser = apr_pcalloc(pool, sizeof(*parser));
    parser->xp = XML_ParserCreate(NULL);
    apr_pool_cleanup_register(pool, parser, cleanup_parser, cleanup_parser);
    return parser;
}

struct client { apr_xml_parser *parser; };
int main(void) {
    apr_pool_t *pool;
    struct client *c;
    apr_pool_create(&pool, NULL);
    c = apr_palloc(pool, sizeof(struct client));
    c->parser = apr_xml_parser_create(pool);
    return 0;
}`)
	if n := len(a.Report.Warnings); n != 0 {
		t.Fatalf("Apache-style parser (same pool) flagged %d warnings:\n%s", n, a.Report)
	}
}

func TestFigure12SubversionParserInconsistent(t *testing.T) {
	a := run(t, aprPrelude+`
struct svn_xml_parser_t { void *xp; };
typedef struct svn_xml_parser_t svn_xml_parser_t;
extern void *XML_ParserCreate(void *enc);

svn_xml_parser_t * svn_xml_make_parser(apr_pool_t *pool) {
    svn_xml_parser_t *svn_parser;
    apr_pool_t *subpool;
    apr_pool_create(&subpool, pool);
    svn_parser = apr_pcalloc(subpool, sizeof(*svn_parser));
    return svn_parser;
}

/* libsvn_wc/log.c:run_log */
struct log_runner { svn_xml_parser_t *parser; };
int main(void) {
    apr_pool_t *pool;
    struct log_runner *loggy;
    svn_xml_parser_t *parser;
    apr_pool_create(&pool, NULL);
    loggy = apr_pcalloc(pool, sizeof(*loggy));
    parser = svn_xml_make_parser(pool);
    loggy->parser = parser;
    return 0;
}`)
	// loggy (in pool) accesses the parser (in subpool): RegionWiz
	// "reports a warning for every such use" (Section 6.4).
	if len(a.Report.Warnings) == 0 {
		t.Fatalf("Figure 12 Subversion parser inconsistency missed:\n%s", a.Report)
	}
}
