package core

import (
	"reflect"
	"testing"

	"repro/internal/workloads"
)

// TestKCFACapAnalysisTerminates drives the contexts package's k-CFA
// cap-overflow path through the whole pipeline: with a cap far below
// the program's context demand the analysis must still terminate, two
// runs must produce identical reports (overflow merging is
// hashString(cs) % cap — a pure function of the call string, so the
// numbering cannot depend on iteration order), and both backends must
// agree under the capped numbering.
func TestKCFACapAnalysisTerminates(t *testing.T) {
	pkg := workloads.Generate(workloads.Spec{
		Name: "kcap", Exes: 1, Stages: 2, Depth: 3, Fanout: 2,
		Interface: "apr",
		Plants:    []workloads.Pattern{workloads.SiblingLeak, workloads.IteratorEscape},
	}, 7)
	sources := pkg.SourcesFor(pkg.Exes[0])

	opts := Options{KCFA: 2, ContextCap: 2}
	run := func(backend Backend) *Analysis {
		o := opts
		o.Backend = backend
		a, err := AnalyzeSource(o, sources)
		if err != nil {
			t.Fatalf("backend %d: %v", backend, err)
		}
		return a
	}

	first := run(ExplicitBackend)
	if first.Report.Stats.Contexts == 0 {
		t.Fatal("no contexts counted")
	}
	if !first.Numbering.Capped {
		t.Fatal("cap never overflowed; the test is not exercising the merge path")
	}
	again := run(ExplicitBackend)
	if !reflect.DeepEqual(first.Report.Warnings, again.Report.Warnings) {
		t.Fatalf("capped k-CFA analysis nondeterministic:\n%v\nvs\n%v",
			first.Report.Warnings, again.Report.Warnings)
	}
	bdd := run(BDDBackend)
	if !reflect.DeepEqual(first.PairSites(), bdd.PairSites()) {
		t.Fatalf("backend disparity under capped k-CFA:\n%v\nvs\n%v",
			first.PairSites(), bdd.PairSites())
	}
}
