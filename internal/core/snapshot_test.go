package core

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
)

// stableReport renders a report with the volatile stats (wall times,
// per-phase metrics) stripped, for comparing runs that took different
// paths to the same answer.
func stableReport(t *testing.T, r *Report) string {
	t.Helper()
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	var m map[string]interface{}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("unmarshal report: %v", err)
	}
	stats := m["stats"].(map[string]interface{})
	delete(stats, "time_ms")
	delete(stats, "phases")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("remarshal report: %v", err)
	}
	return string(out)
}

// incrSources is a two-file program: lib.c defines helpers, main.c
// drives them. Edits to main.c's body leave lib.c untouched.
func incrSources(body string) map[string]string {
	return map[string]string{
		"lib.c": rcPrelude + `
struct conn_t { int fd; struct conn_t *next; };
struct conn_t *mkconn(region_t *r) {
    struct conn_t *c;
    c = ralloc(r);
    return c;
}
void conn_link(struct conn_t *x, struct conn_t *y) {
    x->next = y;
}`,
		"main.c": rcPrelude + `
struct conn_t;
extern struct conn_t *mkconn(region_t *r);
extern void conn_link(struct conn_t *x, struct conn_t *y);
int main(void) {
    region_t *r;
    region_t *subr;
    struct conn_t *a;
    struct conn_t *b;
    r = rnew(NULL);
    subr = rnew(r);
    a = mkconn(r);
    b = mkconn(subr);
` + body + `
    return 0;
}`,
	}
}

func TestIncrementalBodyEditMatchesFromScratch(t *testing.T) {
	ctx := context.Background()
	_, snap, err := AnalyzeSourceSnapshot(ctx, Options{}, incrSources("conn_link(a, b);"))
	if err != nil {
		t.Fatalf("base analyze: %v", err)
	}

	edited := incrSources("conn_link(b, a);") // flips the inconsistency direction
	inc, _, err := AnalyzeIncremental(ctx, Options{}, snap,
		map[string]string{"main.c": edited["main.c"]}, nil)
	if err != nil {
		t.Fatalf("incremental analyze: %v", err)
	}
	full, _, err := AnalyzeSourceSnapshot(ctx, Options{}, edited)
	if err != nil {
		t.Fatalf("from-scratch analyze: %v", err)
	}

	if got, want := stableReport(t, inc.Report), stableReport(t, full.Report); got != want {
		t.Fatalf("incremental report differs from from-scratch:\nincremental: %s\nfull:        %s", got, want)
	}
	f := inc.Front
	if f.ParseReused != 1 || f.ParseParsed != 1 {
		t.Fatalf("parse reuse = %d/%d, want 1 reused / 1 parsed", f.ParseReused, f.ParseParsed)
	}
	if f.CheckReused != 1 || f.CheckChecked != 1 {
		t.Fatalf("check reuse = %d/%d, want 1 reused / 1 checked", f.CheckReused, f.CheckChecked)
	}
	if f.LowerReused != 1 || f.LowerLowered != 1 {
		t.Fatalf("lower reuse = %d/%d, want 1 reused / 1 lowered", f.LowerReused, f.LowerLowered)
	}
	if !f.CallGraphDirect {
		t.Fatalf("call graph took the fixpoint path on a direct-call program")
	}
	// The reuse counters surface in the report's phase outputs.
	var parse *PhaseStat
	for i := range inc.Report.Stats.Phases {
		if inc.Report.Stats.Phases[i].Name == PhaseParse {
			parse = &inc.Report.Stats.Phases[i]
		}
	}
	if parse == nil || parse.Outputs["parse_files_reused"] != 1 {
		t.Fatalf("parse phase outputs missing reuse counter: %+v", parse)
	}
}

func TestIncrementalSignatureChangeFallsBack(t *testing.T) {
	ctx := context.Background()
	base := incrSources("conn_link(a, b);")
	_, snap, err := AnalyzeSourceSnapshot(ctx, Options{}, base)
	if err != nil {
		t.Fatalf("base analyze: %v", err)
	}

	// Adding a function changes main.c's declaration signature: the
	// checker must rerun over everything, but parses are still reused.
	edited := map[string]string{
		"lib.c": base["lib.c"],
		"main.c": base["main.c"] + `
int helper(void) { return 1; }`,
	}
	inc, _, err := AnalyzeIncremental(ctx, Options{}, snap,
		map[string]string{"main.c": edited["main.c"]}, nil)
	if err != nil {
		t.Fatalf("incremental analyze: %v", err)
	}
	full, _, err := AnalyzeSourceSnapshot(ctx, Options{}, edited)
	if err != nil {
		t.Fatalf("from-scratch analyze: %v", err)
	}
	if got, want := stableReport(t, inc.Report), stableReport(t, full.Report); got != want {
		t.Fatalf("fallback report differs from from-scratch:\n%s\nvs\n%s", got, want)
	}
	f := inc.Front
	if f.ParseReused != 1 {
		t.Fatalf("parse reuse = %d, want 1", f.ParseReused)
	}
	if f.CheckReused != 0 || f.CheckChecked != 2 {
		t.Fatalf("check reuse = %d/%d, want full fallback (0 reused / 2 checked)", f.CheckReused, f.CheckChecked)
	}
	if f.LowerReused != 0 {
		t.Fatalf("lower reused %d fragments across a declaration change", f.LowerReused)
	}
}

func TestIncrementalAddAndRemoveFile(t *testing.T) {
	ctx := context.Background()
	base := incrSources("conn_link(a, b);")
	_, snap, err := AnalyzeSourceSnapshot(ctx, Options{}, base)
	if err != nil {
		t.Fatalf("base analyze: %v", err)
	}

	extra := rcPrelude + `
int unused_helper(void) { return 2; }`
	inc, snap2, err := AnalyzeIncremental(ctx, Options{}, snap,
		map[string]string{"extra.c": extra}, nil)
	if err != nil {
		t.Fatalf("add-file analyze: %v", err)
	}
	want := map[string]string{"lib.c": base["lib.c"], "main.c": base["main.c"], "extra.c": extra}
	full, _, err := AnalyzeSourceSnapshot(ctx, Options{}, want)
	if err != nil {
		t.Fatalf("from-scratch analyze: %v", err)
	}
	if got, wantS := stableReport(t, inc.Report), stableReport(t, full.Report); got != wantS {
		t.Fatalf("add-file report differs from from-scratch")
	}

	// Removing it again returns to the base program.
	inc2, _, err := AnalyzeIncremental(ctx, Options{}, snap2, nil, []string{"extra.c"})
	if err != nil {
		t.Fatalf("remove-file analyze: %v", err)
	}
	fullBase, _, err := AnalyzeSourceSnapshot(ctx, Options{}, base)
	if err != nil {
		t.Fatalf("from-scratch base analyze: %v", err)
	}
	if got, wantS := stableReport(t, inc2.Report), stableReport(t, fullBase.Report); got != wantS {
		t.Fatalf("remove-file report differs from from-scratch")
	}
}

func TestIncrementalOptionMismatchRejected(t *testing.T) {
	ctx := context.Background()
	_, snap, err := AnalyzeSourceSnapshot(ctx, Options{}, incrSources("conn_link(a, b);"))
	if err != nil {
		t.Fatalf("base analyze: %v", err)
	}
	_, _, err = AnalyzeIncremental(ctx, Options{ContextCap: 1}, snap, nil, nil)
	if !errors.Is(err, &Error{Kind: ErrConfig}) {
		t.Fatalf("options mismatch returned %v, want ErrConfig", err)
	}
	_, _, err = AnalyzeIncremental(ctx, Options{}, snap, nil, []string{"lib.c", "main.c"})
	if !errors.Is(err, &Error{Kind: ErrConfig}) {
		t.Fatalf("empty source set returned %v, want ErrConfig", err)
	}
}
