package cminor

import (
	"fmt"
	"sort"
)

// VarObject is a resolved variable (global, parameter, or local).
type VarObject struct {
	Name   string
	Type   Type
	Global bool
	Param  bool
	Decl   *VarDecl // nil for parameters
	Func   *FuncDecl
}

// FuncObject is a resolved function.
type FuncObject struct {
	Name     string
	Type     *FuncType
	Decl     *FuncDecl // the defining decl if any, else the first prototype
	Implicit bool      // called without any declaration (C89 style)
}

// EnumConst is a named enum constant.
type EnumConst struct {
	Name  string
	Value int64
	Enum  string // tag of the declaring enum
}

// FieldInfo resolves one FieldAccess expression.
type FieldInfo struct {
	Struct *StructType
	Field  *Field
}

// FuncInfo lists a function's parameters and locals in declaration
// order for the IR lowering.
type FuncInfo struct {
	Obj    *FuncObject
	Params []*VarObject
	Locals []*VarObject
}

// Info is the checker's output: type and symbol resolution for one
// program (possibly several files).
type Info struct {
	Types    map[Expr]Type
	Uses     map[*Ident]interface{} // *VarObject or *FuncObject
	Fields   map[*FieldAccess]FieldInfo
	Structs  map[string]*StructType
	Typedefs map[string]Type
	Funcs    map[string]*FuncObject
	Globals  map[string]*VarObject
	Enums    map[string]*EnumConst // by constant name
	FuncInfo map[*FuncDecl]*FuncInfo
	// Sizeofs records the byte size each sizeof expression yields.
	Sizeofs map[Expr]int64
	Errors  []*Error
}

// FuncNames returns the defined and declared function names, sorted.
func (info *Info) FuncNames() []string {
	names := make([]string, 0, len(info.Funcs))
	for n := range info.Funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

type checker struct {
	info   *Info
	scopes []map[string]*VarObject
	cur    *FuncInfo

	laying map[string]bool // struct layout cycle detection
}

// Check resolves and type-checks the given files as one program.
// It always returns an Info; Info.Errors collects diagnostics.
func Check(files ...*File) *Info {
	c := newChecker()
	c.declPasses(files)
	c.bodyPass(files)
	return c.info
}

func newChecker() *checker {
	return &checker{
		info: &Info{
			Types:    make(map[Expr]Type),
			Uses:     make(map[*Ident]interface{}),
			Fields:   make(map[*FieldAccess]FieldInfo),
			Structs:  make(map[string]*StructType),
			Typedefs: make(map[string]Type),
			Funcs:    make(map[string]*FuncObject),
			Globals:  make(map[string]*VarObject),
			Enums:    make(map[string]*EnumConst),
			FuncInfo: make(map[*FuncDecl]*FuncInfo),
			Sizeofs:  make(map[Expr]int64),
		},
		laying: make(map[string]bool),
	}
}

// declPasses runs passes 1-3: the whole-program declaration
// environment, including global initializer expressions.
func (c *checker) declPasses(files []*File) {
	// Pass 1: struct tags and typedefs (typedefs resolve in order).
	for _, f := range files {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *StructDecl:
				c.declareStruct(d)
			case *EnumDecl:
				c.declareEnum(d)
			case *TypedefDecl:
				c.info.Typedefs[d.Name] = c.resolve(d.Type, d.Pos)
			}
		}
	}
	// Pass 2: layout every defined struct.
	var tags []string
	for tag := range c.info.Structs {
		tags = append(tags, tag)
	}
	sort.Strings(tags)
	for _, tag := range tags {
		c.layoutStruct(tag, Pos{})
	}
	// Pass 3: functions and globals (signatures first so forward calls
	// resolve).
	for _, f := range files {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *FuncDecl:
				c.declareFunc(d)
			case *VarDecl:
				c.declareGlobal(d)
			}
		}
	}
}

// bodyPass runs pass 4: function bodies.
func (c *checker) bodyPass(files []*File) {
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*FuncDecl); ok && fd.Body != nil {
				c.checkFuncBody(fd)
			}
		}
	}
}

func (c *checker) errorf(pos Pos, format string, args ...interface{}) {
	if len(c.info.Errors) < 200 {
		c.info.Errors = append(c.info.Errors, errf(pos, format, args...))
	}
}

func (c *checker) declareStruct(d *StructDecl) {
	st, ok := c.info.Structs[d.Name]
	if !ok {
		st = &StructType{Name: d.Name, Union: d.Union, Opaque: true}
		c.info.Structs[d.Name] = st
	}
	if d.Opaque {
		return
	}
	if len(d.Fields) > 0 {
		if !st.Opaque {
			c.errorf(d.Pos, "struct %s redefined", d.Name)
			return
		}
		st.Opaque = false
		st.Union = d.Union
		for _, fd := range d.Fields {
			st.Fields = append(st.Fields, Field{Name: fd.Name, Type: c.resolve(fd.Type, fd.Pos)})
		}
	}
}

// declareEnum registers an enum's constants, evaluating values with
// C's previous+1 default.
func (c *checker) declareEnum(d *EnumDecl) {
	next := int64(0)
	for _, item := range d.Items {
		v := next
		if item.Value != nil {
			ev, ok := c.constEval(item.Value)
			if !ok {
				c.errorf(item.Pos, "enumerator %s value is not a constant expression", item.Name)
			} else {
				v = ev
			}
		}
		if _, dup := c.info.Enums[item.Name]; dup {
			c.errorf(item.Pos, "enumerator %s redeclared", item.Name)
		}
		c.info.Enums[item.Name] = &EnumConst{Name: item.Name, Value: v, Enum: d.Name}
		next = v + 1
	}
}

// constEval evaluates integer constant expressions (enum values, case
// labels).
func (c *checker) constEval(e Expr) (int64, bool) {
	switch e := e.(type) {
	case *IntLit:
		return e.V, true
	case *Ident:
		if ec, ok := c.info.Enums[e.Name]; ok {
			return ec.Value, true
		}
	case *Unary:
		v, ok := c.constEval(e.X)
		if !ok {
			return 0, false
		}
		switch e.Op {
		case Minus:
			return -v, true
		case Tilde:
			return ^v, true
		case Not:
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
	case *Binary:
		x, okx := c.constEval(e.X)
		y, oky := c.constEval(e.Y)
		if !okx || !oky {
			return 0, false
		}
		switch e.Op {
		case Plus:
			return x + y, true
		case Minus:
			return x - y, true
		case Star:
			return x * y, true
		case Slash:
			if y != 0 {
				return x / y, true
			}
		case Percent:
			if y != 0 {
				return x % y, true
			}
		case Pipe:
			return x | y, true
		case Amp:
			return x & y, true
		case Caret:
			return x ^ y, true
		}
	}
	return 0, false
}

// layoutStruct computes the layout of the named struct, recursing into
// embedded struct fields with cycle detection.
func (c *checker) layoutStruct(tag string, pos Pos) {
	st := c.info.Structs[tag]
	if st == nil || st.Opaque || st.size > 0 {
		return
	}
	if c.laying[tag] {
		c.errorf(pos, "struct %s embeds itself (use a pointer)", tag)
		return
	}
	c.laying[tag] = true
	for _, f := range st.Fields {
		if inner, ok := baseStruct(f.Type); ok {
			c.layoutStruct(inner.Name, pos)
		}
	}
	st.layOut()
	delete(c.laying, tag)
}

// baseStruct unwraps arrays to find a directly-embedded struct type.
func baseStruct(t Type) (*StructType, bool) {
	for {
		switch tt := t.(type) {
		case *ArrayType:
			t = tt.Elem
		case *StructType:
			return tt, true
		default:
			return nil, false
		}
	}
}

// resolve turns a syntactic type into a semantic one.
func (c *checker) resolve(te TypeExpr, pos Pos) Type {
	switch te := te.(type) {
	case *NameTE:
		switch te.Name {
		case "int":
			return TypeInt
		case "char":
			return TypeChar
		case "long":
			return TypeLong
		case "unsigned":
			return TypeUInt
		case "void":
			return TypeVoid
		}
		if t, ok := c.info.Typedefs[te.Name]; ok {
			return t
		}
		c.errorf(pos, "unknown type %q", te.Name)
		return TypeInt
	case *structDefTE:
		c.declareStruct(te.def)
		c.layoutStruct(te.Name, pos)
		return c.structRef(te.Name, te.Union)
	case *enumDefTE:
		// Items may already be declared by pass 1; declareEnum guards
		// duplicates only by name, so re-declaration of the same decl
		// is skipped.
		if _, seen := c.info.Enums[firstEnumItem(te.def)]; !seen {
			c.declareEnum(te.def)
		}
		return TypeInt
	case *EnumTE:
		return TypeInt
	case *StructTE:
		return c.structRef(te.Name, te.Union)
	case *PtrTE:
		return &PtrType{Elem: c.resolve(te.Elem, pos)}
	case *ArrayTE:
		return &ArrayType{Elem: c.resolve(te.Elem, pos), N: te.N}
	case *FuncTE:
		ft := &FuncType{Ret: c.resolve(te.Ret, pos), Variadic: te.Variadic}
		for _, p := range te.Params {
			ft.Params = append(ft.Params, c.resolve(p, pos))
		}
		return ft
	}
	c.errorf(pos, "unresolvable type")
	return TypeInt
}

func firstEnumItem(d *EnumDecl) string {
	if len(d.Items) > 0 {
		return d.Items[0].Name
	}
	return ""
}

func (c *checker) structRef(tag string, union bool) *StructType {
	if st, ok := c.info.Structs[tag]; ok {
		return st
	}
	st := &StructType{Name: tag, Union: union, Opaque: true}
	c.info.Structs[tag] = st
	return st
}

func (c *checker) declareFunc(d *FuncDecl) {
	ft := &FuncType{Ret: c.resolve(d.Ret, d.Pos), Variadic: d.Variadic}
	for _, p := range d.Params {
		ft.Params = append(ft.Params, c.resolve(p.Type, p.Pos))
	}
	if prev, ok := c.info.Funcs[d.Name]; ok {
		// Later definition supersedes prototype.
		if d.Body != nil {
			if prev.Decl != nil && prev.Decl.Body != nil {
				c.errorf(d.Pos, "function %s redefined", d.Name)
				return
			}
			prev.Decl = d
			prev.Type = ft
			prev.Implicit = false
		}
		return
	}
	c.info.Funcs[d.Name] = &FuncObject{Name: d.Name, Type: ft, Decl: d}
}

func (c *checker) declareGlobal(d *VarDecl) {
	if prev, ok := c.info.Globals[d.Name]; ok {
		// C extern declarations and tentative definitions: merging is
		// fine as long as at most one declaration initializes.
		if d.Init != nil {
			if prev.Decl != nil && prev.Decl.Init != nil {
				c.errorf(d.Pos, "global %s initialized twice", d.Name)
				return
			}
			prev.Decl = d
			c.checkExpr(d.Init)
		}
		return
	}
	obj := &VarObject{Name: d.Name, Type: c.resolve(d.Type, d.Pos), Global: true, Decl: d}
	c.info.Globals[d.Name] = obj
	if d.Init != nil {
		c.checkExpr(d.Init)
	}
}

// --- scopes ---

func (c *checker) pushScope() { c.scopes = append(c.scopes, make(map[string]*VarObject)) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) define(obj *VarObject, pos Pos) {
	top := c.scopes[len(c.scopes)-1]
	if _, ok := top[obj.Name]; ok {
		c.errorf(pos, "%s redeclared in this scope", obj.Name)
	}
	top[obj.Name] = obj
}

func (c *checker) lookupVar(name string) *VarObject {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if obj, ok := c.scopes[i][name]; ok {
			return obj
		}
	}
	return c.info.Globals[name]
}

// --- function bodies ---

func (c *checker) checkFuncBody(fd *FuncDecl) {
	obj := c.info.Funcs[fd.Name]
	fi := &FuncInfo{Obj: obj}
	c.info.FuncInfo[fd] = fi
	c.cur = fi
	c.pushScope()
	for i, p := range fd.Params {
		name := p.Name
		if name == "" {
			name = fmt.Sprintf("__arg%d", i)
		}
		v := &VarObject{Name: name, Type: obj.Type.Params[i], Param: true, Func: fd}
		fi.Params = append(fi.Params, v)
		c.define(v, p.Pos)
	}
	c.checkBlock(fd.Body)
	c.popScope()
	c.cur = nil
}

func (c *checker) checkBlock(b *Block) {
	c.pushScope()
	for _, s := range b.Stmts {
		c.checkStmt(s)
	}
	c.popScope()
}

func (c *checker) checkStmt(s Stmt) {
	switch s := s.(type) {
	case *Block:
		c.checkBlock(s)
	case *DeclStmt:
		d := s.Decl
		obj := &VarObject{Name: d.Name, Type: c.resolve(d.Type, d.Pos), Decl: d, Func: c.cur.Obj.Decl}
		c.cur.Locals = append(c.cur.Locals, obj)
		c.define(obj, d.Pos)
		if d.Init != nil {
			c.checkExpr(d.Init)
		}
	case *ExprStmt:
		c.checkExpr(s.X)
	case *If:
		c.checkExpr(s.Cond)
		c.checkStmt(s.Then)
		if s.Else != nil {
			c.checkStmt(s.Else)
		}
	case *While:
		c.checkExpr(s.Cond)
		c.checkStmt(s.Body)
	case *For:
		c.pushScope()
		if s.Init != nil {
			c.checkStmt(s.Init)
		}
		if s.Cond != nil {
			c.checkExpr(s.Cond)
		}
		if s.Post != nil {
			c.checkExpr(s.Post)
		}
		c.checkStmt(s.Body)
		c.popScope()
	case *Switch:
		c.checkExpr(s.Cond)
		for i := range s.Cases {
			cs := &s.Cases[i]
			for _, v := range cs.Values {
				c.checkExpr(v)
				if _, ok := c.constEval(v); !ok {
					c.errorf(ExprPos(v), "case label is not a constant expression")
				}
			}
			c.pushScope()
			for _, st := range cs.Body {
				c.checkStmt(st)
			}
			c.popScope()
		}
	case *Return:
		if s.X != nil {
			c.checkExpr(s.X)
		}
	case *Break, *Continue, *Empty:
	default:
		c.errorf(s.stmtPos(), "unsupported statement")
	}
}

// checkExpr types an expression, recording the result in Info.Types.
func (c *checker) checkExpr(e Expr) Type {
	t := c.typeOf(e)
	c.info.Types[e] = t
	return t
}

func (c *checker) typeOf(e Expr) Type {
	switch e := e.(type) {
	case *Ident:
		if v := c.lookupVar(e.Name); v != nil {
			c.info.Uses[e] = v
			return v.Type
		}
		if ec, ok := c.info.Enums[e.Name]; ok {
			c.info.Uses[e] = ec
			return TypeInt
		}
		if f, ok := c.info.Funcs[e.Name]; ok {
			c.info.Uses[e] = f
			return &PtrType{Elem: f.Type}
		}
		c.errorf(e.Pos, "undeclared identifier %q", e.Name)
		// Define it as an int global so downstream phases have an
		// object; C compilers issue the same courtesy.
		v := &VarObject{Name: e.Name, Type: TypeInt, Global: true}
		c.info.Globals[e.Name] = v
		c.info.Uses[e] = v
		return v.Type
	case *IntLit:
		if e.V > 1<<31-1 || e.V < -(1<<31) {
			return TypeLong
		}
		return TypeInt
	case *StrLit:
		return &PtrType{Elem: TypeChar}
	case *Null:
		return TypeVoidPtr
	case *Unary:
		xt := c.checkExpr(e.X)
		switch e.Op {
		case Star:
			if elem, ok := Deref(xt); ok {
				return elem
			}
			c.errorf(e.Pos, "cannot dereference %s", xt)
			return TypeInt
		case Amp:
			return &PtrType{Elem: xt}
		case Not:
			return TypeInt
		case Inc, Dec:
			return xt
		default: // Minus, Tilde
			return xt
		}
	case *Postfix:
		return c.checkExpr(e.X)
	case *Binary:
		xt := c.checkExpr(e.X)
		yt := c.checkExpr(e.Y)
		switch e.Op {
		case Eq, Neq, Lt, Gt, Le, Ge, AndAnd, OrOr:
			return TypeInt
		case Plus, Minus:
			// Pointer arithmetic keeps the pointer type.
			if IsPointer(xt) {
				return xt
			}
			if IsPointer(yt) {
				return yt
			}
			return xt
		default:
			return xt
		}
	case *AssignExpr:
		lt := c.checkExpr(e.LHS)
		c.checkExpr(e.RHS)
		return lt
	case *CondExpr:
		c.checkExpr(e.Cond)
		tt := c.checkExpr(e.Then)
		et := c.checkExpr(e.Else)
		if IsPointer(tt) {
			return tt
		}
		if IsPointer(et) {
			return et
		}
		return tt
	case *Call:
		// Direct call to an undeclared function: implicit declaration.
		if id, ok := e.Fun.(*Ident); ok {
			if c.lookupVar(id.Name) == nil {
				if _, ok := c.info.Funcs[id.Name]; !ok {
					c.info.Funcs[id.Name] = &FuncObject{
						Name:     id.Name,
						Type:     &FuncType{Ret: TypeInt, Variadic: true},
						Implicit: true,
					}
				}
			}
		}
		ft := c.funcTypeOf(c.checkExpr(e.Fun), e.Pos)
		for _, a := range e.Args {
			c.checkExpr(a)
		}
		if ft == nil {
			return TypeInt
		}
		if !ft.Variadic && len(e.Args) != len(ft.Params) {
			c.errorf(e.Pos, "call has %d args, function takes %d", len(e.Args), len(ft.Params))
		}
		return ft.Ret
	case *Index:
		xt := c.checkExpr(e.X)
		c.checkExpr(e.I)
		if elem, ok := Deref(xt); ok {
			return elem
		}
		c.errorf(e.Pos, "cannot index %s", xt)
		return TypeInt
	case *FieldAccess:
		xt := c.checkExpr(e.X)
		st := xt
		if e.Arrow {
			elem, ok := Deref(xt)
			if !ok {
				c.errorf(e.Pos, "-> on non-pointer %s", xt)
				return TypeInt
			}
			st = elem
		}
		sty, ok := st.(*StructType)
		if !ok {
			c.errorf(e.Pos, "field access on non-struct %s", st)
			return TypeInt
		}
		if sty.Opaque {
			c.errorf(e.Pos, "field access on opaque %s", sty)
			return TypeInt
		}
		f := sty.FieldByName(e.Name)
		if f == nil {
			c.errorf(e.Pos, "%s has no field %q", sty, e.Name)
			return TypeInt
		}
		c.info.Fields[e] = FieldInfo{Struct: sty, Field: f}
		return f.Type
	case *Cast:
		c.checkExpr(e.X)
		return c.resolve(e.Type, e.Pos)
	case *SizeofType:
		t := c.resolve(e.Type, e.Pos)
		c.info.Sizeofs[e] = t.Size()
		return TypeLong
	case *SizeofExpr:
		t := c.checkExpr(e.X)
		c.info.Sizeofs[e] = t.Size()
		return TypeLong
	}
	c.errorf(e.exprPos(), "unsupported expression")
	return TypeInt
}

// funcTypeOf extracts a callable signature from t.
func (c *checker) funcTypeOf(t Type, pos Pos) *FuncType {
	switch t := t.(type) {
	case *FuncType:
		return t
	case *PtrType:
		if ft, ok := t.Elem.(*FuncType); ok {
			return ft
		}
	}
	c.errorf(pos, "called object has type %s, not a function", t)
	return nil
}
