package cminor

import (
	"fmt"
	"strings"
)

// This file is the checker's incremental seam. A re-analysis that
// changed only function bodies does not need to re-resolve the world:
// the declaration environment (structs, typedefs, enums, globals,
// function signatures) is unchanged, so the facts for unchanged files
// stay valid and only the changed files' bodies need re-checking.
//
// The contract is signature-based: DeclSignature renders everything
// about a file that other files (or later declarations in the same
// file) can observe — every top-level declaration minus function
// bodies, positions excluded. Two versions of a file with equal
// signatures declare identical environments, so checking only the
// changed bodies against the previous environment gives the same
// answers as a full re-check.
//
// CheckIncremental returns a *partial* Info: the per-name environment
// maps (Structs, Typedefs, Funcs, Globals, Enums) are complete copies,
// but the per-AST-node fact maps (Types, Uses, Fields, Sizeofs,
// FuncInfo) cover only the re-checked declarations. That is exactly
// what the IR lowering needs, because unchanged files are not
// re-lowered either — their cached IR fragments are reused (see
// ir.Fragment). Nothing downstream of lowering reads the per-node
// maps.

// DeclSignature renders a file's externally visible declarations in a
// canonical form: every top-level declaration with positions stripped
// and function bodies omitted. Global initializer expressions and
// parameter names are included — both can influence analysis output
// (initializers through the synthetic init function, parameter names
// through warning messages). Two files with equal signatures are
// interchangeable as far as every *other* file's checking and
// lowering is concerned.
func DeclSignature(f *File) string {
	var sb strings.Builder
	for _, d := range f.Decls {
		sigDecl(&sb, d)
	}
	return sb.String()
}

func sigDecl(sb *strings.Builder, d Decl) {
	switch d := d.(type) {
	case *StructDecl:
		fmt.Fprintf(sb, "struct %s u=%t o=%t{", d.Name, d.Union, d.Opaque)
		for _, fd := range d.Fields {
			sb.WriteString(fd.Name)
			sb.WriteByte(':')
			sigType(sb, fd.Type)
			sb.WriteByte(';')
		}
		sb.WriteString("}\n")
	case *EnumDecl:
		fmt.Fprintf(sb, "enum %s{", d.Name)
		for _, item := range d.Items {
			sb.WriteString(item.Name)
			sb.WriteByte('=')
			sigExpr(sb, item.Value)
			sb.WriteByte(';')
		}
		sb.WriteString("}\n")
	case *TypedefDecl:
		fmt.Fprintf(sb, "typedef %s=", d.Name)
		sigType(sb, d.Type)
		sb.WriteByte('\n')
	case *VarDecl:
		fmt.Fprintf(sb, "var %s:", d.Name)
		sigType(sb, d.Type)
		sb.WriteByte('=')
		sigExpr(sb, d.Init)
		sb.WriteByte('\n')
	case *FuncDecl:
		fmt.Fprintf(sb, "func %s x=%t v=%t def=%t(", d.Name, d.Extern, d.Variadic, d.Body != nil)
		for _, p := range d.Params {
			sb.WriteString(p.Name)
			sb.WriteByte(':')
			sigType(sb, p.Type)
			sb.WriteByte(',')
		}
		sb.WriteString(")->")
		sigType(sb, d.Ret)
		sb.WriteByte('\n')
	default:
		fmt.Fprintf(sb, "?decl %T\n", d)
	}
}

func sigType(sb *strings.Builder, te TypeExpr) {
	switch te := te.(type) {
	case nil:
		sb.WriteString("<nil>")
	case *structDefTE:
		fmt.Fprintf(sb, "structdef(%s,%t){", te.Name, te.Union)
		for _, fd := range te.def.Fields {
			sb.WriteString(fd.Name)
			sb.WriteByte(':')
			sigType(sb, fd.Type)
			sb.WriteByte(';')
		}
		sb.WriteByte('}')
	case *enumDefTE:
		fmt.Fprintf(sb, "enumdef(%s){", te.Name)
		for _, item := range te.def.Items {
			sb.WriteString(item.Name)
			sb.WriteByte('=')
			sigExpr(sb, item.Value)
			sb.WriteByte(';')
		}
		sb.WriteByte('}')
	case *NameTE:
		sb.WriteString(te.Name)
	case *StructTE:
		fmt.Fprintf(sb, "struct(%s,%t)", te.Name, te.Union)
	case *EnumTE:
		fmt.Fprintf(sb, "enum(%s)", te.Name)
	case *PtrTE:
		sb.WriteByte('*')
		sigType(sb, te.Elem)
	case *ArrayTE:
		fmt.Fprintf(sb, "[%d]", te.N)
		sigType(sb, te.Elem)
	case *FuncTE:
		sb.WriteString("fn(")
		for _, p := range te.Params {
			sigType(sb, p)
			sb.WriteByte(',')
		}
		fmt.Fprintf(sb, ";%t)->", te.Variadic)
		sigType(sb, te.Ret)
	default:
		fmt.Fprintf(sb, "?type %T", te)
	}
}

func sigExpr(sb *strings.Builder, e Expr) {
	switch e := e.(type) {
	case nil:
		sb.WriteByte('-')
	case *Ident:
		fmt.Fprintf(sb, "id(%s)", e.Name)
	case *IntLit:
		fmt.Fprintf(sb, "int(%d)", e.V)
	case *StrLit:
		fmt.Fprintf(sb, "str(%q)", e.V)
	case *Null:
		sb.WriteString("null")
	case *Unary:
		fmt.Fprintf(sb, "un(%d,", e.Op)
		sigExpr(sb, e.X)
		sb.WriteByte(')')
	case *Postfix:
		fmt.Fprintf(sb, "post(%d,", e.Op)
		sigExpr(sb, e.X)
		sb.WriteByte(')')
	case *Binary:
		fmt.Fprintf(sb, "bin(%d,", e.Op)
		sigExpr(sb, e.X)
		sb.WriteByte(',')
		sigExpr(sb, e.Y)
		sb.WriteByte(')')
	case *AssignExpr:
		fmt.Fprintf(sb, "asg(%d,", e.Op)
		sigExpr(sb, e.LHS)
		sb.WriteByte(',')
		sigExpr(sb, e.RHS)
		sb.WriteByte(')')
	case *CondExpr:
		sb.WriteString("cond(")
		sigExpr(sb, e.Cond)
		sb.WriteByte(',')
		sigExpr(sb, e.Then)
		sb.WriteByte(',')
		sigExpr(sb, e.Else)
		sb.WriteByte(')')
	case *Call:
		sb.WriteString("call(")
		sigExpr(sb, e.Fun)
		for _, a := range e.Args {
			sb.WriteByte(',')
			sigExpr(sb, a)
		}
		sb.WriteByte(')')
	case *Index:
		sb.WriteString("idx(")
		sigExpr(sb, e.X)
		sb.WriteByte(',')
		sigExpr(sb, e.I)
		sb.WriteByte(')')
	case *FieldAccess:
		fmt.Fprintf(sb, "fld(%s,%t,", e.Name, e.Arrow)
		sigExpr(sb, e.X)
		sb.WriteByte(')')
	case *Cast:
		sb.WriteString("cast(")
		sigType(sb, e.Type)
		sb.WriteByte(',')
		sigExpr(sb, e.X)
		sb.WriteByte(')')
	case *SizeofType:
		sb.WriteString("sizeofT(")
		sigType(sb, e.Type)
		sb.WriteByte(')')
	case *SizeofExpr:
		sb.WriteString("sizeofE(")
		sigExpr(sb, e.X)
		sb.WriteByte(')')
	default:
		fmt.Fprintf(sb, "?expr %T", e)
	}
}

// HasBodyTypeDefs reports whether any function body or global
// initializer in f contains an inline struct definition. Re-checking
// such code against an environment that already laid the struct out
// would report a spurious redefinition, so files carrying one are
// ineligible for incremental checking (a full re-check handles them
// exactly as before).
func HasBodyTypeDefs(f *File) bool {
	found := false
	seeDef := func(te TypeExpr) {
		if typeHasDef(te) {
			found = true
		}
	}
	for _, d := range f.Decls {
		switch d := d.(type) {
		case *VarDecl:
			if d.Init != nil {
				walkExpr(d.Init, seeDef)
			}
		case *FuncDecl:
			if d.Body != nil {
				walkStmt(d.Body, seeDef)
			}
		}
		if found {
			return true
		}
	}
	return false
}

// typeHasDef reports whether a type expression contains an inline
// struct or enum definition at any nesting depth.
func typeHasDef(te TypeExpr) bool {
	switch te := te.(type) {
	case *structDefTE, *enumDefTE:
		return true
	case *PtrTE:
		return typeHasDef(te.Elem)
	case *ArrayTE:
		return typeHasDef(te.Elem)
	case *FuncTE:
		if typeHasDef(te.Ret) {
			return true
		}
		for _, p := range te.Params {
			if typeHasDef(p) {
				return true
			}
		}
	}
	return false
}

// walkStmt visits every type expression reachable from a statement:
// local declaration types and the types buried in casts and sizeofs.
func walkStmt(s Stmt, seeType func(TypeExpr)) {
	switch s := s.(type) {
	case nil:
	case *Block:
		for _, st := range s.Stmts {
			walkStmt(st, seeType)
		}
	case *DeclStmt:
		seeType(s.Decl.Type)
		if s.Decl.Init != nil {
			walkExpr(s.Decl.Init, seeType)
		}
	case *ExprStmt:
		walkExpr(s.X, seeType)
	case *If:
		walkExpr(s.Cond, seeType)
		walkStmt(s.Then, seeType)
		walkStmt(s.Else, seeType)
	case *While:
		walkExpr(s.Cond, seeType)
		walkStmt(s.Body, seeType)
	case *For:
		walkStmt(s.Init, seeType)
		if s.Cond != nil {
			walkExpr(s.Cond, seeType)
		}
		if s.Post != nil {
			walkExpr(s.Post, seeType)
		}
		walkStmt(s.Body, seeType)
	case *Switch:
		walkExpr(s.Cond, seeType)
		for i := range s.Cases {
			for _, v := range s.Cases[i].Values {
				walkExpr(v, seeType)
			}
			for _, st := range s.Cases[i].Body {
				walkStmt(st, seeType)
			}
		}
	case *Return:
		if s.X != nil {
			walkExpr(s.X, seeType)
		}
	}
}

func walkExpr(e Expr, seeType func(TypeExpr)) {
	switch e := e.(type) {
	case nil:
	case *Unary:
		walkExpr(e.X, seeType)
	case *Postfix:
		walkExpr(e.X, seeType)
	case *Binary:
		walkExpr(e.X, seeType)
		walkExpr(e.Y, seeType)
	case *AssignExpr:
		walkExpr(e.LHS, seeType)
		walkExpr(e.RHS, seeType)
	case *CondExpr:
		walkExpr(e.Cond, seeType)
		walkExpr(e.Then, seeType)
		walkExpr(e.Else, seeType)
	case *Call:
		walkExpr(e.Fun, seeType)
		for _, a := range e.Args {
			walkExpr(a, seeType)
		}
	case *Index:
		walkExpr(e.X, seeType)
		walkExpr(e.I, seeType)
	case *FieldAccess:
		walkExpr(e.X, seeType)
	case *Cast:
		seeType(e.Type)
		walkExpr(e.X, seeType)
	case *SizeofType:
		seeType(e.Type)
	case *SizeofExpr:
		walkExpr(e.X, seeType)
	}
}

// HasImplicitFuncs reports whether checking recorded any C89-style
// implicit function declaration. An implicit declaration is created by
// a *call site* inside a body, so a body edit can add or remove one —
// the declaration environment then depends on bodies and the
// signature-only reuse argument no longer holds.
func HasImplicitFuncs(info *Info) bool {
	for _, fo := range info.Funcs {
		if fo.Implicit {
			return true
		}
	}
	return false
}

// CheckIncremental re-checks only the changed files of a program
// against the environment of a previous full (or incremental) check.
//
// Preconditions, enforced by the caller (see core's check phase):
// prev must be error-free, must cover the same path set, every
// changed file's DeclSignature must equal its previous version's, no
// changed file (old or new) may contain body-level type definitions
// (HasBodyTypeDefs), and prev must be free of implicit function
// declarations (HasImplicitFuncs).
//
// The returned Info never aliases prev's maps — prev stays valid as
// an immutable snapshot base, so several deltas can be checked
// against it concurrently. The per-name maps are complete copies; the
// per-node fact maps hold entries only for changed files' global
// initializers and function bodies. Retained objects (struct layouts,
// function and global objects) are shared, never mutated.
func CheckIncremental(prev *Info, files []*File, changed map[string]bool) *Info {
	c := &checker{
		info: &Info{
			Types:    make(map[Expr]Type),
			Uses:     make(map[*Ident]interface{}),
			Fields:   make(map[*FieldAccess]FieldInfo),
			Structs:  copyStrMap(prev.Structs),
			Typedefs: copyStrMap(prev.Typedefs),
			Funcs:    copyStrMap(prev.Funcs),
			Globals:  copyStrMap(prev.Globals),
			Enums:    copyStrMap(prev.Enums),
			FuncInfo: make(map[*FuncDecl]*FuncInfo),
			Sizeofs:  make(map[Expr]int64),
		},
		laying: make(map[string]bool),
	}
	for _, f := range files {
		if !changed[f.Path] {
			continue
		}
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *VarDecl:
				if d.Init != nil {
					c.checkExpr(d.Init)
				}
			case *FuncDecl:
				if d.Body != nil {
					c.checkFuncBody(d)
				}
			}
		}
	}
	return c.info
}

func copyStrMap[V any](m map[string]V) map[string]V {
	out := make(map[string]V, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
