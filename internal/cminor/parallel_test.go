package cminor

import (
	"fmt"
	"reflect"
	"testing"
)

// checkParallelFiles builds a multi-file program exercising
// cross-file references: structs and typedefs from one file used by
// bodies in others, forward calls across files, globals with
// initializers, enums, sizeof, and field access.
func checkParallelFiles(t *testing.T) []*File {
	t.Helper()
	srcs := map[string]string{
		"decls.c": `
typedef struct pool pool_t;
struct pool { struct pool *parent; int size; };
enum mode { M_READ, M_WRITE = 4, M_RW };
extern void *malloc(unsigned long n);
int limit = 128;
`,
		"mid.c": `
typedef struct pool pool_t;
struct pool;
extern void *malloc(unsigned long n);
extern int limit;
pool_t *mk(pool_t *parent);
int use(pool_t *p) { return p->size + M_RW; }
`,
		"main.c": `
typedef struct pool pool_t;
struct pool;
extern void *malloc(unsigned long n);
int use(pool_t *p);
pool_t *mk(pool_t *parent) {
    pool_t *p;
    p = malloc(sizeof(struct pool));
    p->parent = parent;
    return p;
}
int main(void) {
    pool_t *a;
    pool_t *b;
    a = mk(0);
    b = mk(a);
    return use(b);
}
`,
	}
	var files []*File
	for _, name := range []string{"decls.c", "mid.c", "main.c"} {
		f, errs := Parse(name, srcs[name])
		if len(errs) != 0 {
			t.Fatalf("parse %s: %v", name, errs)
		}
		files = append(files, f)
	}
	return files
}

// infosEqual compares two checker outputs piecewise, reporting the
// first divergence.
func infosEqual(t *testing.T, want, got *Info) {
	t.Helper()
	if len(want.Errors) != len(got.Errors) {
		t.Fatalf("errors: want %d, got %d (%v vs %v)", len(want.Errors), len(got.Errors), want.Errors, got.Errors)
	}
	for i := range want.Errors {
		if want.Errors[i].Error() != got.Errors[i].Error() {
			t.Errorf("error %d: want %q, got %q", i, want.Errors[i], got.Errors[i])
		}
	}
	pairs := []struct {
		name      string
		want, got interface{}
	}{
		{"Types", want.Types, got.Types},
		{"Uses", want.Uses, got.Uses},
		{"Fields", want.Fields, got.Fields},
		{"Sizeofs", want.Sizeofs, got.Sizeofs},
		{"FuncInfo", want.FuncInfo, got.FuncInfo},
		{"Structs", want.Structs, got.Structs},
		{"Typedefs", want.Typedefs, got.Typedefs},
		{"Funcs", want.Funcs, got.Funcs},
		{"Globals", want.Globals, got.Globals},
		{"Enums", want.Enums, got.Enums},
	}
	for _, p := range pairs {
		if !reflect.DeepEqual(p.want, p.got) {
			t.Errorf("%s differ:\nwant %v\ngot  %v", p.name, p.want, p.got)
		}
	}
}

func TestCheckParallelMatchesCheck(t *testing.T) {
	files := checkParallelFiles(t)
	want := Check(files...)
	if len(want.Errors) != 0 {
		t.Fatalf("unexpected errors: %v", want.Errors)
	}
	for _, workers := range []int{2, 4, 8} {
		infosEqual(t, want, CheckParallel(workers, files...))
	}
}

// TestCheckParallelFallbacks pins the cases where sharded checking
// must fall back to the sequential checker and still produce its exact
// output: implicit function declarations, undeclared identifiers,
// body-level type definitions, and plain type errors.
func TestCheckParallelFallbacks(t *testing.T) {
	cases := map[string][2]string{
		"implicit_func": {
			`int helper(void) { return probe(); }`,
			`int main(void) { return probe(); }`,
		},
		"undeclared_ident": {
			`int helper(void) { return mystery + 1; }`,
			`int main(void) { return mystery; }`,
		},
		"body_type_def": {
			`int helper(void) { return sizeof(struct local { int x; int y; }); }`,
			`int main(void) { return 0; }`,
		},
		"type_error": {
			`int helper(int x) { return x->bad; }`,
			`int main(void) { return helper(1, 2, 3); }`,
		},
		"body_struct_ref": {
			`int helper(void *p) { return (int)(struct never_declared *)p; }`,
			`int main(void) { return 0; }`,
		},
	}
	for name, srcs := range cases {
		t.Run(name, func(t *testing.T) {
			var files []*File
			for i, src := range srcs {
				f, errs := Parse(fmt.Sprintf("f%d.c", i), src)
				if len(errs) != 0 {
					t.Fatalf("parse: %v", errs)
				}
				files = append(files, f)
			}
			infosEqual(t, Check(files...), CheckParallel(4, files...))
		})
	}
}

func TestCheckParallelSingleFile(t *testing.T) {
	f, errs := Parse("only.c", `int main(void) { return 0; }`)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	infosEqual(t, Check(f), CheckParallel(4, f))
}
