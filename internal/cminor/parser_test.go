package cminor

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *File {
	t.Helper()
	f, errs := Parse("test.c", src)
	if len(errs) != 0 {
		t.Fatalf("parse errors: %v", errs)
	}
	return f
}

func mustCheck(t *testing.T, src string) (*File, *Info) {
	t.Helper()
	f := mustParse(t, src)
	info := Check(f)
	if len(info.Errors) != 0 {
		t.Fatalf("check errors: %v", info.Errors)
	}
	return f, info
}

func TestParseFunctionDef(t *testing.T) {
	f := mustParse(t, `
int add(int a, int b) {
    return a + b;
}`)
	if len(f.Decls) != 1 {
		t.Fatalf("%d decls, want 1", len(f.Decls))
	}
	fd, ok := f.Decls[0].(*FuncDecl)
	if !ok {
		t.Fatalf("decl is %T", f.Decls[0])
	}
	if fd.Name != "add" || len(fd.Params) != 2 || fd.Body == nil {
		t.Fatalf("bad FuncDecl: %+v", fd)
	}
	if fd.Params[0].Name != "a" || fd.Params[1].Name != "b" {
		t.Fatalf("param names: %v %v", fd.Params[0].Name, fd.Params[1].Name)
	}
}

func TestParseStructAndTypedef(t *testing.T) {
	f := mustParse(t, `
struct conn { int fd; struct conn *next; };
typedef struct pool_t pool_t;
typedef struct { int x; } anon_t;
`)
	if len(f.Decls) != 4 {
		t.Fatalf("%d decls, want 4 (struct, typedef, anon struct, typedef)", len(f.Decls))
	}
	sd := f.Decls[0].(*StructDecl)
	if sd.Name != "conn" || len(sd.Fields) != 2 {
		t.Fatalf("bad struct: %+v", sd)
	}
	if _, ok := sd.Fields[1].Type.(*PtrTE); !ok {
		t.Fatalf("next field not pointer: %T", sd.Fields[1].Type)
	}
}

func TestParseFunctionPointer(t *testing.T) {
	f := mustParse(t, `
typedef int (*cmp_t)(void *, void *);
int apply(int (*fn)(int), int x) { return fn(x); }
`)
	td := f.Decls[0].(*TypedefDecl)
	pt, ok := td.Type.(*PtrTE)
	if !ok {
		t.Fatalf("typedef not pointer: %T", td.Type)
	}
	ft, ok := pt.Elem.(*FuncTE)
	if !ok || len(ft.Params) != 2 {
		t.Fatalf("typedef not function pointer: %T", pt.Elem)
	}
	fd := f.Decls[1].(*FuncDecl)
	if fd.Name != "apply" || len(fd.Params) != 2 {
		t.Fatalf("apply: %+v", fd)
	}
	if fd.Params[0].Name != "fn" {
		t.Fatalf("fn param name = %q", fd.Params[0].Name)
	}
}

func TestParseCastVsParen(t *testing.T) {
	f := mustParse(t, `
typedef struct pool pool;
void g(void *p, int x) {
    pool *q;
    int y;
    q = (pool *)p;
    y = (x) + 1;
}`)
	fd := f.Decls[1].(*FuncDecl)
	stmts := fd.Body.Stmts
	as1 := stmts[2].(*ExprStmt).X.(*AssignExpr)
	if _, ok := as1.RHS.(*Cast); !ok {
		t.Fatalf("q = (pool*)p parsed as %T", as1.RHS)
	}
	as2 := stmts[3].(*ExprStmt).X.(*AssignExpr)
	if _, ok := as2.RHS.(*Binary); !ok {
		t.Fatalf("y = (x)+1 parsed as %T", as2.RHS)
	}
}

func TestParseControlFlow(t *testing.T) {
	f := mustParse(t, `
int fib(int n) {
    int a;
    int b;
    a = 0; b = 1;
    if (n < 0) return -1;
    while (n > 0) {
        int t;
        t = a + b;
        a = b;
        b = t;
        n = n - 1;
    }
    for (n = 0; n < 10; n++) {
        if (n == 5) break;
        else continue;
    }
    do { a++; } while (a < 3);
    return a;
}`)
	fd := f.Decls[0].(*FuncDecl)
	if fd.Body == nil || len(fd.Body.Stmts) < 7 {
		t.Fatalf("body has %d stmts", len(fd.Body.Stmts))
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	f := mustParse(t, `int g(int a, int b, int c) { return a + b * c == a && b || c; }`)
	ret := f.Decls[0].(*FuncDecl).Body.Stmts[0].(*Return)
	// ((a + (b*c)) == a && b) || c
	or, ok := ret.X.(*Binary)
	if !ok || or.Op != OrOr {
		t.Fatalf("top is %T", ret.X)
	}
	and, ok := or.X.(*Binary)
	if !ok || and.Op != AndAnd {
		t.Fatalf("lhs of || is not &&")
	}
	eq, ok := and.X.(*Binary)
	if !ok || eq.Op != Eq {
		t.Fatalf("lhs of && is not ==")
	}
	add, ok := eq.X.(*Binary)
	if !ok || add.Op != Plus {
		t.Fatalf("lhs of == is not +")
	}
	if mul, ok := add.Y.(*Binary); !ok || mul.Op != Star {
		t.Fatalf("rhs of + is not *")
	}
}

func TestParseTernaryAndSizeof(t *testing.T) {
	f := mustParse(t, `
struct big { int a[16]; };
long h(int c) { return c ? sizeof(struct big) : sizeof c; }`)
	ret := f.Decls[1].(*FuncDecl).Body.Stmts[0].(*Return)
	ce, ok := ret.X.(*CondExpr)
	if !ok {
		t.Fatalf("not ternary: %T", ret.X)
	}
	if _, ok := ce.Then.(*SizeofType); !ok {
		t.Fatalf("then not sizeof(type): %T", ce.Then)
	}
	if _, ok := ce.Else.(*SizeofExpr); !ok {
		t.Fatalf("else not sizeof expr: %T", ce.Else)
	}
}

func TestParseAPRStyleInterface(t *testing.T) {
	// The exact shape of Figure 6 from the paper.
	src := `
typedef struct apr_pool_t apr_pool_t;
typedef long apr_status_t;
typedef unsigned long apr_size_t;
typedef apr_status_t (*cleanup_t)(void *data);

extern apr_status_t apr_pool_create(apr_pool_t **newp, apr_pool_t *parent);
extern void * apr_palloc(apr_pool_t *p, apr_size_t size);
extern void * apr_pcalloc(apr_pool_t *p, apr_size_t size);
extern void apr_pool_clear(apr_pool_t *p);
extern void apr_pool_destroy(apr_pool_t *p);
extern void apr_pool_cleanup_register(apr_pool_t *p, const void *data,
                                      cleanup_t plain_cleanup, ...);
`
	f, info := mustCheck(t, src)
	_ = f
	fc := info.Funcs["apr_pool_create"]
	if fc == nil {
		t.Fatal("apr_pool_create not declared")
	}
	// First parameter is apr_pool_t**.
	p0, ok := fc.Type.Params[0].(*PtrType)
	if !ok {
		t.Fatalf("param0 is %T", fc.Type.Params[0])
	}
	if _, ok := p0.Elem.(*PtrType); !ok {
		t.Fatalf("param0 not pointer-to-pointer: %s", fc.Type.Params[0])
	}
	creg := info.Funcs["apr_pool_cleanup_register"]
	if creg == nil || !creg.Type.Variadic {
		t.Fatal("cleanup_register should be variadic")
	}
}

func TestParseErrorsRecover(t *testing.T) {
	f, errs := Parse("bad.c", `
int ok1(void) { return 1; }
int bad( { }
int ok2(void) { return 2; }
`)
	if len(errs) == 0 {
		t.Fatal("expected parse errors")
	}
	names := []string{}
	for _, d := range f.Decls {
		if fd, ok := d.(*FuncDecl); ok {
			names = append(names, fd.Name)
		}
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "ok1") || !strings.Contains(joined, "ok2") {
		t.Fatalf("recovery lost functions: %v", names)
	}
}

func TestCheckStructLayout(t *testing.T) {
	_, info := mustCheck(t, `
struct mix { char c; int i; char d; long l; };
union u { int i; long l; char c; };
struct req { struct mix m; struct req *next; };
`)
	mix := info.Structs["mix"]
	if mix.Size() != 24 {
		t.Fatalf("struct mix size = %d, want 24", mix.Size())
	}
	offsets := map[string]int64{"c": 0, "i": 4, "d": 8, "l": 16}
	for name, want := range offsets {
		if f := mix.FieldByName(name); f == nil || f.Offset != want {
			t.Fatalf("field %s offset = %v, want %d", name, f, want)
		}
	}
	u := info.Structs["u"]
	if u.Size() != 8 {
		t.Fatalf("union size = %d, want 8", u.Size())
	}
	for _, f := range u.Fields {
		if f.Offset != 0 {
			t.Fatalf("union field %s offset = %d", f.Name, f.Offset)
		}
	}
	req := info.Structs["req"]
	if req.Size() != 32 {
		t.Fatalf("struct req size = %d, want 32", req.Size())
	}
}

func TestCheckSelfEmbeddingRejected(t *testing.T) {
	f := mustParse(t, `struct s { struct s inner; };`)
	info := Check(f)
	if len(info.Errors) == 0 {
		t.Fatal("self-embedding struct not diagnosed")
	}
}

func TestCheckUndeclared(t *testing.T) {
	f := mustParse(t, `int g(void) { return nope; }`)
	info := Check(f)
	if len(info.Errors) == 0 {
		t.Fatal("undeclared identifier not diagnosed")
	}
}

func TestCheckImplicitFunctionDecl(t *testing.T) {
	_, info := func() (*File, *Info) {
		f := mustParse(t, `int g(void) { return helper(1, 2); }`)
		return f, Check(f)
	}()
	if len(info.Errors) != 0 {
		t.Fatalf("implicit call should not error: %v", info.Errors)
	}
	h := info.Funcs["helper"]
	if h == nil || !h.Implicit {
		t.Fatal("helper not implicitly declared")
	}
}

func TestCheckFieldResolution(t *testing.T) {
	f, info := mustCheck(t, `
struct conn { int fd; struct conn *peer; };
int g(struct conn *c) { return c->peer->fd; }
`)
	fd := f.Decls[1].(*FuncDecl)
	ret := fd.Body.Stmts[0].(*Return)
	outer := ret.X.(*FieldAccess)
	fi, ok := info.Fields[outer]
	if !ok || fi.Field.Name != "fd" || fi.Field.Offset != 0 {
		t.Fatalf("outer field info: %+v", fi)
	}
	inner := outer.X.(*FieldAccess)
	fi2 := info.Fields[inner]
	if fi2.Field.Name != "peer" || fi2.Field.Offset != 8 {
		t.Fatalf("inner field info: %+v", fi2)
	}
}

func TestCheckPointerTypes(t *testing.T) {
	f, info := mustCheck(t, `
void g(void) {
    char *s;
    s = "hello";
}`)
	fd := f.Decls[0].(*FuncDecl)
	as := fd.Body.Stmts[1].(*ExprStmt).X.(*AssignExpr)
	rt := info.Types[as.RHS]
	pt, ok := rt.(*PtrType)
	if !ok || pt.Elem != TypeChar {
		t.Fatalf("string literal type = %v", rt)
	}
}

func TestCheckForScope(t *testing.T) {
	_, info := mustCheck(t, `
int g(void) {
    int s;
    s = 0;
    for (int i = 0; i < 4; i++) s = s + i;
    for (int i = 9; i > 0; i--) s = s - i;
    return s;
}`)
	fi := info.FuncInfo[findFunc(info, "g")]
	if len(fi.Locals) != 3 {
		t.Fatalf("locals = %d, want 3 (s and two loop i's)", len(fi.Locals))
	}
}

func findFunc(info *Info, name string) *FuncDecl {
	return info.Funcs[name].Decl
}

func TestCheckVariadicArity(t *testing.T) {
	f := mustParse(t, `
extern int printf(const char *fmt, ...);
int g(void) { return printf("%d %d", 1, 2); }
`)
	info := Check(f)
	if len(info.Errors) != 0 {
		t.Fatalf("variadic call should check: %v", info.Errors)
	}
	f2 := mustParse(t, `
int two(int a, int b) { return a + b; }
int g(void) { return two(1); }
`)
	info2 := Check(f2)
	if len(info2.Errors) == 0 {
		t.Fatal("arity mismatch not diagnosed")
	}
}
