package cminor

import "fmt"

// Parser builds a File from tokens. It keeps a registry of typedef and
// struct names so casts can be distinguished from parenthesized
// expressions the way a C compiler does.
type Parser struct {
	lx   *Lexer
	tok  Token
	peek Token
	errs []*Error

	typedefs   map[string]bool
	lastParams []string // names from the most recent parseParamTypes
	anonCount  int
}

// Parse parses one CMinor translation unit.
func Parse(path, src string) (*File, []*Error) {
	p := &Parser{lx: NewLexer(path, src), typedefs: make(map[string]bool)}
	p.tok = p.lx.Next()
	p.peek = p.lx.Next()
	f := &File{Path: path}
	for p.tok.Kind != EOF {
		before := p.tok
		d := p.parseTopDecl()
		if d != nil {
			f.Decls = append(f.Decls, d...)
		}
		if p.tok == before && p.tok.Kind != EOF {
			// No progress: skip the offending token to avoid loops.
			p.errorf(p.tok.Pos, "unexpected %s", p.tok)
			p.next()
		}
	}
	p.errs = append(p.errs, p.lx.Errors()...)
	return f, p.errs
}

func (p *Parser) next() {
	p.tok = p.peek
	p.peek = p.lx.Next()
}

func (p *Parser) errorf(pos Pos, format string, args ...interface{}) {
	if len(p.errs) < 100 {
		p.errs = append(p.errs, errf(pos, format, args...))
	}
}

func (p *Parser) expect(k Kind) Token {
	t := p.tok
	if t.Kind != k {
		p.errorf(t.Pos, "expected %s, found %s", k, t)
		return Token{Kind: k, Pos: t.Pos}
	}
	p.next()
	return t
}

func (p *Parser) accept(k Kind) bool {
	if p.tok.Kind == k {
		p.next()
		return true
	}
	return false
}

// isTypeStart reports whether t begins a type.
func (p *Parser) isTypeStart(t Token) bool {
	switch t.Kind {
	case KwInt, KwChar, KwLong, KwUnsigned, KwVoid, KwStruct, KwUnion, KwConst, KwEnum:
		return true
	case IDENT:
		return p.typedefs[t.Text]
	}
	return false
}

// --- Declarations ---

func (p *Parser) parseTopDecl() []Decl {
	switch p.tok.Kind {
	case Semi:
		p.next()
		return nil
	case KwTypedef:
		return p.parseTypedef()
	case KwStruct, KwUnion:
		// Either a struct declaration/definition or a declaration whose
		// base type is a struct. Distinguish by what follows the tag.
		if p.peek.Kind == IDENT {
			// struct NAME { ... } ; or struct NAME ; or struct NAME decl
			return p.parseStructOrDecl()
		}
		fallthrough
	case KwEnum:
		if p.tok.Kind == KwEnum {
			return p.parseDeclaration(true)
		}
		fallthrough
	default:
		return p.parseDeclaration(true)
	}
}

func (p *Parser) parseTypedef() []Decl {
	pos := p.expect(KwTypedef).Pos
	base := p.parseTypeSpecifier()
	var decls []Decl
	// A typedef of a struct or enum definition also declares it.
	if sd, ok := pendingStruct(base); ok {
		decls = append(decls, sd)
	}
	if ed, ok := pendingEnum(base); ok {
		decls = append(decls, ed)
	}
	for {
		name, te := p.parseDeclarator(base)
		if name == "" {
			p.errorf(p.tok.Pos, "typedef requires a name")
			break
		}
		p.typedefs[name] = true
		decls = append(decls, &TypedefDecl{Pos: pos, Name: name, Type: te})
		if !p.accept(Comma) {
			break
		}
	}
	p.expect(Semi)
	return decls
}

// pendingStruct extracts a struct definition smuggled through a
// TypeExpr by parseTypeSpecifier (for "typedef struct {...} T;").
func pendingStruct(te TypeExpr) (*StructDecl, bool) {
	if s, ok := te.(*structDefTE); ok {
		return s.def, true
	}
	return nil, false
}

// structDefTE carries an inline struct definition; it behaves as a
// StructTE referencing the definition's tag.
type structDefTE struct {
	StructTE
	def *StructDecl
}

// enumDefTE carries an inline enum definition.
type enumDefTE struct {
	EnumTE
	def *EnumDecl
}

// pendingEnum extracts an enum definition smuggled through a TypeExpr.
func pendingEnum(te TypeExpr) (*EnumDecl, bool) {
	if e, ok := te.(*enumDefTE); ok {
		return e.def, true
	}
	return nil, false
}

func (p *Parser) parseStructOrDecl() []Decl {
	kw := p.tok.Kind
	union := kw == KwUnion
	startPos := p.tok.Pos
	tag := p.peek.Text
	// Three cases after "struct NAME": "{" definition, ";" forward
	// declaration, else it is the base type of a declaration.
	p.next() // struct
	p.next() // NAME
	switch p.tok.Kind {
	case LBrace:
		sd := p.parseStructBody(startPos, tag, union)
		p.expect(Semi)
		return []Decl{sd}
	case Semi:
		p.next()
		return []Decl{&StructDecl{Pos: startPos, Name: tag, Union: union, Opaque: true}}
	default:
		base := TypeExpr(&StructTE{Name: tag, Union: union})
		return p.parseDeclarationFrom(startPos, base, true)
	}
}

func (p *Parser) parseStructBody(pos Pos, tag string, union bool) *StructDecl {
	p.expect(LBrace)
	sd := &StructDecl{Pos: pos, Name: tag, Union: union}
	for p.tok.Kind != RBrace && p.tok.Kind != EOF {
		base := p.parseTypeSpecifier()
		for {
			name, te := p.parseDeclarator(base)
			if name == "" {
				p.errorf(p.tok.Pos, "struct field requires a name")
				break
			}
			sd.Fields = append(sd.Fields, FieldDecl{Pos: p.tok.Pos, Name: name, Type: te})
			if !p.accept(Comma) {
				break
			}
		}
		p.expect(Semi)
	}
	p.expect(RBrace)
	return sd
}

// parseEnumBody parses { A, B = 3, C }.
func (p *Parser) parseEnumBody(pos Pos, tag string) *EnumDecl {
	p.expect(LBrace)
	ed := &EnumDecl{Pos: pos, Name: tag}
	for p.tok.Kind != RBrace && p.tok.Kind != EOF {
		itemPos := p.tok.Pos
		name := p.expect(IDENT).Text
		var value Expr
		if p.accept(Assign) {
			value = p.parseCondExpr()
		}
		ed.Items = append(ed.Items, EnumItem{Pos: itemPos, Name: name, Value: value})
		if !p.accept(Comma) {
			break
		}
	}
	p.expect(RBrace)
	return ed
}

// parseTypeSpecifier parses the leading type of a declaration:
// builtins, struct/union references or inline definitions, typedef
// names. Qualifiers (const) and storage hints handled by callers.
func (p *Parser) parseTypeSpecifier() TypeExpr {
	for p.tok.Kind == KwConst {
		p.next()
	}
	defer func() {
		for p.tok.Kind == KwConst {
			p.next()
		}
	}()
	switch p.tok.Kind {
	case KwInt:
		p.next()
		return &NameTE{Name: "int"}
	case KwChar:
		p.next()
		return &NameTE{Name: "char"}
	case KwLong:
		p.next()
		p.accept(KwLong) // long long
		p.accept(KwInt)  // long int
		return &NameTE{Name: "long"}
	case KwUnsigned:
		p.next()
		// unsigned [int|char|long]
		switch p.tok.Kind {
		case KwChar:
			p.next()
			return &NameTE{Name: "char"}
		case KwLong:
			p.next()
			return &NameTE{Name: "long"}
		case KwInt:
			p.next()
		}
		return &NameTE{Name: "unsigned"}
	case KwVoid:
		p.next()
		return &NameTE{Name: "void"}
	case KwStruct, KwUnion:
		union := p.tok.Kind == KwUnion
		pos := p.tok.Pos
		p.next()
		tag := ""
		if p.tok.Kind == IDENT {
			tag = p.tok.Text
			p.next()
		}
		if p.tok.Kind == LBrace {
			if tag == "" {
				p.anonCount++
				tag = fmt.Sprintf("__anon%d", p.anonCount)
			}
			sd := p.parseStructBody(pos, tag, union)
			return &structDefTE{StructTE: StructTE{Name: tag, Union: union}, def: sd}
		}
		if tag == "" {
			p.errorf(pos, "anonymous struct without body")
		}
		return &StructTE{Name: tag, Union: union}
	case KwEnum:
		pos := p.tok.Pos
		p.next()
		tag := ""
		if p.tok.Kind == IDENT {
			tag = p.tok.Text
			p.next()
		}
		if p.tok.Kind == LBrace {
			if tag == "" {
				p.anonCount++
				tag = fmt.Sprintf("__anonenum%d", p.anonCount)
			}
			ed := p.parseEnumBody(pos, tag)
			return &enumDefTE{EnumTE: EnumTE{Name: tag}, def: ed}
		}
		if tag == "" {
			p.errorf(pos, "anonymous enum without body")
		}
		return &EnumTE{Name: tag}
	case IDENT:
		if p.typedefs[p.tok.Text] {
			name := p.tok.Text
			p.next()
			return &NameTE{Name: name}
		}
	}
	p.errorf(p.tok.Pos, "expected type, found %s", p.tok)
	p.next()
	return &NameTE{Name: "int"}
}

// parseDeclarator parses pointer stars, the declared name (possibly a
// parenthesized function-pointer form), and array/function suffixes.
// It returns the name ("" for abstract declarators) and the full type.
func (p *Parser) parseDeclarator(base TypeExpr) (string, TypeExpr) {
	t := base
	for p.tok.Kind == Star {
		p.next()
		for p.tok.Kind == KwConst {
			p.next()
		}
		t = &PtrTE{Elem: t}
	}
	// Function pointer: ( * name ) ( params )
	if p.tok.Kind == LParen && p.peek.Kind == Star {
		p.next() // (
		p.next() // *
		name := ""
		if p.tok.Kind == IDENT {
			name = p.tok.Text
			p.next()
		}
		p.expect(RParen)
		params, variadic := p.parseParamTypes()
		return name, &PtrTE{Elem: &FuncTE{Ret: t, Params: params, Variadic: variadic}}
	}
	name := ""
	if p.tok.Kind == IDENT {
		name = p.tok.Text
		p.next()
	}
	// Array suffixes.
	for p.tok.Kind == LBrack {
		p.next()
		n := int64(1)
		if p.tok.Kind == INTLIT {
			n = p.tok.Val
			p.next()
		}
		p.expect(RBrack)
		t = &ArrayTE{Elem: t, N: n}
	}
	// Function suffix (prototype or definition head).
	if p.tok.Kind == LParen {
		params, variadic := p.parseParamTypes()
		t = &FuncTE{Ret: t, Params: params, Variadic: variadic}
	}
	return name, t
}

// parseParamTypes parses a parenthesized parameter list. It records
// the parameter names of the OUTERMOST list parsed in p.lastParams
// (assigned on return, so nested function-pointer parameter lists do
// not clobber an in-progress outer list).
func (p *Parser) parseParamTypes() ([]TypeExpr, bool) {
	p.expect(LParen)
	var types []TypeExpr
	var names []string
	variadic := false
	switch {
	case p.tok.Kind == RParen:
		p.next()
	case p.tok.Kind == KwVoid && p.peek.Kind == RParen:
		p.next()
		p.next()
	default:
		for {
			if p.tok.Kind == Ellipsis {
				p.next()
				variadic = true
				break
			}
			base := p.parseTypeSpecifier()
			name, te := p.parseDeclarator(base)
			types = append(types, te)
			names = append(names, name)
			if !p.accept(Comma) {
				break
			}
		}
		p.expect(RParen)
	}
	p.lastParams = names
	return types, variadic
}

// parseDeclaration parses a declaration starting at the current token
// (storage specifiers, base type, declarators). top selects whether
// function bodies are allowed.
func (p *Parser) parseDeclaration(top bool) []Decl {
	pos := p.tok.Pos
	extern := false
	for p.tok.Kind == KwExtern || p.tok.Kind == KwStatic {
		extern = extern || p.tok.Kind == KwExtern
		p.next()
	}
	base := p.parseTypeSpecifier()
	var decls []Decl
	if sd, ok := pendingStruct(base); ok {
		decls = append(decls, sd)
		if p.tok.Kind == Semi {
			p.next()
			return decls
		}
	}
	if ed, ok := pendingEnum(base); ok {
		decls = append(decls, ed)
		if p.tok.Kind == Semi {
			p.next()
			return decls
		}
	}
	rest := p.parseDeclarationFrom(pos, base, top)
	// Mark externs.
	for _, d := range rest {
		if fd, ok := d.(*FuncDecl); ok && extern {
			fd.Extern = true
		}
	}
	return append(decls, rest...)
}

// parseDeclarationFrom continues a declaration whose base type is
// already parsed.
func (p *Parser) parseDeclarationFrom(pos Pos, base TypeExpr, top bool) []Decl {
	var decls []Decl
	for {
		name, te := p.parseDeclarator(base)
		if fn, ok := te.(*FuncTE); ok && name != "" {
			params := make([]Param, len(fn.Params))
			for i := range fn.Params {
				pname := ""
				if i < len(p.lastParams) {
					pname = p.lastParams[i]
				}
				params[i] = Param{Name: pname, Type: fn.Params[i], Pos: pos}
			}
			fd := &FuncDecl{Pos: pos, Name: name, Ret: fn.Ret, Params: params, Variadic: fn.Variadic}
			if p.tok.Kind == LBrace {
				if !top {
					p.errorf(p.tok.Pos, "nested function definition")
				}
				fd.Body = p.parseBlock()
				return append(decls, fd)
			}
			fd.Extern = true // prototype without body
			decls = append(decls, fd)
		} else {
			if name == "" {
				p.errorf(p.tok.Pos, "declaration requires a name")
			}
			vd := &VarDecl{Pos: pos, Name: name, Type: te}
			if p.accept(Assign) {
				vd.Init = p.parseAssignExpr()
			}
			decls = append(decls, vd)
		}
		if !p.accept(Comma) {
			break
		}
	}
	p.expect(Semi)
	return decls
}

// --- Statements ---

func (p *Parser) parseBlock() *Block {
	b := &Block{Pos: p.tok.Pos}
	p.expect(LBrace)
	for p.tok.Kind != RBrace && p.tok.Kind != EOF {
		before := p.tok
		b.Stmts = append(b.Stmts, p.parseStmt()...)
		if p.tok == before {
			p.errorf(p.tok.Pos, "unexpected %s in block", p.tok)
			p.next()
		}
	}
	p.expect(RBrace)
	return b
}

func (p *Parser) parseStmt() []Stmt {
	switch p.tok.Kind {
	case LBrace:
		return []Stmt{p.parseBlock()}
	case Semi:
		pos := p.tok.Pos
		p.next()
		return []Stmt{&Empty{Pos: pos}}
	case KwIf:
		pos := p.tok.Pos
		p.next()
		p.expect(LParen)
		cond := p.parseExpr()
		p.expect(RParen)
		then := p.parseSingleStmt()
		var els Stmt
		if p.accept(KwElse) {
			els = p.parseSingleStmt()
		}
		return []Stmt{&If{Pos: pos, Cond: cond, Then: then, Else: els}}
	case KwWhile:
		pos := p.tok.Pos
		p.next()
		p.expect(LParen)
		cond := p.parseExpr()
		p.expect(RParen)
		body := p.parseSingleStmt()
		return []Stmt{&While{Pos: pos, Cond: cond, Body: body}}
	case KwDo:
		pos := p.tok.Pos
		p.next()
		body := p.parseSingleStmt()
		p.expect(KwWhile)
		p.expect(LParen)
		cond := p.parseExpr()
		p.expect(RParen)
		p.expect(Semi)
		return []Stmt{&While{Pos: pos, Cond: cond, Body: body, DoWhile: true}}
	case KwFor:
		pos := p.tok.Pos
		p.next()
		p.expect(LParen)
		var init Stmt
		if p.tok.Kind != Semi {
			if p.isTypeStart(p.tok) {
				ds := p.parseDeclaration(false)
				if len(ds) > 0 {
					if vd, ok := ds[0].(*VarDecl); ok {
						init = &DeclStmt{Decl: vd}
					}
				}
			} else {
				e := p.parseExpr()
				init = &ExprStmt{Pos: e.exprPos(), X: e}
				p.expect(Semi)
			}
		} else {
			p.next()
		}
		var cond Expr
		if p.tok.Kind != Semi {
			cond = p.parseExpr()
		}
		p.expect(Semi)
		var post Expr
		if p.tok.Kind != RParen {
			post = p.parseExpr()
		}
		p.expect(RParen)
		body := p.parseSingleStmt()
		return []Stmt{&For{Pos: pos, Init: init, Cond: cond, Post: post, Body: body}}
	case KwSwitch:
		pos := p.tok.Pos
		p.next()
		p.expect(LParen)
		cond := p.parseExpr()
		p.expect(RParen)
		p.expect(LBrace)
		sw := &Switch{Pos: pos, Cond: cond}
		var cur *SwitchCase
		for p.tok.Kind != RBrace && p.tok.Kind != EOF {
			switch p.tok.Kind {
			case KwCase:
				cpos := p.tok.Pos
				p.next()
				v := p.parseCondExpr()
				p.expect(Colon)
				if cur == nil || len(cur.Body) > 0 || cur.Default {
					sw.Cases = append(sw.Cases, SwitchCase{Pos: cpos})
					cur = &sw.Cases[len(sw.Cases)-1]
				}
				cur.Values = append(cur.Values, v)
			case KwDefault:
				cpos := p.tok.Pos
				p.next()
				p.expect(Colon)
				sw.Cases = append(sw.Cases, SwitchCase{Pos: cpos, Default: true})
				cur = &sw.Cases[len(sw.Cases)-1]
			default:
				if cur == nil {
					p.errorf(p.tok.Pos, "statement before first case label")
					sw.Cases = append(sw.Cases, SwitchCase{Pos: p.tok.Pos, Default: true})
					cur = &sw.Cases[len(sw.Cases)-1]
				}
				before := p.tok
				cur.Body = append(cur.Body, p.parseStmt()...)
				if p.tok == before {
					p.errorf(p.tok.Pos, "unexpected %s in switch", p.tok)
					p.next()
				}
			}
		}
		p.expect(RBrace)
		return []Stmt{sw}
	case KwReturn:
		pos := p.tok.Pos
		p.next()
		var x Expr
		if p.tok.Kind != Semi {
			x = p.parseExpr()
		}
		p.expect(Semi)
		return []Stmt{&Return{Pos: pos, X: x}}
	case KwBreak:
		pos := p.tok.Pos
		p.next()
		p.expect(Semi)
		return []Stmt{&Break{Pos: pos}}
	case KwContinue:
		pos := p.tok.Pos
		p.next()
		p.expect(Semi)
		return []Stmt{&Continue{Pos: pos}}
	}
	if p.isTypeStart(p.tok) && !(p.tok.Kind == IDENT && p.peek.Kind != IDENT && p.peek.Kind != Star) {
		// A local declaration. The guard above keeps expressions that
		// merely start with a typedef-registered identifier (rare)
		// from being misparsed; "T x" and "T *x" are declarations.
		decls := p.parseDeclaration(false)
		stmts := make([]Stmt, 0, len(decls))
		for _, d := range decls {
			if vd, ok := d.(*VarDecl); ok {
				stmts = append(stmts, &DeclStmt{Decl: vd})
			} else {
				p.errorf(d.declPos(), "unsupported declaration in block")
			}
		}
		return stmts
	}
	e := p.parseExpr()
	p.expect(Semi)
	return []Stmt{&ExprStmt{Pos: e.exprPos(), X: e}}
}

func (p *Parser) parseSingleStmt() Stmt {
	ss := p.parseStmt()
	if len(ss) == 1 {
		return ss[0]
	}
	return &Block{Pos: p.tok.Pos, Stmts: ss}
}

// --- Expressions ---

func (p *Parser) parseExpr() Expr { return p.parseAssignExpr() }

func (p *Parser) parseAssignExpr() Expr {
	lhs := p.parseCondExpr()
	switch p.tok.Kind {
	case Assign, PlusAssign, MinusAssign:
		op := p.tok.Kind
		pos := p.tok.Pos
		p.next()
		rhs := p.parseAssignExpr()
		return &AssignExpr{Pos: pos, Op: op, LHS: lhs, RHS: rhs}
	}
	return lhs
}

func (p *Parser) parseCondExpr() Expr {
	c := p.parseBinaryExpr(0)
	if p.tok.Kind == Question {
		pos := p.tok.Pos
		p.next()
		t := p.parseAssignExpr()
		p.expect(Colon)
		f := p.parseCondExpr()
		return &CondExpr{Pos: pos, Cond: c, Then: t, Else: f}
	}
	return c
}

// binary operator precedence, higher binds tighter.
func binPrec(k Kind) int {
	switch k {
	case OrOr:
		return 1
	case AndAnd:
		return 2
	case Pipe:
		return 3
	case Caret:
		return 4
	case Amp:
		return 5
	case Eq, Neq:
		return 6
	case Lt, Gt, Le, Ge:
		return 7
	case Plus, Minus:
		return 9
	case Star, Slash, Percent:
		return 10
	}
	return 0
}

func (p *Parser) parseBinaryExpr(minPrec int) Expr {
	lhs := p.parseUnary()
	for {
		prec := binPrec(p.tok.Kind)
		if prec == 0 || prec < minPrec {
			return lhs
		}
		op := p.tok.Kind
		pos := p.tok.Pos
		p.next()
		rhs := p.parseBinaryExpr(prec + 1)
		lhs = &Binary{Pos: pos, Op: op, X: lhs, Y: rhs}
	}
}

func (p *Parser) parseUnary() Expr {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case Not, Minus, Tilde, Star, Amp, Plus:
		op := p.tok.Kind
		p.next()
		x := p.parseUnary()
		if op == Plus {
			return x
		}
		return &Unary{Pos: pos, Op: op, X: x}
	case Inc, Dec:
		op := p.tok.Kind
		p.next()
		x := p.parseUnary()
		return &Unary{Pos: pos, Op: op, X: x}
	case KwSizeof:
		p.next()
		if p.tok.Kind == LParen && p.isTypeStart(p.peek) {
			p.next()
			base := p.parseTypeSpecifier()
			_, te := p.parseDeclarator(base)
			p.expect(RParen)
			return &SizeofType{Pos: pos, Type: te}
		}
		x := p.parseUnary()
		return &SizeofExpr{Pos: pos, X: x}
	case LParen:
		if p.isTypeStart(p.peek) {
			p.next()
			base := p.parseTypeSpecifier()
			_, te := p.parseDeclarator(base)
			p.expect(RParen)
			x := p.parseUnary()
			return &Cast{Pos: pos, Type: te, X: x}
		}
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() Expr {
	x := p.parsePrimary()
	for {
		switch p.tok.Kind {
		case LParen:
			pos := p.tok.Pos
			p.next()
			var args []Expr
			for p.tok.Kind != RParen && p.tok.Kind != EOF {
				args = append(args, p.parseAssignExpr())
				if !p.accept(Comma) {
					break
				}
			}
			p.expect(RParen)
			x = &Call{Pos: pos, Fun: x, Args: args}
		case LBrack:
			pos := p.tok.Pos
			p.next()
			i := p.parseExpr()
			p.expect(RBrack)
			x = &Index{Pos: pos, X: x, I: i}
		case Dot:
			pos := p.tok.Pos
			p.next()
			name := p.expect(IDENT).Text
			x = &FieldAccess{Pos: pos, X: x, Name: name}
		case Arrow:
			pos := p.tok.Pos
			p.next()
			name := p.expect(IDENT).Text
			x = &FieldAccess{Pos: pos, X: x, Name: name, Arrow: true}
		case Inc, Dec:
			op := p.tok.Kind
			pos := p.tok.Pos
			p.next()
			x = &Postfix{Pos: pos, Op: op, X: x}
		default:
			return x
		}
	}
}

func (p *Parser) parsePrimary() Expr {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case IDENT:
		name := p.tok.Text
		p.next()
		return &Ident{Pos: pos, Name: name}
	case INTLIT:
		v := p.tok.Val
		p.next()
		return &IntLit{Pos: pos, V: v}
	case CHARLIT:
		v := p.tok.Val
		p.next()
		return &IntLit{Pos: pos, V: v}
	case STRLIT:
		s := p.tok.Text
		p.next()
		// Adjacent string literals concatenate.
		for p.tok.Kind == STRLIT {
			s += p.tok.Text
			p.next()
		}
		return &StrLit{Pos: pos, V: s}
	case KwNull:
		p.next()
		return &Null{Pos: pos}
	case LParen:
		p.next()
		x := p.parseExpr()
		p.expect(RParen)
		return x
	}
	p.errorf(pos, "expected expression, found %s", p.tok)
	p.next()
	return &IntLit{Pos: pos, V: 0}
}
