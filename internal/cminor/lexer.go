package cminor

import (
	"strconv"
	"strings"
)

// Lexer turns CMinor source text into tokens. It handles // and /* */
// comments, decimal/hex/octal integer literals, character literals with
// the common escapes, and adjacent-string-literal concatenation is left
// to the parser (not needed by our corpus).
type Lexer struct {
	src  string
	file string
	off  int
	line int
	col  int
	errs []*Error
}

// NewLexer returns a lexer over src; file is used in positions.
func NewLexer(file, src string) *Lexer {
	return &Lexer{src: src, file: file, line: 1, col: 1}
}

// Errors returns the diagnostics accumulated so far.
func (lx *Lexer) Errors() []*Error { return lx.errs }

func (lx *Lexer) pos() Pos { return Pos{File: lx.file, Line: lx.line, Col: lx.col} }

func (lx *Lexer) peekByte() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peekByte2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) skipSpaceAndComments() {
	for lx.off < len(lx.src) {
		c := lx.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peekByte2() == '/':
			for lx.off < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peekByte2() == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peekByte() == '*' && lx.peekByte2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				lx.errs = append(lx.errs, errf(start, "unterminated block comment"))
			}
		case c == '#':
			// Preprocessor lines (e.g. #include) are skipped wholesale;
			// CMinor programs declare their externs directly.
			for lx.off < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token, consuming it.
func (lx *Lexer) Next() Token {
	lx.skipSpaceAndComments()
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: EOF, Pos: pos}
	}
	c := lx.peekByte()
	switch {
	case isIdentStart(c):
		start := lx.off
		for lx.off < len(lx.src) && isIdentCont(lx.peekByte()) {
			lx.advance()
		}
		text := lx.src[start:lx.off]
		if k, ok := keywords[text]; ok {
			return Token{Kind: k, Text: text, Pos: pos}
		}
		return Token{Kind: IDENT, Text: text, Pos: pos}
	case isDigit(c):
		start := lx.off
		if c == '0' && (lx.peekByte2() == 'x' || lx.peekByte2() == 'X') {
			lx.advance()
			lx.advance()
			for lx.off < len(lx.src) && isHexDigit(lx.peekByte()) {
				lx.advance()
			}
		} else {
			for lx.off < len(lx.src) && isDigit(lx.peekByte()) {
				lx.advance()
			}
		}
		// Integer suffixes (u, l, ul, ...) are accepted and ignored.
		for lx.off < len(lx.src) {
			s := lx.peekByte()
			if s == 'u' || s == 'U' || s == 'l' || s == 'L' {
				lx.advance()
			} else {
				break
			}
		}
		text := lx.src[start:lx.off]
		numText := strings.TrimRight(text, "uUlL")
		v, err := strconv.ParseInt(numText, 0, 64)
		if err != nil {
			// Tolerate overflow of huge constants; value is irrelevant
			// to the region analysis.
			u, uerr := strconv.ParseUint(numText, 0, 64)
			if uerr != nil {
				lx.errs = append(lx.errs, errf(pos, "bad integer literal %q", text))
			}
			v = int64(u)
		}
		return Token{Kind: INTLIT, Text: text, Val: v, Pos: pos}
	case c == '\'':
		lx.advance()
		var v int64
		if lx.peekByte() == '\\' {
			lx.advance()
			v = int64(unescape(lx.advance()))
		} else if lx.off < len(lx.src) {
			v = int64(lx.advance())
		}
		if lx.peekByte() == '\'' {
			lx.advance()
		} else {
			lx.errs = append(lx.errs, errf(pos, "unterminated char literal"))
		}
		return Token{Kind: CHARLIT, Val: v, Pos: pos}
	case c == '"':
		lx.advance()
		var sb strings.Builder
		for lx.off < len(lx.src) && lx.peekByte() != '"' {
			ch := lx.advance()
			if ch == '\\' && lx.off < len(lx.src) {
				sb.WriteByte(unescape(lx.advance()))
			} else {
				sb.WriteByte(ch)
			}
		}
		if lx.off < len(lx.src) {
			lx.advance() // closing quote
		} else {
			lx.errs = append(lx.errs, errf(pos, "unterminated string literal"))
		}
		return Token{Kind: STRLIT, Text: sb.String(), Pos: pos}
	}
	// Operators and punctuation.
	lx.advance()
	two := func(next byte, k2, k1 Kind) Token {
		if lx.peekByte() == next {
			lx.advance()
			return Token{Kind: k2, Pos: pos}
		}
		return Token{Kind: k1, Pos: pos}
	}
	switch c {
	case '(':
		return Token{Kind: LParen, Pos: pos}
	case ')':
		return Token{Kind: RParen, Pos: pos}
	case '{':
		return Token{Kind: LBrace, Pos: pos}
	case '}':
		return Token{Kind: RBrace, Pos: pos}
	case '[':
		return Token{Kind: LBrack, Pos: pos}
	case ']':
		return Token{Kind: RBrack, Pos: pos}
	case ';':
		return Token{Kind: Semi, Pos: pos}
	case ',':
		return Token{Kind: Comma, Pos: pos}
	case '.':
		if lx.peekByte() == '.' && lx.peekByte2() == '.' {
			lx.advance()
			lx.advance()
			return Token{Kind: Ellipsis, Pos: pos}
		}
		return Token{Kind: Dot, Pos: pos}
	case '*':
		return Token{Kind: Star, Pos: pos}
	case '+':
		if lx.peekByte() == '+' {
			lx.advance()
			return Token{Kind: Inc, Pos: pos}
		}
		return two('=', PlusAssign, Plus)
	case '-':
		if lx.peekByte() == '>' {
			lx.advance()
			return Token{Kind: Arrow, Pos: pos}
		}
		if lx.peekByte() == '-' {
			lx.advance()
			return Token{Kind: Dec, Pos: pos}
		}
		return two('=', MinusAssign, Minus)
	case '/':
		return Token{Kind: Slash, Pos: pos}
	case '%':
		return Token{Kind: Percent, Pos: pos}
	case '&':
		return two('&', AndAnd, Amp)
	case '|':
		return two('|', OrOr, Pipe)
	case '^':
		return Token{Kind: Caret, Pos: pos}
	case '~':
		return Token{Kind: Tilde, Pos: pos}
	case '!':
		return two('=', Neq, Not)
	case '=':
		return two('=', Eq, Assign)
	case '<':
		return two('=', Le, Lt)
	case '>':
		return two('=', Ge, Gt)
	case '?':
		return Token{Kind: Question, Pos: pos}
	case ':':
		return Token{Kind: Colon, Pos: pos}
	}
	lx.errs = append(lx.errs, errf(pos, "unexpected character %q", string(c)))
	return lx.Next()
}

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func unescape(c byte) byte {
	switch c {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '0':
		return 0
	case '\\':
		return '\\'
	case '\'':
		return '\''
	case '"':
		return '"'
	}
	return c
}

// Tokenize lexes the whole input (testing convenience).
func Tokenize(file, src string) ([]Token, []*Error) {
	lx := NewLexer(file, src)
	var toks []Token
	for {
		t := lx.Next()
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, lx.errs
		}
	}
}
