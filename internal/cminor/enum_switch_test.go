package cminor

import "testing"

func TestEnumDeclAndConstants(t *testing.T) {
	_, info := mustCheck(t, `
enum color { RED, GREEN = 5, BLUE };
enum { ANON_A = -2, ANON_B };
int g(void) { return RED + GREEN + BLUE + ANON_A + ANON_B; }`)
	want := map[string]int64{"RED": 0, "GREEN": 5, "BLUE": 6, "ANON_A": -2, "ANON_B": -1}
	for name, v := range want {
		ec := info.Enums[name]
		if ec == nil {
			t.Fatalf("enum constant %s missing", name)
		}
		if ec.Value != v {
			t.Fatalf("%s = %d, want %d", name, ec.Value, v)
		}
	}
}

func TestEnumTypedef(t *testing.T) {
	_, info := mustCheck(t, `
typedef enum { OK, FAIL = 100 } status_t;
status_t g(status_t s) { return s == OK ? OK : FAIL; }`)
	if info.Enums["FAIL"] == nil || info.Enums["FAIL"].Value != 100 {
		t.Fatal("typedef'd enum constants missing")
	}
	// The typedef resolves to int.
	if info.Typedefs["status_t"] != TypeInt {
		t.Fatalf("status_t = %v, want int", info.Typedefs["status_t"])
	}
}

func TestEnumAsType(t *testing.T) {
	mustCheck(t, `
enum mode { READ, WRITE };
int g(enum mode m) {
    enum mode local;
    local = m;
    return local == WRITE;
}`)
}

func TestEnumConstExprValues(t *testing.T) {
	_, info := mustCheck(t, `
enum bits { A = 1, B = A * 2, C = A | B, D = ~0, E = !5 };
int g(void) { return A; }`)
	want := map[string]int64{"A": 1, "B": 2, "C": 3, "D": -1, "E": 0}
	for name, v := range want {
		if ec := info.Enums[name]; ec == nil || ec.Value != v {
			t.Fatalf("%s: %+v, want %d", name, info.Enums[name], v)
		}
	}
}

func TestEnumDuplicateDiagnosed(t *testing.T) {
	f := mustParse(t, `
enum a { X };
enum b { X };`)
	info := Check(f)
	if len(info.Errors) == 0 {
		t.Fatal("duplicate enumerator not diagnosed")
	}
}

func TestSwitchParsing(t *testing.T) {
	f := mustParse(t, `
int g(int x) {
    switch (x) {
    case 0:
    case 1:
        return 10;
    case 2:
        x = x + 1;
        break;
    default:
        return -1;
    }
    return x;
}`)
	fd := f.Decls[0].(*FuncDecl)
	sw := fd.Body.Stmts[0].(*Switch)
	if len(sw.Cases) != 3 {
		t.Fatalf("%d case groups, want 3", len(sw.Cases))
	}
	if len(sw.Cases[0].Values) != 2 {
		t.Fatalf("first group has %d labels, want 2 (case 0: case 1:)", len(sw.Cases[0].Values))
	}
	if !sw.Cases[2].Default {
		t.Fatal("default group not marked")
	}
}

func TestSwitchNonConstantLabelDiagnosed(t *testing.T) {
	f := mustParse(t, `
int g(int x, int y) {
    switch (x) {
    case 1:
        return 1;
    }
    switch (x) { case 2: return 2; }
    switch (x) { default: return 0; }
    return 0;
}`)
	info := Check(f)
	if len(info.Errors) != 0 {
		t.Fatalf("constant labels diagnosed: %v", info.Errors)
	}
	f2 := mustParse(t, `
int g(int x, int y) {
    switch (x) { case y: return 1; }
    return 0;
}`)
	info2 := Check(f2)
	if len(info2.Errors) == 0 {
		t.Fatal("non-constant case label not diagnosed")
	}
}

func TestSwitchOnEnum(t *testing.T) {
	mustCheck(t, `
enum op { ADD, SUB, MUL };
int apply(enum op o, int a, int b) {
    switch (o) {
    case ADD: return a + b;
    case SUB: return a - b;
    case MUL: return a * b;
    }
    return 0;
}`)
}

func TestSizeofValuesRecorded(t *testing.T) {
	f, info := mustCheck(t, `
struct wide { long a; long b; char c; };
long g(void) {
    struct wide w;
    return sizeof(struct wide) + sizeof(int) + sizeof w;
}`)
	_ = f
	var sizes []int64
	for _, v := range info.Sizeofs {
		sizes = append(sizes, v)
	}
	if len(sizes) != 3 {
		t.Fatalf("%d sizeof values recorded, want 3", len(sizes))
	}
	found := map[int64]int{}
	for _, s := range sizes {
		found[s]++
	}
	if found[24] != 2 || found[4] != 1 {
		t.Fatalf("sizeof values = %v, want {24:2, 4:1}", found)
	}
}
