package cminor

import (
	"fmt"
	"strings"
)

// Type is a resolved semantic type. Sizes follow a conventional LP64
// layout (char=1, int=4, long=8, pointer=8) with natural alignment —
// the "machine-dependent offsets" of the paper's Section 5.1.
type Type interface {
	Size() int64
	Align() int64
	String() string
}

// IntType is an integer type of the given byte width.
type IntType struct {
	Width    int64
	Unsigned bool
	Name     string // spelling: "int", "char", "long", ...
}

func (t *IntType) Size() int64  { return t.Width }
func (t *IntType) Align() int64 { return t.Width }
func (t *IntType) String() string {
	if t.Name != "" {
		return t.Name
	}
	return fmt.Sprintf("int%d", t.Width*8)
}

// VoidType is void.
type VoidType struct{}

func (*VoidType) Size() int64    { return 0 }
func (*VoidType) Align() int64   { return 1 }
func (*VoidType) String() string { return "void" }

// PtrType is a pointer.
type PtrType struct{ Elem Type }

func (*PtrType) Size() int64      { return 8 }
func (*PtrType) Align() int64     { return 8 }
func (t *PtrType) String() string { return t.Elem.String() + "*" }

// ArrayType is a fixed-size array.
type ArrayType struct {
	Elem Type
	N    int64
}

func (t *ArrayType) Size() int64    { return t.Elem.Size() * t.N }
func (t *ArrayType) Align() int64   { return t.Elem.Align() }
func (t *ArrayType) String() string { return fmt.Sprintf("%s[%d]", t.Elem, t.N) }

// Field is one laid-out member of a struct type.
type Field struct {
	Name   string
	Type   Type
	Offset int64
}

// StructType is a struct or union with computed layout. Opaque structs
// (forward-declared, body never seen) have no fields and size 0; they
// are only legal behind pointers.
type StructType struct {
	Name   string
	Union  bool
	Opaque bool
	Fields []Field

	size, align int64
}

func (t *StructType) Size() int64  { return t.size }
func (t *StructType) Align() int64 { return t.align }
func (t *StructType) String() string {
	kw := "struct"
	if t.Union {
		kw = "union"
	}
	return kw + " " + t.Name
}

// FieldByName returns the field with the given name, or nil.
func (t *StructType) FieldByName(name string) *Field {
	for i := range t.Fields {
		if t.Fields[i].Name == name {
			return &t.Fields[i]
		}
	}
	return nil
}

// FuncType is a function signature.
type FuncType struct {
	Ret      Type
	Params   []Type
	Variadic bool
}

func (*FuncType) Size() int64  { return 8 } // as a value, decays to pointer
func (*FuncType) Align() int64 { return 8 }
func (t *FuncType) String() string {
	var sb strings.Builder
	sb.WriteString(t.Ret.String())
	sb.WriteString(" (")
	for i, p := range t.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(p.String())
	}
	if t.Variadic {
		if len(t.Params) > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("...")
	}
	sb.WriteString(")")
	return sb.String()
}

// Shared builtin instances.
var (
	TypeVoid = &VoidType{}
	TypeChar = &IntType{Width: 1, Name: "char"}
	TypeInt  = &IntType{Width: 4, Name: "int"}
	TypeLong = &IntType{Width: 8, Name: "long"}
	TypeUInt = &IntType{Width: 4, Unsigned: true, Name: "unsigned"}
	// TypeVoidPtr is the generic pointer type used for NULL, string
	// literals' decay target in weakly-typed positions, and unsafe
	// casts.
	TypeVoidPtr = &PtrType{Elem: TypeVoid}
)

// IsPointer reports whether t is a pointer (or array, which decays).
func IsPointer(t Type) bool {
	switch t.(type) {
	case *PtrType, *ArrayType:
		return true
	}
	return false
}

// PointerElem returns the pointee of a pointer or array type, or nil.
func PointerElem(t Type) Type {
	switch t := t.(type) {
	case *PtrType:
		return t.Elem
	case *ArrayType:
		return t.Elem
	}
	return nil
}

// IsInteger reports whether t is an integer type.
func IsInteger(t Type) bool {
	_, ok := t.(*IntType)
	return ok
}

// Deref unwraps one pointer level; arrays decay.
func Deref(t Type) (Type, bool) {
	e := PointerElem(t)
	if e == nil {
		return nil, false
	}
	return e, true
}

func alignUp(n, a int64) int64 {
	if a <= 1 {
		return n
	}
	return (n + a - 1) / a * a
}

// layOut computes offsets, size, and alignment for a struct body.
func (t *StructType) layOut() {
	t.size, t.align = 0, 1
	for i := range t.Fields {
		f := &t.Fields[i]
		a := f.Type.Align()
		if a > t.align {
			t.align = a
		}
		if t.Union {
			f.Offset = 0
			if s := f.Type.Size(); s > t.size {
				t.size = s
			}
		} else {
			t.size = alignUp(t.size, a)
			f.Offset = t.size
			t.size += f.Type.Size()
		}
	}
	t.size = alignUp(t.size, t.align)
	if t.size == 0 && !t.Opaque {
		t.size = 1 // empty structs occupy one byte, as in practice
	}
}
