package cminor

import "testing"

func kinds(toks []Token) []Kind {
	ks := make([]Kind, len(toks))
	for i, t := range toks {
		ks[i] = t.Kind
	}
	return ks
}

func TestLexBasics(t *testing.T) {
	toks, errs := Tokenize("t.c", `int main(void) { return 42; }`)
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	want := []Kind{KwInt, IDENT, LParen, KwVoid, RParen, LBrace, KwReturn, INTLIT, Semi, RBrace, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
	if toks[7].Val != 42 {
		t.Fatalf("literal value %d, want 42", toks[7].Val)
	}
}

func TestLexOperators(t *testing.T) {
	src := `-> ++ -- == != <= >= && || += -= ... . - + & | ^ ~ ! ? :`
	toks, errs := Tokenize("t.c", src)
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	want := []Kind{Arrow, Inc, Dec, Eq, Neq, Le, Ge, AndAnd, OrOr, PlusAssign,
		MinusAssign, Ellipsis, Dot, Minus, Plus, Amp, Pipe, Caret, Tilde, Not, Question, Colon, EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexComments(t *testing.T) {
	src := "int /* block\ncomment */ x; // line comment\nchar y;"
	toks, errs := Tokenize("t.c", src)
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	want := []Kind{KwInt, IDENT, Semi, KwChar, IDENT, Semi, EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexPreprocessorSkipped(t *testing.T) {
	src := "#include <stdio.h>\nint x;"
	toks, errs := Tokenize("t.c", src)
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	if toks[0].Kind != KwInt {
		t.Fatalf("preprocessor line not skipped: %v", toks[0])
	}
}

func TestLexLiterals(t *testing.T) {
	toks, errs := Tokenize("t.c", `0x1F 010 'a' '\n' "hi\tthere" 42u 100L`)
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	if toks[0].Val != 31 {
		t.Errorf("hex literal = %d, want 31", toks[0].Val)
	}
	if toks[1].Val != 8 {
		t.Errorf("octal literal = %d, want 8", toks[1].Val)
	}
	if toks[2].Val != 'a' || toks[3].Val != '\n' {
		t.Errorf("char literals wrong: %d %d", toks[2].Val, toks[3].Val)
	}
	if toks[4].Text != "hi\tthere" {
		t.Errorf("string literal = %q", toks[4].Text)
	}
	if toks[5].Val != 42 || toks[6].Val != 100 {
		t.Errorf("suffixed literals wrong: %d %d", toks[5].Val, toks[6].Val)
	}
}

func TestLexPositions(t *testing.T) {
	toks, _ := Tokenize("f.c", "int\n  x;")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("int at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("x at %v, want 2:3", toks[1].Pos)
	}
}

func TestLexUnterminated(t *testing.T) {
	_, errs := Tokenize("t.c", `"abc`)
	if len(errs) == 0 {
		t.Fatal("unterminated string not diagnosed")
	}
	_, errs = Tokenize("t.c", "/* never closed")
	if len(errs) == 0 {
		t.Fatal("unterminated comment not diagnosed")
	}
}
