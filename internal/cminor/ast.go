package cminor

// File is one parsed translation unit.
type File struct {
	Path  string
	Decls []Decl
}

// Decl is a top-level or block-level declaration.
type Decl interface{ declPos() Pos }

// StructDecl declares a struct or union type with named fields.
type StructDecl struct {
	Pos    Pos
	Name   string
	Union  bool
	Fields []FieldDecl
	// Opaque is true for "struct name;" forward declarations whose
	// body never appears; such types can only be used behind pointers.
	Opaque bool
}

// FieldDecl is one member of a struct or union.
type FieldDecl struct {
	Pos  Pos
	Name string
	Type TypeExpr
}

// EnumDecl declares an enum type; each item is an integer constant.
type EnumDecl struct {
	Pos   Pos
	Name  string // tag, may be synthesized
	Items []EnumItem
}

// EnumItem is one enumerator; Value is nil for implicit (previous+1).
type EnumItem struct {
	Pos   Pos
	Name  string
	Value Expr
}

func (d *EnumDecl) declPos() Pos { return d.Pos }

// TypedefDecl introduces a type alias.
type TypedefDecl struct {
	Pos  Pos
	Name string
	Type TypeExpr
}

// VarDecl declares a variable (global or local) with an optional
// initializer.
type VarDecl struct {
	Pos  Pos
	Name string
	Type TypeExpr
	Init Expr // may be nil
}

// FuncDecl declares or defines a function. Body is nil for externs and
// prototypes.
type FuncDecl struct {
	Pos      Pos
	Name     string
	Ret      TypeExpr
	Params   []Param
	Variadic bool
	Body     *Block
	Extern   bool
}

// Param is one formal parameter.
type Param struct {
	Pos  Pos
	Name string // may be "" in prototypes
	Type TypeExpr
}

func (d *StructDecl) declPos() Pos  { return d.Pos }
func (d *TypedefDecl) declPos() Pos { return d.Pos }
func (d *VarDecl) declPos() Pos     { return d.Pos }
func (d *FuncDecl) declPos() Pos    { return d.Pos }

// TypeExpr is a syntactic type, resolved to a Type by the checker.
type TypeExpr interface{ typeExpr() }

// NameTE is a builtin ("int", "char", "long", "void", "unsigned") or a
// typedef name.
type NameTE struct{ Name string }

// StructTE references a struct or union by tag.
type StructTE struct {
	Name  string
	Union bool
}

// EnumTE references an enum type (semantically int).
type EnumTE struct{ Name string }

func (*EnumTE) typeExpr() {}

// PtrTE is a pointer type.
type PtrTE struct{ Elem TypeExpr }

// ArrayTE is a fixed-size array type.
type ArrayTE struct {
	Elem TypeExpr
	N    int64
}

// FuncTE is a function type (used behind PtrTE for function pointers).
type FuncTE struct {
	Ret      TypeExpr
	Params   []TypeExpr
	Variadic bool
}

func (*NameTE) typeExpr()   {}
func (*StructTE) typeExpr() {}
func (*PtrTE) typeExpr()    {}
func (*ArrayTE) typeExpr()  {}
func (*FuncTE) typeExpr()   {}

// Stmt is a statement.
type Stmt interface{ stmtPos() Pos }

// Block is a brace-enclosed statement list with its own scope.
type Block struct {
	Pos   Pos
	Stmts []Stmt
}

// DeclStmt wraps a local variable declaration.
type DeclStmt struct{ Decl *VarDecl }

// ExprStmt evaluates an expression for effect.
type ExprStmt struct {
	Pos Pos
	X   Expr
}

// If is if/else.
type If struct {
	Pos  Pos
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// While is a while loop; DoWhile distinguishes do { } while (c);.
type While struct {
	Pos     Pos
	Cond    Expr
	Body    Stmt
	DoWhile bool
}

// For is a C for loop. Init may be a DeclStmt or ExprStmt (or nil);
// Cond and Post may be nil.
type For struct {
	Pos  Pos
	Init Stmt
	Cond Expr
	Post Expr
	Body Stmt
}

// Switch is a C switch statement. Cases execute with C fallthrough
// semantics; break exits the switch.
type Switch struct {
	Pos   Pos
	Cond  Expr
	Cases []SwitchCase
}

// SwitchCase is one case (or default) label group with its statements.
type SwitchCase struct {
	Pos     Pos
	Values  []Expr // nil for default
	Default bool
	Body    []Stmt
}

func (s *Switch) stmtPos() Pos { return s.Pos }

// Return returns from the enclosing function; X may be nil.
type Return struct {
	Pos Pos
	X   Expr
}

// Break exits the innermost loop.
type Break struct{ Pos Pos }

// Continue re-tests the innermost loop.
type Continue struct{ Pos Pos }

// Empty is a lone semicolon.
type Empty struct{ Pos Pos }

func (s *Block) stmtPos() Pos    { return s.Pos }
func (s *DeclStmt) stmtPos() Pos { return s.Decl.Pos }
func (s *ExprStmt) stmtPos() Pos { return s.Pos }
func (s *If) stmtPos() Pos       { return s.Pos }
func (s *While) stmtPos() Pos    { return s.Pos }
func (s *For) stmtPos() Pos      { return s.Pos }
func (s *Return) stmtPos() Pos   { return s.Pos }
func (s *Break) stmtPos() Pos    { return s.Pos }
func (s *Continue) stmtPos() Pos { return s.Pos }
func (s *Empty) stmtPos() Pos    { return s.Pos }

// Expr is an expression.
type Expr interface{ exprPos() Pos }

// ExprPos returns an expression's source position.
func ExprPos(e Expr) Pos { return e.exprPos() }

// StmtPos returns a statement's source position.
func StmtPos(s Stmt) Pos { return s.stmtPos() }

// Ident names a variable or function.
type Ident struct {
	Pos  Pos
	Name string
}

// IntLit is an integer literal.
type IntLit struct {
	Pos Pos
	V   int64
}

// StrLit is a string literal.
type StrLit struct {
	Pos Pos
	V   string
}

// Null is the NULL constant.
type Null struct{ Pos Pos }

// Unary is a prefix operator: one of ! - ~ * & ++ --.
type Unary struct {
	Pos Pos
	Op  Kind
	X   Expr
}

// Postfix is x++ or x--.
type Postfix struct {
	Pos Pos
	Op  Kind // Inc or Dec
	X   Expr
}

// Binary is an infix operator.
type Binary struct {
	Pos  Pos
	Op   Kind
	X, Y Expr
}

// AssignExpr is LHS = RHS (or += / -=).
type AssignExpr struct {
	Pos Pos
	Op  Kind // Assign, PlusAssign, MinusAssign
	LHS Expr
	RHS Expr
}

// CondExpr is c ? t : f.
type CondExpr struct {
	Pos  Pos
	Cond Expr
	Then Expr
	Else Expr
}

// Call is a function call; Fun may be an Ident (direct or via function
// pointer variable) or any expression yielding a function pointer.
type Call struct {
	Pos  Pos
	Fun  Expr
	Args []Expr
}

// Index is array indexing x[i].
type Index struct {
	Pos Pos
	X   Expr
	I   Expr
}

// FieldAccess is x.name or x->name.
type FieldAccess struct {
	Pos   Pos
	X     Expr
	Name  string
	Arrow bool
}

// Cast is (type)x.
type Cast struct {
	Pos  Pos
	Type TypeExpr
	X    Expr
}

// SizeofType is sizeof(type). sizeof expr parses as SizeofExpr.
type SizeofType struct {
	Pos  Pos
	Type TypeExpr
}

// SizeofExpr is sizeof expr.
type SizeofExpr struct {
	Pos Pos
	X   Expr
}

func (e *Ident) exprPos() Pos       { return e.Pos }
func (e *IntLit) exprPos() Pos      { return e.Pos }
func (e *StrLit) exprPos() Pos      { return e.Pos }
func (e *Null) exprPos() Pos        { return e.Pos }
func (e *Unary) exprPos() Pos       { return e.Pos }
func (e *Postfix) exprPos() Pos     { return e.Pos }
func (e *Binary) exprPos() Pos      { return e.Pos }
func (e *AssignExpr) exprPos() Pos  { return e.Pos }
func (e *CondExpr) exprPos() Pos    { return e.Pos }
func (e *Call) exprPos() Pos        { return e.Pos }
func (e *Index) exprPos() Pos       { return e.Pos }
func (e *FieldAccess) exprPos() Pos { return e.Pos }
func (e *Cast) exprPos() Pos        { return e.Pos }
func (e *SizeofType) exprPos() Pos  { return e.Pos }
func (e *SizeofExpr) exprPos() Pos  { return e.Pos }
