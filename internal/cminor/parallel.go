package cminor

import (
	"sync"
	"time"
)

// CheckSched reports how a CheckParallelSched run spent its time: the
// sequential declaration passes versus the per-file body shards. Shard
// walls are meaningful as work/span inputs only when the shards ran
// serially (workers=1) — concurrent shards on a loaded machine include
// scheduler wait in their walls.
type CheckSched struct {
	Workers int
	// DeclWall is the sequential passes 1-3 (declarations, layout,
	// signatures).
	DeclWall time.Duration
	// BodyWall holds one entry per file: that shard's pass-4 wall.
	BodyWall []time.Duration
	// FellBack is true when the sharded attempt was discarded for a
	// plain sequential Check (body type defs, errors, or environment
	// growth); the other fields are then zero.
	FellBack bool
}

// CheckParallel is Check with pass 4 (function bodies) sharded per
// file across a bounded worker pool. It returns exactly what Check
// returns — same Info contents, same errors in the same order — for
// every input; parallelism is an implementation detail that must never
// change answers.
//
// The declaration passes (1-3) stay sequential: they build the shared
// environment and are cheap. Body checking is embarrassingly parallel
// *provided* bodies only read that environment, which is true except
// for three C accommodations that grow it mid-body:
//
//   - implicit function declarations (a call to an undeclared name),
//   - the undeclared-identifier courtesy global,
//   - struct/enum types defined or first referenced inside a body.
//
// Inline definitions are detected up front (HasBodyTypeDefs) and the
// growth cases after the fact: each shard checks against copies of the
// five name maps, and any shard whose copies grew — or that reported
// an error, since the sequential error list interleaves with
// environment growth — discards the entire sharded attempt in favor of
// a plain sequential Check. Analysis inputs hit the fallback rarely
// (they are usually error-free and fully declared), and the fallback
// is bit-for-bit the sequential result by construction.
//
// The per-AST-node fact maps (Types, Uses, Fields, Sizeofs, FuncInfo)
// key on nodes owned by exactly one file, so merging the shards in
// file order reproduces the sequential maps exactly.
func CheckParallel(workers int, files ...*File) *Info {
	if workers <= 1 || len(files) <= 1 {
		return Check(files...)
	}
	info, _ := CheckParallelSched(workers, files...)
	return info
}

// CheckParallelSched is CheckParallel returning the time breakdown
// alongside the Info. Unlike CheckParallel it accepts workers=1 —
// the shards then run serially through the same code path, which makes
// their walls exact work/span measurements for scaling models.
func CheckParallelSched(workers int, files ...*File) (*Info, *CheckSched) {
	sched := &CheckSched{Workers: workers, FellBack: true}
	if workers < 1 || len(files) <= 1 {
		return Check(files...), sched
	}
	for _, f := range files {
		if HasBodyTypeDefs(f) {
			return Check(files...), sched
		}
	}
	base := newChecker()
	t0 := time.Now()
	base.declPasses(files)
	declWall := time.Since(t0)
	if len(base.info.Errors) != 0 {
		// Declaration errors can interleave with body errors in the
		// sequential list; don't try to reproduce that order piecewise.
		return Check(files...), sched
	}

	shards := make([]*checker, len(files))
	bodyWall := make([]time.Duration, len(files))
	if workers > len(files) {
		workers = len(files)
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				sc := &checker{
					info: &Info{
						Types:    make(map[Expr]Type),
						Uses:     make(map[*Ident]interface{}),
						Fields:   make(map[*FieldAccess]FieldInfo),
						Structs:  copyStrMap(base.info.Structs),
						Typedefs: copyStrMap(base.info.Typedefs),
						Funcs:    copyStrMap(base.info.Funcs),
						Globals:  copyStrMap(base.info.Globals),
						Enums:    copyStrMap(base.info.Enums),
						FuncInfo: make(map[*FuncDecl]*FuncInfo),
						Sizeofs:  make(map[Expr]int64),
					},
					laying: make(map[string]bool),
				}
				ts := time.Now()
				sc.bodyPass(files[i : i+1])
				bodyWall[i] = time.Since(ts)
				shards[i] = sc
			}
		}()
	}
	for i := range files {
		next <- i
	}
	close(next)
	wg.Wait()

	for _, sc := range shards {
		if len(sc.info.Errors) != 0 || shardGrewEnv(base.info, sc.info) {
			return Check(files...), sched
		}
	}
	sched.FellBack = false
	sched.DeclWall = declWall
	sched.BodyWall = bodyWall
	for _, sc := range shards {
		for k, v := range sc.info.Types {
			base.info.Types[k] = v
		}
		for k, v := range sc.info.Uses {
			base.info.Uses[k] = v
		}
		for k, v := range sc.info.Fields {
			base.info.Fields[k] = v
		}
		for k, v := range sc.info.Sizeofs {
			base.info.Sizeofs[k] = v
		}
		for k, v := range sc.info.FuncInfo {
			base.info.FuncInfo[k] = v
		}
	}
	return base.info, sched
}

// shardGrewEnv reports whether body checking added any name to the
// shard's environment copies: an implicit function, a courtesy global,
// or a struct tag first referenced inside a body. Those writes would
// have been visible to *later* files in the sequential order, so the
// independent shards cannot be trusted and the caller re-checks
// sequentially.
func shardGrewEnv(base, shard *Info) bool {
	return len(shard.Structs) != len(base.Structs) ||
		len(shard.Typedefs) != len(base.Typedefs) ||
		len(shard.Funcs) != len(base.Funcs) ||
		len(shard.Globals) != len(base.Globals) ||
		len(shard.Enums) != len(base.Enums)
}
