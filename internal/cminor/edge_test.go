package cminor

import (
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	if Arrow.String() != "->" || IDENT.String() != "identifier" {
		t.Fatal("Kind.String broken")
	}
	if Kind(200).String() == "" {
		t.Fatal("unknown kind has empty string")
	}
}

func TestTokenString(t *testing.T) {
	cases := []struct {
		tok  Token
		want string
	}{
		{Token{Kind: IDENT, Text: "foo"}, "foo"},
		{Token{Kind: INTLIT, Val: 7}, "7"},
		{Token{Kind: STRLIT, Text: "hi"}, `"hi"`},
		{Token{Kind: Arrow}, "->"},
	}
	for _, tc := range cases {
		if got := tc.tok.String(); got != tc.want {
			t.Errorf("Token = %q, want %q", got, tc.want)
		}
	}
}

func TestPosString(t *testing.T) {
	p := Pos{File: "a.c", Line: 3, Col: 9}
	if p.String() != "a.c:3:9" {
		t.Fatalf("pos = %q", p)
	}
	if (Pos{Line: 1, Col: 2}).String() != "1:2" {
		t.Fatal("fileless pos format")
	}
	if (Pos{}).IsValid() {
		t.Fatal("zero pos valid")
	}
}

func TestParseUnionDecl(t *testing.T) {
	_, info := mustCheck(t, `
union value { long i; void *p; char bytes[8]; };
int g(void) {
    union value v;
    v.i = 3;
    return (int)v.i;
}`)
	u := info.Structs["value"]
	if u == nil || !u.Union || u.Size() != 8 {
		t.Fatalf("union: %+v", u)
	}
}

func TestParseNestedStructAccess(t *testing.T) {
	_, info := mustCheck(t, `
struct inner { int a; int b; };
struct outer { struct inner in; int tail; };
int g(struct outer *o) { return o->in.b + o->tail; }`)
	outer := info.Structs["outer"]
	if outer.Size() != 12 {
		t.Fatalf("outer size %d, want 12", outer.Size())
	}
	if f := outer.FieldByName("tail"); f.Offset != 8 {
		t.Fatalf("tail offset %d", f.Offset)
	}
}

func TestParsePointerToPointerDeclAndUse(t *testing.T) {
	mustCheck(t, `
int g(void) {
    int x;
    int *p;
    int **pp;
    x = 1;
    p = &x;
    pp = &p;
    return **pp;
}`)
}

func TestParseStructArrayField(t *testing.T) {
	_, info := mustCheck(t, `
struct buf { char data[16]; int len; };
int g(struct buf *b) { return b->len; }`)
	s := info.Structs["buf"]
	if s.Size() != 20 {
		t.Fatalf("buf size %d, want 20", s.Size())
	}
	if f := s.FieldByName("len"); f.Offset != 16 {
		t.Fatalf("len offset %d", f.Offset)
	}
}

func TestParseOpaquePointerOnly(t *testing.T) {
	// Opaque structs are usable behind pointers only.
	mustCheck(t, `
struct opaque;
struct opaque *keep(struct opaque *p) { return p; }`)
	f := mustParse(t, `
struct opaque;
int g(struct opaque *p) { return p->x; }`)
	info := Check(f)
	if len(info.Errors) == 0 {
		t.Fatal("field access on opaque struct not diagnosed")
	}
}

func TestParseStaticAndConstIgnored(t *testing.T) {
	mustCheck(t, `
static int counter = 0;
static int bump(const int delta) {
    return counter + delta;
}
int use(void) { return bump(1); }`)
}

func TestParseCharEscapesInStrings(t *testing.T) {
	f := mustParse(t, `char *s = "line1\nline2\t\"q\"";`)
	vd := f.Decls[0].(*VarDecl)
	lit := vd.Init.(*StrLit)
	if !strings.Contains(lit.V, "\n") || !strings.Contains(lit.V, "\"q\"") {
		t.Fatalf("escapes: %q", lit.V)
	}
}

func TestParseAdjacentStringConcat(t *testing.T) {
	f := mustParse(t, `char *s = "foo" "bar";`)
	lit := f.Decls[0].(*VarDecl).Init.(*StrLit)
	if lit.V != "foobar" {
		t.Fatalf("concat = %q", lit.V)
	}
}

func TestParseCommaDeclarations(t *testing.T) {
	_, info := mustCheck(t, `
int a, b, *c;
int g(void) { return a + b; }`)
	if info.Globals["a"] == nil || info.Globals["b"] == nil || info.Globals["c"] == nil {
		t.Fatal("comma-declared globals missing")
	}
	if _, ok := info.Globals["c"].Type.(*PtrType); !ok {
		t.Fatalf("c type %v", info.Globals["c"].Type)
	}
}

func TestParseEmptyStatements(t *testing.T) {
	mustCheck(t, `
int g(void) {
    ;
    for (;;) break;
    while (0) ;
    return 0;
}`)
}

func TestParseUnaryPermutations(t *testing.T) {
	mustCheck(t, `
int g(int x) {
    int y;
    y = -x + +x;
    y = ~x;
    y = !x;
    y = x++ + x-- + ++x + --x;
    return y;
}`)
}

func TestCheckDerefNonPointerDiagnosed(t *testing.T) {
	f := mustParse(t, `int g(int x) { return *x; }`)
	info := Check(f)
	if len(info.Errors) == 0 {
		t.Fatal("deref of int not diagnosed")
	}
}

func TestCheckArrowOnNonPointerDiagnosed(t *testing.T) {
	f := mustParse(t, `
struct s { int a; };
int g(struct s v) { return v->a; }`)
	info := Check(f)
	if len(info.Errors) == 0 {
		t.Fatal("-> on value not diagnosed")
	}
}

func TestCheckUnknownFieldDiagnosed(t *testing.T) {
	f := mustParse(t, `
struct s { int a; };
int g(struct s *v) { return v->nope; }`)
	info := Check(f)
	if len(info.Errors) == 0 {
		t.Fatal("unknown field not diagnosed")
	}
}

func TestCheckCallNonFunctionDiagnosed(t *testing.T) {
	f := mustParse(t, `
int g(void) {
    int x;
    x = 1;
    return x(2);
}`)
	info := Check(f)
	if len(info.Errors) == 0 {
		t.Fatal("calling an int not diagnosed")
	}
}

func TestTypeStrings(t *testing.T) {
	pt := &PtrType{Elem: TypeInt}
	if pt.String() != "int*" {
		t.Fatalf("ptr string %q", pt)
	}
	at := &ArrayType{Elem: TypeChar, N: 4}
	if at.String() != "char[4]" {
		t.Fatalf("array string %q", at)
	}
	ft := &FuncType{Ret: TypeVoid, Params: []Type{TypeInt}, Variadic: true}
	if ft.String() != "void (int, ...)" {
		t.Fatalf("func string %q", ft)
	}
	st := &StructType{Name: "s", Union: true}
	if st.String() != "union s" {
		t.Fatalf("union string %q", st)
	}
}

func TestFuncNamesSorted(t *testing.T) {
	_, info := mustCheck(t, `
int b(void) { return 0; }
int a(void) { return 0; }`)
	names := info.FuncNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("FuncNames = %v", names)
	}
}
