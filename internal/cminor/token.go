// Package cminor implements the front-end for CMinor, the C subset
// RegionWiz analyzes. It substitutes for the Phoenix compiler framework
// the paper used (Section 5.1): a lexer, parser, and type checker whose
// output feeds the IR lowering in package ir.
//
// The subset covers everything the paper's region idioms need: structs
// and unions, enums, pointers and pointers-to-pointers, function
// pointers, casts (including int<->pointer), address-of, string
// literals, arrays, typedefs, and the usual statement forms including
// switch with C fallthrough. It deliberately omits what RegionWiz's
// analysis is documented as unsound for anyway (Section 5.5): varargs
// access, bitfields, goto, and non-constant pointer arithmetic are all
// rejected or treated conservatively downstream.
package cminor

import "fmt"

// Kind classifies a token.
type Kind uint8

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	INTLIT
	CHARLIT
	STRLIT

	// Keywords.
	KwInt
	KwChar
	KwLong
	KwUnsigned
	KwVoid
	KwStruct
	KwUnion
	KwTypedef
	KwIf
	KwElse
	KwWhile
	KwFor
	KwDo
	KwReturn
	KwBreak
	KwContinue
	KwSizeof
	KwExtern
	KwStatic
	KwConst
	KwNull // NULL
	KwEnum
	KwSwitch
	KwCase
	KwDefault

	// Punctuation and operators.
	LParen
	RParen
	LBrace
	RBrace
	LBrack
	RBrack
	Semi
	Comma
	Dot
	Arrow
	Star
	Plus
	Minus
	Slash
	Percent
	Amp
	Pipe
	Caret
	Tilde
	Not
	Assign
	PlusAssign
	MinusAssign
	Eq
	Neq
	Lt
	Gt
	Le
	Ge
	AndAnd
	OrOr
	Question
	Colon
	Inc
	Dec
	Ellipsis
)

var kindNames = map[Kind]string{
	EOF: "EOF", IDENT: "identifier", INTLIT: "integer", CHARLIT: "char", STRLIT: "string",
	KwInt: "int", KwChar: "char", KwLong: "long", KwUnsigned: "unsigned", KwVoid: "void",
	KwStruct: "struct", KwUnion: "union", KwTypedef: "typedef",
	KwIf: "if", KwElse: "else", KwWhile: "while", KwFor: "for", KwDo: "do",
	KwReturn: "return", KwBreak: "break", KwContinue: "continue",
	KwSizeof: "sizeof", KwExtern: "extern", KwStatic: "static", KwConst: "const", KwNull: "NULL",
	KwEnum: "enum", KwSwitch: "switch", KwCase: "case", KwDefault: "default",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}", LBrack: "[", RBrack: "]",
	Semi: ";", Comma: ",", Dot: ".", Arrow: "->",
	Star: "*", Plus: "+", Minus: "-", Slash: "/", Percent: "%",
	Amp: "&", Pipe: "|", Caret: "^", Tilde: "~", Not: "!",
	Assign: "=", PlusAssign: "+=", MinusAssign: "-=",
	Eq: "==", Neq: "!=", Lt: "<", Gt: ">", Le: "<=", Ge: ">=",
	AndAnd: "&&", OrOr: "||", Question: "?", Colon: ":",
	Inc: "++", Dec: "--", Ellipsis: "...",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"int": KwInt, "char": KwChar, "long": KwLong, "unsigned": KwUnsigned, "void": KwVoid,
	"struct": KwStruct, "union": KwUnion, "typedef": KwTypedef,
	"if": KwIf, "else": KwElse, "while": KwWhile, "for": KwFor, "do": KwDo,
	"return": KwReturn, "break": KwBreak, "continue": KwContinue,
	"sizeof": KwSizeof, "extern": KwExtern, "static": KwStatic, "const": KwConst,
	"NULL": KwNull,
	"enum": KwEnum, "switch": KwSwitch, "case": KwCase, "default": KwDefault,
}

// Pos is a source position.
type Pos struct {
	File string
	Line int
	Col  int
}

func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// IsValid reports whether the position carries real location info.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is one lexical token.
type Token struct {
	Kind Kind
	Text string // identifier spelling, literal text (unquoted for strings)
	Val  int64  // integer/char literal value
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT:
		return t.Text
	case INTLIT:
		return fmt.Sprintf("%d", t.Val)
	case STRLIT:
		return fmt.Sprintf("%q", t.Text)
	}
	return t.Kind.String()
}

// Error is a front-end diagnostic with a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...interface{}) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
