package oracle

import (
	"fmt"
	"math/rand"

	"repro/internal/workloads"
)

// Case is one program under test: a generated executable plus the
// mutations applied on top of the generator's output.
type Case struct {
	Name string
	Seed int64
	Spec workloads.Spec
	Exe  workloads.Exe
	// Sources is the path -> source map after mutation.
	Sources map[string]string
	// Mutations describes the applied (and validated) mutations.
	Mutations []string
}

// caseTemplates are the spec shapes the seed sweep cycles through.
// Together they plant every Pattern kind, cover both region
// interfaces, and include a multi-file shared-library package —
// small enough that a full differential check stays fast.
func caseTemplates() []workloads.Spec {
	return []workloads.Spec{
		{Name: "o-sibling", Exes: 1, Stages: 1, Depth: 1, Fanout: 1,
			Interface: "apr", Plants: []workloads.Pattern{workloads.SiblingLeak}},
		{Name: "o-iter", Exes: 1, Stages: 1, Depth: 2, Fanout: 1,
			Interface: "apr", Plants: []workloads.Pattern{workloads.IteratorEscape}},
		{Name: "o-string", Exes: 1, Stages: 1, Depth: 1, Fanout: 2,
			Interface: "rc", Plants: []workloads.Pattern{workloads.StringShare}},
		{Name: "o-invert", Exes: 1, Stages: 2, Depth: 1, Fanout: 1,
			Interface: "apr", Plants: []workloads.Pattern{workloads.InvertedLifetime}},
		{Name: "o-temp", Exes: 1, Stages: 1, Depth: 2, Fanout: 2,
			Interface: "rc", Plants: []workloads.Pattern{workloads.TemporaryInconsistency}},
		{Name: "o-alias", Exes: 1, Stages: 1, Depth: 1, Fanout: 1,
			Interface: "apr", Plants: []workloads.Pattern{workloads.AliasFalsePositive}},
		{Name: "o-mix", Exes: 1, Stages: 2, Depth: 2, Fanout: 2,
			Interface: "apr", Plants: []workloads.Pattern{
				workloads.SiblingLeak, workloads.InvertedLifetime}},
		{Name: "o-lib", Exes: 1, Stages: 2, Depth: 2, Fanout: 1,
			Interface: "apr", SharedLib: true,
			Plants: []workloads.Pattern{workloads.SiblingLeak, workloads.IteratorEscape}},
		{Name: "o-rc-mix", Exes: 1, Stages: 2, Depth: 2, Fanout: 1,
			Interface: "rc", Plants: []workloads.Pattern{
				workloads.StringShare, workloads.TemporaryInconsistency}},
		{Name: "o-clean", Exes: 1, Stages: 2, Depth: 2, Fanout: 2,
			Interface: "apr", Plants: nil},
	}
}

// NewCase derives a case deterministically from the seed: the
// template is chosen by cycling (so every template appears in any
// window of len(templates) consecutive seeds), the package is
// generated with the seed, and up to two mutations are applied —
// every fourth seed stays unmutated so the pristine generator output
// remains covered.
func NewCase(seed int64) *Case {
	templates := caseTemplates()
	idx := int(((seed % int64(len(templates))) + int64(len(templates))) % int64(len(templates)))
	spec := templates[idx]
	pkg := workloads.Generate(spec, seed)
	exe := pkg.Exes[0]
	c := &Case{
		Name:    fmt.Sprintf("%s-seed%d", spec.Name, seed),
		Seed:    seed,
		Spec:    spec,
		Exe:     exe,
		Sources: pkg.SourcesFor(exe),
	}
	if seed%4 != 0 {
		rng := rand.New(rand.NewSource(seed*2654435761 + 1))
		c.applyMutations(rng, 1+rng.Intn(2))
	}
	return c
}
