package oracle

import (
	"context"
	"fmt"

	"repro/internal/cminor"
	"repro/internal/core"
)

// missExplainer attaches a why-provenance derivation tree to
// soundness misses: the missed dynamic pair has no covering warning,
// so the most useful triage context is what the analysis DID derive
// closest to it — the nearest reported warning's explanation, showing
// which base facts and rules fired there. Everything is built lazily
// (most cases have no misses, and constructing an Explainer for a
// provenance-less run replays the region strata) and every failure
// degrades into a note: attaching an explanation must never turn a
// violation report into a harness error.
type missExplainer struct {
	a     *core.Analysis
	built bool
	ex    *core.Explainer
	sites []core.PairSite
	err   error
}

// nearest renders the explanation of the reported warning whose
// allocation-site pair is closest to the missed dynamic pair.
func (m *missExplainer) nearest(src, dst cminor.Pos) string {
	if len(m.a.Report.Warnings) == 0 {
		return "no warnings reported under this configuration; nothing was derived near the missed pair"
	}
	if !m.built {
		m.built = true
		m.ex, m.err = m.a.Explainer(context.Background())
		if m.err == nil {
			m.sites = m.a.PairSites()
		}
	}
	if m.err != nil {
		return fmt.Sprintf("explanation unavailable: %v", m.err)
	}
	best, bestDist := 1, -1
	for i, s := range m.sites {
		d := posDist(s.Src, src) + posDist(s.Dst, dst)
		if bestDist < 0 || d < bestDist {
			best, bestDist = i+1, d
		}
	}
	e, err := m.ex.Explain(context.Background(), best)
	if err != nil {
		return fmt.Sprintf("explanation unavailable: %v", err)
	}
	return fmt.Sprintf("nearest warning %d (%s -> %s):\n%s",
		best, m.sites[best-1].Src, m.sites[best-1].Dst, e)
}

// posDist scores how far apart two source positions are: positions in
// the same file compare by line distance; a file change outweighs any
// in-file distance.
func posDist(a, b cminor.Pos) int {
	if a.File != b.File {
		return 1 << 20
	}
	d := a.Line - b.Line
	if d < 0 {
		d = -d
	}
	return d
}
