package oracle

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workloads"
)

// TestCaseDeterminism: the whole harness is seeded — the same seed
// must derive byte-identical cases (sources and mutation log), or
// repros stop reproducing.
func TestCaseDeterminism(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a, b := NewCase(seed), NewCase(seed)
		if a.Name != b.Name || len(a.Sources) != len(b.Sources) {
			t.Fatalf("seed %d: case shape differs", seed)
		}
		for p, src := range a.Sources {
			if b.Sources[p] != src {
				t.Fatalf("seed %d: source %s differs between derivations", seed, p)
			}
		}
		if strings.Join(a.Mutations, ";") != strings.Join(b.Mutations, ";") {
			t.Fatalf("seed %d: mutation log differs", seed)
		}
	}
}

// TestMutatedCasesAreValid: every derived case — mutations included —
// must pass the front end, and the mutation layer must actually fire
// on a healthy fraction of seeds.
func TestMutatedCasesAreValid(t *testing.T) {
	mutated := 0
	for seed := int64(0); seed < 40; seed++ {
		c := NewCase(seed)
		if _, _, err := parseAll(c.Sources); err != nil {
			t.Fatalf("seed %d (%s): mutated case rejected by front end: %v", seed, c.Name, err)
		}
		if len(c.Mutations) > 0 {
			mutated++
		}
	}
	if mutated < 10 {
		t.Fatalf("only %d/40 cases mutated; mutation layer is not firing", mutated)
	}
}

func TestClassOf(t *testing.T) {
	for fn, want := range map[string]string{
		"pattern_sibling_leak_0":           "sibling-leak",
		"pattern_temporary_inconsistency_2": "temporary-inconsistency",
		"stage_0_1":                        "stage",
		"lib_alloc_node":                   "lib",
		"inflate_7":                        "mutated",
		"main":                             "main",
		"filler_3":                         "other",
	} {
		if got := classOf(fn); got != want {
			t.Errorf("classOf(%q) = %q, want %q", fn, got, want)
		}
	}
}

// TestSweepClean is the bounded CI face of the invariant: a small
// seed window must uphold soundness and parity, and the dynamic
// oracle must actually observe planted true-bug patterns (an oracle
// that never sees a violation proves nothing).
func TestSweepClean(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is slow")
	}
	sum, err := Sweep(context.Background(), SweepConfig{Seeds: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Clean() {
		for _, f := range sum.Failures {
			t.Errorf("FAIL %s (seed %d): %s", f.Case, f.Seed, f.Violation)
		}
		t.Fatalf("sweep not clean: %d failure(s)", len(sum.Failures))
	}
	if sum.DynamicViolations == 0 {
		t.Fatal("sweep observed no dynamic violations; the oracle is blind")
	}
	observed := 0
	for _, k := range PatternKinds() {
		if sum.PatternObserved[string(k)] > 0 {
			observed++
		}
	}
	if observed < 3 {
		t.Fatalf("only %d pattern kinds observed dynamically in the window", observed)
	}
}

// TestCap1LibMergeRegression pins the first divergence triaged from
// the default 100-seed sweep (see testdata/sweep-manifest.json):
// seed 57's o-lib case, where a region-op-swap mutation reroutes the
// shared library's allocation to the caller's pool. The resulting
// dynamic pair has both allocation sites inside lib_alloc_node, so
// distinguishing its instances needs context cloning: the default
// configuration must report it, ContextCap=1 must miss it (the
// documented Section 7 ablation), and the miss must be absorbed by
// an explicit allowlist entry — never a silent pass.
func TestCap1LibMergeRegression(t *testing.T) {
	c := NewCase(57)
	if c.Spec.Name != "o-lib" {
		t.Fatalf("seed 57 derived %s; the template cycle changed — re-triage the sweep", c.Spec.Name)
	}
	h := NewHarness()
	res, err := h.Check(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unallowed()) != 0 {
		t.Fatalf("unexpected unallowlisted violations: %v", res.Unallowed())
	}
	var cap1Miss *Violation
	for i, v := range res.Violations {
		if v.Kind == KindSoundness && v.Config == "cap1" && v.Class == "lib" {
			cap1Miss = &res.Violations[i]
		}
		if v.Kind == KindSoundness && v.Config == "default" {
			t.Fatalf("default config missed a dynamic pair: %s", v)
		}
	}
	if cap1Miss == nil {
		t.Fatal("cap1 no longer misses the lib-merge pair; the regression shape changed — update the manifest")
	}
	if !cap1Miss.Allowed || cap1Miss.Rule == "" {
		t.Fatalf("cap1 miss not explicitly allowlisted: %s", *cap1Miss)
	}
	// Misses arrive pre-triaged: the nearest reported warning's
	// derivation tree rides along (or, for an empty report, a note
	// saying nothing was derived).
	if cap1Miss.Explanation == "" {
		t.Fatal("cap1 soundness miss carries no explanation")
	}
	if !strings.Contains(cap1Miss.Explanation, "nearest warning") &&
		!strings.Contains(cap1Miss.Explanation, "no warnings reported") {
		t.Fatalf("cap1 miss explanation is neither a tree nor the empty-report note:\n%s", cap1Miss.Explanation)
	}
}

// TestHarnessDetectsBrokenAnalysis is the harness's own oracle: wire
// in an analysis whose pairs rule is deliberately broken (every
// warning dropped) and the harness must report an unallowlisted
// soundness violation, the shrinker must reduce the case, and the
// repro writer must persist it.
func TestHarnessDetectsBrokenAnalysis(t *testing.T) {
	c := NewCase(0) // o-sibling, unmutated: plants a true sibling leak
	h := NewHarness()
	h.Configs = []AnalysisConfig{{Name: "default", Opts: core.Options{}, Sound: true}}
	h.AnalyzeFn = func(opts core.Options, sources map[string]string) (*core.Analysis, error) {
		a, err := core.AnalyzeSource(opts, sources)
		if err == nil {
			a.Report.Warnings = nil // the broken pairs rule
		}
		return a, err
	}
	res, err := h.Check(c)
	if err != nil {
		t.Fatal(err)
	}
	bad := res.Unallowed()
	if len(bad) == 0 {
		t.Fatal("broken analysis not detected: no unallowlisted violations")
	}
	v := bad[0]
	if v.Kind != KindSoundness || v.Class != string(workloads.SiblingLeak) {
		t.Fatalf("expected a sibling-leak soundness violation, got %s", v)
	}
	if !strings.Contains(v.Explanation, "no warnings reported") {
		t.Fatalf("empty-report miss should note nothing was derived, got: %q", v.Explanation)
	}

	minimized := Minimize(c.Sources, h.FailurePredicate(v), 0)
	if lineCount(minimized) >= lineCount(c.Sources) {
		t.Fatalf("shrinker made no progress: %d -> %d lines",
			lineCount(c.Sources), lineCount(minimized))
	}
	if !h.FailurePredicate(v)(minimized) {
		t.Fatal("minimized case no longer fails")
	}

	dir := filepath.Join(t.TempDir(), "repro")
	if err := NewRepro(res, minimized).Write(dir, res.Reports); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"case.json",
		filepath.Join("src", c.Exe.Name+".c"),
		filepath.Join("min", c.Exe.Name+".c"),
		"report-default-explicit.txt",
		"report-default-bdd.txt",
	} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Errorf("repro artifact %s missing: %v", want, err)
		}
	}
}

func lineCount(sources map[string]string) int {
	n := 0
	for _, src := range sources {
		n += strings.Count(src, "\n")
	}
	return n
}

// TestMinimizeDiscardsInvalid: the shrinker must treat candidates the
// predicate rejects (including ill-formed programs) as
// non-reproducing and keep the last failing form.
func TestMinimizeDiscardsInvalid(t *testing.T) {
	src := map[string]string{"a.c": "int f(void) {\n    return 1;\n}\nint main(void) {\n    int x;\n    x = f();\n    return x;\n}\n"}
	// Fails iff still well-formed and f is still defined.
	pred := func(cand map[string]string) bool {
		_, _, err := parseAll(cand)
		return err == nil && strings.Contains(cand["a.c"], "int f(void)")
	}
	min := Minimize(src, pred, 0)
	if !pred(min) {
		t.Fatal("minimized form does not satisfy the predicate")
	}
	// The call to f cannot be deleted (deleting it alone keeps the
	// program valid, so the shrinker will try) — but x = f() must
	// stay or go atomically with x's uses; whatever remains must be
	// well-formed.
	if _, _, err := parseAll(min); err != nil {
		t.Fatalf("minimized form ill-formed: %v", err)
	}
}
