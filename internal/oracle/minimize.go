package oracle

import (
	"sort"
	"strings"
)

// Failing decides whether a candidate source set still exhibits the
// failure being minimized. Predicates must return false for programs
// the front end rejects (the shrinker deletes lines blindly and
// relies on the predicate to discard ill-formed candidates).
type Failing func(sources map[string]string) bool

// Minimize greedily shrinks a failing source set while the predicate
// keeps failing: whole files first (a shared library that is not part
// of the failure drops in one step), then function bodies, then
// individual statements. Greedy single-pass deletion repeated to a
// fixpoint is not minimal in general but in practice reduces the
// generator's output to a handful of lines. maxEvals bounds predicate
// evaluations (each one is a full interpret-plus-analyze cycle);
// <= 0 means the default of 400.
func Minimize(sources map[string]string, stillFails Failing, maxEvals int) map[string]string {
	if maxEvals <= 0 {
		maxEvals = 400
	}
	evals := 0
	try := func(cand map[string]string) bool {
		if evals >= maxEvals {
			return false
		}
		evals++
		return stillFails(cand)
	}

	cur := copySources(sources)
	if !try(cur) {
		// The failure does not reproduce (or the budget is zero);
		// return the input unchanged.
		return cur
	}

	// Pass 0: drop whole files.
	if len(cur) > 1 {
		for _, p := range sortedPaths(cur) {
			if len(cur) == 1 {
				break
			}
			cand := copySources(cur)
			delete(cand, p)
			if try(cand) {
				cur = cand
			}
		}
	}

	for pass := 0; pass < 4; pass++ {
		progress := false
		for _, p := range sortedPaths(cur) {
			// Function-block deletion, last block first (later
			// functions reference earlier ones, not vice versa).
			blocks := topLevelBlocks(cur[p])
			for i := len(blocks) - 1; i >= 0; i-- {
				cand := copySources(cur)
				cand[p] = deleteLines(cur[p], blocks[i][0], blocks[i][1])
				if try(cand) {
					cur = cand
					progress = true
					blocks = topLevelBlocks(cur[p])
					i = len(blocks) // restart over fresh block list
				}
			}
			// Statement deletion, bottom-up.
			lines := strings.Split(cur[p], "\n")
			for i := len(lines) - 1; i >= 0; i-- {
				t := strings.TrimSpace(lines[i])
				if !strings.HasSuffix(t, ";") || strings.HasPrefix(t, "extern") ||
					strings.HasPrefix(t, "typedef") {
					continue
				}
				cand := copySources(cur)
				cand[p] = deleteLines(cur[p], i, i)
				if try(cand) {
					cur = cand
					progress = true
					lines = strings.Split(cur[p], "\n")
				}
			}
		}
		if !progress || evals >= maxEvals {
			break
		}
	}
	return cur
}

func copySources(in map[string]string) map[string]string {
	out := make(map[string]string, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

func sortedPaths(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// topLevelBlocks finds [start, end] line ranges of top-level brace
// blocks: a block opens at a column-0 line ending in "{" and closes
// at the next column-0 "}" line. The generator (and hand-written
// CMinor in this repo) follows that layout.
func topLevelBlocks(src string) [][2]int {
	lines := strings.Split(src, "\n")
	var out [][2]int
	start := -1
	for i, l := range lines {
		if start < 0 {
			if len(l) > 0 && l[0] != ' ' && l[0] != '\t' && l[0] != '}' &&
				strings.HasSuffix(strings.TrimRight(l, " \t"), "{") {
				start = i
			}
		} else if strings.TrimRight(l, " \t") == "}" {
			out = append(out, [2]int{start, i})
			start = -1
		}
	}
	return out
}

// deleteLines removes lines [from, to] (inclusive, 0-based).
func deleteLines(src string, from, to int) string {
	lines := strings.Split(src, "\n")
	if from < 0 || to >= len(lines) || from > to {
		return src
	}
	out := append(append([]string{}, lines[:from]...), lines[to+1:]...)
	return strings.Join(out, "\n")
}
