package oracle

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Repro is the persisted form of one failing case: everything needed
// to reproduce and debug it without the harness — the seed, the
// mutated sources, the minimized sources, the dynamic ground-truth
// trace, and the canonical reports of both backends.
type Repro struct {
	Schema     string            `json:"schema"`
	Name       string            `json:"name"`
	Seed       int64             `json:"seed"`
	Spec       string            `json:"spec"`
	Mutations  []string          `json:"mutations,omitempty"`
	Violations []Violation       `json:"violations"`
	Dynamic    []string          `json:"dynamic_trace"`
	Sources    map[string]string `json:"-"`
	Minimized  map[string]string `json:"-"`
}

// ReproSchemaV1 versions the repro case.json document.
const ReproSchemaV1 = "regionwiz/oracle-repro/v1"

// NewRepro assembles a Repro from a checked case result. minimized
// may be nil when the shrinker was not run.
func NewRepro(res *CaseResult, minimized map[string]string) *Repro {
	r := &Repro{
		Schema:     ReproSchemaV1,
		Name:       res.Case.Name,
		Seed:       res.Case.Seed,
		Spec:       res.Case.Spec.Name,
		Mutations:  res.Case.Mutations,
		Violations: res.Violations,
		Sources:    res.Case.Sources,
		Minimized:  minimized,
	}
	for _, d := range res.Dynamic {
		r.Dynamic = append(r.Dynamic,
			fmt.Sprintf("argc=%d class=%s %s -> %s", d.Argc, d.Class, d.Src, d.Dst))
	}
	return r
}

// Write persists the repro under dir: case.json, src/<path> for the
// failing sources, min/<path> for the minimized ones, and
// report-<config>-<backend>.txt canonical reports.
func (r *Repro) Write(dir string, reports map[string][]byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	meta, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "case.json"), append(meta, '\n'), 0o644); err != nil {
		return err
	}
	writeTree := func(sub string, sources map[string]string) error {
		if len(sources) == 0 {
			return nil
		}
		d := filepath.Join(dir, sub)
		if err := os.MkdirAll(d, 0o755); err != nil {
			return err
		}
		for p, src := range sources {
			if err := os.WriteFile(filepath.Join(d, filepath.Base(p)), []byte(src), 0o644); err != nil {
				return err
			}
		}
		return nil
	}
	if err := writeTree("src", r.Sources); err != nil {
		return err
	}
	if err := writeTree("min", r.Minimized); err != nil {
		return err
	}
	for key, body := range reports {
		name := "report-" + filepath.Base(filepath.Dir(key)) + "-" + filepath.Base(key) + ".txt"
		if err := os.WriteFile(filepath.Join(dir, name), body, 0o644); err != nil {
			return err
		}
	}
	return nil
}
