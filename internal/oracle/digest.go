package oracle

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"repro/internal/core"
)

// CanonicalReport renders a report in a stable byte form containing
// every result-bearing field — warnings (message, sites, regions,
// rank, pair counts) and the relation-size statistics — while
// excluding wall times and the per-phase cost breakdown, which are
// legitimately nondeterministic. Backend parity and run-to-run
// determinism are defined as byte equality of this form.
func CanonicalReport(r *core.Report) []byte {
	var sb strings.Builder
	fmt.Fprintf(&sb, "warnings=%d\n", len(r.Warnings))
	for i, w := range r.Warnings {
		fmt.Fprintf(&sb, "w%d high=%t src=%s dst=%s off=%d pairs=%d srcreg=%q dstreg=%q cause=%q msg=%q\n",
			i, w.High(), w.SrcPos, w.DstPos, w.IPair.Off, w.IPair.Pairs,
			w.SrcRegion, w.DstRegion, w.Cause, w.Message)
	}
	s := r.Stats
	fmt.Fprintf(&sb, "stats R=%d H=%d sub=%d own=%d heap=%d rpairs=%d opairs=%d ipairs=%d high=%d contexts=%d funcs=%d instrs=%d causes=%d highcauses=%d\n",
		s.R, s.H, s.Sub, s.Own, s.Heap, s.RPairs, s.OPairs, s.IPairs,
		s.High, s.Contexts, s.Funcs, s.Instrs, s.Causes, s.HighCauses)
	// The throttle marking is result-bearing: parity and determinism
	// must cover it. Written only for throttled runs so pre-existing
	// digests of fully precise runs stay valid.
	if s.Throttled() {
		fmt.Fprintf(&sb, "precision policy=%s ctx_capped=%t ptr_capped_vars=%d\n",
			s.Policy, s.CtxCapped, s.PtrCappedVars)
	}
	return []byte(sb.String())
}

// ReportDigest is the hex SHA-256 of the canonical report form.
func ReportDigest(r *core.Report) string {
	sum := sha256.Sum256(CanonicalReport(r))
	return hex.EncodeToString(sum[:])
}
