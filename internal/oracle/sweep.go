package oracle

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/pipeline"
	"repro/internal/workloads"
)

// SummarySchemaV1 versions the sweep summary document.
const SummarySchemaV1 = "regionwiz/oracle/v1"

// SweepConfig configures a seed sweep.
type SweepConfig struct {
	// Seeds is the number of consecutive seeds checked, starting at
	// Start.
	Seeds int
	Start int64
	// Jobs bounds concurrent cases (0 = GOMAXPROCS).
	Jobs int
	// Harness defaults to NewHarness().
	Harness *Harness
	// ReproDir, when set, receives one subdirectory per failing case
	// (minimized repro included). Empty disables artifact writing.
	ReproDir string
	// Minimize runs the shrinker on failing cases (slower, smaller
	// artifacts).
	Minimize bool
}

// Summary is the machine-readable sweep outcome, schema
// regionwiz/oracle/v1.
type Summary struct {
	Schema  string `json:"schema"`
	Seeds   int    `json:"seeds"`
	Start   int64  `json:"start"`
	Cases   int    `json:"cases"`
	Mutated int    `json:"mutated"`
	// Errors counts cases the harness could not check (front-end or
	// analysis failure) — always a harness bug, never expected.
	Errors       int `json:"errors"`
	BudgetAborts int `json:"budget_aborts"`
	// DynamicViolations counts the concrete ground-truth pairs
	// observed across all cases.
	DynamicViolations int `json:"dynamic_violations"`
	// Soundness/Parity/Determinism/Throttle count invariant failures;
	// "allowed" are the explicitly allowlisted imprecision classes
	// (only soundness misses can be allowlisted — parity, determinism,
	// and silent-throttle failures are always hard).
	Soundness   ViolationCount `json:"soundness"`
	Parity      ViolationCount `json:"parity"`
	Determinism ViolationCount `json:"determinism"`
	Throttle    ViolationCount `json:"throttle"`
	// PatternPlanted / PatternObserved count, per planted pattern
	// kind, the cases planting it and the cases where a dynamic
	// violation was classified to it — the oracle's coverage of the
	// generator's bug catalog.
	PatternPlanted  map[string]int `json:"pattern_planted"`
	PatternObserved map[string]int `json:"pattern_observed"`
	// AllowedByRule breaks the allowed count down by allowlist
	// reason, so known imprecision stays visible in the document.
	AllowedByRule map[string]int `json:"allowed_by_rule,omitempty"`
	// Failures lists the unallowlisted violations (the sweep's
	// verdict is clean iff this is empty).
	Failures []Failure `json:"failures"`
}

// ViolationCount splits a violation kind into unallowlisted and
// allowlisted occurrences.
type ViolationCount struct {
	Failed  int `json:"failed"`
	Allowed int `json:"allowed"`
}

// Failure is one unallowlisted violation in the summary.
type Failure struct {
	Case      string    `json:"case"`
	Seed      int64     `json:"seed"`
	Mutations []string  `json:"mutations,omitempty"`
	Violation Violation `json:"violation"`
	// ReproDir is where the artifact was written ("" when artifact
	// writing is disabled).
	ReproDir string `json:"repro_dir,omitempty"`
}

// Clean reports whether the sweep upheld both invariants.
func (s *Summary) Clean() bool {
	return s.Errors == 0 && len(s.Failures) == 0
}

// Sweep checks Seeds consecutive cases and aggregates the outcome.
func Sweep(ctx context.Context, cfg SweepConfig) (*Summary, error) {
	h := cfg.Harness
	if h == nil {
		h = NewHarness()
	}
	seeds := make([]int64, cfg.Seeds)
	for i := range seeds {
		seeds[i] = cfg.Start + int64(i)
	}
	type outcome struct {
		c   *Case
		res *CaseResult
		err error
	}
	results := pipeline.RunCorpus(ctx, seeds, cfg.Jobs, func(ctx context.Context, seed int64) (outcome, error) {
		c := NewCase(seed)
		res, err := h.Check(c)
		return outcome{c: c, res: res, err: err}, nil
	})

	sum := &Summary{
		Schema:          SummarySchemaV1,
		Seeds:           cfg.Seeds,
		Start:           cfg.Start,
		PatternPlanted:  make(map[string]int),
		PatternObserved: make(map[string]int),
		AllowedByRule:   make(map[string]int),
		Failures:        []Failure{},
	}
	for _, r := range results {
		o := r.Out
		sum.Cases++
		if len(o.c.Mutations) > 0 {
			sum.Mutated++
		}
		for _, p := range o.c.Exe.Plants {
			sum.PatternPlanted[string(p.Pattern)]++
		}
		if o.err != nil {
			sum.Errors++
			sum.Failures = append(sum.Failures, Failure{
				Case: o.c.Name, Seed: o.c.Seed, Mutations: o.c.Mutations,
				Violation: Violation{Kind: "error", Detail: o.err.Error()},
			})
			continue
		}
		res := o.res
		sum.BudgetAborts += res.BudgetAborts
		sum.DynamicViolations += len(res.Dynamic)
		for p := range res.ObservedPatterns {
			sum.PatternObserved[string(p)]++
		}
		for _, v := range res.Violations {
			count := &sum.Soundness
			switch v.Kind {
			case KindParity:
				count = &sum.Parity
			case KindDeterminism:
				count = &sum.Determinism
			case KindThrottle:
				count = &sum.Throttle
			}
			if v.Allowed {
				count.Allowed++
				sum.AllowedByRule[v.Rule]++
				continue
			}
			count.Failed++
			f := Failure{Case: o.c.Name, Seed: o.c.Seed, Mutations: o.c.Mutations, Violation: v}
			if cfg.ReproDir != "" {
				dir := filepath.Join(cfg.ReproDir, o.c.Name)
				var minimized map[string]string
				if cfg.Minimize {
					minimized = Minimize(o.c.Sources, h.FailurePredicate(v), 0)
				}
				if err := NewRepro(res, minimized).Write(dir, res.Reports); err == nil {
					f.ReproDir = dir
				} else {
					f.Violation.Detail += fmt.Sprintf(" (repro write failed: %v)", err)
				}
			}
			sum.Failures = append(sum.Failures, f)
		}
	}
	sort.Slice(sum.Failures, func(i, j int) bool {
		if sum.Failures[i].Seed != sum.Failures[j].Seed {
			return sum.Failures[i].Seed < sum.Failures[j].Seed
		}
		return sum.Failures[i].Violation.Kind < sum.Failures[j].Violation.Kind
	})
	return sum, nil
}

// FailurePredicate returns a Failing that reproduces violation v: the
// candidate still fails when checking it under only v's configuration
// yields an unallowlisted violation of the same kind. Front-end
// failures count as "does not reproduce", which is what the shrinker
// needs to discard ill-formed deletions.
func (h *Harness) FailurePredicate(v Violation) Failing {
	cfgName := v.Config
	// Determinism violations carry "config/backend" names.
	if j := strings.IndexByte(cfgName, '/'); j >= 0 {
		cfgName = cfgName[:j]
	}
	sub := &Harness{
		Allow:     h.Allow,
		Argcs:     h.Argcs,
		Interp:    h.Interp,
		AnalyzeFn: h.AnalyzeFn,
	}
	for _, cfg := range h.Configs {
		if cfg.Name == cfgName {
			sub.Configs = []AnalysisConfig{cfg}
		}
	}
	if len(sub.Configs) == 0 {
		sub.Configs = h.Configs
	}
	return func(cand map[string]string) bool {
		res, err := sub.Check(&Case{Name: "minimize", Sources: cand})
		if err != nil {
			return false
		}
		for _, got := range res.Unallowed() {
			if got.Kind == v.Kind {
				return true
			}
		}
		return false
	}
}

// PatternKinds lists every pattern the generator can plant, for
// coverage accounting.
func PatternKinds() []workloads.Pattern {
	return []workloads.Pattern{
		workloads.SiblingLeak, workloads.IteratorEscape,
		workloads.StringShare, workloads.InvertedLifetime,
		workloads.TemporaryInconsistency, workloads.AliasFalsePositive,
	}
}
