// Package oracle is the differential soundness harness: it generates
// toy-language packages (plus a mutation layer on top of the
// generator), executes them under the concrete interpreter to collect
// ground-truth region-lifetime violations, runs the static analysis
// under several backend/context configurations, and checks two
// invariants:
//
//   - Soundness: every dynamic violation (an inconsistent access pair
//     observed by the Figure 4 semantics, per equation 4.12) is
//     covered by a statically reported warning, matched by
//     allocation-site source positions. Violations are classified by
//     the planted pattern they stem from, so the known-imprecision
//     classes of reduced-precision configurations are explicit
//     allowlist entries rather than silent passes.
//   - Backend parity: the explicit and BDD backends produce
//     byte-identical reports (times and per-phase metrics excluded),
//     and repeated runs of the same configuration are byte-identical
//     run to run.
//
// Failing cases are shrunk by a greedy statement/file-level minimizer
// (see Minimize) and written to a repro directory with the seed, the
// sources, the dynamic trace, and both backends' reports.
package oracle

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/bdd"
	"repro/internal/cminor"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/workloads"
)

// Violation kinds.
const (
	// KindSoundness: a dynamic inconsistency with no covering static
	// warning under some configuration.
	KindSoundness = "soundness"
	// KindParity: explicit and BDD reports differ under the same
	// configuration.
	KindParity = "parity"
	// KindDeterminism: two runs of the same configuration and backend
	// produced different reports.
	KindDeterminism = "determinism"
	// KindThrottle: the pipeline lost precision (capped contexts,
	// collapsed points-to sets, origin policy) without marking the
	// report throttled — silent precision loss.
	KindThrottle = "throttle"
)

// Violation is one invariant failure found by the harness.
type Violation struct {
	Kind   string `json:"kind"`
	Config string `json:"config"`
	// Class is the pattern classification of a soundness violation
	// (a workloads.Pattern name, or "stage"/"lib"/"main"/"mutated"),
	// empty for parity violations.
	Class string `json:"class,omitempty"`
	// Src/Dst are the allocation-site positions of an uncovered
	// dynamic pair.
	Src string `json:"src,omitempty"`
	Dst string `json:"dst,omitempty"`
	// Argc identifies the concrete run that observed the pair.
	Argc int64 `json:"argc,omitempty"`
	// Allowed marks a violation matched by an explicit allowlist
	// entry (a documented imprecision class, not a pass).
	Allowed bool `json:"allowed,omitempty"`
	// Rule is the reason string of the matching allowlist entry.
	Rule   string `json:"rule,omitempty"`
	Detail string `json:"detail,omitempty"`
	// Explanation pre-triages soundness misses: the derivation tree
	// (human rendering) of the reported warning nearest the missed
	// pair's allocation sites, showing what the analysis did derive
	// there — or a note that nothing was derived at all.
	Explanation string `json:"explanation,omitempty"`
}

func (v Violation) String() string {
	s := fmt.Sprintf("%s[%s]", v.Kind, v.Config)
	if v.Class != "" {
		s += " class=" + v.Class
	}
	if v.Src != "" {
		s += fmt.Sprintf(" %s -> %s (argc=%d)", v.Src, v.Dst, v.Argc)
	}
	if v.Detail != "" {
		s += " " + v.Detail
	}
	if v.Allowed {
		s += " (allowlisted: " + v.Rule + ")"
	}
	return s
}

// AllowRule allowlists one (configuration, class) soundness-violation
// combination. Allowlisted violations are still reported — flagged
// Allowed — so known imprecision stays visible.
type AllowRule struct {
	// Config is the configuration name ("" matches any).
	Config string
	// Class is the violation class ("*" matches any class — used for
	// configurations that are documented unsound as a whole).
	Class string
	// Reason documents why the imprecision is expected.
	Reason string
}

func (r AllowRule) matches(v Violation) bool {
	if r.Config != "" && r.Config != v.Config {
		return false
	}
	return r.Class == "*" || r.Class == v.Class
}

// AnalysisConfig is one static-analysis configuration the harness
// runs under both backends.
type AnalysisConfig struct {
	Name string
	Opts core.Options
	// Sound marks configurations expected to satisfy the soundness
	// invariant on the generator's fragment. Reduced-precision
	// configurations (context merging, k-CFA) are checked too, but
	// their failures must match an allowlist entry.
	Sound bool
	// SameReportsAs names a config whose canonical reports this one
	// must reproduce byte-for-byte on both backends — the invariant
	// that makes a knob "results-neutral" (solver worker counts, BDD
	// sizing). Empty means no cross-config requirement.
	SameReportsAs string
}

// DefaultConfigs returns the configuration matrix: the sound default
// (full call-path cloning, heap cloning on), the same analysis solved
// on four workers (must reproduce the default's reports byte-for-byte
// — parallelism is results-neutral by contract), the BDD kernel under
// minimum-table GC plus sifting reorder (lifecycle management is
// results-neutral too: collections and reorders must not perturb
// reports), the context-insensitive ablation (ContextCap 1 —
// documented unsound: merging loses the distinctions
// TestContextSensitivityMatters pins), 2-CFA numbering (bounded call
// strings merge deep paths the same way), the points-to cap (⊤
// collapse past one location per variable — tight enough to actually
// fire on the generated corpus), and allocation-site origin
// contexts. The three throttled configurations (cap1 via ContextCap,
// ptscap, origin) must mark every case where the throttle bit —
// harness-enforced by Check via the canonical report's precision
// line.
func DefaultConfigs() []AnalysisConfig {
	return []AnalysisConfig{
		{Name: "default", Opts: core.Options{}, Sound: true},
		{Name: "workers4",
			Opts:          core.Options{Solver: core.SolverOptions{Workers: 4}},
			Sound:         true,
			SameReportsAs: "default"},
		{Name: "gcreorder",
			Opts: core.Options{Solver: core.SolverOptions{
				BDD: bdd.Config{NodeSize: 1, GC: true, GCThreshold: 1, Reorder: true},
			}},
			Sound:         true,
			SameReportsAs: "default"},
		{Name: "cap1", Opts: core.Options{ContextCap: 1}},
		{Name: "kcfa2", Opts: core.Options{KCFA: 2}},
		{Name: "ptscap",
			Opts: core.Options{Solver: core.SolverOptions{PtsLimit: 1}}},
		{Name: "origin",
			Opts: core.Options{ContextPolicy: core.PolicyOrigin}},
	}
}

// Allowlist reasons, shared across configurations that lose precision
// the same way so the sweep summary's AllowedByRule buckets aggregate
// by cause, not by knob spelling.
const (
	// ReasonContextMerge covers every configuration whose context
	// numbering merges the region instances the pair rules must keep
	// distinct: ContextCap=1, bounded k-CFA call strings, and
	// allocation-site origin contexts all collapse deep call paths
	// (the ablations of Sections 6.3 and 7; core's
	// TestContextSensitivityMatters demonstrates the lost warning).
	ReasonContextMerge = "merged contexts collapse the region instances the pair rules need; documented unsound precision ablation (Sections 6.3, 7)"
	// ReasonPtsCap covers the points-to throttle: an overflowing set
	// collapses to the tainted ⊤ object, whose region membership is
	// unknown, so accesses routed through it can fall outside every
	// checked pair. Capped runs are marked throttled.
	ReasonPtsCap = "points-to cap collapses overflowing sets to the tainted ⊤ object; capped runs are marked throttled and misses are documented imprecision"
)

// DefaultAllowlist returns the documented imprecision classes of the
// reduced-precision configurations. Context merging (cap1), bounded
// call strings (kcfa2), and origin contexts share one reason — all
// three merge the region instances whose distinctness the pair rules
// need — and the points-to cap has its own. Every soundness class is
// allowlisted for them; the default configuration has no entries: any
// miss there is a bug.
func DefaultAllowlist() []AllowRule {
	return []AllowRule{
		{Config: "cap1", Class: "*", Reason: ReasonContextMerge},
		{Config: "kcfa2", Class: "*", Reason: ReasonContextMerge},
		{Config: "origin", Class: "*", Reason: ReasonContextMerge},
		{Config: "ptscap", Class: "*", Reason: ReasonPtsCap},
	}
}

// AnalyzeFunc is the analysis entry point the harness drives. Tests
// substitute a deliberately broken analysis to verify the harness
// catches rule regressions.
type AnalyzeFunc func(core.Options, map[string]string) (*core.Analysis, error)

// Harness checks one generated case against the differential
// invariants.
type Harness struct {
	Configs []AnalysisConfig
	Allow   []AllowRule
	// Argcs are the concrete schedules driven per case (argc is the
	// generated main's loop trip count).
	Argcs []int64
	// Interp bounds each concrete run; budget-exceeded runs
	// contribute the effects accumulated up to the abort.
	Interp interp.Options
	// AnalyzeFn defaults to core.AnalyzeSource.
	AnalyzeFn AnalyzeFunc
}

// NewHarness returns a harness with the default configuration matrix,
// allowlist, schedules, and interpreter budgets.
func NewHarness() *Harness {
	return &Harness{
		Configs: DefaultConfigs(),
		Allow:   DefaultAllowlist(),
		Argcs:   []int64{0, 1, 3},
		Interp: interp.Options{
			Fuel:       1 << 18,
			MaxObjects: 1 << 12,
			MaxDepth:   512,
		},
		AnalyzeFn: core.AnalyzeSource,
	}
}

// DynamicViolation is one concrete inconsistency observed by the
// interpreter, keyed by the allocation-site positions the static
// report uses.
type DynamicViolation struct {
	Src, Dst cminor.Pos
	Argc     int64
	Class    string
}

// CaseResult is the outcome of checking one case.
type CaseResult struct {
	Case *Case
	// Violations lists every invariant failure, including
	// allowlisted ones (flagged Allowed).
	Violations []Violation
	// Dynamic lists the concrete inconsistencies used as ground
	// truth.
	Dynamic []DynamicViolation
	// BudgetAborts counts concrete runs that ended on an interpreter
	// budget (their partial effects still count: events that happened
	// are ground truth regardless of how the run ended).
	BudgetAborts int
	// ObservedPatterns maps planted pattern kinds to whether a
	// dynamic violation was classified to them in this case.
	ObservedPatterns map[workloads.Pattern]bool
	// Reports keeps the canonical report bytes per "config/backend"
	// for repro dumps.
	Reports map[string][]byte
}

// Unallowed returns the violations not matched by the allowlist.
func (r *CaseResult) Unallowed() []Violation {
	var out []Violation
	for _, v := range r.Violations {
		if !v.Allowed {
			out = append(out, v)
		}
	}
	return out
}

// parseAll parses and checks the sources in sorted-path order,
// returning an error if the front end rejects them.
func parseAll(sources map[string]string) (*cminor.Info, []*cminor.File, error) {
	paths := make([]string, 0, len(sources))
	for p := range sources {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var files []*cminor.File
	for _, p := range paths {
		f, errs := cminor.Parse(p, sources[p])
		if len(errs) != 0 {
			return nil, nil, fmt.Errorf("parse %s: %v", p, errs[0])
		}
		files = append(files, f)
	}
	info := cminor.Check(files...)
	if len(info.Errors) != 0 {
		return nil, nil, fmt.Errorf("check: %v", info.Errors[0])
	}
	return info, files, nil
}

// Check runs the full differential pipeline on one case.
func (h *Harness) Check(c *Case) (*CaseResult, error) {
	res := &CaseResult{
		Case:             c,
		ObservedPatterns: make(map[workloads.Pattern]bool),
		Reports:          make(map[string][]byte),
	}
	info, files, err := parseAll(c.Sources)
	if err != nil {
		return nil, err
	}
	cls := newClassifier(files)

	// Ground truth: concrete runs across the schedule set.
	dynamic, aborts, err := h.runDynamic(info, files, cls)
	if err != nil {
		return nil, err
	}
	res.Dynamic = dynamic
	res.BudgetAborts = aborts
	planted := make(map[workloads.Pattern]bool)
	for _, p := range c.Exe.Plants {
		planted[p.Pattern] = true
	}
	for _, d := range dynamic {
		if planted[workloads.Pattern(d.Class)] {
			res.ObservedPatterns[workloads.Pattern(d.Class)] = true
		}
	}

	analyze := h.AnalyzeFn
	if analyze == nil {
		analyze = core.AnalyzeSource
	}
	for _, cfg := range h.Configs {
		expOpts := cfg.Opts
		expOpts.Solver.Backend = core.ExplicitBackend
		bddOpts := cfg.Opts
		bddOpts.Solver.Backend = core.BDDBackend

		exp, err := analyze(expOpts, c.Sources)
		if err != nil {
			return nil, fmt.Errorf("config %s explicit: %w", cfg.Name, err)
		}
		bdd, err := analyze(bddOpts, c.Sources)
		if err != nil {
			return nil, fmt.Errorf("config %s bdd: %w", cfg.Name, err)
		}
		expBytes := CanonicalReport(exp.Report)
		bddBytes := CanonicalReport(bdd.Report)
		res.Reports[cfg.Name+"/explicit"] = expBytes
		res.Reports[cfg.Name+"/bdd"] = bddBytes

		// Backend parity: canonical reports must be byte-identical.
		if string(expBytes) != string(bddBytes) {
			res.Violations = append(res.Violations, Violation{
				Kind:   KindParity,
				Config: cfg.Name,
				Detail: firstDiff(expBytes, bddBytes),
			})
		}
		// Run-to-run determinism, per backend.
		for _, rerun := range []struct {
			name string
			opts core.Options
			want []byte
		}{
			{"explicit", expOpts, expBytes},
			{"bdd", bddOpts, bddBytes},
		} {
			again, err := analyze(rerun.opts, c.Sources)
			if err != nil {
				return nil, fmt.Errorf("config %s %s rerun: %w", cfg.Name, rerun.name, err)
			}
			b := CanonicalReport(again.Report)
			if string(b) != string(rerun.want) {
				res.Violations = append(res.Violations, Violation{
					Kind:   KindDeterminism,
					Config: cfg.Name + "/" + rerun.name,
					Detail: firstDiff(rerun.want, b),
				})
			}
		}

		// Throttle visibility: precision lost inside the pipeline must
		// reach the report stats, or downstream consumers read a capped
		// run as a fully precise one.
		for _, run := range []struct {
			name string
			a    *core.Analysis
		}{{"explicit", exp}, {"bdd", bdd}} {
			if d := throttleMismatch(run.a); d != "" {
				res.Violations = append(res.Violations, Violation{
					Kind:   KindThrottle,
					Config: cfg.Name + "/" + run.name,
					Detail: d,
				})
			}
		}

		// Soundness: every dynamic pair covered by a static warning.
		static := make(map[string]bool)
		for _, ps := range exp.PairSites() {
			static[posKey(ps.Src, ps.Dst)] = true
		}
		miss := &missExplainer{a: exp}
		for _, d := range dynamic {
			if static[posKey(d.Src, d.Dst)] {
				continue
			}
			v := Violation{
				Kind:        KindSoundness,
				Config:      cfg.Name,
				Class:       d.Class,
				Src:         d.Src.String(),
				Dst:         d.Dst.String(),
				Argc:        d.Argc,
				Explanation: miss.nearest(d.Src, d.Dst),
			}
			for _, rule := range h.Allow {
				if rule.matches(v) {
					v.Allowed = true
					v.Rule = rule.Reason
					break
				}
			}
			res.Violations = append(res.Violations, v)
		}
	}

	// Cross-config identity: configs that differ only in
	// results-neutral knobs (worker counts) must have reproduced their
	// reference config's canonical reports on both backends.
	for _, cfg := range h.Configs {
		if cfg.SameReportsAs == "" {
			continue
		}
		for _, backend := range []string{"explicit", "bdd"} {
			want, ok := res.Reports[cfg.SameReportsAs+"/"+backend]
			if !ok {
				continue
			}
			got := res.Reports[cfg.Name+"/"+backend]
			if string(got) != string(want) {
				res.Violations = append(res.Violations, Violation{
					Kind:   KindDeterminism,
					Config: cfg.Name + "~" + cfg.SameReportsAs + "/" + backend,
					Detail: firstDiff(want, got),
				})
			}
		}
	}
	return res, nil
}

// runDynamic executes the case across the schedule set and collects
// the deduplicated dynamic violations.
func (h *Harness) runDynamic(info *cminor.Info, files []*cminor.File, cls *classifier) ([]DynamicViolation, int, error) {
	var out []DynamicViolation
	seen := make(map[string]bool)
	aborts := 0
	for _, argc := range h.Argcs {
		opts := h.Interp
		opts.Args = []int64{argc}
		eff, err := interp.Run(info, opts, files...)
		if err != nil {
			if isBudget(err) {
				aborts++
			} else {
				return nil, 0, fmt.Errorf("interp argc=%d: %w", argc, err)
			}
		}
		for _, inc := range eff.Inconsistencies() {
			src := inc.Edge.Src.Site
			var dst cminor.Pos
			if inc.Edge.DstReg != nil {
				dst = inc.Edge.DstReg.Site
			} else {
				dst = inc.Edge.DstObj.Site
			}
			k := posKey(src, dst)
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, DynamicViolation{
				Src:   src,
				Dst:   dst,
				Argc:  argc,
				Class: cls.classify(src, dst),
			})
		}
	}
	return out, aborts, nil
}

// throttleMismatch reports the first way a run's internal precision
// loss failed to reach its report stats ("" when the marking is
// faithful). Capped context numbering, collapsed points-to sets, and
// the origin policy must all be visible in the report — silent loss
// is exactly what the throttle contract forbids.
func throttleMismatch(a *core.Analysis) string {
	s := a.Report.Stats
	if got := a.Ptr.CappedVars(); got != s.PtrCappedVars {
		return fmt.Sprintf("pointer solver capped %d variable(s) but the report marks ptr_capped_vars=%d", got, s.PtrCappedVars)
	}
	if a.Numbering.Capped != s.CtxCapped {
		return fmt.Sprintf("context numbering capped=%t but the report marks ctx_capped=%t", a.Numbering.Capped, s.CtxCapped)
	}
	if (a.Opts.ContextPolicy == core.PolicyOrigin) != (s.Policy == core.PolicyOrigin) {
		return fmt.Sprintf("run used context policy %q but the report marks policy=%q", a.Opts.ContextPolicy, s.Policy)
	}
	return ""
}

func isBudget(err error) bool {
	return errors.Is(err, interp.ErrBudget)
}

func posKey(src, dst cminor.Pos) string {
	return src.String() + "|" + dst.String()
}

// firstDiff summarizes where two canonical reports diverge.
func firstDiff(a, b []byte) string {
	al := strings.Split(string(a), "\n")
	bl := strings.Split(string(b), "\n")
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d: %q vs %q", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("report lengths differ: %d vs %d lines", len(al), len(bl))
}
