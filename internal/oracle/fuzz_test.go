package oracle

import (
	"sort"
	"strings"
	"testing"
)

// FuzzAnalyzeOracle is the native fuzz face of the differential
// harness: the fuzzer explores the seed space, each seed derives a
// generated-and-mutated program, and the soundness/parity invariants
// are the oracle. A failure message carries the minimized sources, so
// a fuzz crash is immediately actionable without re-deriving the
// case.
//
// Run bounded in CI: go test ./internal/oracle -run '^$' -fuzz FuzzAnalyzeOracle -fuzztime 20s
func FuzzAnalyzeOracle(f *testing.F) {
	// Seed the corpus so every template (and the unmutated stride)
	// is covered before the fuzzer starts exploring.
	for s := int64(0); s < 12; s++ {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		c := NewCase(seed)
		h := NewHarness()
		res, err := h.Check(c)
		if err != nil {
			// The generator plus validated mutations must always
			// yield a checkable program; anything else is a harness
			// or front-end bug worth failing on.
			t.Fatalf("case %s unchecked: %v", c.Name, err)
		}
		bad := res.Unallowed()
		if len(bad) == 0 {
			return
		}
		min := Minimize(c.Sources, h.FailurePredicate(bad[0]), 0)
		var sb strings.Builder
		for _, v := range bad {
			sb.WriteString("  " + v.String() + "\n")
		}
		paths := make([]string, 0, len(min))
		for p := range min {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		for _, p := range paths {
			sb.WriteString("--- minimized " + p + " ---\n" + min[p] + "\n")
		}
		t.Fatalf("seed %d (%s, mutations %v):\n%s", seed, c.Name, c.Mutations, sb.String())
	})
}
