package oracle

import (
	"fmt"
	"math/rand"
	"regexp"
	"strings"
)

// The mutation layer perturbs the generator's output to explore
// programs the templates alone never produce: reordered statements
// move accesses across region lifetime boundaries, region-op swaps
// change which pool owns an allocation or when a pool dies, and
// call-depth inflation pushes stage calls through long trampoline
// chains (stressing context numbering and the interpreter's call
// budget). Every mutation is applied speculatively and validated by
// the front end — a candidate that fails to parse or type-check is
// reverted, so Check always sees a well-formed program.

// applyMutations applies up to n validated mutations to the case's
// executable source (the shared library, when present, stays
// pristine: it models a fixed third-party dependency).
func (c *Case) applyMutations(rng *rand.Rand, n int) {
	path := c.Exe.Name + ".c"
	for i := 0; i < n; i++ {
		src := c.Sources[path]
		mutated, desc := mutateOnce(src, rng)
		if desc == "" || mutated == src {
			continue
		}
		trial := make(map[string]string, len(c.Sources))
		for k, v := range c.Sources {
			trial[k] = v
		}
		trial[path] = mutated
		if _, _, err := parseAll(trial); err != nil {
			continue // invalid under the front end: revert
		}
		c.Sources = trial
		c.Mutations = append(c.Mutations, desc)
	}
}

// mutateOnce picks one mutation kind and applies it, returning the
// new source and a description ("" when no candidate site exists).
func mutateOnce(src string, rng *rand.Rand) (string, string) {
	kinds := []func(string, *rand.Rand) (string, string){
		mutateStmtReorder,
		mutateRegionOpSwap,
		mutateCallDepth,
	}
	// Try kinds in a random rotation until one finds a site.
	off := rng.Intn(len(kinds))
	for i := range kinds {
		out, desc := kinds[(off+i)%len(kinds)](src, rng)
		if desc != "" {
			return out, desc
		}
	}
	return src, ""
}

// actionStmt reports whether a line is a plain statement safe to
// reorder: an assignment or call ending in ";", not a declaration or
// control-flow construct.
func actionStmt(line string) bool {
	t := strings.TrimSpace(line)
	if !strings.HasSuffix(t, ";") {
		return false
	}
	if !strings.Contains(t, "=") && !strings.Contains(t, "(") {
		return false
	}
	for _, kw := range []string{"return", "for ", "for(", "if ", "if(", "while", "typedef", "extern", "struct"} {
		if strings.HasPrefix(t, kw) {
			return false
		}
	}
	// Declarations with initializers stay put so later uses still
	// follow them textually.
	if declRe.MatchString(t) && !strings.Contains(t, "->") && !strings.HasPrefix(t, "pattern") {
		return false
	}
	return true
}

var declRe = regexp.MustCompile(`^[A-Za-z_][A-Za-z_0-9]*(\s+\*?|\s*\*\s*)[A-Za-z_]`)

// mutateStmtReorder swaps two adjacent action statements at the same
// indentation.
func mutateStmtReorder(src string, rng *rand.Rand) (string, string) {
	lines := strings.Split(src, "\n")
	var cands []int
	for i := 0; i+1 < len(lines); i++ {
		if actionStmt(lines[i]) && actionStmt(lines[i+1]) &&
			indentOf(lines[i]) == indentOf(lines[i+1]) {
			cands = append(cands, i)
		}
	}
	if len(cands) == 0 {
		return src, ""
	}
	i := cands[rng.Intn(len(cands))]
	lines[i], lines[i+1] = lines[i+1], lines[i]
	return strings.Join(lines, "\n"),
		fmt.Sprintf("stmt-reorder: swapped lines %d and %d", i+1, i+2)
}

func indentOf(line string) int {
	return len(line) - len(strings.TrimLeft(line, " \t"))
}

// regionOpPairs are the operation substitutions region-op swap
// chooses from: destroy <-> clear changes when memory dies, and
// swapping the pool argument of an allocation changes which region
// owns the object.
var regionOpPairs = [][2]string{
	{"apr_pool_destroy(", "apr_pool_clear("},
	{"apr_palloc(pool", "apr_palloc(sub"},
	{"apr_pcalloc(pool", "apr_pcalloc(sub"},
	{"apr_pstrdup(pool", "apr_pstrdup(sub"},
	{"ralloc(pool)", "ralloc(sub)"},
	{"rstrdup(pool)", "rstrdup(sub)"},
	{"lib_alloc_node(pool", "lib_alloc_node(sub"},
}

// mutateRegionOpSwap replaces one occurrence of a region operation
// with its counterpart (in either direction). Swaps that reference an
// identifier not in scope are rejected by the caller's front-end
// validation.
func mutateRegionOpSwap(src string, rng *rand.Rand) (string, string) {
	type site struct {
		pos      int
		from, to string
	}
	var sites []site
	for _, pair := range regionOpPairs {
		for _, dir := range [][2]string{{pair[0], pair[1]}, {pair[1], pair[0]}} {
			idx := 0
			for {
				i := strings.Index(src[idx:], dir[0])
				if i < 0 {
					break
				}
				sites = append(sites, site{pos: idx + i, from: dir[0], to: dir[1]})
				idx += i + len(dir[0])
			}
		}
	}
	if len(sites) == 0 {
		return src, ""
	}
	s := sites[rng.Intn(len(sites))]
	out := src[:s.pos] + s.to + src[s.pos+len(s.from):]
	return out, fmt.Sprintf("region-op-swap: %q -> %q at byte %d", s.from, s.to, s.pos)
}

var stageCallRe = regexp.MustCompile(`(\s*)(stage_0_\d+)\(root\);`)
var mainRe = regexp.MustCompile(`(?m)^int main\(`)
var poolTypeRe = regexp.MustCompile(`(apr_pool_t|region_t) \*root;`)

// mutateCallDepth reroutes one of main's stage calls through a chain
// of trampoline functions, inflating every call path's length (and so
// the context count under call-path numbering).
func mutateCallDepth(src string, rng *rand.Rand) (string, string) {
	if strings.Contains(src, "inflate_0") {
		return src, "" // inflate at most once per case
	}
	mainLoc := mainRe.FindStringIndex(src)
	ptLoc := poolTypeRe.FindStringSubmatch(src)
	if mainLoc == nil || ptLoc == nil {
		return src, ""
	}
	poolType := ptLoc[1]
	// Only stage calls inside main (after its opening) are reroutable.
	m := stageCallRe.FindStringSubmatchIndex(src[mainLoc[0]:])
	if m == nil {
		return src, ""
	}
	stage := src[mainLoc[0]+m[4] : mainLoc[0]+m[5]]
	depth := 4 + rng.Intn(12)
	var sb strings.Builder
	fmt.Fprintf(&sb, "void inflate_0(%s *pool) { %s(pool); }\n", poolType, stage)
	for i := 1; i <= depth; i++ {
		fmt.Fprintf(&sb, "void inflate_%d(%s *pool) { inflate_%d(pool); }\n", i, poolType, i-1)
	}
	out := src[:mainLoc[0]] + sb.String() + src[mainLoc[0]:]
	// Reroute the first matching stage call in main through the chain.
	mainPart := out[mainLoc[0]+sb.Len():]
	rerouted := stageCallRe.ReplaceAllString(mainPart,
		fmt.Sprintf("${1}inflate_%d(root);", depth))
	// ReplaceAll reroutes every top-stage call; that is fine — the
	// chain preserves the argument, only the path length changes.
	out = out[:mainLoc[0]+sb.Len()] + rerouted
	return out, fmt.Sprintf("call-depth: rerouted stage calls through %d trampolines", depth+1)
}
