package oracle

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/workloads"
)

// TestIncrementalMatchesFromScratch is the differential oracle for the
// incremental front end: starting from a multi-file program, a seeded
// 25-step edit sequence is replayed twice — once as a chain of
// AnalyzeIncremental deltas against the previous snapshot, once as a
// from-scratch analysis of each intermediate state — and the canonical
// reports must be byte-identical at every step. The edits come from
// the oracle's mutation machinery, so they rotate body-only changes
// (statement reorders, region-op swaps, which keep the per-file fast
// path eligible) and declaration changes (call-depth inflation adds
// functions, forcing the full-fixpoint fallback). Both pair-computation
// backends are covered.
func TestIncrementalMatchesFromScratch(t *testing.T) {
	const steps = 25
	backends := []struct {
		name    string
		backend core.Backend
	}{
		{"explicit", core.ExplicitBackend},
		{"bdd", core.BDDBackend},
	}
	for _, b := range backends {
		b := b
		t.Run(b.name, func(t *testing.T) {
			t.Parallel()
			opts := core.Options{Backend: b.backend}

			// A SharedLib template gives a genuinely multi-file program;
			// splitting the executable adds more files so incremental
			// reuse is exercised, not just permitted.
			spec := workloads.Spec{
				Name: "o-incr", Exes: 1, Stages: 2, Depth: 2, Fanout: 2,
				Interface: "apr", SharedLib: true,
				Plants: []workloads.Pattern{workloads.SiblingLeak, workloads.IteratorEscape},
			}
			pkg := workloads.Generate(spec, 2008)
			exe := pkg.Exes[0]
			cur := pkg.SplitSourcesFor(exe, 3)
			var editable []string
			for p := range cur {
				editable = append(editable, p)
			}

			ctx := context.Background()
			inc, snap, err := core.AnalyzeSourceSnapshot(ctx, opts, cur)
			if err != nil {
				t.Fatalf("initial analysis: %v", err)
			}
			scratch, err := core.AnalyzeSource(opts, cur)
			if err != nil {
				t.Fatalf("initial from-scratch analysis: %v", err)
			}
			if !bytes.Equal(CanonicalReport(inc.Report), CanonicalReport(scratch.Report)) {
				t.Fatal("snapshot and plain analyses disagree before any edit")
			}

			rng := rand.New(rand.NewSource(2008))
			applied, attempts := 0, 0
			fastSteps, fallbackSteps := 0, 0
			for applied < steps {
				attempts++
				if attempts > steps*40 {
					t.Fatalf("mutation machinery dried up after %d applied steps", applied)
				}
				p := editable[rng.Intn(len(editable))]
				mutated, desc := mutateOnce(cur[p], rng)
				if desc == "" || mutated == cur[p] {
					continue
				}
				trial := make(map[string]string, len(cur))
				for k, v := range cur {
					trial[k] = v
				}
				trial[p] = mutated
				if _, _, err := parseAll(trial); err != nil {
					continue // invalid candidate: skip, try another
				}
				cur = trial
				applied++

				a, next, err := core.AnalyzeIncremental(ctx, opts, snap,
					map[string]string{p: mutated}, nil)
				if err != nil {
					t.Fatalf("step %d (%s): incremental: %v", applied, desc, err)
				}
				snap = next
				full, err := core.AnalyzeSource(opts, cur)
				if err != nil {
					t.Fatalf("step %d (%s): from-scratch: %v", applied, desc, err)
				}
				got, want := CanonicalReport(a.Report), CanonicalReport(full.Report)
				if !bytes.Equal(got, want) {
					t.Fatalf("step %d (%s on %s): incremental diverged from from-scratch\nincremental:\n%s\nfrom-scratch:\n%s",
						applied, desc, p, got, want)
				}
				// Parse reuse survives even a check fallback (the parse
				// cache is per-file either way); check reuse is what
				// distinguishes the incremental fast path.
				if a.Front.CheckReused > 0 {
					fastSteps++
				} else {
					fallbackSteps++
				}
			}
			// The sequence must have exercised the per-file fast path —
			// a run that fell back to full re-analysis every step would
			// pass equality vacuously.
			if fastSteps == 0 {
				t.Fatalf("no step reused checked files (fast %d, fallback %d)", fastSteps, fallbackSteps)
			}
			t.Logf("%d steps: %d reused the front-end cache, %d fell back", steps, fastSteps, fallbackSteps)
		})
	}
}
