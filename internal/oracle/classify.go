package oracle

import (
	"regexp"
	"sort"
	"strings"

	"repro/internal/cminor"
)

// classifier maps allocation-site positions to the generated function
// containing them, and from there to a violation class: the planted
// pattern name when either endpoint sits in a pattern_* function,
// otherwise the structural region of the generator that produced it.
// Classes are what the allowlist keys on — a reduced-precision
// configuration's known misses are named, not blanket-ignored.
type classifier struct {
	// funcs maps file path to its defined functions sorted by line.
	funcs map[string][]funcSpan
}

type funcSpan struct {
	name string
	line int
}

func newClassifier(files []*cminor.File) *classifier {
	c := &classifier{funcs: make(map[string][]funcSpan)}
	for _, f := range files {
		var spans []funcSpan
		for _, d := range f.Decls {
			if fd, ok := d.(*cminor.FuncDecl); ok && fd.Body != nil {
				spans = append(spans, funcSpan{name: fd.Name, line: fd.Pos.Line})
			}
		}
		sort.Slice(spans, func(i, j int) bool { return spans[i].line < spans[j].line })
		c.funcs[f.Path] = spans
	}
	return c
}

// enclosing returns the name of the defined function containing pos.
func (c *classifier) enclosing(pos cminor.Pos) string {
	spans := c.funcs[pos.File]
	name := ""
	for _, s := range spans {
		if s.line <= pos.Line {
			name = s.name
		} else {
			break
		}
	}
	return name
}

var patternFuncRe = regexp.MustCompile(`^pattern_(.+)_\d+$`)

// classOf maps a function name to its class.
func classOf(fn string) string {
	if m := patternFuncRe.FindStringSubmatch(fn); m != nil {
		return strings.ReplaceAll(m[1], "_", "-")
	}
	switch {
	case strings.HasPrefix(fn, "stage_"):
		return "stage"
	case strings.HasPrefix(fn, "lib_"):
		return "lib"
	case strings.HasPrefix(fn, "inflate_"):
		return "mutated"
	case fn == "main":
		return "main"
	case fn == "":
		return "other"
	}
	return "other"
}

// classify names the violation class of a dynamic pair: the planted
// pattern when either allocation site sits in a pattern function
// (preferring the holder's side), else the holder's structural class.
func (c *classifier) classify(src, dst cminor.Pos) string {
	sc := classOf(c.enclosing(src))
	if patternClass(sc) {
		return sc
	}
	if dc := classOf(c.enclosing(dst)); patternClass(dc) {
		return dc
	}
	return sc
}

func patternClass(class string) bool {
	switch class {
	case "stage", "lib", "main", "mutated", "other":
		return false
	}
	return true
}
