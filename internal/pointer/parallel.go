package pointer

import (
	"sync"
	"time"

	"repro/internal/contexts"
	"repro/internal/ir"
	"repro/internal/trace"
)

// This file is the Config.Workers > 1 solver. The design problem is
// determinism: downstream phases expose object IDs through region
// indices and warning order, so a parallel solve must produce not just
// the same least fixpoint but the *same object numbering* as the
// sequential solver, or reports would shift with the worker count.
//
// The solution rests on an invariant of the sequential solver: every
// interning site (allocate, Addr/syncAddrTaken's variable storage,
// evalOpd's string literals) fires unconditionally for its
// (function, context, instruction) visit — none is guarded by
// points-to state. The object table is therefore complete after the
// first sequential round, and its order is a pure function of the
// static sweep order. internPrepass replays exactly that sweep without
// touching points-to state, so the parallel solver starts from the
// very object table the sequential solver would build, and the
// fixpoint rounds never intern at all — they only look IDs up.
//
// The rounds themselves schedule the call graph's SCC DAG leaf-first:
// components on one level share no call edge, so their (function,
// context-block) tasks read a frozen snapshot of the points-to state
// and write private deltas, committed between levels. Chaotic
// iteration of a monotone constraint system converges to the same
// least fixpoint under any fair schedule, so the final pts/heap sets
// equal the sequential ones; only Rounds (a phase metric) may differ.

// SchedStats describes the parallel solver's schedule.
type SchedStats struct {
	// Workers is the pool size the solve actually used.
	Workers int
	// Comps and Levels describe the condensed call graph.
	Comps, Levels int
	// Tasks is the number of (function, level) solve tasks per round.
	Tasks int
	// LevelWall accumulates wall time per DAG level across rounds,
	// leaf level first.
	LevelWall []time.Duration
}

// delta is one task's private write set. Facts already present in the
// shared base state are never added, so base and delta stay disjoint.
type delta struct {
	pts  map[varKey]map[Loc]bool
	heap map[heapKey]map[Loc]bool
}

func newDelta() *delta {
	return &delta{
		pts:  make(map[varKey]map[Loc]bool),
		heap: make(map[heapKey]map[Loc]bool),
	}
}

// solveParallel runs the level-scheduled parallel fixpoint. The
// EntryParams seeding has already happened in solve.
func (r *Result) solveParallel(sp *trace.Span, funcs []string) {
	r.internPrepass(funcs)
	dag := r.Numbering.DAG
	if dag == nil {
		// KCFA numberings don't carry the condensation; build it here.
		dag = r.Numbering.G.Condense()
	}
	// One task per function, grouped by DAG level (leaf level first).
	// Components within a level are mutually call-free, so their
	// functions may solve concurrently against the frozen base.
	levels := make([][]string, len(dag.Levels))
	tasks := 0
	for li, comps := range dag.Levels {
		for _, c := range comps {
			levels[li] = append(levels[li], dag.Comps[c]...)
		}
		tasks += len(levels[li])
	}
	r.Sched = &SchedStats{
		Workers:   r.Config.Workers,
		Comps:     len(dag.Comps),
		Levels:    len(levels),
		Tasks:     tasks,
		LevelWall: make([]time.Duration, len(levels)),
	}
	if sp != nil {
		sp.Attrs(
			trace.Int("workers", r.Config.Workers),
			trace.Int("sccs", len(dag.Comps)),
			trace.Int("levels", len(levels)))
	}

	for {
		r.Rounds++
		roundSp := sp.Child("round")
		changed := false
		for li, fns := range levels {
			t0 := time.Now()
			deltas := make([]*delta, len(fns))
			r.runLevel(fns, deltas)
			for _, d := range deltas {
				if r.commit(d) {
					changed = true
				}
			}
			r.Sched.LevelWall[li] += time.Since(t0)
		}
		if roundSp != nil {
			roundSp.End(
				trace.Int("round", r.Rounds),
				trace.Bool("changed", changed),
				trace.Int("pts_edges", r.PtsSize()),
				trace.Int("heap_edges", r.HeapSize()),
				trace.Int("objects", len(r.Objects)))
		}
		if !changed {
			r.Converged = true
			sp.End(trace.Int("rounds", r.Rounds), trace.Bool("converged", true))
			return
		}
		if r.Config.MaxRounds > 0 && r.Rounds >= r.Config.MaxRounds {
			// Same cutoff contract as the sequential solver. Note that
			// a cutoff is schedule-sensitive: the under-approximation
			// reached after N parallel rounds need not equal the one
			// after N sequential rounds (only the converged fixpoint
			// is schedule-independent).
			sp.Event("max_rounds_exceeded", trace.Int("max_rounds", r.Config.MaxRounds))
			sp.End(trace.Int("rounds", r.Rounds), trace.Bool("converged", false))
			return
		}
	}
}

// runLevel evaluates one level's function tasks on the worker pool.
// Task i writes only deltas[i]; the shared Result is read-only during
// the level.
func (r *Result) runLevel(fns []string, deltas []*delta) {
	workers := r.Config.Workers
	if workers > len(fns) {
		workers = len(fns)
	}
	if workers <= 1 {
		for i, fn := range fns {
			deltas[i] = r.runTask(fn)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				deltas[i] = r.runTask(fns[i])
			}
		}()
	}
	for i := range fns {
		next <- i
	}
	close(next)
	wg.Wait()
}

// runTask solves one function over all its contexts against the
// frozen base, Gauss-Seidel within the task (reads see the task's own
// delta), Jacobi across tasks.
func (r *Result) runTask(fn string) *delta {
	t := &parTask{r: r, d: newDelta()}
	f := r.Prog.Funcs[fn]
	count := r.Numbering.Count[fn]
	for cx := uint64(0); cx < count; cx++ {
		for _, in := range f.Instrs {
			t.step(fn, cx, in)
		}
		t.syncAddrTaken(f, cx)
	}
	return t.d
}

// commit folds a task delta into the shared state, reporting whether
// any fact was new (a fact may arrive from several tasks; it counts
// once).
func (r *Result) commit(d *delta) bool {
	changed := false
	for k, set := range d.pts {
		for l := range set {
			if r.addPts(k, l) {
				changed = true
			}
		}
	}
	for k, set := range d.heap {
		for l := range set {
			if r.addHeap(k, l) {
				changed = true
			}
		}
	}
	return changed
}

// internPrepass replays the sequential solver's interning sweep —
// same function order, context order, instruction order, and case
// order — without evaluating any points-to state, so r.Objects,
// r.objID, and r.allocAt end up exactly as a sequential round one
// would leave them. It also pre-builds the address-taken cache the
// tasks read.
func (r *Result) internPrepass(funcs []string) {
	r.buildAddrTaken()
	internOpd := func(o ir.Operand) {
		if o.Kind == ir.StringOpd {
			r.intern(Obj{Kind: StringObj, Str: o.Str})
		}
	}
	n := r.Numbering
	for _, fn := range funcs {
		f := r.Prog.Funcs[fn]
		count := n.Count[fn]
		for cx := uint64(0); cx < count; cx++ {
			for _, in := range f.Instrs {
				switch in.Op {
				case ir.Assign:
					internOpd(in.Src)
				case ir.Addr:
					v := in.Src.Var
					octx := cx
					if v.Global || !r.Config.HeapCloning {
						octx = 0
					}
					r.intern(Obj{Kind: VarStorageObj, Ctx: octx, Var: v})
				case ir.FieldAddr:
					internOpd(in.Base)
				case ir.Load:
					internOpd(in.Base)
				case ir.Store:
					internOpd(in.Src)
					internOpd(in.Base)
				case ir.Call:
					for _, callee := range n.G.Edges[in.ID] {
						target := r.Prog.Funcs[callee]
						if target == nil || !n.G.Reachable[callee] {
							continue
						}
						for i, a := range in.Args {
							if i >= len(target.Params) {
								break
							}
							internOpd(a)
						}
					}
					for _, name := range r.externCallees(in) {
						switch {
						case r.Config.AllocFns[name]:
							r.allocate(name, cx, in)
						case hasKey(r.Config.OutAllocFns, name):
							argIdx := r.Config.OutAllocFns[name]
							r.allocate(name, cx, in)
							if argIdx < len(in.Args) {
								internOpd(in.Args[argIdx])
							}
						case hasKey(r.Config.ReturnArgFns, name):
							argIdx := r.Config.ReturnArgFns[name]
							if argIdx < len(in.Args) && in.Dst.Kind == ir.VarOpd {
								internOpd(in.Args[argIdx])
							}
						}
					}
				}
			}
			for _, v := range r.addrTakenVars(f, cx) {
				if v.Global && cx != 0 {
					continue
				}
				octx := cx
				if v.Global || !r.Config.HeapCloning {
					octx = 0
				}
				r.intern(Obj{Kind: VarStorageObj, Ctx: octx, Var: v})
			}
		}
	}
}

// parTask mirrors the sequential transfer functions with overlay
// reads (frozen base ∪ private delta) and delta-only writes. The
// interning sites become lookups: the prepass has interned every
// object this sweep can mention.
type parTask struct {
	r *Result
	d *delta
}

func (t *parTask) objIDOf(o Obj) int {
	id, ok := t.r.objID[o]
	if !ok {
		// The prepass invariant was violated — a solver bug, not an
		// input condition; fail loudly rather than drop facts.
		panic("pointer: parallel solve saw an object the intern prepass missed")
	}
	return id
}

// addPts adds to the delta unless the base (or the delta) already has
// the fact, preserving base∩delta = ∅.
func (t *parTask) addPts(k varKey, l Loc) {
	if t.r.pts[k][l] {
		return
	}
	set := t.d.pts[k]
	if set == nil {
		set = make(map[Loc]bool)
		t.d.pts[k] = set
	}
	set[l] = true
}

func (t *parTask) addHeap(k heapKey, l Loc) {
	if t.r.heap[k][l] {
		return
	}
	set := t.d.heap[k]
	if set == nil {
		set = make(map[Loc]bool)
		t.d.heap[k] = set
	}
	set[l] = true
}

// ptsLocs returns base ∪ delta for a variable key (disjoint by
// construction, so no dedup needed). Order is irrelevant: every
// consumer feeds a set.
func (t *parTask) ptsLocs(k varKey) []Loc {
	base, d := t.r.pts[k], t.d.pts[k]
	out := make([]Loc, 0, len(base)+len(d))
	for l := range base {
		out = append(out, l)
	}
	for l := range d {
		out = append(out, l)
	}
	return out
}

func (t *parTask) heapLocs(k heapKey) []Loc {
	base, d := t.r.heap[k], t.d.heap[k]
	out := make([]Loc, 0, len(base)+len(d))
	for l := range base {
		out = append(out, l)
	}
	for l := range d {
		out = append(out, l)
	}
	return out
}

func (t *parTask) evalOpd(o ir.Operand, ctx uint64) []Loc {
	switch o.Kind {
	case ir.VarOpd:
		return t.ptsLocs(t.r.key(o.Var, ctx))
	case ir.StringOpd:
		return []Loc{{Obj: t.objIDOf(Obj{Kind: StringObj, Str: o.Str})}}
	}
	return nil
}

func (t *parTask) step(fn string, ctx uint64, in *ir.Instr) {
	r := t.r
	flowTo := func(dst ir.Operand, locs []Loc) {
		if dst.Kind != ir.VarOpd {
			return
		}
		k := r.key(dst.Var, ctx)
		for _, l := range locs {
			t.addPts(k, l)
		}
	}
	switch in.Op {
	case ir.Assign:
		flowTo(in.Dst, t.evalOpd(in.Src, ctx))
	case ir.Addr:
		v := in.Src.Var
		octx := ctx
		if v.Global || !r.Config.HeapCloning {
			octx = 0
		}
		id := t.objIDOf(Obj{Kind: VarStorageObj, Ctx: octx, Var: v})
		flowTo(in.Dst, []Loc{{Obj: id}})
	case ir.FieldAddr:
		base := t.evalOpd(in.Base, ctx)
		locs := make([]Loc, len(base))
		for i, l := range base {
			locs[i] = Loc{Obj: l.Obj, Off: l.Off + in.Off}
		}
		flowTo(in.Dst, locs)
	case ir.Load:
		var locs []Loc
		for _, b := range t.evalOpd(in.Base, ctx) {
			locs = append(locs, t.heapLocs(heapKey{b.Obj, b.Off + in.Off})...)
		}
		flowTo(in.Dst, locs)
	case ir.Store:
		src := t.evalOpd(in.Src, ctx)
		for _, b := range t.evalOpd(in.Base, ctx) {
			k := heapKey{b.Obj, b.Off + in.Off}
			for _, l := range src {
				t.addHeap(k, l)
			}
		}
	case ir.Call:
		t.stepCall(fn, ctx, in)
	case ir.Ret:
		// Handled by the caller-side wiring in stepCall.
	}
}

func (t *parTask) stepCall(fn string, ctx uint64, in *ir.Instr) {
	r := t.r
	n := r.Numbering
	for _, callee := range n.G.Edges[in.ID] {
		target := r.Prog.Funcs[callee]
		if target == nil || !n.G.Reachable[callee] {
			continue
		}
		calleeCtx := n.MapContext(fn, ctx, contexts.Edge{Instr: in.ID, Callee: callee})
		for i, a := range in.Args {
			if i >= len(target.Params) {
				break
			}
			pk := r.key(target.Params[i], calleeCtx)
			for _, l := range t.evalOpd(a, ctx) {
				t.addPts(pk, l)
			}
		}
		if in.Dst.Kind == ir.VarOpd && target.RetVal != nil {
			dk := r.key(in.Dst.Var, ctx)
			for _, l := range t.ptsLocs(r.key(target.RetVal, calleeCtx)) {
				t.addPts(dk, l)
			}
		}
	}
	for _, name := range r.externCallees(in) {
		switch {
		case r.Config.AllocFns[name]:
			id := r.allocAt[varKey2{ctx, in.ID}]
			if in.Dst.Kind == ir.VarOpd {
				t.addPts(r.key(in.Dst.Var, ctx), Loc{Obj: id})
			}
		case hasKey(r.Config.OutAllocFns, name):
			argIdx := r.Config.OutAllocFns[name]
			id := r.allocAt[varKey2{ctx, in.ID}]
			if argIdx < len(in.Args) {
				for _, b := range t.evalOpd(in.Args[argIdx], ctx) {
					t.addHeap(heapKey{b.Obj, b.Off}, Loc{Obj: id})
				}
			}
		case hasKey(r.Config.ReturnArgFns, name):
			argIdx := r.Config.ReturnArgFns[name]
			if argIdx < len(in.Args) && in.Dst.Kind == ir.VarOpd {
				dk := r.key(in.Dst.Var, ctx)
				for _, l := range t.evalOpd(in.Args[argIdx], ctx) {
					t.addPts(dk, l)
				}
			}
		}
	}
}

func (t *parTask) syncAddrTaken(f *ir.Func, ctx uint64) {
	r := t.r
	for _, v := range r.addrTakenVars(f, ctx) {
		if v.Global && ctx != 0 {
			continue
		}
		octx := ctx
		if v.Global || !r.Config.HeapCloning {
			octx = 0
		}
		id := t.objIDOf(Obj{Kind: VarStorageObj, Ctx: octx, Var: v})
		cell := heapKey{id, 0}
		vk := r.key(v, ctx)
		for _, l := range t.heapLocs(cell) {
			t.addPts(vk, l)
		}
		for _, l := range t.ptsLocs(vk) {
			t.addHeap(cell, l)
		}
	}
}
