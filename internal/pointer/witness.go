package pointer

import "repro/internal/ir"

// HeapWitness returns an instruction (and the context it executed in)
// that established the heap points-to edge (obj, off) -> dst: a STORE
// whose base resolves to the cell and whose source carries dst, or an
// out-allocating extern call (apr_pool_create style) that allocated dst
// and wrote it through the cell. ok is false when no instruction-level
// writer exists — the edge came from address-taken variable syncing, or
// the arguments don't name a real edge.
//
// The scan is demand-driven and deterministic: functions in sorted
// order, contexts ascending, instructions in program order, and the
// first match wins. Recording "the first writer" during the fixpoint
// instead would be schedule-dependent under the parallel solver; this
// post-solve scan reads only the converged points-to sets, so every
// worker count (and both solver backends) witnesses the same
// instruction. It allocates nothing into the Result and is safe to call
// concurrently with other read-only accessors.
func (r *Result) HeapWitness(obj int, off int64, dst Loc) (*ir.Instr, uint64, bool) {
	for _, fn := range r.Numbering.G.ReachableFuncs() {
		f := r.Prog.Funcs[fn]
		if f == nil {
			continue
		}
		for ctx := uint64(0); ctx < r.Numbering.Count[fn]; ctx++ {
			for _, in := range f.Instrs {
				switch in.Op {
				case ir.Store:
					hit := false
					for _, b := range r.evalOpd(in.Base, ctx) {
						if b.Obj == obj && b.Off+in.Off == off {
							hit = true
							break
						}
					}
					if !hit {
						continue
					}
					for _, l := range r.evalOpd(in.Src, ctx) {
						if l == dst {
							return in, ctx, true
						}
					}
				case ir.Call:
					if dst.Off != 0 || r.AllocObjAt(ctx, in.ID) != dst.Obj {
						continue
					}
					for _, name := range r.externCallees(in) {
						argIdx, ok := r.Config.OutAllocFns[name]
						if !ok || argIdx >= len(in.Args) {
							continue
						}
						for _, b := range r.evalOpd(in.Args[argIdx], ctx) {
							if b.Obj == obj && b.Off == off {
								return in, ctx, true
							}
						}
					}
				}
			}
		}
	}
	return nil, 0, false
}
