// Package pointer implements the context-sensitive, field-sensitive
// Andersen-style pointer analysis with heap cloning at the core of
// RegionWiz (Sections 4.3 and 5.3.1).
//
// Abstract objects are identified by (context, allocation site) pairs —
// the heap cloning of Nystrom et al. that the paper argues is necessary
// to distinguish region and object instances created at the same call
// site on different call paths. Variables are likewise analyzed per
// calling context, with contexts numbered by package contexts.
//
// Points-to targets are locations (object, byte offset): a pointer may
// address the middle of an object (a field), which keeps the heap
// relation field-sensitive in the presence of address-of-field
// expressions.
package pointer

import (
	"context"
	"sort"

	"repro/internal/bdd"
	"repro/internal/contexts"
	"repro/internal/ir"
	"repro/internal/trace"
)

// ObjKind classifies abstract objects.
type ObjKind uint8

// Object kinds.
const (
	// AllocObj is a heap object born at a call to an allocator
	// function (ralloc/apr_palloc/malloc/... per Config).
	AllocObj ObjKind = iota
	// VarStorageObj is the storage of an address-taken variable.
	VarStorageObj
	// StringObj is a string literal's storage.
	StringObj
	// ParamObj is the symbolic referent of an entry function's
	// pointer parameter in open-program (library) analysis: each
	// pointer parameter of each analysis root denotes a distinct
	// unknown object/region owned by the caller.
	ParamObj
	// TopObj is the tainted ⊤ object a Config.PtsLimit overflow
	// collapses to: a points-to set that would exceed the cap becomes
	// {⊤}, which absorbs every later add. At most one TopObj exists
	// per Result, interned before any other object when the cap is
	// on.
	TopObj
)

// Obj is one abstract object.
type Obj struct {
	Kind ObjKind
	// Ctx is the calling context of the allocation (always 0 when heap
	// cloning is disabled, and for globals and strings).
	Ctx uint64
	// Site is the allocating CALL instruction (AllocObj).
	Site *ir.Instr
	// Var is the variable whose address was taken (VarStorageObj).
	Var *ir.Var
	// Str indexes ir.Program.Strings (StringObj).
	Str int
	// Fn names the allocator that produced an AllocObj (for region
	// classification by the core analysis).
	Fn string
}

// Loc is a points-to target: a byte offset within an object.
type Loc struct {
	Obj int // object ID
	Off int64
}

// Config selects the externs with allocator semantics and the analysis
// precision knobs.
type Config struct {
	// AllocFns: extern functions returning a fresh object.
	AllocFns map[string]bool
	// OutAllocFns: externs that allocate a fresh object and store it
	// through the pointer argument at the given index
	// (apr_pool_create style). The object is also flowed to the
	// call's return value destination.
	OutAllocFns map[string]int
	// ReturnArgFns: externs returning one of their arguments
	// (memcpy-style identity).
	ReturnArgFns map[string]int
	// HeapCloning keys objects by (context, site); disabling it (the
	// ablation of Section 7's comparison with non-cloning work) keys
	// them by site only.
	HeapCloning bool
	// EntryParams seeds every pointer-like parameter of every
	// analysis root with a fresh ParamObj — the open-program mode.
	EntryParams bool
	// MaxRounds bounds fixpoint iterations (0 = unlimited).
	MaxRounds int
	// PtsLimit caps each variable's points-to set (0 = unlimited). A
	// set about to exceed the cap collapses to the tainted ⊤ object;
	// loads through ⊤ yield ⊤ and stores through ⊤ are dropped, so a
	// capped solve is a documented-unsound throttle, not a sound
	// over-approximation. Capped variables are counted by
	// CappedVars. A nonzero cap forces the sequential solver: the
	// collapse is schedule-sensitive, and the deterministic sweep
	// order is what keeps reports identical across runs.
	PtsLimit int
	// Workers > 1 solves the fixpoint in parallel: the call graph's
	// SCC DAG is scheduled leaf-to-root over a bounded worker pool,
	// with per-task deltas committed between levels (parallel.go).
	// Object IDs, points-to sets, and the heap are identical to the
	// sequential solve for every worker count; only Rounds (and wall
	// time) may differ. 0 and 1 select the sequential solver.
	Workers int
	// BDD sizes the BDD kernel used by AnalyzeBDD (ignored by the
	// explicit solver). Sizing never changes results.
	BDD bdd.Config
}

// varKey identifies a variable in a context.
type varKey struct {
	v   *ir.Var
	ctx uint64
}

// heapKey identifies one field of one object.
type heapKey struct {
	obj int
	off int64
}

// Result is the computed points-to state.
type Result struct {
	Prog      *ir.Program
	Numbering *contexts.Numbering
	Config    Config

	Objects []Obj

	pts   map[varKey]map[Loc]bool
	heap  map[heapKey]map[Loc]bool
	objID map[Obj]int

	// allocAt maps (ctx, call instruction ID) to the object allocated
	// there.
	allocAt map[varKey2]int

	// addrTaken caches address-taken variables per function (nil key =
	// globals).
	addrTaken map[*ir.Func][]*ir.Var

	Rounds int
	// Converged reports whether the fixpoint was actually reached;
	// false means Config.MaxRounds cut the iteration off and the
	// points-to sets are an under-approximation.
	Converged bool

	// Sched describes the parallel solver's schedule and per-level
	// wall times (nil for the sequential solve).
	Sched *SchedStats

	// topID is the interned TopObj's ID when Config.PtsLimit > 0, -1
	// otherwise; capped records every variable whose set collapsed.
	topID  int
	capped map[varKey]bool
}

type varKey2 struct {
	ctx     uint64
	instrID int
}

// Analyze runs the analysis over the numbered call graph.
func Analyze(n *contexts.Numbering, cfg Config) *Result {
	return AnalyzeContext(context.Background(), n, cfg)
}

// AnalyzeContext is Analyze with a context: when ctx carries a
// trace.Tracer, the solve and each of its fixpoint rounds become
// spans, and a MaxRounds cutoff is recorded as an event.
func AnalyzeContext(ctx context.Context, n *contexts.Numbering, cfg Config) *Result {
	r := &Result{
		Prog:      n.G.Prog,
		Numbering: n,
		Config:    cfg,
		pts:       make(map[varKey]map[Loc]bool),
		heap:      make(map[heapKey]map[Loc]bool),
		objID:     make(map[Obj]int),
		allocAt:   make(map[varKey2]int),
		topID:     -1,
	}
	r.solve(ctx)
	return r
}

func (r *Result) intern(o Obj) int {
	if id, ok := r.objID[o]; ok {
		return id
	}
	id := len(r.Objects)
	r.Objects = append(r.Objects, o)
	r.objID[o] = id
	return id
}

func (r *Result) key(v *ir.Var, ctx uint64) varKey {
	if v.Global {
		return varKey{v: v, ctx: 0}
	}
	return varKey{v: v, ctx: ctx}
}

func (r *Result) addPts(k varKey, l Loc) bool {
	set := r.pts[k]
	if set == nil {
		set = make(map[Loc]bool)
		r.pts[k] = set
	}
	if r.topID >= 0 {
		top := Loc{Obj: r.topID}
		if set[top] {
			return false // {⊤} absorbs every add
		}
		if l == top || (!set[l] && len(set) >= r.Config.PtsLimit) {
			for x := range set {
				delete(set, x)
			}
			set[top] = true
			r.capped[k] = true
			return true
		}
	}
	if set[l] {
		return false
	}
	set[l] = true
	return true
}

func (r *Result) addHeap(k heapKey, l Loc) bool {
	set := r.heap[k]
	if set == nil {
		set = make(map[Loc]bool)
		r.heap[k] = set
	}
	if set[l] {
		return false
	}
	set[l] = true
	return true
}

// TopObjID returns the tainted ⊤ object's ID, or -1 when no cap was
// configured (no TopObj exists then).
func (r *Result) TopObjID() int { return r.topID }

// CappedVars counts the (variable, context) keys whose points-to set
// collapsed to {⊤} under Config.PtsLimit.
func (r *Result) CappedVars() int { return len(r.capped) }

// PointsTo returns the location set of v in ctx, sorted.
func (r *Result) PointsTo(v *ir.Var, ctx uint64) []Loc {
	return sortedLocs(r.pts[r.key(v, ctx)])
}

// OperandPointsTo returns the location set an operand denotes in ctx
// (variables read their points-to set; string operands denote their
// literal object; everything else denotes nothing).
func (r *Result) OperandPointsTo(o ir.Operand, ctx uint64) []Loc {
	return r.evalOpd(o, ctx)
}

// HeapAt returns the location set stored at (obj, off), sorted.
func (r *Result) HeapAt(obj int, off int64) []Loc {
	return sortedLocs(r.heap[heapKey{obj, off}])
}

// EachHeap enumerates every (obj, off) -> loc heap edge.
func (r *Result) EachHeap(fn func(obj int, off int64, l Loc)) {
	keys := make([]heapKey, 0, len(r.heap))
	for k := range r.heap {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].obj != keys[j].obj {
			return keys[i].obj < keys[j].obj
		}
		return keys[i].off < keys[j].off
	})
	for _, k := range keys {
		for _, l := range sortedLocs(r.heap[k]) {
			fn(k.obj, k.off, l)
		}
	}
}

// AllocObjAt returns the object allocated by the CALL instruction in
// the given context, or -1.
func (r *Result) AllocObjAt(ctx uint64, instrID int) int {
	if id, ok := r.allocAt[varKey2{ctx, instrID}]; ok {
		return id
	}
	return -1
}

// HeapSize reports the number of heap points-to edges (the paper's
// "heap" column in Figure 11).
func (r *Result) HeapSize() int {
	n := 0
	for _, set := range r.heap {
		n += len(set)
	}
	return n
}

// PtsSize reports the number of variable points-to edges across all
// calling contexts.
func (r *Result) PtsSize() int {
	n := 0
	for _, set := range r.pts {
		n += len(set)
	}
	return n
}

// SolverStats summarizes the solver's effort and output sizes for the
// pipeline metrics: fixpoint rounds, abstract objects, and the
// variable/heap points-to relation sizes.
func (r *Result) SolverStats() map[string]int64 {
	converged := int64(0)
	if r.Converged {
		converged = 1
	}
	out := map[string]int64{
		"ptr_rounds":     int64(r.Rounds),
		"ptr_converged":  converged,
		"ptr_objects":    int64(len(r.Objects)),
		"pts_edges":      int64(r.PtsSize()),
		"ptr_heap_edges": int64(r.HeapSize()),
	}
	// Emitted only when the cap actually bit, so uncapped runs keep
	// their golden phase outputs byte-identical.
	if n := r.CappedVars(); n > 0 {
		out["ptr_capped_vars"] = int64(n)
	}
	return out
}

func sortedLocs(set map[Loc]bool) []Loc {
	out := make([]Loc, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Obj != out[j].Obj {
			return out[i].Obj < out[j].Obj
		}
		return out[i].Off < out[j].Off
	})
	return out
}

// --- the solver ---

func (r *Result) solve(ctx context.Context) {
	_, sp := trace.StartSpan(ctx, "pointer.solve")
	n := r.Numbering
	funcs := n.G.ReachableFuncs()
	if sp != nil {
		sp.Attrs(trace.Int("funcs", len(funcs)))
	}
	if r.Config.PtsLimit > 0 {
		// Intern ⊤ before anything else so its ID (0) is independent
		// of the program, and collapse decisions are deterministic.
		r.capped = make(map[varKey]bool)
		r.topID = r.intern(Obj{Kind: TopObj})
	}
	if r.Config.EntryParams {
		for _, entry := range n.G.Entries {
			f := r.Prog.Funcs[entry]
			if f == nil {
				continue
			}
			for _, p := range f.Params {
				if !p.PointerLike {
					continue
				}
				id := r.intern(Obj{Kind: ParamObj, Var: p, Fn: entry})
				for ctx := uint64(0); ctx < n.Count[entry]; ctx++ {
					r.addPts(r.key(p, ctx), Loc{Obj: id})
				}
			}
		}
	}
	if r.Config.Workers > 1 && r.Config.PtsLimit == 0 {
		// The ⊤ collapse is non-monotone (stores through ⊤ are
		// dropped), so a chaotic parallel schedule could reach
		// different post-collapse states. A capped solve therefore
		// always runs the deterministic sequential sweep; front-end
		// and pairs-phase parallelism are unaffected.
		r.solveParallel(sp, funcs)
		return
	}
	for {
		r.Rounds++
		roundSp := sp.Child("round")
		changed := false
		for _, fn := range funcs {
			f := r.Prog.Funcs[fn]
			count := n.Count[fn]
			for cx := uint64(0); cx < count; cx++ {
				for _, in := range f.Instrs {
					if r.step(fn, cx, in) {
						changed = true
					}
				}
				if r.syncAddrTaken(f, cx) {
					changed = true
				}
			}
		}
		if roundSp != nil {
			roundSp.End(
				trace.Int("round", r.Rounds),
				trace.Bool("changed", changed),
				trace.Int("pts_edges", r.PtsSize()),
				trace.Int("heap_edges", r.HeapSize()),
				trace.Int("objects", len(r.Objects)))
		}
		if !changed {
			r.Converged = true
			sp.End(trace.Int("rounds", r.Rounds), trace.Bool("converged", true))
			return
		}
		if r.Config.MaxRounds > 0 && r.Rounds >= r.Config.MaxRounds {
			// Not a fixpoint: the caller sees Converged == false rather
			// than a silently truncated result. The cutoff contract is
			// the datalog solvers' — run at most MaxRounds rounds; a
			// solve that quiesces in exactly MaxRounds rounds reports
			// Converged (the !changed branch above wins the tie).
			sp.Event("max_rounds_exceeded", trace.Int("max_rounds", r.Config.MaxRounds))
			sp.End(trace.Int("rounds", r.Rounds), trace.Bool("converged", false))
			return
		}
	}
}

// buildAddrTaken fills the address-taken cache on first use.
func (r *Result) buildAddrTaken() {
	if r.addrTaken != nil {
		return
	}
	r.addrTaken = make(map[*ir.Func][]*ir.Var)
	for _, v := range r.Prog.Vars {
		if v.AddrTaken {
			r.addrTaken[v.Func] = append(r.addrTaken[v.Func], v)
		}
	}
}

// addrTakenVars assembles the variables syncAddrTaken visits for
// (f, ctx): f's own address-taken variables, plus the globals exactly
// once (at context 0).
func (r *Result) addrTakenVars(f *ir.Func, ctx uint64) []*ir.Var {
	vars := make([]*ir.Var, 0, len(r.addrTaken[f])+len(r.addrTaken[nil]))
	vars = append(vars, r.addrTaken[f]...)
	if ctx == 0 {
		vars = append(vars, r.addrTaken[nil]...) // globals, synced once
	}
	return vars
}

// syncAddrTaken keeps an address-taken variable's points-to set equal
// to the contents of its storage object's cell at offset 0: a store
// through the variable's address is a write to the variable, and a
// direct assignment to the variable is visible through its address.
func (r *Result) syncAddrTaken(f *ir.Func, ctx uint64) bool {
	r.buildAddrTaken()
	changed := false
	for _, v := range r.addrTakenVars(f, ctx) {
		if v.Global && ctx != 0 {
			continue
		}
		octx := ctx
		if v.Global || !r.Config.HeapCloning {
			octx = 0
		}
		id := r.intern(Obj{Kind: VarStorageObj, Ctx: octx, Var: v})
		cell := heapKey{id, 0}
		vk := r.key(v, ctx)
		for l := range r.heap[cell] {
			if r.addPts(vk, l) {
				changed = true
			}
		}
		for l := range r.pts[vk] {
			if r.addHeap(cell, l) {
				changed = true
			}
		}
	}
	return changed
}

// evalOpd returns the location set an operand denotes in ctx.
func (r *Result) evalOpd(o ir.Operand, ctx uint64) []Loc {
	switch o.Kind {
	case ir.VarOpd:
		return sortedLocs(r.pts[r.key(o.Var, ctx)])
	case ir.StringOpd:
		id := r.intern(Obj{Kind: StringObj, Str: o.Str})
		return []Loc{{Obj: id}}
	}
	// Constants, nulls, and function operands carry no heap locations
	// (function targets live in the call graph's vF relation).
	return nil
}

func (r *Result) step(fn string, ctx uint64, in *ir.Instr) bool {
	changed := false
	flowTo := func(dst ir.Operand, locs []Loc) {
		if dst.Kind != ir.VarOpd {
			return
		}
		k := r.key(dst.Var, ctx)
		for _, l := range locs {
			if r.addPts(k, l) {
				changed = true
			}
		}
	}
	switch in.Op {
	case ir.Assign:
		flowTo(in.Dst, r.evalOpd(in.Src, ctx))
	case ir.Addr:
		v := in.Src.Var
		octx := ctx
		if v.Global || !r.Config.HeapCloning {
			octx = 0
		}
		id := r.intern(Obj{Kind: VarStorageObj, Ctx: octx, Var: v})
		flowTo(in.Dst, []Loc{{Obj: id}})
	case ir.FieldAddr:
		base := r.evalOpd(in.Base, ctx)
		locs := make([]Loc, len(base))
		for i, l := range base {
			if l.Obj == r.topID && r.topID >= 0 {
				locs[i] = l // ⊤ has no fields: shifting stays ⊤
				continue
			}
			locs[i] = Loc{Obj: l.Obj, Off: l.Off + in.Off}
		}
		flowTo(in.Dst, locs)
	case ir.Load:
		var locs []Loc
		for _, b := range r.evalOpd(in.Base, ctx) {
			if b.Obj == r.topID && r.topID >= 0 {
				locs = append(locs, b) // load through ⊤ yields ⊤
				continue
			}
			for l := range r.heap[heapKey{b.Obj, b.Off + in.Off}] {
				locs = append(locs, l)
			}
		}
		flowTo(in.Dst, locs)
	case ir.Store:
		src := r.evalOpd(in.Src, ctx)
		for _, b := range r.evalOpd(in.Base, ctx) {
			if b.Obj == r.topID && r.topID >= 0 {
				continue // store through ⊤ dropped (unsound throttle)
			}
			k := heapKey{b.Obj, b.Off + in.Off}
			for _, l := range src {
				if r.addHeap(k, l) {
					changed = true
				}
			}
		}
	case ir.Call:
		if r.stepCall(fn, ctx, in) {
			changed = true
		}
	case ir.Ret:
		// Handled by the caller-side wiring in stepCall.
	}
	return changed
}

func (r *Result) stepCall(fn string, ctx uint64, in *ir.Instr) bool {
	changed := false
	n := r.Numbering
	// Defined callees: parameter/return wiring in the mapped context.
	for _, callee := range n.G.Edges[in.ID] {
		target := r.Prog.Funcs[callee]
		if target == nil || !n.G.Reachable[callee] {
			continue
		}
		calleeCtx := n.MapContext(fn, ctx, contexts.Edge{Instr: in.ID, Callee: callee})
		for i, a := range in.Args {
			if i >= len(target.Params) {
				break
			}
			pk := r.key(target.Params[i], calleeCtx)
			for _, l := range r.evalOpd(a, ctx) {
				if r.addPts(pk, l) {
					changed = true
				}
			}
		}
		if in.Dst.Kind == ir.VarOpd && target.RetVal != nil {
			dk := r.key(in.Dst.Var, ctx)
			for l := range r.pts[r.key(target.RetVal, calleeCtx)] {
				if r.addPts(dk, l) {
					changed = true
				}
			}
		}
	}
	// Extern models.
	names := r.externCallees(in)
	for _, name := range names {
		switch {
		case r.Config.AllocFns[name]:
			id := r.allocate(name, ctx, in)
			if in.Dst.Kind == ir.VarOpd {
				if r.addPts(r.key(in.Dst.Var, ctx), Loc{Obj: id}) {
					changed = true
				}
			}
		case hasKey(r.Config.OutAllocFns, name):
			argIdx := r.Config.OutAllocFns[name]
			id := r.allocate(name, ctx, in)
			if argIdx < len(in.Args) {
				for _, b := range r.evalOpd(in.Args[argIdx], ctx) {
					if b.Obj == r.topID && r.topID >= 0 {
						continue // store through ⊤ dropped
					}
					if r.addHeap(heapKey{b.Obj, b.Off}, Loc{Obj: id}) {
						changed = true
					}
				}
			}
		case hasKey(r.Config.ReturnArgFns, name):
			argIdx := r.Config.ReturnArgFns[name]
			if argIdx < len(in.Args) && in.Dst.Kind == ir.VarOpd {
				dk := r.key(in.Dst.Var, ctx)
				for _, l := range r.evalOpd(in.Args[argIdx], ctx) {
					if r.addPts(dk, l) {
						changed = true
					}
				}
			}
		}
	}
	return changed
}

// externCallees lists unresolved callee names of a call (direct extern
// target or function-pointer candidates that are not defined).
func (r *Result) externCallees(in *ir.Instr) []string {
	switch in.Callee.Kind {
	case ir.FuncOpd:
		if _, defined := r.Prog.Funcs[in.Callee.Fn]; !defined {
			return []string{in.Callee.Fn}
		}
	case ir.VarOpd:
		var out []string
		for fn := range r.Numbering.G.VF[in.Callee.Var] {
			if _, defined := r.Prog.Funcs[fn]; !defined {
				out = append(out, fn)
			}
		}
		sort.Strings(out)
		return out
	}
	return nil
}

func (r *Result) allocate(fnName string, ctx uint64, in *ir.Instr) int {
	octx := ctx
	if !r.Config.HeapCloning {
		octx = 0
	}
	id := r.intern(Obj{Kind: AllocObj, Ctx: octx, Site: in, Fn: fnName})
	r.allocAt[varKey2{ctx, in.ID}] = id
	return id
}

func hasKey(m map[string]int, k string) bool {
	_, ok := m[k]
	return ok
}
