package pointer

import (
	"testing"
)

// copyChainSrc propagates a points-to fact against instruction order,
// so every copy costs one fixpoint round: the solver needs several
// rounds plus one verification round to converge.
const copyChainSrc = `
extern void *malloc(unsigned long n);
int main(void) {
    int *a; int *b; int *c; int *d;
    d = c;
    c = b;
    b = a;
    a = malloc(4);
    return 0;
}`

// TestSolverCutoffBoundary pins the pointer solver to the same cutoff
// contract as the datalog solvers (see datalog.TestSolverCutoffBoundary):
// at most MaxRounds rounds run; Rounds reports exactly how many ran;
// Converged is true iff a full no-change round verified the fixpoint
// within the cap.
func TestSolverCutoffBoundary(t *testing.T) {
	unlimited := analyzeCfg(t, copyChainSrc, testConfig)
	if !unlimited.Converged {
		t.Fatal("unlimited solve did not converge")
	}
	r := unlimited.Rounds
	if r < 3 {
		t.Fatalf("copy chain converged in %d rounds; too few to exercise the cap", r)
	}
	dPts := func(res *Result) int {
		return len(res.PointsTo(varOf(res, "main", "d"), 0))
	}
	if dPts(unlimited) != 1 {
		t.Fatalf("d points to %d objects, want 1", dPts(unlimited))
	}

	// Cap at exactly the convergence round count: identical outcome.
	cfg := testConfig
	cfg.MaxRounds = r
	atCap := analyzeCfg(t, copyChainSrc, cfg)
	if atCap.Rounds != r || !atCap.Converged {
		t.Fatalf("cap==R: Rounds=%d Converged=%v, want %d/true", atCap.Rounds, atCap.Converged, r)
	}

	// One round short: exactly MaxRounds rounds run, Converged false —
	// the final fact may already be present (the last unlimited round
	// was verification-only), but the result is unverified.
	cfg.MaxRounds = r - 1
	cut := analyzeCfg(t, copyChainSrc, cfg)
	if cut.Rounds != r-1 || cut.Converged {
		t.Fatalf("cap==R-1: Rounds=%d Converged=%v, want %d/false", cut.Rounds, cut.Converged, r-1)
	}

	// Two short: the chain's tail fact is genuinely missing — the
	// documented under-approximation of a cut-off solve.
	cfg.MaxRounds = r - 2
	cut2 := analyzeCfg(t, copyChainSrc, cfg)
	if cut2.Rounds != r-2 || cut2.Converged {
		t.Fatalf("cap==R-2: Rounds=%d Converged=%v, want %d/false", cut2.Rounds, cut2.Converged, r-2)
	}
	if got := dPts(cut2); got != 0 {
		t.Fatalf("cut-off solve already completed d's points-to set (%d)", got)
	}
}
