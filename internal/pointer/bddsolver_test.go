package pointer

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"repro/internal/callgraph"
	"repro/internal/cminor"
	"repro/internal/contexts"
	"repro/internal/ir"
)

// objKey canonicalizes an abstract object independent of interning
// order and solver.
func objKey(o Obj) string {
	site := -1
	if o.Site != nil {
		site = o.Site.ID
	}
	vname := ""
	if o.Var != nil {
		vname = fmt.Sprintf("%s/%d", o.Var.Name, o.Var.ID)
	}
	return fmt.Sprintf("k%d:site%d:v%s:s%d:%s", o.Kind, site, vname, o.Str, o.Fn)
}

// canonical points-to set of one variable as sorted strings.
func canonExplicit(r *Result, v *ir.Var) []string {
	var out []string
	for _, l := range r.PointsTo(v, 0) {
		out = append(out, fmt.Sprintf("%s+%d", objKey(r.Objects[l.Obj]), l.Off))
	}
	sort.Strings(out)
	return out
}

func canonBDD(br *BDDResult, v *ir.Var) []string {
	var out []string
	for _, l := range br.PointsTo(v) {
		out = append(out, fmt.Sprintf("%s+%d", objKey(br.Objects[l.Obj]), l.Off))
	}
	sort.Strings(out)
	return out
}

// crossCheck runs both solvers context-insensitively and compares the
// points-to sets of every named (non-temp) variable.
func crossCheck(t *testing.T, src string) {
	t.Helper()
	f, errs := cminor.Parse("x.c", src)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	info := cminor.Check(f)
	if len(info.Errors) != 0 {
		t.Fatalf("check: %v", info.Errors)
	}
	prog := ir.Lower(info, f)
	g := callgraph.Build(prog, "main", nil)
	n := contexts.Number(g, 1) // context-insensitive
	cfg := testConfig
	cfg.HeapCloning = false
	exp := Analyze(n, cfg)
	bddr := AnalyzeBDD(context.Background(), n, cfg)
	for _, v := range prog.Vars {
		if v.Temp || v.Name == "__ret" {
			continue
		}
		if v.Func != nil && !g.Reachable[v.Func.Name] {
			continue
		}
		a := canonExplicit(exp, v)
		b := canonBDD(bddr, v)
		if len(a) != len(b) {
			t.Errorf("%s: explicit %v vs bdd %v", v.Name, a, b)
			continue
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s[%d]: explicit %v vs bdd %v", v.Name, i, a, b)
				break
			}
		}
	}
}

func TestBDDSolverBasicAlloc(t *testing.T) {
	crossCheck(t, `
extern void *malloc(unsigned long n);
int main(void) {
    int *p;
    int *q;
    p = malloc(4);
    q = p;
    return 0;
}`)
}

func TestBDDSolverFields(t *testing.T) {
	crossCheck(t, `
extern void *malloc(unsigned long n);
struct two { int *a; int *b; };
int main(void) {
    struct two *s;
    int *x;
    int *y;
    s = malloc(16);
    s->a = malloc(4);
    s->b = malloc(4);
    x = s->a;
    y = s->b;
    return 0;
}`)
}

func TestBDDSolverFieldAddr(t *testing.T) {
	crossCheck(t, `
extern void *malloc(unsigned long n);
struct s { long a; long b; };
int main(void) {
    struct s *p;
    long *q;
    long v;
    p = malloc(16);
    q = &p->b;
    v = *q;
    return 0;
}`)
}

func TestBDDSolverOutParamAndAddrTaken(t *testing.T) {
	crossCheck(t, `
typedef struct apr_pool_t apr_pool_t;
extern long apr_pool_create(apr_pool_t **newp, apr_pool_t *parent);
extern void *apr_palloc(apr_pool_t *p, unsigned long n);
int main(void) {
    apr_pool_t *pool;
    apr_pool_t *sub;
    void *d;
    apr_pool_create(&pool, NULL);
    apr_pool_create(&sub, pool);
    d = apr_palloc(sub, 8);
    return 0;
}`)
}

func TestBDDSolverInterprocedural(t *testing.T) {
	crossCheck(t, `
extern void *malloc(unsigned long n);
int * make(void) { return malloc(4); }
int * pass(int *x) { return x; }
int main(void) {
    int *a;
    int *b;
    a = make();
    b = pass(a);
    return 0;
}`)
}

func TestBDDSolverLinkedList(t *testing.T) {
	crossCheck(t, `
extern void *malloc(unsigned long n);
struct node { struct node *next; int v; };
int main(void) {
    struct node *head;
    struct node *n;
    int i;
    head = NULL;
    for (i = 0; i < 4; i++) {
        n = malloc(16);
        n->next = head;
        head = n;
    }
    while (head) head = head->next;
    return 0;
}`)
}

func TestBDDSolverGlobals(t *testing.T) {
	crossCheck(t, `
extern void *malloc(unsigned long n);
int *g;
void set(void) { g = malloc(4); }
int main(void) {
    int *p;
    set();
    p = g;
    return 0;
}`)
}

func TestBDDSolverStrings(t *testing.T) {
	crossCheck(t, `
int main(void) {
    char *a;
    char *b;
    a = "x";
    b = a;
    return 0;
}`)
}

func TestBDDSolverHeapSizeAgrees(t *testing.T) {
	src := `
extern void *malloc(unsigned long n);
struct pair { int *a; int *b; };
int main(void) {
    struct pair *p;
    p = malloc(16);
    p->a = malloc(4);
    p->b = malloc(4);
    return 0;
}`
	f, _ := cminor.Parse("x.c", src)
	info := cminor.Check(f)
	prog := ir.Lower(info, f)
	g := callgraph.Build(prog, "main", nil)
	n := contexts.Number(g, 1)
	cfg := testConfig
	cfg.HeapCloning = false
	exp := Analyze(n, cfg)
	bddr := AnalyzeBDD(context.Background(), n, cfg)
	if exp.HeapSize() != bddr.HeapSize() {
		t.Fatalf("heap sizes differ: explicit %d vs bdd %d", exp.HeapSize(), bddr.HeapSize())
	}
}
