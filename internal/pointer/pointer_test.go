package pointer

import (
	"testing"

	"repro/internal/callgraph"
	"repro/internal/cminor"
	"repro/internal/contexts"
	"repro/internal/ir"
)

var testConfig = Config{
	AllocFns:    map[string]bool{"malloc": true, "rnew": true, "ralloc": true},
	OutAllocFns: map[string]int{"apr_pool_create": 0},
	ReturnArgFns: map[string]int{
		"memcpy": 0,
	},
	HeapCloning: true,
}

func analyze(t *testing.T, src string) *Result {
	t.Helper()
	return analyzeCfg(t, src, testConfig)
}

func analyzeCfg(t *testing.T, src string, cfg Config) *Result {
	t.Helper()
	f, errs := cminor.Parse("test.c", src)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	info := cminor.Check(f)
	if len(info.Errors) != 0 {
		t.Fatalf("check: %v", info.Errors)
	}
	prog := ir.Lower(info, f)
	g := callgraph.Build(prog, "main", nil)
	n := contexts.Number(g, 1<<16)
	return Analyze(n, cfg)
}

// varOf finds a named variable in a function (params, locals, or
// globals for fn == "").
func varOf(r *Result, fn, name string) *ir.Var {
	if fn == "" {
		return r.Prog.Globals[name]
	}
	f := r.Prog.Funcs[fn]
	for _, p := range f.Params {
		if p.Name == name {
			return p
		}
	}
	for _, v := range r.Prog.Vars {
		if v.Func == f && v.Name == name {
			return v
		}
	}
	return nil
}

func TestMallocPointsTo(t *testing.T) {
	r := analyze(t, `
extern void *malloc(unsigned long n);
int main(void) {
    int *p;
    p = malloc(4);
    return 0;
}`)
	p := varOf(r, "main", "p")
	locs := r.PointsTo(p, 0)
	if len(locs) != 1 {
		t.Fatalf("p points to %d objects, want 1", len(locs))
	}
	obj := r.Objects[locs[0].Obj]
	if obj.Kind != AllocObj || obj.Fn != "malloc" {
		t.Fatalf("object = %+v", obj)
	}
}

func TestFieldSensitivity(t *testing.T) {
	r := analyze(t, `
extern void *malloc(unsigned long n);
struct two { int *a; int *b; };
int main(void) {
    struct two *s;
    int *x;
    int *y;
    s = malloc(16);
    s->a = malloc(4);
    s->b = malloc(4);
    x = s->a;
    y = s->b;
    return 0;
}`)
	x := varOf(r, "main", "x")
	y := varOf(r, "main", "y")
	lx := r.PointsTo(x, 0)
	ly := r.PointsTo(y, 0)
	if len(lx) != 1 || len(ly) != 1 {
		t.Fatalf("x:%d y:%d objects, want 1 each (field-sensitive)", len(lx), len(ly))
	}
	if lx[0] == ly[0] {
		t.Fatal("x and y alias despite distinct fields")
	}
}

func TestOutParamAllocation(t *testing.T) {
	// The apr_pool_create shape: allocation returned through **arg.
	r := analyze(t, `
typedef struct apr_pool_t apr_pool_t;
extern long apr_pool_create(apr_pool_t **newp, apr_pool_t *parent);
int main(void) {
    apr_pool_t *pool;
    apr_pool_create(&pool, NULL);
    return 0;
}`)
	pool := varOf(r, "main", "pool")
	locs := r.PointsTo(pool, 0)
	if len(locs) != 1 {
		t.Fatalf("pool points to %d objects, want 1", len(locs))
	}
	if obj := r.Objects[locs[0].Obj]; obj.Fn != "apr_pool_create" {
		t.Fatalf("pool object from %q", obj.Fn)
	}
}

func TestInterproceduralFlow(t *testing.T) {
	r := analyze(t, `
extern void *malloc(unsigned long n);
int * makeInt(void) { return malloc(4); }
int main(void) {
    int *p;
    p = makeInt();
    return 0;
}`)
	p := varOf(r, "main", "p")
	if locs := r.PointsTo(p, 0); len(locs) != 1 {
		t.Fatalf("return flow broken: %v", locs)
	}
}

func TestHeapCloningDistinguishesCallPaths(t *testing.T) {
	src := `
extern void *malloc(unsigned long n);
int * alloc_one(void) { return malloc(4); }
int main(void) {
    int *a;
    int *b;
    a = alloc_one();
    b = alloc_one();
    return 0;
}`
	// With heap cloning, the two call paths into alloc_one yield two
	// distinct abstract objects.
	r := analyze(t, src)
	a := varOf(r, "main", "a")
	b := varOf(r, "main", "b")
	la, lb := r.PointsTo(a, 0), r.PointsTo(b, 0)
	if len(la) != 1 || len(lb) != 1 {
		t.Fatalf("a:%v b:%v", la, lb)
	}
	if la[0] == lb[0] {
		t.Fatal("heap cloning failed: both call paths share one object")
	}
	// Without heap cloning they collapse (the ablation of Section 7).
	cfg := testConfig
	cfg.HeapCloning = false
	r2 := analyzeCfg(t, src, cfg)
	a2 := varOf(r2, "main", "a")
	b2 := varOf(r2, "main", "b")
	la2, lb2 := r2.PointsTo(a2, 0), r2.PointsTo(b2, 0)
	if len(la2) != 1 || len(lb2) != 1 || la2[0] != lb2[0] {
		t.Fatalf("non-cloning should merge: a=%v b=%v", la2, lb2)
	}
}

func TestContextSensitivityOfParams(t *testing.T) {
	// identity(p) called with two different objects: context
	// sensitivity must keep the results separate at the two call
	// sites.
	r := analyze(t, `
extern void *malloc(unsigned long n);
int * identity(int *p) { return p; }
int main(void) {
    int *x;
    int *y;
    int *rx;
    int *ry;
    x = malloc(4);
    y = malloc(4);
    rx = identity(x);
    ry = identity(y);
    return 0;
}`)
	rx := varOf(r, "main", "rx")
	ry := varOf(r, "main", "ry")
	lrx, lry := r.PointsTo(rx, 0), r.PointsTo(ry, 0)
	if len(lrx) != 1 || len(lry) != 1 {
		t.Fatalf("context sensitivity lost: rx=%v ry=%v", lrx, lry)
	}
	if lrx[0] == lry[0] {
		t.Fatal("rx and ry merged: analysis is context-insensitive")
	}
}

func TestAddressOfAndDeref(t *testing.T) {
	r := analyze(t, `
extern void *malloc(unsigned long n);
void set(int **pp) { *pp = malloc(4); }
int main(void) {
    int *p;
    set(&p);
    return 0;
}`)
	p := varOf(r, "main", "p")
	if locs := r.PointsTo(p, 0); len(locs) != 1 {
		t.Fatalf("out-param via & lost: %v", locs)
	}
}

func TestStringObjects(t *testing.T) {
	r := analyze(t, `
int main(void) {
    char *s;
    s = "hello";
    return 0;
}`)
	s := varOf(r, "main", "s")
	locs := r.PointsTo(s, 0)
	if len(locs) != 1 || r.Objects[locs[0].Obj].Kind != StringObj {
		t.Fatalf("string literal points-to: %v", locs)
	}
}

func TestHeapThroughGlobals(t *testing.T) {
	r := analyze(t, `
extern void *malloc(unsigned long n);
int *g;
void setup(void) { g = malloc(4); }
int main(void) {
    int *p;
    setup();
    p = g;
    return 0;
}`)
	p := varOf(r, "main", "p")
	if locs := r.PointsTo(p, 0); len(locs) != 1 {
		t.Fatalf("global flow lost: %v", locs)
	}
}

func TestReturnArgModel(t *testing.T) {
	r := analyze(t, `
extern void *malloc(unsigned long n);
extern void *memcpy(void *dst, const void *src, unsigned long n);
int main(void) {
    int *a;
    int *b;
    a = malloc(8);
    b = memcpy(a, NULL, 8);
    return 0;
}`)
	a := varOf(r, "main", "a")
	b := varOf(r, "main", "b")
	la, lb := r.PointsTo(a, 0), r.PointsTo(b, 0)
	if len(la) != 1 || len(lb) != 1 || la[0] != lb[0] {
		t.Fatalf("memcpy identity model broken: a=%v b=%v", la, lb)
	}
}

func TestLinkedStructureLoop(t *testing.T) {
	// A loop building a list: fixpoint must terminate and the next
	// field must reach the node object(s).
	r := analyze(t, `
extern void *malloc(unsigned long n);
struct node { struct node *next; int v; };
int main(void) {
    struct node *head;
    struct node *n;
    int i;
    head = NULL;
    for (i = 0; i < 10; i++) {
        n = malloc(16);
        n->next = head;
        head = n;
    }
    while (head) head = head->next;
    return 0;
}`)
	head := varOf(r, "main", "head")
	locs := r.PointsTo(head, 0)
	if len(locs) == 0 {
		t.Fatal("head points nowhere")
	}
	// head->next must include the same object (cyclic approximation).
	found := false
	for _, l := range locs {
		for _, tgt := range r.HeapAt(l.Obj, 0) {
			if tgt.Obj == l.Obj {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("list next edge missing")
	}
}

func TestAllocObjAt(t *testing.T) {
	r := analyze(t, `
extern void *malloc(unsigned long n);
int main(void) {
    int *p;
    p = malloc(4);
    return 0;
}`)
	var call *ir.Instr
	for _, in := range r.Prog.Funcs["main"].Instrs {
		if in.Op == ir.Call {
			call = in
		}
	}
	id := r.AllocObjAt(0, call.ID)
	if id < 0 {
		t.Fatal("AllocObjAt found nothing")
	}
	if r.Objects[id].Site != call {
		t.Fatal("AllocObjAt site mismatch")
	}
}

func TestFieldAddrPointsIntoObject(t *testing.T) {
	r := analyze(t, `
extern void *malloc(unsigned long n);
struct s { long a; long b; };
int main(void) {
    struct s *p;
    long *q;
    p = malloc(16);
    q = &p->b;
    return 0;
}`)
	q := varOf(r, "main", "q")
	locs := r.PointsTo(q, 0)
	if len(locs) != 1 || locs[0].Off != 8 {
		t.Fatalf("&p->b = %v, want offset 8", locs)
	}
}
