package pointer

import (
	"context"
	"sort"

	"repro/internal/contexts"
	"repro/internal/datalog"
	"repro/internal/ir"
	"repro/internal/trace"
)

// AnalyzeBDD runs a context-insensitive, field-sensitive Andersen
// analysis entirely as Datalog rules over BDD-backed relations — the
// way the paper's prototype computed its points-to sets in bddbddb
// (Section 5.2). It exists as a cross-check and scaling reference for
// the explicit solver; tests assert both agree under the explicit
// solver's context-insensitive configuration (cap=1, no heap cloning).
//
// Relations (paper naming):
//
//	vP(v, h)        variable v may point to location h
//	heap(h, f, h2)  field f of h may point to h2
//	assign(d, s)    d = s                  (ASSIGN, call/return wiring)
//	loadI(d, b, f)  d = [b + f]            (LOAD)
//	storeI(b, f, s) [b + f] = s            (STORE)
//	addr(d, h)      d = &h / d = alloc     (ADDR, allocation calls)
//	fieldAddr(d, b, f)  d = b + f          (ADD)
//
// Rules:
//
//	vP(d, h)      :- addr(d, h).
//	vP(d, h)      :- assign(d, s), vP(s, h).
//	vP(d, h2)     :- loadI(d, b, f), vP(b, h), heap(h, f, h2).
//	heap(h, f, h2):- storeI(b, f, s), vP(b, h), vP(s, h2).
//	vP(d, h2)     :- fieldAddr(d, b, f), vP(b, h2).   [offset-composed below]
//
// Locations are (object, offset) pairs interned into one flat domain,
// so field-addressed pointers compose exactly as in the explicit
// solver.
type BDDResult struct {
	Prog *ir.Program

	// Objects mirrors Result.Objects (the same interning scheme with
	// Ctx always 0).
	Objects []Obj

	vp   map[*ir.Var]map[Loc]bool
	heap map[heapKey]map[Loc]bool

	Rounds int
	// Converged mirrors Result.Converged for the relational solver
	// (always true today: the fixpoint runs unbounded).
	Converged bool

	// TopID is the tainted ⊤ object's ID when Config.PtsLimit > 0
	// (-1 otherwise); CappedVars counts the variables whose read-out
	// sets were collapsed to {⊤}. The relational solve itself runs
	// uncapped; the cap is applied to the read-out, which keeps the
	// BDD fixpoint monotone and the capped sets deterministic.
	TopID      int
	CappedVars int
}

// AnalyzeBDD computes the relational points-to result. cfg's
// HeapCloning flag is ignored (always off — objects are per site).
// When ctx carries a trace.Tracer, the datalog fixpoint emits
// per-rule, per-round spans and BDD table grows become trace events.
func AnalyzeBDD(ctx context.Context, n *contexts.Numbering, cfg Config) *BDDResult {
	prog := n.G.Prog
	br := &BDDResult{
		Prog:  prog,
		vp:    make(map[*ir.Var]map[Loc]bool),
		heap:  make(map[heapKey]map[Loc]bool),
		TopID: -1,
	}

	// --- collect constraints from the IR, context-insensitively ---
	objID := make(map[Obj]int)
	intern := func(o Obj) int {
		if id, ok := objID[o]; ok {
			return id
		}
		id := len(br.Objects)
		br.Objects = append(br.Objects, o)
		objID[o] = id
		return id
	}
	if cfg.PtsLimit > 0 {
		// Interned first, like the explicit solver, so ⊤ is ID 0.
		br.TopID = intern(Obj{Kind: TopObj})
	}

	type assignC struct{ d, s *ir.Var }
	type addrC struct {
		d   *ir.Var
		obj int
	}
	type loadC struct {
		d, b *ir.Var
		f    int64
	}
	type storeC struct {
		b *ir.Var
		f int64
		s *ir.Var
	}
	type faddrC struct {
		d, b *ir.Var
		f    int64
	}
	var assigns []assignC
	var addrs []addrC
	var loads []loadC
	var stores []storeC
	var faddrs []faddrC
	var takenVars []*ir.Var

	varOf := func(o ir.Operand) *ir.Var {
		if o.Kind == ir.VarOpd {
			return o.Var
		}
		return nil
	}
	externNames := func(in *ir.Instr) []string {
		switch in.Callee.Kind {
		case ir.FuncOpd:
			if _, defined := prog.Funcs[in.Callee.Fn]; !defined {
				return []string{in.Callee.Fn}
			}
		case ir.VarOpd:
			var out []string
			for fn := range n.G.VF[in.Callee.Var] {
				if _, defined := prog.Funcs[fn]; !defined {
					out = append(out, fn)
				}
			}
			sort.Strings(out)
			return out
		}
		return nil
	}

	for _, fnName := range n.G.ReachableFuncs() {
		for _, in := range prog.Funcs[fnName].Instrs {
			switch in.Op {
			case ir.Assign:
				if d, s := varOf(in.Dst), varOf(in.Src); d != nil {
					if s != nil {
						assigns = append(assigns, assignC{d, s})
					} else if in.Src.Kind == ir.StringOpd {
						addrs = append(addrs, addrC{d, intern(Obj{Kind: StringObj, Str: in.Src.Str})})
					}
				}
			case ir.Addr:
				if d := varOf(in.Dst); d != nil {
					v := in.Src.Var
					id := intern(Obj{Kind: VarStorageObj, Var: v})
					addrs = append(addrs, addrC{d, id})
					takenVars = append(takenVars, v)
				}
			case ir.FieldAddr:
				if d, b := varOf(in.Dst), varOf(in.Base); d != nil && b != nil {
					faddrs = append(faddrs, faddrC{d, b, in.Off})
				}
			case ir.Load:
				if d, b := varOf(in.Dst), varOf(in.Base); d != nil && b != nil {
					loads = append(loads, loadC{d, b, in.Off})
				}
			case ir.Store:
				if b, s := varOf(in.Base), varOf(in.Src); b != nil && s != nil {
					stores = append(stores, storeC{b, in.Off, s})
				}
			case ir.Call:
				// Defined callees: parameter/return assignment edges.
				for _, callee := range n.G.Edges[in.ID] {
					target := prog.Funcs[callee]
					if target == nil {
						continue
					}
					for i, a := range in.Args {
						if i >= len(target.Params) {
							break
						}
						if s := varOf(a); s != nil {
							assigns = append(assigns, assignC{target.Params[i], s})
						}
					}
					if d := varOf(in.Dst); d != nil && target.RetVal != nil {
						assigns = append(assigns, assignC{d, target.RetVal})
					}
				}
				// Extern models.
				for _, name := range externNames(in) {
					switch {
					case cfg.AllocFns[name]:
						id := intern(Obj{Kind: AllocObj, Site: in, Fn: name})
						if d := varOf(in.Dst); d != nil {
							addrs = append(addrs, addrC{d, id})
						}
					case hasKey(cfg.OutAllocFns, name):
						argIdx := cfg.OutAllocFns[name]
						id := intern(Obj{Kind: AllocObj, Site: in, Fn: name})
						if argIdx < len(in.Args) {
							if b := varOf(in.Args[argIdx]); b != nil {
								// *b = fresh: a store of a synthetic
								// variable holding the object.
								tmp := &ir.Var{ID: -1 - id, Name: "__out" + name, Temp: true}
								addrs = append(addrs, addrC{tmp, id})
								stores = append(stores, storeC{b, 0, tmp})
							}
						}
					case hasKey(cfg.ReturnArgFns, name):
						argIdx := cfg.ReturnArgFns[name]
						if argIdx < len(in.Args) {
							if d, s := varOf(in.Dst), varOf(in.Args[argIdx]); d != nil && s != nil {
								assigns = append(assigns, assignC{d, s})
							}
						}
					}
				}
			}
		}
	}

	// --- intern variables and (object, offset) locations ---
	varIdx := make(map[*ir.Var]uint64)
	var varList []*ir.Var
	vnum := func(v *ir.Var) uint64 {
		if i, ok := varIdx[v]; ok {
			return i
		}
		i := uint64(len(varList))
		varIdx[v] = i
		varList = append(varList, v)
		return i
	}
	locIdx := make(map[Loc]uint64)
	var locList []Loc
	lnum := func(l Loc) uint64 {
		if i, ok := locIdx[l]; ok {
			return i
		}
		i := uint64(len(locList))
		locIdx[l] = i
		locList = append(locList, l)
		return i
	}
	offIdx := make(map[int64]uint64)
	var offList []int64
	onum := func(f int64) uint64 {
		if i, ok := offIdx[f]; ok {
			return i
		}
		i := uint64(len(offList))
		offIdx[f] = i
		offList = append(offList, f)
		return i
	}

	// Seed the domains. Base locations appear as (obj, 0) from addr
	// constraints; fieldAddr shifts them; load/store instruction
	// offsets address cells relative to those. The location universe
	// is closed under two passes of fieldAddr shifts (dot chains are
	// composed statically by the lowering, so deeper chains do not
	// occur) plus one level of load/store offsets.
	for _, a := range addrs {
		vnum(a.d)
		lnum(Loc{Obj: a.obj})
	}
	for _, a := range assigns {
		vnum(a.d)
		vnum(a.s)
	}
	for _, l := range loads {
		vnum(l.d)
		vnum(l.b)
		onum(l.f)
	}
	for _, s := range stores {
		vnum(s.b)
		vnum(s.s)
		onum(s.f)
	}
	// Address-taken variables participate in the storage sync rules
	// even when they are only ever accessed through their address.
	for _, v := range takenVars {
		vnum(v)
	}
	shifts := map[int64]bool{}
	for _, fa := range faddrs {
		vnum(fa.d)
		vnum(fa.b)
		shifts[fa.f] = true
	}
	for pass := 0; pass < 2; pass++ {
		for _, base := range append([]Loc(nil), locList...) {
			for shift := range shifts {
				lnum(Loc{Obj: base.Obj, Off: base.Off + shift})
			}
		}
	}
	for _, base := range append([]Loc(nil), locList...) {
		for _, f := range offList {
			lnum(Loc{Obj: base.Obj, Off: base.Off + f})
		}
	}

	if len(varList) == 0 || len(locList) == 0 {
		br.Converged = true
		return br
	}
	if len(offList) == 0 {
		offList = append(offList, 0)
		offIdx[0] = 0
	}

	// --- the datalog program ---
	p := datalog.NewProgramConfig(cfg.BDD)
	if sp := trace.SpanFromContext(ctx); sp != nil {
		p.M.OnEvent = func(kind string, nodes, capacity int) {
			sp.Event("bdd_"+kind, trace.Int("nodes", nodes), trace.Int("capacity", capacity))
		}
	}
	V := p.Domain("V", uint64(len(varList)))
	H := p.Domain("H", uint64(len(locList)))
	F := p.Domain("F", uint64(len(offList)))

	vP := p.Relation("vP", V.At(0), H.At(0))
	// hP(hcell, h2): the cell at location hcell holds a pointer to
	// h2. Cells are fully composed locations, so the relation is
	// binary (field offsets are already folded in by cell).
	hP := p.Relation("heap", H.At(0), H.At(1))
	rAssign := p.Relation("assign", V.At(0), V.At(1))
	rLoad := p.Relation("load", V.At(0), V.At(1), F.At(0))
	rStore := p.Relation("store", V.At(0), F.At(0), V.At(1))
	// cell(h, f, hcell): location hcell is location h shifted by the
	// load/store offset f.
	cell := p.Relation("cell", H.At(0), F.At(0), H.At(1))

	for _, a := range addrs {
		vP.Add(vnum(a.d), lnum(Loc{Obj: a.obj}))
	}
	for _, a := range assigns {
		rAssign.Add(vnum(a.d), vnum(a.s))
	}
	for _, l := range loads {
		rLoad.Add(vnum(l.d), vnum(l.b), onum(l.f))
	}
	for _, s := range stores {
		rStore.Add(vnum(s.b), onum(s.f), vnum(s.s))
	}
	for _, l := range locList {
		for fi, f := range offList {
			if tgt, ok := locIdx[Loc{Obj: l.Obj, Off: l.Off + f}]; ok {
				cell.Add(locIdx[l], uint64(fi), tgt)
			}
		}
	}
	// fieldAddr: one assign-like relation per distinct shift, built as
	// shiftK(h, h2) edges joined with vP.
	type shiftRel struct {
		rel *datalog.Relation
		fas []faddrC
	}
	shiftRels := map[int64]*shiftRel{}
	for _, fa := range faddrs {
		sr := shiftRels[fa.f]
		if sr == nil {
			rel := p.Relation("shift"+itoa(fa.f), H.At(0), H.At(1))
			sr = &shiftRel{rel: rel}
			for _, l := range locList {
				if tgt, ok := locIdx[Loc{Obj: l.Obj, Off: l.Off + fa.f}]; ok {
					rel.Add(locIdx[l], tgt)
				}
			}
			shiftRels[fa.f] = sr
		}
		sr.fas = append(sr.fas, fa)
	}

	// varStore(v, hc): hc is the storage cell of the address-taken
	// variable v; direct uses of v and indirect uses through &v must
	// agree (the sync the explicit solver does imperatively).
	varStore := p.Relation("varStore", V.At(0), H.At(0))
	for _, v := range varList {
		if v != nil && v.AddrTaken {
			if id, ok := objID[Obj{Kind: VarStorageObj, Var: v}]; ok {
				if hc, ok := locIdx[Loc{Obj: id}]; ok {
					varStore.Add(vnum(v), hc)
				}
			}
		}
	}

	rules := []*datalog.Rule{
		datalog.NewRule(datalog.T(vP, "v", "h"), datalog.T(varStore, "v", "hc"), datalog.T(hP, "hc", "h")),
		datalog.NewRule(datalog.T(hP, "hc", "h"), datalog.T(varStore, "v", "hc"), datalog.T(vP, "v", "h")),
		datalog.NewRule(datalog.T(vP, "d", "h"), datalog.T(rAssign, "d", "s"), datalog.T(vP, "s", "h")),
		datalog.NewRule(datalog.T(vP, "d", "h2"),
			datalog.T(rLoad, "d", "b", "f"), datalog.T(vP, "b", "hb"),
			datalog.T(cell, "hb", "f", "hc"), datalog.T(hP, "hc", "h2")),
		datalog.NewRule(datalog.T(hP, "hc", "h2"),
			datalog.T(rStore, "b", "f", "s"), datalog.T(vP, "b", "hb"),
			datalog.T(cell, "hb", "f", "hc"), datalog.T(vP, "s", "h2")),
	}
	// Per-shift fieldAddr rules: vP(d, h2) :- vP(b, h), shiftK(h, h2)
	// for each fieldAddr edge (d, b) with that shift. Edges per shift
	// form their own relation.
	for f, sr := range shiftRels {
		edges := p.Relation("faddr"+itoa(f), V.At(0), V.At(1))
		for _, fa := range sr.fas {
			edges.Add(vnum(fa.d), vnum(fa.b))
		}
		rules = append(rules, datalog.NewRule(
			datalog.T(vP, "d", "h2"),
			datalog.T(edges, "d", "b"), datalog.T(vP, "b", "h"), datalog.T(sr.rel, "h", "h2")))
	}

	// All base relations are loaded and no intermediates are held, so
	// this is a reorder safe point before the fixpoint (the fixpoint
	// itself collects at its round boundaries).
	p.ReorderIfEnabled()

	br.Rounds, br.Converged = p.SolveSemiNaive(ctx, rules, 0)

	// --- read the results back out ---
	vP.Each(func(t []uint64) bool {
		v := varList[t[0]]
		l := locList[t[1]]
		set := br.vp[v]
		if set == nil {
			set = make(map[Loc]bool)
			br.vp[v] = set
		}
		set[l] = true
		return true
	})
	hP.Each(func(t []uint64) bool {
		h := locList[t[0]]
		l := locList[t[1]]
		k := heapKey{obj: h.Obj, off: h.Off}
		set := br.heap[k]
		if set == nil {
			set = make(map[Loc]bool)
			br.heap[k] = set
		}
		set[l] = true
		return true
	})
	if cfg.PtsLimit > 0 {
		top := Loc{Obj: br.TopID}
		for v, set := range br.vp {
			if len(set) > cfg.PtsLimit {
				br.vp[v] = map[Loc]bool{top: true}
				br.CappedVars++
			}
		}
	}
	return br
}

// PointsTo returns v's location set (context-insensitive), sorted.
func (br *BDDResult) PointsTo(v *ir.Var) []Loc { return sortedLocs(br.vp[v]) }

// HeapAt returns the heap cell contents, sorted.
func (br *BDDResult) HeapAt(obj int, off int64) []Loc {
	return sortedLocs(br.heap[heapKey{obj, off}])
}

// HeapSize counts heap edges.
func (br *BDDResult) HeapSize() int {
	n := 0
	for _, set := range br.heap {
		n += len(set)
	}
	return n
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [24]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
