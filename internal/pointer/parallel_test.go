package pointer

import (
	"fmt"
	"testing"

	"repro/internal/callgraph"
	"repro/internal/cminor"
	"repro/internal/contexts"
	"repro/internal/ir"
)

// parallelPrograms exercise the solver shapes that stress the parallel
// scheduler: deep call chains (many DAG levels), recursion and mutual
// recursion (multi-function SCCs solved as same-level sibling tasks),
// heap cloning across contexts, address-taken locals and globals,
// function pointers, out-param allocators, and string literals.
var parallelPrograms = map[string]string{
	"chain": `
extern void *malloc(unsigned long n);
int *leaf(void) { int *p; p = malloc(4); return p; }
int *mid(void) { return leaf(); }
int *top(void) { return mid(); }
int main(void) { int *a; int *b; a = top(); b = top(); return 0; }`,
	"mutual": `
extern void *malloc(unsigned long n);
int *f(int n);
int *g(int n) { if (n) return f(n - 1); return malloc(8); }
int *f(int n) { if (n) return g(n - 1); return malloc(4); }
int main(void) { int *p; p = f(3); return 0; }`,
	"addrtaken": `
extern void *malloc(unsigned long n);
int *G;
void set(int **pp) { *pp = malloc(4); }
int main(void) {
    int *l;
    set(&l);
    set(&G);
    return 0;
}`,
	"outalloc": `
typedef struct pool pool_t;
extern int apr_pool_create(pool_t **newpool, pool_t *parent);
int main(void) {
    pool_t *root;
    pool_t *child;
    apr_pool_create(&root, 0);
    apr_pool_create(&child, root);
    return 0;
}`,
	"funptr": `
extern void *malloc(unsigned long n);
extern void *memcpy(void *d, void *s, unsigned long n);
int *alloc4(void) { return malloc(4); }
int *alloc8(void) { return malloc(8); }
int main(void) {
    int *(*fp)(void);
    int *p;
    char *s;
    char buf[8];
    if (1) fp = alloc4; else fp = alloc8;
    p = fp();
    s = memcpy(buf, "hello", 5);
    return 0;
}`,
	"fields": `
extern void *malloc(unsigned long n);
struct node { struct node *next; int *data; };
int main(void) {
    struct node *a;
    struct node *b;
    a = malloc(16);
    b = malloc(16);
    a->next = b;
    b->data = malloc(4);
    a->next->data = malloc(4);
    return 0;
}`,
}

// snapshot captures everything the downstream analysis can observe
// from a Result, in canonical order.
func snapshot(r *Result) string {
	s := fmt.Sprintf("objects=%d\n", len(r.Objects))
	for id, o := range r.Objects {
		site := -1
		if o.Site != nil {
			site = o.Site.ID
		}
		name := ""
		if o.Var != nil {
			name = o.Var.Name
		}
		s += fmt.Sprintf("obj %d: kind=%d ctx=%d site=%d var=%q str=%d fn=%q\n",
			id, o.Kind, o.Ctx, site, name, o.Str, o.Fn)
	}
	for _, v := range r.Prog.Vars {
		fn := ""
		if v.Func != nil {
			fn = v.Func.Name
		}
		count := uint64(1)
		if fn != "" {
			count = r.Numbering.Count[fn]
		}
		for cx := uint64(0); cx < count; cx++ {
			if locs := r.PointsTo(v, cx); len(locs) != 0 {
				s += fmt.Sprintf("pts %s.%s@%d = %v\n", fn, v.Name, cx, locs)
			}
		}
	}
	r.EachHeap(func(obj int, off int64, l Loc) {
		s += fmt.Sprintf("heap (%d,%d) -> %v\n", obj, off, l)
	})
	return s
}

// TestParallelMatchesSequential is the core determinism claim of the
// parallel solver: for every worker count the object table (IDs
// included), the points-to relation, and the heap are byte-identical
// to the sequential solve.
func TestParallelMatchesSequential(t *testing.T) {
	for name, src := range parallelPrograms {
		t.Run(name, func(t *testing.T) {
			seq := analyze(t, src)
			if !seq.Converged {
				t.Fatalf("sequential solve did not converge")
			}
			want := snapshot(seq)
			for _, workers := range []int{2, 4, 8} {
				cfg := testConfig
				cfg.Workers = workers
				par := analyzeCfg(t, src, cfg)
				if !par.Converged {
					t.Fatalf("workers=%d: did not converge", workers)
				}
				if got := snapshot(par); got != want {
					t.Errorf("workers=%d: state differs from sequential\n--- sequential ---\n%s--- parallel ---\n%s", workers, want, got)
				}
				if par.Sched == nil {
					t.Fatalf("workers=%d: Sched not recorded", workers)
				}
				if par.Sched.Workers != workers {
					t.Errorf("Sched.Workers = %d, want %d", par.Sched.Workers, workers)
				}
				if par.Sched.Levels != len(par.Sched.LevelWall) {
					t.Errorf("Sched.Levels = %d but %d LevelWall entries",
						par.Sched.Levels, len(par.Sched.LevelWall))
				}
			}
		})
	}
}

// TestParallelWithoutHeapCloning covers the octx=0 object collapse.
func TestParallelWithoutHeapCloning(t *testing.T) {
	src := parallelPrograms["chain"]
	cfg := testConfig
	cfg.HeapCloning = false
	seq := analyzeCfg(t, src, cfg)
	cfg.Workers = 4
	par := analyzeCfg(t, src, cfg)
	if got, want := snapshot(par), snapshot(seq); got != want {
		t.Errorf("no-cloning state differs\n--- sequential ---\n%s--- parallel ---\n%s", want, got)
	}
}

// TestParallelKCFAFallback checks the scheduler's fallback when the
// numbering carries no precomputed condensation (k-CFA numberings).
func TestParallelKCFAFallback(t *testing.T) {
	src := parallelPrograms["mutual"]
	f, errs := cminor.Parse("test.c", src)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	info := cminor.Check(f)
	if len(info.Errors) != 0 {
		t.Fatalf("check: %v", info.Errors)
	}
	prog := ir.Lower(info, f)
	g := callgraph.Build(prog, "main", nil)
	n := contexts.NewKCFA(g, 2, 1<<12)
	if n.DAG != nil {
		// The point of this test is the nil-DAG path; if KCFA grows a
		// DAG later, exercise the nil path explicitly.
		n.DAG = nil
	}
	seq := Analyze(n, testConfig)
	cfg := testConfig
	cfg.Workers = 4
	par := Analyze(n, cfg)
	if got, want := snapshot(par), snapshot(seq); got != want {
		t.Errorf("kcfa state differs\n--- sequential ---\n%s--- parallel ---\n%s", want, got)
	}
}

// TestParallelEntryParams covers the open-program seeding, which runs
// before the dispatch and must be visible to the parallel rounds.
func TestParallelEntryParams(t *testing.T) {
	src := `
extern void *malloc(unsigned long n);
void api(int **out, int *in) { *out = in; }
int main(void) { return 0; }`
	f, errs := cminor.Parse("test.c", src)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	info := cminor.Check(f)
	if len(info.Errors) != 0 {
		t.Fatalf("check: %v", info.Errors)
	}
	prog := ir.Lower(info, f)
	g := callgraph.Build(prog, "", nil) // all functions are roots
	n := contexts.Number(g, 1<<16)
	cfg := testConfig
	cfg.EntryParams = true
	seq := Analyze(n, cfg)
	cfg.Workers = 4
	par := Analyze(n, cfg)
	if got, want := snapshot(par), snapshot(seq); got != want {
		t.Errorf("entry-params state differs\n--- sequential ---\n%s--- parallel ---\n%s", want, got)
	}
}

// TestParallelMaxRounds pins the cutoff contract: the parallel solver
// honors MaxRounds and reports Converged = false on a cutoff.
func TestParallelMaxRounds(t *testing.T) {
	cfg := testConfig
	cfg.Workers = 4
	cfg.MaxRounds = 1
	r := analyzeCfg(t, parallelPrograms["chain"], cfg)
	if r.Converged {
		t.Fatalf("converged in one round; need a deeper program for the cutoff test")
	}
	if r.Rounds != 1 {
		t.Errorf("Rounds = %d, want 1", r.Rounds)
	}
}
