package pipeline

import (
	"context"
	"runtime"
	"sync"
	"time"
)

// CorpusResult is the outcome of one corpus job.
type CorpusResult[Out any] struct {
	// Index is the job's position in the input slice; results are
	// returned in input order regardless of completion order.
	Index int
	Out   Out
	Err   error
	// Wall is the job's wall-clock duration (zero when the job was
	// skipped by cancellation).
	Wall time.Duration
}

// RunCorpus runs fn over every input with a bounded worker pool of
// the given size (jobs <= 0 means GOMAXPROCS). Each input is an
// independent analysis; results come back in input order, one per
// input, so parallel and serial execution produce identical output
// streams. When ctx is cancelled, jobs not yet started complete
// immediately with ctx.Err(); jobs already running finish (their fn
// receives ctx and may cut itself short).
func RunCorpus[In, Out any](ctx context.Context, inputs []In, jobs int, fn func(context.Context, In) (Out, error)) []CorpusResult[Out] {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(inputs) {
		jobs = len(inputs)
	}
	results := make([]CorpusResult[Out], len(inputs))
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				if err := ctx.Err(); err != nil {
					results[i] = CorpusResult[Out]{Index: i, Err: err}
					continue
				}
				t0 := time.Now()
				out, err := fn(ctx, inputs[i])
				results[i] = CorpusResult[Out]{
					Index: i, Out: out, Err: err, Wall: time.Since(t0),
				}
			}
		}()
	}
	for i := range inputs {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	return results
}
