// Package pipeline provides the staged execution engine underneath
// RegionWiz. The analysis (Section 5 of the paper) is explicitly
// staged — front end, call graph, context numbering, pointer analysis,
// relation extraction, pair computation, post-processing — and this
// package gives each stage a first-class seam: a named Phase run by a
// Runner over a shared state, with per-phase wall time, allocation
// deltas, and output-relation sizes recorded into a Metrics struct
// (the raw material of the paper's Figure 11 cost columns).
//
// The Runner honours context cancellation and deadlines between
// phases, and an optional Observer receives phase start/end callbacks
// for logging and benchmarking. RunCorpus (corpus.go) drives many
// independent analyses over a bounded worker pool.
package pipeline

import (
	"context"
	"runtime"
	"sort"
	"time"

	"repro/internal/trace"
)

// Phase is one named stage of a pipeline over state S.
type Phase[S any] interface {
	// Name identifies the phase in metrics and observer callbacks.
	Name() string
	// Run executes the phase. The context is the Runner's; long
	// phases may poll it for cancellation.
	Run(ctx context.Context, st S) error
}

// phaseFunc adapts a function to the Phase interface.
type phaseFunc[S any] struct {
	name string
	fn   func(ctx context.Context, st S) error
}

func (p phaseFunc[S]) Name() string                        { return p.name }
func (p phaseFunc[S]) Run(ctx context.Context, st S) error { return p.fn(ctx, st) }

// New builds a Phase from a name and a function.
func New[S any](name string, fn func(ctx context.Context, st S) error) Phase[S] {
	return phaseFunc[S]{name: name, fn: fn}
}

// PhaseMetrics records one phase's cost and output.
type PhaseMetrics struct {
	Name string
	// Wall is the phase's wall-clock duration.
	Wall time.Duration
	// AllocBytes is the delta of runtime.MemStats.TotalAlloc across
	// the phase: cumulative bytes allocated, not live heap.
	AllocBytes int64
	// Outputs holds the relation sizes this phase produced or
	// changed, when the state implements RelationSizer: every key
	// whose value differs from the pre-phase snapshot.
	Outputs map[string]int64
	// Inputs names the relations the phase declared it consumes (see
	// WithInputs); nil for phases that declare nothing.
	Inputs []string
}

// Metrics is the cost breakdown of one Runner.Run.
type Metrics struct {
	Phases []PhaseMetrics
	Total  time.Duration
}

// Get returns the metrics of the named phase, or nil.
func (m *Metrics) Get(name string) *PhaseMetrics {
	for i := range m.Phases {
		if m.Phases[i].Name == name {
			return &m.Phases[i]
		}
	}
	return nil
}

// Observer receives phase lifecycle callbacks.
type Observer[S any] interface {
	PhaseStart(name string, st S)
	PhaseEnd(name string, st S, m PhaseMetrics)
}

// ObserverFuncs adapts two functions to the Observer interface;
// either may be nil.
type ObserverFuncs[S any] struct {
	Start func(name string, st S)
	End   func(name string, st S, m PhaseMetrics)
}

// PhaseStart implements Observer.
func (o ObserverFuncs[S]) PhaseStart(name string, st S) {
	if o.Start != nil {
		o.Start(name, st)
	}
}

// PhaseEnd implements Observer.
func (o ObserverFuncs[S]) PhaseEnd(name string, st S, m PhaseMetrics) {
	if o.End != nil {
		o.End(name, st, m)
	}
}

// RelationSizer is optionally implemented by the pipeline state. The
// Runner snapshots it around every phase and attributes each changed
// key to that phase's Outputs (a solver, say, reports its iteration
// and relation counts this way without the Runner knowing about it).
type RelationSizer interface {
	RelationSizes() map[string]int64
}

// InputDeclarer is optionally implemented by a Phase to name the
// relations it consumes. Declarations are descriptive today — the
// Runner records them in PhaseMetrics.Inputs — but they are the seam a
// delta-aware scheduler needs: a phase whose declared inputs are
// unchanged since the previous run can be skipped or served from
// cache. The incremental front end (internal/core) realizes exactly
// that for parse/check/lower; the solver phases declare their inputs
// now so the same machinery can reach them in a later change.
type InputDeclarer interface {
	Inputs() []string
}

// declaredPhase attaches an input declaration to a phase.
type declaredPhase[S any] struct {
	Phase[S]
	inputs []string
}

func (p declaredPhase[S]) Inputs() []string { return p.inputs }

// WithInputs wraps a phase with a declaration of the relations it
// reads (keys of the state's RelationSizes, or upstream artifact names
// like "sources").
func WithInputs[S any](p Phase[S], inputs ...string) Phase[S] {
	return declaredPhase[S]{Phase: p, inputs: inputs}
}

// Runner executes a registered phase list over a shared state.
type Runner[S any] struct {
	phases []Phase[S]
	// Observer, when set, receives start/end callbacks per phase.
	Observer Observer[S]
}

// NewRunner builds a Runner over the given phases.
func NewRunner[S any](phases ...Phase[S]) *Runner[S] {
	return &Runner[S]{phases: phases}
}

// Add appends a phase.
func (r *Runner[S]) Add(p Phase[S]) { r.phases = append(r.phases, p) }

// PhaseNames lists the registered phases in execution order.
func (r *Runner[S]) PhaseNames() []string {
	out := make([]string, len(r.phases))
	for i, p := range r.phases {
		out[i] = p.Name()
	}
	return out
}

// Run executes the phases in order. Between phases it checks ctx: a
// cancelled or expired context aborts the pipeline and Run returns
// ctx.Err() (context.Canceled or context.DeadlineExceeded) without
// running later phases. A phase error likewise aborts the pipeline
// and is returned unwrapped. The returned Metrics always covers the
// phases that actually ran.
// When the context carries a trace.Tracer, the run becomes a
// "pipeline" span and every phase a "phase:<name>" child span (the
// bridge between the Observer seam and the trace layer); the phase's
// allocation delta and changed relation sizes become span attributes.
func (r *Runner[S]) Run(ctx context.Context, st S) (*Metrics, error) {
	start := time.Now()
	m := &Metrics{}
	ctx, runSpan := trace.StartSpan(ctx, "pipeline")
	var runErr error
	defer func() {
		runSpan.End(trace.Int("phases_run", len(m.Phases)), trace.Bool("error", runErr != nil))
	}()
	var prev map[string]int64
	sizer, hasSizer := any(st).(RelationSizer)
	if hasSizer {
		prev = sizer.RelationSizes()
	}
	for _, ph := range r.phases {
		if err := ctx.Err(); err != nil {
			m.Total = time.Since(start)
			runErr = err
			return m, err
		}
		if r.Observer != nil {
			r.Observer.PhaseStart(ph.Name(), st)
		}
		pctx, span := trace.StartSpan(ctx, "phase:"+ph.Name())
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		t0 := time.Now()
		err := ph.Run(pctx, st)
		wall := time.Since(t0)
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		pm := PhaseMetrics{
			Name:       ph.Name(),
			Wall:       wall,
			AllocBytes: int64(after.TotalAlloc - before.TotalAlloc),
		}
		if d, ok := ph.(InputDeclarer); ok {
			pm.Inputs = d.Inputs()
		}
		if hasSizer {
			cur := sizer.RelationSizes()
			pm.Outputs = changedSizes(prev, cur)
			prev = cur
		}
		if span != nil {
			// The span's duration additionally covers the MemStats
			// reads and the sizer snapshot; the wall attribute is the
			// phase body alone.
			span.End(phaseAttrs(pm)...)
		}
		m.Phases = append(m.Phases, pm)
		if r.Observer != nil {
			r.Observer.PhaseEnd(ph.Name(), st, pm)
		}
		if err != nil {
			m.Total = time.Since(start)
			runErr = err
			return m, err
		}
	}
	m.Total = time.Since(start)
	return m, nil
}

// phaseAttrs renders one phase's metrics as span attributes, outputs
// in sorted key order for deterministic exports.
func phaseAttrs(pm PhaseMetrics) []trace.Attr {
	attrs := make([]trace.Attr, 0, 2+len(pm.Outputs))
	attrs = append(attrs,
		trace.Int64("wall_ns", int64(pm.Wall)),
		trace.Int64("alloc_bytes", pm.AllocBytes))
	keys := make([]string, 0, len(pm.Outputs))
	for k := range pm.Outputs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		attrs = append(attrs, trace.Int64("out."+k, pm.Outputs[k]))
	}
	return attrs
}

// changedSizes returns the entries of cur that are new or different
// from prev — the relations a phase produced or grew.
func changedSizes(prev, cur map[string]int64) map[string]int64 {
	var out map[string]int64
	for k, v := range cur {
		if pv, ok := prev[k]; !ok || pv != v {
			if out == nil {
				out = make(map[string]int64)
			}
			out[k] = v
		}
	}
	return out
}
