package pipeline

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// traceState records what ran, and doubles as a RelationSizer.
type traceState struct {
	ran   []string
	sizes map[string]int64
}

func (s *traceState) RelationSizes() map[string]int64 {
	out := make(map[string]int64, len(s.sizes))
	for k, v := range s.sizes {
		out[k] = v
	}
	return out
}

func namedPhase(name string) Phase[*traceState] {
	return New(name, func(_ context.Context, st *traceState) error {
		st.ran = append(st.ran, name)
		return nil
	})
}

func TestPhaseOrder(t *testing.T) {
	names := []string{"alpha", "beta", "gamma", "delta"}
	var phases []Phase[*traceState]
	for _, n := range names {
		phases = append(phases, namedPhase(n))
	}
	r := NewRunner(phases...)
	st := &traceState{}
	m, err := r.Run(context.Background(), st)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fmt.Sprint(st.ran) != fmt.Sprint(names) {
		t.Errorf("phases ran %v, want %v", st.ran, names)
	}
	if len(m.Phases) != len(names) {
		t.Fatalf("metrics has %d phases, want %d", len(m.Phases), len(names))
	}
	for i, pm := range m.Phases {
		if pm.Name != names[i] {
			t.Errorf("metrics[%d] = %q, want %q", i, pm.Name, names[i])
		}
		if pm.Wall < 0 {
			t.Errorf("metrics[%d].Wall negative", i)
		}
	}
	if got := r.PhaseNames(); fmt.Sprint(got) != fmt.Sprint(names) {
		t.Errorf("PhaseNames = %v, want %v", got, names)
	}
}

func TestObserverSequence(t *testing.T) {
	var events []string
	r := NewRunner(namedPhase("one"), namedPhase("two"))
	r.Observer = ObserverFuncs[*traceState]{
		Start: func(name string, _ *traceState) {
			events = append(events, "start:"+name)
		},
		End: func(name string, _ *traceState, m PhaseMetrics) {
			if m.Name != name {
				t.Errorf("PhaseEnd metrics name %q != %q", m.Name, name)
			}
			events = append(events, "end:"+name)
		},
	}
	if _, err := r.Run(context.Background(), &traceState{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"start:one", "end:one", "start:two", "end:two"}
	if fmt.Sprint(events) != fmt.Sprint(want) {
		t.Errorf("observer events %v, want %v", events, want)
	}
}

func TestCancellationStopsPipeline(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	// The second phase cancels the context; the third must not run.
	r := NewRunner(
		namedPhase("first"),
		New("canceller", func(_ context.Context, st *traceState) error {
			st.ran = append(st.ran, "canceller")
			cancel()
			return nil
		}),
		namedPhase("never"),
	)
	st := &traceState{}
	m, err := r.Run(ctx, st)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run err = %v, want context.Canceled", err)
	}
	if fmt.Sprint(st.ran) != fmt.Sprint([]string{"first", "canceller"}) {
		t.Errorf("phases ran %v; the post-cancel phase must not run", st.ran)
	}
	if len(m.Phases) != 2 {
		t.Errorf("metrics has %d phases, want 2 (the ones that ran)", len(m.Phases))
	}
}

func TestDeadlineExceeded(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	r := NewRunner(namedPhase("only"))
	st := &traceState{}
	_, err := r.Run(ctx, st)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run err = %v, want context.DeadlineExceeded", err)
	}
	if len(st.ran) != 0 {
		t.Errorf("phases ran %v under an expired deadline", st.ran)
	}
}

func TestPhaseErrorAborts(t *testing.T) {
	boom := errors.New("boom")
	r := NewRunner(
		namedPhase("ok"),
		New("fails", func(_ context.Context, st *traceState) error {
			st.ran = append(st.ran, "fails")
			return boom
		}),
		namedPhase("never"),
	)
	st := &traceState{}
	m, err := r.Run(context.Background(), st)
	if !errors.Is(err, boom) {
		t.Fatalf("Run err = %v, want the phase error", err)
	}
	if fmt.Sprint(st.ran) != fmt.Sprint([]string{"ok", "fails"}) {
		t.Errorf("phases ran %v", st.ran)
	}
	// The failing phase's metrics are still recorded.
	if m.Get("fails") == nil {
		t.Error("failing phase missing from metrics")
	}
}

func TestOutputsAttributedToPhase(t *testing.T) {
	st := &traceState{sizes: map[string]int64{}}
	r := NewRunner(
		New("produce", func(_ context.Context, s *traceState) error {
			s.sizes["rel_a"] = 10
			return nil
		}),
		New("grow", func(_ context.Context, s *traceState) error {
			s.sizes["rel_a"] = 25
			s.sizes["rel_b"] = 7
			return nil
		}),
		New("idle", func(_ context.Context, s *traceState) error {
			return nil
		}),
	)
	m, err := r.Run(context.Background(), st)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	p := m.Get("produce")
	if p.Outputs["rel_a"] != 10 || len(p.Outputs) != 1 {
		t.Errorf("produce outputs = %v, want rel_a=10 only", p.Outputs)
	}
	g := m.Get("grow")
	if g.Outputs["rel_a"] != 25 || g.Outputs["rel_b"] != 7 || len(g.Outputs) != 2 {
		t.Errorf("grow outputs = %v, want rel_a=25 rel_b=7", g.Outputs)
	}
	if len(m.Get("idle").Outputs) != 0 {
		t.Errorf("idle outputs = %v, want none", m.Get("idle").Outputs)
	}
}

func TestMetricsGetMissing(t *testing.T) {
	m := &Metrics{}
	if m.Get("nope") != nil {
		t.Error("Get on empty metrics should be nil")
	}
}
