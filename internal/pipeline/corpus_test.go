package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunCorpusOrderAndResults(t *testing.T) {
	inputs := make([]int, 50)
	for i := range inputs {
		inputs[i] = i
	}
	for _, jobs := range []int{1, 4, 64} {
		results := RunCorpus(context.Background(), inputs, jobs,
			func(_ context.Context, n int) (int, error) {
				return n * n, nil
			})
		if len(results) != len(inputs) {
			t.Fatalf("jobs=%d: %d results, want %d", jobs, len(results), len(inputs))
		}
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("jobs=%d: job %d: %v", jobs, i, r.Err)
			}
			if r.Index != i || r.Out != i*i {
				t.Errorf("jobs=%d: results[%d] = {Index:%d Out:%d}, want {%d %d}",
					jobs, i, r.Index, r.Out, i, i*i)
			}
		}
	}
}

func TestRunCorpusBoundedWorkers(t *testing.T) {
	const jobs = 3
	var cur, max atomic.Int32
	var mu sync.Mutex
	bump := func() {
		n := cur.Add(1)
		mu.Lock()
		if n > max.Load() {
			max.Store(n)
		}
		mu.Unlock()
	}
	inputs := make([]int, 40)
	results := RunCorpus(context.Background(), inputs, jobs,
		func(_ context.Context, _ int) (struct{}, error) {
			bump()
			defer cur.Add(-1)
			// A tiny busy wait makes overlap observable.
			for i := 0; i < 1000; i++ {
				_ = i
			}
			return struct{}{}, nil
		})
	if len(results) != len(inputs) {
		t.Fatalf("%d results, want %d", len(results), len(inputs))
	}
	if got := max.Load(); got > jobs {
		t.Errorf("observed %d concurrent jobs, cap is %d", got, jobs)
	}
}

func TestRunCorpusCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	inputs := make([]int, 100)
	// One worker; the third job cancels, so later jobs must be skipped
	// with ctx.Err().
	results := RunCorpus(ctx, inputs, 1,
		func(_ context.Context, _ int) (int, error) {
			n := started.Add(1)
			if n == 3 {
				cancel()
			}
			return int(n), nil
		})
	skipped := 0
	for _, r := range results {
		if errors.Is(r.Err, context.Canceled) {
			skipped++
			if r.Wall != 0 {
				t.Error("skipped job has nonzero wall time")
			}
		}
	}
	if skipped == 0 {
		t.Error("cancellation skipped no jobs")
	}
	if got := int(started.Load()); got+skipped != len(inputs) {
		t.Errorf("started %d + skipped %d != %d jobs", got, skipped, len(inputs))
	}
}

func TestRunCorpusErrorIsolation(t *testing.T) {
	inputs := []int{0, 1, 2, 3}
	results := RunCorpus(context.Background(), inputs, 2,
		func(_ context.Context, n int) (string, error) {
			if n%2 == 1 {
				return "", fmt.Errorf("odd %d", n)
			}
			return fmt.Sprintf("ok %d", n), nil
		})
	for i, r := range results {
		if i%2 == 1 && r.Err == nil {
			t.Errorf("job %d should have failed", i)
		}
		if i%2 == 0 && (r.Err != nil || r.Out != fmt.Sprintf("ok %d", i)) {
			t.Errorf("job %d = %+v, want ok", i, r)
		}
	}
}

func TestRunCorpusEmpty(t *testing.T) {
	results := RunCorpus(context.Background(), nil, 4,
		func(_ context.Context, _ int) (int, error) { return 0, nil })
	if len(results) != 0 {
		t.Errorf("%d results for empty input", len(results))
	}
}

// TestRunCorpusZeroJobsMeansGOMAXPROCS pins the documented contract
// shared by regionbench -jobs and the oracle sweep's Jobs: zero (and
// any negative) means GOMAXPROCS workers, not one. The test forces
// GOMAXPROCS to a known value and requires that many jobs to be in
// flight at once — if zero collapsed to a single worker the barrier
// could never fill.
func TestRunCorpusZeroJobsMeansGOMAXPROCS(t *testing.T) {
	const procs = 3
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
	for _, jobs := range []int{0, -1} {
		inputs := make([]int, 2*procs)
		arrived := make(chan struct{}, len(inputs))
		release := make(chan struct{})
		done := make(chan struct{})
		go func() {
			RunCorpus(context.Background(), inputs, jobs,
				func(_ context.Context, n int) (int, error) {
					arrived <- struct{}{}
					<-release
					return n, nil
				})
			close(done)
		}()
		for i := 0; i < procs; i++ {
			select {
			case <-arrived:
			case <-time.After(10 * time.Second):
				t.Fatalf("jobs=%d with GOMAXPROCS=%d: only %d jobs started concurrently, want %d",
					jobs, procs, i, procs)
			}
		}
		close(release)
		<-done
	}
}
