package datalog

import (
	"context"
	"testing"
)

// TestSolverCutoffBoundary pins the unified cutoff contract at exactly
// the cap for both solvers: "run at most maxRounds rounds". A solve
// that converges in R rounds must (a) report (R, fixpoint=true) when
// capped at exactly R, (b) report (R-1, fixpoint=false) when capped at
// R-1 — even though, for the chain closure, the relation contents
// happen to be complete by then: the flag means "verified", not
// "complete". The pointer solver's twin is
// pointer.TestSolverCutoffBoundary.
func TestSolverCutoffBoundary(t *testing.T) {
	const n = 12
	fullTuples := uint64((n + 1) * n / 2)

	t.Run("seminaive", func(t *testing.T) {
		p, rules, path := chainProgram(n)
		unlimited, fixpoint := p.SolveSemiNaive(context.Background(), rules, 0)
		if !fixpoint || path.Count() != fullTuples {
			t.Fatalf("unlimited solve: rounds=%d fixpoint=%v count=%d", unlimited, fixpoint, path.Count())
		}

		// Cap at exactly the convergence round count: identical outcome.
		p2, rules2, path2 := chainProgram(n)
		rounds, fixpoint := p2.SolveSemiNaive(context.Background(), rules2, unlimited)
		if rounds != unlimited || !fixpoint {
			t.Fatalf("cap==R: rounds=%d fixpoint=%v, want %d/true", rounds, fixpoint, unlimited)
		}
		if path2.Count() != fullTuples {
			t.Fatalf("cap==R closure count = %d, want %d", path2.Count(), fullTuples)
		}

		// Cap one below: exactly cap rounds run, fixpoint unverified.
		p3, rules3, _ := chainProgram(n)
		rounds, fixpoint = p3.SolveSemiNaive(context.Background(), rules3, unlimited-1)
		if rounds != unlimited-1 || fixpoint {
			t.Fatalf("cap==R-1: rounds=%d fixpoint=%v, want %d/false", rounds, fixpoint, unlimited-1)
		}
	})

	t.Run("naive", func(t *testing.T) {
		p, rules, path := chainProgram(n)
		unlimited, fixpoint := p.Solve(context.Background(), rules, 0)
		if !fixpoint || path.Count() != fullTuples {
			t.Fatalf("unlimited solve: rounds=%d fixpoint=%v count=%d", unlimited, fixpoint, path.Count())
		}

		p2, rules2, _ := chainProgram(n)
		rounds, fixpoint := p2.Solve(context.Background(), rules2, unlimited)
		if rounds != unlimited || !fixpoint {
			t.Fatalf("cap==R: rounds=%d fixpoint=%v, want %d/true", rounds, fixpoint, unlimited)
		}

		p3, rules3, _ := chainProgram(n)
		rounds, fixpoint = p3.Solve(context.Background(), rules3, unlimited-1)
		if rounds != unlimited-1 || fixpoint {
			t.Fatalf("cap==R-1: rounds=%d fixpoint=%v, want %d/false", rounds, fixpoint, unlimited-1)
		}
	})
}
